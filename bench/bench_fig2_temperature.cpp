// Reproduces Figure 2: maximum temperature reached by any structure for
// each application at each technology node, plus the (constant) average
// heat-sink temperature.
#include "bench_common.hpp"

int main() {
  using namespace ramp;
  bench::print_header("Figure 2", "maximum structure temperature under scaling");

  const auto& sweep = bench::shared_sweep();

  for (const auto suite :
       {workloads::Suite::kSpecFp, workloads::Suite::kSpecInt}) {
    TextTable table(std::string(workloads::suite_name(suite)) +
                    " — hottest structure temperature (K) per node");
    std::vector<std::string> header = {"app"};
    for (const auto tp : scaling::kAllTechPoints) {
      header.push_back(std::string(scaling::tech_name(tp)));
    }
    table.set_header(header);

    for (const auto& w : workloads::suite_workloads(suite)) {
      std::vector<std::string> rowv = {w.name};
      for (const auto tp : scaling::kAllTechPoints) {
        rowv.push_back(fmt(sweep.at(w.name, tp).max_structure_temp_k, 1));
      }
      table.add_row(rowv);
    }
    // Heat-sink temperature averaged over the suite's apps (constant
    // across nodes by construction — the paper's scaling rule).
    std::vector<std::string> sink_row = {"heat sink (avg)"};
    for (const auto tp : scaling::kAllTechPoints) {
      double s = 0;
      for (const auto* r : sweep.cells(suite, tp)) s += r->sink_temp_k;
      sink_row.push_back(fmt(s / 8.0, 1));
    }
    table.add_row(sink_row);
    std::printf("%s\n", table.str().c_str());
    bench::export_csv(table, std::string("fig2_") +
                                 workloads::suite_name(suite) + ".csv");
    std::printf("\n");
  }

  // Headline §5.1 number: average rise of the hottest structure.
  double rise = 0;
  for (const auto& w : workloads::spec2k_suite()) {
    rise += sweep.at(w.name, scaling::TechPoint::k65nm_1V0).max_structure_temp_k -
            sweep.at(w.name, scaling::TechPoint::k180nm).max_structure_temp_k;
  }
  std::printf(
      "Average hottest-structure rise 180nm -> 65nm (1.0V): %.1f K "
      "(paper: ~15 K)\n",
      rise / 16.0);
  return 0;
}
