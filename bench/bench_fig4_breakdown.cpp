// Reproduces Figure 4: FIT value averaged over SpecFP / SpecInt apps per
// technology node, broken down into the contribution of each failure
// mechanism.
#include "bench_common.hpp"

int main() {
  using namespace ramp;
  bench::print_header("Figure 4",
                      "suite-average FIT with per-mechanism breakdown");

  const auto& sweep = bench::shared_sweep();

  for (const auto suite :
       {workloads::Suite::kSpecFp, workloads::Suite::kSpecInt}) {
    TextTable table(std::string(workloads::suite_name(suite)) +
                    " — average FIT by mechanism");
    table.set_header({"tech", "EM", "SM", "TDDB", "TC", "total",
                      "total vs 180nm"});
    const double base = sweep.average_total_fit(suite, scaling::TechPoint::k180nm);
    for (const auto tp : scaling::kAllTechPoints) {
      std::vector<std::string> row = {std::string(scaling::tech_name(tp))};
      double total = 0;
      for (int m = 0; m < core::kNumMechanisms; ++m) {
        const double f = sweep.average_mechanism_fit(
            suite, tp, static_cast<core::Mechanism>(m));
        row.push_back(fmt_fit(f));
        total += f;
      }
      row.push_back(fmt_fit(total));
      row.push_back(fmt_pct_change(total / base));
      table.add_row(row);
    }
    std::printf("%s\n", table.str().c_str());
    bench::export_csv(table, std::string("fig4_") +
                                 workloads::suite_name(suite) + ".csv");
    std::printf("\n");
  }

  std::printf(
      "Paper reference points: SpecFP total +274%% and SpecInt +357%% at "
      "65nm (1.0V);\nmechanism ordering of the increase TDDB > EM > SM > TC.\n");
  return 0;
}
