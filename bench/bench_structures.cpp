// Structure-level FIT breakdown — RAMP's defining granularity (paper §2:
// "it implements the failure models at a microarchitectural structure
// level"). For one representative hot and one cool application, prints the
// per-structure contribution of each mechanism at 180 nm and 65 nm (1.0 V),
// showing which units age fastest and how scaling changes the ranking.
#include "bench_common.hpp"

int main() {
  using namespace ramp;
  bench::print_header("Structure breakdown",
                      "per-structure, per-mechanism FIT contributions");

  const auto& sweep = bench::shared_sweep();

  for (const std::string app : {"crafty", "ammp"}) {
    for (const auto tp :
         {scaling::TechPoint::k180nm, scaling::TechPoint::k65nm_1V0}) {
      const auto& r = sweep.at(app, tp);
      const core::FitSummary fits = sweep.qualified_fits(r);

      TextTable table(app + " @ " + std::string(scaling::tech_name(tp)) +
                      " — FIT by structure and mechanism");
      table.set_header({"structure", "area %", "EM", "SM", "TDDB",
                        "struct total", "% of processor"});
      const double total = fits.total();
      for (int s = 0; s < sim::kNumStructures; ++s) {
        const auto id = static_cast<sim::StructureId>(s);
        const auto& row = fits.by_structure[static_cast<std::size_t>(s)];
        double st_total = 0;
        for (double v : row) st_total += v;
        table.add_row({std::string(sim::structure_name(id)),
                       fmt(sim::structure_area_fraction(id) * 100, 0),
                       fmt_fit(row[0]), fmt_fit(row[1]), fmt_fit(row[2]),
                       fmt_fit(st_total), fmt(st_total / total * 100, 1)});
      }
      table.add_row({"package (TC)", "-", "-", "-", "-", fmt_fit(fits.tc_fit),
                     fmt(fits.tc_fit / total * 100, 1)});
      std::printf("%s\n", table.str().c_str());
    }
  }

  std::printf(
      "Reading: the LSU (largest, hot, memory-active) and FXU dominate; FP-\n"
      "idle integer codes still pay the FPU's area-weighted TDDB/SM cost but\n"
      "no FPU electromigration (EM needs current flow, p = 0). Scaling\n"
      "shifts weight toward TDDB everywhere.\n");
  return 0;
}
