// Ablation: activation-energy sensitivity.
//
// The EM and SM models use material-dependent activation energies
// (Ea = 0.9 eV for the copper stack in RAMP); published values for copper
// interconnects range roughly 0.8–1.0 eV depending on the dielectric cap
// and process. This bench sweeps Ea and reports how the 180 nm → 65 nm
// (1.0 V) failure-rate ratio responds, holding everything else (including
// the qualification procedure, which re-normalizes at 180 nm per variant)
// fixed. Because qualification anchors each variant at 1000 FIT per
// mechanism at 180 nm, the Ea sweep isolates the *scaling slope*: higher
// activation energies amplify the same temperature rise into larger FIT
// growth.
#include <cmath>

#include "core/mechanisms.hpp"
#include "util/table.hpp"

int main() {
  using namespace ramp;
  using namespace ramp::core;

  std::printf("=== Activation-energy ablation (EM and SM scaling slopes) ===\n\n");

  // Representative suite-average temperatures from the calibrated pipeline.
  const double t180 = 349.0;
  const double t65 = 362.0;
  const double j180 = 0.35 * 9.0;  // p * Jmax at the two nodes
  const double j65 = 0.35 * 4.0;
  const double wh180 = 1.0, wh65 = 0.392 * 0.392;

  TextTable em_table("EM: 65nm(1.0V)/180nm FIT ratio vs activation energy");
  em_table.set_header({"Ea (eV)", "temp factor", "total ratio",
                       "vs default (0.9 eV)"});
  // Qualification anchors 180 nm, so the ratio is raw(65)/raw(180).
  auto em_ratio = [&](double ea) {
    ElectromigrationModel em;
    em.ea_ev = ea;
    return em.raw_fit(j65, t65, wh65) / em.raw_fit(j180, t180, wh180);
  };
  const double em_default = em_ratio(0.9);
  for (double ea : {0.7, 0.8, 0.9, 1.0, 1.1}) {
    ElectromigrationModel em_t;
    em_t.ea_ev = ea;
    const double temp_factor =
        em_t.raw_fit(1.0, t65, 1.0) / em_t.raw_fit(1.0, t180, 1.0);
    em_table.add_row({fmt(ea, 1), fmt(temp_factor, 2), fmt(em_ratio(ea), 2),
                      fmt(em_ratio(ea) / em_default, 2)});
  }
  std::printf("%s\n", em_table.str().c_str());

  TextTable sm_table("SM: 65nm(1.0V)/180nm FIT ratio vs activation energy");
  sm_table.set_header({"Ea (eV)", "total ratio"});
  for (double ea : {0.7, 0.8, 0.9, 1.0, 1.1}) {
    StressMigrationModel sm;
    sm.ea_ev = ea;
    sm_table.add_row({fmt(ea, 1), fmt(sm.raw_fit(t65) / sm.raw_fit(t180), 2)});
  }
  std::printf("%s\n", sm_table.str().c_str());

  std::printf(
      "Reading: a +-0.1 eV uncertainty in Ea moves the EM scaling ratio by\n"
      "~10-15%% around the default — material constants shift the magnitude\n"
      "of the paper's conclusion, never its direction. (Each variant is\n"
      "re-qualified at 180 nm, so only the slope differs.)\n");
  return 0;
}
