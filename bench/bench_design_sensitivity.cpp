// Ablation over the design/methodology choices DESIGN.md calls out:
// how sensitive are the paper's headline conclusions to
//   (a) the reliability-qualification target (30-year vs other MTTFs),
//   (b) the clock-gating floor of the power model,
//   (c) the effective junction-to-spreader thermal resistance,
//   (d) the constant-heat-sink-temperature scaling rule (vs fixed R).
// Each variant reruns a reduced sweep and reports the headline ratio
// (65 nm (1.0V) / 180 nm average FIT). The point: the *conclusion* — a
// severalfold failure-rate increase — is robust; only its magnitude moves.
#include "bench_common.hpp"
#include "core/qualification.hpp"

namespace {

using namespace ramp;

double headline_ratio(const pipeline::SweepResult& sweep) {
  return sweep.average_total_fit_all(scaling::TechPoint::k65nm_1V0) /
         sweep.average_total_fit_all(scaling::TechPoint::k180nm);
}

pipeline::SweepResult run_variant(pipeline::EvaluationConfig cfg) {
  cfg.trace_instructions = env_u64("RAMP_ABLATION_LEN", 60'000);
  pipeline::SweepRunner::Options opts;
  opts.cache_path.clear();
  return pipeline::SweepRunner(std::move(cfg), std::move(opts)).run();
}

}  // namespace

int main() {
  using namespace ramp;
  bench::print_header("Design-choice sensitivity",
                      "headline FIT ratio under methodology variations");

  TextTable table("65nm(1.0V)/180nm average-FIT ratio under variants");
  table.set_header({"variant", "ratio", "note"});

  const pipeline::EvaluationConfig base_cfg;
  const auto base = run_variant(base_cfg);
  table.add_row({"baseline", fmt(headline_ratio(base), 2),
                 "reduced-length sweep (ablation baseline)"});

  {
    // (a) Qualification target: the ratio is invariant — qualification is a
    // pure rescaling of the constants (checked, not assumed).
    const double f180 = base.average_total_fit_all(scaling::TechPoint::k180nm);
    table.add_row({"20-year qualification", fmt(headline_ratio(base), 2),
                   "ratio invariant; absolute FIT rescales by " +
                       fmt(30.0 / 20.0, 2) + " (avg 180nm = " +
                       fmt(f180 * 30.0 / 20.0, 0) + ")"});
  }

  {
    // (b) Clock gating floor: higher floor = flatter power across apps.
    pipeline::EvaluationConfig cfg = base_cfg;
    cfg.power.clock_gating_floor = 0.25;
    table.add_row({"clock-gating floor 0.25 (vs 0.38)",
                   fmt(headline_ratio(run_variant(cfg)), 2),
                   "lower idle power, cooler chip"});
    cfg.power.clock_gating_floor = 0.50;
    table.add_row({"clock-gating floor 0.50",
                   fmt(headline_ratio(run_variant(cfg)), 2),
                   "higher idle power, hotter chip"});
  }

  {
    // (c) Junction thermal resistance: the temperature-calibration knob.
    pipeline::EvaluationConfig cfg = base_cfg;
    cfg.thermal.r_vertical_specific = 1.0e-5;
    table.add_row({"r_vertical 1.0e-5 (cooler hotspots)",
                   fmt(headline_ratio(run_variant(cfg)), 2), "dT65 ~ -25%"});
    cfg.thermal.r_vertical_specific = 1.7e-5;
    table.add_row({"r_vertical 1.7e-5 (hotter hotspots)",
                   fmt(headline_ratio(run_variant(cfg)), 2), "dT65 ~ +30%"});
  }

  {
    // (d) Heat-sink rule: a *fixed* 0.8 K/W sink under scaling lets the
    // sink temperature fall as total power drops, masking part of the
    // power-density effect — exactly why the paper pins the sink
    // temperature. Emulate by evaluating each app per node without a sink
    // target.
    pipeline::EvaluationConfig cfg = base_cfg;
    cfg.trace_instructions = env_u64("RAMP_ABLATION_LEN", 60'000);
    const pipeline::Evaluator ev(cfg);
    std::vector<core::FitSummary> raw180, raw65;
    for (const auto& w : workloads::spec2k_suite()) {
      // No sink target passed: both nodes keep the base 0.8 K/W sink.
      raw180.push_back(ev.evaluate(w, scaling::TechPoint::k180nm).raw_fits);
      raw65.push_back(ev.evaluate(w, scaling::TechPoint::k65nm_1V0).raw_fits);
    }
    const auto k = core::qualify(raw180);
    double q180 = 0, q65 = 0;
    for (std::size_t i = 0; i < raw180.size(); ++i) {
      q180 += pipeline::scale_summary(raw180[i], k).total();
      q65 += pipeline::scale_summary(raw65[i], k).total();
    }
    table.add_row({"fixed 0.8 K/W sink (no temp pinning)",
                   fmt(q65 / q180, 2),
                   "sink cools as power drops -> smaller increase"});
  }

  std::printf("%s\n", table.str().c_str());
  bench::export_csv(table, "design_sensitivity.csv");
  std::printf(
      "Reading: every variant still shows a severalfold 180nm -> 65nm\n"
      "failure-rate increase; the methodology knobs move the magnitude, not\n"
      "the conclusion. The fixed-sink variant shows why the paper pins the\n"
      "sink temperature: letting the sink cool with shrinking total power\n"
      "hides part of the power-density effect.\n");
  return 0;
}
