// Extension bench: chip multiprocessing and lifetime-aware core hopping.
//
// The paper's scaling pressure is what pushed designs toward CMPs; this
// bench runs a 4-core 65 nm (1.0 V) chip under an asymmetric load (one hot
// app, cores otherwise idle) and under a full load, with and without
// epoch-based activity migration, and reports the wear-leveling effect:
// migration cuts the worst core's failure rate by spreading the hot
// workload's residency.
#include "bench_common.hpp"
#include "cmp/cmp_evaluator.hpp"

int main() {
  using namespace ramp;
  bench::print_header("CMP activity migration",
                      "4-core 65 nm chip, pinned vs core-hopping");

  cmp::CmpConfig cfg;
  cfg.cores = 4;
  cfg.cell.trace_instructions = env_u64("RAMP_ABLATION_LEN", 60'000);
  cfg.duration_seconds = 12e-3;
  cfg.epoch_seconds = 1.5e-3;
  const cmp::CmpEvaluator ev(cfg, scaling::TechPoint::k65nm_1V0);

  TextTable table("Per-core wear under scheduling policies (raw FIT, relative)");
  table.set_header({"scenario", "policy", "worst/best core FIT", "worst core vs pinned",
                    "chip FIT vs pinned", "avg power W", "migrations"});

  const struct {
    const char* name;
    std::vector<std::string> apps;
  } scenarios[] = {
      {"1 hot app, 3 idle cores", {"crafty"}},
      {"2 hot + 2 idle", {"crafty", "gcc"}},
      {"full load (hot+cool mix)", {"crafty", "ammp", "gcc", "mgrid"}},
  };

  for (const auto& sc : scenarios) {
    std::vector<workloads::Workload> apps;
    for (const auto& name : sc.apps) apps.push_back(workloads::workload(name));
    const auto pinned = ev.evaluate(apps, false);
    const auto hopped = ev.evaluate(apps, true);
    table.add_row({sc.name, "pinned",
                   fmt(pinned.worst_core_raw_fit() / pinned.best_core_raw_fit(), 2),
                   "1.00", "1.00", fmt(pinned.avg_power_w, 1), "0"});
    table.add_row({"", "core-hopping",
                   fmt(hopped.worst_core_raw_fit() / hopped.best_core_raw_fit(), 2),
                   fmt(hopped.worst_core_raw_fit() / pinned.worst_core_raw_fit(), 2),
                   fmt(hopped.chip_raw_fit / pinned.chip_raw_fit, 2),
                   fmt(hopped.avg_power_w, 1),
                   std::to_string(hopped.migrations)});
  }
  std::printf("%s\n", table.str().c_str());
  bench::export_csv(table, "cmp_migration.csv");

  std::printf(
      "Reading: under asymmetric load, hopping equalizes per-core wear (the\n"
      "worst/best ratio collapses toward 1) and cuts the worst core's\n"
      "failure rate — the series-system chip lives as long as its weakest\n"
      "core, so leveling buys lifetime even when total chip FIT barely\n"
      "moves. Under a fully loaded chip, migration mostly trades which core\n"
      "ages, as expected.\n");
  return 0;
}
