// Ablation: SOFR's exponential-lifetime assumption vs wear-out
// distributions (paper §2's acknowledged inaccuracy).
//
// For the qualified FIT summaries the sweep produced, the Monte Carlo
// series-system engine estimates the processor lifetime under exponential
// (= SOFR), Weibull wear-out, and lognormal lifetimes with identical
// per-(structure, mechanism) MTTFs. The exponential row validates the
// engine (it must equal the SOFR closed form); the wear-out rows quantify
// how pessimistic the constant-failure-rate assumption is, and show that
// the paper's *scaling trend* is robust to the distribution choice.
#include "bench_common.hpp"
#include "core/lifetime_mc.hpp"

int main() {
  using namespace ramp;
  bench::print_header("Lifetime-model ablation",
                      "SOFR vs Weibull/lognormal series-system Monte Carlo");

  const auto& sweep = bench::shared_sweep();
  constexpr std::uint64_t kSamples = 20000;

  TextTable table("Suite-average processor lifetime (years), by model");
  table.set_header({"tech", "SOFR (closed form)", "MC exponential",
                    "MC Weibull b=2", "MC lognormal s=0.5",
                    "Weibull / SOFR"});

  for (const auto tp : scaling::kAllTechPoints) {
    double sofr = 0, exp_mean = 0, wei_mean = 0, logn_mean = 0;
    for (const auto& w : workloads::spec2k_suite()) {
      const core::FitSummary fits =
          sweep.qualified_fits(sweep.at(w.name, tp));

      core::LifetimeModelConfig ecfg;
      ecfg.family = core::LifetimeFamily::kExponential;
      const core::LifetimeMonteCarlo mc_exp(fits, ecfg);
      const auto est_exp = mc_exp.estimate(kSamples, 1);

      core::LifetimeModelConfig wcfg;
      wcfg.family = core::LifetimeFamily::kWeibull;
      wcfg.shape = {2.0, 2.0, 2.0, 2.0};
      const auto est_wei =
          core::LifetimeMonteCarlo(fits, wcfg).estimate(kSamples, 2);

      core::LifetimeModelConfig lcfg;
      lcfg.family = core::LifetimeFamily::kLognormal;
      lcfg.shape = {0.5, 0.5, 0.5, 0.5};
      const auto est_log =
          core::LifetimeMonteCarlo(fits, lcfg).estimate(kSamples, 3);

      sofr += est_exp.sofr_years;
      exp_mean += est_exp.mean_years;
      wei_mean += est_wei.mean_years;
      logn_mean += est_log.mean_years;
    }
    table.add_row({std::string(scaling::tech_name(tp)), fmt(sofr / 16, 1),
                   fmt(exp_mean / 16, 1), fmt(wei_mean / 16, 1),
                   fmt(logn_mean / 16, 1), fmt(wei_mean / sofr, 2)});
  }
  std::printf("%s\n", table.str().c_str());
  bench::export_csv(table, "lifetime_models.csv");

  std::printf(
      "Reading: the exponential Monte Carlo column reproduces the SOFR\n"
      "closed form (engine validation). Wear-out distributions lengthen the\n"
      "series-system lifetime ~2-3x at equal per-instance MTTFs — SOFR is\n"
      "conservative, as §2 acknowledges — but the relative degradation under\n"
      "scaling (the paper's actual claim) is preserved under every model.\n");
  return 0;
}
