// Ablation for Table 1: the sensitivity of each failure mechanism to
// temperature, voltage, and feature-size parameters, evaluated analytically
// on the mechanism models (no simulation). This is the quantitative version
// of the paper's qualitative summary table.
#include <cmath>

#include "core/mechanisms.hpp"
#include "util/table.hpp"

int main() {
  using namespace ramp;
  using namespace ramp::core;

  std::printf("=== Table 1 — sensitivity of MTTF/FIT to scaling parameters ===\n\n");

  const ElectromigrationModel em;
  const StressMigrationModel sm;
  const TddbModel tddb;  // dsn04_shape preset
  const ThermalCyclingModel tc;

  // --- temperature sensitivity: FIT multiplier per +10 K ------------------
  {
    TextTable table("FIT multiplier per +10 K (evaluated at V=1.0, tox=0.9nm)");
    table.set_header({"T (K)", "EM", "SM", "TDDB", "TC"});
    for (double t : {330.0, 345.0, 360.0, 375.0}) {
      table.add_row({fmt(t, 0),
                     fmt(em.raw_fit(5, t + 10, 1) / em.raw_fit(5, t, 1), 2),
                     fmt(sm.raw_fit(t + 10) / sm.raw_fit(t), 2),
                     fmt(tddb.raw_fit(1.0, t + 10, 0.9, 1) /
                             tddb.raw_fit(1.0, t, 0.9, 1),
                         2),
                     fmt(tc.raw_fit(t + 10) / tc.raw_fit(t), 2)});
    }
    std::printf("%s\n", table.str().c_str());
  }

  // --- voltage sensitivity (TDDB only) -------------------------------------
  {
    TextTable table("TDDB FIT multiplier per +0.1 V (only mechanism with V term)");
    table.set_header({"V", "at 345 K", "at 360 K", "at 375 K"});
    for (double v : {0.9, 1.0, 1.1, 1.2}) {
      std::vector<std::string> row = {fmt(v, 1)};
      for (double t : {345.0, 360.0, 375.0}) {
        row.push_back(fmt(
            tddb.raw_fit(v + 0.1, t, 0.9, 1) / tddb.raw_fit(v, t, 0.9, 1), 2));
      }
      table.add_row(row);
    }
    std::printf("%s\n", table.str().c_str());
  }

  // --- feature-size terms ---------------------------------------------------
  {
    TextTable table("Feature-size terms per node (relative to 180 nm)");
    table.set_header({"tech", "EM 1/(w*h) term", "TDDB 10^(dtox/s) term",
                      "TDDB area term"});
    const struct { const char* name; double lin; double tox; double area; }
        nodes[] = {{"180nm", 1.0, 2.5, 1.0},
                   {"130nm", 0.7, 1.7, 0.5},
                   {"90nm", 0.49, 1.2, 0.25},
                   {"65nm", 0.392, 0.9, 0.16}};
    for (const auto& n : nodes) {
      table.add_row({n.name, fmt(1.0 / (n.lin * n.lin), 2),
                     fmt(std::pow(10.0, (2.5 - n.tox) / tddb.tox_scale_nm), 1),
                     fmt(n.area, 2)});
    }
    std::printf("%s\n", table.str().c_str());
  }

  std::printf(
      "Reading (matches paper Table 1): temperature hits every mechanism —\n"
      "super-exponentially for TDDB, exponentially for EM/SM, polynomially\n"
      "(Coffin-Manson q=2.35) for TC; voltage affects only TDDB (beneficial\n"
      "when it scales down); shrinking w*h hurts EM and thinning tox hurts\n"
      "TDDB, partially offset by shrinking gate-oxide area.\n");
  return 0;
}
