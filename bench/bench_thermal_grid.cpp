// Ablation: block-mode vs grid-mode thermal modeling.
//
// The reproduction uses HotSpot-style block granularity (one RC node per
// structure, as the paper's 7-structure setup implies). This bench checks
// what that granularity hides: for each application's average power map at
// 180 nm and 65 nm (1.0 V), it compares the block model's structure
// temperatures against a 16x16 grid solve — block averages (model
// agreement) and intra-block peaks (what the block model cannot see).
#include <cmath>

#include "bench_common.hpp"
#include "power/power_model.hpp"
#include "thermal/grid_model.hpp"
#include "thermal/rc_model.hpp"

int main() {
  using namespace ramp;
  bench::print_header("Thermal granularity ablation",
                      "block-mode vs 16x16 grid-mode solves");

  const auto& sweep = bench::shared_sweep();
  const pipeline::EvaluationConfig cfg = bench::default_config();

  TextTable table("Hottest structure: block node vs grid average vs grid peak");
  table.set_header({"app", "tech", "block T (K)", "grid avg (K)",
                    "grid peak (K)", "intra-block gradient (K)"});

  for (const std::string app : {"crafty", "wupwise", "ammp"}) {
    for (const auto tp :
         {scaling::TechPoint::k180nm, scaling::TechPoint::k65nm_1V0}) {
      const auto& r = sweep.at(app, tp);
      const auto& tech = scaling::node(tp);
      const auto& w = workloads::workload(app);

      const power::PowerModel pm(cfg.power, tech);
      const thermal::Floorplan fp =
          thermal::power4_floorplan().scaled(std::sqrt(tech.relative_area));
      thermal::RcNetwork block_net(fp, cfg.thermal);
      const thermal::GridModel grid(fp, cfg.thermal, 16, 16);

      // Average power map from the sweep's recorded activities + leakage
      // at the recorded structure temperatures (single fixed point pass).
      power::StructurePower dyn = pm.dynamic_power(r.run.avg_activity);
      std::vector<double> p(fp.size(), 0.0);
      for (int s = 0; s < sim::kNumStructures; ++s) {
        const auto blk = fp.index_of(std::string(
            sim::structure_name(static_cast<sim::StructureId>(s))));
        p[blk] += dyn[static_cast<std::size_t>(s)] * w.power_bias +
                  pm.leakage_power(static_cast<sim::StructureId>(s),
                                   r.avg_die_temp_k);
      }

      const auto tb = block_net.steady_state(p);
      const auto tg = grid.steady_state(p);

      // Hottest block by the block model.
      std::size_t hot = 0;
      for (std::size_t b = 1; b < fp.size(); ++b) {
        if (tb[b] > tb[hot]) hot = b;
      }
      const double avg = grid.block_average(tg, hot);
      const double peak = grid.block_peak(tg, hot);
      table.add_row({app + " (" + fp.block(hot).name + ")",
                     std::string(scaling::tech_name(tp)), fmt(tb[hot], 1),
                     fmt(avg, 1), fmt(peak, 1), fmt(peak - avg, 2)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  bench::export_csv(table, "thermal_grid.csv");

  std::printf(
      "Reading: block and grid models agree on block averages (same\n"
      "vertical/sink physics), while the grid resolves an intra-block\n"
      "gradient that grows with scaling (higher power density). Since the\n"
      "failure models are super-linear in temperature, block-mode FIT is a\n"
      "mild underestimate — the direction, not the magnitude, of the\n"
      "paper's conclusions is unaffected.\n");
  return 0;
}
