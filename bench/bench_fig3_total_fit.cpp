// Reproduces Figure 3: total processor FIT value for each application at
// each technology node, plus the worst-case ("max") operating-condition
// curve, and the §5.2 headline numbers derived from it.
#include <algorithm>

#include "bench_common.hpp"

int main() {
  using namespace ramp;
  bench::print_header("Figure 3", "total processor FIT under scaling");

  const auto& sweep = bench::shared_sweep();

  for (const auto suite :
       {workloads::Suite::kSpecFp, workloads::Suite::kSpecInt}) {
    TextTable table(std::string(workloads::suite_name(suite)) +
                    " — total FIT per node (qualified at 180 nm)");
    std::vector<std::string> header = {"app"};
    for (const auto tp : scaling::kAllTechPoints) {
      header.push_back(std::string(scaling::tech_name(tp)));
    }
    table.set_header(header);
    for (const auto& w : workloads::suite_workloads(suite)) {
      std::vector<std::string> row = {w.name};
      for (const auto tp : scaling::kAllTechPoints) {
        row.push_back(fmt_fit(sweep.qualified_fits(sweep.at(w.name, tp)).total()));
      }
      table.add_row(row);
    }
    std::vector<std::string> max_row = {"max (worst case)"};
    for (const auto tp : scaling::kAllTechPoints) {
      max_row.push_back(fmt_fit(sweep.worst_case(tp).total()));
    }
    table.add_row(max_row);
    std::printf("%s\n", table.str().c_str());
    bench::export_csv(table, std::string("fig3_") +
                                 workloads::suite_name(suite) + ".csv");
    std::printf("\n");
  }

  // ---- §5.2 headline numbers -------------------------------------------
  auto avg = [&](scaling::TechPoint tp) {
    return sweep.average_total_fit_all(tp);
  };
  auto suite_avg = [&](workloads::Suite s, scaling::TechPoint tp) {
    return sweep.average_total_fit(s, tp);
  };
  const auto t180 = scaling::TechPoint::k180nm;
  const auto t65a = scaling::TechPoint::k65nm_0V9;
  const auto t65b = scaling::TechPoint::k65nm_1V0;

  std::printf("Headline numbers (paper §5.2 in parentheses):\n");
  std::printf("  total FIT increase 180nm -> 65nm (1.0V), all apps: %s  (+316%%)\n",
              fmt_pct_change(avg(t65b) / avg(t180)).c_str());
  std::printf("  SpecFP  increase: %s  (+274%%)\n",
              fmt_pct_change(suite_avg(workloads::Suite::kSpecFp, t65b) /
                             suite_avg(workloads::Suite::kSpecFp, t180))
                  .c_str());
  std::printf("  SpecInt increase: %s  (+357%%)\n",
              fmt_pct_change(suite_avg(workloads::Suite::kSpecInt, t65b) /
                             suite_avg(workloads::Suite::kSpecInt, t180))
                  .c_str());
  std::printf("  180nm -> 65nm (0.9V): SpecFP %s (+70%%), SpecInt %s (+86%%)\n",
              fmt_pct_change(suite_avg(workloads::Suite::kSpecFp, t65a) /
                             suite_avg(workloads::Suite::kSpecFp, t180))
                  .c_str(),
              fmt_pct_change(suite_avg(workloads::Suite::kSpecInt, t65a) /
                             suite_avg(workloads::Suite::kSpecInt, t180))
                  .c_str());

  // Worst-case vs application FIT gaps (as % of the quantity the paper uses).
  for (const auto tp : {t180, t65b}) {
    double highest = 0, sum = 0;
    for (const auto& r : sweep.results) {
      if (r.tech != tp) continue;
      const double f = sweep.qualified_fits(r).total();
      highest = std::max(highest, f);
      sum += f;
    }
    const double wc = sweep.worst_case(tp).total();
    std::printf(
        "  %s: worst-case is %.0f%% above the highest app (paper: %s), "
        "%.0f%% above the app average (paper: %s)\n",
        std::string(scaling::tech_name(tp)).c_str(),
        (wc - highest) / highest * 100.0,
        tp == t180 ? "25%" : "90%", (wc - sum / 16.0) / (sum / 16.0) * 100.0,
        tp == t180 ? "67%" : "206%");
  }

  // FIT range across apps (paper: 2479 -> 5095 -> 17272 FIT).
  for (const auto tp : {t180, t65a, t65b}) {
    double lo = 1e30, hi = 0, sum = 0;
    for (const auto& r : sweep.results) {
      if (r.tech != tp) continue;
      const double f = sweep.qualified_fits(r).total();
      lo = std::min(lo, f);
      hi = std::max(hi, f);
      sum += f;
    }
    std::printf("  FIT range across all apps at %s: %.0f (%.0f%% of average)\n",
                std::string(scaling::tech_name(tp)).c_str(), hi - lo,
                (hi - lo) / (sum / 16.0) * 100.0);
  }
  return 0;
}
