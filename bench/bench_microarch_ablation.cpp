// Ablation: optional microarchitecture features vs the calibrated base
// machine. The base POWER4-like model is calibrated to Table 3 *without*
// store-to-load forwarding or prefetching; this bench quantifies what each
// feature would add per workload — both in IPC and in the knock-on effect
// on power, temperature, and FIT (faster execution raises activity
// density, i.e. performance features are not reliability-neutral).
#include "bench_common.hpp"
#include "sim/ooo_core.hpp"
#include "trace/synthetic_generator.hpp"

namespace {

using namespace ramp;

sim::RunStats run_once(const workloads::Workload& w, bool fwd, bool pf,
                       std::uint64_t len) {
  sim::CoreConfig cfg = sim::base_core_config();
  cfg.enable_store_forwarding = fwd;
  cfg.enable_nextline_prefetch = pf;
  trace::SyntheticTrace t(w.profile, len, 42);
  sim::OooCore core(cfg);
  return core.run(t, 1100).totals;
}

}  // namespace

int main() {
  using namespace ramp;
  bench::print_header("Microarchitecture ablation",
                      "store forwarding and next-line prefetch vs base");

  const std::uint64_t len = env_u64("RAMP_ABLATION_LEN", 120'000);

  TextTable table("IPC at 180 nm under feature combinations");
  table.set_header({"app", "base", "+forwarding", "+prefetch", "+both",
                    "best gain", "L1D miss% base", "L1D miss% +pf"});
  for (const std::string name :
       {"ammp", "applu", "mgrid", "gcc", "vpr", "crafty", "bzip2", "wupwise"}) {
    const auto& w = workloads::workload(name);
    const auto base = run_once(w, false, false, len);
    const auto fwd = run_once(w, true, false, len);
    const auto pf = run_once(w, false, true, len);
    const auto both = run_once(w, true, true, len);
    const double best = std::max({fwd.ipc(), pf.ipc(), both.ipc()});
    table.add_row({name, fmt(base.ipc(), 2), fmt(fwd.ipc(), 2),
                   fmt(pf.ipc(), 2), fmt(both.ipc(), 2),
                   fmt_pct_change(best / base.ipc()),
                   fmt(base.l1d_miss_rate() * 100, 1),
                   fmt(pf.l1d_miss_rate() * 100, 1)});
  }
  std::printf("%s\n", table.str().c_str());
  bench::export_csv(table, "microarch_ablation.csv");

  std::printf(
      "Reading: prefetching helps the stream-heavy codes (their L1D\n"
      "misses are sequential); forwarding is timing-neutral here because\n"
      "store write-allocates already install the reload's line (it only\n"
      "removes cache traffic). Gains in IPC raise activity factors, so a\n"
      "remap that adds such features also shifts the reliability operating\n"
      "point — the co-design loop the paper argues for.\n");
  return 0;
}
