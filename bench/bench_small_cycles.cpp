// Extension bench: do small thermal cycles matter? (paper §2 leaves them
// unmodeled for lack of validated models.)
//
// Runs the transient pipeline for representative workloads, rainflow-counts
// the per-block temperature traces, and reports the Coffin-Manson damage of
// the small (application-induced) cycles in units of equivalent large
// power-off cycles. The punchline matches the engineering folklore the
// paper leaned on: at q = 2.35, micro-cycles of tenths of a Kelvin are
// orders of magnitude below one daily power cycle.
#include <cmath>

#include "bench_common.hpp"
#include "core/rainflow.hpp"
#include "power/power_model.hpp"
#include "sim/ooo_core.hpp"
#include "thermal/rc_model.hpp"
#include "trace/synthetic_generator.hpp"

int main() {
  using namespace ramp;
  bench::print_header("Small-cycle ablation",
                      "rainflow-counted application thermal cycles");

  const pipeline::EvaluationConfig cfg = bench::default_config();
  const pipeline::Evaluator evaluator(cfg);

  TextTable table("Small-cycle damage per second of execution, 65 nm (1.0V)");
  table.set_header({"app", "cycles/s", "median dT (K)", "max dT (K)",
                    "damage vs one large cycle/s", "large cycles/day equiv"});

  for (const std::string app : {"crafty", "gcc", "ammp", "mgrid"}) {
    const auto& w = workloads::workload(app);
    const auto base = evaluator.evaluate(w, scaling::TechPoint::k180nm);
    const auto& tech = scaling::node(scaling::TechPoint::k65nm_1V0);

    // Rebuild the transient pipeline to capture the per-interval hottest
    // block temperature trace.
    const sim::CoreConfig core_cfg = sim::core_config_for(tech);
    trace::SyntheticTrace stream(w.profile, cfg.trace_instructions,
                                 cfg.seed ^ 0x5eed);
    sim::OooCore core(core_cfg);
    const auto sim_result = core.run(
        stream, static_cast<std::uint64_t>(
                    std::llround(core_cfg.frequency_hz * cfg.interval_seconds)));

    const power::PowerModel pm(cfg.power, tech);
    const thermal::Floorplan fp =
        thermal::power4_floorplan().scaled(std::sqrt(tech.relative_area));
    thermal::RcNetwork net(fp, cfg.thermal);
    const std::size_t hot_block = fp.index_of("FXU");

    std::vector<double> avg_p(fp.size(), 0.0);
    {
      const auto dyn = pm.dynamic_power(sim_result.totals.avg_activity);
      for (int s = 0; s < sim::kNumStructures; ++s) {
        const auto blk = fp.index_of(std::string(
            sim::structure_name(static_cast<sim::StructureId>(s))));
        avg_p[blk] += dyn[static_cast<std::size_t>(s)] * w.power_bias + 1.0;
      }
    }
    thermal::Transient tr(net, net.steady_state(avg_p), cfg.interval_seconds);

    std::vector<double> trace_temps;
    double elapsed = 0.0;
    for (const auto& iv : sim_result.intervals) {
      auto dyn = pm.dynamic_power(iv.activity);
      std::vector<double> bp(fp.size(), 0.0);
      for (int s = 0; s < sim::kNumStructures; ++s) {
        const auto blk = fp.index_of(std::string(
            sim::structure_name(static_cast<sim::StructureId>(s))));
        bp[blk] += dyn[static_cast<std::size_t>(s)] * w.power_bias +
                   pm.leakage_power(static_cast<sim::StructureId>(s),
                                    tr.temperatures()[blk]);
      }
      tr.step(bp);
      trace_temps.push_back(tr.temperatures()[hot_block]);
      elapsed += static_cast<double>(iv.cycles) / core_cfg.frequency_hz;
    }

    // Large reference cycle: average die temp over ambient (eq. 4 inputs).
    const double ref_range = base.avg_die_temp_k - 300.0;
    core::SmallCycleDamage damage(2.35, ref_range, 1e-4);
    damage.add_signal(trace_temps);

    const auto cycles = core::rainflow_count(trace_temps);
    std::vector<double> ranges;
    double max_r = 0.0;
    for (const auto& c : cycles) {
      ranges.push_back(c.range);
      max_r = std::max(max_r, c.range);
    }
    std::sort(ranges.begin(), ranges.end());
    const double median =
        ranges.empty() ? 0.0 : ranges[ranges.size() / 2];

    const double per_s = elapsed > 0 ? damage.total_damage() / elapsed : 0.0;
    table.add_row(
        {app, fmt(damage.cycles_counted() / elapsed, 0), fmt(median, 3),
         fmt(max_r, 3), fmt(per_s, 6),
         fmt(per_s * 86400.0, 3)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: each sub-Kelvin application cycle is ~1e-8 of a large cycle\n"
      "(the q = 2.35 power law crushes small ranges), so per-cycle the\n"
      "paper's omission is safe; only integrated over a full day do the\n"
      "thousands of micro-cycles per second reach the same order as the\n"
      "single daily power-off cycle — the boundary the later literature\n"
      "explored when it revisited small-cycle fatigue.\n");
  return 0;
}
