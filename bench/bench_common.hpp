// Shared setup for the table/figure reproduction benches.
//
// Every bench regenerates one table or figure of the paper from the same
// full sweep (16 apps × 5 nodes). The sweep result is cached on disk
// (<out dir>/ramp_sweep_cache.csv) so the suite of benches pays for
// simulation once. Environment overrides:
//   RAMP_TRACE_LEN  instructions per synthetic trace (default 300000)
//   RAMP_SEED       base RNG seed (default 42)
//   RAMP_CACHE=off  recompute instead of using/writing the cache
//   RAMP_JOBS       sweep worker threads (default: hardware concurrency)
//   RAMP_OUT_DIR    directory for CSV exports and the cache (default out/)
#pragma once

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "pipeline/sweep.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace ramp::bench {

inline pipeline::EvaluationConfig default_config() {
  return pipeline::EvaluationConfig::from_env(/*trace_len=*/300'000);
}

inline const pipeline::SweepResult& shared_sweep() {
  static const pipeline::SweepResult sweep = [] {
    static pipeline::StderrProgress progress;
    pipeline::SweepRunner::Options opts;
    opts.jobs = env_jobs("RAMP_JOBS",
                         std::max(1u, std::thread::hardware_concurrency()));
    opts.cache_path =
        (std::filesystem::path(output_dir()) / "ramp_sweep_cache.csv").string();
    opts.observer = &progress;
    return pipeline::SweepRunner(default_config(), opts).run();
  }();
  return sweep;
}

/// Prints a standard bench header naming the paper artifact reproduced.
inline void print_header(const std::string& artifact, const std::string& what) {
  std::printf("=== %s — %s ===\n", artifact.c_str(), what.c_str());
  std::printf(
      "(reproduction of Srinivasan et al., DSN 2004; shape-level comparison,\n"
      " see EXPERIMENTS.md for paper-vs-measured discussion)\n\n");
}

/// Writes the table as CSV into the output directory ($RAMP_OUT_DIR,
/// default out/) for plotting, best effort.
inline void export_csv(const TextTable& table, const std::string& filename) {
  try {
    const std::filesystem::path dir(output_dir());
    std::filesystem::create_directories(dir);
    const std::string path = (dir / filename).string();
    table.write_csv(path);
    std::printf("[csv written to %s]\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "csv export failed: %s\n", e.what());
  }
}

}  // namespace ramp::bench
