// Shared setup for the table/figure reproduction benches.
//
// Every bench regenerates one table or figure of the paper from the same
// full sweep (16 apps × 5 nodes). The sweep result is cached on disk
// (ramp_sweep_cache.csv in the working directory) so the suite of benches
// pays for simulation once. Environment overrides:
//   RAMP_TRACE_LEN  instructions per synthetic trace (default 300000)
//   RAMP_SEED       base RNG seed (default 42)
//   RAMP_CACHE=off  recompute instead of using/writing the cache
#pragma once

#include <cstdio>
#include <string>

#include "pipeline/sweep.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace ramp::bench {

inline pipeline::EvaluationConfig default_config() {
  pipeline::EvaluationConfig cfg;
  cfg.trace_instructions = env_u64("RAMP_TRACE_LEN", 300'000);
  cfg.seed = env_u64("RAMP_SEED", 42);
  return cfg;
}

inline const pipeline::SweepResult& shared_sweep() {
  static const pipeline::SweepResult sweep =
      pipeline::run_sweep(default_config());
  return sweep;
}

/// Prints a standard bench header naming the paper artifact reproduced.
inline void print_header(const std::string& artifact, const std::string& what) {
  std::printf("=== %s — %s ===\n", artifact.c_str(), what.c_str());
  std::printf(
      "(reproduction of Srinivasan et al., DSN 2004; shape-level comparison,\n"
      " see EXPERIMENTS.md for paper-vs-measured discussion)\n\n");
}

/// Writes the table as CSV next to the cache for plotting, best effort.
inline void export_csv(const TextTable& table, const std::string& filename) {
  try {
    table.write_csv(filename);
    std::printf("[csv written to %s]\n", filename.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "csv export failed: %s\n", e.what());
  }
}

}  // namespace ramp::bench
