// Reproduces Table 3: average IPC and power consumption of the 16 SPEC2K
// benchmarks on the base 180 nm processor, paper vs measured.
//
// Also echoes the Table 2 machine configuration the simulator models.
#include "bench_common.hpp"
#include "sim/core_config.hpp"

int main() {
  using namespace ramp;
  bench::print_header("Table 3", "IPC and power of the 180 nm base processor");

  const auto& cfg = sim::base_core_config();
  std::printf(
      "machine (Table 2): fetch %d/cyc, dispatch group %d, %d Int + %d FP + "
      "%d LS + %d BR + %d LCR units,\n  ROB %d, regs %d int / %d fp, memq %d, "
      "L1 %lluKB/%lluKB, L2 %lluKB, lat %d/%d/%d cyc, %.1f GHz\n\n",
      cfg.fetch_width, cfg.dispatch_group, cfg.int_units, cfg.fp_units,
      cfg.ls_units, cfg.br_units, cfg.cr_units, cfg.rob_size, cfg.int_regs,
      cfg.fp_regs, cfg.mem_queue,
      static_cast<unsigned long long>(cfg.l1i.size_bytes / 1024),
      static_cast<unsigned long long>(cfg.l1d.size_bytes / 1024),
      static_cast<unsigned long long>(cfg.l2.size_bytes / 1024), cfg.lat_l1d,
      cfg.lat_l2, cfg.lat_memory, cfg.frequency_hz / 1e9);

  const auto& sweep = bench::shared_sweep();

  for (const auto suite :
       {workloads::Suite::kSpecFp, workloads::Suite::kSpecInt}) {
    TextTable table(std::string(workloads::suite_name(suite)) +
                    " at 180 nm (paper Table 3 vs measured)");
    table.set_header({"app", "IPC (paper)", "IPC (measured)", "power W (paper)",
                      "power W (measured)", "bmiss%", "L1D miss%"});
    double ipc_p = 0, ipc_m = 0, pw_p = 0, pw_m = 0;
    for (const auto& w : workloads::suite_workloads(suite)) {
      const auto& r = sweep.at(w.name, scaling::TechPoint::k180nm);
      table.add_row({w.name, fmt(w.table3_ipc, 2), fmt(r.ipc, 2),
                     fmt(w.table3_power_w, 2), fmt(r.avg_total_power_w, 2),
                     fmt(r.run.branch_mispredict_rate() * 100, 1),
                     fmt(r.run.l1d_miss_rate() * 100, 1)});
      ipc_p += w.table3_ipc;
      ipc_m += r.ipc;
      pw_p += w.table3_power_w;
      pw_m += r.avg_total_power_w;
    }
    table.add_row({"Average", fmt(ipc_p / 8, 2), fmt(ipc_m / 8, 2),
                   fmt(pw_p / 8, 2), fmt(pw_m / 8, 2), "", ""});
    std::printf("%s\n", table.str().c_str());
    bench::export_csv(table, std::string("table3_") +
                                 workloads::suite_name(suite) + ".csv");
    std::printf("\n");
  }
  return 0;
}
