// Ablation: the two TDDB parameter presets (wu2002 literature constants vs
// the dsn04_shape fit) evaluated over the technology nodes at representative
// operating points. Documents why the default preset is the fitted one —
// the paper's published TDDB curve is not reproducible from its printed
// constants (see DESIGN.md, "Model-constant correction").
#include "core/mechanisms.hpp"
#include "scaling/technology.hpp"
#include "util/table.hpp"

int main() {
  using namespace ramp;
  using namespace ramp::core;

  std::printf("=== TDDB preset ablation (wu2002 vs dsn04_shape) ===\n\n");

  // Representative per-node operating temperatures from the full pipeline.
  const struct { scaling::TechPoint tp; double temp; } points[] = {
      {scaling::TechPoint::k180nm, 350.0},  {scaling::TechPoint::k130nm, 351.0},
      {scaling::TechPoint::k90nm, 355.0},   {scaling::TechPoint::k65nm_0V9, 360.0},
      {scaling::TechPoint::k65nm_1V0, 364.0}};
  const char* paper[] = {"1.00", "~0.85 (slight dip)", "~1.0", "2.06 (+106%)",
                         "7.67 (+667%)"};

  for (const auto preset : {TddbModel::dsn04_shape(), TddbModel::wu2002()}) {
    const bool is_shape = preset.tox_scale_nm > 0.3;
    TextTable table(is_shape ? "dsn04_shape preset (default)"
                             : "wu2002 preset (literature constants)");
    table.set_header({"tech", "V", "T (K)", "n = a-bT", "FIT ratio vs 180nm",
                      "paper (SpecFP)"});
    double base = 0.0;
    int i = 0;
    for (const auto& pt : points) {
      const auto& n = scaling::node(pt.tp);
      const double fit =
          preset.raw_fit(n.vdd, pt.temp, n.tox_nm, n.relative_area);
      if (i == 0) base = fit;
      table.add_row({n.name, fmt(n.vdd, 1), fmt(pt.temp, 0),
                     fmt(preset.voltage_exponent(pt.temp), 1),
                     fmt(fit / base, 3), paper[i]});
      ++i;
    }
    std::printf("%s\n", table.str().c_str());
  }

  std::printf(
      "The wu2002 exponent (~48) makes voltage scaling overwhelm the oxide\n"
      "thinning term, predicting huge TDDB *improvements* at scaled nodes —\n"
      "contradicting every published TDDB result. The dsn04_shape fit\n"
      "(effective exponent ~10-16) reproduces the published signs and\n"
      "magnitudes at both 65 nm points and keeps TDDB the dominant 65 nm\n"
      "mechanism; its one shape miss is the small 130 nm dip.\n");
  return 0;
}
