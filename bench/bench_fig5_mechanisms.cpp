// Reproduces Figure 5: per-application failure rates for each individual
// failure mechanism (EM, SM, TDDB, TC), for SpecFP and SpecInt, with the
// worst-case ("max") curve — eight panels in the paper, eight tables here.
#include "bench_common.hpp"

int main() {
  using namespace ramp;
  bench::print_header("Figure 5", "per-mechanism FIT curves under scaling");

  const auto& sweep = bench::shared_sweep();

  for (int m = 0; m < core::kNumMechanisms; ++m) {
    const auto mech = static_cast<core::Mechanism>(m);
    for (const auto suite :
         {workloads::Suite::kSpecFp, workloads::Suite::kSpecInt}) {
      TextTable table(std::string(core::mechanism_name(mech)) + " — " +
                      workloads::suite_name(suite));
      std::vector<std::string> header = {"app"};
      for (const auto tp : scaling::kAllTechPoints) {
        header.push_back(std::string(scaling::tech_name(tp)));
      }
      table.set_header(header);
      for (const auto& w : workloads::suite_workloads(suite)) {
        std::vector<std::string> row = {w.name};
        for (const auto tp : scaling::kAllTechPoints) {
          const auto fits = sweep.qualified_fits(sweep.at(w.name, tp));
          row.push_back(
              fmt_fit(fits.by_mechanism()[static_cast<std::size_t>(m)]));
        }
        table.add_row(row);
      }
      std::vector<std::string> max_row = {"max (worst case)"};
      for (const auto tp : scaling::kAllTechPoints) {
        max_row.push_back(fmt_fit(
            sweep.worst_case(tp).by_mechanism()[static_cast<std::size_t>(m)]));
      }
      table.add_row(max_row);
      std::printf("%s\n", table.str().c_str());
      bench::export_csv(table, std::string("fig5_") +
                                   std::string(core::mechanism_name(mech)) +
                                   "_" + workloads::suite_name(suite) + ".csv");
      std::printf("\n");
    }
  }

  // §5.3 headline ratios for quick comparison.
  std::printf("Suite-average increases 180nm -> 65nm (paper values):\n");
  const struct { core::Mechanism m; const char* fp10; const char* in10;
                 const char* fp09; const char* in09; } refs[] = {
      {core::Mechanism::kEm, "+303%", "+447%", "+97%", "+128%"},
      {core::Mechanism::kSm, "+76%", "+106%", "+43%", "+52%"},
      {core::Mechanism::kTddb, "+667%", "+812%", "+106%", "+127%"},
      {core::Mechanism::kTc, "+52%", "+66%", "+32%", "+36%"},
  };
  for (const auto& ref : refs) {
    auto ratio = [&](workloads::Suite s, scaling::TechPoint tp) {
      return sweep.average_mechanism_fit(s, tp, ref.m) /
             sweep.average_mechanism_fit(s, scaling::TechPoint::k180nm, ref.m);
    };
    std::printf(
        "  %-4s 1.0V: FP %s (%s), Int %s (%s);  0.9V: FP %s (%s), Int %s (%s)\n",
        std::string(core::mechanism_name(ref.m)).c_str(),
        fmt_pct_change(ratio(workloads::Suite::kSpecFp,
                             scaling::TechPoint::k65nm_1V0)).c_str(),
        ref.fp10,
        fmt_pct_change(ratio(workloads::Suite::kSpecInt,
                             scaling::TechPoint::k65nm_1V0)).c_str(),
        ref.in10,
        fmt_pct_change(ratio(workloads::Suite::kSpecFp,
                             scaling::TechPoint::k65nm_0V9)).c_str(),
        ref.fp09,
        fmt_pct_change(ratio(workloads::Suite::kSpecInt,
                             scaling::TechPoint::k65nm_0V9)).c_str(),
        ref.in09);
  }
  return 0;
}
