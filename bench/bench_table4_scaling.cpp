// Reproduces Table 4: the scaled technology parameters plus the
// simulation-derived columns — average total power (dynamic + leakage) and
// relative total power density — for each technology node.
#include "bench_common.hpp"

int main() {
  using namespace ramp;
  bench::print_header("Table 4", "scaled parameters and measured power");

  const auto& sweep = bench::shared_sweep();

  // Paper's published power column for side-by-side comparison.
  const double paper_power[5] = {29.1, 19.0, 14.7, 14.4, 16.9};
  const double paper_density[5] = {1.0, 1.31, 2.02, 3.09, 3.63};

  TextTable table("Table 4 — scaled parameters (fixed) and measured power");
  table.set_header({"tech", "Vdd V", "freq GHz", "rel C", "rel area", "tox A",
                    "Jmax mA/um2", "leak W/mm2", "power W (paper)",
                    "power W (meas)", "rel density (paper)",
                    "rel density (meas)"});

  double base_density = 0.0;
  int row = 0;
  for (const auto tp : scaling::kAllTechPoints) {
    const auto& n = scaling::node(tp);
    double p = 0.0;
    for (const auto& r : sweep.results) {
      if (r.tech == tp) p += r.avg_total_power_w;
    }
    p /= 16.0;
    const double area = 81.0 * n.relative_area;
    const double density = p / area;
    if (row == 0) base_density = density;
    table.add_row({n.name, fmt(n.vdd, 1), fmt(n.frequency_hz / 1e9, 2),
                   fmt(n.relative_capacitance, 2), fmt(n.relative_area, 2),
                   fmt(n.tox_nm * 10.0, 0), fmt(n.jmax_ma_per_um2, 1),
                   fmt(n.leakage_w_per_mm2_at_383k, 3),
                   fmt(paper_power[row], 1), fmt(p, 1),
                   fmt(paper_density[row], 2), fmt(density / base_density, 2)});
    ++row;
  }
  std::printf("%s\n", table.str().c_str());
  bench::export_csv(table, "table4_scaling.csv");
  return 0;
}
