// Ablation: thermal-sensing non-idealities vs DRM effectiveness.
//
// The DRM controller acts on what its sensor reports, not on the true
// junction temperature. This bench drives the closed loop with a synthetic
// hot/cool phase pattern whose *true* FIT stream is known, while the
// controller's view of the temperature (which scales the FIT estimate it
// regulates on) passes through sensors of varying quality. An optimistic
// sensor (reads cold) lets the chip exceed its reliability budget; a
// pessimistic one wastes performance; noise plus quantization mostly
// average out thanks to the controller's time-averaging.
#include <cmath>

#include "bench_common.hpp"
#include "drm/drm_controller.hpp"
#include "drm/thermal_sensor.hpp"

int main() {
  using namespace ramp;
  bench::print_header("Sensor-error ablation",
                      "DRM outcomes under imperfect thermal sensing");

  // True operating pattern at 65 nm (1.0 V): alternating phases, the same
  // shape the drm_closed_loop example uses, with a known temperature-to-FIT
  // sensitivity around the operating point.
  const double hot_fit = 18000.0, cool_fit = 6000.0;
  const double hot_temp = 365.0, cool_temp = 350.0;
  // Local FIT-vs-temperature sensitivity (log-linear around the operating
  // point): d(lnFIT)/dT ≈ 7%/K for the combined mechanisms at ~360 K.
  const double sens_per_k = 0.07;

  const auto ladder =
      drm::dvfs_ladder(scaling::node(scaling::TechPoint::k65nm_1V0), 4, 0.05);
  // Rung factors as in the closed-loop example: V²f-driven cooling.
  std::vector<double> rung_temp_drop, rung_fit_scale;
  for (const auto& p : ladder) {
    const double rel_power = (p.vdd * p.vdd * p.frequency_hz) / 2.0e9;
    const double drop = (1.0 - rel_power) * 25.0;  // K below nominal rise
    rung_temp_drop.push_back(drop);
    rung_fit_scale.push_back(std::exp(-sens_per_k * drop) *
                             std::pow(p.vdd / 1.0, 10.0));
  }

  TextTable table("10 ms closed loop, 4000-FIT budget, varying sensors");
  table.set_header({"sensor", "true avg FIT", "budget met?",
                    "avg rel. performance", "switches"});

  const struct {
    const char* name;
    drm::SensorConfig cfg;
  } sensors[] = {
      {"ideal", {0.0, 0.0, 0.0, 0.0}},
      {"noisy (sigma 1 K) + 1 K quant", {0.0, 1.0, 1.0, 100e-6}},
      {"optimistic (-4 K offset)", {-4.0, 0.5, 1.0, 100e-6}},
      {"pessimistic (+4 K offset)", {4.0, 0.5, 1.0, 100e-6}},
  };

  for (const auto& s : sensors) {
    drm::DrmConfig dcfg;
    dcfg.fit_budget = 4000.0;
    dcfg.headroom = 0.05;
    dcfg.dwell_seconds = 100e-6;
    drm::DrmController ctl(dcfg, ladder);
    drm::ThermalSensor sensor(s.cfg, 99);

    TimeWeightedMean true_fit_avg;
    const double dt = 1e-6;
    for (double t = 0.0; t < 10e-3; t += dt) {
      const bool hot = static_cast<int>(t / 50e-6) % 2 == 0;
      const auto rung = static_cast<std::size_t>(ctl.current_index());
      const double true_temp =
          (hot ? hot_temp : cool_temp) - rung_temp_drop[rung];
      const double true_fit =
          (hot ? hot_fit : cool_fit) * rung_fit_scale[rung];
      true_fit_avg.add(true_fit, dt);

      // The controller sees the FIT implied by the *sensor* temperature.
      const double seen_temp = sensor.read(true_temp, dt);
      const double seen_fit =
          true_fit * std::exp(sens_per_k * (seen_temp - true_temp));
      ctl.update(seen_fit, dt);
    }

    const double actual = true_fit_avg.mean();
    table.add_row({s.name, fmt(actual, 0),
                   actual <= 4000.0 * 1.10 ? "yes" : "NO (over budget)",
                   fmt(ctl.average_performance(), 3),
                   std::to_string(ctl.switches())});
  }
  std::printf("%s\n", table.str().c_str());
  bench::export_csv(table, "sensor_error.csv");

  std::printf(
      "Reading: read noise and quantization make the controller chatter\n"
      "across its hysteresis band (more switches) and overshoot the budget\n"
      "moderately — the FIT-vs-temperature exponential turns symmetric\n"
      "temperature noise into asymmetric reliability exposure. A systematic\n"
      "optimistic offset is worse still (the chip silently ages ~60%% past\n"
      "budget), while a pessimistic offset just buys margin with a little\n"
      "throughput. Calibration and filtering both matter in a shipped loop.\n");
  return 0;
}
