// Extension bench: structural duplication vs the scaling-induced lifetime
// loss. The paper concludes that remapping a design to 65 nm costs a large
// fraction of its qualified lifetime; the follow-up research direction is
// buying it back with spare structures. This bench sweeps spare plans on
// the 65 nm (1.0 V) node and reports mean lifetime vs area overhead —
// including the targeted plan that spares only the highest-FIT structures.
#include <algorithm>

#include "bench_common.hpp"
#include "core/redundancy.hpp"

int main() {
  using namespace ramp;
  bench::print_header("Structural-duplication study",
                      "buying back the 65 nm lifetime with spares");

  const auto& sweep = bench::shared_sweep();
  constexpr std::uint64_t kSamples = 20000;

  // Suite-average qualified FIT summary at 65 nm (1.0 V): average each cell
  // across apps so the plan targets the expected workload mix.
  core::FitSummary avg{};
  for (const auto& w : workloads::spec2k_suite()) {
    const auto fits =
        sweep.qualified_fits(sweep.at(w.name, scaling::TechPoint::k65nm_1V0));
    for (int s = 0; s < sim::kNumStructures; ++s) {
      for (int m = 0; m < core::kNumMechanisms; ++m) {
        avg.by_structure[static_cast<std::size_t>(s)][static_cast<std::size_t>(m)] +=
            fits.by_structure[static_cast<std::size_t>(s)][static_cast<std::size_t>(m)] / 16.0;
      }
    }
    avg.tc_fit += fits.tc_fit / 16.0;
  }

  core::LifetimeModelConfig cfg;
  cfg.family = core::LifetimeFamily::kWeibull;

  // Targeted plan: spare the two structures with the highest total FIT.
  core::SparePlan targeted;
  {
    std::array<std::pair<double, int>, sim::kNumStructures> ranked{};
    for (int s = 0; s < sim::kNumStructures; ++s) {
      double t = 0;
      for (double v : avg.by_structure[static_cast<std::size_t>(s)]) t += v;
      ranked[static_cast<std::size_t>(s)] = {t, s};
    }
    std::sort(ranked.begin(), ranked.end(),
              [](auto a, auto b) { return a.first > b.first; });
    targeted.spares[static_cast<std::size_t>(ranked[0].second)] = 1;
    targeted.spares[static_cast<std::size_t>(ranked[1].second)] = 1;
  }

  TextTable table("Mean chip lifetime at 65 nm (1.0V), Weibull wear-out");
  table.set_header({"plan", "area overhead", "mean life (y)", "p05 (y)",
                    "gain vs no spares"});
  const struct {
    const char* name;
    core::SparePlan plan;
  } plans[] = {
      {"no spares (baseline)", core::SparePlan{}},
      {"targeted: top-2 FIT structures", targeted},
      {"uniform x1 (every structure)", core::SparePlan::uniform(1)},
      {"uniform x2", core::SparePlan::uniform(2)},
  };
  double baseline = 0.0;
  for (const auto& p : plans) {
    const core::RedundantLifetimeMonteCarlo mc(avg, p.plan, cfg);
    const auto est = mc.estimate(kSamples, 17);
    if (baseline == 0.0) baseline = est.mean_years;
    table.add_row({p.name, fmt(p.plan.area_overhead() * 100, 0) + "%",
                   fmt(est.mean_years, 1), fmt(est.p05_years, 1),
                   fmt_pct_change(est.mean_years / baseline)});
  }
  std::printf("%s\n", table.str().c_str());
  bench::export_csv(table, "redundancy.csv");

  std::printf(
      "Reading: a targeted spare plan recovers a large share of the\n"
      "full-duplication benefit at a fraction of the area — the\n"
      "structural-duplication direction the paper's conclusions seeded.\n");
  return 0;
}
