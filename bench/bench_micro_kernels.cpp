// Performance microbenchmarks (google-benchmark) for the library's hot
// kernels: trace synthesis, timing simulation, the thermal solvers, and the
// failure-model evaluation loop. These guard the "full sweep in seconds"
// property the reproduction benches depend on.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/fit_tracker.hpp"
#include "fleet/fleet_simulator.hpp"
#include "fleet/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "pipeline/evaluator.hpp"
#include "pipeline/stage_graph.hpp"
#include "sim/interval_model.hpp"
#include "sim/ooo_core.hpp"
#include "sim/sampled_core.hpp"
#include "sim/sim_mode.hpp"
#include "thermal/rc_model.hpp"
#include "trace/synthetic_generator.hpp"
#include "util/env.hpp"
#include "workloads/spec2k.hpp"

namespace {

using namespace ramp;

void BM_TraceGeneration(benchmark::State& state) {
  const auto& w = workloads::workload("gcc");
  std::uint64_t n = 0;
  for (auto _ : state) {
    trace::SyntheticTrace t(w.profile, 10000, 42);
    trace::Instruction ins;
    while (t.next(ins)) benchmark::DoNotOptimize(ins.pc);
    n += 10000;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TraceGeneration);

void BM_TimingSimulation(benchmark::State& state) {
  const auto& w = workloads::workload(
      state.range(0) == 0 ? "crafty" : "ammp");  // high vs low IPC
  std::uint64_t n = 0;
  for (auto _ : state) {
    trace::SyntheticTrace t(w.profile, 20000, 42);
    sim::OooCore core(sim::base_core_config());
    const auto r = core.run(t, 1100);
    benchmark::DoNotOptimize(r.totals.cycles);
    n += 20000;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
  state.SetLabel(w.name);
}
BENCHMARK(BM_TimingSimulation)->Arg(0)->Arg(1);

// ---- fast timing simulation ------------------------------------------------
// The three sim engines over the identical 2M-instruction gzip stream at the
// 180 nm node — long enough that the sampled estimator's fixed costs (detailed
// prefix, per-unit warmup) are amortized, matching its tolerance contract.
// BM_SimSampled / BM_SimDetailed are the speedup pair CI holds to the
// advertised >= 5x via check_bench_regression.py --ratio (docs/PERFORMANCE.md).

constexpr std::uint64_t kSimBenchInstructions = 2'000'000;

const workloads::Workload& sim_bench_workload() {
  return workloads::workload("gzip");
}

void BM_SimDetailed(benchmark::State& state) {
  const auto cfg = sim::core_config_for(scaling::base_node());
  const auto& w = sim_bench_workload();
  std::uint64_t n = 0;
  for (auto _ : state) {
    trace::SyntheticTrace t(w.profile, kSimBenchInstructions, 42);
    sim::OooCore core(cfg);
    benchmark::DoNotOptimize(core.run(t, 1100).totals.cycles);
    n += kSimBenchInstructions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimDetailed);

void BM_SimSampled(benchmark::State& state) {
  const auto cfg = sim::core_config_for(scaling::base_node());
  const auto& w = sim_bench_workload();
  std::uint64_t n = 0;
  for (auto _ : state) {
    trace::SyntheticTrace t(w.profile, kSimBenchInstructions, 42);
    sim::SampledCore core(cfg, sim::SampledParams{});
    benchmark::DoNotOptimize(core.run(t, 1100).totals.cycles);
    n += kSimBenchInstructions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimSampled);

void BM_SimInterval(benchmark::State& state) {
  const auto cfg = sim::core_config_for(scaling::base_node());
  const auto& w = sim_bench_workload();
  std::uint64_t n = 0;
  for (auto _ : state) {
    trace::SyntheticTrace t(w.profile, kSimBenchInstructions, 42);
    sim::IntervalModel model(cfg);
    benchmark::DoNotOptimize(model.run(t, 1100).totals.cycles);
    n += kSimBenchInstructions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimInterval);

void BM_ThermalSteadyState(benchmark::State& state) {
  const thermal::RcNetwork net(thermal::power4_floorplan(), {});
  const std::vector<double> p(net.num_blocks(), 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.steady_state(p));
  }
}
BENCHMARK(BM_ThermalSteadyState);

void BM_ThermalTransientStep(benchmark::State& state) {
  const thermal::RcNetwork net(thermal::power4_floorplan(), {});
  const std::vector<double> p(net.num_blocks(), 4.0);
  thermal::Transient tr(net, net.steady_state(p), 1e-6);
  std::uint64_t n = 0;
  for (auto _ : state) {
    tr.step(p);
    benchmark::DoNotOptimize(tr.temperatures().front());
    ++n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ThermalTransientStep);

void BM_FitEvaluation(benchmark::State& state) {
  const core::RampModel model(scaling::base_node());
  core::FitTracker tracker(model);
  std::array<double, sim::kNumStructures> temps{};
  temps.fill(355.0);
  std::array<double, sim::kNumStructures> act{};
  act.fill(0.5);
  // Per-interval bookkeeping on the process-wide registry, exactly as the
  // instrumented pipeline does it: a pre-resolved handle that is null under
  // RAMP_METRICS=off, and a flight-recorder buffer that exists only when
  // RAMP_TIMELINE is set (the evaluator's timeline-off path is this same
  // null-pointer test). CI runs this kernel with everything off vs metrics on
  // + timeline off and fails if the instrumented path costs more than 5%
  // (scripts/check_obs_overhead.py).
  obs::Counter intervals =
      obs::MetricsRegistry::global().counter("ramp_bench_fit_intervals_total");
  std::unique_ptr<obs::TimelineBuffer> timeline;
  if (env_on_off_or_value("RAMP_TIMELINE")) {
    timeline = std::make_unique<obs::TimelineBuffer>(512);
  }
  std::uint64_t n = 0;
  for (auto _ : state) {
    tracker.add_interval(temps, act, 1.3, 1e-6);
    intervals.inc();
    if (timeline) {
      obs::TimelinePoint p;
      p.interval = n;
      p.time_s = 1e-6 * static_cast<double>(n + 1);
      p.ipc = 1.3;
      p.temp_k.assign(temps.begin(), temps.end());
      const auto mech = tracker.summary().by_mechanism();
      p.fit_avg.assign(mech.begin(), mech.end());
      timeline->push(std::move(p));
    }
    ++n;
  }
  benchmark::DoNotOptimize(tracker.summary().total());
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
  state.SetLabel(timeline ? "timeline" : "no-timeline");
}
BENCHMARK(BM_FitEvaluation);

void BM_PipelineEvaluate(benchmark::State& state) {
  // End-to-end macro-benchmark: one full evaluate() — synthetic trace,
  // timing simulation, steady-state + transient thermal, and the FIT loop.
  // This is the unit of work a sweep runs 80 times; the per-interval
  // workspace and FIT-kernel memoization land here. Two nodes: 180 nm
  // (base) and 65 nm at 1.0 V (leakiest, most temperature feedback).
  const auto point = state.range(0) == 0 ? scaling::TechPoint::k180nm
                                         : scaling::TechPoint::k65nm_1V0;
  pipeline::EvaluationConfig cfg;
  cfg.trace_instructions = 25'000;
  const pipeline::Evaluator ev(cfg);
  const auto& w = workloads::workload("gzip");
  std::uint64_t n = 0;
  for (auto _ : state) {
    const auto r = ev.evaluate(w, point);
    benchmark::DoNotOptimize(r.raw_fits.total());
    n += cfg.trace_instructions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
  state.SetLabel(std::string(scaling::tech_token(point)));
}
BENCHMARK(BM_PipelineEvaluate)->Arg(0)->Arg(1);

void run_pipeline_long(benchmark::State& state, sim::SimMode mode) {
  // End-to-end evaluate() at a trace length where the fast sim path pays off
  // (auto resolves to sampled from 1M instructions up). Distinct op names so
  // the CI ratio gate can hold sampled-mode evaluate() to its multiple of the
  // detailed one; the non-sim stages (power, thermal, FIT) are identical work
  // on both sides, so the end-to-end multiple sits slightly below the raw
  // BM_SimSampled/BM_SimDetailed one.
  pipeline::EvaluationConfig cfg;
  cfg.trace_instructions = 2'000'000;
  cfg.sim_mode = mode;
  const pipeline::Evaluator ev(cfg);
  const auto& w = sim_bench_workload();
  std::uint64_t n = 0;
  for (auto _ : state) {
    const auto r = ev.evaluate(w, scaling::TechPoint::k180nm);
    benchmark::DoNotOptimize(r.raw_fits.total());
    n += cfg.trace_instructions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
  state.SetLabel(std::string(sim::sim_mode_name(mode)));
}

void BM_PipelineEvaluateDetailed(benchmark::State& state) {
  run_pipeline_long(state, sim::SimMode::kDetailed);
}
BENCHMARK(BM_PipelineEvaluateDetailed);

void BM_PipelineEvaluateSampled(benchmark::State& state) {
  run_pipeline_long(state, sim::SimMode::kSampled);
}
BENCHMARK(BM_PipelineEvaluateSampled);

void run_stage_reuse(benchmark::State& state, bool warm) {
  // Stage-graph memoization: the cost of a second V/f point at the same
  // (app, node). Cold: a fresh StageStore every iteration computes all five
  // stages. Warm: the store already holds the trace and sim outputs
  // (populated by the 0.9 V sibling — both 65 nm points clock 2 GHz), so
  // each evaluation re-runs only power→thermal→fit. The committed baseline
  // pins both ops; together they hold the reuse speedup (warm must stay
  // several times faster than cold — docs/PERFORMANCE.md).
  pipeline::EvaluationConfig cfg;
  cfg.trace_instructions = 50'000;
  const auto& w = workloads::workload("gcc");
  obs::MetricsRegistry reg(/*enabled=*/false);  // accounting off the hot path
  const auto make_store = [&reg] {
    pipeline::StageStore::Options opts;
    opts.registry = &reg;
    return std::make_shared<pipeline::StageStore>(std::move(opts));
  };
  std::shared_ptr<pipeline::StageStore> shared;
  if (warm) {
    // Unpinned: the sink target is irrelevant here — only the shared trace
    // and sim outputs matter, and those keys don't cover it.
    shared = make_store();
    pipeline::Evaluator(cfg, shared)
        .evaluate(w, scaling::TechPoint::k65nm_0V9, 0.0);
  }
  std::uint64_t n = 0;
  for (auto _ : state) {
    // Jitter the sink target (near gcc's natural pinned sink) so thermal
    // and fit recompute every iteration; a fixed target would degenerate
    // into pure fit-row hits after the first pass instead of V/f-style
    // reuse.
    const double sink_k = 340.0 + 0.001 * static_cast<double>(n);
    const auto store = warm ? shared : make_store();
    const pipeline::Evaluator ev(cfg, store);
    const auto r = ev.evaluate(w, scaling::TechPoint::k65nm_1V0, sink_k);
    benchmark::DoNotOptimize(r.raw_fits.total());
    ++n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
  state.SetLabel(warm ? "warm" : "cold");
}

void BM_StageReuseCold(benchmark::State& state) {
  run_stage_reuse(state, /*warm=*/false);
}
BENCHMARK(BM_StageReuseCold);

void BM_StageReuseWarm(benchmark::State& state) {
  run_stage_reuse(state, /*warm=*/true);
}
BENCHMARK(BM_StageReuseWarm);

// ---- observability hot path ------------------------------------------------
// Absolute cost of the obs primitives themselves (the pipeline claims ~1 ns
// per pre-resolved counter update and a couple of clock reads per Span).

void BM_MetricsCounterInc(benchmark::State& state) {
  obs::MetricsRegistry reg;  // local, always enabled
  obs::Counter c = reg.counter("ramp_bench_total");
  for (auto _ : state) c.inc();
  benchmark::DoNotOptimize(c.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterInc);

void BM_MetricsCounterIncDisabled(benchmark::State& state) {
  obs::MetricsRegistry reg(/*enabled=*/false);  // hands out null handles
  obs::Counter c = reg.counter("ramp_bench_total");
  for (auto _ : state) c.inc();
  benchmark::DoNotOptimize(c.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterIncDisabled);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Histogram h = reg.histogram(
      "ramp_bench_seconds",
      {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0});
  double x = 0.0;
  for (auto _ : state) {
    h.observe(x);
    x += 0.001;
    if (x > 1.2) x = 0.0;  // walk every bucket incl. +Inf
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHistogramObserve);

void BM_SpanRecord(benchmark::State& state) {
  obs::Profiler prof(/*enabled=*/true);
  for (auto _ : state) {
    obs::Span span(obs::Stage::kFit, prof);
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanRecord);

void BM_ProfilerRecord(benchmark::State& state) {
  obs::Profiler prof(/*enabled=*/true);
  for (auto _ : state) prof.record(obs::Stage::kFit, 1e-6);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerRecord);

void BM_TimelinePush(benchmark::State& state) {
  // Absolute cost of admitting one interval into the flight recorder —
  // includes the stride-doubling compactions amortized over a long run.
  obs::TimelineBuffer buf(512);
  std::vector<double> temps(sim::kNumStructures, 355.0);
  std::vector<double> fits(core::kNumMechanisms, 100.0);
  std::uint64_t n = 0;
  for (auto _ : state) {
    obs::TimelinePoint p;
    p.interval = n;
    p.time_s = 1e-6 * static_cast<double>(n + 1);
    p.ipc = 1.3;
    p.temp_k = temps;
    p.fit_inst = fits;
    p.fit_avg = fits;
    buf.push(std::move(p));
    ++n;
  }
  benchmark::DoNotOptimize(buf.stride());
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TimelinePush);

void BM_BranchPredictor(benchmark::State& state) {
  sim::BranchPredictor bp;
  std::uint64_t pc = 0x1000;
  std::uint64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bp.record_outcome(pc, (pc & 4) != 0, pc + 64));
    pc = pc * 1664525 + 1013904223;
    pc &= 0xffff;
    ++n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BranchPredictor);

void BM_CacheAccess(benchmark::State& state) {
  sim::Cache cache({.name = "L1", .size_bytes = 32 * 1024, .line_bytes = 64,
                    .ways = 2});
  std::uint64_t addr = 0;
  std::uint64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr));
    addr = addr * 6364136223846793005ULL + 1442695040888963407ULL;
    addr &= 64 * 1024 - 1;
    ++n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CacheAccess);

// Fleet-engine costs. prepare() runs the 16 physics evaluations once
// outside the timed loop, so both benches measure the pure per-chip Monte
// Carlo path (substream seeding, threshold draws, the analytic event loop)
// that dominates a million-chip run.
fleet::FleetScenario fleet_bench_scenario(std::uint64_t chips) {
  fleet::FleetScenario sc = fleet::FleetScenario::preset("baseline");
  sc.chips = chips;
  sc.cell.trace_instructions = 2000;
  sc.cell.cache_enabled = false;
  return sc;
}

void BM_FleetChip(benchmark::State& state) {
  const fleet::FleetScenario sc = fleet_bench_scenario(64);
  const fleet::FleetSimulator sim(sc);
  sim.prepare();
  std::uint64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run().summary.failed);
    n += sc.chips;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FleetChip);

void BM_Fleet1k(benchmark::State& state) {
  const fleet::FleetScenario sc = fleet_bench_scenario(1000);
  const fleet::FleetSimulator sim(sc);
  sim.prepare();
  std::uint64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run().summary.failed);
    n += sc.chips;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fleet1k);

}  // namespace

BENCHMARK_MAIN();
