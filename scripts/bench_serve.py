#!/usr/bin/env python3
"""Find the TCP serve saturation knee and emit BENCH_serve.json.

Boots `ramp serve --listen 127.0.0.1:0` on an ephemeral port, warms the
request key pool with a closed-loop pass, then sweeps *open-loop* offered
load upward (geometric doubling plus a bisection refine) until the server
stops keeping up. Open loop is the honest probe: requests are sent on
schedule whether or not earlier ones completed, so a saturated server
cannot slow the offered load down and hide the knee (coordinated
omission).

A sweep point is "good" when the server kept up: achieved throughput
within 5% of offered, zero transport errors, zero `overloaded` sheds, and
every request answered. The knee is the highest good rate; the summary
records its achieved throughput and p50/p99 latency.

The result is written in the same ``ramp-bench-micro/1`` schema the
micro-kernel gate uses, so scripts/check_bench_regression.py works
unchanged:

  serve_knee_request          ns_per_iter = 1e9 / knee throughput
  serve_half_knee_p50_latency p50 at half the knee rate, in ns
  serve_half_knee_p99_latency p99 at half the knee rate, in ns
  serve_closed_loop_rtt       warm single-in-flight round trip, p50 ns

Latency is sampled at *half* the knee rate, not at the knee itself: right
at the knee the queue is on the edge of instability and percentiles swing
wildly run to run, while at 50% utilization they are reproducible.

All four scale together with machine speed, so the checker's normalized
(geomean) mode compares shape, not hardware: a regression in tail latency
or in the knee sticks out of the pack. Use --absolute only on the machine
the baseline was recorded on.

After the knee is found, a second server is started with per-request
tracing on (``--request-trace``) and driven open-loop at the knee rate.
The server's ``ramp_net_phase_ns_total_*`` counters attribute every traced
nanosecond to a serving phase (read/parse/admission/queue/cache/compute/
serialize/flush); the result lands in the output as a top-level
``attribution`` block — phase totals, fractions that sum to 1, and the
traced-over-plain throughput ratio (the cost of tracing at the knee).
The regression gate only reads the ``benchmarks`` array, so the block is
additive; scripts/check_serve_attribution.py validates its schema.

The server is told to drain with SIGTERM at the end and must exit 0 —
a bench run doubles as a graceful-drain check.

Usage:
  bench_serve.py [--out out/BENCH_serve.json] [--smoke]
      [--ramp build/tools/ramp] [--loadgen build/tools/ramp_loadgen]
      [--duration 4.0] [--start-rate 500] [--max-rate 2000000]
      [--connections 16] [--jobs N] [--trace-len 3000]

--smoke shortens every phase (CI: prove the loop end-to-end under ASan in
seconds); the knee it finds is still real, just noisier.

Exit status: 0 on success, 1 when the bench itself failed (server died,
warm-up errored, no good point found, unclean drain), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

DEFAULT_OUT = "out/BENCH_serve.json"
SCHEMA = "ramp-bench-micro/1"


def log(msg: str) -> None:
    print(f"bench_serve: {msg}", flush=True)


def git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            check=True).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def run_loadgen(loadgen: str, port_file: str, args: list[str],
                timeout_s: float) -> dict | None:
    """Runs one loadgen pass; returns its summary dict (None on failure)."""
    cmd = [loadgen, "--port-file", port_file] + args
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=timeout_s)
    except subprocess.TimeoutExpired:
        log(f"loadgen timed out: {' '.join(cmd)}")
        return None
    line = proc.stdout.strip().splitlines()
    if not line:
        log(f"loadgen produced no summary (rc {proc.returncode}): "
            f"{proc.stderr.strip()}")
        return None
    try:
        summary = json.loads(line[-1])
    except json.JSONDecodeError:
        log(f"loadgen summary is not JSON: {line[-1]!r}")
        return None
    summary["loadgen_rc"] = proc.returncode
    return summary


def point_is_good(s: dict) -> bool:
    """The server kept up with this offered load."""
    return (s["loadgen_rc"] == 0
            and s["errors"] == 0
            and s["overloaded"] == 0
            and s["sent"] > 0
            and s["completed"] == s["sent"]
            and s["achieved_rps"] >= 0.95 * s["offered_rps"])


def read_port(port_file: str, timeout_s: float = 15.0) -> int | None:
    """Polls the server's --port-file until it holds a port number."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with open(port_file, encoding="utf-8") as f:
                text = f.read().strip()
            if text:
                return int(text)
        except (OSError, ValueError):
            pass
        time.sleep(0.05)
    return None


def send_op(port: int, line: str, timeout_s: float = 30.0) -> dict | None:
    """One NDJSON request/response round trip on a fresh connection."""
    try:
        with socket.create_connection(("127.0.0.1", port),
                                      timeout=timeout_s) as sock:
            sock.sendall((line + "\n").encode())
            buf = b""
            while not buf.endswith(b"\n"):
                chunk = sock.recv(65536)
                if not chunk:
                    break
                buf += chunk
        return json.loads(buf.decode())
    except (OSError, json.JSONDecodeError) as e:
        log(f"control op failed ({line}): {e}")
        return None


def drain_server(server: subprocess.Popen, what: str) -> int | None:
    """SIGTERMs `server` and waits for a graceful exit; returns its rc."""
    if server.poll() is None:
        server.send_signal(signal.SIGTERM)
    try:
        return server.wait(timeout=30.0)
    except subprocess.TimeoutExpired:
        server.kill()
        log(f"FAIL: {what} did not drain within 30s of SIGTERM")
        return None


def attribution_pass(args: argparse.Namespace, tmp: str, knee_rps: float,
                     duration: float) -> dict | None:
    """Drives the knee rate against a tracing-on server; attributes it.

    Returns the ``attribution`` block for BENCH_serve.json, or None when
    the pass failed. Phase totals come from the server's own
    ``ramp_net_phase_ns_total_*`` counters, so they include time the
    client cannot see (queue wait, flush).
    """
    port_file = os.path.join(tmp, "traced_port")
    cmd = [args.ramp, "serve", "--listen", "127.0.0.1:0",
           "--port-file", port_file, "--no-persist", "--request-trace",
           "--trace-len", str(args.trace_len), "--out-dir", tmp]
    if args.jobs > 0:
        cmd += ["--jobs", str(args.jobs)]
    log(f"attribution: starting traced server: {' '.join(cmd)}")
    server = subprocess.Popen(cmd, stdout=subprocess.DEVNULL,
                              stderr=subprocess.DEVNULL)
    try:
        port = read_port(port_file)
        if port is None:
            log("attribution: traced server never published a port")
            return None
        warm = run_loadgen(args.loadgen, port_file,
                           ["--mode", "closed", "--connections", "4",
                            "--duration", str(max(2.0, duration)),
                            "--trace-len", str(args.trace_len),
                            "--hot-frac", "0"],
                           timeout_s=120.0)
        if warm is None or warm["loadgen_rc"] != 0 or warm["errors"] != 0:
            log("attribution: warm-up on the traced server failed")
            return None
        # Zero the counters so the snapshot attributes the knee-rate pass
        # alone, not the warm-up.
        if send_op(port, '{"op":"metrics_reset"}') is None:
            return None
        traced = run_loadgen(args.loadgen, port_file,
                             ["--mode", "open", "--rate", str(knee_rps),
                              "--connections", str(args.connections),
                              "--duration", str(duration),
                              "--trace-len", str(args.trace_len)],
                             timeout_s=60.0 + duration * 4)
        if traced is None or traced["completed"] == 0:
            log("attribution: traced load pass failed")
            return None
        snap = send_op(port, '{"op":"metrics","format":"json"}')
        if snap is None or not snap.get("ok"):
            log("attribution: metrics snapshot failed")
            return None
        counters = snap.get("snapshot", {}).get("counters", {})
        prefix = "ramp_net_phase_ns_total_"
        phase_ns = {name[len(prefix):]: int(v)
                    for name, v in counters.items()
                    if name.startswith(prefix)}
        total = sum(phase_ns.values())
        if not phase_ns or total <= 0:
            log("attribution: no traced nanoseconds booked")
            return None
        ratio = traced["achieved_rps"] / knee_rps if knee_rps > 0 else 0.0
        log("attribution: phase breakdown at the knee rate "
            f"({traced['achieved_rps']:.0f} rps traced, "
            f"{ratio:.2f}x the plain knee):")
        for name, ns in sorted(phase_ns.items(), key=lambda kv: -kv[1]):
            log(f"    {name:<10} {ns / total:7.2%}  ({ns} ns)")
        return {
            "rate_rps": knee_rps,
            "requests": int(traced["completed"]),
            "traced_achieved_rps": traced["achieved_rps"],
            "traced_over_plain": ratio,
            "phase_ns": phase_ns,
            "phase_fraction": {n: ns / total for n, ns in phase_ns.items()},
        }
    finally:
        rc = drain_server(server, "traced server")
        if rc != 0:
            log(f"attribution: traced server exited {rc} after SIGTERM")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--ramp", default="build/tools/ramp")
    parser.add_argument("--loadgen", default="build/tools/ramp_loadgen")
    parser.add_argument("--duration", type=float, default=4.0,
                        help="seconds per open-loop sweep point")
    parser.add_argument("--start-rate", type=float, default=500.0)
    parser.add_argument("--max-rate", type=float, default=2e6,
                        help="sweep ceiling, requests/second")
    parser.add_argument("--connections", type=int, default=16)
    parser.add_argument("--jobs", type=int, default=0,
                        help="server worker threads (0 = ramp default)")
    parser.add_argument("--trace-len", type=int, default=3000,
                        help="per-key trace length; small keeps warm-up "
                             "fast and puts the load on the serving stack, "
                             "not the physics")
    parser.add_argument("--smoke", action="store_true",
                        help="short CI pass: 1s points, no bisection "
                             "refine (knee granularity is a factor of 2)")
    args = parser.parse_args()

    duration = 1.0 if args.smoke else args.duration
    refine_steps = 0 if args.smoke else 2
    max_doublings = 14

    tmp = tempfile.mkdtemp(prefix="bench_serve.")
    port_file = os.path.join(tmp, "port")
    server_cmd = [args.ramp, "serve", "--listen", "127.0.0.1:0",
                  "--port-file", port_file, "--no-persist",
                  "--trace-len", str(args.trace_len),
                  "--out-dir", tmp]
    if args.jobs > 0:
        server_cmd += ["--jobs", str(args.jobs)]
    log(f"starting server: {' '.join(server_cmd)}")
    server = subprocess.Popen(server_cmd, stdout=subprocess.DEVNULL,
                              stderr=subprocess.PIPE, text=True)
    try:
        # Warm every key in the loadgen's default app x node pool so the
        # sweep measures the serving stack on cache hits, not first-touch
        # physics. Closed loop: self-limits while the cache is cold.
        warm = run_loadgen(args.loadgen, port_file,
                           ["--mode", "closed", "--connections", "4",
                            "--duration", str(max(2.0, duration)),
                            "--trace-len", str(args.trace_len),
                            "--hot-frac", "0"],
                           timeout_s=120.0)
        if warm is None or warm["loadgen_rc"] != 0 or warm["errors"] != 0:
            log(f"FAIL: warm-up pass failed: {warm}")
            return 1
        log(f"warm: {warm['completed']} requests, "
            f"p50 {warm['p50_ms']:.3f} ms")

        # Warm closed-loop RTT at single occupancy: the floor latency a
        # client sees when the server is idle.
        rtt = run_loadgen(args.loadgen, port_file,
                          ["--mode", "closed", "--connections", "1",
                           "--duration", str(duration),
                           "--trace-len", str(args.trace_len)],
                          timeout_s=60.0 + duration)
        if rtt is None or rtt["loadgen_rc"] != 0 or rtt["errors"] != 0:
            log(f"FAIL: closed-loop RTT pass failed: {rtt}")
            return 1
        log(f"closed-loop RTT: p50 {rtt['p50_ms']:.3f} ms "
            f"({rtt['achieved_rps']:.0f} rps at 1 in flight)")

        def sweep_point(rate: float) -> dict | None:
            s = run_loadgen(args.loadgen, port_file,
                            ["--mode", "open", "--rate", str(rate),
                             "--connections", str(args.connections),
                             "--duration", str(duration),
                             "--trace-len", str(args.trace_len)],
                            timeout_s=60.0 + duration * 4)
            if s is None:
                return None
            verdict = "ok" if point_is_good(s) else "saturated"
            log(f"  offered {rate:>10.0f} rps -> achieved "
                f"{s['achieved_rps']:>10.0f} rps, p50 {s['p50_ms']:.3f} ms, "
                f"p99 {s['p99_ms']:.3f} ms, overloaded {s['overloaded']}, "
                f"errors {s['errors']} [{verdict}]")
            return s

        log(f"open-loop sweep: {duration:.0f}s points, "
            f"{args.connections} connections")
        knee: dict | None = None
        first_bad: float | None = None
        rate = args.start_rate
        for _ in range(max_doublings):
            point = sweep_point(rate)
            if point is None:
                log("FAIL: sweep point did not complete")
                return 1
            if point_is_good(point):
                knee = point
                rate *= 2.0
                if rate > args.max_rate:
                    break
            else:
                first_bad = rate
                break
        if knee is None:
            log(f"FAIL: server cannot sustain even "
                f"{args.start_rate:.0f} rps")
            return 1

        # Bisect between the last good and first bad rate to tighten the
        # knee estimate beyond factor-of-two.
        if first_bad is not None:
            lo, hi = knee["offered_rps"], first_bad
            for _ in range(refine_steps):
                mid = (lo + hi) / 2.0
                point = sweep_point(mid)
                if point is None:
                    break
                if point_is_good(point):
                    knee, lo = point, mid
                else:
                    hi = mid

        knee_rps = knee["achieved_rps"]
        log(f"knee: {knee_rps:.0f} rps "
            f"(p50 {knee['p50_ms']:.3f} ms, p99 {knee['p99_ms']:.3f} ms)")

        # Latency figures come from a point at HALF the knee rate: stable
        # 50% utilization, where percentiles reproduce run to run.
        log("latency point at half the knee rate:")
        half = sweep_point(knee_rps / 2.0)
        if half is None or not point_is_good(half):
            log("FAIL: half-knee latency point did not hold "
                "(knee estimate unstable)")
            return 1

        # Attribute the knee: same offered rate, tracing on, the server's
        # own phase counters. Runs on a second server so the gated numbers
        # above always come from a tracing-off configuration.
        attribution = attribution_pass(args, tmp, knee_rps, duration)
        if attribution is None:
            log("FAIL: knee attribution pass failed")
            return 1

        doc = {
            "schema": SCHEMA,
            "commit": git_commit(),
            "attribution": attribution,
            "benchmarks": [
                {
                    "op": "serve_knee_request",
                    "ns_per_iter": 1e9 / knee_rps,
                    "iterations": int(knee["completed"]),
                    "items_per_second": knee_rps,
                },
                {
                    "op": "serve_half_knee_p50_latency",
                    "ns_per_iter": half["p50_ms"] * 1e6,
                    "iterations": int(half["completed"]),
                    "items_per_second": 1e3 / half["p50_ms"],
                },
                {
                    "op": "serve_half_knee_p99_latency",
                    "ns_per_iter": half["p99_ms"] * 1e6,
                    "iterations": int(half["completed"]),
                    "items_per_second": 1e3 / half["p99_ms"],
                },
                {
                    "op": "serve_closed_loop_rtt",
                    "ns_per_iter": rtt["p50_ms"] * 1e6,
                    "iterations": int(rtt["completed"]),
                    "items_per_second": 1e3 / rtt["p50_ms"],
                },
            ],
        }
        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        log(f"wrote {args.out}")
    finally:
        # SIGTERM must drain gracefully: finish in-flight work, flush,
        # exit 0. An unclean exit fails the bench.
        if server.poll() is None:
            server.send_signal(signal.SIGTERM)
        try:
            rc = server.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            server.kill()
            log("FAIL: server did not drain within 30s of SIGTERM")
            return 1
        stderr_tail = (server.stderr.read() or "").strip()
    if rc != 0:
        log(f"FAIL: server exited {rc} after SIGTERM (wanted a clean "
            f"drain): {stderr_tail}")
        return 1
    log("server drained cleanly on SIGTERM (exit 0)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
