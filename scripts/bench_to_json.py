#!/usr/bin/env python3
"""Condense google-benchmark JSON into the BENCH_micro.json artifact.

Reads one or more google-benchmark ``--benchmark_format=json`` files and
writes a small, stable summary the CI job uploads as an artifact so that
per-commit micro-kernel costs can be tracked over time:

    {
      "schema": "ramp-bench-micro/1",
      "commit": "<git sha>",
      "benchmarks": [
        {"op": "BM_FitEvaluation", "ns_per_iter": 123.4,
         "iterations": 1000000, "bytes_per_second": ..., \
"items_per_second": ...},
        ...
      ]
    }

Per benchmark the *minimum* cpu_time across inputs and repetitions is kept
(same noise policy as check_obs_overhead.py); throughput fields are taken
from that fastest repetition and omitted when the kernel does not report
them. Benchmarks are sorted by op name so the artifact diffs cleanly.

Usage:
  bench_to_json.py RESULTS.json... [-o OUT.json]

The default output is $RAMP_OUT_DIR/BENCH_micro.json (out/BENCH_micro.json
when RAMP_OUT_DIR is unset). The commit is resolved from `git rev-parse
HEAD`, falling back to $GITHUB_SHA, then "unknown".
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys


def resolve_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return os.environ.get("GITHUB_SHA", "unknown")


def collect(paths: list[str]) -> list[dict]:
    best: dict[str, dict] = {}
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
        for bench in doc.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            name = bench.get("run_name", bench.get("name", ""))
            op = name.split("/")[0]
            if not op:
                continue
            cpu = float(bench["cpu_time"])
            if op in best and best[op]["ns_per_iter"] <= cpu:
                continue
            entry = {
                "op": op,
                "ns_per_iter": cpu,
                "iterations": int(bench.get("iterations", 0)),
            }
            for key in ("bytes_per_second", "items_per_second"):
                if key in bench:
                    entry[key] = float(bench[key])
            best[op] = entry
    return [best[op] for op in sorted(best)]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", nargs="+",
                        help="google-benchmark JSON file(s)")
    parser.add_argument("-o", "--output",
                        help="output path (default: "
                             "$RAMP_OUT_DIR/BENCH_micro.json)")
    args = parser.parse_args()

    out_path = args.output
    if not out_path:
        out_dir = os.environ.get("RAMP_OUT_DIR", "out")
        out_path = os.path.join(out_dir, "BENCH_micro.json")

    benchmarks = collect(args.results)
    if not benchmarks:
        raise SystemExit("error: no benchmark runs found in the input files")
    doc = {
        "schema": "ramp-bench-micro/1",
        "commit": resolve_commit(),
        "benchmarks": benchmarks,
    }

    parent = os.path.dirname(out_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"wrote {len(benchmarks)} benchmark(s) to {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
