#!/usr/bin/env python3
"""CI guard for the observability hot path.

Compares two google-benchmark JSON files — one run with every obs feature
off (RAMP_METRICS=off, no RAMP_TIMELINE), one with the instrumented
configuration under test (metrics on, timeline still off: the production
default) — and fails if the instrumented cpu time of any guarded kernel
exceeds the baseline time by more than the allowed overhead fraction.

This holds the PR 3/PR 4 promise that metrics collection and the
flight-recorder's disabled path (a null-pointer test per interval) together
cost at most 5% on the FIT evaluation kernel.

Noise handling: the benchmark is run with repetitions and the *minimum*
cpu_time per file is compared (the minimum is the best estimate of the true
cost on a noisy shared runner; means are inflated by scheduling hiccups).

Usage:
  check_obs_overhead.py OFF.json ON.json \
      [--kernel BM_FitEvaluation]... [--max-overhead 0.05]

`--kernel` may repeat; every listed kernel must stay within the limit.
"""

from __future__ import annotations

import argparse
import json
import sys


def min_cpu_time(path: str, kernel: str) -> float:
    """Minimum cpu_time (ns) across repetition runs of `kernel` in `path`."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    times = []
    for bench in doc.get("benchmarks", []):
        # With --benchmark_repetitions, per-repetition entries carry
        # run_type "iteration"; skip the mean/median/stddev aggregates.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("run_name", bench.get("name", ""))
        if name == kernel or name.startswith(kernel + "/"):
            times.append(float(bench["cpu_time"]))
    if not times:
        raise SystemExit(f"error: no '{kernel}' runs found in {path}")
    return min(times)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("off_json", help="benchmark JSON with all obs off")
    parser.add_argument("on_json", help="benchmark JSON with obs instrumented")
    parser.add_argument("--kernel", action="append", default=[],
                        help="benchmark name(s) to guard; repeatable "
                             "(default: BM_FitEvaluation)")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="allowed fractional overhead (default: %(default)s)")
    args = parser.parse_args()
    kernels = args.kernel or ["BM_FitEvaluation"]

    failed = False
    for kernel in kernels:
        off = min_cpu_time(args.off_json, kernel)
        on = min_cpu_time(args.on_json, kernel)
        overhead = on / off - 1.0
        print(f"{kernel}: obs off {off:.1f} ns, on {on:.1f} ns, overhead "
              f"{overhead * 100:+.2f}% (limit {args.max_overhead * 100:.1f}%)")
        if overhead > args.max_overhead:
            print(f"FAIL: {kernel} obs overhead exceeds the limit",
                  file=sys.stderr)
            failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
