#!/usr/bin/env python3
"""CI guard for the observability hot path.

Compares two google-benchmark JSON files — one run with RAMP_METRICS=off,
one with RAMP_METRICS=on — and fails if the enabled-mode cpu time of the
guarded kernel exceeds the disabled-mode time by more than the allowed
overhead fraction.

Noise handling: the benchmark is run with repetitions and the *minimum*
cpu_time per file is compared (the minimum is the best estimate of the true
cost on a noisy shared runner; means are inflated by scheduling hiccups).

Usage:
  check_metrics_overhead.py OFF.json ON.json \
      [--kernel BM_FitEvaluation] [--max-overhead 0.05]
"""

from __future__ import annotations

import argparse
import json
import sys


def min_cpu_time(path: str, kernel: str) -> float:
    """Minimum cpu_time (ns) across repetition runs of `kernel` in `path`."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    times = []
    for bench in doc.get("benchmarks", []):
        # With --benchmark_repetitions, per-repetition entries carry
        # run_type "iteration"; skip the mean/median/stddev aggregates.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("run_name", bench.get("name", ""))
        if name == kernel or name.startswith(kernel + "/"):
            times.append(float(bench["cpu_time"]))
    if not times:
        raise SystemExit(f"error: no '{kernel}' runs found in {path}")
    return min(times)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("off_json", help="benchmark JSON from RAMP_METRICS=off")
    parser.add_argument("on_json", help="benchmark JSON from RAMP_METRICS=on")
    parser.add_argument("--kernel", default="BM_FitEvaluation",
                        help="benchmark name to guard (default: %(default)s)")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="allowed fractional overhead (default: %(default)s)")
    args = parser.parse_args()

    off = min_cpu_time(args.off_json, args.kernel)
    on = min_cpu_time(args.on_json, args.kernel)
    overhead = on / off - 1.0
    print(f"{args.kernel}: metrics off {off:.1f} ns, on {on:.1f} ns, "
          f"overhead {overhead * 100:+.2f}% (limit {args.max_overhead * 100:.1f}%)")
    if overhead > args.max_overhead:
        print("FAIL: enabled-mode metrics overhead exceeds the limit",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
