#!/usr/bin/env python3
"""Validate the knee-attribution block bench_serve.py writes.

bench_serve.py finishes a run by driving the saturation knee rate against
a tracing-on server and writing a top-level ``attribution`` block into
BENCH_serve.json: per-phase nanosecond totals from the server's own
``ramp_net_phase_ns_total_*`` counters, the fractions they make of the
whole, and the traced-over-plain throughput ratio. This checker is the CI
contract for that block:

  * the block exists and covers every serving phase (read, parse,
    admission, queue, cache, compute, serialize, flush) — a phase counter
    that vanishes from the server silently breaks the attribution story;
  * phase_ns values are non-negative integers and at least one is > 0;
  * phase_fraction values lie in [0, 1] and sum to 1 (within rounding);
  * requests > 0 and rate_rps > 0 — the pass actually drove load;
  * traced_over_plain >= --min-traced-ratio: the tracing-on overhead
    budget. The default (0.95) is the contract — tracing may cost at
    most 5% of the knee, the serve-path sibling of the 5% budget
    scripts/check_obs_overhead.py holds for the physics pipeline. CI's
    smoke sweep passes an explicit lenient 0.5 (1 s knees are noisy);
    use the default on a quiet machine when blessing baselines. The
    plain-configuration knee itself is gated separately by
    check_bench_regression.py.

Usage:
  check_serve_attribution.py BENCH_serve.json [--min-traced-ratio 0.95]

Exit status: 0 when the block is well-formed, 1 on a violation, 2 on
usage/IO errors.
"""

from __future__ import annotations

import argparse
import json
import sys

PHASES = ("read", "parse", "admission", "queue", "cache", "compute",
          "serialize", "flush")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench", help="BENCH_serve.json from bench_serve.py")
    parser.add_argument("--min-traced-ratio", type=float, default=0.95,
                        help="minimum traced-over-plain throughput at the "
                             "knee (default: 0.95 — the 5%% tracing "
                             "overhead budget)")
    args = parser.parse_args()

    try:
        with open(args.bench, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"error: cannot read {args.bench}: {e}")

    attr = doc.get("attribution")
    if not isinstance(attr, dict):
        print(f"FAIL: {args.bench} has no attribution block "
              f"(bench_serve.py too old, or the traced pass was skipped)")
        return 1

    failures: list[str] = []

    requests = attr.get("requests")
    if not isinstance(requests, int) or requests <= 0:
        failures.append(f"requests must be a positive integer, "
                        f"got {requests!r}")
    rate = attr.get("rate_rps")
    if not isinstance(rate, (int, float)) or rate <= 0:
        failures.append(f"rate_rps must be positive, got {rate!r}")

    phase_ns = attr.get("phase_ns")
    if not isinstance(phase_ns, dict):
        failures.append(f"phase_ns must be an object, got {phase_ns!r}")
        phase_ns = {}
    for phase in PHASES:
        if phase not in phase_ns:
            failures.append(f"phase_ns is missing phase {phase!r}")
    for phase, ns in phase_ns.items():
        if phase not in PHASES:
            failures.append(f"phase_ns has unknown phase {phase!r}")
        if not isinstance(ns, int) or ns < 0:
            failures.append(f"phase_ns[{phase!r}] must be a non-negative "
                            f"integer, got {ns!r}")
    if phase_ns and not any(isinstance(ns, int) and ns > 0
                            for ns in phase_ns.values()):
        failures.append("phase_ns booked zero nanoseconds in every phase")

    fractions = attr.get("phase_fraction")
    if not isinstance(fractions, dict):
        failures.append(f"phase_fraction must be an object, "
                        f"got {fractions!r}")
        fractions = {}
    if set(fractions) != set(phase_ns):
        failures.append("phase_fraction and phase_ns cover different "
                        "phases")
    total = 0.0
    for phase, frac in fractions.items():
        if not isinstance(frac, (int, float)) or not 0.0 <= frac <= 1.0:
            failures.append(f"phase_fraction[{phase!r}] must lie in "
                            f"[0, 1], got {frac!r}")
        else:
            total += float(frac)
    if fractions and abs(total - 1.0) > 1e-6:
        failures.append(f"phase fractions sum to {total:.9f}, want 1")

    ratio = attr.get("traced_over_plain")
    if not isinstance(ratio, (int, float)) or ratio <= 0:
        failures.append(f"traced_over_plain must be positive, got {ratio!r}")
    elif ratio < args.min_traced_ratio:
        failures.append(
            f"tracing collapsed knee throughput: traced_over_plain "
            f"{ratio:.3f} < {args.min_traced_ratio:.3f}")

    if failures:
        for f_msg in failures:
            print(f"FAIL: {f_msg}")
        return 1

    top = max(phase_ns, key=phase_ns.get)
    print(f"OK: attribution covers {len(phase_ns)} phases over "
          f"{requests} requests at {rate:.0f} rps; dominant phase "
          f"{top} ({fractions[top]:.1%}), traced/plain {ratio:.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
