#!/usr/bin/env python3
"""Gate micro-kernel performance against a committed baseline.

Compares a freshly produced BENCH_micro.json (scripts/bench_to_json.py,
schema ``ramp-bench-micro/1``) against the baseline committed at
``bench/baselines/BENCH_micro.json`` and fails when any shared op regressed
by more than the threshold (15% by default).

CI runners are not the machine the baseline was recorded on — often a
slower, 1-2 core VM — so a raw ns-to-ns comparison would flag every op at
once. The default mode therefore *normalizes* for machine speed first: it
computes the geometric mean of per-op ratios (current / baseline) across
all shared ops and divides each op's ratio by it. A uniformly slower
machine moves every ratio and the geomean alike and cancels out; a genuine
regression in one kernel sticks out of the pack and survives the
normalization. The flip side is that a *uniform* slowdown of every kernel
at once is invisible in normalized mode — use ``--absolute`` on a machine
comparable to the baseline's (e.g. locally, before blessing a new
baseline) to check raw ratios instead.

Ops present on only one side are reported but never fail the gate (new
benchmarks need a baseline refresh, not a red build).

``--ratio FAST_OP:SLOW_OP:MIN`` additionally asserts a speedup contract
*within the current run*: SLOW_OP's ns_per_iter must be at least MIN times
FAST_OP's. Both ops come from the same measurement on the same machine, so
no baseline or normalization is involved — this is how CI holds the
sampled-simulation fast path to its advertised multiple of the detailed
core (see docs/PERFORMANCE.md). Repeatable.

Usage:
  check_bench_regression.py CURRENT.json [--baseline BASELINE.json]
      [--threshold 0.15] [--absolute] [--ratio FAST:SLOW:MIN]

Exit status: 0 when within budget, 1 on regression, 2 on usage/IO errors.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

DEFAULT_BASELINE = "bench/baselines/BENCH_micro.json"
SCHEMA = "ramp-bench-micro/1"


def load(path: str) -> dict[str, float]:
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"error: cannot read {path}: {e}")
    if doc.get("schema") != SCHEMA:
        raise SystemExit(
            f"error: {path}: expected schema {SCHEMA!r}, "
            f"got {doc.get('schema')!r}")
    out: dict[str, float] = {}
    for bench in doc.get("benchmarks", []):
        op = bench.get("op")
        ns = bench.get("ns_per_iter")
        if op and ns is not None and float(ns) > 0.0:
            out[str(op)] = float(ns)
    if not out:
        raise SystemExit(f"error: {path}: no benchmarks")
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly measured BENCH_micro.json")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"committed baseline (default: "
                             f"{DEFAULT_BASELINE})")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed per-op slowdown, fractional "
                             "(default: 0.15 = 15%%)")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw ns ratios without machine-speed "
                             "normalization (same-machine runs only)")
    parser.add_argument("--ratio", action="append", default=[],
                        metavar="FAST_OP:SLOW_OP:MIN",
                        help="assert SLOW_OP is at least MIN times slower "
                             "than FAST_OP in the current run (repeatable)")
    args = parser.parse_args()
    if args.threshold <= 0.0:
        raise SystemExit("error: --threshold must be positive")

    ratio_gates = []
    for spec in args.ratio:
        parts = spec.split(":")
        if len(parts) != 3:
            raise SystemExit(f"error: --ratio {spec!r}: expected "
                             f"FAST_OP:SLOW_OP:MIN")
        try:
            minimum = float(parts[2])
        except ValueError:
            raise SystemExit(f"error: --ratio {spec!r}: MIN must be a number")
        if minimum <= 0.0:
            raise SystemExit(f"error: --ratio {spec!r}: MIN must be positive")
        ratio_gates.append((parts[0], parts[1], minimum))

    current = load(args.current)
    baseline = load(args.baseline)

    shared = sorted(set(current) & set(baseline))
    if not shared:
        raise SystemExit("error: no ops shared between current and baseline")
    for op in sorted(set(current) - set(baseline)):
        print(f"note: {op}: no baseline entry (refresh the baseline to "
              f"track it)")
    for op in sorted(set(baseline) - set(current)):
        print(f"note: {op}: in baseline but not measured this run")

    # Ops at or below the timer's resolution (sub-ns kernels, e.g. a
    # disabled-metrics no-op) produce ratios that are pure noise; report
    # them but keep them out of both the normalization and the gate.
    MIN_NS = 1.0
    gated = [op for op in shared
             if baseline[op] >= MIN_NS and current[op] >= MIN_NS]
    for op in sorted(set(shared) - set(gated)):
        print(f"note: {op}: below {MIN_NS:.0f} ns (timer resolution), "
              f"not gated")
    if not gated:
        raise SystemExit("error: no gateable ops (all below timer "
                         "resolution)")

    ratios = {op: current[op] / baseline[op] for op in gated}
    if args.absolute:
        scale = 1.0
        mode = "absolute"
    else:
        scale = math.exp(sum(math.log(r) for r in ratios.values())
                         / len(ratios))
        mode = f"normalized (machine-speed geomean {scale:.3f}x)"
    print(f"comparing {len(gated)} op(s), {mode}, "
          f"threshold +{args.threshold:.0%}")

    failures = []
    for op in gated:
        rel = ratios[op] / scale
        marker = ""
        if rel > 1.0 + args.threshold:
            failures.append(op)
            marker = "  <-- REGRESSION"
        print(f"  {op}: {baseline[op]:.1f} ns -> {current[op]:.1f} ns "
              f"({rel - 1.0:+.1%} vs pack){marker}")

    for fast_op, slow_op, minimum in ratio_gates:
        missing = [op for op in (fast_op, slow_op) if op not in current]
        if missing:
            print(f"FAIL: --ratio {fast_op}:{slow_op}: missing from current "
                  f"run: {', '.join(missing)}")
            failures.append(f"ratio:{fast_op}:{slow_op}")
            continue
        speedup = current[slow_op] / current[fast_op]
        ok = speedup >= minimum
        print(f"  {slow_op} / {fast_op}: {speedup:.2f}x "
              f"(contract >= {minimum:g}x)"
              f"{'' if ok else '  <-- BELOW CONTRACT'}")
        if not ok:
            failures.append(f"ratio:{fast_op}:{slow_op}")

    if failures:
        print(f"FAIL: {len(failures)} gate(s) violated: "
              f"{', '.join(failures)}")
        print("If the slowdown is intended, bless a new baseline: rebuild "
              "in Release, rerun the bench, and commit the fresh "
              f"{DEFAULT_BASELINE} (see docs/PERFORMANCE.md).")
        return 1
    print("OK: all ops within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
