// Dynamic reliability management (DRM).
//
// The paper's closing argument (§5.2, citing its companion ISCA'04 work) is
// that worst-case reliability qualification over-designs the processor for
// almost every workload, and that the fix is to qualify for the *expected*
// case "backed up with dynamic application-specific responses for handling
// departures from the expected case". This module implements that dynamic
// response: a feedback controller that watches the reliability budget a
// running application is actually consuming (via the same instantaneous-FIT
// machinery RAMP uses) and steps a DVFS operating point up or down so the
// processor meets its target MTTF without sacrificing performance headroom
// when the workload is cooler than the qualification point.
//
// Control law: the controller tracks the running time-average of total FIT.
// If the average exceeds the budget by more than `headroom`, it steps to
// the next lower-power operating point; if it is below budget by more than
// `headroom` and time has been spent at the current point (`dwell`), it
// steps back up. Hysteresis (two thresholds + dwell) prevents oscillation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/fit_tracker.hpp"
#include "core/ramp_model.hpp"
#include "scaling/technology.hpp"

namespace ramp::drm {

/// One DVFS operating point available to the controller, derived from a
/// technology node by scaling voltage and frequency.
struct OperatingPoint {
  double vdd = 1.0;
  double frequency_hz = 2.0e9;
  std::string label;

  /// Relative performance of this point (frequency ratio to the fastest).
  double relative_performance = 1.0;
};

/// Builds a descending ladder of `count` operating points for `node`,
/// stepping voltage down by `vdd_step` per rung with frequency tracking
/// voltage linearly. The first rung is the node's nominal point.
std::vector<OperatingPoint> dvfs_ladder(const scaling::TechnologyNode& node,
                                        int count, double vdd_step = 0.05);

struct DrmConfig {
  /// Target processor failure rate (FIT). 4000 FIT ≈ 30-year MTTF, the
  /// paper's qualification point.
  double fit_budget = 4000.0;
  /// Fractional hysteresis band around the budget (0.05 = ±5%).
  double headroom = 0.05;
  /// Minimum simulated seconds at a point before stepping up again.
  double dwell_seconds = 20e-6;
};

/// Decision returned by the controller each interval.
struct DrmDecision {
  int point_index = 0;      ///< operating-point ladder index now active
  bool changed = false;     ///< true when this interval switched points
  double avg_fit = 0.0;     ///< running average total FIT so far
};

class DrmController {
 public:
  /// `ladder` must be non-empty and ordered fastest-first. The controller
  /// starts at the fastest point.
  DrmController(DrmConfig cfg, std::vector<OperatingPoint> ladder);

  /// Feeds one interval's total instantaneous FIT (already summed over
  /// structures and mechanisms) of duration `dt_seconds`; returns the
  /// operating point to use for the next interval.
  DrmDecision update(double instantaneous_fit, double dt_seconds);

  const OperatingPoint& current() const { return ladder_[static_cast<std::size_t>(index_)]; }
  int current_index() const { return index_; }
  const std::vector<OperatingPoint>& ladder() const { return ladder_; }

  /// Running average FIT consumed so far (0 before any update).
  double average_fit() const { return fit_avg_.mean(); }

  /// Number of point switches so far (stability metric).
  std::uint64_t switches() const { return switches_; }

  /// Time-weighted average relative performance delivered so far.
  double average_performance() const { return perf_avg_.mean(); }

 private:
  DrmConfig cfg_;
  std::vector<OperatingPoint> ladder_;
  int index_ = 0;
  TimeWeightedMean fit_avg_;
  TimeWeightedMean perf_avg_;
  double time_at_point_ = 0.0;
  std::uint64_t switches_ = 0;
};

}  // namespace ramp::drm
