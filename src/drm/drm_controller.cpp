#include "drm/drm_controller.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace ramp::drm {

std::vector<OperatingPoint> dvfs_ladder(const scaling::TechnologyNode& node,
                                        int count, double vdd_step) {
  RAMP_REQUIRE(count > 0, "ladder needs at least one point");
  RAMP_REQUIRE(vdd_step > 0.0, "voltage step must be positive");
  std::vector<OperatingPoint> ladder;
  ladder.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    OperatingPoint p;
    p.vdd = node.vdd - vdd_step * i;
    RAMP_REQUIRE(p.vdd > 0.5, "ladder descends below a plausible Vmin");
    // Frequency tracks voltage linearly (alpha-power approximation near
    // nominal Vdd).
    p.frequency_hz = node.frequency_hz * (p.vdd / node.vdd);
    p.relative_performance = p.frequency_hz / node.frequency_hz;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.2fV/%.2fGHz", p.vdd,
                  p.frequency_hz / 1e9);
    p.label = buf;
    ladder.push_back(std::move(p));
  }
  return ladder;
}

DrmController::DrmController(DrmConfig cfg, std::vector<OperatingPoint> ladder)
    : cfg_(cfg), ladder_(std::move(ladder)) {
  RAMP_REQUIRE(!ladder_.empty(), "controller needs at least one point");
  RAMP_REQUIRE(cfg_.fit_budget > 0.0, "FIT budget must be positive");
  RAMP_REQUIRE(cfg_.headroom >= 0.0 && cfg_.headroom < 1.0,
               "headroom must lie in [0, 1)");
  RAMP_REQUIRE(cfg_.dwell_seconds >= 0.0, "dwell must be non-negative");
  for (std::size_t i = 1; i < ladder_.size(); ++i) {
    RAMP_REQUIRE(ladder_[i].frequency_hz <= ladder_[i - 1].frequency_hz,
                 "ladder must be ordered fastest-first");
  }
}

DrmDecision DrmController::update(double instantaneous_fit,
                                  double dt_seconds) {
  RAMP_REQUIRE(instantaneous_fit >= 0.0, "FIT must be non-negative");
  RAMP_REQUIRE(dt_seconds > 0.0, "interval must be positive");

  fit_avg_.add(instantaneous_fit, dt_seconds);
  perf_avg_.add(current().relative_performance, dt_seconds);
  time_at_point_ += dt_seconds;

  DrmDecision d;
  d.avg_fit = fit_avg_.mean();

  const double hi = cfg_.fit_budget * (1.0 + cfg_.headroom);
  const double lo = cfg_.fit_budget * (1.0 - cfg_.headroom);

  if (d.avg_fit > hi && index_ + 1 < static_cast<int>(ladder_.size())) {
    ++index_;
    ++switches_;
    time_at_point_ = 0.0;
    d.changed = true;
  } else if (d.avg_fit < lo && index_ > 0 &&
             time_at_point_ >= cfg_.dwell_seconds) {
    --index_;
    ++switches_;
    time_at_point_ = 0.0;
    d.changed = true;
  }
  d.point_index = index_;
  return d;
}

}  // namespace ramp::drm
