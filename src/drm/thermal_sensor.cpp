#include "drm/thermal_sensor.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ramp::drm {

ThermalSensor::ThermalSensor(const SensorConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  RAMP_REQUIRE(cfg.noise_sigma_k >= 0.0, "noise sigma must be non-negative");
  RAMP_REQUIRE(cfg.quantum_k >= 0.0, "quantization step must be non-negative");
  RAMP_REQUIRE(cfg.time_constant_s >= 0.0,
               "time constant must be non-negative");
}

double ThermalSensor::read(double junction_k, double dt_seconds) {
  RAMP_REQUIRE(dt_seconds > 0.0, "dt must be positive");
  RAMP_REQUIRE(junction_k > 0.0, "junction temperature must be positive");

  if (!primed_) {
    state_k_ = junction_k;
    primed_ = true;
  } else if (cfg_.time_constant_s > 0.0) {
    // Exact first-order step response over dt.
    const double alpha = 1.0 - std::exp(-dt_seconds / cfg_.time_constant_s);
    state_k_ += alpha * (junction_k - state_k_);
  } else {
    state_k_ = junction_k;
  }

  double reading = state_k_ + cfg_.offset_k;
  if (cfg_.noise_sigma_k > 0.0) {
    reading += rng_.normal(0.0, cfg_.noise_sigma_k);
  }
  if (cfg_.quantum_k > 0.0) {
    reading = std::round(reading / cfg_.quantum_k) * cfg_.quantum_k;
  }
  last_reading_ = reading;
  return reading;
}

}  // namespace ramp::drm
