// On-die thermal sensor model.
//
// A DRM controller in silicon does not see the true junction temperature;
// it reads a digital thermal sensor with offset error, quantization, noise,
// and a low-pass response. This model provides those non-idealities so the
// DRM studies can ask how much sensing error costs: an optimistic sensor
// under-throttles (reliability loss), a pessimistic one over-throttles
// (performance loss). Deterministic per seed.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace ramp::drm {

struct SensorConfig {
  double offset_k = 0.0;       ///< systematic calibration error (K)
  double noise_sigma_k = 0.5;  ///< white read noise (K, 1-sigma)
  double quantum_k = 1.0;      ///< ADC quantization step (K)
  /// First-order low-pass time constant (s); 0 disables filtering.
  double time_constant_s = 100e-6;
};

class ThermalSensor {
 public:
  ThermalSensor(const SensorConfig& cfg, std::uint64_t seed);

  /// Advances the sensor by `dt_seconds` with true temperature
  /// `junction_k` and returns the value the controller would read.
  double read(double junction_k, double dt_seconds);

  /// Last value returned by read() (before a first read: 0).
  double last_reading() const { return last_reading_; }

  const SensorConfig& config() const { return cfg_; }

 private:
  SensorConfig cfg_;
  Xoshiro256 rng_;
  double state_k_ = 0.0;   ///< low-pass state (true-temperature domain)
  bool primed_ = false;
  double last_reading_ = 0.0;
};

}  // namespace ramp::drm
