#include "cmp/cmp_evaluator.hpp"

#include <algorithm>
#include <cmath>

#include "core/ramp_model.hpp"
#include "sim/core_config.hpp"
#include "sim/ooo_core.hpp"
#include "thermal/rc_model.hpp"
#include "trace/synthetic_generator.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace ramp::cmp {

double CmpResult::worst_core_raw_fit() const {
  double worst = 0.0;
  for (const auto& c : cores) worst = std::max(worst, c.raw_fits.total());
  return worst;
}

double CmpResult::best_core_raw_fit() const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& c : cores) best = std::min(best, c.raw_fits.total());
  return best;
}

CmpEvaluator::CmpEvaluator(CmpConfig cfg, scaling::TechPoint tech)
    : cfg_(cfg), tech_(tech) {
  RAMP_REQUIRE(cfg_.cores >= 1, "need at least one core");
  RAMP_REQUIRE(cfg_.epoch_seconds > 0 && cfg_.duration_seconds > 0,
               "durations must be positive");
}

CmpResult CmpEvaluator::evaluate(const std::vector<workloads::Workload>& apps,
                                 bool migrate) const {
  RAMP_REQUIRE(!apps.empty(), "need at least one workload");
  RAMP_REQUIRE(static_cast<int>(apps.size()) <= cfg_.cores,
               "more workloads than cores");
  const auto& tech = scaling::node(tech_);

  // --- per-workload activity streams (single-core timing model) ----------
  const sim::CoreConfig core_cfg = sim::core_config_for(tech);
  const auto interval_cycles = static_cast<std::uint64_t>(
      std::llround(core_cfg.frequency_hz * cfg_.cell.interval_seconds));
  std::vector<sim::SimResult> streams;
  streams.reserve(apps.size());
  for (const auto& w : apps) {
    trace::SyntheticTrace t(w.profile, cfg_.cell.trace_instructions,
                            cfg_.cell.seed ^ 0xc3fULL);
    sim::OooCore core(core_cfg);
    streams.push_back(core.run(t, interval_cycles));
    RAMP_ASSERT(!streams.back().intervals.empty());
  }

  // --- shared thermal network --------------------------------------------
  const CmpLayout layout =
      make_cmp_layout(cfg_.cores, std::sqrt(tech.relative_area));
  thermal::RcNetwork net(layout.floorplan, cfg_.cell.thermal);
  // A CMP ships with a heat sink sized for its total power: scale the
  // single-core convection resistance down by the core count (same sink
  // temperature at full load as one core had).
  net.set_r_convec(cfg_.cell.thermal.r_convec_k_per_w /
                   static_cast<double>(cfg_.cores));
  const power::PowerModel pm(cfg_.cell.power, tech);
  const std::size_t nblocks = layout.floorplan.size();

  // Per-core block powers for an interval: dynamic from the assigned
  // stream's activity (idle cores: zero activity at the clock-gating
  // floor), leakage from current block temperatures.
  auto block_power = [&](const std::vector<int>& assignment,
                         const std::vector<std::size_t>& positions,
                         const std::vector<double>& temps) {
    std::vector<double> p(nblocks, 0.0);
    for (int c = 0; c < cfg_.cores; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      const int app = assignment[ci];
      // Unassigned cores are deep clock-gated (power-gated clocks): no
      // dynamic power at all, leakage only.
      power::StructurePower dyn{};
      double bias = 1.0;
      if (app >= 0) {
        const auto& ivs = streams[static_cast<std::size_t>(app)].intervals;
        dyn = pm.dynamic_power(
            ivs[positions[static_cast<std::size_t>(app)] % ivs.size()].activity);
        bias = apps[static_cast<std::size_t>(app)].power_bias;
      }
      for (int s = 0; s < sim::kNumStructures; ++s) {
        const auto si = static_cast<std::size_t>(s);
        const std::size_t blk = layout.core_blocks[ci][si];
        p[blk] += dyn[si] * bias +
                  pm.leakage_power(static_cast<sim::StructureId>(s), temps[blk]);
      }
    }
    return p;
  };

  // Initial assignment: workload k on core k; steady-state init.
  std::vector<int> assignment(static_cast<std::size_t>(cfg_.cores), -1);
  for (std::size_t a = 0; a < apps.size(); ++a) {
    assignment[a] = static_cast<int>(a);
  }
  std::vector<std::size_t> positions(apps.size(), 0);
  const auto steady = net.steady_state([&](const std::vector<double>& temps) {
    return block_power(assignment, positions, temps);
  });

  // --- transient walk with (optional) migration ---------------------------
  thermal::Transient tr(net, steady, cfg_.cell.interval_seconds);
  const core::RampModel model(tech);
  std::vector<core::FitTracker> trackers;
  trackers.reserve(static_cast<std::size_t>(cfg_.cores));
  for (int c = 0; c < cfg_.cores; ++c) trackers.emplace_back(model);
  std::vector<RunningStats> temp_stats(static_cast<std::size_t>(cfg_.cores));

  CmpResult result;
  RunningMean power_avg;
  double t = 0.0;
  double next_epoch = cfg_.epoch_seconds;
  const double dt = cfg_.cell.interval_seconds;

  while (t < cfg_.duration_seconds) {
    if (migrate && t >= next_epoch) {
      // Rotate assignments by one core (classic core-hopping).
      std::rotate(assignment.rbegin(), assignment.rbegin() + 1,
                  assignment.rend());
      ++result.migrations;
      next_epoch += cfg_.epoch_seconds;
    }

    std::vector<double> temps(tr.temperatures().begin(),
                              tr.temperatures().begin() +
                                  static_cast<std::ptrdiff_t>(nblocks));
    const auto p = block_power(assignment, positions, temps);
    tr.step(p);

    double total_p = 0.0;
    for (double v : p) total_p += v;
    power_avg.add(total_p);

    // Account FIT per core at its structure temperatures and activities.
    for (int c = 0; c < cfg_.cores; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      std::array<double, sim::kNumStructures> struct_temps{};
      std::array<double, sim::kNumStructures> act{};
      const int app = assignment[ci];
      if (app >= 0) {
        const auto& ivs = streams[static_cast<std::size_t>(app)].intervals;
        act = ivs[positions[static_cast<std::size_t>(app)] % ivs.size()].activity;
      }
      double hottest = 0.0;
      for (int s = 0; s < sim::kNumStructures; ++s) {
        const auto si = static_cast<std::size_t>(s);
        struct_temps[si] = tr.temperatures()[layout.core_blocks[ci][si]];
        hottest = std::max(hottest, struct_temps[si]);
      }
      trackers[ci].add_interval(struct_temps, act, tech.vdd, dt);
      temp_stats[ci].add(hottest);
    }

    for (auto& pos : positions) ++pos;
    t += dt;
  }

  // --- collect -------------------------------------------------------------
  result.cores.resize(static_cast<std::size_t>(cfg_.cores));
  for (int c = 0; c < cfg_.cores; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    result.cores[ci].raw_fits = trackers[ci].summary();
    result.cores[ci].avg_temp_k = temp_stats[ci].mean();
    result.cores[ci].max_temp_k = temp_stats[ci].max();
    result.chip_raw_fit += result.cores[ci].raw_fits.total();
  }
  result.avg_power_w = power_avg.mean();
  result.sink_temp_k = tr.temperatures()[nblocks + 1];
  return result;
}

}  // namespace ramp::cmp
