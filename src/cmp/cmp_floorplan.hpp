// Chip-multiprocessor floorplans: N scaled core tiles on one die.
//
// The paper studies a single core, but its conclusion (scaling converts
// area into power density and failure rate) is what pushed industry to
// CMPs: spend the area on more cores at moderated per-core power. This
// module tiles N copies of the POWER4-like core floorplan onto one die so
// the thermal model captures inter-core coupling through silicon and the
// shared heat sink — the substrate for the activity-migration study
// (cmp_evaluator.hpp).
#pragma once

#include <array>
#include <vector>

#include "sim/structures.hpp"
#include "thermal/floorplan.hpp"

namespace ramp::cmp {

/// A multicore floorplan plus the per-core block-index maps.
struct CmpLayout {
  thermal::Floorplan floorplan{std::vector<thermal::Block>{
      {"die", 0, 0, 1e-3, 1e-3}}};  // replaced by make function
  /// core_blocks[c][s] = floorplan block index of structure s on core c.
  std::vector<std::array<std::size_t, sim::kNumStructures>> core_blocks;

  int cores() const { return static_cast<int>(core_blocks.size()); }
};

/// Tiles `cores` copies of the single-core floorplan (scaled by `scale`,
/// the technology linear factor) in a near-square grid with `gap_m` of
/// spacing silicon between tiles. Block names are "C<k>:<NAME>".
/// Throws InvalidArgument for cores < 1.
CmpLayout make_cmp_layout(int cores, double scale, double gap_m = 0.3e-3);

}  // namespace ramp::cmp
