// CMP reliability evaluation with optional activity migration.
//
// Runs N per-core workloads on one die: each core replays the interval
// activity stream its workload produced on the single-core timing model
// (cores are microarchitecturally identical, so activity factors carry
// over), the shared thermal network couples the cores, and RAMP tracks
// per-core, per-structure FIT. A migration policy may permute the
// workload→core assignment every epoch — the activity-migration idea (Heo
// et al., cited by the paper for power density) applied to *lifetime*:
// rotating the hot workload levels wear across cores.
//
// Idle cores (fewer workloads than cores) draw leakage only.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cmp/cmp_floorplan.hpp"
#include "core/fit_tracker.hpp"
#include "pipeline/evaluator.hpp"
#include "power/power_model.hpp"
#include "scaling/technology.hpp"
#include "sim/interval_stats.hpp"
#include "workloads/spec2k.hpp"

namespace ramp::cmp {

struct CmpConfig {
  int cores = 4;
  /// Seconds between migration epochs (rotation period).
  double epoch_seconds = 500e-6;
  /// Total simulated seconds (activity streams repeat cyclically).
  double duration_seconds = 4e-3;
  /// Single-core evaluation settings (trace length, power, thermal).
  pipeline::EvaluationConfig cell{};
};

/// Per-core outcome of one CMP run.
struct CoreOutcome {
  double avg_temp_k = 0.0;        ///< time-averaged hottest-structure temp
  double max_temp_k = 0.0;
  core::FitSummary raw_fits;      ///< per-structure raw FITs for this core
};

struct CmpResult {
  std::vector<CoreOutcome> cores;
  double chip_raw_fit = 0.0;      ///< sum of all core FITs (series system)
  double avg_power_w = 0.0;
  double sink_temp_k = 0.0;
  std::uint64_t migrations = 0;

  /// Max over cores of the per-core total raw FIT — the wear-leveling
  /// metric (migration shrinks the spread between cores).
  double worst_core_raw_fit() const;
  double best_core_raw_fit() const;
};

class CmpEvaluator {
 public:
  CmpEvaluator(CmpConfig cfg, scaling::TechPoint tech);

  /// Evaluates `apps` (size <= cores; missing slots idle). When `migrate`,
  /// the workload→core assignment rotates by one core per epoch.
  CmpResult evaluate(const std::vector<workloads::Workload>& apps,
                     bool migrate) const;

  const CmpConfig& config() const { return cfg_; }

 private:
  CmpConfig cfg_;
  scaling::TechPoint tech_;
};

}  // namespace ramp::cmp
