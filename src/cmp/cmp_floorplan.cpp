#include "cmp/cmp_floorplan.hpp"

#include <cmath>
#include <string>

#include "util/error.hpp"

namespace ramp::cmp {

CmpLayout make_cmp_layout(int cores, double scale, double gap_m) {
  RAMP_REQUIRE(cores >= 1, "need at least one core");
  RAMP_REQUIRE(scale > 0.0, "scale must be positive");
  RAMP_REQUIRE(gap_m >= 0.0, "gap must be non-negative");

  const thermal::Floorplan tile = thermal::power4_floorplan().scaled(scale);
  // Tile extent (the single-core floorplan is a square die).
  double tile_w = 0, tile_h = 0;
  for (const auto& b : tile.blocks()) {
    tile_w = std::max(tile_w, b.x + b.w);
    tile_h = std::max(tile_h, b.y + b.h);
  }

  const int grid = static_cast<int>(std::ceil(std::sqrt(cores)));
  std::vector<thermal::Block> blocks;
  CmpLayout layout;
  layout.core_blocks.resize(static_cast<std::size_t>(cores));

  for (int c = 0; c < cores; ++c) {
    const int gx = c % grid;
    const int gy = c / grid;
    const double ox = gx * (tile_w + gap_m);
    const double oy = gy * (tile_h + gap_m);
    for (const auto& b : tile.blocks()) {
      thermal::Block nb = b;
      nb.name = "C" + std::to_string(c) + ":" + b.name;
      nb.x += ox;
      nb.y += oy;
      blocks.push_back(nb);
    }
  }
  layout.floorplan = thermal::Floorplan(std::move(blocks));

  // Resolve per-core structure -> block indices.
  for (int c = 0; c < cores; ++c) {
    for (int s = 0; s < sim::kNumStructures; ++s) {
      const std::string name =
          "C" + std::to_string(c) + ":" +
          std::string(sim::structure_name(static_cast<sim::StructureId>(s)));
      layout.core_blocks[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)] =
          layout.floorplan.index_of(name);
    }
  }
  return layout;
}

}  // namespace ramp::cmp
