#include "trace/phased_trace.hpp"

#include "util/error.hpp"

namespace ramp::trace {

PhasedTrace::PhasedTrace(const std::vector<GeneratorProfile>& profiles,
                         std::uint64_t length, std::uint64_t phase_length,
                         std::uint64_t seed)
    : length_(length), phase_length_(phase_length) {
  RAMP_REQUIRE(!profiles.empty(), "need at least one phase profile");
  RAMP_REQUIRE(phase_length > 0, "phase length must be positive");
  generators_.reserve(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    // Each phase generator gets the whole budget; PhasedTrace gates how
    // much of each stream is actually consumed.
    generators_.push_back(
        std::make_unique<SyntheticTrace>(profiles[i], length, seed + i * 0x9e37ULL));
  }
}

bool PhasedTrace::next(Instruction& out) {
  if (emitted_ >= length_) return false;
  phase_ = static_cast<std::size_t>((emitted_ / phase_length_) %
                                    generators_.size());
  if (!generators_[phase_]->next(out)) return false;
  ++emitted_;
  return true;
}

}  // namespace ramp::trace
