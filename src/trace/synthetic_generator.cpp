#include "trace/synthetic_generator.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ramp::trace {

namespace {
// Architectural register file layout: integer regs [0, 32), FP regs [32, 64).
constexpr std::uint16_t kNumIntRegs = 32;
constexpr std::uint16_t kNumFpRegs = 32;
constexpr std::uint16_t kFpRegBase = 32;
constexpr std::uint64_t kInstrBytes = 4;

// Deterministic per-PC hash (SplitMix64 finalizer) — fixes each static
// branch's preferred direction and target.
std::uint64_t pc_hash(std::uint64_t pc) {
  std::uint64_t z = pc + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void validate(const GeneratorProfile& p) {
  RAMP_REQUIRE(p.op_mix.size() == static_cast<std::size_t>(kNumOpClasses),
               "op_mix must have one weight per OpClass");
  double total = 0.0;
  for (double w : p.op_mix) {
    RAMP_REQUIRE(w >= 0.0, "op_mix weights must be non-negative");
    total += w;
  }
  RAMP_REQUIRE(total > 0.0, "op_mix must have positive total weight");
  RAMP_REQUIRE(p.dep_distance_p > 0.0 && p.dep_distance_p <= 1.0,
               "dep_distance_p must lie in (0, 1]");
  RAMP_REQUIRE(p.second_source_prob >= 0.0 && p.second_source_prob <= 1.0,
               "second_source_prob must lie in [0, 1]");
  RAMP_REQUIRE(p.stream_fraction >= 0.0 && p.stream_fraction <= 1.0,
               "stream_fraction must lie in [0, 1]");
  RAMP_REQUIRE(p.cold_fraction >= 0.0 && p.cold_fraction <= 1.0,
               "cold_fraction must lie in [0, 1]");
  RAMP_REQUIRE(p.num_streams > 0, "need at least one stream");
  RAMP_REQUIRE(p.hot_footprint_bytes > 0 && p.cold_footprint_bytes > 0,
               "footprints must be positive");
  RAMP_REQUIRE(p.branch_noise >= 0.0 && p.branch_noise <= 0.5,
               "branch_noise must lie in [0, 0.5]");
  RAMP_REQUIRE(p.taken_bias >= 0.0 && p.taken_bias <= 1.0,
               "taken_bias must lie in [0, 1]");
  RAMP_REQUIRE(p.code_blocks > 0 && p.block_len > 0,
               "code footprint must be positive");
}
}  // namespace

SyntheticTrace::SyntheticTrace(const GeneratorProfile& profile,
                               std::uint64_t length, std::uint64_t seed)
    : profile_(profile), length_(length), rng_(seed), mix_(profile.op_mix) {
  validate(profile_);
  stream_span_ = std::max<std::uint64_t>(
      profile_.hot_footprint_bytes /
          static_cast<std::uint64_t>(profile_.num_streams),
      64);
  code_span_ = static_cast<std::uint64_t>(profile_.code_blocks) *
               static_cast<std::uint64_t>(profile_.block_len) * kInstrBytes;
  stream_pos_.resize(static_cast<std::size_t>(profile_.num_streams));
  // Lay streams out contiguously with a 3-line skew between them so their
  // footprints land in different cache sets (bases that are multiples of
  // the set-aliasing period would make all streams fight over one region).
  for (std::size_t s = 0; s < stream_pos_.size(); ++s) {
    stream_pos_[s] = stream_base(s);
  }
}

bool SyntheticTrace::next(Instruction& out) {
  if (emitted_ >= length_) return false;
  out = synthesize();
  ++emitted_;
  return true;
}

bool SyntheticTrace::next_functional(Instruction& out) {
  if (emitted_ >= length_) return false;
  out = synthesize_functional();
  ++emitted_;
  return true;
}

std::uint16_t SyntheticTrace::pick_source(bool fp) {
  const RecentRing& recent = fp ? recent_fp_ : recent_int_;
  if (recent.count == 0) {
    // Cold start: depend on an arbitrary architectural register.
    return fp ? kFpRegBase : std::uint16_t{0};
  }
  // Geometric distance from the most recent producer; clamp into the window.
  const std::uint64_t d = rng_.geometric(profile_.dep_distance_p);
  const std::uint64_t back = std::min<std::uint64_t>(d, recent.count - 1);
  return recent.buf[(recent.head + kRecentWindow - back) % kRecentWindow];
}

void SyntheticTrace::record_producer(RecentRing& recent, std::uint16_t dst) {
  recent.head = (recent.head + 1) % kRecentWindow;
  recent.buf[recent.head] = dst;
  if (recent.count < kRecentWindow) ++recent.count;
}

std::uint64_t SyntheticTrace::stream_base(std::size_t s) const {
  // Contiguous spans with a 3-cache-line skew per stream.
  return 0x100000 + s * (stream_span_ + 192);
}

std::uint64_t SyntheticTrace::gen_mem_addr() {
  if (rng_.bernoulli(profile_.stream_fraction)) {
    const auto s = static_cast<std::size_t>(
        rng_.below(static_cast<std::uint64_t>(profile_.num_streams)));
    stream_pos_[s] += profile_.stream_stride;
    // Wrap within the span so streams stay cache-resident at the rate the
    // footprint implies.
    if (stream_pos_[s] >= stream_base(s) + stream_span_) {
      stream_pos_[s] = stream_base(s);
    }
    return stream_pos_[s];
  }
  if (rng_.bernoulli(profile_.cold_fraction)) {
    // 3-line skew vs the hot region below avoids systematic set aliasing.
    return 0x40000300 + (rng_.below(profile_.cold_footprint_bytes) & ~7ULL);
  }
  // Scattered accesses over the hot footprint, offset from the stream
  // region so the two halves of the working set use different sets where
  // the footprint allows.
  return 0x20000000 + profile_.hot_footprint_bytes +
         (rng_.below(profile_.hot_footprint_bytes) & ~7ULL);
}

Instruction SyntheticTrace::synthesize() {
  Instruction ins;
  ins.op = static_cast<OpClass>(mix_.sample(rng_));

  // Branches live on a fixed static grid: the last slot of every
  // block_len-instruction block. This keeps the set of *static* branch
  // sites exactly code_blocks-sized (stable, learnable by the predictor)
  // regardless of the dynamic path. Branch draws landing mid-block become
  // CR-logical ops (POWER cores have rich CR traffic), so branch density is
  // carried by block_len.
  const bool grid_slot =
      block_offset_ == static_cast<std::uint64_t>(profile_.block_len) - 1;
  if (grid_slot) {
    ins.op = OpClass::kBranch;
  } else if (ins.op == OpClass::kBranch) {
    ins.op = OpClass::kLogicalCr;
  }

  ins.pc = pc_;
  const bool fp = is_fp(ins.op);

  switch (ins.op) {
    case OpClass::kLoad: {
      ins.src1 = pick_source(false);  // address register
      ins.mem_addr = gen_mem_addr();
      break;
    }
    case OpClass::kStore: {
      ins.src1 = pick_source(false);           // address register
      ins.src2 = pick_source(rng_.bernoulli(0.3));  // data register
      ins.mem_addr = gen_mem_addr();
      break;
    }
    case OpClass::kBranch: {
      ins.src1 = pick_source(false);
      // Preferred direction is a fixed property of the static branch; the
      // dynamic outcome deviates with probability branch_noise.
      const std::uint64_t h = pc_hash(ins.pc);
      const bool preferred =
          (h & 0x3ff) < static_cast<std::uint64_t>(profile_.taken_bias * 1024.0);
      ins.branch_taken =
          rng_.bernoulli(profile_.branch_noise) ? !preferred : preferred;
      break;
    }
    default: {
      ins.src1 = pick_source(fp);
      if (rng_.bernoulli(profile_.second_source_prob)) ins.src2 = pick_source(fp);
      break;
    }
  }

  // Destination register for value-producing ops.
  if (ins.op != OpClass::kBranch && ins.op != OpClass::kStore) {
    if (fp) {
      ins.dst = static_cast<std::uint16_t>(kFpRegBase + next_fp_reg_);
      next_fp_reg_ = static_cast<std::uint16_t>((next_fp_reg_ + 1) % kNumFpRegs);
      record_producer(recent_fp_, ins.dst);
    } else {
      ins.dst = next_int_reg_;
      next_int_reg_ = static_cast<std::uint16_t>((next_int_reg_ + 1) % kNumIntRegs);
      record_producer(recent_int_, ins.dst);
    }
  }

  advance_pc(ins);
  return ins;
}

Instruction SyntheticTrace::synthesize_functional() {
  Instruction ins;
  ins.op = static_cast<OpClass>(mix_.sample(rng_));

  // Same static branch grid as synthesize() — pc_ evolves identically on
  // both paths, so the set of static branch sites is shared.
  const bool grid_slot =
      block_offset_ == static_cast<std::uint64_t>(profile_.block_len) - 1;
  if (grid_slot) {
    ins.op = OpClass::kBranch;
  } else if (ins.op == OpClass::kBranch) {
    ins.op = OpClass::kLogicalCr;
  }

  ins.pc = pc_;

  // Only the fields the warming pass consumes: no register draws, no
  // recent-producer bookkeeping. The RNG therefore advances differently
  // than on the next() path — deterministic, same distributions.
  switch (ins.op) {
    case OpClass::kLoad:
    case OpClass::kStore:
      ins.mem_addr = gen_mem_addr();
      break;
    case OpClass::kBranch: {
      const std::uint64_t h = pc_hash(ins.pc);
      const bool preferred =
          (h & 0x3ff) < static_cast<std::uint64_t>(profile_.taken_bias * 1024.0);
      ins.branch_taken =
          rng_.bernoulli(profile_.branch_noise) ? !preferred : preferred;
      break;
    }
    default:
      break;
  }

  advance_pc(ins);
  return ins;
}

void SyntheticTrace::advance_pc(Instruction& ins) {
  if (ins.op == OpClass::kBranch) {
    // Branches occupy only the last slot of a block, and both exits land on
    // a block base (taken targets are block-aligned; not-taken falls into
    // the next block or wraps), so the block offset resets to zero.
    block_offset_ = 0;
    if (ins.branch_taken) {
      // Jump to this static branch's fixed target block (BTB-learnable).
      const std::uint64_t block =
          (pc_hash(ins.pc) >> 10) % static_cast<std::uint64_t>(profile_.code_blocks);
      ins.branch_target =
          0x10000 + block * static_cast<std::uint64_t>(profile_.block_len) * kInstrBytes;
      pc_ = ins.branch_target;
    } else {
      ins.branch_target = pc_ + kInstrBytes;
      pc_ += kInstrBytes;
      if (pc_ >= 0x10000 + code_span_) pc_ = 0x10000;
    }
  } else {
    pc_ += kInstrBytes;
    ++block_offset_;
  }
}

}  // namespace ramp::trace
