// Synthetic trace generation.
//
// Produces a deterministic dynamic-instruction stream whose statistical
// properties are controlled by a GeneratorProfile: instruction mix, register
// dependency distances (which bound extractable ILP), memory footprints and
// stream behaviour (which determine cache miss rates), and branch outcome
// predictability (which determines the gshare mispredict rate). The
// per-benchmark profiles in src/workloads instantiate this generator with
// parameters calibrated so the 180 nm simulation approximates the IPC and
// power reported in Table 3 of the paper.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "trace/instruction.hpp"
#include "util/rng.hpp"

namespace ramp::trace {

/// Statistical description of a workload, sufficient to synthesize a trace.
struct GeneratorProfile {
  /// Relative frequency of each OpClass, indexed by static_cast<int>(OpClass).
  /// Need not be normalized. Loads/stores/branches here define the memory and
  /// control-flow densities.
  std::vector<double> op_mix = std::vector<double>(kNumOpClasses, 0.0);

  /// Register dependences: each source register reads the destination of a
  /// recent producer at distance d (in dynamic instructions), with d drawn
  /// geometrically. Small mean distance => long dependency chains => low ILP.
  double dep_distance_p = 0.25;  ///< geometric success prob; mean = (1-p)/p
  double second_source_prob = 0.5;  ///< probability an op has two sources

  /// Memory behaviour. A fraction of accesses walk sequential streams (high
  /// spatial locality, near-perfect L1 hits); the rest are scattered
  /// uniformly over one of two footprints. Scattered accesses within
  /// `hot_footprint_bytes` typically hit L1/L2; accesses within
  /// `cold_footprint_bytes` model the L2-missing working set.
  double stream_fraction = 0.7;    ///< fraction of accesses on stride streams
  int num_streams = 4;             ///< concurrent sequential streams
  std::uint32_t stream_stride = 8; ///< bytes advanced per stream access
  double cold_fraction = 0.05;     ///< scattered accesses that go cold
  std::uint64_t hot_footprint_bytes = 24 * 1024;
  std::uint64_t cold_footprint_bytes = 64 * 1024 * 1024;

  /// Branch behaviour: each *static* branch has a fixed preferred direction
  /// and a fixed target (both derived deterministically from its PC), so a
  /// direction predictor and BTB can learn them; each dynamic instance flips
  /// the direction with probability `branch_noise` (the irreducible
  /// mispredict rate). `taken_bias` sets the fraction of static branches
  /// whose preferred direction is taken.
  double branch_noise = 0.04;
  double taken_bias = 0.6;

  /// Static code footprint in basic blocks; controls L1I pressure (small for
  /// SPEC-like loops).
  int code_blocks = 256;
  int block_len = 12;  ///< instructions per basic block between branches
};

/// Deterministic synthetic trace stream; exhausted after `length`
/// instructions.
class SyntheticTrace final : public TraceReader {
 public:
  /// Validates the profile (throws InvalidArgument on nonsense) and prepares
  /// a stream of `length` instructions seeded by `seed`.
  SyntheticTrace(const GeneratorProfile& profile, std::uint64_t length,
                 std::uint64_t seed);

  bool next(Instruction& out) override;

  /// Cheap functional path (~5× less RNG work than next()): keeps the op
  /// mix, the static branch grid, memory addresses, branch outcomes, and
  /// control flow bit-identical in distribution, but skips source/dest
  /// register draws and bookkeeping. Used by the sampled fast-forward,
  /// which only warms caches and the branch predictor.
  bool next_functional(Instruction& out) override;

  std::uint64_t emitted() const { return emitted_; }
  std::uint64_t length() const { return length_; }

 private:
  static constexpr std::size_t kRecentWindow = 64;  // power of two (ring mask)

  // Recent destination registers as a fixed ring, newest at `head`, so
  // recording a producer is O(1) (a growing vector with front-erase costs a
  // 64-entry memmove per value-producing instruction).
  struct RecentRing {
    std::array<std::uint16_t, kRecentWindow> buf{};
    std::uint32_t head = 0;  ///< index of the newest entry (when count > 0)
    std::uint32_t count = 0;
  };

  Instruction synthesize();
  Instruction synthesize_functional();
  void advance_pc(Instruction& ins);
  std::uint16_t pick_source(bool fp);
  void record_producer(RecentRing& recent, std::uint16_t dst);
  std::uint64_t gen_mem_addr();
  std::uint64_t stream_base(std::size_t s) const;

  GeneratorProfile profile_;
  std::uint64_t length_;
  std::uint64_t emitted_ = 0;
  Xoshiro256 rng_;
  AliasTable mix_;

  // Split by register class so FP ops depend on FP producers.
  RecentRing recent_int_;
  RecentRing recent_fp_;
  std::uint16_t next_int_reg_ = 0;
  std::uint16_t next_fp_reg_ = 0;

  std::vector<std::uint64_t> stream_pos_;
  // Derived constants hoisted out of the per-instruction path (each would
  // otherwise cost a 64-bit division per instruction or per memory access).
  std::uint64_t stream_span_ = 0;
  std::uint64_t code_span_ = 0;
  std::uint64_t pc_ = 0x10000;
  // pc_'s offset within its basic block, tracked incrementally: branches sit
  // only on the last slot of each block, and both branch exits (taken jumps
  // to a block base; not-taken falls into the next block) reset it to zero.
  std::uint64_t block_offset_ = 0;
};

}  // namespace ramp::trace
