// Instruction records — the trace format consumed by the timing simulator.
//
// The paper drives Turandot with sampled PowerPC SPEC2K traces. Those traces
// are proprietary; we substitute a synthetic trace stream whose records carry
// exactly the information a trace-driven timing model needs: an operation
// class, register dependences, a memory address for loads/stores, and branch
// direction/target. See DESIGN.md §2 for the substitution rationale.
#pragma once

#include <cstdint>
#include <string_view>

namespace ramp::trace {

/// Operation classes; each maps to one functional-unit type of the
/// POWER4-like core in Table 2.
enum class OpClass : std::uint8_t {
  kIntAlu,     ///< 1-cycle integer op
  kIntMul,     ///< 7-cycle integer multiply
  kIntDiv,     ///< 35-cycle integer divide
  kFpAlu,      ///< 4-cycle FP op
  kFpDiv,      ///< 12-cycle FP divide
  kLoad,       ///< memory load (L1D 2 cycles on hit)
  kStore,      ///< memory store
  kBranch,     ///< conditional or unconditional branch
  kLogicalCr,  ///< condition-register / logical op (LCR unit)
};

inline constexpr int kNumOpClasses = 9;

/// Human-readable mnemonic for an operation class.
std::string_view op_class_name(OpClass c);

/// True for loads and stores.
constexpr bool is_memory(OpClass c) {
  return c == OpClass::kLoad || c == OpClass::kStore;
}

/// True for classes executed by the floating-point units.
constexpr bool is_fp(OpClass c) {
  return c == OpClass::kFpAlu || c == OpClass::kFpDiv;
}

/// One dynamic instruction. Register identifiers are architectural; the
/// simulator renames them. kNoReg marks an unused operand slot.
struct Instruction {
  static constexpr std::uint16_t kNoReg = 0xffff;

  OpClass op = OpClass::kIntAlu;
  std::uint16_t dst = kNoReg;   ///< destination architectural register
  std::uint16_t src1 = kNoReg;  ///< first source register
  std::uint16_t src2 = kNoReg;  ///< second source register
  std::uint64_t pc = 0;         ///< instruction address
  std::uint64_t mem_addr = 0;   ///< effective address for loads/stores
  bool branch_taken = false;    ///< direction, meaningful for kBranch
  std::uint64_t branch_target = 0;  ///< target, meaningful for kBranch
};

/// Pull-based trace source. next() fills `out` and returns false at
/// end-of-trace. Implementations must be deterministic for a fixed
/// construction state so runs are reproducible.
class TraceReader {
 public:
  virtual ~TraceReader() = default;
  virtual bool next(Instruction& out) = 0;

  /// Functional fast-forward: fills `out` with only the fields a non-timing
  /// warming pass needs — op class, pc, mem_addr, and branch
  /// direction/target. Register/dependence fields may be unset. The default
  /// delegates to next(); implementations may use a cheaper draw sequence,
  /// so a stream that interleaves next() and next_functional() is still
  /// deterministic but differs instruction-by-instruction from one read via
  /// next() alone (the statistical properties are identical).
  virtual bool next_functional(Instruction& out) { return next(out); }

  TraceReader() = default;
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;
};

}  // namespace ramp::trace
