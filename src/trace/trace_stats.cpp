#include "trace/trace_stats.hpp"

#include <unordered_map>
#include <unordered_set>

namespace ramp::trace {

TraceStats characterize(TraceReader& reader, std::uint64_t max_instructions) {
  TraceStats stats;
  std::array<std::uint64_t, kNumOpClasses> counts{};
  std::unordered_map<std::uint16_t, std::uint64_t> last_writer;  // reg -> idx
  std::array<std::uint64_t, 8> recent_addrs{};  // sliding access window
  std::size_t recent_pos = 0;
  std::uint64_t recent_filled = 0;
  std::unordered_set<std::uint64_t> lines;
  std::unordered_set<std::uint64_t> pcs;
  std::unordered_set<std::uint64_t> branch_pcs;

  double dep_sum = 0.0;
  std::uint64_t dep_n = 0;
  std::uint64_t branches = 0, taken = 0;
  std::uint64_t mem = 0, sequential = 0;

  Instruction ins;
  std::uint64_t i = 0;
  while (i < max_instructions && reader.next(ins)) {
    ++counts[static_cast<std::size_t>(ins.op)];
    pcs.insert(ins.pc);

    auto dep = [&](std::uint16_t reg) {
      if (reg == Instruction::kNoReg) return;
      const auto it = last_writer.find(reg);
      if (it != last_writer.end()) {
        dep_sum += static_cast<double>(i - it->second);
        ++dep_n;
      }
    };
    dep(ins.src1);
    dep(ins.src2);
    if (ins.dst != Instruction::kNoReg) last_writer[ins.dst] = i;

    if (ins.op == OpClass::kBranch) {
      ++branches;
      taken += ins.branch_taken ? 1 : 0;
      branch_pcs.insert(ins.pc);
    }
    if (is_memory(ins.op)) {
      ++mem;
      lines.insert(ins.mem_addr / 64);
      // Spatial locality proxy: access within one line of any of the
      // previous 8 memory accesses (captures interleaved streams).
      for (std::uint64_t k = 0; k < std::min<std::uint64_t>(recent_filled, 8); ++k) {
        const std::uint64_t prev = recent_addrs[k];
        const std::uint64_t d =
            ins.mem_addr > prev ? ins.mem_addr - prev : prev - ins.mem_addr;
        if (d <= 64) {
          ++sequential;
          break;
        }
      }
      recent_addrs[recent_pos] = ins.mem_addr;
      recent_pos = (recent_pos + 1) % recent_addrs.size();
      ++recent_filled;
    }
    ++i;
  }

  stats.instructions = i;
  if (i == 0) return stats;
  for (int c = 0; c < kNumOpClasses; ++c) {
    stats.mix[static_cast<std::size_t>(c)] =
        static_cast<double>(counts[static_cast<std::size_t>(c)]) /
        static_cast<double>(i);
  }
  stats.mean_dep_distance = dep_n ? dep_sum / static_cast<double>(dep_n) : 0.0;
  stats.branch_fraction = static_cast<double>(branches) / static_cast<double>(i);
  stats.taken_fraction =
      branches ? static_cast<double>(taken) / static_cast<double>(branches) : 0.0;
  stats.static_branch_sites = branch_pcs.size();
  stats.memory_fraction = static_cast<double>(mem) / static_cast<double>(i);
  stats.touched_bytes = lines.size() * 64;
  stats.sequential_fraction =
      mem ? static_cast<double>(sequential) / static_cast<double>(mem) : 0.0;
  stats.code_bytes = pcs.size() * 4;
  return stats;
}

}  // namespace ramp::trace
