// Trace characterization: measure the statistical fingerprint of any
// instruction stream.
//
// The inverse of the synthetic generator: given a TraceReader (synthetic,
// file-replayed, or externally produced), measure the quantities the
// GeneratorProfile parameterizes — instruction mix, register dependency
// distances, branch behaviour, memory footprint and stride locality. Used
// by tests to validate the generator against its own knobs, and by users
// to fit a GeneratorProfile to an external trace.
#pragma once

#include <array>
#include <cstdint>
#include <map>

#include "trace/instruction.hpp"

namespace ramp::trace {

struct TraceStats {
  std::uint64_t instructions = 0;
  /// Fraction of instructions per OpClass.
  std::array<double, kNumOpClasses> mix{};
  /// Mean dynamic distance (instructions) from a source register to its
  /// producing instruction, over sources with a known producer.
  double mean_dep_distance = 0.0;
  /// Branch statistics.
  double branch_fraction = 0.0;
  double taken_fraction = 0.0;       ///< of branches
  std::uint64_t static_branch_sites = 0;
  /// Memory statistics.
  double memory_fraction = 0.0;      ///< loads + stores
  std::uint64_t touched_bytes = 0;   ///< distinct 64 B lines × 64
  double sequential_fraction = 0.0;  ///< accesses within ±64 B of one of
                                     ///< the previous 8 memory accesses
  /// Code footprint: distinct instruction addresses × 4.
  std::uint64_t code_bytes = 0;
};

/// Drains `reader` (up to `max_instructions`) and measures it.
TraceStats characterize(TraceReader& reader,
                        std::uint64_t max_instructions = ~0ULL);

}  // namespace ramp::trace
