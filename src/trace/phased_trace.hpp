// Multi-phase trace composition.
//
// Real sampled traces (the paper's input) exhibit phase behaviour: the
// program alternates between kernels with different instruction mixes,
// memory behaviour, and hence temperature. Our base synthetic traces are
// stationary; PhasedTrace composes several GeneratorProfiles into one
// stream that switches phase every `phase_length` instructions, giving the
// transient thermal model and the thermal-cycling machinery genuine
// time-variation to chew on. Phases cycle round-robin, each phase keeps an
// independent generator state (its streams and control flow resume where
// they left off, like a real program returning to a kernel).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/synthetic_generator.hpp"

namespace ramp::trace {

class PhasedTrace final : public TraceReader {
 public:
  /// `profiles` must be non-empty; total stream length is `length`;
  /// `phase_length` instructions are emitted per phase before switching.
  PhasedTrace(const std::vector<GeneratorProfile>& profiles,
              std::uint64_t length, std::uint64_t phase_length,
              std::uint64_t seed);

  bool next(Instruction& out) override;

  std::uint64_t emitted() const { return emitted_; }
  std::size_t current_phase() const { return phase_; }
  std::size_t num_phases() const { return generators_.size(); }

 private:
  std::vector<std::unique_ptr<SyntheticTrace>> generators_;
  std::uint64_t length_;
  std::uint64_t phase_length_;
  std::uint64_t emitted_ = 0;
  std::size_t phase_ = 0;
};

}  // namespace ramp::trace
