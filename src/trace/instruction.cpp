#include "trace/instruction.hpp"

#include "util/error.hpp"

namespace ramp::trace {

std::string_view op_class_name(OpClass c) {
  switch (c) {
    case OpClass::kIntAlu: return "int-alu";
    case OpClass::kIntMul: return "int-mul";
    case OpClass::kIntDiv: return "int-div";
    case OpClass::kFpAlu: return "fp-alu";
    case OpClass::kFpDiv: return "fp-div";
    case OpClass::kLoad: return "load";
    case OpClass::kStore: return "store";
    case OpClass::kBranch: return "branch";
    case OpClass::kLogicalCr: return "logical-cr";
  }
  throw InvalidArgument("unknown op class");
}

}  // namespace ramp::trace
