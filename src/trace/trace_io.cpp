#include "trace/trace_io.hpp"

#include <array>
#include <cstring>

#include "util/error.hpp"

namespace ramp::trace {

namespace {

constexpr char kMagic[8] = {'R', 'A', 'M', 'P', 'T', 'R', 'C', '1'};

// Fixed on-disk record: everything explicit, little-endian (we only target
// little-endian hosts; a static_assert would need C++23 byteswap to lift).
struct DiskRecord {
  std::uint8_t op;
  std::uint8_t flags;  // bit0: branch_taken
  std::uint16_t dst;
  std::uint16_t src1;
  std::uint16_t src2;
  std::uint64_t pc;
  std::uint64_t mem_addr;
  std::uint64_t branch_target;
};

DiskRecord to_disk(const Instruction& ins) {
  DiskRecord r{};
  r.op = static_cast<std::uint8_t>(ins.op);
  r.flags = ins.branch_taken ? 1 : 0;
  r.dst = ins.dst;
  r.src1 = ins.src1;
  r.src2 = ins.src2;
  r.pc = ins.pc;
  r.mem_addr = ins.mem_addr;
  r.branch_target = ins.branch_target;
  return r;
}

Instruction from_disk(const DiskRecord& r) {
  RAMP_REQUIRE(r.op < kNumOpClasses, "corrupt trace record: bad op class");
  Instruction ins;
  ins.op = static_cast<OpClass>(r.op);
  ins.branch_taken = (r.flags & 1) != 0;
  ins.dst = r.dst;
  ins.src1 = r.src1;
  ins.src2 = r.src2;
  ins.pc = r.pc;
  ins.mem_addr = r.mem_addr;
  ins.branch_target = r.branch_target;
  return ins;
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path)
    : out_(path, std::ios::binary) {
  if (!out_) throw InvalidArgument("cannot open trace file for writing: " + path);
  out_.write(kMagic, sizeof kMagic);
  const std::uint64_t placeholder = 0;
  out_.write(reinterpret_cast<const char*>(&placeholder), sizeof placeholder);
  if (!out_) throw InvalidArgument("trace header write failed: " + path);
}

TraceWriter::~TraceWriter() {
  // Patch the instruction count into the header.
  if (out_) {
    out_.seekp(sizeof kMagic, std::ios::beg);
    out_.write(reinterpret_cast<const char*>(&count_), sizeof count_);
  }
}

void TraceWriter::append(const Instruction& ins) {
  const DiskRecord r = to_disk(ins);
  out_.write(reinterpret_cast<const char*>(&r), sizeof r);
  if (!out_) throw InvalidArgument("trace record write failed");
  ++count_;
}

std::uint64_t TraceWriter::append_all(TraceReader& reader) {
  Instruction ins;
  std::uint64_t n = 0;
  while (reader.next(ins)) {
    append(ins);
    ++n;
  }
  return n;
}

TraceFileReader::TraceFileReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_) throw InvalidArgument("cannot open trace file: " + path);
  char magic[8];
  in_.read(magic, sizeof magic);
  if (!in_ || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw InvalidArgument("not a RAMP trace file: " + path);
  }
  in_.read(reinterpret_cast<char*>(&total_), sizeof total_);
  if (!in_) throw InvalidArgument("truncated trace header: " + path);
}

bool TraceFileReader::next(Instruction& out) {
  if (read_ >= total_) return false;
  DiskRecord r;
  in_.read(reinterpret_cast<char*>(&r), sizeof r);
  if (!in_) throw InvalidArgument("truncated trace file (record read failed)");
  out = from_disk(r);
  ++read_;
  return true;
}

}  // namespace ramp::trace
