// Trace serialization: write/read instruction streams to a compact binary
// format.
//
// Turandot is a trace-driven simulator; the paper feeds it sampled PowerPC
// traces. This module gives the reproduction the same decoupling: any
// TraceReader (synthetic or otherwise) can be captured to a file once and
// replayed many times, and externally produced traces can drive the
// simulator by converting them to this format.
//
// Format (little-endian, fixed 26-byte records after a 16-byte header):
//   header:  magic "RAMPTRC1" (8 bytes), u64 instruction count
//   record:  u8 op, u16 dst, u16 src1, u16 src2, u64 pc_delta (zigzag from
//            previous pc), u64 mem_addr, u8 flags (bit0 taken), plus the
//            branch target only when op == branch (u64)
// For simplicity and auditability the implementation below uses fixed-size
// full records (no target elision); the compactness lever that matters is
// the single file pass.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "trace/instruction.hpp"

namespace ramp::trace {

/// Streams instructions to a binary trace file.
class TraceWriter {
 public:
  /// Opens `path` for writing; throws InvalidArgument on I/O failure.
  explicit TraceWriter(const std::string& path);

  /// Finalizes the header (writes the record count) on destruction.
  ~TraceWriter();

  void append(const Instruction& ins);

  /// Drains `reader` to the file; returns instructions written.
  std::uint64_t append_all(TraceReader& reader);

  std::uint64_t written() const { return count_; }

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

 private:
  std::ofstream out_;
  std::uint64_t count_ = 0;
};

/// Replays a binary trace file as a TraceReader.
class TraceFileReader final : public TraceReader {
 public:
  /// Opens and validates `path`; throws InvalidArgument on a bad magic,
  /// truncated header, or I/O failure.
  explicit TraceFileReader(const std::string& path);

  bool next(Instruction& out) override;

  std::uint64_t total_instructions() const { return total_; }
  std::uint64_t read_so_far() const { return read_; }

 private:
  std::ifstream in_;
  std::uint64_t total_ = 0;
  std::uint64_t read_ = 0;
};

}  // namespace ramp::trace
