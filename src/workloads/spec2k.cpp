#include "workloads/spec2k.hpp"

#include "util/error.hpp"

namespace ramp::workloads {

namespace {

using trace::GeneratorProfile;
using trace::OpClass;

// Builds an op mix. Weights are relative; the generator normalizes.
std::vector<double> mix(double int_alu, double int_mul, double int_div,
                        double fp_alu, double fp_div, double load, double store,
                        double branch, double cr) {
  std::vector<double> m(trace::kNumOpClasses, 0.0);
  m[static_cast<int>(OpClass::kIntAlu)] = int_alu;
  m[static_cast<int>(OpClass::kIntMul)] = int_mul;
  m[static_cast<int>(OpClass::kIntDiv)] = int_div;
  m[static_cast<int>(OpClass::kFpAlu)] = fp_alu;
  m[static_cast<int>(OpClass::kFpDiv)] = fp_div;
  m[static_cast<int>(OpClass::kLoad)] = load;
  m[static_cast<int>(OpClass::kStore)] = store;
  m[static_cast<int>(OpClass::kBranch)] = branch;
  m[static_cast<int>(OpClass::kLogicalCr)] = cr;
  return m;
}

// Common knobs bundled per-benchmark. `ilp` sets the mean register
// dependency distance (higher => more extractable parallelism); `miss` sets
// the L2-missing fraction of scattered accesses; `noise` sets irreducible
// branch mispredicts; `block` sets instructions per branch.
GeneratorProfile make_profile(std::vector<double> op_mix, double ilp,
                              double miss, double noise, int block,
                              std::uint64_t hot_kb, std::uint64_t cold_mb,
                              double stream_frac) {
  GeneratorProfile p;
  p.op_mix = std::move(op_mix);
  // Geometric mean distance = (1-p)/p  =>  p = 1/(1+mean).
  p.dep_distance_p = 1.0 / (1.0 + ilp);
  p.cold_fraction = miss;
  p.branch_noise = noise;
  p.block_len = block;
  p.hot_footprint_bytes = hot_kb * 1024;
  p.cold_footprint_bytes = cold_mb * 1024 * 1024;
  p.stream_fraction = stream_frac;
  return p;
}

std::vector<Workload> build_suite() {
  std::vector<Workload> all;
  all.reserve(16);

  // ---- SpecFP (Table 3 order: ascending 180 nm power) -------------------
  // FP codes: long basic blocks, predictable branches, stream-heavy memory.
  // ammp: low IPC — pointer-chasing molecular dynamics, poor locality.
  all.push_back({"ammp", Suite::kSpecFp,
                 make_profile(mix(20, 1, 0.3, 24, 1.2, 27, 9, 4, 3),
                              2.85, 0.022, 0.04, 14, 24, 48,
                              0.6),
                 1.06, 26.08, 1.03});
  // applu: PDE solver, long dependency recurrences.
  all.push_back({"applu", Suite::kSpecFp,
                 make_profile(mix(16, 1, 0.1, 30, 1.6, 26, 10, 3, 2),
                              2.3, 0.018, 0.015, 18, 20, 64,
                              0.7),
                 1.17, 26.94, 1.01});
  // sixtrack: particle tracking, moderate ILP, small footprint.
  all.push_back({"sixtrack", Suite::kSpecFp,
                 make_profile(mix(18, 1.5, 0.1, 32, 0.8, 24, 9, 3, 2),
                              2.45, 0.012, 0.015, 18, 16, 32,
                              0.72),
                 1.38, 27.32, 1.0});
  // mgrid: multigrid, highly regular streaming.
  all.push_back({"mgrid", Suite::kSpecFp,
                 make_profile(mix(14, 1, 0.05, 36, 0.5, 27, 8, 2, 1.5),
                              4.2, 0.012, 0.008, 24, 12, 56,
                              0.85),
                 1.71, 27.78, 0.95});
  // mesa: 3D graphics library, int/fp mixed, good locality.
  all.push_back({"mesa", Suite::kSpecFp,
                 make_profile(mix(26, 2, 0.1, 22, 0.5, 26, 11, 4, 3),
                              2.2, 0.006, 0.015, 14, 12, 16,
                              0.8),
                 1.75, 29.21, 0.99});
  // facerec: image processing, FFT-like kernels.
  all.push_back({"facerec", Suite::kSpecFp,
                 make_profile(mix(16, 1.5, 0.05, 34, 0.6, 26, 8, 3, 2),
                              4.05, 0.008, 0.01, 20, 12, 32,
                              0.85),
                 1.79, 29.60, 1.0});
  // wupwise: lattice QCD, dense linear algebra — hot and power-hungry.
  all.push_back({"wupwise", Suite::kSpecFp,
                 make_profile(mix(14, 1.5, 0.05, 38, 0.7, 25, 9, 2, 1.5),
                              4.55, 0.01, 0.008, 26, 12, 64,
                              0.85),
                 1.66, 30.50, 1.07});
  // apsi: weather code, mixed kernels, hottest FP app.
  all.push_back({"apsi", Suite::kSpecFp,
                 make_profile(mix(18, 1.5, 0.1, 33, 0.9, 26, 9, 3, 2),
                              3.65, 0.012, 0.012, 20, 16, 48,
                              0.78),
                 1.64, 30.65, 1.09});

  // ---- SpecInt -----------------------------------------------------------
  // Int codes: shorter blocks, harder branches, no FP traffic.
  // vpr: place & route, pointer-heavy, mispredict-prone.
  all.push_back({"vpr", Suite::kSpecInt,
                 make_profile(mix(44, 1.5, 0.2, 0, 0, 28, 10, 7, 4),
                              3.2, 0.012, 0.045, 7, 16, 32,
                              0.5),
                 1.38, 26.93, 1.01});
  // bzip2: compression, highly predictable inner loops, high IPC.
  all.push_back({"bzip2", Suite::kSpecInt,
                 make_profile(mix(48, 1, 0.05, 0, 0, 27, 11, 6, 3),
                              4.05, 0.004, 0.01, 9, 8, 8,
                              0.8),
                 2.31, 27.71, 0.88});
  // twolf: placement, small working set but serial chains.
  all.push_back({"twolf", Suite::kSpecInt,
                 make_profile(mix(45, 2, 0.3, 0, 0, 28, 9, 7, 4),
                              2.7, 0.012, 0.042, 7, 16, 24,
                              0.5),
                 1.26, 28.44, 1.1});
  // gzip: compression, regular, decent IPC.
  all.push_back({"gzip", Suite::kSpecInt,
                 make_profile(mix(47, 1, 0.05, 0, 0, 27, 11, 6, 3),
                              3.1, 0.005, 0.018, 8, 12, 8,
                              0.75),
                 1.85, 28.69, 0.98});
  // perlbmk: interpreter, big I-footprint but predictable dispatch loops.
  all.push_back({"perlbmk", Suite::kSpecInt,
                 make_profile(mix(46, 1.5, 0.1, 0, 0, 28, 12, 7, 4),
                              4.4, 0.004, 0.012, 8, 8, 8,
                              0.8),
                 2.25, 30.59, 1.0});
  // gap: group theory, arithmetic heavy.
  all.push_back({"gap", Suite::kSpecInt,
                 make_profile(mix(48, 2.5, 0.2, 0, 0, 27, 10, 6, 3),
                              4.4, 0.008, 0.018, 9, 16, 24,
                              0.7),
                 1.76, 31.24, 1.1});
  // gcc: compiler, large footprint, branchy — low IPC, high power.
  all.push_back({"gcc", Suite::kSpecInt,
                 make_profile(mix(45, 1, 0.1, 0, 0, 28, 12, 8, 4),
                              2.2, 0.013, 0.045, 6, 16, 32,
                              0.5),
                 1.24, 31.73, 1.22});
  // crafty: chess, bit-twiddling, very high IPC — hottest Int app.
  all.push_back({"crafty", Suite::kSpecInt,
                 make_profile(mix(50, 1.5, 0.1, 0, 0, 25, 8, 7, 5),
                              4.7, 0.003, 0.01, 8, 8, 8,
                              0.8),
                 2.25, 31.95, 1.04});

  return all;
}

}  // namespace

const std::vector<Workload>& spec2k_suite() {
  static const std::vector<Workload> kSuite = build_suite();
  return kSuite;
}

std::vector<Workload> suite_workloads(Suite suite) {
  std::vector<Workload> subset;
  for (const auto& w : spec2k_suite()) {
    if (w.suite == suite) subset.push_back(w);
  }
  return subset;
}

const Workload& workload(const std::string& name) {
  for (const auto& w : spec2k_suite()) {
    if (w.name == name) return w;
  }
  throw InvalidArgument("unknown workload: " + name);
}

const char* suite_name(Suite suite) {
  return suite == Suite::kSpecFp ? "SpecFP" : "SpecInt";
}

}  // namespace ramp::workloads
