// The 16-benchmark SPEC2K workload suite of the paper (Table 3).
//
// The paper uses sampled PowerPC traces of 8 SpecFP and 8 SpecInt programs.
// We substitute one synthetic GeneratorProfile per benchmark, with parameters
// (instruction mix, dependency distances, memory footprints, branch
// predictability) chosen so the simulated 180 nm IPC approximates the value
// the paper reports. Table 3's published IPC and power are carried alongside
// each profile so benches and EXPERIMENTS.md can print paper-vs-measured.
#pragma once

#include <string>
#include <vector>

#include "trace/synthetic_generator.hpp"

namespace ramp::workloads {

enum class Suite { kSpecFp, kSpecInt };

/// One benchmark: a synthetic profile plus the paper's published numbers.
struct Workload {
  std::string name;
  Suite suite;
  trace::GeneratorProfile profile;
  double table3_ipc;      ///< IPC the paper reports at 180 nm
  double table3_power_w;  ///< average power (W) the paper reports at 180 nm

  /// Per-benchmark dynamic-power calibration multiplier. PowerTimer's
  /// circuit-level models capture per-application energy-per-operation
  /// differences (e.g. gcc's wide datapath toggling) that a pure
  /// activity-factor model cannot; this factor calibrates each benchmark's
  /// dynamic power to the Table 3 value at 180 nm.
  double power_bias = 1.0;
};

/// All 16 benchmarks in Table 3 order (SpecFP ascending power, then SpecInt).
const std::vector<Workload>& spec2k_suite();

/// The subset belonging to `suite`, in Table 3 order.
std::vector<Workload> suite_workloads(Suite suite);

/// Looks a benchmark up by name; throws InvalidArgument when unknown.
const Workload& workload(const std::string& name);

/// Display name of a suite ("SpecFP"/"SpecInt").
const char* suite_name(Suite suite);

}  // namespace ramp::workloads
