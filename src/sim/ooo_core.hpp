// Trace-driven out-of-order superscalar core timing model (Turandot-like).
//
// Models the POWER4-like pipeline of Table 2: 8-wide fetch ending at taken
// branches, dispatch-group formation (up to 5 instructions, one group per
// cycle), register renaming against finite physical register files,
// per-class issue queues feeding 2 Int / 2 FP / 2 Load-Store / 1 Branch /
// 1 CR-logical units, a 150-entry reorder buffer with group retirement, a
// 32-entry memory queue, and the L1/L2/memory hierarchy. Being trace-driven,
// mispredicted branches stall fetch for a redirect penalty rather than
// executing wrong-path instructions — the same approach Turandot takes.
//
// The simulator's deliverable is SimResult: per-interval per-structure
// activity factors that the power model converts to Watts.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "sim/branch_predictor.hpp"
#include "sim/core_config.hpp"
#include "sim/interval_stats.hpp"
#include "sim/memory_hierarchy.hpp"
#include "trace/instruction.hpp"

namespace ramp::sim {

class OooCore {
 public:
  explicit OooCore(const CoreConfig& cfg);

  /// Borrowed-state constructor: the core uses (and mutates) the caller's
  /// memory hierarchy and/or branch predictor instead of owning fresh ones.
  /// Pass nullptr to own that component. SampledCore uses this so its
  /// short-lived measurement-unit cores share one persistently warm cache
  /// hierarchy and predictor instead of re-constructing MB-scale tag arrays
  /// per unit. Borrowed components must outlive the core.
  OooCore(const CoreConfig& cfg, MemoryHierarchy* mem,
          BranchPredictor* predictor);

  /// Runs `reader` to exhaustion, chopping statistics every
  /// `interval_cycles` cycles. Throws InvalidArgument on a zero interval.
  SimResult run(trace::TraceReader& reader, std::uint64_t interval_cycles);

  /// Single-cycle stepping for callers that drive the core externally
  /// (SampledCore measures instruction windows this way). Simulates one
  /// cycle against `reader` and returns false once the trace is exhausted
  /// and the machine has drained. Interval chopping is disabled in this
  /// mode; read progress through live_counters(). Do not mix with run().
  bool step(trace::TraceReader& reader);

  /// Running whole-run totals, valid while driving the core via step().
  struct LiveCounters {
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;
    std::uint64_t fetched = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t int_issued = 0;
    std::uint64_t fp_issued = 0;
    std::uint64_t ls_issued = 0;
    std::uint64_t br_issued = 0;
  };
  LiveCounters live_counters() const {
    return {cycle_,         iv_retired_,   iv_fetched_,   iv_dispatched_,
            iv_int_issued_, iv_fp_issued_, iv_ls_issued_, iv_br_issued_};
  }

  const CoreConfig& config() const { return cfg_; }

 private:
  // One in-flight instruction, identified by its dynamic sequence number.
  struct Flight {
    trace::OpClass op{};
    std::uint64_t seq = 0;
    std::uint64_t dep1 = kNoDep;  ///< producer sequence numbers
    std::uint64_t dep2 = kNoDep;
    std::uint64_t mem_addr = 0;
    std::uint64_t complete_cycle = 0;
    bool issued = false;
    bool completed = false;
    bool produces_int = false;
    bool produces_fp = false;
    bool in_mem_queue = false;
  };
  static constexpr std::uint64_t kNoDep = ~0ULL;

  // Functional-unit pool for one op family.
  struct UnitPool {
    std::vector<std::uint64_t> free_at;  ///< cycle each unit next accepts
    explicit UnitPool(int n = 0) : free_at(static_cast<std::size_t>(n), 0) {}
    int available(std::uint64_t now) const;
    // Claims a unit: occupied through `occupy` cycles (1 for pipelined ops).
    void claim(std::uint64_t now, std::uint64_t occupy);
  };

  enum class IqClass : std::uint8_t { kInt, kFp, kLs, kBr, kCr };
  static constexpr int kNumIqClasses = 5;
  static IqClass iq_class_of(trace::OpClass op);

  // Issue-queue entry: the flight's seq plus a cached earliest-ready cycle.
  // ready_at stays kReadyUnknown while any producer is unissued; once every
  // producer has issued its complete_cycle is fixed, so ready_at becomes
  // max over producers' complete cycles and never changes again (producers
  // retiring later cannot move it). The ready scan then skips a waiting
  // entry with one compare instead of two ROB walks per cycle.
  struct IqEntry {
    std::uint64_t seq;
    std::uint64_t ready_at;
  };
  static constexpr std::uint64_t kReadyUnknown = ~0ULL;

  // --- pipeline stages, called once per cycle in reverse order ---
  void do_retire();
  void do_complete();
  void do_issue();
  void do_dispatch();
  void do_fetch(trace::TraceReader& reader);

  /// One full pipeline cycle plus interval bookkeeping (shared by run and
  /// step).
  void cycle_once(trace::TraceReader& reader);
  bool drained() const {
    return trace_exhausted_ && !pending_valid_ && fetch_buffer_.empty() &&
           rob_.empty();
  }

  bool dep_satisfied(std::uint64_t dep) const;
  /// Earliest cycle the flight's operands are all available, or
  /// kReadyUnknown while a producer has not issued yet.
  std::uint64_t ready_at_of(const Flight& f) const;
  Flight* find_flight(std::uint64_t seq);
  const Flight* find_flight(std::uint64_t seq) const;
  int exec_latency(trace::OpClass op) const;
  void finish_interval();

  CoreConfig cfg_;
  // Owned by default; borrowed (null owners) via the injection constructor.
  std::unique_ptr<BranchPredictor> owned_predictor_;
  std::unique_ptr<MemoryHierarchy> owned_mem_;
  BranchPredictor* predictor_ = nullptr;
  MemoryHierarchy* mem_ = nullptr;

  // ROB as a ring: rob_[seq - rob_base_seq_] for in-flight seq numbers.
  std::deque<Flight> rob_;
  std::uint64_t rob_base_seq_ = 0;  ///< seq of ROB head (oldest in flight)
  std::uint64_t next_seq_ = 0;      ///< seq for the next dispatched instr

  // Rename: architectural register -> seq of last in-flight producer.
  std::vector<std::uint64_t> rename_table_;
  int int_regs_in_use_ = 0;
  int fp_regs_in_use_ = 0;
  int mem_queue_used_ = 0;

  std::vector<std::vector<IqEntry>> issue_queues_;  ///< FIFO order
  UnitPool int_pool_, fp_pool_, ls_pool_, br_pool_, cr_pool_;

  // Fetch state.
  std::deque<trace::Instruction> fetch_buffer_;
  std::uint64_t fetch_resume_cycle_ = 0;  ///< stall until this cycle
  std::uint64_t stalled_on_branch_seq_ = kNoDep;  ///< unresolved mispredict
  bool trace_exhausted_ = false;
  trace::Instruction pending_;  ///< lookahead instruction when valid
  bool pending_valid_ = false;

  std::uint64_t cycle_ = 0;

  /// Completion times of in-flight L1D misses; each fill releases its MSHR
  /// slot when the cycle clock passes it.
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>>
      miss_fill_events_;

  /// In-flight store (seq, 8-byte-aligned address) pairs, dispatch order;
  /// consulted by loads when store forwarding is enabled.
  std::deque<std::pair<std::uint64_t, std::uint64_t>> inflight_stores_;

  // --- per-interval counters ---
  std::uint64_t iv_start_cycle_ = 0;
  std::uint64_t iv_fetched_ = 0;
  std::uint64_t iv_dispatched_ = 0;
  std::uint64_t iv_retired_ = 0;
  std::uint64_t iv_int_issued_ = 0;
  std::uint64_t iv_fp_issued_ = 0;
  std::uint64_t iv_ls_issued_ = 0;
  std::uint64_t iv_br_issued_ = 0;
  std::uint64_t iv_rob_occupancy_sum_ = 0;

  SimResult result_;
  std::uint64_t interval_cycles_ = 0;
};

}  // namespace ramp::sim
