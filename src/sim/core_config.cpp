#include "sim/core_config.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ramp::sim {

CoreConfig base_core_config() { return CoreConfig{}; }

CoreConfig core_config_for(const scaling::TechnologyNode& tech) {
  CoreConfig cfg = base_core_config();
  const double base_freq = cfg.frequency_hz;
  cfg.frequency_hz = tech.frequency_hz;
  // Main-memory latency is constant in wall-clock time; convert the base
  // 102 cycles @ 1.1 GHz to ns and back to cycles at the new clock.
  const double mem_ns = static_cast<double>(cfg.lat_memory) / base_freq;
  cfg.lat_memory = static_cast<int>(std::lround(mem_ns * tech.frequency_hz));
  RAMP_ASSERT(cfg.lat_memory >= 1);
  return cfg;
}

}  // namespace ramp::sim
