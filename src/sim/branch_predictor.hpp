// Branch direction and target prediction.
//
// POWER4-style hybrid direction predictor: a local (bimodal, PC-indexed)
// table, a global (gshare, history^PC-indexed) table, and a selector table
// that learns per-PC which of the two performs better — plus a
// direct-mapped BTB for taken-branch targets. The timing model charges a
// fixed redirect penalty on a direction or target mispredict.
#pragma once

#include <cstdint>
#include <vector>

namespace ramp::sim {

struct BranchPredictorConfig {
  int local_bits = 12;     ///< bimodal table = 2^bits 2-bit counters
  int history_bits = 12;   ///< gshare history length and table size
  int selector_bits = 12;  ///< chooser table size
  int btb_entries = 1024;  ///< direct-mapped BTB size (power of two)
};

/// Hybrid local/global predictor + BTB. Deterministic and value-semantic.
class BranchPredictor {
 public:
  explicit BranchPredictor(const BranchPredictorConfig& cfg = {});

  struct Prediction {
    bool taken = false;
    std::uint64_t target = 0;  ///< 0 when the BTB has no entry
  };

  /// Predicts the branch at `pc`.
  Prediction predict(std::uint64_t pc) const;

  /// Trains all tables with the resolved outcome and updates history.
  void update(std::uint64_t pc, bool taken, std::uint64_t target);

  /// True when `predict` would have mispredicted this outcome — direction
  /// wrong, or taken with a wrong/missing target.
  bool mispredicted(std::uint64_t pc, bool taken, std::uint64_t target) const;

  /// predict + mispredicted + update in one step, bumping the counters; this
  /// is what the core calls per branch.
  bool record_outcome(std::uint64_t pc, bool taken, std::uint64_t target);

  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t mispredicts() const { return mispredicts_; }
  /// Mispredict rate over all calls to `record_outcome`; 0 when unused.
  double mispredict_rate() const;

 private:
  bool local_taken(std::uint64_t pc) const;
  bool global_taken(std::uint64_t pc) const;
  std::size_t local_index(std::uint64_t pc) const;
  std::size_t global_index(std::uint64_t pc) const;
  std::size_t selector_index(std::uint64_t pc) const;
  std::size_t btb_index(std::uint64_t pc) const;
  static void bump(std::uint8_t& ctr, bool up);

  BranchPredictorConfig cfg_;
  std::vector<std::uint8_t> local_;     ///< 2-bit, init weakly taken
  std::vector<std::uint8_t> global_;    ///< 2-bit, init weakly taken
  std::vector<std::uint8_t> selector_;  ///< 2-bit, >=2 selects global
  struct BtbEntry {
    std::uint64_t tag = 0;
    std::uint64_t target = 0;
    bool valid = false;
  };
  std::vector<BtbEntry> btb_;
  std::uint64_t history_ = 0;
  std::uint64_t history_mask_ = 0;
  std::uint64_t lookups_ = 0;
  std::uint64_t mispredicts_ = 0;
};

}  // namespace ramp::sim
