// SMARTS-style sampled timing simulation with a regression estimator.
//
// Three ingredients:
//
// 1. Detailed prefix.  The first ~10k instructions (the cold-start ramp,
//    where cache/predictor fill makes miss costs overlap heavily and CPI
//    is several times steady state) run fully on the detailed OooCore and
//    contribute their exact cycle count.
//
// 2. Systematic sampling.  After the prefix, per sampling period one short
//    measurement unit runs on the detailed OooCore: warm-up instructions
//    re-establish pipeline/queue backpressure, then several consecutive
//    `measure`-instruction windows are timed between retirement snapshots
//    (excluding fill and drain bias; packing multiple windows into one
//    unit amortizes the warmup).  The rest of the period fast-forwards
//    functionally — no pipeline timing, but every instruction still
//    updates the shared cache hierarchy and branch predictor, so
//    long-lived state never goes cold.
//
// 3. Regression (control-variate) estimation.  Raw window-IPC
//    extrapolation would inherit the windows' Poisson event noise (a few
//    misses more or fewer swings a short window's IPC by tens of percent).
//    Instead, the shared predictor/hierarchy count every mispredict and
//    miss over 100% of the stream, and the windows fit
//        cycles = base_cpi * instructions + event_scale * event_cost
//    (event_cost = nominal serialized penalties for mispredicts and
//    I/D/L2 misses), ridge-regularized toward event_scale = 1 for
//    sparse-event workloads.  Steady periods are then priced with their
//    own exact event counts, so phase shifts in miss density land in the
//    right intervals and event noise cancels between fit and evaluation.
//    The spread of per-window observed/fitted ratios yields 95% confidence
//    bounds (FastSimStats).
//
// Deterministic by construction: the sampling schedule is systematic (no
// RNG), each run is single-threaded, and the trace stream is deterministic,
// so results are byte-identical across reruns and job counts.
#pragma once

#include <cstdint>

#include "sim/core_config.hpp"
#include "sim/interval_stats.hpp"
#include "sim/sim_mode.hpp"
#include "trace/instruction.hpp"

namespace ramp::sim {

class SampledCore {
 public:
  /// Validates `params` (throws InvalidArgument on nonsense).
  SampledCore(const CoreConfig& cfg, const SampledParams& params);

  /// Runs `reader` to exhaustion and returns an estimated SimResult shaped
  /// like OooCore's: intervals of `interval_cycles` estimated cycles with
  /// piecewise-constant activity, plus whole-run totals (cache and branch
  /// counters are exact full-stream functional counts; cycles and IPC are
  /// the sampled estimates). Throws InvalidArgument on a zero interval.
  SimResult run(trace::TraceReader& reader, std::uint64_t interval_cycles);

  /// Estimator metadata for the last run (coverage, units, confidence).
  const FastSimStats& fast_stats() const { return stats_; }

  const CoreConfig& config() const { return cfg_; }

 private:
  CoreConfig cfg_;
  SampledParams params_;
  FastSimStats stats_;
};

}  // namespace ramp::sim
