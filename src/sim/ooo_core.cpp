#include "sim/ooo_core.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ramp::sim {

using trace::Instruction;
using trace::OpClass;

namespace {
constexpr std::uint64_t kFetchLineBytes = 64;
}

int OooCore::UnitPool::available(std::uint64_t now) const {
  int n = 0;
  for (std::uint64_t t : free_at) {
    if (t <= now) ++n;
  }
  return n;
}

void OooCore::UnitPool::claim(std::uint64_t now, std::uint64_t occupy) {
  for (auto& t : free_at) {
    if (t <= now) {
      t = now + occupy;
      return;
    }
  }
  throw InternalError("claimed a unit with none available");
}

OooCore::IqClass OooCore::iq_class_of(OpClass op) {
  switch (op) {
    case OpClass::kIntAlu:
    case OpClass::kIntMul:
    case OpClass::kIntDiv: return IqClass::kInt;
    case OpClass::kFpAlu:
    case OpClass::kFpDiv: return IqClass::kFp;
    case OpClass::kLoad:
    case OpClass::kStore: return IqClass::kLs;
    case OpClass::kBranch: return IqClass::kBr;
    case OpClass::kLogicalCr: return IqClass::kCr;
  }
  throw InvalidArgument("unknown op class");
}

OooCore::OooCore(const CoreConfig& cfg) : OooCore(cfg, nullptr, nullptr) {}

OooCore::OooCore(const CoreConfig& cfg, MemoryHierarchy* mem,
                 BranchPredictor* predictor)
    : cfg_(cfg),
      owned_predictor_(predictor
                           ? nullptr
                           : std::make_unique<BranchPredictor>(cfg.predictor)),
      owned_mem_(mem ? nullptr : std::make_unique<MemoryHierarchy>(cfg)),
      predictor_(predictor ? predictor : owned_predictor_.get()),
      mem_(mem ? mem : owned_mem_.get()),
      rename_table_(static_cast<std::size_t>(cfg.arch_int_regs + cfg.arch_fp_regs),
                    kNoDep),
      issue_queues_(kNumIqClasses),
      int_pool_(cfg.int_units),
      fp_pool_(cfg.fp_units),
      ls_pool_(cfg.ls_units),
      br_pool_(cfg.br_units),
      cr_pool_(cfg.cr_units) {
  RAMP_REQUIRE(cfg.rob_size > 0 && cfg.dispatch_group > 0 && cfg.fetch_width > 0,
               "pipeline widths must be positive");
  RAMP_REQUIRE(cfg.int_rename_budget() > 0 && cfg.fp_rename_budget() > 0,
               "physical register files must exceed architectural state");
}

bool OooCore::dep_satisfied(std::uint64_t dep) const {
  if (dep == kNoDep) return true;
  if (dep < rob_base_seq_) return true;  // producer already retired
  const Flight* f = find_flight(dep);
  return f == nullptr || (f->completed && f->complete_cycle <= cycle_);
}

std::uint64_t OooCore::ready_at_of(const Flight& f) const {
  std::uint64_t ready = 0;
  for (const std::uint64_t dep : {f.dep1, f.dep2}) {
    if (dep == kNoDep || dep < rob_base_seq_) continue;  // no/retired producer
    const Flight* p = find_flight(dep);
    if (p == nullptr) continue;
    if (!p->issued) return kReadyUnknown;  // completion time not fixed yet
    ready = std::max(ready, p->complete_cycle);
  }
  return ready;
}

OooCore::Flight* OooCore::find_flight(std::uint64_t seq) {
  if (seq < rob_base_seq_) return nullptr;
  const std::uint64_t off = seq - rob_base_seq_;
  if (off >= rob_.size()) return nullptr;
  return &rob_[off];
}

const OooCore::Flight* OooCore::find_flight(std::uint64_t seq) const {
  return const_cast<OooCore*>(this)->find_flight(seq);
}

int OooCore::exec_latency(OpClass op) const {
  switch (op) {
    case OpClass::kIntAlu: return cfg_.lat_int_add;
    case OpClass::kIntMul: return cfg_.lat_int_mul;
    case OpClass::kIntDiv: return cfg_.lat_int_div;
    case OpClass::kFpAlu: return cfg_.lat_fp;
    case OpClass::kFpDiv: return cfg_.lat_fp_div;
    case OpClass::kLogicalCr: return 1;
    case OpClass::kBranch: return 1;
    case OpClass::kLoad:
    case OpClass::kStore: return cfg_.lat_l1d;  // refined at issue
  }
  throw InvalidArgument("unknown op class");
}

void OooCore::do_retire() {
  int retired = 0;
  const int budget = cfg_.retire_groups * cfg_.dispatch_group;
  while (retired < budget && !rob_.empty()) {
    Flight& head = rob_.front();
    if (!head.completed || head.complete_cycle > cycle_) break;
    if (head.produces_int) --int_regs_in_use_;
    if (head.produces_fp) --fp_regs_in_use_;
    if (head.in_mem_queue) --mem_queue_used_;
    if (!inflight_stores_.empty() && inflight_stores_.front().first == head.seq) {
      inflight_stores_.pop_front();
    }
    rob_.pop_front();
    ++rob_base_seq_;
    ++retired;
    ++iv_retired_;
  }
  RAMP_ASSERT(int_regs_in_use_ >= 0 && fp_regs_in_use_ >= 0 &&
              mem_queue_used_ >= 0);
}

void OooCore::do_complete() {
  // Release MSHR slots whose fills have arrived.
  while (!miss_fill_events_.empty() && miss_fill_events_.top() <= cycle_) {
    miss_fill_events_.pop();
    mem_->retire_miss();
  }
  // Completion is otherwise implicit: issued instructions carry
  // complete_cycle. The remaining work is resuming fetch when a
  // mispredicted branch resolves.
  if (stalled_on_branch_seq_ != kNoDep) {
    // The stalling branch may still sit in the fetch buffer (not dispatched,
    // so not yet in the ROB); it cannot have resolved in that case.
    if (stalled_on_branch_seq_ >= next_seq_) return;
    const Flight* br = find_flight(stalled_on_branch_seq_);
    const bool resolved =
        br == nullptr || (br->completed && br->complete_cycle <= cycle_);
    if (resolved) {
      const std::uint64_t resolve_cycle =
          br == nullptr ? cycle_ : br->complete_cycle;
      fetch_resume_cycle_ =
          resolve_cycle + static_cast<std::uint64_t>(cfg_.mispredict_penalty);
      stalled_on_branch_seq_ = kNoDep;
    }
  }
}

void OooCore::do_issue() {
  struct PoolRef {
    UnitPool* pool;
    std::uint64_t* counter;
  };
  const std::array<PoolRef, kNumIqClasses> pools = {{
      {&int_pool_, &iv_int_issued_},
      {&fp_pool_, &iv_fp_issued_},
      {&ls_pool_, &iv_ls_issued_},
      {&br_pool_, &iv_br_issued_},
      {&cr_pool_, &iv_br_issued_},  // BXU covers branch + CR-logical traffic
  }};

  for (int c = 0; c < kNumIqClasses; ++c) {
    auto& queue = issue_queues_[static_cast<std::size_t>(c)];
    UnitPool& pool = *pools[static_cast<std::size_t>(c)].pool;
    int slots = pool.available(cycle_);
    if (slots == 0 || queue.empty()) continue;

    // Oldest-first ready scan. Entries with a cached future ready_at are
    // skipped on one compare; unknown entries re-derive it from the ROB
    // (same cost the unconditional dep walk used to pay every cycle).
    for (std::size_t qi = 0; qi < queue.size() && slots > 0;) {
      IqEntry& e = queue[qi];
      if (e.ready_at == kReadyUnknown) {
        const Flight* pf = find_flight(e.seq);
        RAMP_ASSERT(pf != nullptr && !pf->issued);
        e.ready_at = ready_at_of(*pf);
      }
      if (e.ready_at == kReadyUnknown || e.ready_at > cycle_) {
        ++qi;
        continue;
      }
      Flight* f = find_flight(e.seq);
      RAMP_ASSERT(f != nullptr && !f->issued);

      if (f->op == OpClass::kLoad || f->op == OpClass::kStore) {
        // Store-to-load forwarding: a load whose 8-byte word is produced by
        // an older in-flight store bypasses the cache entirely.
        if (cfg_.enable_store_forwarding && f->op == OpClass::kLoad) {
          const std::uint64_t word = f->mem_addr & ~7ULL;
          bool forwarded = false;
          for (auto it = inflight_stores_.rbegin();
               it != inflight_stores_.rend(); ++it) {
            if (it->first >= f->seq) continue;  // younger store: no forward
            if (it->second == word) {
              forwarded = true;
              break;
            }
          }
          if (forwarded) {
            f->complete_cycle = cycle_ + 2;  // bypass latency
            pool.claim(cycle_, 1);
            f->issued = true;
            f->completed = true;
            ++iv_ls_issued_;
            --slots;
            queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(qi));
            continue;
          }
        }
        // Loads that will miss need an MSHR slot; since hit/miss is known
        // only at access time, conservatively require a free slot for loads
        // whenever the cap is reached.
        if (f->op == OpClass::kLoad && mem_->miss_ports_full()) {
          ++qi;
          continue;
        }
        const int lat = mem_->data_access(f->mem_addr, f->op == OpClass::kStore);
        if (f->op == OpClass::kLoad) {
          f->complete_cycle = cycle_ + static_cast<std::uint64_t>(lat);
          if (lat > cfg_.lat_l1d) {
            mem_->add_outstanding_miss();
            miss_fill_events_.push(f->complete_cycle);
          }
        } else {
          // Stores complete through the store queue one cycle after issue;
          // the write drains post-retirement and is not modeled for timing.
          f->complete_cycle = cycle_ + 1;
        }
        pool.claim(cycle_, 1);
      } else {
        const int lat = exec_latency(f->op);
        f->complete_cycle = cycle_ + static_cast<std::uint64_t>(lat);
        // Divides are unpipelined and occupy their unit for the full
        // latency; everything else accepts a new op next cycle.
        const bool unpipelined =
            f->op == OpClass::kIntDiv || f->op == OpClass::kFpDiv;
        pool.claim(cycle_, unpipelined ? static_cast<std::uint64_t>(lat) : 1);
      }

      f->issued = true;
      f->completed = true;  // completion time recorded in complete_cycle
      ++*pools[static_cast<std::size_t>(c)].counter;
      --slots;
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(qi));
    }
  }
}

void OooCore::do_dispatch() {
  int dispatched = 0;
  while (dispatched < cfg_.dispatch_group && !fetch_buffer_.empty()) {
    const Instruction& ins = fetch_buffer_.front();
    const IqClass iqc = iq_class_of(ins.op);
    auto& queue = issue_queues_[static_cast<std::size_t>(iqc)];

    // Structural stalls: ROB, issue queue, rename budget, memory queue.
    if (rob_.size() >= static_cast<std::size_t>(cfg_.rob_size)) break;
    if (queue.size() >= static_cast<std::size_t>(cfg_.issue_queue_per_class)) break;
    const bool produces = ins.dst != Instruction::kNoReg;
    const bool fp_dest = produces && ins.dst >= cfg_.arch_int_regs;
    if (produces && !fp_dest && int_regs_in_use_ >= cfg_.int_rename_budget()) break;
    if (produces && fp_dest && fp_regs_in_use_ >= cfg_.fp_rename_budget()) break;
    const bool is_mem = trace::is_memory(ins.op);
    if (is_mem && mem_queue_used_ >= cfg_.mem_queue) break;

    Flight f;
    f.op = ins.op;
    f.seq = next_seq_++;
    f.mem_addr = ins.mem_addr;
    auto lookup = [&](std::uint16_t reg) -> std::uint64_t {
      if (reg == Instruction::kNoReg) return kNoDep;
      RAMP_ASSERT(reg < rename_table_.size());
      return rename_table_[reg];
    };
    f.dep1 = lookup(ins.src1);
    f.dep2 = lookup(ins.src2);
    if (produces) {
      rename_table_[ins.dst] = f.seq;
      f.produces_int = !fp_dest;
      f.produces_fp = fp_dest;
      if (fp_dest) {
        ++fp_regs_in_use_;
      } else {
        ++int_regs_in_use_;
      }
    }
    if (is_mem) {
      f.in_mem_queue = true;
      ++mem_queue_used_;
      if (cfg_.enable_store_forwarding && ins.op == OpClass::kStore) {
        inflight_stores_.emplace_back(f.seq, ins.mem_addr & ~7ULL);
      }
    }

    queue.push_back(IqEntry{
        f.seq, (f.dep1 == kNoDep && f.dep2 == kNoDep) ? 0 : kReadyUnknown});
    rob_.push_back(f);
    fetch_buffer_.pop_front();
    ++dispatched;
    ++iv_dispatched_;
  }
}

void OooCore::do_fetch(trace::TraceReader& reader) {
  if (cycle_ < fetch_resume_cycle_ || stalled_on_branch_seq_ != kNoDep) return;

  int fetched = 0;
  std::uint64_t last_line = ~0ULL;
  while (fetched < cfg_.fetch_width &&
         fetch_buffer_.size() < static_cast<std::size_t>(cfg_.fetch_buffer)) {
    if (!pending_valid_) {
      if (trace_exhausted_ || !reader.next(pending_)) {
        trace_exhausted_ = true;
        return;
      }
      pending_valid_ = true;
    }

    // I-cache lookup once per new line touched by this fetch group.
    const std::uint64_t line = pending_.pc / kFetchLineBytes;
    if (line != last_line) {
      const int stall = mem_->fetch_access(pending_.pc);
      last_line = line;
      if (stall > 0) {
        // Miss: the group ends and fetch sleeps for the fill latency.
        fetch_resume_cycle_ = cycle_ + static_cast<std::uint64_t>(stall);
        return;
      }
    }

    const Instruction ins = pending_;
    pending_valid_ = false;
    fetch_buffer_.push_back(ins);
    ++fetched;
    ++iv_fetched_;

    if (ins.op == OpClass::kBranch) {
      const bool mispredict =
          predictor_->record_outcome(ins.pc, ins.branch_taken, ins.branch_target);
      if (mispredict) {
        // The redirect happens when this branch resolves; remember its
        // (future) sequence number. It is the next instruction to dispatch
        // after everything already in the buffer.
        stalled_on_branch_seq_ = next_seq_ + fetch_buffer_.size() - 1;
        return;
      }
      if (ins.branch_taken) break;  // taken branches end the fetch group
    }
  }
}

void OooCore::finish_interval() {
  const std::uint64_t cycles = cycle_ - iv_start_cycle_;
  if (cycles == 0) return;
  IntervalStats iv;
  iv.cycles = cycles;
  iv.instructions = iv_retired_;
  const auto dc = static_cast<double>(cycles);

  auto rate = [dc](std::uint64_t events, int width) {
    const double r = static_cast<double>(events) / (dc * width);
    return std::clamp(r, 0.0, 1.0);
  };
  iv.activity[idx(StructureId::kIfu)] = rate(iv_fetched_, cfg_.fetch_width);
  iv.activity[idx(StructureId::kIdu)] = rate(iv_dispatched_, cfg_.dispatch_group);
  // ISU activity: wakeup/select and completion events scale with issue
  // throughput across the whole unit pool.
  const int total_units = cfg_.int_units + cfg_.fp_units + cfg_.ls_units +
                          cfg_.br_units + cfg_.cr_units;
  iv.activity[idx(StructureId::kIsu)] = rate(
      iv_int_issued_ + iv_fp_issued_ + iv_ls_issued_ + iv_br_issued_, total_units);
  iv.activity[idx(StructureId::kFxu)] = rate(iv_int_issued_, cfg_.int_units);
  iv.activity[idx(StructureId::kFpu)] = rate(iv_fp_issued_, cfg_.fp_units);
  iv.activity[idx(StructureId::kLsu)] = rate(iv_ls_issued_, cfg_.ls_units);
  iv.activity[idx(StructureId::kBxu)] =
      rate(iv_br_issued_, cfg_.br_units + cfg_.cr_units);

  result_.intervals.push_back(iv);

  iv_start_cycle_ = cycle_;
  iv_fetched_ = iv_dispatched_ = iv_retired_ = 0;
  iv_int_issued_ = iv_fp_issued_ = iv_ls_issued_ = iv_br_issued_ = 0;
  iv_rob_occupancy_sum_ = 0;
}

void OooCore::cycle_once(trace::TraceReader& reader) {
  do_retire();
  do_complete();
  do_issue();
  do_dispatch();
  do_fetch(reader);

  iv_rob_occupancy_sum_ += rob_.size();
  ++cycle_;

  // interval_cycles_ is 0 in step-driven mode: no chopping, the iv_*
  // counters keep whole-run totals for live_counters().
  if (interval_cycles_ > 0 && cycle_ - iv_start_cycle_ >= interval_cycles_) {
    result_.totals.instructions += iv_retired_;
    finish_interval();
  }
}

bool OooCore::step(trace::TraceReader& reader) {
  cycle_once(reader);
  return !drained();
}

SimResult OooCore::run(trace::TraceReader& reader,
                       std::uint64_t interval_cycles) {
  RAMP_REQUIRE(interval_cycles > 0, "interval length must be positive");
  interval_cycles_ = interval_cycles;
  result_ = SimResult{};

  std::uint64_t last_progress_cycle = 0;
  std::uint64_t last_rob_base = rob_base_seq_;
  while (true) {
    cycle_once(reader);
    if (drained()) break;

    // Forward-progress guard: with finite latencies the ROB head must retire
    // within a bounded number of cycles; a longer stall is a model deadlock.
    if (rob_base_seq_ != last_rob_base || rob_.empty()) {
      last_rob_base = rob_base_seq_;
      last_progress_cycle = cycle_;
    }
    RAMP_ASSERT(cycle_ - last_progress_cycle < 100'000);
  }
  result_.totals.instructions += iv_retired_;
  finish_interval();

  // Whole-run aggregates.
  result_.totals.cycles = cycle_;
  result_.totals.l1d_accesses = mem_->l1d().accesses();
  result_.totals.l1d_misses = mem_->l1d().misses();
  result_.totals.l2_accesses = mem_->l2().accesses();
  result_.totals.l2_misses = mem_->l2().misses();
  result_.totals.l1i_misses = mem_->l1i().misses();
  result_.totals.branches = predictor_->lookups();
  result_.totals.branch_mispredicts = predictor_->mispredicts();

  // Cycle-weighted average activity.
  std::array<double, kNumStructures> weighted{};
  std::uint64_t total_cycles = 0;
  for (const auto& iv : result_.intervals) {
    for (int s = 0; s < kNumStructures; ++s)
      weighted[static_cast<std::size_t>(s)] +=
          iv.activity[static_cast<std::size_t>(s)] * static_cast<double>(iv.cycles);
    total_cycles += iv.cycles;
  }
  if (total_cycles > 0) {
    for (int s = 0; s < kNumStructures; ++s)
      result_.totals.avg_activity[static_cast<std::size_t>(s)] =
          weighted[static_cast<std::size_t>(s)] / static_cast<double>(total_cycles);
  }
  return std::move(result_);
}

}  // namespace ramp::sim
