#include "sim/memory_hierarchy.hpp"

#include "util/error.hpp"

namespace ramp::sim {

MemoryHierarchy::MemoryHierarchy(const CoreConfig& cfg)
    : cfg_(cfg), l1i_(cfg.l1i), l1d_(cfg.l1d), l2_(cfg.l2) {}

int MemoryHierarchy::data_access(std::uint64_t addr, bool is_write) {
  if (l1d_.access(addr, is_write)) return cfg_.lat_l1d;
  // L1D miss: look up the unified L2 (fill L1D regardless — handled by the
  // access above, which already installed the line).
  const int latency = l2_.access(addr, is_write) ? cfg_.lat_l2 : cfg_.lat_memory;
  if (cfg_.enable_nextline_prefetch) {
    // Simple sequential prefetcher: pull the next line into L1D and L2 as
    // a stats-free fill (prefetches are not demand traffic).
    const std::uint64_t next_line = addr + cfg_.l1d.line_bytes;
    if (!l1d_.probe(next_line)) {
      l1d_.fill(next_line);
      l2_.fill(next_line);
    }
  }
  return latency;
}

int MemoryHierarchy::fetch_access(std::uint64_t pc) {
  if (l1i_.access(pc, false)) return 0;
  if (l2_.access(pc, false)) return cfg_.lat_l2;
  return cfg_.lat_memory;
}

void MemoryHierarchy::retire_miss() {
  RAMP_ASSERT(outstanding_misses_ > 0);
  --outstanding_misses_;
}

}  // namespace ramp::sim
