#include "sim/cache.hpp"

#include <bit>
#include <limits>

#include "util/error.hpp"

namespace ramp::sim {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  RAMP_REQUIRE(cfg.line_bytes > 0 && std::has_single_bit(cfg.line_bytes),
               "line size must be a power of two");
  RAMP_REQUIRE(cfg.ways > 0, "cache needs at least one way");
  RAMP_REQUIRE(cfg.size_bytes % (static_cast<std::uint64_t>(cfg.line_bytes) * cfg.ways) == 0,
               "size must be a multiple of line_bytes * ways");
  sets_ = cfg.size_bytes / (static_cast<std::uint64_t>(cfg.line_bytes) * cfg.ways);
  RAMP_REQUIRE(sets_ > 0 && std::has_single_bit(sets_),
               "number of sets must be a power of two");
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(cfg.line_bytes));
  set_shift_ = static_cast<std::uint32_t>(std::countr_zero(sets_));
  lines_.assign(sets_ * cfg.ways, {});
}

std::uint64_t Cache::set_of(std::uint64_t addr) const {
  return (addr >> line_shift_) & (sets_ - 1);
}

std::uint64_t Cache::tag_of(std::uint64_t addr) const {
  return addr >> (line_shift_ + set_shift_);
}

bool Cache::access(std::uint64_t addr, bool is_write) {
  ++accesses_;
  const std::uint64_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* base = &lines_[set * cfg_.ways];

  // LRU clock overflow: renormalize all stamps (rare; 2^32 accesses).
  if (lru_clock_ == std::numeric_limits<std::uint32_t>::max()) {
    for (auto& line : lines_) line.lru = 0;
    lru_clock_ = 0;
  }
  ++lru_clock_;

  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      ++hits_;
      line.lru = lru_clock_;
      line.dirty = line.dirty || is_write;
      return true;
    }
  }

  // Miss: fill into invalid way, else evict true-LRU.
  Line* victim = base;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& line = base[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru < victim->lru) victim = &line;
  }
  if (victim->valid && victim->dirty) ++writebacks_;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = lru_clock_;
  victim->dirty = is_write;
  return false;
}

void Cache::fill(std::uint64_t addr) {
  const std::uint64_t saved_accesses = accesses_;
  const std::uint64_t saved_hits = hits_;
  access(addr, false);
  accesses_ = saved_accesses;
  hits_ = saved_hits;
}

bool Cache::probe(std::uint64_t addr) const {
  const std::uint64_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  const Line* base = &lines_[set * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void Cache::reset() {
  for (auto& line : lines_) line = Line{};
  lru_clock_ = 0;
  accesses_ = hits_ = writebacks_ = 0;
}

double Cache::miss_rate() const {
  if (accesses_ == 0) return 0.0;
  return static_cast<double>(misses()) / static_cast<double>(accesses_);
}

}  // namespace ramp::sim
