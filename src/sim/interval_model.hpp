// Analytical interval model for IPC/activity estimation.
//
// A one-pass scoreboard dataflow model: every instruction gets a
// continuous-time completion estimate from (a) a dispatch clock advancing
// 1/dispatch_group per instruction, (b) a ROB-window floor (an instruction
// cannot dispatch before instruction i-rob_size completed), (c) its
// producers' completion times through an architectural last-writer map,
// (d) per-class functional-unit contention, and (e) real event latencies —
// cache misses from its own functionally-simulated memory hierarchy,
// mispredict redirects and I-cache fills serializing the fetch clock. The
// model intentionally omits second-order structure (finite issue queues,
// MSHR caps, fetch-buffer slots); a single multiplicative factor gamma,
// calibrated per run by playing a detailed OooCore over the first
// `calibration_instructions` of the same stream, absorbs the systematic
// bias. Everything is deterministic, so results are rerun- and
// jobs-invariant.
#pragma once

#include <cstdint>

#include "sim/core_config.hpp"
#include "sim/interval_stats.hpp"
#include "sim/sim_mode.hpp"
#include "trace/instruction.hpp"

namespace ramp::sim {

/// Default calibration-prefix length; embedded in the interval-mode sim
/// stage key, so changing it re-keys cached interval-mode payloads.  Long
/// enough that the tail half of the prefix (where gamma is measured) sits
/// well past the cold-cache ramp — an 8k prefix leaves gamma contaminated
/// by cold-fill stalls and cost up to ~11% IPC error on the suite; 64k
/// brings the worst case under ±5% for ~1% extra detailed work.
inline constexpr std::uint64_t kIntervalModelCalibration = 65536;

class IntervalModel {
 public:
  explicit IntervalModel(
      const CoreConfig& cfg,
      std::uint64_t calibration_instructions = kIntervalModelCalibration);

  /// Runs `reader` to exhaustion and returns an estimated SimResult shaped
  /// like OooCore's (piecewise-constant activity over `interval_cycles`-
  /// sized intervals; exact functional cache/branch totals; estimated
  /// cycles). Throws InvalidArgument on a zero interval.
  SimResult run(trace::TraceReader& reader, std::uint64_t interval_cycles);

  /// Estimator metadata for the last run (coverage = calibrated fraction).
  const FastSimStats& fast_stats() const { return stats_; }

  const CoreConfig& config() const { return cfg_; }

 private:
  CoreConfig cfg_;
  std::uint64_t calibration_instructions_;
  FastSimStats stats_;
};

}  // namespace ramp::sim
