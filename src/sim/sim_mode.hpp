// Timing-simulation mode selection for the sim stage.
//
// The pipeline can estimate IPC and per-structure activity three ways:
//
//   detailed — the cycle-accurate OooCore (the reference; default).
//   sampled  — SMARTS-style systematic sampling (SampledCore): short
//              detailed measurement units separated by a functional
//              fast-forward that keeps caches and the branch predictor
//              warm.  Reports statistical confidence bounds.
//   interval — an analytical scoreboard/interval model (IntervalModel)
//              driven by functionally-collected miss and mispredict
//              events, calibrated against a detailed prefix of the run.
//   auto     — resolves per run: detailed for short traces (where the
//              fast paths cannot amortize their fixed cost), sampled
//              otherwise.  Never resolves to interval.
//
// Fast modes trade exactness for speed under a documented tolerance
// contract (sampled: ±2% IPC, ±0.02 absolute activity vs OooCore on the
// synthetic suite from ~1M trace instructions; interval: coarser, ±5%
// IPC; see docs/PERFORMANCE.md and `ramp simcheck`).  Because their
// results differ from detailed ones, the resolved mode and its sampling
// parameters are embedded in sim-stage cache keys and in the sweep
// config hash — a cached fast-path payload can never answer a detailed
// request.
#pragma once

#include <cstdint>
#include <string_view>

namespace ramp::sim {

enum class SimMode : std::uint8_t {
  kDetailed = 0,
  kSampled = 1,
  kInterval = 2,
  kAuto = 3,
};

/// Canonical lower-case name ("detailed" | "sampled" | "interval" | "auto").
std::string_view sim_mode_name(SimMode mode);

/// Parses a canonical mode name.  Throws InvalidArgument on anything else —
/// a misspelled --sim-mode / RAMP_SIM_MODE must fail loudly, not silently
/// fall back to detailed.
SimMode parse_sim_mode(std::string_view text);

/// Systematic-sampling parameters for SimMode::kSampled.  The cold-start
/// ramp (first ~10k instructions) runs fully detailed; after that, per
/// period of `period` instructions one measurement unit runs detailed:
/// `warmup` instructions re-establish pipeline/queue backpressure (caches
/// and the branch predictor stay warm across the fast-forward and need no
/// re-warming), then `windows` consecutive spans of `measure` instructions
/// are each timed between retirement snapshots (amortizing the warmup over
/// several regression windows), and ~ROB-size slack drains before the unit
/// is abandoned.  Everything else fast-forwards functionally.  The
/// defaults hold the ±2% IPC tolerance from ~1M trace instructions upward
/// at ~10% detailed coverage; `warmup` shorter than ~2000 instructions
/// measurably biases IPC high on backpressure-limited workloads (the MSHR
/// queue takes that long to reach equilibrium).
struct SampledParams {
  std::uint64_t period = 100'000;
  std::uint64_t warmup = 2'500;
  std::uint64_t measure = 3'500;
  std::uint64_t windows = 2;

  /// Throws InvalidArgument unless windows >= 1 and
  /// 0 < warmup + windows*measure <= period.
  void validate() const;
};

/// Estimator metadata the fast paths report alongside a SimResult.  Purely
/// observational: surfaced through obs::MetricsRegistry, never serialized
/// into stage payloads (the RunStats codec layout is frozen).
struct FastSimStats {
  SimMode mode = SimMode::kDetailed;
  /// Fraction of trace instructions simulated in detail (1.0 for detailed).
  double coverage = 1.0;
  /// Number of detailed measurement units (sampled mode; 0 otherwise).
  std::uint64_t units = 0;
  /// Relative 95% confidence half-width on IPC across units (sampled mode).
  double ipc_half_width = 0.0;
  /// Largest absolute 95% confidence half-width across per-structure
  /// activities (sampled mode).
  double activity_half_width = 0.0;
};

}  // namespace ramp::sim
