#include "sim/interval_model.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "sim/branch_predictor.hpp"
#include "sim/memory_hierarchy.hpp"
#include "sim/ooo_core.hpp"
#include "util/error.hpp"

namespace ramp::sim {

using trace::Instruction;
using trace::OpClass;

namespace {

constexpr std::uint64_t kFetchLineBytes = 64;

/// Replays a buffered instruction prefix (for the calibration run).
class VectorReader final : public trace::TraceReader {
 public:
  explicit VectorReader(const std::vector<Instruction>& v) : v_(v) {}
  bool next(Instruction& out) override {
    if (i_ >= v_.size()) return false;
    out = v_[i_++];
    return true;
  }

 private:
  const std::vector<Instruction>& v_;
  std::size_t i_ = 0;
};

/// The continuous-time scoreboard; owns its functional cache hierarchy and
/// branch predictor so event latencies reflect the real stream.
class Scoreboard {
 public:
  explicit Scoreboard(const CoreConfig& cfg)
      : cfg_(cfg),
        mem_(cfg),
        predictor_(cfg.predictor),
        reg_ready_(
            static_cast<std::size_t>(cfg.arch_int_regs + cfg.arch_fp_regs),
            0.0),
        rob_ring_(static_cast<std::size_t>(cfg.rob_size), 0.0),
        int_free_(static_cast<std::size_t>(cfg.int_units), 0.0),
        fp_free_(static_cast<std::size_t>(cfg.fp_units), 0.0),
        ls_free_(static_cast<std::size_t>(cfg.ls_units), 0.0),
        br_free_(static_cast<std::size_t>(cfg.br_units), 0.0),
        cr_free_(static_cast<std::size_t>(cfg.cr_units), 0.0) {}

  void feed(const Instruction& ins) {
    // Fetch serialization: I-cache fill once per new line.
    const std::uint64_t line = ins.pc / kFetchLineBytes;
    if (line != last_line_) {
      const int stall = mem_.fetch_access(ins.pc);
      last_line_ = line;
      if (stall > 0)
        fetch_floor_ = std::max(fetch_floor_, disp_clock_) +
                       static_cast<double>(stall);
    }

    // Dispatch time: group-width clock, fetch floor, ROB window.
    const std::size_t rob_idx = static_cast<std::size_t>(
        count_ % static_cast<std::uint64_t>(cfg_.rob_size));
    double t = std::max(disp_clock_, fetch_floor_);
    t = std::max(t, rob_ring_[rob_idx]);
    disp_clock_ = t + 1.0 / static_cast<double>(cfg_.dispatch_group);

    // Operand readiness through the last-writer map.
    double ready = t;
    if (ins.src1 != Instruction::kNoReg)
      ready = std::max(ready, reg_ready_[ins.src1]);
    if (ins.src2 != Instruction::kNoReg)
      ready = std::max(ready, reg_ready_[ins.src2]);

    // Unit contention + latency.
    double complete = 0.0;
    switch (ins.op) {
      case OpClass::kLoad: {
        const int lat = mem_.data_access(ins.mem_addr, false);
        complete = claim(ls_free_, ready, 1.0) + static_cast<double>(lat);
        ++ls_count_;
        break;
      }
      case OpClass::kStore: {
        mem_.data_access(ins.mem_addr, true);
        complete = claim(ls_free_, ready, 1.0) + 1.0;
        ++ls_count_;
        break;
      }
      case OpClass::kBranch: {
        complete = claim(br_free_, ready, 1.0) + 1.0;
        ++br_count_;
        if (predictor_.record_outcome(ins.pc, ins.branch_taken,
                                      ins.branch_target)) {
          fetch_floor_ = std::max(
              fetch_floor_,
              complete + static_cast<double>(cfg_.mispredict_penalty));
        }
        break;
      }
      case OpClass::kLogicalCr:
        complete = claim(cr_free_, ready, 1.0) + 1.0;
        ++br_count_;  // BXU covers branch + CR-logical traffic
        break;
      case OpClass::kFpAlu:
        complete = claim(fp_free_, ready, 1.0) +
                   static_cast<double>(cfg_.lat_fp);
        ++fp_count_;
        break;
      case OpClass::kFpDiv:
        // Divides are unpipelined: the unit is busy for the full latency.
        complete = claim(fp_free_, ready,
                         static_cast<double>(cfg_.lat_fp_div)) +
                   static_cast<double>(cfg_.lat_fp_div);
        ++fp_count_;
        break;
      case OpClass::kIntAlu:
        complete = claim(int_free_, ready, 1.0) +
                   static_cast<double>(cfg_.lat_int_add);
        ++int_count_;
        break;
      case OpClass::kIntMul:
        complete = claim(int_free_, ready, 1.0) +
                   static_cast<double>(cfg_.lat_int_mul);
        ++int_count_;
        break;
      case OpClass::kIntDiv:
        complete = claim(int_free_, ready,
                         static_cast<double>(cfg_.lat_int_div)) +
                   static_cast<double>(cfg_.lat_int_div);
        ++int_count_;
        break;
    }

    if (ins.dst != Instruction::kNoReg) reg_ready_[ins.dst] = complete;
    rob_ring_[rob_idx] = complete;
    t_end_ = std::max(t_end_, complete);
    ++count_;
  }

  double cycles() const { return t_end_; }
  std::uint64_t count() const { return count_; }
  std::uint64_t int_count() const { return int_count_; }
  std::uint64_t fp_count() const { return fp_count_; }
  std::uint64_t ls_count() const { return ls_count_; }
  std::uint64_t br_count() const { return br_count_; }
  const MemoryHierarchy& mem() const { return mem_; }
  const BranchPredictor& predictor() const { return predictor_; }

 private:
  /// Claims the earliest-free unit of a pool at `ready`; occupies it for
  /// `occupy` cycles and returns the start time.
  static double claim(std::vector<double>& pool, double ready, double occupy) {
    std::size_t best = 0;
    for (std::size_t u = 1; u < pool.size(); ++u)
      if (pool[u] < pool[best]) best = u;
    const double start = std::max(ready, pool[best]);
    pool[best] = start + occupy;
    return start;
  }

  CoreConfig cfg_;
  MemoryHierarchy mem_;
  BranchPredictor predictor_;
  std::vector<double> reg_ready_;
  std::vector<double> rob_ring_;
  std::vector<double> int_free_, fp_free_, ls_free_, br_free_, cr_free_;
  double disp_clock_ = 0.0;
  double fetch_floor_ = 0.0;
  double t_end_ = 0.0;
  std::uint64_t last_line_ = ~0ULL;
  std::uint64_t count_ = 0;
  std::uint64_t int_count_ = 0;
  std::uint64_t fp_count_ = 0;
  std::uint64_t ls_count_ = 0;
  std::uint64_t br_count_ = 0;
};

}  // namespace

IntervalModel::IntervalModel(const CoreConfig& cfg,
                             std::uint64_t calibration_instructions)
    : cfg_(cfg), calibration_instructions_(calibration_instructions) {
  RAMP_REQUIRE(calibration_instructions_ > 0,
               "calibration prefix must be non-empty");
}

SimResult IntervalModel::run(trace::TraceReader& reader,
                             std::uint64_t interval_cycles) {
  RAMP_REQUIRE(interval_cycles > 0, "interval length must be positive");

  stats_ = FastSimStats{};
  stats_.mode = SimMode::kInterval;

  // Buffer the calibration prefix so both the detailed reference and the
  // scoreboard see the identical instruction sequence.
  std::vector<Instruction> prefix;
  prefix.reserve(static_cast<std::size_t>(calibration_instructions_));
  {
    Instruction ins;
    while (prefix.size() < calibration_instructions_ && reader.next(ins))
      prefix.push_back(ins);
  }

  SimResult out;
  if (prefix.empty()) return out;  // empty trace

  // Detailed reference over the prefix (own cold state, like a fresh run).
  // Gamma is measured over the *tail half* of the prefix: the head is
  // dominated by the cold-cache fill, where the detailed core's stall
  // structure (MSHR saturation, serialized compulsory misses) differs from
  // steady state, so a whole-prefix ratio bakes cold-phase bias into every
  // warm instruction and systematically underestimates IPC. Both sides see
  // the identical instruction sequence, so the tail ratio isolates the
  // model's structural bias at (near-)steady state.
  const std::uint64_t half = static_cast<std::uint64_t>(prefix.size()) / 2;
  double det_half_cycles = 0.0;
  double det_full_cycles = 0.0;
  {
    VectorReader vr(prefix);
    OooCore core(cfg_);
    bool have_half = false;
    while (core.step(vr)) {
      const auto lc = core.live_counters();
      if (!have_half && half > 0 && lc.retired >= half) {
        det_half_cycles = static_cast<double>(lc.cycles);
        have_half = true;
      }
    }
    det_full_cycles = static_cast<double>(core.live_counters().cycles);
    if (!have_half) det_half_cycles = 0.0;
  }

  // Scoreboard over the prefix, then straight on through the remainder.
  Scoreboard sb(cfg_);
  double model_half_cycles = 0.0;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    sb.feed(prefix[i]);
    if (half > 0 && i + 1 == static_cast<std::size_t>(half))
      model_half_cycles = sb.cycles();
  }
  const double model_prefix_cycles = sb.cycles();
  RAMP_ASSERT(model_prefix_cycles > 0.0);
  const double det_tail = det_full_cycles - det_half_cycles;
  const double model_tail = model_prefix_cycles - model_half_cycles;
  // Degenerate prefixes (a couple of instructions) fall back to the
  // whole-prefix ratio.
  const double gamma = (det_tail > 0.0 && model_tail > 0.0)
                           ? det_tail / model_tail
                           : det_full_cycles / model_prefix_cycles;

  {
    Instruction ins;
    while (reader.next(ins)) sb.feed(ins);
  }

  const std::uint64_t n = sb.count();
  const double est_cycles = gamma * sb.cycles();
  const auto total_cycles =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::llround(est_cycles)));
  const double ipc = static_cast<double>(n) / static_cast<double>(total_cycles);

  // Whole-run activity factors: exact per-class event counts over the
  // estimated cycle count — the same events/(cycles×width) definition the
  // detailed core applies per interval.
  const double dc = static_cast<double>(total_cycles);
  auto rate = [dc](std::uint64_t events, int width) {
    const double r = static_cast<double>(events) / (dc * width);
    return std::clamp(r, 0.0, 1.0);
  };
  const int total_units = cfg_.int_units + cfg_.fp_units + cfg_.ls_units +
                          cfg_.br_units + cfg_.cr_units;
  std::array<double, kNumStructures> act{};
  act[idx(StructureId::kIfu)] = rate(n, cfg_.fetch_width);
  act[idx(StructureId::kIdu)] = rate(n, cfg_.dispatch_group);
  act[idx(StructureId::kIsu)] = rate(n, total_units);
  act[idx(StructureId::kFxu)] = rate(sb.int_count(), cfg_.int_units);
  act[idx(StructureId::kFpu)] = rate(sb.fp_count(), cfg_.fp_units);
  act[idx(StructureId::kLsu)] = rate(sb.ls_count(), cfg_.ls_units);
  act[idx(StructureId::kBxu)] =
      rate(sb.br_count(), cfg_.br_units + cfg_.cr_units);

  // Piecewise-constant interval emission.
  std::uint64_t cycles_left = total_cycles;
  std::uint64_t instr_assigned = 0;
  while (cycles_left > 0) {
    IntervalStats iv;
    iv.cycles = std::min(cycles_left, interval_cycles);
    iv.activity = act;
    if (iv.cycles == cycles_left) {
      iv.instructions = n > instr_assigned ? n - instr_assigned : 0;
    } else {
      iv.instructions = static_cast<std::uint64_t>(
          std::llround(static_cast<double>(iv.cycles) * ipc));
    }
    instr_assigned += iv.instructions;
    out.intervals.push_back(iv);
    cycles_left -= iv.cycles;
  }

  out.totals.instructions = n;
  out.totals.cycles = total_cycles;
  out.totals.avg_activity = act;
  out.totals.l1d_accesses = sb.mem().l1d().accesses();
  out.totals.l1d_misses = sb.mem().l1d().misses();
  out.totals.l2_accesses = sb.mem().l2().accesses();
  out.totals.l2_misses = sb.mem().l2().misses();
  out.totals.l1i_misses = sb.mem().l1i().misses();
  out.totals.branches = sb.predictor().lookups();
  out.totals.branch_mispredicts = sb.predictor().mispredicts();

  stats_.coverage =
      static_cast<double>(prefix.size()) / static_cast<double>(n);

  return out;
}

}  // namespace ramp::sim
