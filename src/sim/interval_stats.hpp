// Per-interval simulation statistics — the interface between the timing
// simulator and the power/thermal/reliability stages.
//
// RAMP computes instantaneous FIT values at a small time granularity (1 µs in
// the paper, §4.4) from the activity factors the timing simulator reports.
// IntervalStats carries exactly that: the per-structure activity factor p in
// [0, 1] over one interval, plus bookkeeping used by reports and tests.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/structures.hpp"

namespace ramp::sim {

/// Statistics for one fixed-length simulation interval.
struct IntervalStats {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;

  /// Activity factor per structure, in [0, 1] (utilization of the
  /// structure's bandwidth/capacity over this interval).
  std::array<double, kNumStructures> activity{};

  double ipc() const {
    return cycles ? static_cast<double>(instructions) / static_cast<double>(cycles) : 0.0;
  }
};

/// Whole-run aggregates.
struct RunStats {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t l1d_accesses = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t l2_accesses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t l1i_misses = 0;
  std::uint64_t branches = 0;
  std::uint64_t branch_mispredicts = 0;
  std::array<double, kNumStructures> avg_activity{};

  double ipc() const {
    return cycles ? static_cast<double>(instructions) / static_cast<double>(cycles) : 0.0;
  }
  double l1d_miss_rate() const {
    return l1d_accesses ? static_cast<double>(l1d_misses) / static_cast<double>(l1d_accesses) : 0.0;
  }
  double branch_mispredict_rate() const {
    return branches ? static_cast<double>(branch_mispredicts) / static_cast<double>(branches) : 0.0;
  }
};

/// Result of one simulation run.
struct SimResult {
  std::vector<IntervalStats> intervals;
  RunStats totals;
};

}  // namespace ramp::sim
