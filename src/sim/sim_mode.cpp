#include "sim/sim_mode.hpp"

#include <string>

#include "util/error.hpp"

namespace ramp::sim {

std::string_view sim_mode_name(SimMode mode) {
  switch (mode) {
    case SimMode::kDetailed:
      return "detailed";
    case SimMode::kSampled:
      return "sampled";
    case SimMode::kInterval:
      return "interval";
    case SimMode::kAuto:
      return "auto";
  }
  throw InternalError("unknown SimMode value");
}

SimMode parse_sim_mode(std::string_view text) {
  if (text == "detailed") return SimMode::kDetailed;
  if (text == "sampled") return SimMode::kSampled;
  if (text == "interval") return SimMode::kInterval;
  if (text == "auto") return SimMode::kAuto;
  throw InvalidArgument("invalid sim mode '" + std::string(text) +
                        "' (expected detailed|sampled|interval|auto)");
}

void SampledParams::validate() const {
  RAMP_REQUIRE(warmup > 0, "sampled warmup must be positive");
  RAMP_REQUIRE(measure > 0, "sampled measure must be positive");
  RAMP_REQUIRE(windows > 0, "sampled windows must be positive");
  RAMP_REQUIRE(warmup + windows * measure <= period,
               "sampled warmup + windows*measure must not exceed the "
               "sampling period");
}

}  // namespace ramp::sim
