// Set-associative cache model with true-LRU replacement.
//
// Tag-array-only (no data) model: access() reports hit/miss and performs the
// fill, which is all a trace-driven timing simulator needs. Used for L1I,
// L1D, and the unified L2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ramp::sim {

struct CacheConfig {
  std::string name = "cache";
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 2;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// Looks `addr` up; on miss, fills the line (evicting LRU). Returns hit.
  /// `is_write` only affects the dirty bit (reported via writebacks()).
  bool access(std::uint64_t addr, bool is_write = false);

  /// Hit check without any state change; used by tests.
  bool probe(std::uint64_t addr) const;

  /// Installs the line containing `addr` without touching hit/miss
  /// statistics — the path prefetch fills take (they are not demand
  /// traffic). A line already present is just LRU-refreshed.
  void fill(std::uint64_t addr);

  /// Invalidates everything and zeroes statistics.
  void reset();

  const CacheConfig& config() const { return cfg_; }
  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return accesses_ - hits_; }
  std::uint64_t writebacks() const { return writebacks_; }
  double miss_rate() const;

  std::uint64_t num_sets() const { return sets_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint32_t lru = 0;  ///< higher = more recently used
    bool valid = false;
    bool dirty = false;
  };

  std::uint64_t set_of(std::uint64_t addr) const;
  std::uint64_t tag_of(std::uint64_t addr) const;

  CacheConfig cfg_;
  std::uint64_t sets_ = 0;
  // line_bytes and sets_ are enforced powers of two, so the per-access
  // set/tag math runs as shifts instead of 64-bit divisions (access() sits
  // on the hot path of every simulated load, store, and fetch).
  std::uint32_t line_shift_ = 0;
  std::uint32_t set_shift_ = 0;
  std::uint32_t lru_clock_ = 0;
  std::vector<Line> lines_;  ///< sets_ * ways, set-major
  std::uint64_t accesses_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t writebacks_ = 0;
};

}  // namespace ramp::sim
