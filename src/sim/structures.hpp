// Microarchitectural structures of the modeled POWER4-like core.
//
// RAMP evaluates reliability at microarchitectural-structure granularity
// (paper §2). Following §4.3, we combine the core into 7 distinct structures
// whose activity the simulator tracks, whose power the power model computes,
// and whose temperature HotSpot-style blocks carry. The names mirror the
// POWER4 unit taxonomy.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace ramp::sim {

/// The 7 combined structures of the modeled core (§4.3).
enum class StructureId : std::uint8_t {
  kIfu,  ///< instruction fetch: I-cache, fetch logic, branch predictor
  kIdu,  ///< decode, crack/group formation, rename
  kIsu,  ///< instruction sequencing: issue queues, ROB/completion table
  kFxu,  ///< fixed-point units + integer register file
  kFpu,  ///< floating-point units + FP register file
  kLsu,  ///< load/store units, L1 D-cache, memory (load/store) queue
  kBxu,  ///< branch execution + CR logical unit
};

inline constexpr int kNumStructures = 7;

inline constexpr std::array<StructureId, kNumStructures> kAllStructures = {
    StructureId::kIfu, StructureId::kIdu, StructureId::kIsu,
    StructureId::kFxu, StructureId::kFpu, StructureId::kLsu,
    StructureId::kBxu};

/// Display name, e.g. "FXU".
std::string_view structure_name(StructureId s);

/// Fraction of the 81 mm^2 core area occupied by each structure. The
/// fractions sum to 1 and approximate the POWER4 core floorplan (LSU with
/// its L1D largest, FPU next, BXU smallest).
double structure_area_fraction(StructureId s);

/// Convenience index for arrays sized kNumStructures.
constexpr std::size_t idx(StructureId s) { return static_cast<std::size_t>(s); }

}  // namespace ramp::sim
