#include "sim/sampled_core.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "sim/branch_predictor.hpp"
#include "sim/memory_hierarchy.hpp"
#include "sim/ooo_core.hpp"
#include "util/error.hpp"

namespace ramp::sim {

using trace::Instruction;
using trace::OpClass;

namespace {

constexpr std::uint64_t kFetchLineBytes = 64;

/// Instructions at the start of the run simulated fully detailed.  The
/// cold-start ramp (cache and predictor fill) is a distinct regime where
/// miss costs overlap heavily; simulating it exactly is far cheaper than
/// modelling it.
constexpr std::uint64_t kDetailedPrefix = 10'000;

/// Ridge weight (in squared proxy cycles) pulling the regression's
/// event-cost coefficient toward 1 when the steady-state windows carry too
/// few events to identify it.  Sparse events do not overlap, so unit cost
/// is the right prior; event-dense workloads override it easily.
constexpr double kRidgeLambda = 1e5;

/// Caps how many instructions an inner reader hands out; the remainder
/// stays unread (the fast-forward picks it up). Lets a measurement-unit
/// core read ahead only as far as the unit allows.
class BoundedReader final : public trace::TraceReader {
 public:
  BoundedReader(trace::TraceReader& inner, std::uint64_t limit)
      : inner_(inner), remaining_(limit) {}

  bool next(Instruction& out) override {
    if (remaining_ == 0) return false;
    if (!inner_.next(out)) {
      inner_exhausted_ = true;
      return false;
    }
    --remaining_;
    ++consumed_;
    return true;
  }

  std::uint64_t consumed() const { return consumed_; }
  bool inner_exhausted() const { return inner_exhausted_; }

 private:
  trace::TraceReader& inner_;
  std::uint64_t remaining_;
  std::uint64_t consumed_ = 0;
  bool inner_exhausted_ = false;
};

double mean_of(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double x : xs) sum += x;
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

/// 95% confidence half-width (normal approximation) of the mean of `xs`.
double half_width(const std::vector<double>& xs) {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double m = mean_of(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  const double sd = std::sqrt(ss / static_cast<double>(n - 1));
  return 1.96 * sd / std::sqrt(static_cast<double>(n));
}

}  // namespace

SampledCore::SampledCore(const CoreConfig& cfg, const SampledParams& params)
    : cfg_(cfg), params_(params) {
  params_.validate();
}

SimResult SampledCore::run(trace::TraceReader& reader,
                           std::uint64_t interval_cycles) {
  RAMP_REQUIRE(interval_cycles > 0, "interval length must be positive");

  // Long-lived microarchitectural state, shared by the detailed prefix,
  // every measurement unit, and the fast-forward in between.
  MemoryHierarchy mem(cfg_);
  BranchPredictor predictor(cfg_.predictor);

  SimResult out;
  stats_ = FastSimStats{};
  stats_.mode = SimMode::kSampled;

  // The unit core may read ahead of the measurement window by its in-flight
  // capacity; cap its consumption so the leftover stays for fast-forward.
  const std::uint64_t slack =
      static_cast<std::uint64_t>(cfg_.rob_size) +
      static_cast<std::uint64_t>(cfg_.fetch_buffer);
  const std::uint64_t measure_target =
      params_.warmup + params_.windows * params_.measure;
  const std::uint64_t unit_cap = measure_target + slack;

  std::uint64_t consumed = 0;           // total trace instructions drawn
  std::uint64_t detailed_consumed = 0;  // drawn by prefix + units

  // Event counters on the shared predictor/hierarchy; deltas between
  // snapshots give exact per-window and per-period event counts.  The
  // event-cost coefficients are nominal serialized penalties; the
  // regression's event_scale rescales them per workload, so only their
  // relative weights matter.
  const double c_mp = static_cast<double>(cfg_.mispredict_penalty);
  const double c_l1i = static_cast<double>(cfg_.lat_l2);
  const double c_l1d = 0.5 * static_cast<double>(cfg_.lat_l2);
  const double c_l2 = 0.5 * static_cast<double>(cfg_.lat_memory);
  struct Events {
    std::uint64_t mp = 0, l1i = 0, l1d = 0, l2 = 0;
  };
  const auto snap_events = [&] {
    return Events{predictor.mispredicts(), mem.l1i().misses(),
                  mem.l1d().misses(), mem.l2().misses()};
  };
  const auto event_cost = [&](const Events& a, const Events& b) {
    return static_cast<double>(b.mp - a.mp) * c_mp +
           static_cast<double>(b.l1i - a.l1i) * c_l1i +
           static_cast<double>(b.l1d - a.l1d) * c_l1d +
           static_cast<double>(b.l2 - a.l2) * c_l2;
  };

  // One record per prefix/period: span, cycle information, and exact
  // per-structure event counts for activity.  `exact_cycles > 0` marks the
  // detailed prefix, whose cycles need no estimation.
  struct PeriodRecord {
    std::uint64_t instructions = 0;
    double exact_cycles = 0.0;
    double event_cycles = 0.0;  // nominal event cost over the whole span
    double fetched = 0.0, dispatched = 0.0, issued = 0.0;
    double fxu = 0.0, fpu = 0.0, lsu = 0.0, bxu = 0.0;
  };
  std::vector<PeriodRecord> periods;

  const auto record_core_counters = [](PeriodRecord& rec,
                                       const OooCore::LiveCounters& lc) {
    rec.fetched += static_cast<double>(lc.fetched);
    rec.dispatched += static_cast<double>(lc.dispatched);
    rec.issued += static_cast<double>(lc.int_issued + lc.fp_issued +
                                      lc.ls_issued + lc.br_issued);
    rec.fxu += static_cast<double>(lc.int_issued);
    rec.fpu += static_cast<double>(lc.fp_issued);
    rec.lsu += static_cast<double>(lc.ls_issued);
    rec.bxu += static_cast<double>(lc.br_issued);
  };

  bool exhausted = false;

  // --- detailed prefix: the cold-start ramp, simulated exactly ---
  {
    const Events ev0 = snap_events();
    BoundedReader prefix_reader(reader, kDetailedPrefix);
    OooCore core(cfg_, &mem, &predictor);
    while (core.step(prefix_reader)) {
    }
    mem.clear_outstanding_misses();
    const auto lc = core.live_counters();
    consumed += prefix_reader.consumed();
    detailed_consumed += prefix_reader.consumed();
    if (prefix_reader.inner_exhausted()) exhausted = true;
    PeriodRecord rec;
    rec.instructions = prefix_reader.consumed();
    rec.exact_cycles = static_cast<double>(lc.cycles);
    rec.event_cycles = event_cost(ev0, snap_events());
    record_core_counters(rec, lc);
    if (rec.instructions > 0) periods.push_back(rec);
  }

  // Steady-state regression rows: per measurement window, cycles observed
  // detailed vs instructions retired and nominal event cost over the same
  // span.  Fitting cycles = base_cpi*instr + event_scale*events across
  // windows separates the workload's intrinsic per-instruction cost
  // (dependency stalls, issue contention) from its event costs; per-period
  // event deltas then place the estimated cycles where the events actually
  // happened, so phase shifts land in the right intervals.
  struct WindowRow {
    double instr = 0.0, cycles = 0.0, events = 0.0;
  };
  std::vector<WindowRow> windows;

  while (!exhausted) {
    const Events period_ev0 = snap_events();

    // --- detailed measurement unit: warmup, then `windows` consecutive
    // measurement windows bounded by retirement snapshots ---
    BoundedReader unit_reader(reader, unit_cap);
    OooCore core(cfg_, &mem, &predictor);
    OooCore::LiveCounters prev{};
    Events prev_ev = period_ev0;
    // Snapshot marks: warmup (opens the first window), then one per window.
    std::uint64_t next_mark = params_.warmup;
    std::uint64_t marks_done = 0;
    const std::uint64_t total_marks = params_.windows + 1;
    // Forward-progress guard, mirroring OooCore's deadlock bound.
    const std::uint64_t cycle_guard = 200'000 + 100 * unit_cap;
    while (marks_done < total_marks && core.step(unit_reader)) {
      const auto lc = core.live_counters();
      while (marks_done < total_marks && lc.retired >= next_mark) {
        const Events ev = snap_events();
        if (marks_done > 0 && lc.cycles > prev.cycles &&
            lc.retired > prev.retired) {
          windows.push_back(
              WindowRow{static_cast<double>(lc.retired - prev.retired),
                        static_cast<double>(lc.cycles - prev.cycles),
                        event_cost(prev_ev, ev)});
        }
        prev = lc;
        prev_ev = ev;
        ++marks_done;
        next_mark += params_.measure;
      }
      RAMP_ASSERT(lc.cycles < cycle_guard);
    }
    if (marks_done < total_marks) {
      // Trace ended inside the unit (the machine has fully drained): close
      // one last window over whatever retired since the previous mark — or
      // over the whole unit if even the warmup never completed.
      const auto lc = core.live_counters();
      const Events ev = snap_events();
      if (lc.cycles > prev.cycles && lc.retired > prev.retired) {
        windows.push_back(
            WindowRow{static_cast<double>(lc.retired - prev.retired),
                      static_cast<double>(lc.cycles - prev.cycles),
                      event_cost(prev_ev, ev)});
      }
    }
    // The unit core dies here with its in-flight loads; their fill events
    // die with it, so release the MSHR slots they held in the shared
    // hierarchy.
    mem.clear_outstanding_misses();

    const std::uint64_t unit_consumed = unit_reader.consumed();
    consumed += unit_consumed;
    detailed_consumed += unit_consumed;
    if (unit_reader.inner_exhausted()) exhausted = true;
    if (unit_consumed == 0 && !exhausted) {
      break;  // nothing left in the trace at all
    }

    // Per-period structure events. The unit core's counters at teardown
    // cover its consumed instructions (minus the handful still in flight);
    // fast-forwarded instructions are classified directly below.
    PeriodRecord rec;
    record_core_counters(rec, core.live_counters());

    // --- functional fast-forward to the next unit ---
    std::uint64_t ff_done = 0;
    if (!exhausted && params_.period > unit_consumed) {
      const std::uint64_t ff_target = params_.period - unit_consumed;
      std::uint64_t last_line = ~0ULL;
      Instruction ins;
      while (ff_done < ff_target) {
        if (!reader.next_functional(ins)) {
          exhausted = true;
          break;
        }
        ++ff_done;
        const std::uint64_t line = ins.pc / kFetchLineBytes;
        if (line != last_line) {
          mem.fetch_access(ins.pc);
          last_line = line;
        }
        switch (ins.op) {
          case OpClass::kBranch:
            predictor.record_outcome(ins.pc, ins.branch_taken,
                                     ins.branch_target);
            rec.bxu += 1.0;
            break;
          case OpClass::kLogicalCr:
            rec.bxu += 1.0;
            break;
          case OpClass::kLoad:
            mem.data_access(ins.mem_addr, false);
            rec.lsu += 1.0;
            break;
          case OpClass::kStore:
            mem.data_access(ins.mem_addr, true);
            rec.lsu += 1.0;
            break;
          case OpClass::kFpAlu:
          case OpClass::kFpDiv:
            rec.fpu += 1.0;
            break;
          case OpClass::kIntAlu:
          case OpClass::kIntMul:
          case OpClass::kIntDiv:
            rec.fxu += 1.0;
            break;
        }
      }
      consumed += ff_done;
      const auto dff = static_cast<double>(ff_done);
      rec.fetched += dff;
      rec.dispatched += dff;
      rec.issued += dff;
    }

    rec.instructions = unit_consumed + ff_done;
    rec.event_cycles = event_cost(period_ev0, snap_events());
    if (rec.instructions > 0) periods.push_back(rec);
  }

  // Fit cycles = base_cpi*instr + event_scale*events over the windows,
  // ridge-regularized toward event_scale = 1 (serialized event cost) so
  // sparse-event workloads stay well-posed.  Closed form from the 2x2
  // normal equations of the penalized least-squares problem.
  double s_ii = 0.0, s_ie = 0.0, s_ee = 0.0, s_ic = 0.0, s_ec = 0.0;
  for (const WindowRow& w : windows) {
    s_ii += w.instr * w.instr;
    s_ie += w.instr * w.events;
    s_ee += w.events * w.events;
    s_ic += w.instr * w.cycles;
    s_ec += w.events * w.cycles;
  }
  double base_cpi = 1.0 / static_cast<double>(cfg_.dispatch_group);
  double event_scale = 1.0;
  const double denom = s_ii * (s_ee + kRidgeLambda) - s_ie * s_ie;
  if (s_ii > 0.0 && denom > 0.0) {
    base_cpi =
        (s_ic * (s_ee + kRidgeLambda) - (s_ec + kRidgeLambda) * s_ie) / denom;
    event_scale = ((s_ec + kRidgeLambda) * s_ii - s_ic * s_ie) / denom;
  }
  if (event_scale < 0.0) {
    event_scale = 0.0;
    base_cpi = s_ii > 0.0 ? s_ic / s_ii
                          : 1.0 / static_cast<double>(cfg_.dispatch_group);
  }
  if (base_cpi < 0.0) {
    base_cpi = 0.0;
    event_scale = s_ee > 0.0 ? s_ec / s_ee : 1.0;
  }

  // Interval emission: the prefix contributes its exact cycles; each steady
  // period contributes base_cpi*instr + event_scale*events.  The open
  // interval blends contributions by cycle weight until interval_cycles is
  // reached, mirroring how the detailed core chops its run into intervals.
  double est_cycles_total = 0.0;
  double open_cycles = 0.0;
  double open_instr = 0.0;
  std::array<double, kNumStructures> open_weighted{};
  std::uint64_t instr_assigned = 0;

  auto emit_period = [&](double period_cycles, double ipc,
                         const std::array<double, kNumStructures>& act) {
    est_cycles_total += period_cycles;
    double left = period_cycles;
    while (left > 0.0) {
      const double room = static_cast<double>(interval_cycles) - open_cycles;
      const double take = std::min(left, room);
      for (int s = 0; s < kNumStructures; ++s)
        open_weighted[static_cast<std::size_t>(s)] +=
            act[static_cast<std::size_t>(s)] * take;
      open_cycles += take;
      open_instr += take * ipc;
      left -= take;
      if (open_cycles >= static_cast<double>(interval_cycles)) {
        IntervalStats iv;
        iv.cycles = interval_cycles;
        iv.instructions = static_cast<std::uint64_t>(std::llround(open_instr));
        for (int s = 0; s < kNumStructures; ++s)
          iv.activity[static_cast<std::size_t>(s)] = std::clamp(
              open_weighted[static_cast<std::size_t>(s)] / open_cycles, 0.0,
              1.0);
        out.intervals.push_back(iv);
        instr_assigned += iv.instructions;
        open_cycles = 0.0;
        open_instr = 0.0;
        open_weighted.fill(0.0);
      }
    }
  };

  const int total_units = cfg_.int_units + cfg_.fp_units + cfg_.ls_units +
                          cfg_.br_units + cfg_.cr_units;
  for (const PeriodRecord& rec : periods) {
    const double cycles_k =
        rec.exact_cycles > 0.0
            ? rec.exact_cycles
            : base_cpi * static_cast<double>(rec.instructions) +
                  event_scale * rec.event_cycles;
    if (cycles_k <= 0.0) continue;
    const double ipc_k = static_cast<double>(rec.instructions) / cycles_k;
    auto rate = [cycles_k](double events, int width) {
      return std::clamp(events / (cycles_k * width), 0.0, 1.0);
    };
    std::array<double, kNumStructures> act{};
    act[idx(StructureId::kIfu)] = rate(rec.fetched, cfg_.fetch_width);
    act[idx(StructureId::kIdu)] = rate(rec.dispatched, cfg_.dispatch_group);
    act[idx(StructureId::kIsu)] = rate(rec.issued, total_units);
    act[idx(StructureId::kFxu)] = rate(rec.fxu, cfg_.int_units);
    act[idx(StructureId::kFpu)] = rate(rec.fpu, cfg_.fp_units);
    act[idx(StructureId::kLsu)] = rate(rec.lsu, cfg_.ls_units);
    act[idx(StructureId::kBxu)] = rate(rec.bxu, cfg_.br_units + cfg_.cr_units);
    emit_period(cycles_k, ipc_k, act);
  }

  // Final partial interval (mirrors OooCore's trailing finish_interval).
  const auto tail_cycles =
      static_cast<std::uint64_t>(std::llround(open_cycles));
  if (tail_cycles > 0) {
    IntervalStats iv;
    iv.cycles = tail_cycles;
    iv.instructions =
        consumed > instr_assigned ? consumed - instr_assigned : 0;
    for (int s = 0; s < kNumStructures; ++s)
      iv.activity[static_cast<std::size_t>(s)] = std::clamp(
          open_weighted[static_cast<std::size_t>(s)] / open_cycles, 0.0, 1.0);
    out.intervals.push_back(iv);
  }

  // Whole-run aggregates. Instruction/cache/branch counts are exact
  // full-stream functional totals; cycles (hence IPC) are the estimate.
  out.totals.instructions = consumed;
  out.totals.cycles =
      static_cast<std::uint64_t>(std::llround(est_cycles_total));
  out.totals.l1d_accesses = mem.l1d().accesses();
  out.totals.l1d_misses = mem.l1d().misses();
  out.totals.l2_accesses = mem.l2().accesses();
  out.totals.l2_misses = mem.l2().misses();
  out.totals.l1i_misses = mem.l1i().misses();
  out.totals.branches = predictor.lookups();
  out.totals.branch_mispredicts = predictor.mispredicts();

  // Cycle-weighted average activity over the emitted intervals, exactly as
  // the detailed core computes it.
  std::array<double, kNumStructures> weighted{};
  std::uint64_t total_cycles = 0;
  for (const auto& iv : out.intervals) {
    for (int s = 0; s < kNumStructures; ++s)
      weighted[static_cast<std::size_t>(s)] +=
          iv.activity[static_cast<std::size_t>(s)] *
          static_cast<double>(iv.cycles);
    total_cycles += iv.cycles;
  }
  if (total_cycles > 0) {
    for (int s = 0; s < kNumStructures; ++s)
      out.totals.avg_activity[static_cast<std::size_t>(s)] =
          weighted[static_cast<std::size_t>(s)] /
          static_cast<double>(total_cycles);
  }

  // Estimator metadata: coverage + cross-window confidence.  Each window's
  // observed-over-fitted cycle ratio is an independent draw around 1; the
  // spread of those ratios bounds the cycle (hence IPC) estimate, and
  // activity scales the same way, quoted at the largest structure activity.
  std::vector<double> ratios;
  ratios.reserve(windows.size());
  for (const WindowRow& w : windows) {
    const double fitted = base_cpi * w.instr + event_scale * w.events;
    if (fitted > 0.0) ratios.push_back(w.cycles / fitted);
  }
  stats_.units = windows.size();
  stats_.coverage = consumed > 0 ? static_cast<double>(detailed_consumed) /
                                       static_cast<double>(consumed)
                                 : 1.0;
  const double mean_ratio = mean_of(ratios);
  const double rel_hw =
      mean_ratio > 0.0 ? half_width(ratios) / mean_ratio : 0.0;
  stats_.ipc_half_width = rel_hw;
  double max_act = 0.0;
  for (int s = 0; s < kNumStructures; ++s)
    max_act = std::max(max_act,
                       out.totals.avg_activity[static_cast<std::size_t>(s)]);
  stats_.activity_half_width = rel_hw * max_act;

  return out;
}

}  // namespace ramp::sim
