// Configuration of the modeled POWER4-like core (paper Table 2) and its
// derivation for scaled technology nodes.
//
// The study remaps one fixed microarchitecture across technology points
// (§1.3), so every pipeline parameter is constant across nodes; only clock
// frequency changes. On-chip cache latencies are pipeline stages and scale
// with the clock, but main-memory latency is fixed in nanoseconds, so its
// cycle count grows at faster clocks — the classic memory-wall effect a real
// remap would see.
#pragma once

#include <cstdint>

#include "scaling/technology.hpp"
#include "sim/branch_predictor.hpp"
#include "sim/cache.hpp"

namespace ramp::sim {

struct CoreConfig {
  // --- pipeline widths (Table 2) ---
  int fetch_width = 8;          ///< instructions fetched per cycle
  int dispatch_group = 5;       ///< max instructions per dispatch group
  int retire_groups = 1;        ///< dispatch-groups retired per cycle

  // --- functional units (Table 2) ---
  int int_units = 2;
  int fp_units = 2;
  int ls_units = 2;
  int br_units = 1;
  int cr_units = 1;  ///< logical condition-register unit (LCR)

  // --- execution latencies in cycles (Table 2) ---
  int lat_int_add = 1;
  int lat_int_mul = 7;
  int lat_int_div = 35;
  int lat_fp = 4;
  int lat_fp_div = 12;

  // --- window/queue sizes (Table 2) ---
  int rob_size = 150;
  int int_regs = 120;           ///< physical integer registers
  int fp_regs = 96;             ///< physical FP registers
  int mem_queue = 32;           ///< load/store queue entries
  int issue_queue_per_class = 24;  ///< entries per issue queue
  int fetch_buffer = 32;

  // --- memory hierarchy (Table 2) ---
  CacheConfig l1i{.name = "L1I", .size_bytes = 32 * 1024, .line_bytes = 64, .ways = 2};
  CacheConfig l1d{.name = "L1D", .size_bytes = 32 * 1024, .line_bytes = 64, .ways = 2};
  CacheConfig l2{.name = "L2", .size_bytes = 2 * 1024 * 1024, .line_bytes = 128, .ways = 8};
  int lat_l1d = 2;    ///< load-to-use on L1D hit
  int lat_l2 = 20;    ///< L1 miss, L2 hit
  int lat_memory = 102;  ///< L2 miss, at the 1.1 GHz base clock
  int max_outstanding_misses = 8;  ///< MSHR-style limit on L2/memory misses

  // --- control flow ---
  BranchPredictorConfig predictor{};
  int mispredict_penalty = 12;  ///< redirect cycles on a branch mispredict

  // --- optional microarchitecture features (ablation knobs) ---
  // Both default OFF: the base machine is calibrated against the paper's
  // Table 3 without them; bench_microarch_ablation quantifies their effect.
  bool enable_store_forwarding = false;  ///< loads hit in-flight older stores
  bool enable_nextline_prefetch = false; ///< L1D miss also fills line+1

  // --- clocking ---
  double frequency_hz = 1.1e9;

  /// Architectural register count assumed by the trace format; physical
  /// registers beyond these are the rename budget.
  int arch_int_regs = 32;
  int arch_fp_regs = 32;

  /// Rename budget = physical minus architectural registers.
  int int_rename_budget() const { return int_regs - arch_int_regs; }
  int fp_rename_budget() const { return fp_regs - arch_fp_regs; }
};

/// The base 180 nm configuration of Table 2.
CoreConfig base_core_config();

/// The same microarchitecture remapped to `tech`: clock retargeted, on-chip
/// latencies unchanged in cycles, main-memory latency held constant in ns
/// (so its cycle count scales with frequency).
CoreConfig core_config_for(const scaling::TechnologyNode& tech);

}  // namespace ramp::sim
