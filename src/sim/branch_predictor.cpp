#include "sim/branch_predictor.hpp"

#include <bit>

#include "util/error.hpp"

namespace ramp::sim {

BranchPredictor::BranchPredictor(const BranchPredictorConfig& cfg) : cfg_(cfg) {
  RAMP_REQUIRE(cfg.local_bits > 0 && cfg.local_bits <= 20,
               "local_bits must lie in [1, 20]");
  RAMP_REQUIRE(cfg.history_bits > 0 && cfg.history_bits <= 20,
               "history_bits must lie in [1, 20]");
  RAMP_REQUIRE(cfg.selector_bits > 0 && cfg.selector_bits <= 20,
               "selector_bits must lie in [1, 20]");
  RAMP_REQUIRE(cfg.btb_entries > 0 &&
                   std::has_single_bit(static_cast<unsigned>(cfg.btb_entries)),
               "btb_entries must be a power of two");
  local_.assign(std::size_t{1} << cfg.local_bits, 2);      // weakly taken
  global_.assign(std::size_t{1} << cfg.history_bits, 2);   // weakly taken
  selector_.assign(std::size_t{1} << cfg.selector_bits, 1);  // weakly local
  btb_.assign(static_cast<std::size_t>(cfg.btb_entries), {});
  history_mask_ = (std::uint64_t{1} << cfg.history_bits) - 1;
}

std::size_t BranchPredictor::local_index(std::uint64_t pc) const {
  return static_cast<std::size_t>((pc >> 2) & ((std::uint64_t{1} << cfg_.local_bits) - 1));
}

std::size_t BranchPredictor::global_index(std::uint64_t pc) const {
  return static_cast<std::size_t>(((pc >> 2) ^ history_) & history_mask_);
}

std::size_t BranchPredictor::selector_index(std::uint64_t pc) const {
  return static_cast<std::size_t>((pc >> 2) &
                                  ((std::uint64_t{1} << cfg_.selector_bits) - 1));
}

std::size_t BranchPredictor::btb_index(std::uint64_t pc) const {
  return static_cast<std::size_t>((pc >> 2) &
                                  (static_cast<std::uint64_t>(cfg_.btb_entries) - 1));
}

bool BranchPredictor::local_taken(std::uint64_t pc) const {
  return local_[local_index(pc)] >= 2;
}

bool BranchPredictor::global_taken(std::uint64_t pc) const {
  return global_[global_index(pc)] >= 2;
}

void BranchPredictor::bump(std::uint8_t& ctr, bool up) {
  if (up) {
    if (ctr < 3) ++ctr;
  } else {
    if (ctr > 0) --ctr;
  }
}

BranchPredictor::Prediction BranchPredictor::predict(std::uint64_t pc) const {
  Prediction p;
  const bool use_global = selector_[selector_index(pc)] >= 2;
  p.taken = use_global ? global_taken(pc) : local_taken(pc);
  const BtbEntry& e = btb_[btb_index(pc)];
  if (e.valid && e.tag == pc) p.target = e.target;
  return p;
}

bool BranchPredictor::mispredicted(std::uint64_t pc, bool taken,
                                   std::uint64_t target) const {
  const Prediction p = predict(pc);
  if (p.taken != taken) return true;
  // Direction correct; a taken branch additionally needs the right target.
  return taken && p.target != target;
}

void BranchPredictor::update(std::uint64_t pc, bool taken,
                             std::uint64_t target) {
  const bool local_right = local_taken(pc) == taken;
  const bool global_right = global_taken(pc) == taken;
  // The selector only learns when the component predictors disagree.
  if (local_right != global_right) {
    bump(selector_[selector_index(pc)], global_right);
  }
  bump(local_[local_index(pc)], taken);
  bump(global_[global_index(pc)], taken);
  if (taken) {
    BtbEntry& e = btb_[btb_index(pc)];
    e.valid = true;
    e.tag = pc;
    e.target = target;
  }
  history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
}

bool BranchPredictor::record_outcome(std::uint64_t pc, bool taken,
                                     std::uint64_t target) {
  const bool miss = mispredicted(pc, taken, target);
  ++lookups_;
  if (miss) ++mispredicts_;
  update(pc, taken, target);
  return miss;
}

double BranchPredictor::mispredict_rate() const {
  if (lookups_ == 0) return 0.0;
  return static_cast<double>(mispredicts_) / static_cast<double>(lookups_);
}

}  // namespace ramp::sim
