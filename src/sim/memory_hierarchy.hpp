// Memory hierarchy timing: L1I / L1D / unified L2 / main memory.
//
// Wraps the tag-array Cache models with the latency assignment of Table 2
// and an MSHR-style cap on outstanding L1D misses. The core asks for the
// completion latency of an access; the hierarchy updates cache state and
// returns cycles.
#pragma once

#include <cstdint>

#include "sim/cache.hpp"
#include "sim/core_config.hpp"

namespace ramp::sim {

class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const CoreConfig& cfg);

  /// Data access for a load or store: returns load-to-use latency in cycles.
  /// Stores get the same lookup (write-allocate) but the core retires them
  /// through the store queue without waiting on the returned latency.
  /// With next-line prefetching enabled, a demand miss also installs the
  /// sequentially next line (timing-free fill, the usual simple model).
  int data_access(std::uint64_t addr, bool is_write);

  /// Instruction fetch of the line containing `pc`: returns extra stall
  /// cycles (0 on an L1I hit).
  int fetch_access(std::uint64_t pc);

  /// True while the number of in-flight L1D misses is at the MSHR cap; the
  /// core must stall load issue until `retire_miss` frees a slot.
  bool miss_ports_full() const { return outstanding_misses_ >= cfg_.max_outstanding_misses; }

  /// Registers an in-flight miss (called when data_access reported a miss).
  void add_outstanding_miss() { ++outstanding_misses_; }

  /// Releases a miss slot when its fill completes.
  void retire_miss();

  /// Drops all in-flight miss bookkeeping. SampledCore abandons a
  /// measurement unit's outstanding fills when the unit's core is torn
  /// down (the fill events die with it), so the shared hierarchy must not
  /// keep their MSHR slots occupied.
  void clear_outstanding_misses() { outstanding_misses_ = 0; }

  const Cache& l1i() const { return l1i_; }
  const Cache& l1d() const { return l1d_; }
  const Cache& l2() const { return l2_; }

  int outstanding_misses() const { return outstanding_misses_; }

 private:
  CoreConfig cfg_;
  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  int outstanding_misses_ = 0;
};

}  // namespace ramp::sim
