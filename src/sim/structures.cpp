#include "sim/structures.hpp"

#include "util/error.hpp"

namespace ramp::sim {

std::string_view structure_name(StructureId s) {
  switch (s) {
    case StructureId::kIfu: return "IFU";
    case StructureId::kIdu: return "IDU";
    case StructureId::kIsu: return "ISU";
    case StructureId::kFxu: return "FXU";
    case StructureId::kFpu: return "FPU";
    case StructureId::kLsu: return "LSU";
    case StructureId::kBxu: return "BXU";
  }
  throw InvalidArgument("unknown structure id");
}

double structure_area_fraction(StructureId s) {
  // Approximate POWER4 single-core floorplan shares; sums to 1.0.
  switch (s) {
    case StructureId::kIfu: return 0.14;
    case StructureId::kIdu: return 0.09;
    case StructureId::kIsu: return 0.13;
    case StructureId::kFxu: return 0.13;
    case StructureId::kFpu: return 0.16;
    case StructureId::kLsu: return 0.28;
    case StructureId::kBxu: return 0.07;
  }
  throw InvalidArgument("unknown structure id");
}

}  // namespace ramp::sim
