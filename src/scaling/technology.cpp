#include "scaling/technology.hpp"

#include "util/error.hpp"

namespace ramp::scaling {

double TechnologyNode::dynamic_power_scale(const TechnologyNode& base) const {
  const double self = relative_capacitance * vdd * vdd * frequency_hz;
  const double ref = base.relative_capacitance * base.vdd * base.vdd * base.frequency_hz;
  return self / ref;
}

const std::vector<TechnologyNode>& standard_nodes() {
  // Table 4 of the paper. Cumulative linear scale: 0.7 per generation to
  // 90 nm, then 0.8 to 65 nm (§4.6). tox converted from Å to nm.
  // Interconnect current density drops 33% per generation until 90 nm and is
  // then held flat. Leakage densities assume aggressive leakage control.
  static const std::vector<TechnologyNode> kNodes = {
      {TechPoint::k180nm, "180nm", 180.0, 1.3, 1.1e9, 1.0, 1.0, 2.5, 9.0, 0.040,
       1.0},
      {TechPoint::k130nm, "130nm", 130.0, 1.1, 1.35e9, 0.7, 0.5, 1.7, 6.0, 0.10,
       0.7},
      {TechPoint::k90nm, "90nm", 90.0, 1.0, 1.65e9, 0.49, 0.25, 1.2, 4.0, 0.25,
       0.49},
      {TechPoint::k65nm_0V9, "65nm (0.9V)", 65.0, 0.9, 2.0e9, 0.4, 0.16, 0.9,
       4.0, 0.54, 0.392},
      {TechPoint::k65nm_1V0, "65nm (1.0V)", 65.0, 1.0, 2.0e9, 0.4, 0.16, 0.9,
       4.0, 0.60, 0.392},
  };
  return kNodes;
}

const TechnologyNode& node(TechPoint p) {
  for (const auto& n : standard_nodes()) {
    if (n.point == p) return n;
  }
  throw InvalidArgument("unknown technology point");
}

const TechnologyNode& base_node() { return node(TechPoint::k180nm); }

std::string_view tech_name(TechPoint p) { return node(p).name; }

std::string_view tech_token(TechPoint p) {
  switch (p) {
    case TechPoint::k180nm: return "180";
    case TechPoint::k130nm: return "130";
    case TechPoint::k90nm: return "90";
    case TechPoint::k65nm_0V9: return "65-0.9";
    case TechPoint::k65nm_1V0: return "65-1.0";
  }
  throw InvalidArgument("unknown technology point");
}

TechPoint parse_tech(const std::string& name) {
  for (const auto p : kAllTechPoints) {
    if (name == tech_token(p) || name == tech_name(p)) return p;
  }
  if (name == "65") return TechPoint::k65nm_1V0;
  throw InvalidArgument("unknown node '" + name +
                        "' (use 180, 130, 90, 65-0.9, 65-1.0)");
}

}  // namespace ramp::scaling
