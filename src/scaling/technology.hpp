// Technology-node parameter tables (paper Table 4 and §4.6).
//
// The paper studies one POWER4-like microarchitecture progressively remapped
// across five technology points: 180 nm, 130 nm, 90 nm, 65 nm at 0.9 V, and
// 65 nm at 1.0 V. All scaling is expressed relative to the calibrated 180 nm
// base. A scaling factor of 0.7 per generation is assumed down to 90 nm and
// 0.8 from 90 nm to 65 nm (§4.6).
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

namespace ramp::scaling {

/// Identifies one of the five technology points in the study.
enum class TechPoint {
  k180nm,
  k130nm,
  k90nm,
  k65nm_0V9,  ///< 65 nm assuming voltage scales to 0.9 V
  k65nm_1V0,  ///< 65 nm held at 1.0 V (the paper's "more realistic" point)
};

/// All five points in the order the paper reports them.
inline constexpr std::array<TechPoint, 5> kAllTechPoints = {
    TechPoint::k180nm, TechPoint::k130nm, TechPoint::k90nm,
    TechPoint::k65nm_0V9, TechPoint::k65nm_1V0};

/// One row of Table 4 plus the derived quantities §3 needs.
struct TechnologyNode {
  TechPoint point;
  std::string name;          ///< e.g. "65nm (1.0V)"
  double feature_nm;         ///< drawn feature size
  double vdd;                ///< supply voltage (V)
  double frequency_hz;       ///< nominal clock
  double relative_capacitance;  ///< switched capacitance relative to 180 nm
  double relative_area;      ///< die area relative to 180 nm
  double tox_nm;             ///< gate oxide thickness (nm; Table 4 lists Å)
  double jmax_ma_per_um2;    ///< max allowed interconnect current density
  double leakage_w_per_mm2_at_383k;  ///< leakage power density at 383 K
  double linear_scale;       ///< cumulative linear feature scale vs 180 nm

  /// Relative interconnect cross-section w·h versus 180 nm; §3 shows
  /// MTTF_EM scales with w·h, both of which shrink with the linear scale.
  double em_wh_relative() const { return linear_scale * linear_scale; }

  /// Core area in mm² given the 180 nm core area (81 mm², Table 2).
  double core_area_mm2(double base_area_mm2) const {
    return base_area_mm2 * relative_area;
  }

  /// Dynamic-power scale factor vs 180 nm at equal activity:
  /// P_dyn ∝ C · V² · f.
  double dynamic_power_scale(const TechnologyNode& base) const;

  /// Cycle time in seconds.
  double cycle_time_s() const { return 1.0 / frequency_hz; }
};

/// The five-row Table 4 with the paper's published values.
const std::vector<TechnologyNode>& standard_nodes();

/// Looks up one node; throws InvalidArgument for an unknown point.
const TechnologyNode& node(TechPoint p);

/// The calibrated 180 nm base node.
const TechnologyNode& base_node();

/// Short display name ("180nm", "65nm (0.9V)", ...).
std::string_view tech_name(TechPoint p);

/// Canonical machine token ("180", "130", "90", "65-0.9", "65-1.0") — the
/// spelling the CLI and the serve request codec use.
std::string_view tech_token(TechPoint p);

/// Inverse of tech_token (also accepts tech_name spellings and "65" for
/// the 1.0 V point); throws InvalidArgument for anything else.
TechPoint parse_tech(const std::string& name);

}  // namespace ramp::scaling
