// FIT accumulation over an application run: SOFR combination plus the
// running time-average of instantaneous failure rates (paper §2, §4.4).
//
// The SOFR (sum-of-failure-rates) model makes the processor a series
// failure system with exponentially distributed lifetimes, so
//   FIT_processor = Σ_structures Σ_mechanisms FIT(structure, mechanism),
// and temporal variation is handled by averaging the instantaneous FIT over
// the run. FitTracker maintains those time-weighted averages per
// (structure, mechanism) plus the package-level TC term, and records the
// maximum temperature/activity seen — the inputs of the paper's worst-case
// ("max") analysis.
#pragma once

#include <array>

#include "core/mechanisms.hpp"
#include "core/ramp_model.hpp"
#include "sim/structures.hpp"
#include "util/stats.hpp"

namespace ramp::core {

/// Average FIT per mechanism plus the totals of a completed run.
struct FitSummary {
  /// Time-averaged FIT by [structure][mechanism]; TC column is zero (it is
  /// package-level and appears in `tc_fit`).
  std::array<std::array<double, kNumMechanisms>, sim::kNumStructures>
      by_structure{};
  double tc_fit = 0.0;  ///< package thermal-cycling FIT

  /// Per-mechanism totals over all structures (TC slot = tc_fit).
  std::array<double, kNumMechanisms> by_mechanism() const;

  /// Processor FIT under SOFR: sum over structures and mechanisms.
  double total() const;

  /// MTTF in years implied by total().
  double mttf_years() const;
};

class FitTracker {
 public:
  explicit FitTracker(const RampModel& model);

  /// Accounts one interval of `duration_s` seconds during which structure
  /// temperatures `temp_k`, activities `activity`, and supply voltage
  /// `voltage` were (piecewise) constant.
  void add_interval(const std::array<double, sim::kNumStructures>& temp_k,
                    const std::array<double, sim::kNumStructures>& activity,
                    double voltage, double duration_s);

  /// Time-averaged summary of everything accumulated so far.
  FitSummary summary() const;

  /// Highest structure temperature seen in any interval (K).
  double max_temperature() const { return max_temp_; }
  /// Highest per-structure activity factor seen in any interval.
  double max_activity() const { return max_activity_; }
  /// Time-averaged area-weighted die temperature (drives TC).
  double avg_die_temperature() const { return avg_die_temp_.mean(); }
  double total_time() const { return total_time_; }

 private:
  const RampModel& model_;
  std::array<std::array<TimeWeightedMean, kNumMechanisms>, sim::kNumStructures>
      means_{};
  TimeWeightedMean tc_mean_;
  TimeWeightedMean avg_die_temp_;
  double max_temp_ = 0.0;
  double max_activity_ = 0.0;
  double total_time_ = 0.0;
  /// Per-structure exact-bits memo of the FIT kernel's exp/pow subterms
  /// (plus one package-level slot for TC). Owned here, not by the model, so
  /// a RampModel shared across threads stays race-free.
  std::array<FitMemo, sim::kNumStructures> memos_{};
  FitMemo tc_memo_{};
};

/// Evaluates the steady-state FIT summary for fixed operating conditions —
/// the paper's worst-case ("max") analysis, where the highest temperature
/// and activity seen across applications are assumed for the entire run.
FitSummary steady_state_summary(const RampModel& model,
                                double temperature_k, double activity,
                                double voltage);

}  // namespace ramp::core
