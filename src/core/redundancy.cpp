#include "core/redundancy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/constants.hpp"
#include "util/error.hpp"

namespace ramp::core {

SparePlan SparePlan::uniform(int n) {
  RAMP_REQUIRE(n >= 0, "spare counts must be non-negative");
  SparePlan plan;
  plan.spares.fill(n);
  return plan;
}

int SparePlan::total() const {
  int t = 0;
  for (int n : spares) {
    RAMP_REQUIRE(n >= 0, "spare counts must be non-negative");
    t += n;
  }
  return t;
}

double SparePlan::area_overhead() const {
  double overhead = 0.0;
  for (int s = 0; s < sim::kNumStructures; ++s) {
    overhead += spares[static_cast<std::size_t>(s)] *
                sim::structure_area_fraction(static_cast<sim::StructureId>(s));
  }
  return overhead;
}

RedundantLifetimeMonteCarlo::RedundantLifetimeMonteCarlo(
    const FitSummary& fits, const SparePlan& plan,
    const LifetimeModelConfig& cfg)
    : plan_(plan) {
  double total_fit = 0.0;
  bool any = false;
  for (int s = 0; s < sim::kNumStructures; ++s) {
    for (int m = 0; m < kNumMechanisms; ++m) {
      const double fit =
          fits.by_structure[static_cast<std::size_t>(s)][static_cast<std::size_t>(m)];
      if (fit <= 0.0) continue;
      total_fit += fit;
      any = true;
      structure_dists_[static_cast<std::size_t>(s)][static_cast<std::size_t>(m)] =
          make_lifetime(cfg.family, mttf_years_from_fit(fit),
                        cfg.shape[static_cast<std::size_t>(m)]);
    }
  }
  if (fits.tc_fit > 0.0) {
    total_fit += fits.tc_fit;
    any = true;
    package_tc_ = make_lifetime(
        cfg.family, mttf_years_from_fit(fits.tc_fit),
        cfg.shape[static_cast<std::size_t>(Mechanism::kTc)]);
  }
  RAMP_REQUIRE(any, "need at least one non-zero failure instance");
  sofr_years_ = mttf_years_from_fit(total_fit);
  (void)plan_.total();  // validates non-negative counts
}

double RedundantLifetimeMonteCarlo::sample_structure_instance(
    std::size_t s, Xoshiro256& rng) const {
  double first = std::numeric_limits<double>::infinity();
  for (const auto& dist : structure_dists_[s]) {
    if (dist) first = std::min(first, dist->sample(rng));
  }
  return first;
}

LifetimeEstimate RedundantLifetimeMonteCarlo::estimate(
    std::uint64_t samples, std::uint64_t seed) const {
  RAMP_REQUIRE(samples > 0, "need at least one sample");
  std::vector<double> lifetimes;
  lifetimes.reserve(samples);

  // Per-sample SplitMix64 substreams, mirroring LifetimeMonteCarlo: draw k
  // is a pure function of (seed, k) regardless of spare counts or sample
  // totals.
  Xoshiro256 rng;
  for (std::uint64_t k = 0; k < samples; ++k) {
    rng.reseed(stream_seed(seed, k));
    double chip = std::numeric_limits<double>::infinity();
    for (int s = 0; s < sim::kNumStructures; ++s) {
      const auto si = static_cast<std::size_t>(s);
      bool has_any = false;
      for (const auto& dist : structure_dists_[si]) {
        if (dist) has_any = true;
      }
      if (!has_any) continue;
      // Primary + spares: cold spares accrue wear only once activated, so
      // the structure's death time is the SUM of successive instance
      // lifetimes.
      double structure_death = 0.0;
      for (int inst = 0; inst <= plan_.spares[si]; ++inst) {
        structure_death += sample_structure_instance(si, rng);
      }
      chip = std::min(chip, structure_death);
    }
    if (package_tc_) chip = std::min(chip, package_tc_->sample(rng));
    lifetimes.push_back(chip);
  }
  std::sort(lifetimes.begin(), lifetimes.end());

  LifetimeEstimate est;
  est.samples = samples;
  est.sofr_years = sofr_years_;
  double sum = 0.0;
  for (double t : lifetimes) sum += t;
  est.mean_years = sum / static_cast<double>(samples);
  auto quantile = [&](double q) {
    return lifetimes[static_cast<std::size_t>(
        q * static_cast<double>(lifetimes.size() - 1))];
  };
  est.median_years = quantile(0.5);
  est.p05_years = quantile(0.05);
  est.p95_years = quantile(0.95);
  return est;
}

}  // namespace ramp::core
