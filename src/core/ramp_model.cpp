#include "core/ramp_model.hpp"

#include "util/error.hpp"

namespace ramp::core {

double MechanismConstants::get(Mechanism m) const {
  switch (m) {
    case Mechanism::kEm: return em;
    case Mechanism::kSm: return sm;
    case Mechanism::kTddb: return tddb;
    case Mechanism::kTc: return tc;
  }
  throw InvalidArgument("unknown mechanism");
}

void MechanismConstants::set(Mechanism m, double value) {
  RAMP_REQUIRE(value >= 0.0, "proportionality constants must be non-negative");
  switch (m) {
    case Mechanism::kEm: em = value; return;
    case Mechanism::kSm: sm = value; return;
    case Mechanism::kTddb: tddb = value; return;
    case Mechanism::kTc: tc = value; return;
  }
  throw InvalidArgument("unknown mechanism");
}

RampModel::RampModel(const scaling::TechnologyNode& tech,
                     const MechanismConstants& constants,
                     const TddbModel& tddb)
    : tech_(tech), constants_(constants), tddb_(tddb) {}

double RampModel::em_fit(sim::StructureId s, const OperatingPoint& op) const {
  RAMP_REQUIRE(op.activity >= 0.0 && op.activity <= 1.0,
               "activity factor must lie in [0, 1]");
  const double j = op.activity * tech_.jmax_ma_per_um2;
  const double weight = sim::structure_area_fraction(s);
  return constants_.em * weight *
         em_.raw_fit(j, op.temperature_k, tech_.em_wh_relative());
}

double RampModel::sm_fit(sim::StructureId s, const OperatingPoint& op) const {
  const double weight = sim::structure_area_fraction(s);
  return constants_.sm * weight * sm_.raw_fit(op.temperature_k);
}

double RampModel::tddb_fit(sim::StructureId s, const OperatingPoint& op) const {
  // Relative gate-oxide area = structure share × die-area scaling.
  const double area_rel = sim::structure_area_fraction(s) * tech_.relative_area;
  return constants_.tddb *
         tddb_.raw_fit(op.voltage, op.temperature_k, tech_.tox_nm, area_rel);
}

double RampModel::tc_fit(double avg_die_temperature_k) const {
  return constants_.tc * tc_.raw_fit(avg_die_temperature_k);
}

std::array<double, kNumMechanisms> RampModel::structure_fits(
    sim::StructureId s, const OperatingPoint& op) const {
  std::array<double, kNumMechanisms> fits{};
  fits[static_cast<std::size_t>(Mechanism::kEm)] = em_fit(s, op);
  fits[static_cast<std::size_t>(Mechanism::kSm)] = sm_fit(s, op);
  fits[static_cast<std::size_t>(Mechanism::kTddb)] = tddb_fit(s, op);
  fits[static_cast<std::size_t>(Mechanism::kTc)] = 0.0;  // package-level
  return fits;
}

}  // namespace ramp::core
