#include "core/ramp_model.hpp"

#include "util/error.hpp"

namespace ramp::core {

double MechanismConstants::get(Mechanism m) const {
  switch (m) {
    case Mechanism::kEm: return em;
    case Mechanism::kSm: return sm;
    case Mechanism::kTddb: return tddb;
    case Mechanism::kTc: return tc;
  }
  throw InvalidArgument("unknown mechanism");
}

void MechanismConstants::set(Mechanism m, double value) {
  RAMP_REQUIRE(value >= 0.0, "proportionality constants must be non-negative");
  switch (m) {
    case Mechanism::kEm: em = value; return;
    case Mechanism::kSm: sm = value; return;
    case Mechanism::kTddb: tddb = value; return;
    case Mechanism::kTc: tc = value; return;
  }
  throw InvalidArgument("unknown mechanism");
}

RampModel::RampModel(const scaling::TechnologyNode& tech,
                     const MechanismConstants& constants,
                     const TddbModel& tddb)
    : tech_(tech), constants_(constants), tddb_(tddb) {
  // Hoist every run-invariant factor of the per-interval FIT kernel. The
  // operand order of each product matches the memo-less evaluation paths
  // exactly, so the hot path reproduces their bits. The oxide term is only
  // computed for a valid tox (the fast path re-validates per call, matching
  // raw_fit's contract of throwing at evaluation time, not construction).
  em_wh_relative_ = tech_.em_wh_relative();
  const double oxide =
      tech_.tox_nm > 0.0 ? tddb_.oxide_term(tech_.tox_nm) : 0.0;
  for (const auto s : sim::kAllStructures) {
    StructureBases& b = per_structure_[static_cast<std::size_t>(s)];
    b.weight = sim::structure_area_fraction(s);
    b.em_scale = constants_.em * b.weight;
    b.sm_scale = constants_.sm * b.weight;
    b.area_rel = b.weight * tech_.relative_area;
    b.tddb_base = b.area_rel * oxide;
  }
}

double RampModel::em_fit(sim::StructureId s, const OperatingPoint& op) const {
  RAMP_REQUIRE(op.activity >= 0.0 && op.activity <= 1.0,
               "activity factor must lie in [0, 1]");
  const double j = op.activity * tech_.jmax_ma_per_um2;
  const double weight = sim::structure_area_fraction(s);
  return constants_.em * weight *
         em_.raw_fit(j, op.temperature_k, tech_.em_wh_relative());
}

double RampModel::sm_fit(sim::StructureId s, const OperatingPoint& op) const {
  const double weight = sim::structure_area_fraction(s);
  return constants_.sm * weight * sm_.raw_fit(op.temperature_k);
}

double RampModel::tddb_fit(sim::StructureId s, const OperatingPoint& op) const {
  // Relative gate-oxide area = structure share × die-area scaling.
  const double area_rel = sim::structure_area_fraction(s) * tech_.relative_area;
  return constants_.tddb *
         tddb_.raw_fit(op.voltage, op.temperature_k, tech_.tox_nm, area_rel);
}

double RampModel::tc_fit(double avg_die_temperature_k) const {
  return constants_.tc * tc_.raw_fit(avg_die_temperature_k);
}

double RampModel::em_fit(sim::StructureId s, const OperatingPoint& op,
                         FitMemo& memo) const {
  RAMP_REQUIRE(op.activity >= 0.0 && op.activity <= 1.0,
               "activity factor must lie in [0, 1]");
  // Same checks, in the same order, as raw_fit on the memo-less path.
  check_model_temperature(op.temperature_k);
  const double j = op.activity * tech_.jmax_ma_per_um2;
  RAMP_REQUIRE(j >= 0.0, "current density must be non-negative");
  RAMP_REQUIRE(em_wh_relative_ > 0.0,
               "interconnect cross-section must be positive");
  const StructureBases& b = per_structure_[static_cast<std::size_t>(s)];
  if (j == 0.0) return b.em_scale * 0.0;  // no current flow, no migration
  if (j != memo.em_j) {
    memo.em_pow = em_.current_term(j);
    memo.em_j = j;
  }
  if (op.temperature_k != memo.em_t) {
    memo.em_exp = em_.arrhenius(op.temperature_k);
    memo.em_t = op.temperature_k;
  }
  return b.em_scale * (memo.em_pow * memo.em_exp / em_wh_relative_);
}

double RampModel::sm_fit(sim::StructureId s, const OperatingPoint& op,
                         FitMemo& memo) const {
  if (op.temperature_k != memo.sm_t) {
    memo.sm_raw = sm_.raw_fit(op.temperature_k);  // validates the temperature
    memo.sm_t = op.temperature_k;
  }
  return per_structure_[static_cast<std::size_t>(s)].sm_scale * memo.sm_raw;
}

double RampModel::tddb_fit(sim::StructureId s, const OperatingPoint& op,
                           FitMemo& memo) const {
  check_model_temperature(op.temperature_k);
  RAMP_REQUIRE(op.voltage > 0.0, "voltage must be positive");
  RAMP_REQUIRE(tech_.tox_nm > 0.0, "oxide thickness must be positive");
  const StructureBases& b = per_structure_[static_cast<std::size_t>(s)];
  RAMP_REQUIRE(b.area_rel > 0.0, "gate-oxide area must be positive");
  if (op.voltage != memo.tddb_v || op.temperature_k != memo.tddb_vt) {
    memo.tddb_vterm = tddb_.voltage_term(op.voltage, op.temperature_k);
    memo.tddb_v = op.voltage;
    memo.tddb_vt = op.temperature_k;
  }
  if (op.temperature_k != memo.tddb_t) {
    memo.tddb_field = tddb_.field_term(op.temperature_k);
    memo.tddb_t = op.temperature_k;
  }
  return constants_.tddb * (b.tddb_base * memo.tddb_vterm * memo.tddb_field);
}

double RampModel::tc_fit(double avg_die_temperature_k, FitMemo& memo) const {
  if (avg_die_temperature_k != memo.tc_t) {
    memo.tc_raw = tc_.raw_fit(avg_die_temperature_k);
    memo.tc_t = avg_die_temperature_k;
  }
  return constants_.tc * memo.tc_raw;
}

std::array<double, kNumMechanisms> RampModel::structure_fits(
    sim::StructureId s, const OperatingPoint& op) const {
  std::array<double, kNumMechanisms> fits{};
  fits[static_cast<std::size_t>(Mechanism::kEm)] = em_fit(s, op);
  fits[static_cast<std::size_t>(Mechanism::kSm)] = sm_fit(s, op);
  fits[static_cast<std::size_t>(Mechanism::kTddb)] = tddb_fit(s, op);
  fits[static_cast<std::size_t>(Mechanism::kTc)] = 0.0;  // package-level
  return fits;
}

std::array<double, kNumMechanisms> RampModel::structure_fits(
    sim::StructureId s, const OperatingPoint& op, FitMemo& memo) const {
  std::array<double, kNumMechanisms> fits{};
  fits[static_cast<std::size_t>(Mechanism::kEm)] = em_fit(s, op, memo);
  fits[static_cast<std::size_t>(Mechanism::kSm)] = sm_fit(s, op, memo);
  fits[static_cast<std::size_t>(Mechanism::kTddb)] = tddb_fit(s, op, memo);
  fits[static_cast<std::size_t>(Mechanism::kTc)] = 0.0;  // package-level
  return fits;
}

}  // namespace ramp::core
