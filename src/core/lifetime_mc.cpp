#include "core/lifetime_mc.hpp"

#include <algorithm>
#include <cmath>

#include "util/constants.hpp"
#include "util/error.hpp"

namespace ramp::core {

LifetimeMonteCarlo::LifetimeMonteCarlo(const FitSummary& fits,
                                       const LifetimeModelConfig& cfg) {
  double total_fit = 0.0;
  auto add_instance = [&](double fit, Mechanism m) {
    if (fit <= 0.0) return;
    total_fit += fit;
    const double mttf_years = mttf_years_from_fit(fit);
    instances_.push_back(make_lifetime(
        cfg.family, mttf_years, cfg.shape[static_cast<std::size_t>(m)]));
  };

  for (const auto& row : fits.by_structure) {
    for (int m = 0; m < kNumMechanisms; ++m) {
      add_instance(row[static_cast<std::size_t>(m)], static_cast<Mechanism>(m));
    }
  }
  add_instance(fits.tc_fit, Mechanism::kTc);

  RAMP_REQUIRE(!instances_.empty(),
               "Monte Carlo needs at least one non-zero failure instance");
  sofr_years_ = mttf_years_from_fit(total_fit);
}

LifetimeEstimate LifetimeMonteCarlo::estimate(std::uint64_t samples,
                                              std::uint64_t seed) const {
  RAMP_REQUIRE(samples > 0, "need at least one sample");
  std::vector<double> lifetimes;
  lifetimes.reserve(samples);
  // One SplitMix64 substream per sample: sample s depends only on (seed, s),
  // never on how many draws earlier samples consumed, so the same master
  // seed governs any sample count (and any future sharding) reproducibly.
  Xoshiro256 rng;
  for (std::uint64_t s = 0; s < samples; ++s) {
    rng.reseed(stream_seed(seed, s));
    double first_failure = std::numeric_limits<double>::infinity();
    for (const auto& inst : instances_) {
      first_failure = std::min(first_failure, inst->sample(rng));
    }
    lifetimes.push_back(first_failure);
  }
  std::sort(lifetimes.begin(), lifetimes.end());

  LifetimeEstimate est;
  est.samples = samples;
  est.sofr_years = sofr_years_;
  double sum = 0.0;
  for (double t : lifetimes) sum += t;
  est.mean_years = sum / static_cast<double>(samples);
  auto quantile = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(lifetimes.size() - 1));
    return lifetimes[idx];
  };
  est.median_years = quantile(0.5);
  est.p05_years = quantile(0.05);
  est.p95_years = quantile(0.95);
  return est;
}

double LifetimeMonteCarlo::survival(double t_years) const {
  double s = 1.0;
  for (const auto& inst : instances_) {
    s *= 1.0 - inst->cdf(t_years);
  }
  return s;
}

}  // namespace ramp::core
