// Lifetime distributions beyond SOFR's exponential assumption.
//
// The SOFR model (paper §2) assumes every failure mechanism has a constant
// failure rate — an exponential lifetime — and the paper itself calls this
// "clearly inaccurate: a typical wear-out failure mechanism will have a low
// failure rate at the beginning of the component's lifetime and the value
// will grow as the component ages", kept only "for lack of better validated
// models". This extension module provides the standard wear-out
// alternatives (Weibull and lognormal, the distributions used by the
// follow-up RAMP 2.0 line of work) parameterized to match a given MTTF, so
// the Monte Carlo engine (lifetime_mc.hpp) can quantify how much SOFR
// misestimates the processor lifetime for the same per-(structure,
// mechanism) MTTFs.
#pragma once

#include <memory>
#include <string_view>

#include "util/rng.hpp"

namespace ramp::core {

/// A parametric lifetime distribution with a known mean (MTTF).
class LifetimeDistribution {
 public:
  virtual ~LifetimeDistribution() = default;

  /// Mean time to failure (same time unit the caller chose).
  virtual double mttf() const = 0;

  /// Draws one failure time.
  virtual double sample(Xoshiro256& rng) const = 0;

  /// P(lifetime <= t).
  virtual double cdf(double t) const = 0;

  /// Display name ("exponential", "weibull", "lognormal").
  virtual std::string_view name() const = 0;

  LifetimeDistribution() = default;
  LifetimeDistribution(const LifetimeDistribution&) = delete;
  LifetimeDistribution& operator=(const LifetimeDistribution&) = delete;
};

/// Exponential lifetime — SOFR's constant-failure-rate assumption.
class ExponentialLifetime final : public LifetimeDistribution {
 public:
  /// mttf must be positive.
  explicit ExponentialLifetime(double mttf);
  double mttf() const override { return mttf_; }
  double sample(Xoshiro256& rng) const override;
  double cdf(double t) const override;
  std::string_view name() const override { return "exponential"; }

 private:
  double mttf_;
};

/// Weibull lifetime with shape beta. beta > 1 models wear-out (failure rate
/// grows with age); beta = 1 degenerates to exponential. The scale is
/// derived from the requested MTTF: eta = MTTF / Gamma(1 + 1/beta).
class WeibullLifetime final : public LifetimeDistribution {
 public:
  /// mttf and beta must be positive.
  WeibullLifetime(double mttf, double beta);
  double mttf() const override { return mttf_; }
  double sample(Xoshiro256& rng) const override;
  double cdf(double t) const override;
  std::string_view name() const override { return "weibull"; }

  double beta() const { return beta_; }
  double eta() const { return eta_; }

 private:
  double mttf_;
  double beta_;
  double eta_;
};

/// Lognormal lifetime with log-space standard deviation sigma; the
/// log-space mean is derived from the requested MTTF:
/// mu = ln(MTTF) − sigma²/2.
class LognormalLifetime final : public LifetimeDistribution {
 public:
  /// mttf and sigma must be positive.
  LognormalLifetime(double mttf, double sigma);
  double mttf() const override { return mttf_; }
  double sample(Xoshiro256& rng) const override;
  double cdf(double t) const override;
  std::string_view name() const override { return "lognormal"; }

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mttf_;
  double mu_;
  double sigma_;
};

/// Distribution family selector for the Monte Carlo engine.
enum class LifetimeFamily { kExponential, kWeibull, kLognormal };
std::string_view family_name(LifetimeFamily f);

/// Factory: a distribution of `family` with the given MTTF. `shape` is the
/// Weibull beta or the lognormal sigma (ignored for exponential).
std::unique_ptr<LifetimeDistribution> make_lifetime(LifetimeFamily family,
                                                    double mttf,
                                                    double shape);

}  // namespace ramp::core
