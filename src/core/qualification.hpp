// Reliability qualification (paper §4.4).
//
// Processors are qualified for ≈30-year MTTF, i.e. a total of ≈4000 FIT;
// the paper assumes each of the four mechanisms contributes equally at
// qualification, so the proportionality constants are chosen to make the
// *suite-average* FIT of each mechanism 1000 at the 180 nm base point. The
// same constants are then reused at every scaled node, which is what turns
// raw model outputs into the paper's absolute FIT curves.
#pragma once

#include <array>
#include <vector>

#include "core/fit_tracker.hpp"
#include "core/ramp_model.hpp"

namespace ramp::core {

struct QualificationTarget {
  double fit_per_mechanism = 1000.0;  ///< 4 × 1000 = 4000 FIT ≈ 30 y MTTF
};

/// Computes the per-mechanism proportionality constants from per-application
/// *raw* summaries (produced with MechanismConstants{1,1,1,1} at the base
/// technology node). Throws InvalidArgument when a mechanism's raw average
/// is zero (cannot be normalized).
MechanismConstants qualify(const std::vector<FitSummary>& raw_per_app,
                           const QualificationTarget& target = {});

}  // namespace ramp::core
