// Small-thermal-cycle damage estimation via rainflow counting.
//
// The paper models only *large* thermal cycles (power on/off) because "the
// effect of small thermal cycles has not been well studied and validated
// models are not available" (§2). This extension implements the standard
// engineering approach the follow-up literature adopted: extract closed
// temperature cycles from the transient trace with the rainflow (ASTM
// E1049) algorithm, then accumulate Coffin-Manson damage per cycle —
// damage ∝ N · ΔT^q — normalized so results are comparable to the
// large-cycle TC FIT values. It is deliberately separate from the validated
// TC model (tc_model stays package-level, large-cycle only); benches and
// examples use it to ask "would small cycles change the paper's ranking?".
#pragma once

#include <cstdint>
#include <vector>

namespace ramp::core {

/// One closed cycle extracted by the rainflow algorithm.
struct RainflowCycle {
  double range = 0.0;   ///< peak-to-trough temperature delta (K)
  double mean = 0.0;    ///< cycle mean temperature (K)
  double count = 1.0;   ///< 1.0 for closed cycles, 0.5 for residual halves
};

/// Extracts rainflow cycles from a temperature signal. Intermediate
/// non-extremum samples are ignored (the algorithm operates on the
/// turning-point sequence). Residual half-cycles are reported with
/// count = 0.5.
std::vector<RainflowCycle> rainflow_count(const std::vector<double>& signal);

/// Coffin-Manson damage accumulator over rainflow cycles.
///
/// Damage of one cycle of range ΔT is (ΔT / ref_range)^q; total damage is
/// the count-weighted sum. With ref_range equal to the large power-off
/// cycle (T_avg − T_ambient), a total damage of D over an interval says the
/// small cycles age the package D times as fast as one large cycle would.
class SmallCycleDamage {
 public:
  /// q is the Coffin-Manson exponent (2.35 for the modeled package);
  /// ref_range_kelvin must be positive; ranges below `threshold_kelvin`
  /// are ignored (sensor/solver noise floor).
  SmallCycleDamage(double q, double ref_range_kelvin,
                   double threshold_kelvin = 0.01);

  /// Adds all cycles of a signal; returns damage added.
  double add_signal(const std::vector<double>& temperatures);

  /// Damage accumulated so far (in equivalent large cycles).
  double total_damage() const { return damage_; }

  /// Number of (full-equivalent) cycles counted so far.
  double cycles_counted() const { return cycles_; }

 private:
  double q_;
  double ref_range_;
  double threshold_;
  double damage_ = 0.0;
  double cycles_ = 0.0;
};

}  // namespace ramp::core
