// The four intrinsic hard-failure mechanism models of RAMP (paper §2–§3).
//
// Each model computes an *unnormalized* instantaneous failure rate
// ("raw FIT", the reciprocal of the MTTF expression with proportionality
// constant 1). Absolute FIT values are obtained by multiplying with the
// per-mechanism proportionality constants produced by reliability
// qualification (src/core/qualification.hpp), exactly as §4.4 prescribes.
//
// Sign conventions: MTTF expressions from the paper are inverted, so every
// beneficial term appears with the opposite exponent here (e.g. FIT_EM ∝
// J^n e^{-Ea/kT}).
#pragma once

#include <string_view>

namespace ramp::core {

/// The four modeled failure mechanisms.
enum class Mechanism { kEm, kSm, kTddb, kTc };
inline constexpr int kNumMechanisms = 4;
std::string_view mechanism_name(Mechanism m);

/// Validates a temperature against the models' shared validity range
/// (throws InvalidArgument outside it) — the same check every raw_fit
/// applies, exposed so hoisted fast paths can preserve it.
void check_model_temperature(double t_kelvin);

/// Electromigration (eq. 1 + §3 scaling):
///   FIT_EM ∝ J^n · e^{−Ea/kT} / (w·h)_rel
/// J is the interconnect current density (activity factor × J_max for the
/// technology); (w·h)_rel captures the κ² lifetime loss of shrinking
/// damascene copper interconnects under a constant interface layer δ.
struct ElectromigrationModel {
  double n = 1.1;      ///< current-density exponent (copper)
  double ea_ev = 0.9;  ///< activation energy (eV, copper)

  /// Raw FIT at current density `j_ma_per_um2`, temperature `t_kelvin`,
  /// and relative interconnect cross-section `wh_relative` (1.0 at 180 nm).
  double raw_fit(double j_ma_per_um2, double t_kelvin, double wh_relative) const;

  /// The J^n current-density factor of raw_fit (memoizable on j).
  double current_term(double j_ma_per_um2) const;
  /// The e^{−Ea/kT} Arrhenius factor of raw_fit (memoizable on T).
  double arrhenius(double t_kelvin) const;
};

/// Stress migration (eq. 2):
///   FIT_SM ∝ |T₀ − T|^m · e^{−Ea/kT}
/// T₀ is the sputtering deposition temperature of the metal (500 K).
struct StressMigrationModel {
  double m = 2.5;
  double ea_ev = 0.9;
  double t0_kelvin = 500.0;

  double raw_fit(double t_kelvin) const;
};

/// Time-dependent dielectric breakdown (eq. 3 + eq. 5 scaling):
///   FIT_TDDB ∝ A_rel · 10^{(tox_ref − tox)/tox_scale} · V^{a−bT}
///              · e^{−(X + Y/T + Z·T)/kT}
/// The 10^{Δtox/tox_scale} term is the gate-leakage acceleration of thinner
/// oxides; A_rel is the relative gate-oxide area.
///
/// Two parameter presets are provided (see DESIGN.md, "Model-constant
/// correction"):
///  - wu2002(): the literature values behind eq. 3 — a = 78, b = +0.081 /K
///    (voltage power-law exponent ≈ 48 at 363 K, per Wu et al.), one decade
///    of leakage per 0.22 nm of oxide. NOTE the paper prints b = −0.081;
///    that sign makes voltage scaling improve MTTF by ~e^28 and contradicts
///    every TDDB result in the paper, so the + sign is used.
///  - dsn04_shape() [default]: the paper's published TDDB curve cannot be
///    reproduced from the wu2002 constants (its 130 nm dip needs an
///    exponent ≈ 48 while its 65 nm 0.9 V/1.0 V pair needs ≈ 10 — an
///    internal inconsistency). This preset least-squares fits (a, b,
///    tox_scale) to the paper's published per-node TDDB ratios, giving an
///    effective exponent ≈ 16 at 350 K falling to ≈ 9.5 at 365 K. It
///    reproduces the sign and approximate magnitude of every published
///    TDDB data point; bench_tddb_presets quantifies both presets.
struct TddbModel {
  double a = 179.53;
  double b = 0.4657;      ///< 1/K
  double x_ev = 0.759;
  double y_evk = -66.8;
  double z_ev_per_k = -8.37e-4;
  double tox_ref_nm = 2.5;     ///< 180 nm gate oxide (25 Å, Table 4)
  double tox_scale_nm = 0.45;  ///< nm of oxide per decade of leakage

  /// The default preset: fitted to the paper's published TDDB curve.
  static TddbModel dsn04_shape() { return TddbModel{}; }

  /// The Wu et al. 2002 literature constants (sign-corrected b).
  static TddbModel wu2002() {
    TddbModel m;
    m.a = 78.0;
    m.b = 0.081;
    m.tox_scale_nm = 0.22;
    return m;
  }

  /// Raw FIT at voltage `v`, temperature `t_kelvin`, oxide thickness
  /// `tox_nm`, and relative gate-oxide area `area_relative`.
  double raw_fit(double v, double t_kelvin, double tox_nm,
                 double area_relative) const;

  /// Voltage exponent a − bT at temperature `t_kelvin`.
  double voltage_exponent(double t_kelvin) const { return a - b * t_kelvin; }

  /// The run-invariant oxide-acceleration factor 10^{(tox_ref − tox)/tox_scale}
  /// of raw_fit — constant per technology node, hoistable out of the hot loop.
  double oxide_term(double tox_nm) const;
  /// The V^{a − bT} factor of raw_fit (memoizable on (v, T)).
  double voltage_term(double v, double t_kelvin) const;
  /// The e^{−(X + Y/T + Z·T)/kT} factor of raw_fit (memoizable on T).
  double field_term(double t_kelvin) const;
};

/// Thermal cycling (eq. 4, Coffin-Manson, package-level):
///   FIT_TC ∝ (T_average − T_ambient)^q
struct ThermalCyclingModel {
  double q = 2.35;            ///< Coffin-Manson exponent for the package
  double t_ambient_kelvin = 300.0;  ///< powered-off baseline of large cycles

  double raw_fit(double t_average_kelvin) const;
};

}  // namespace ramp::core
