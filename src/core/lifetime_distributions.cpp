#include "core/lifetime_distributions.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ramp::core {

namespace {
// Abramowitz-Stegun style erf-based normal CDF.
double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }
}  // namespace

ExponentialLifetime::ExponentialLifetime(double mttf) : mttf_(mttf) {
  RAMP_REQUIRE(mttf > 0.0, "MTTF must be positive");
}

double ExponentialLifetime::sample(Xoshiro256& rng) const {
  const double u = 1.0 - rng.uniform();  // (0, 1]
  return -mttf_ * std::log(u);
}

double ExponentialLifetime::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return 1.0 - std::exp(-t / mttf_);
}

WeibullLifetime::WeibullLifetime(double mttf, double beta)
    : mttf_(mttf), beta_(beta) {
  RAMP_REQUIRE(mttf > 0.0, "MTTF must be positive");
  RAMP_REQUIRE(beta > 0.0, "Weibull shape must be positive");
  eta_ = mttf / std::tgamma(1.0 + 1.0 / beta);
}

double WeibullLifetime::sample(Xoshiro256& rng) const {
  const double u = 1.0 - rng.uniform();  // (0, 1]
  return eta_ * std::pow(-std::log(u), 1.0 / beta_);
}

double WeibullLifetime::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(t / eta_, beta_));
}

LognormalLifetime::LognormalLifetime(double mttf, double sigma)
    : mttf_(mttf), sigma_(sigma) {
  RAMP_REQUIRE(mttf > 0.0, "MTTF must be positive");
  RAMP_REQUIRE(sigma > 0.0, "lognormal sigma must be positive");
  mu_ = std::log(mttf) - sigma * sigma / 2.0;
}

double LognormalLifetime::sample(Xoshiro256& rng) const {
  return std::exp(mu_ + sigma_ * rng.normal());
}

double LognormalLifetime::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return normal_cdf((std::log(t) - mu_) / sigma_);
}

std::string_view family_name(LifetimeFamily f) {
  switch (f) {
    case LifetimeFamily::kExponential: return "exponential";
    case LifetimeFamily::kWeibull: return "weibull";
    case LifetimeFamily::kLognormal: return "lognormal";
  }
  throw InvalidArgument("unknown lifetime family");
}

std::unique_ptr<LifetimeDistribution> make_lifetime(LifetimeFamily family,
                                                    double mttf,
                                                    double shape) {
  switch (family) {
    case LifetimeFamily::kExponential:
      return std::make_unique<ExponentialLifetime>(mttf);
    case LifetimeFamily::kWeibull:
      return std::make_unique<WeibullLifetime>(mttf, shape);
    case LifetimeFamily::kLognormal:
      return std::make_unique<LognormalLifetime>(mttf, shape);
  }
  throw InvalidArgument("unknown lifetime family");
}

}  // namespace ramp::core
