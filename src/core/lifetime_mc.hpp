// Monte Carlo series-system lifetime estimation.
//
// Quantifies the error of SOFR's two assumptions (paper §2) while keeping
// its series-failure-system structure: the processor fails when the FIRST
// (structure, mechanism) instance fails. Given a FitSummary — the per-
// (structure, mechanism) failure rates a run produced — this engine builds
// one lifetime distribution per instance with the SAME per-instance MTTF
// (1/FIT), then samples processor lifetime as the minimum across instances.
//
// With exponential instances the Monte Carlo mean converges exactly to the
// SOFR closed form 1/ΣFIT, which doubles as a validation of the engine (a
// property test asserts it). With wear-out distributions (Weibull beta > 1,
// lognormal) the series minimum is *larger* than SOFR predicts — the known
// pessimism of applying constant failure rates to wear-out mechanisms —
// and this engine measures by how much.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/fit_tracker.hpp"
#include "core/lifetime_distributions.hpp"

namespace ramp::core {

/// Per-mechanism distribution choice for the Monte Carlo engine.
struct LifetimeModelConfig {
  LifetimeFamily family = LifetimeFamily::kWeibull;
  /// Shape per mechanism (Weibull beta or lognormal sigma), indexed by
  /// Mechanism. Wear-out mechanisms typically have beta in [1.5, 3].
  std::array<double, kNumMechanisms> shape = {2.0, 2.0, 1.5, 2.35};
};

/// Result of a Monte Carlo lifetime run (times in years).
struct LifetimeEstimate {
  double mean_years = 0.0;      ///< Monte Carlo mean processor lifetime
  double median_years = 0.0;
  double p05_years = 0.0;       ///< 5th percentile (early-failure tail)
  double p95_years = 0.0;
  double sofr_years = 0.0;      ///< SOFR closed form for the same FITs
  std::uint64_t samples = 0;

  /// Ratio of Monte Carlo mean to the SOFR prediction (> 1 for wear-out).
  double vs_sofr() const { return mean_years / sofr_years; }
};

class LifetimeMonteCarlo {
 public:
  /// Builds per-(structure, mechanism) distributions from `fits` (absolute
  /// FIT values; zero-FIT instances are skipped). Throws InvalidArgument
  /// when every instance is zero.
  LifetimeMonteCarlo(const FitSummary& fits, const LifetimeModelConfig& cfg);

  /// Runs `samples` series-system draws with the given seed.
  LifetimeEstimate estimate(std::uint64_t samples, std::uint64_t seed) const;

  /// Number of active (non-zero-FIT) failure instances.
  std::size_t num_instances() const { return instances_.size(); }

  /// Analytic series-system survival at time t (years): the product of the
  /// per-instance survival functions. Used by tests against the empirical
  /// distribution.
  double survival(double t_years) const;

 private:
  std::vector<std::unique_ptr<LifetimeDistribution>> instances_;
  double sofr_years_ = 0.0;
};

}  // namespace ramp::core
