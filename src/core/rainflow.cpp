#include "core/rainflow.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ramp::core {

namespace {
// Reduces a signal to its turning points (strict local extrema plus the
// endpoints); plateaus collapse to one point.
std::vector<double> turning_points(const std::vector<double>& signal) {
  std::vector<double> tp;
  for (double v : signal) {
    if (!tp.empty() && v == tp.back()) continue;
    if (tp.size() >= 2) {
      const double a = tp[tp.size() - 2];
      const double b = tp.back();
      // b is not an extremum if it lies monotonically between a and v.
      if ((a < b && b < v) || (a > b && b > v)) tp.back() = v;
      else tp.push_back(v);
    } else {
      tp.push_back(v);
    }
  }
  return tp;
}
}  // namespace

std::vector<RainflowCycle> rainflow_count(const std::vector<double>& signal) {
  std::vector<RainflowCycle> cycles;
  const std::vector<double> tp = turning_points(signal);
  if (tp.size() < 2) return cycles;

  // ASTM E1049-85 rainflow counting over the turning-point sequence. The
  // range Y spans the two oldest of the three most recent points; when it
  // is closed (X >= Y) it counts as a full cycle, except when it contains
  // the (current) starting point of the history, in which case it counts
  // as a half cycle and only the starting point is discarded.
  std::vector<double> stack;
  auto emit = [&](double a, double b, double count) {
    cycles.push_back({std::abs(a - b), (a + b) / 2.0, count});
  };

  for (double point : tp) {
    stack.push_back(point);
    while (stack.size() >= 3) {
      const double x = std::abs(stack[stack.size() - 1] - stack[stack.size() - 2]);
      const double y = std::abs(stack[stack.size() - 2] - stack[stack.size() - 3]);
      if (x < y) break;
      const bool y_contains_start = stack.size() == 3;
      if (y_contains_start) {
        // Half cycle; discard the starting point, the next point becomes
        // the new start.
        emit(stack[0], stack[1], 0.5);
        stack.erase(stack.begin());
        break;  // only two points remain; wait for more data
      }
      emit(stack[stack.size() - 3], stack[stack.size() - 2], 1.0);
      stack.erase(stack.end() - 3, stack.end() - 1);
    }
  }
  // Residual: each remaining range is a half cycle.
  for (std::size_t i = 0; i + 1 < stack.size(); ++i) {
    emit(stack[i], stack[i + 1], 0.5);
  }
  return cycles;
}

SmallCycleDamage::SmallCycleDamage(double q, double ref_range_kelvin,
                                   double threshold_kelvin)
    : q_(q), ref_range_(ref_range_kelvin), threshold_(threshold_kelvin) {
  RAMP_REQUIRE(q > 0.0, "Coffin-Manson exponent must be positive");
  RAMP_REQUIRE(ref_range_kelvin > 0.0, "reference range must be positive");
  RAMP_REQUIRE(threshold_kelvin >= 0.0, "threshold must be non-negative");
}

double SmallCycleDamage::add_signal(const std::vector<double>& temperatures) {
  double added = 0.0;
  for (const auto& c : rainflow_count(temperatures)) {
    if (c.range < threshold_) continue;
    added += c.count * std::pow(c.range / ref_range_, q_);
    cycles_ += c.count;
  }
  damage_ += added;
  return added;
}

}  // namespace ramp::core
