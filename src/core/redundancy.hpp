// Structural redundancy for lifetime enhancement.
//
// The paper's conclusion — single designs cannot simply be remapped across
// nodes once wear-out dominates — spawned follow-up work on *structural
// duplication*: provisioning spare microarchitectural structures that take
// over when the primary wears out, turning the first structure failure
// into a performance event instead of a chip death. This module extends
// the series-system Monte Carlo engine with per-structure spare counts:
// the chip fails when any structure has exhausted its spares (for
// structure-level mechanisms) or when the package fails (TC, not
// sparable).
//
// Modeling assumptions, documented for auditability:
//  - Spares are cold (unpowered) until activated, so they accrue no wear
//    while inactive; activation is instantaneous.
//  - A structure's failure times across spares are i.i.d. draws from the
//    same per-(structure, mechanism) distributions as the primary.
//  - Structure-level mechanisms (EM/SM/TDDB) fail a *structure instance*
//    jointly: the instance dies at the minimum of its mechanism draws.
#pragma once

#include <array>
#include <cstdint>

#include "core/lifetime_mc.hpp"
#include "sim/structures.hpp"

namespace ramp::core {

/// Spare provisioning per structure (0 = no redundancy, the paper's base).
struct SparePlan {
  std::array<int, sim::kNumStructures> spares{};

  /// Uniform plan: the same spare count for every structure.
  static SparePlan uniform(int n);

  /// Total spare structures provisioned (area-cost proxy).
  int total() const;

  /// Relative area overhead of this plan given the structure area
  /// fractions (spare FXU costs its area fraction again, etc.).
  double area_overhead() const;
};

/// Monte Carlo lifetime of a chip with structural redundancy.
class RedundantLifetimeMonteCarlo {
 public:
  /// `fits` are absolute per-(structure, mechanism) FIT values; `plan`
  /// gives spare counts; `cfg` picks the lifetime distribution family.
  RedundantLifetimeMonteCarlo(const FitSummary& fits, const SparePlan& plan,
                              const LifetimeModelConfig& cfg);

  /// Mean chip lifetime (years) over `samples` draws.
  LifetimeEstimate estimate(std::uint64_t samples, std::uint64_t seed) const;

 private:
  /// One instance-lifetime draw for structure `s` (min over mechanisms).
  double sample_structure_instance(std::size_t s, Xoshiro256& rng) const;

  // Per structure, per mechanism distribution (nullptr when FIT was 0).
  std::array<std::array<std::unique_ptr<LifetimeDistribution>, kNumMechanisms>,
             sim::kNumStructures>
      structure_dists_{};
  std::unique_ptr<LifetimeDistribution> package_tc_;
  SparePlan plan_;
  double sofr_years_ = 0.0;
};

}  // namespace ramp::core
