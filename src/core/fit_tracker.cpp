#include "core/fit_tracker.hpp"

#include <algorithm>

#include "util/constants.hpp"
#include "util/error.hpp"

namespace ramp::core {

std::array<double, kNumMechanisms> FitSummary::by_mechanism() const {
  std::array<double, kNumMechanisms> totals{};
  for (const auto& row : by_structure) {
    for (int m = 0; m < kNumMechanisms; ++m) {
      totals[static_cast<std::size_t>(m)] += row[static_cast<std::size_t>(m)];
    }
  }
  totals[static_cast<std::size_t>(Mechanism::kTc)] += tc_fit;
  return totals;
}

double FitSummary::total() const {
  const auto by_mech = by_mechanism();
  double sum = 0.0;
  for (double v : by_mech) sum += v;
  return sum;
}

double FitSummary::mttf_years() const {
  const double fit = total();
  RAMP_REQUIRE(fit > 0.0, "MTTF undefined for a zero failure rate");
  return mttf_years_from_fit(fit);
}

FitTracker::FitTracker(const RampModel& model) : model_(model) {}

void FitTracker::add_interval(
    const std::array<double, sim::kNumStructures>& temp_k,
    const std::array<double, sim::kNumStructures>& activity, double voltage,
    double duration_s) {
  RAMP_REQUIRE(duration_s >= 0.0, "durations must be non-negative");
  if (duration_s == 0.0) return;

  double die_temp = 0.0;
  for (int s = 0; s < sim::kNumStructures; ++s) {
    const auto si = static_cast<std::size_t>(s);
    const auto id = static_cast<sim::StructureId>(s);
    const OperatingPoint op{temp_k[si], voltage, activity[si]};
    const auto fits = model_.structure_fits(id, op, memos_[si]);
    for (int m = 0; m < kNumMechanisms; ++m) {
      means_[si][static_cast<std::size_t>(m)].add(
          fits[static_cast<std::size_t>(m)], duration_s);
    }
    max_temp_ = std::max(max_temp_, temp_k[si]);
    max_activity_ = std::max(max_activity_, activity[si]);
    die_temp += temp_k[si] * model_.structure_weight(id);
  }

  tc_mean_.add(model_.tc_fit(die_temp, tc_memo_), duration_s);
  avg_die_temp_.add(die_temp, duration_s);
  total_time_ += duration_s;
}

FitSummary FitTracker::summary() const {
  FitSummary s;
  for (int st = 0; st < sim::kNumStructures; ++st) {
    for (int m = 0; m < kNumMechanisms; ++m) {
      s.by_structure[static_cast<std::size_t>(st)][static_cast<std::size_t>(m)] =
          means_[static_cast<std::size_t>(st)][static_cast<std::size_t>(m)].mean();
    }
  }
  s.tc_fit = tc_mean_.mean();
  return s;
}

FitSummary steady_state_summary(const RampModel& model, double temperature_k,
                                double activity, double voltage) {
  FitSummary s;
  double die_temp = 0.0;
  for (int st = 0; st < sim::kNumStructures; ++st) {
    const auto id = static_cast<sim::StructureId>(st);
    const OperatingPoint op{temperature_k, voltage, activity};
    s.by_structure[static_cast<std::size_t>(st)] = model.structure_fits(id, op);
    die_temp += temperature_k * sim::structure_area_fraction(id);
  }
  s.tc_fit = model.tc_fit(die_temp);
  return s;
}

}  // namespace ramp::core
