// RAMP facade: per-structure, per-mechanism instantaneous FIT evaluation for
// one technology node.
//
// RAMP (paper §2) evaluates the failure models at microarchitectural
// structure granularity from the structure's instantaneous temperature T,
// supply voltage V, and activity factor p. This class binds the mechanism
// models (src/core/mechanisms.hpp) to a technology node's scaling
// parameters (Table 4) and the modeled core's structure areas, and applies
// the qualification constants that turn raw rates into absolute FIT.
//
// Structure weighting: EM/SM rates scale with a structure's interconnect
// amount and TDDB with its gate-oxide area, both of which we take
// proportional to the structure's area fraction. TC is evaluated once, at
// package level, from the average die temperature (§2).
#pragma once

#include <array>

#include "core/mechanisms.hpp"
#include "scaling/technology.hpp"
#include "sim/structures.hpp"

namespace ramp::core {

/// Per-mechanism proportionality constants (absolute-FIT calibration).
/// The default of 1.0 yields "raw" rates; qualification (§4.4) produces the
/// constants that make the 180 nm suite-average 1000 FIT per mechanism.
struct MechanismConstants {
  double em = 1.0;
  double sm = 1.0;
  double tddb = 1.0;
  double tc = 1.0;

  double get(Mechanism m) const;
  void set(Mechanism m, double value);
};

/// Instantaneous operating point of one structure.
struct OperatingPoint {
  double temperature_k = 345.0;
  double voltage = 1.3;
  double activity = 0.0;  ///< activity factor p in [0, 1]
};

class RampModel {
 public:
  /// `tddb` selects the TDDB parameter preset (TddbModel::dsn04_shape() by
  /// default; pass TddbModel::wu2002() for the literature constants).
  RampModel(const scaling::TechnologyNode& tech,
            const MechanismConstants& constants = {},
            const TddbModel& tddb = TddbModel::dsn04_shape());

  /// Instantaneous EM FIT of structure `s` at point `op`. The interconnect
  /// current density is p · J_max(tech), per §2.
  double em_fit(sim::StructureId s, const OperatingPoint& op) const;

  /// Instantaneous SM FIT of structure `s` (temperature only).
  double sm_fit(sim::StructureId s, const OperatingPoint& op) const;

  /// Instantaneous TDDB FIT of structure `s` at point `op`.
  double tddb_fit(sim::StructureId s, const OperatingPoint& op) const;

  /// Instantaneous package TC FIT from the area-weighted average die
  /// temperature.
  double tc_fit(double avg_die_temperature_k) const;

  /// All three structure-level mechanisms for `s`, indexed by Mechanism
  /// (the TC slot is zero — it is package-level; use tc_fit).
  std::array<double, kNumMechanisms> structure_fits(sim::StructureId s,
                                                    const OperatingPoint& op) const;

  const scaling::TechnologyNode& tech() const { return tech_; }
  const MechanismConstants& constants() const { return constants_; }

  const ElectromigrationModel& em_model() const { return em_; }
  const StressMigrationModel& sm_model() const { return sm_; }
  const TddbModel& tddb_model() const { return tddb_; }
  const ThermalCyclingModel& tc_model() const { return tc_; }

 private:
  scaling::TechnologyNode tech_;
  MechanismConstants constants_;
  ElectromigrationModel em_{};
  StressMigrationModel sm_{};
  TddbModel tddb_{};
  ThermalCyclingModel tc_{};
};

}  // namespace ramp::core
