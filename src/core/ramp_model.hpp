// RAMP facade: per-structure, per-mechanism instantaneous FIT evaluation for
// one technology node.
//
// RAMP (paper §2) evaluates the failure models at microarchitectural
// structure granularity from the structure's instantaneous temperature T,
// supply voltage V, and activity factor p. This class binds the mechanism
// models (src/core/mechanisms.hpp) to a technology node's scaling
// parameters (Table 4) and the modeled core's structure areas, and applies
// the qualification constants that turn raw rates into absolute FIT.
//
// Structure weighting: EM/SM rates scale with a structure's interconnect
// amount and TDDB with its gate-oxide area, both of which we take
// proportional to the structure's area fraction. TC is evaluated once, at
// package level, from the average die temperature (§2).
#pragma once

#include <array>

#include "core/mechanisms.hpp"
#include "scaling/technology.hpp"
#include "sim/structures.hpp"

namespace ramp::core {

/// Per-mechanism proportionality constants (absolute-FIT calibration).
/// The default of 1.0 yields "raw" rates; qualification (§4.4) produces the
/// constants that make the 180 nm suite-average 1000 FIT per mechanism.
struct MechanismConstants {
  double em = 1.0;
  double sm = 1.0;
  double tddb = 1.0;
  double tc = 1.0;

  double get(Mechanism m) const;
  void set(Mechanism m, double value);
};

/// Instantaneous operating point of one structure.
struct OperatingPoint {
  double temperature_k = 345.0;
  double voltage = 1.3;
  double activity = 0.0;  ///< activity factor p in [0, 1]
};

/// Exact-bits memo of the transcendental subterms of one structure's FIT
/// evaluation, keyed on the bit patterns of their inputs. Interval
/// temperatures change slowly (and activities repeat), so consecutive
/// evaluations often reuse the cached `exp`/`pow` results — each hit returns
/// the identical bits the fresh computation would produce, keeping the
/// value path bitwise unchanged.
///
/// The memo is owned by the caller (one per structure, e.g. inside
/// FitTracker) rather than by RampModel, so a shared const RampModel stays
/// safe to use from several threads.
///
/// Sentinels: temperatures of 0 K and current densities of −1 can never
/// reach the cached computations (check_model_temperature rejects T ≤ 0 and
/// j is non-negative), so the initial keys never produce a false hit.
struct FitMemo {
  double em_j = -1.0;    ///< key: current density of em_pow
  double em_pow = 0.0;   ///< pow(j, n)
  double em_t = 0.0;     ///< key: temperature of em_exp
  double em_exp = 0.0;   ///< e^{−Ea/kT} (EM)
  double sm_t = 0.0;     ///< key: temperature of sm_raw
  double sm_raw = 0.0;   ///< full SM raw FIT at sm_t
  double tddb_t = 0.0;   ///< key: temperature of tddb_field
  double tddb_field = 0.0;
  double tddb_vt = 0.0;  ///< key: temperature of tddb_vterm
  double tddb_v = 0.0;   ///< key: voltage of tddb_vterm
  double tddb_vterm = 0.0;
  double tc_t = 0.0;     ///< key: average die temperature of tc_raw
  double tc_raw = 0.0;   ///< full TC raw FIT at tc_t
};

class RampModel {
 public:
  /// `tddb` selects the TDDB parameter preset (TddbModel::dsn04_shape() by
  /// default; pass TddbModel::wu2002() for the literature constants).
  RampModel(const scaling::TechnologyNode& tech,
            const MechanismConstants& constants = {},
            const TddbModel& tddb = TddbModel::dsn04_shape());

  /// Instantaneous EM FIT of structure `s` at point `op`. The interconnect
  /// current density is p · J_max(tech), per §2.
  double em_fit(sim::StructureId s, const OperatingPoint& op) const;

  /// Instantaneous SM FIT of structure `s` (temperature only).
  double sm_fit(sim::StructureId s, const OperatingPoint& op) const;

  /// Instantaneous TDDB FIT of structure `s` at point `op`.
  double tddb_fit(sim::StructureId s, const OperatingPoint& op) const;

  /// Instantaneous package TC FIT from the area-weighted average die
  /// temperature.
  double tc_fit(double avg_die_temperature_k) const;

  /// Memoized fast paths: bitwise-identical to the memo-less overloads, but
  /// hoisted run-invariant factors (tox oxide scale, per-structure
  /// qualification × area bases) are precomputed and the exp/pow subterms
  /// are served from `memo` when their inputs repeat exactly. Callers keep
  /// one FitMemo per structure (plus one for TC) across intervals.
  double em_fit(sim::StructureId s, const OperatingPoint& op, FitMemo& memo) const;
  double sm_fit(sim::StructureId s, const OperatingPoint& op, FitMemo& memo) const;
  double tddb_fit(sim::StructureId s, const OperatingPoint& op, FitMemo& memo) const;
  double tc_fit(double avg_die_temperature_k, FitMemo& memo) const;

  /// All three structure-level mechanisms for `s`, indexed by Mechanism
  /// (the TC slot is zero — it is package-level; use tc_fit).
  std::array<double, kNumMechanisms> structure_fits(sim::StructureId s,
                                                    const OperatingPoint& op) const;

  /// Memoized form of structure_fits (see the memoized fit overloads).
  std::array<double, kNumMechanisms> structure_fits(sim::StructureId s,
                                                    const OperatingPoint& op,
                                                    FitMemo& memo) const;

  /// Precomputed sim::structure_area_fraction(s) — identical value, no
  /// per-call switch.
  double structure_weight(sim::StructureId s) const {
    return per_structure_[static_cast<std::size_t>(s)].weight;
  }

  const scaling::TechnologyNode& tech() const { return tech_; }
  const MechanismConstants& constants() const { return constants_; }

  const ElectromigrationModel& em_model() const { return em_; }
  const StressMigrationModel& sm_model() const { return sm_; }
  const TddbModel& tddb_model() const { return tddb_; }
  const ThermalCyclingModel& tc_model() const { return tc_; }

 private:
  /// Run-invariant per-structure bases, computed once at construction with
  /// the exact operand order the memo-less paths use, so multiplying them
  /// back in reproduces identical bits.
  struct StructureBases {
    double weight = 0.0;     ///< sim::structure_area_fraction(s)
    double em_scale = 0.0;   ///< constants.em · weight
    double sm_scale = 0.0;   ///< constants.sm · weight
    double area_rel = 0.0;   ///< weight · tech.relative_area (TDDB gate area)
    double tddb_base = 0.0;  ///< area_rel · oxide_term(tox)
  };

  scaling::TechnologyNode tech_;
  MechanismConstants constants_;
  ElectromigrationModel em_{};
  StressMigrationModel sm_{};
  TddbModel tddb_{};
  ThermalCyclingModel tc_{};
  std::array<StructureBases, sim::kNumStructures> per_structure_{};
  double em_wh_relative_ = 1.0;  ///< tech.em_wh_relative(), hoisted
};

}  // namespace ramp::core
