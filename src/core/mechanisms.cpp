#include "core/mechanisms.hpp"

#include <cmath>

#include "util/constants.hpp"
#include "util/error.hpp"

namespace ramp::core {

void check_model_temperature(double t_kelvin) {
  RAMP_REQUIRE(t_kelvin >= kMinModelTemperature &&
                   t_kelvin <= kMaxModelTemperature,
               "temperature outside the model's validity range");
}

namespace {
void check_temp(double t) { check_model_temperature(t); }
}  // namespace

std::string_view mechanism_name(Mechanism m) {
  switch (m) {
    case Mechanism::kEm: return "EM";
    case Mechanism::kSm: return "SM";
    case Mechanism::kTddb: return "TDDB";
    case Mechanism::kTc: return "TC";
  }
  throw InvalidArgument("unknown mechanism");
}

double ElectromigrationModel::raw_fit(double j_ma_per_um2, double t_kelvin,
                                      double wh_relative) const {
  check_temp(t_kelvin);
  RAMP_REQUIRE(j_ma_per_um2 >= 0.0, "current density must be non-negative");
  RAMP_REQUIRE(wh_relative > 0.0, "interconnect cross-section must be positive");
  if (j_ma_per_um2 == 0.0) return 0.0;  // no current flow, no migration
  return current_term(j_ma_per_um2) * arrhenius(t_kelvin) / wh_relative;
}

double ElectromigrationModel::current_term(double j_ma_per_um2) const {
  return std::pow(j_ma_per_um2, n);
}

double ElectromigrationModel::arrhenius(double t_kelvin) const {
  return std::exp(-ea_ev / (kBoltzmannEv * t_kelvin));
}

double StressMigrationModel::raw_fit(double t_kelvin) const {
  check_temp(t_kelvin);
  const double dt = std::abs(t0_kelvin - t_kelvin);
  // At T == T0 the interconnect is stress-free and the SM rate vanishes.
  if (dt == 0.0) return 0.0;
  return std::pow(dt, m) * std::exp(-ea_ev / (kBoltzmannEv * t_kelvin));
}

double TddbModel::raw_fit(double v, double t_kelvin, double tox_nm,
                          double area_relative) const {
  check_temp(t_kelvin);
  RAMP_REQUIRE(v > 0.0, "voltage must be positive");
  RAMP_REQUIRE(tox_nm > 0.0, "oxide thickness must be positive");
  RAMP_REQUIRE(area_relative > 0.0, "gate-oxide area must be positive");
  return area_relative * oxide_term(tox_nm) * voltage_term(v, t_kelvin) *
         field_term(t_kelvin);
}

double TddbModel::oxide_term(double tox_nm) const {
  return std::pow(10.0, (tox_ref_nm - tox_nm) / tox_scale_nm);
}

double TddbModel::voltage_term(double v, double t_kelvin) const {
  return std::pow(v, voltage_exponent(t_kelvin));
}

double TddbModel::field_term(double t_kelvin) const {
  return std::exp(-(x_ev + y_evk / t_kelvin + z_ev_per_k * t_kelvin) /
                  (kBoltzmannEv * t_kelvin));
}

double ThermalCyclingModel::raw_fit(double t_average_kelvin) const {
  check_temp(t_average_kelvin);
  const double cycle = t_average_kelvin - t_ambient_kelvin;
  RAMP_REQUIRE(cycle >= 0.0,
               "average temperature must not be below the cycling baseline");
  if (cycle == 0.0) return 0.0;
  return std::pow(cycle, q);
}

}  // namespace ramp::core
