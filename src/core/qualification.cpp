#include "core/qualification.hpp"

#include "util/error.hpp"

namespace ramp::core {

MechanismConstants qualify(const std::vector<FitSummary>& raw_per_app,
                           const QualificationTarget& target) {
  RAMP_REQUIRE(!raw_per_app.empty(), "qualification needs at least one app");
  RAMP_REQUIRE(target.fit_per_mechanism > 0.0,
               "qualification target must be positive");

  std::array<double, kNumMechanisms> avg{};
  for (const auto& summary : raw_per_app) {
    const auto by_mech = summary.by_mechanism();
    for (int m = 0; m < kNumMechanisms; ++m) {
      avg[static_cast<std::size_t>(m)] += by_mech[static_cast<std::size_t>(m)];
    }
  }
  for (auto& v : avg) v /= static_cast<double>(raw_per_app.size());

  MechanismConstants k;
  for (int m = 0; m < kNumMechanisms; ++m) {
    const double raw = avg[static_cast<std::size_t>(m)];
    RAMP_REQUIRE(raw > 0.0, "cannot qualify a mechanism with zero raw rate");
    k.set(static_cast<Mechanism>(m), target.fit_per_mechanism / raw);
  }
  return k;
}

}  // namespace ramp::core
