// Progress reporting for sweep execution.
//
// SweepRunner reports cell-level lifecycle events through this interface
// instead of printing to stderr itself. Observer methods are invoked from pool
// worker threads, but SweepRunner serializes the calls: no two observer
// methods ever run concurrently, so implementations need no locking of
// their own.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "scaling/technology.hpp"

namespace ramp::pipeline {

struct AppTechResult;

/// Identity of one (app, tech) sweep cell in flight.
struct SweepCell {
  std::string app;
  scaling::TechPoint tech = scaling::TechPoint::k180nm;
  std::uint64_t task_id = 0;  ///< deterministic: app index × node count + node
  int worker_id = -1;         ///< pool worker executing the cell, -1 off-pool
};

class ProgressObserver {
 public:
  virtual ~ProgressObserver() = default;

  /// The sweep starts: `total_cells` evaluations over `jobs` workers.
  virtual void on_sweep_begin(std::size_t total_cells, std::size_t jobs) {
    (void)total_cells;
    (void)jobs;
  }
  /// The sweep was answered from `cache_path` without running any cell.
  virtual void on_cache_hit(const std::string& cache_path) { (void)cache_path; }
  /// A cell starts executing on a worker.
  virtual void on_cell_start(const SweepCell& cell) { (void)cell; }
  /// A cell finished after `wall_seconds`.
  virtual void on_cell_finish(const SweepCell& cell, const AppTechResult& result,
                              double wall_seconds) {
    (void)cell;
    (void)result;
    (void)wall_seconds;
  }
  /// All cells done and qualification applied, `wall_seconds` total.
  virtual void on_sweep_end(double wall_seconds) { (void)wall_seconds; }
};

/// Default observer: one stderr line per finished cell plus begin/end
/// summaries (what `ramp_cli sweep` prints).
class StderrProgress final : public ProgressObserver {
 public:
  void on_sweep_begin(std::size_t total_cells, std::size_t jobs) override;
  void on_cache_hit(const std::string& cache_path) override;
  void on_cell_finish(const SweepCell& cell, const AppTechResult& result,
                      double wall_seconds) override;
  void on_sweep_end(double wall_seconds) override;

 private:
  std::size_t finished_ = 0;
  std::size_t total_ = 0;
};

}  // namespace ramp::pipeline
