#include "pipeline/evaluator.hpp"

#include <chrono>
#include <cmath>
#include <functional>
#include <memory>

#include "obs/span.hpp"
#include "sim/core_config.hpp"
#include "sim/ooo_core.hpp"
#include "thermal/floorplan.hpp"
#include "trace/synthetic_generator.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace ramp::pipeline {

namespace {

// Deterministic per-app seed offset so every benchmark gets an independent
// but reproducible stream.
std::uint64_t app_seed(std::uint64_t base, const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return base ^ h;
}

// Block index (floorplan order) for each structure (StructureId order).
std::array<std::size_t, sim::kNumStructures> block_of_structure(
    const thermal::Floorplan& fp) {
  std::array<std::size_t, sim::kNumStructures> map{};
  for (int s = 0; s < sim::kNumStructures; ++s) {
    map[static_cast<std::size_t>(s)] = fp.index_of(
        std::string(sim::structure_name(static_cast<sim::StructureId>(s))));
  }
  return map;
}

}  // namespace

EvaluationConfig EvaluationConfig::from_env(std::uint64_t trace_len) {
  EvaluationConfig cfg;
  // env_u64 throws InvalidArgument on non-numeric, signed, or overflowing
  // values — a misspelled override must fail loudly, not silently default.
  cfg.trace_instructions = env_u64("RAMP_TRACE_LEN", trace_len);
  RAMP_REQUIRE(cfg.trace_instructions > 0,
               "environment variable RAMP_TRACE_LEN must be positive");
  cfg.seed = env_u64("RAMP_SEED", 42);
  cfg.cache_enabled = env_enabled("RAMP_CACHE");
  cfg.metrics_enabled = env_on_off("RAMP_METRICS", true);
  cfg.metrics_path = env_string("RAMP_METRICS_PATH").value_or("");
  const auto timeline = env_on_off_or_value("RAMP_TIMELINE");
  cfg.timeline_enabled = timeline.has_value();
  cfg.timeline_dir = timeline.value_or("");
  cfg.timeline_points = env_u64("RAMP_TIMELINE_POINTS", cfg.timeline_points);
  RAMP_REQUIRE(cfg.timeline_points >= 2,
               "environment variable RAMP_TIMELINE_POINTS must be at least 2");
  cfg.trace_out = env_string("RAMP_TRACE_OUT").value_or("");
  if (const auto temp = env_double("RAMP_WATCHDOG_TEMP_K")) {
    cfg.watchdog.max_temp_k = *temp;
  }
  return cfg;
}

core::FitSummary scale_summary(const core::FitSummary& raw,
                               const core::MechanismConstants& k) {
  core::FitSummary out = raw;
  for (auto& row : out.by_structure) {
    for (int m = 0; m < core::kNumMechanisms; ++m) {
      row[static_cast<std::size_t>(m)] *= k.get(static_cast<core::Mechanism>(m));
    }
  }
  out.tc_fit *= k.tc;
  return out;
}

Evaluator::Evaluator(EvaluationConfig cfg) : cfg_(std::move(cfg)) {
  RAMP_REQUIRE(cfg_.trace_instructions > 0, "trace length must be positive");
  RAMP_REQUIRE(cfg_.interval_seconds > 0.0, "interval must be positive");
}

AppTechResult Evaluator::evaluate(const workloads::Workload& w,
                                  scaling::TechPoint tech_point,
                                  double sink_target_k) const {
  // kTraceGen covers stream *construction* only: synthesis itself is
  // pull-driven per-instruction inside the simulator, so its cost is
  // accounted to kSim (timing each next() would dwarf the work).
  obs::Span trace_span(
      obs::Stage::kTraceGen,
      w.name + "@" + std::string(scaling::tech_token(tech_point)));
  trace::SyntheticTrace trace_stream(w.profile, cfg_.trace_instructions,
                                     app_seed(cfg_.seed, w.name));
  trace_span.stop();
  return evaluate_stream(trace_stream, w.name, w.power_bias, tech_point,
                         sink_target_k);
}

AppTechResult Evaluator::evaluate_stream(trace::TraceReader& stream,
                                         const std::string& label,
                                         double power_bias,
                                         scaling::TechPoint tech_point,
                                         double sink_target_k) const {
  RAMP_REQUIRE(power_bias > 0.0, "power bias must be positive");
  const scaling::TechnologyNode& tech = scaling::node(tech_point);

  // Per-stage wall-time attribution for the "app@node" cell. When the
  // profiler is disabled no clock is ever read on this path.
  using Clock = std::chrono::steady_clock;
  obs::Profiler& prof = obs::Profiler::global();
  const bool profile = prof.enabled();
  const std::string cell =
      label + "@" + std::string(scaling::tech_token(tech_point));
  const auto run_start = profile ? Clock::now() : Clock::time_point{};

  // ---- 1. timing simulation -------------------------------------------
  const sim::CoreConfig core_cfg = sim::core_config_for(tech);
  const auto interval_cycles = static_cast<std::uint64_t>(
      std::llround(core_cfg.frequency_hz * cfg_.interval_seconds));
  RAMP_ASSERT(interval_cycles > 0);

  sim::OooCore core(core_cfg);
  const auto sim_start = profile ? Clock::now() : Clock::time_point{};
  const sim::SimResult sim_result = core.run(stream, interval_cycles);
  if (profile) {
    prof.record_cell_timed(obs::Stage::kSim, cell, sim_start, Clock::now());
  }
  RAMP_ASSERT(!sim_result.intervals.empty());

  // ---- 2. power / thermal setup ----------------------------------------
  const power::PowerModel pm(cfg_.power, tech);
  const thermal::Floorplan fp =
      thermal::power4_floorplan().scaled(std::sqrt(tech.relative_area));
  thermal::RcNetwork net(fp, cfg_.thermal);
  const auto blk = block_of_structure(fp);
  const std::size_t nblocks = fp.size();

  // Average dynamic power per structure over the whole run — the "first
  // run" of the paper's two-run methodology. The workload's power_bias
  // calibrates per-app energy-per-op to Table 3 (see workloads/spec2k.hpp).
  auto biased_dynamic = [&](const std::array<double, sim::kNumStructures>& act) {
    power::StructurePower p = pm.dynamic_power(act);
    for (double& v : p) v *= power_bias;
    return p;
  };
  const power::StructurePower avg_dyn = biased_dynamic(sim_result.totals.avg_activity);

  // Block powers from structure dynamic power + leakage at block temps,
  // written into a caller-owned buffer so the per-interval loop never
  // allocates.
  auto block_power_into = [&](const power::StructurePower& dyn,
                              const std::vector<double>& block_temps,
                              std::vector<double>& p) {
    p.assign(nblocks, 0.0);
    for (int s = 0; s < sim::kNumStructures; ++s) {
      const auto si = static_cast<std::size_t>(s);
      const double leak = pm.leakage_power(static_cast<sim::StructureId>(s),
                                           block_temps[blk[si]]);
      p[blk[si]] += dyn[si] + leak;
    }
  };
  auto block_power_at = [&](const power::StructurePower& dyn,
                            const std::vector<double>& block_temps) {
    std::vector<double> p;
    block_power_into(dyn, block_temps, p);
    return p;
  };
  const std::function<std::vector<double>(const std::vector<double>&)>
      avg_power_fn = [&](const std::vector<double>& block_temps) {
        return block_power_at(avg_dyn, block_temps);
      };

  // ---- 3. steady state + sink calibration ------------------------------
  const auto steady_start = profile ? Clock::now() : Clock::time_point{};
  std::vector<double> steady = net.steady_state(avg_power_fn);
  const std::size_t sink_node = nblocks + 1;
  if (sink_target_k > 0.0) {
    // Choose R_convec so the sink settles at the target temperature:
    // R = (T_target − T_amb) / P_total, iterated with the leakage loop.
    RAMP_REQUIRE(sink_target_k > cfg_.thermal.ambient_k,
                 "sink target must exceed ambient");
    for (int it = 0; it < 20; ++it) {
      std::vector<double> block_temps(steady.begin(),
                                      steady.begin() + static_cast<std::ptrdiff_t>(nblocks));
      const std::vector<double> p = avg_power_fn(block_temps);
      double total = 0.0;
      for (double v : p) total += v;
      RAMP_ASSERT(total > 0.0);
      net.set_r_convec((sink_target_k - cfg_.thermal.ambient_k) / total);
      steady = net.steady_state(avg_power_fn);
      if (std::abs(steady[sink_node] - sink_target_k) < 1e-3) break;
    }
  }
  if (profile) {
    prof.record_cell_timed(obs::Stage::kThermal, cell, steady_start,
                           Clock::now());
  }

  // ---- 4. transient rerun with RAMP attached ----------------------------
  thermal::Transient transient(net, steady, cfg_.interval_seconds);
  const core::RampModel model(tech);  // unit constants => raw FITs
  core::FitTracker tracker(model);

  RunningMean dyn_power_avg;
  RunningMean leak_power_avg;
  std::vector<IntervalSample> samples;
  if (cfg_.record_intervals) samples.reserve(sim_result.intervals.size());
  double elapsed_s = 0.0;

  // Flight recorder: bounded per-interval physics sketch plus the anomaly
  // watchdog. Purely observational — results are identical with it off, and
  // its work is deterministic (no clocks, no RNG), so jobs=1 and jobs=4
  // sweeps export byte-identical timelines.
  std::unique_ptr<obs::TimelineBuffer> timeline;
  std::unique_ptr<obs::Watchdog> watchdog;
  if (cfg_.timeline_enabled) {
    timeline = std::make_unique<obs::TimelineBuffer>(
        static_cast<std::size_t>(cfg_.timeline_points));
    watchdog = std::make_unique<obs::Watchdog>(cell, cfg_.watchdog, prof);
  }
  std::uint64_t interval_index = 0;

  // The per-interval loop is too hot for a Span per section: accumulate lap
  // times into plain doubles and publish once after the loop (see span.hpp).
  double power_seconds = 0.0;
  double thermal_seconds = 0.0;
  double fit_seconds = 0.0;
  auto lap_mark = profile ? Clock::now() : Clock::time_point{};
  const auto lap = [&](double& acc) {
    if (!profile) return;
    const auto now = Clock::now();
    acc += std::chrono::duration<double>(now - lap_mark).count();
    lap_mark = now;
  };

  // Per-run workspace: every buffer the per-interval loop touches is hoisted
  // here and reused, so steady-state operation performs zero heap
  // allocations per interval (vector::assign reuses capacity; the transient
  // solver and the FIT trackers are allocation-free by construction).
  struct EvalWorkspace {
    std::vector<double> block_temps;  ///< pre-step block temps (leakage input)
    std::vector<double> bp;           ///< per-block power for this interval
  };
  EvalWorkspace ws;
  ws.block_temps.reserve(nblocks);
  ws.bp.reserve(nblocks);

  // Whether each interval's *instantaneous* FIT is needed. Computed once and
  // shared by the interval trace and the timeline (they used to run this
  // kernel twice with identical inputs — same bits, double the cost).
  const bool want_instant = cfg_.record_intervals || timeline != nullptr;

  std::array<double, sim::kNumStructures> struct_temps{};
  for (const auto& iv : sim_result.intervals) {
    const double duration =
        static_cast<double>(iv.cycles) / core_cfg.frequency_hz;

    lap(fit_seconds);  // charge loop restart overhead to the previous lap owner
    const power::StructurePower dyn = biased_dynamic(iv.activity);
    {
      const std::vector<double>& temps_now = transient.temperatures();
      ws.block_temps.assign(
          temps_now.begin(),
          temps_now.begin() + static_cast<std::ptrdiff_t>(nblocks));
    }
    block_power_into(dyn, ws.block_temps, ws.bp);
    lap(power_seconds);
    transient.step(ws.bp);
    lap(thermal_seconds);

    double dyn_total = 0.0;
    for (double v : dyn) dyn_total += v;
    double block_total = 0.0;
    for (double v : ws.bp) block_total += v;
    dyn_power_avg.add(dyn_total);
    leak_power_avg.add(block_total - dyn_total);
    lap(power_seconds);

    {
      // Single post-step temperature read feeding the FIT kernel, the
      // interval trace, and the timeline.
      const std::vector<double>& temps_after = transient.temperatures();
      for (int s = 0; s < sim::kNumStructures; ++s) {
        const auto si = static_cast<std::size_t>(s);
        struct_temps[si] = temps_after[blk[si]];
      }
    }
    tracker.add_interval(struct_temps, iv.activity, tech.vdd, duration);
    elapsed_s += duration;

    // Instantaneous per-mechanism raw FIT at this interval's conditions,
    // computed once for both consumers below.
    std::array<double, core::kNumMechanisms> inst_mech{};
    if (want_instant) {
      core::FitTracker instant(model);
      instant.add_interval(struct_temps, iv.activity, tech.vdd, duration);
      inst_mech = instant.summary().by_mechanism();
    }
    lap(fit_seconds);

    if (cfg_.record_intervals) {
      IntervalSample sample;
      sample.time_s = elapsed_s;
      for (double t : struct_temps) {
        sample.hottest_temp_k = std::max(sample.hottest_temp_k, t);
      }
      sample.total_power_w = block_total;
      sample.ipc = iv.ipc();
      sample.raw_mechanism_fit = inst_mech;
      samples.push_back(sample);
      lap(fit_seconds);
    }

    if (timeline) {
      obs::TimelinePoint point;
      point.interval = interval_index;
      point.time_s = elapsed_s;
      point.ipc = iv.ipc();
      point.dyn_power_w = dyn_total;
      point.leak_power_w = block_total - dyn_total;
      point.temp_k.assign(struct_temps.begin(), struct_temps.end());
      point.fit_inst.assign(inst_mech.begin(), inst_mech.end());
      // Running cumulative average: the final point lands exactly on the
      // reported raw_fits (the export's cross-check anchor).
      const auto avg = tracker.summary().by_mechanism();
      point.fit_avg.assign(avg.begin(), avg.end());
      watchdog->check(point, *timeline);
      timeline->push(std::move(point));
      lap(fit_seconds);
    }
    ++interval_index;
  }
  if (profile) {
    const auto n = static_cast<std::uint64_t>(sim_result.intervals.size());
    prof.record_cell(obs::Stage::kPower, cell, power_seconds, n);
    prof.record_cell(obs::Stage::kThermal, cell, thermal_seconds, n);
    prof.record_cell(obs::Stage::kFit, cell, fit_seconds, n);
  }

  // ---- 5. collect --------------------------------------------------------
  AppTechResult r;
  r.app = label;
  r.tech = tech_point;
  r.ipc = sim_result.totals.ipc();
  r.avg_dynamic_power_w = dyn_power_avg.mean();
  r.avg_leakage_power_w = leak_power_avg.mean();
  r.avg_total_power_w = r.avg_dynamic_power_w + r.avg_leakage_power_w;
  r.max_structure_temp_k = tracker.max_temperature();
  r.sink_temp_k = steady[sink_node];
  r.avg_die_temp_k = tracker.avg_die_temperature();
  r.max_activity = tracker.max_activity();
  r.raw_fits = tracker.summary();
  r.run = sim_result.totals;
  r.interval_trace = std::move(samples);
  if (timeline) {
    r.timeline.cell = cell;
    for (const auto s : sim::kAllStructures) {
      r.timeline.temp_names.emplace_back(sim::structure_name(s));
    }
    for (int m = 0; m < core::kNumMechanisms; ++m) {
      r.timeline.fit_names.emplace_back(
          core::mechanism_name(static_cast<core::Mechanism>(m)));
    }
    r.timeline.intervals = timeline->pushed();
    r.timeline.stride = timeline->stride();
    r.timeline.capacity = timeline->capacity();
    r.timeline.points = timeline->points();
    r.incidents = watchdog->incidents();
  }
  if (profile) {
    prof.record_cell_timed(obs::Stage::kTotal, cell, run_start, Clock::now());
  }
  return r;
}

std::vector<AppTechResult> Evaluator::evaluate_app(
    const workloads::Workload& w) const {
  std::vector<AppTechResult> results;
  results.reserve(scaling::kAllTechPoints.size());
  const AppTechResult base = evaluate(w, scaling::TechPoint::k180nm);
  const double sink_target = base.sink_temp_k;
  results.push_back(base);
  for (const auto tech : scaling::kAllTechPoints) {
    if (tech == scaling::TechPoint::k180nm) continue;
    results.push_back(evaluate(w, tech, sink_target));
  }
  return results;
}

}  // namespace ramp::pipeline
