#include "pipeline/evaluator.hpp"

#include <cmath>
#include <functional>

#include "sim/core_config.hpp"
#include "sim/ooo_core.hpp"
#include "thermal/floorplan.hpp"
#include "trace/synthetic_generator.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace ramp::pipeline {

namespace {

// Deterministic per-app seed offset so every benchmark gets an independent
// but reproducible stream.
std::uint64_t app_seed(std::uint64_t base, const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return base ^ h;
}

// Block index (floorplan order) for each structure (StructureId order).
std::array<std::size_t, sim::kNumStructures> block_of_structure(
    const thermal::Floorplan& fp) {
  std::array<std::size_t, sim::kNumStructures> map{};
  for (int s = 0; s < sim::kNumStructures; ++s) {
    map[static_cast<std::size_t>(s)] = fp.index_of(
        std::string(sim::structure_name(static_cast<sim::StructureId>(s))));
  }
  return map;
}

}  // namespace

EvaluationConfig EvaluationConfig::from_env(std::uint64_t trace_len) {
  EvaluationConfig cfg;
  // env_u64 throws InvalidArgument on non-numeric, signed, or overflowing
  // values — a misspelled override must fail loudly, not silently default.
  cfg.trace_instructions = env_u64("RAMP_TRACE_LEN", trace_len);
  RAMP_REQUIRE(cfg.trace_instructions > 0,
               "environment variable RAMP_TRACE_LEN must be positive");
  cfg.seed = env_u64("RAMP_SEED", 42);
  cfg.cache_enabled = env_enabled("RAMP_CACHE");
  return cfg;
}

core::FitSummary scale_summary(const core::FitSummary& raw,
                               const core::MechanismConstants& k) {
  core::FitSummary out = raw;
  for (auto& row : out.by_structure) {
    for (int m = 0; m < core::kNumMechanisms; ++m) {
      row[static_cast<std::size_t>(m)] *= k.get(static_cast<core::Mechanism>(m));
    }
  }
  out.tc_fit *= k.tc;
  return out;
}

Evaluator::Evaluator(EvaluationConfig cfg) : cfg_(std::move(cfg)) {
  RAMP_REQUIRE(cfg_.trace_instructions > 0, "trace length must be positive");
  RAMP_REQUIRE(cfg_.interval_seconds > 0.0, "interval must be positive");
}

AppTechResult Evaluator::evaluate(const workloads::Workload& w,
                                  scaling::TechPoint tech_point,
                                  double sink_target_k) const {
  trace::SyntheticTrace trace_stream(w.profile, cfg_.trace_instructions,
                                     app_seed(cfg_.seed, w.name));
  return evaluate_stream(trace_stream, w.name, w.power_bias, tech_point,
                         sink_target_k);
}

AppTechResult Evaluator::evaluate_stream(trace::TraceReader& stream,
                                         const std::string& label,
                                         double power_bias,
                                         scaling::TechPoint tech_point,
                                         double sink_target_k) const {
  RAMP_REQUIRE(power_bias > 0.0, "power bias must be positive");
  const scaling::TechnologyNode& tech = scaling::node(tech_point);

  // ---- 1. timing simulation -------------------------------------------
  const sim::CoreConfig core_cfg = sim::core_config_for(tech);
  const auto interval_cycles = static_cast<std::uint64_t>(
      std::llround(core_cfg.frequency_hz * cfg_.interval_seconds));
  RAMP_ASSERT(interval_cycles > 0);

  sim::OooCore core(core_cfg);
  const sim::SimResult sim_result = core.run(stream, interval_cycles);
  RAMP_ASSERT(!sim_result.intervals.empty());

  // ---- 2. power / thermal setup ----------------------------------------
  const power::PowerModel pm(cfg_.power, tech);
  const thermal::Floorplan fp =
      thermal::power4_floorplan().scaled(std::sqrt(tech.relative_area));
  thermal::RcNetwork net(fp, cfg_.thermal);
  const auto blk = block_of_structure(fp);
  const std::size_t nblocks = fp.size();

  // Average dynamic power per structure over the whole run — the "first
  // run" of the paper's two-run methodology. The workload's power_bias
  // calibrates per-app energy-per-op to Table 3 (see workloads/spec2k.hpp).
  auto biased_dynamic = [&](const std::array<double, sim::kNumStructures>& act) {
    power::StructurePower p = pm.dynamic_power(act);
    for (double& v : p) v *= power_bias;
    return p;
  };
  const power::StructurePower avg_dyn = biased_dynamic(sim_result.totals.avg_activity);

  // Block powers from structure dynamic power + leakage at block temps.
  auto block_power_at = [&](const power::StructurePower& dyn,
                            const std::vector<double>& block_temps) {
    std::vector<double> p(nblocks, 0.0);
    for (int s = 0; s < sim::kNumStructures; ++s) {
      const auto si = static_cast<std::size_t>(s);
      const double leak = pm.leakage_power(static_cast<sim::StructureId>(s),
                                           block_temps[blk[si]]);
      p[blk[si]] += dyn[si] + leak;
    }
    return p;
  };
  const std::function<std::vector<double>(const std::vector<double>&)>
      avg_power_fn = [&](const std::vector<double>& block_temps) {
        return block_power_at(avg_dyn, block_temps);
      };

  // ---- 3. steady state + sink calibration ------------------------------
  std::vector<double> steady = net.steady_state(avg_power_fn);
  const std::size_t sink_node = nblocks + 1;
  if (sink_target_k > 0.0) {
    // Choose R_convec so the sink settles at the target temperature:
    // R = (T_target − T_amb) / P_total, iterated with the leakage loop.
    RAMP_REQUIRE(sink_target_k > cfg_.thermal.ambient_k,
                 "sink target must exceed ambient");
    for (int it = 0; it < 20; ++it) {
      std::vector<double> block_temps(steady.begin(),
                                      steady.begin() + static_cast<std::ptrdiff_t>(nblocks));
      const std::vector<double> p = avg_power_fn(block_temps);
      double total = 0.0;
      for (double v : p) total += v;
      RAMP_ASSERT(total > 0.0);
      net.set_r_convec((sink_target_k - cfg_.thermal.ambient_k) / total);
      steady = net.steady_state(avg_power_fn);
      if (std::abs(steady[sink_node] - sink_target_k) < 1e-3) break;
    }
  }

  // ---- 4. transient rerun with RAMP attached ----------------------------
  thermal::Transient transient(net, steady, cfg_.interval_seconds);
  const core::RampModel model(tech);  // unit constants => raw FITs
  core::FitTracker tracker(model);

  RunningMean dyn_power_avg;
  RunningMean leak_power_avg;
  std::vector<IntervalSample> samples;
  if (cfg_.record_intervals) samples.reserve(sim_result.intervals.size());
  double elapsed_s = 0.0;

  std::array<double, sim::kNumStructures> struct_temps{};
  for (const auto& iv : sim_result.intervals) {
    const double duration =
        static_cast<double>(iv.cycles) / core_cfg.frequency_hz;

    const power::StructurePower dyn = biased_dynamic(iv.activity);
    const std::vector<double>& temps_now = transient.temperatures();
    std::vector<double> block_temps(temps_now.begin(),
                                    temps_now.begin() + static_cast<std::ptrdiff_t>(nblocks));
    const std::vector<double> bp = block_power_at(dyn, block_temps);
    transient.step(bp);

    double dyn_total = 0.0;
    for (double v : dyn) dyn_total += v;
    double block_total = 0.0;
    for (double v : bp) block_total += v;
    dyn_power_avg.add(dyn_total);
    leak_power_avg.add(block_total - dyn_total);

    for (int s = 0; s < sim::kNumStructures; ++s) {
      const auto si = static_cast<std::size_t>(s);
      struct_temps[si] = transient.temperatures()[blk[si]];
    }
    tracker.add_interval(struct_temps, iv.activity, tech.vdd, duration);
    elapsed_s += duration;

    if (cfg_.record_intervals) {
      IntervalSample sample;
      sample.time_s = elapsed_s;
      for (double t : struct_temps) {
        sample.hottest_temp_k = std::max(sample.hottest_temp_k, t);
      }
      sample.total_power_w = block_total;
      sample.ipc = iv.ipc();
      // Instantaneous per-mechanism raw FIT at this interval's conditions.
      core::FitTracker instant(model);
      instant.add_interval(struct_temps, iv.activity, tech.vdd, duration);
      sample.raw_mechanism_fit = instant.summary().by_mechanism();
      samples.push_back(sample);
    }
  }

  // ---- 5. collect --------------------------------------------------------
  AppTechResult r;
  r.app = label;
  r.tech = tech_point;
  r.ipc = sim_result.totals.ipc();
  r.avg_dynamic_power_w = dyn_power_avg.mean();
  r.avg_leakage_power_w = leak_power_avg.mean();
  r.avg_total_power_w = r.avg_dynamic_power_w + r.avg_leakage_power_w;
  r.max_structure_temp_k = tracker.max_temperature();
  r.sink_temp_k = steady[sink_node];
  r.avg_die_temp_k = tracker.avg_die_temperature();
  r.max_activity = tracker.max_activity();
  r.raw_fits = tracker.summary();
  r.run = sim_result.totals;
  r.interval_trace = std::move(samples);
  return r;
}

std::vector<AppTechResult> Evaluator::evaluate_app(
    const workloads::Workload& w) const {
  std::vector<AppTechResult> results;
  results.reserve(scaling::kAllTechPoints.size());
  const AppTechResult base = evaluate(w, scaling::TechPoint::k180nm);
  const double sink_target = base.sink_temp_k;
  results.push_back(base);
  for (const auto tech : scaling::kAllTechPoints) {
    if (tech == scaling::TechPoint::k180nm) continue;
    results.push_back(evaluate(w, tech, sink_target));
  }
  return results;
}

}  // namespace ramp::pipeline
