#include "pipeline/evaluator.hpp"

#include <chrono>
#include <optional>

#include "obs/span.hpp"
#include "pipeline/stage_graph.hpp"
#include "trace/synthetic_generator.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace ramp::pipeline {

EvaluationConfig EvaluationConfig::from_env(std::uint64_t trace_len) {
  EvaluationConfig cfg;
  // env_u64 throws InvalidArgument on non-numeric, signed, or overflowing
  // values — a misspelled override must fail loudly, not silently default.
  cfg.trace_instructions = env_u64("RAMP_TRACE_LEN", trace_len);
  RAMP_REQUIRE(cfg.trace_instructions > 0,
               "environment variable RAMP_TRACE_LEN must be positive");
  cfg.seed = env_u64("RAMP_SEED", 42);
  cfg.cache_enabled = env_enabled("RAMP_CACHE");
  cfg.metrics_enabled = env_on_off("RAMP_METRICS", true);
  cfg.metrics_path = env_string("RAMP_METRICS_PATH").value_or("");
  const auto timeline = env_on_off_or_value("RAMP_TIMELINE");
  cfg.timeline_enabled = timeline.has_value();
  cfg.timeline_dir = timeline.value_or("");
  cfg.timeline_points = env_u64("RAMP_TIMELINE_POINTS", cfg.timeline_points);
  RAMP_REQUIRE(cfg.timeline_points >= 2,
               "environment variable RAMP_TIMELINE_POINTS must be at least 2");
  cfg.trace_out = env_string("RAMP_TRACE_OUT").value_or("");
  if (const auto temp = env_double("RAMP_WATCHDOG_TEMP_K")) {
    cfg.watchdog.max_temp_k = *temp;
  }
  const auto stage_cache = env_on_off_or_value("RAMP_STAGE_CACHE");
  cfg.stage_cache_enabled = stage_cache.has_value();
  cfg.stage_cache_dir = stage_cache.value_or("");
  if (const auto mode = env_string("RAMP_SIM_MODE")) {
    cfg.sim_mode = sim::parse_sim_mode(*mode);
  }
  cfg.sampled.period = env_u64("RAMP_SIM_PERIOD", cfg.sampled.period);
  cfg.sampled.warmup = env_u64("RAMP_SIM_WARMUP", cfg.sampled.warmup);
  cfg.sampled.measure = env_u64("RAMP_SIM_MEASURE", cfg.sampled.measure);
  cfg.sampled.windows = env_u64("RAMP_SIM_WINDOWS", cfg.sampled.windows);
  cfg.sampled.validate();
  return cfg;
}

sim::SimMode resolved_sim_mode(const EvaluationConfig& cfg) {
  if (cfg.sim_mode != sim::SimMode::kAuto) return cfg.sim_mode;
  // Sampling only pays off — and only meets its ±2% tolerance contract —
  // once the trace is long enough for the regression to see dozens of
  // measurement units past the detailed prefix (see SampledParams).
  constexpr std::uint64_t kAutoSampledThreshold = 1'000'000;
  return cfg.trace_instructions >= kAutoSampledThreshold
             ? sim::SimMode::kSampled
             : sim::SimMode::kDetailed;
}

core::FitSummary scale_summary(const core::FitSummary& raw,
                               const core::MechanismConstants& k) {
  core::FitSummary out = raw;
  for (auto& row : out.by_structure) {
    for (int m = 0; m < core::kNumMechanisms; ++m) {
      row[static_cast<std::size_t>(m)] *= k.get(static_cast<core::Mechanism>(m));
    }
  }
  out.tc_fit *= k.tc;
  return out;
}

Evaluator::Evaluator(EvaluationConfig cfg, std::shared_ptr<StageStore> store)
    : cfg_(std::move(cfg)), store_(std::move(store)) {
  RAMP_REQUIRE(cfg_.trace_instructions > 0, "trace length must be positive");
  RAMP_REQUIRE(cfg_.interval_seconds > 0.0, "interval must be positive");
  if (store_ == nullptr && cfg_.stage_cache_enabled) {
    StageStore::Options opts;
    opts.dir = cfg_.stage_cache_dir;
    store_ = std::make_shared<StageStore>(std::move(opts));
  }
}

AppTechResult Evaluator::evaluate(const workloads::Workload& w,
                                  scaling::TechPoint tech_point,
                                  double sink_target_k) const {
  if (store_ != nullptr) return evaluate_staged(w, tech_point, sink_target_k);

  // kTraceGen covers stream *construction* only: synthesis itself is
  // pull-driven per-instruction inside the simulator, so its cost is
  // accounted to kSim (timing each next() would dwarf the work).
  obs::Span trace_span(
      obs::Stage::kTraceGen,
      w.name + "@" + std::string(scaling::tech_token(tech_point)));
  trace::SyntheticTrace trace_stream(w.profile, cfg_.trace_instructions,
                                     app_trace_seed(cfg_.seed, w.name));
  trace_span.stop();
  return evaluate_stream(trace_stream, w.name, w.power_bias, tech_point,
                         sink_target_k);
}

// Store-backed path: each stage resolves through the shared StageStore under
// its content-addressed key. Upstream stages are pulled lazily, so a
// downstream hit (e.g. the whole fit row) never recomputes — or even looks
// up — anything above it, and a second V/f point at the same (app, node)
// reuses trace and sim outright.
AppTechResult Evaluator::evaluate_staged(const workloads::Workload& w,
                                         scaling::TechPoint tech_point,
                                         double sink_target_k) const {
  const scaling::TechnologyNode& tech = scaling::node(tech_point);
  using Clock = std::chrono::steady_clock;
  obs::Profiler& prof = obs::Profiler::global();
  const bool profile = prof.enabled();
  const std::string cell =
      w.name + "@" + std::string(scaling::tech_token(tech_point));
  const auto run_start = profile ? Clock::now() : Clock::time_point{};

  const TraceStageIn tin{w.name, w.profile, cfg_.trace_instructions, cfg_.seed};
  const StageKey tkey = trace_stage_key(tin);
  const StageKey skey =
      sim_stage_key(tkey, tech.frequency_hz, cfg_.interval_seconds,
                    resolved_sim_mode(cfg_), cfg_.sampled);
  const StageKey pkey = power_stage_key(skey, cfg_.power, w.power_bias, tech);
  const StageKey hkey = thermal_stage_key(pkey, cfg_, tech, sink_target_k);
  const StageKey fkey = fit_stage_key(hkey, tech);

  // Lazy memoized upstream getters: each stage materializes at most once,
  // and only when a downstream miss actually demands it.
  std::optional<SimStageOut> sim_out;
  const auto get_sim = [&]() -> const SimStageOut& {
    if (!sim_out) {
      sim_out = store_->get_or_compute<SimStageOut>(
          StageId::kSim, skey, [&]() -> SimStageOut {
            // Trace stage: resolve the spec through the store first, so
            // trace reuse is visible in the stage counters. The spec *is*
            // the canonical key — synthesis is pull-driven inside the
            // simulator (see Evaluator::evaluate).
            const TraceStageOut spec = store_->get_or_compute<TraceStageOut>(
                StageId::kTrace, tkey,
                [&] { return TraceStageOut{tkey.canonical}; });
            RAMP_ASSERT(spec.spec == tkey.canonical);
            obs::Span trace_span(obs::Stage::kTraceGen, cell);
            trace::SyntheticTrace stream(w.profile, cfg_.trace_instructions,
                                         app_trace_seed(cfg_.seed, w.name));
            trace_span.stop();
            return run_sim_stage(cfg_, tech, stream, cell);
          });
    }
    return *sim_out;
  };
  std::optional<PowerStageOut> power_out;
  const auto get_power = [&]() -> const PowerStageOut& {
    if (!power_out) {
      power_out = store_->get_or_compute<PowerStageOut>(
          StageId::kPower, pkey, [&] {
            return run_power_stage(cfg_, tech, w.power_bias, get_sim().result,
                                   cell);
          });
    }
    return *power_out;
  };
  std::optional<ThermalStageOut> thermal_out;
  const auto get_thermal = [&]() -> const ThermalStageOut& {
    if (!thermal_out) {
      thermal_out = store_->get_or_compute<ThermalStageOut>(
          StageId::kThermal, hkey, [&] {
            return run_thermal_stage(cfg_, tech, sink_target_k, get_power(),
                                     cell);
          });
    }
    return *thermal_out;
  };

  // Fit rows are cached only when they carry no interval trace or timeline
  // (the payload cannot represent those); recorder runs still reuse every
  // upstream stage.
  const bool cache_fit = !cfg_.record_intervals && !cfg_.timeline_enabled;
  AppTechResult r;
  if (cache_fit) {
    r = store_->get_or_compute<AppTechResult>(StageId::kFit, fkey, [&] {
      AppTechResult fresh =
          run_fit_stage(cfg_, tech, get_sim().result, get_power(),
                        get_thermal(), cell);
      fresh.app = w.name;
      fresh.tech = tech_point;
      return fresh;
    });
  } else {
    r = run_fit_stage(cfg_, tech, get_sim().result, get_power(), get_thermal(),
                      cell);
  }
  r.app = w.name;
  r.tech = tech_point;
  if (profile) {
    prof.record_cell_timed(obs::Stage::kTotal, cell, run_start, Clock::now());
  }
  return r;
}

AppTechResult Evaluator::evaluate_stream(trace::TraceReader& stream,
                                         const std::string& label,
                                         double power_bias,
                                         scaling::TechPoint tech_point,
                                         double sink_target_k) const {
  RAMP_REQUIRE(power_bias > 0.0, "power bias must be positive");
  const scaling::TechnologyNode& tech = scaling::node(tech_point);

  // External streams are not content-addressable, so this path never
  // consults the stage store: it is the plain sequential stage chain.
  // Per-stage wall-time attribution happens inside the stage bodies; when
  // the profiler is disabled no clock is ever read on this path.
  using Clock = std::chrono::steady_clock;
  obs::Profiler& prof = obs::Profiler::global();
  const bool profile = prof.enabled();
  const std::string cell =
      label + "@" + std::string(scaling::tech_token(tech_point));
  const auto run_start = profile ? Clock::now() : Clock::time_point{};

  const SimStageOut sim = run_sim_stage(cfg_, tech, stream, cell);
  const PowerStageOut power =
      run_power_stage(cfg_, tech, power_bias, sim.result, cell);
  const ThermalStageOut thermal =
      run_thermal_stage(cfg_, tech, sink_target_k, power, cell);
  AppTechResult r =
      run_fit_stage(cfg_, tech, sim.result, power, thermal, cell);
  r.app = label;
  r.tech = tech_point;
  if (profile) {
    prof.record_cell_timed(obs::Stage::kTotal, cell, run_start, Clock::now());
  }
  return r;
}

std::vector<AppTechResult> Evaluator::evaluate_app(
    const workloads::Workload& w) const {
  std::vector<AppTechResult> results;
  results.reserve(scaling::kAllTechPoints.size());
  const AppTechResult base = evaluate(w, scaling::TechPoint::k180nm);
  const double sink_target = base.sink_temp_k;
  results.push_back(base);
  for (const auto tech : scaling::kAllTechPoints) {
    if (tech == scaling::TechPoint::k180nm) continue;
    results.push_back(evaluate(w, tech, sink_target));
  }
  return results;
}

}  // namespace ramp::pipeline
