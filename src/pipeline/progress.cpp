#include "pipeline/progress.hpp"

#include <cstdio>

#include "pipeline/evaluator.hpp"

namespace ramp::pipeline {

void StderrProgress::on_sweep_begin(std::size_t total_cells, std::size_t jobs) {
  finished_ = 0;
  total_ = total_cells;
  std::fprintf(stderr, "[sweep] %zu cells on %zu worker%s\n", total_cells, jobs,
               jobs == 1 ? "" : "s");
}

void StderrProgress::on_cache_hit(const std::string& cache_path) {
  std::fprintf(stderr, "[sweep] loaded cache %s\n", cache_path.c_str());
}

void StderrProgress::on_cell_finish(const SweepCell& cell,
                                    const AppTechResult& result,
                                    double wall_seconds) {
  ++finished_;
  std::fprintf(stderr,
               "[sweep] %3zu/%zu %-9s %-12s ipc=%.2f power=%.1fW Tmax=%.1fK "
               "(worker %d, %.2fs)\n",
               finished_, total_, cell.app.c_str(),
               std::string(scaling::tech_name(cell.tech)).c_str(), result.ipc,
               result.avg_total_power_w, result.max_structure_temp_k,
               cell.worker_id, wall_seconds);
}

void StderrProgress::on_sweep_end(double wall_seconds) {
  std::fprintf(stderr, "[sweep] done in %.2fs\n", wall_seconds);
}

}  // namespace ramp::pipeline
