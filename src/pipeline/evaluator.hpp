// End-to-end evaluation of one workload on one technology node:
// trace → timing simulation → power → thermal → RAMP.
//
// Implements the paper's methodology (§4):
//  1. Synthesize the workload's trace and run the Turandot-like timing
//     simulator to get per-interval activity factors (§4.1).
//  2. Convert activities to per-structure dynamic power; leakage follows
//     temperature (§4.2).
//  3. Two-run HotSpot methodology (§4.3): a steady-state solve from average
//     power pins the heat-sink temperature (with the leakage fixed point),
//     then a 1 µs-step transient rerun produces structure temperatures.
//     When scaling, the sink-to-ambient resistance is adjusted so each
//     application keeps its 180 nm heat-sink temperature.
//  4. RAMP computes instantaneous per-structure FIT values each interval
//     and keeps the running average (§4.4). Results here are *raw* (unit
//     proportionality constants); qualification rescales them (see sweep).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fit_tracker.hpp"
#include "obs/timeline.hpp"
#include "power/power_model.hpp"
#include "scaling/technology.hpp"
#include "sim/interval_stats.hpp"
#include "sim/sim_mode.hpp"
#include "thermal/rc_model.hpp"
#include "workloads/spec2k.hpp"

namespace ramp::pipeline {

struct EvaluationConfig {
  std::uint64_t trace_instructions = 300'000;
  std::uint64_t seed = 42;             ///< base RNG seed (per-app offsets added)
  double interval_seconds = 1e-6;      ///< RAMP/HotSpot granularity (§4.3/4.4)
  power::PowerModelConfig power{};
  thermal::ThermalConfig thermal{};
  /// When true, AppTechResult::interval_trace records the per-interval
  /// transient (time, hottest temp, power, instantaneous FIT).
  bool record_intervals = false;
  /// Whether the sweep may read/write its on-disk result cache. Does not
  /// affect results, so it is excluded from config_hash.
  bool cache_enabled = true;
  /// Mirror of the RAMP_METRICS switch (the obs registry/profiler read the
  /// variable themselves; this copy lets callers branch without re-parsing).
  /// Excluded from config_hash — metrics never affect results.
  bool metrics_enabled = true;
  /// Default destination for a metrics dump (RAMP_METRICS_PATH); empty means
  /// "stderr when requested". Excluded from config_hash.
  std::string metrics_path;
  /// Flight recorder: when true, AppTechResult::timeline carries the bounded
  /// per-interval physics sketch and the watchdog checks every interval.
  /// Recording never changes results, so all timeline/watchdog fields are
  /// excluded from config_hash. Defaults keep the PR 3 invariant: disabled
  /// means zero extra clock reads and byte-identical sweep output.
  bool timeline_enabled = false;
  /// Timeline point budget per cell (stride-doubling ring; >= 2).
  std::uint64_t timeline_points = 512;
  /// Default export directory for `--timeline` (RAMP_TIMELINE=DIR); empty
  /// means "<out-dir>/timeline" at the CLI layer.
  std::string timeline_dir;
  /// Default `--trace-out` destination (RAMP_TRACE_OUT); empty = disabled.
  std::string trace_out;
  /// Anomaly rules the watchdog applies when the timeline is enabled.
  obs::WatchdogRules watchdog{};
  /// Content-addressed per-stage memoization (see stage_graph.hpp). When
  /// true, an Evaluator constructed without an explicit StageStore creates
  /// its own; stage outputs are reused across evaluations whose stage keys
  /// match. Caching never changes results (staged output is byte-identical
  /// to the monolithic path), so both fields are excluded from config_hash.
  bool stage_cache_enabled = false;
  /// Persist directory for the stage store; empty = in-memory only. At the
  /// CLI layer a bare `--stage-cache` means "<out-dir>/stage_cache".
  std::string stage_cache_dir;
  /// Timing-simulation mode (see sim/sim_mode.hpp): detailed cycle-accurate
  /// OooCore (default), SMARTS-style sampled, the analytical interval
  /// model, or auto (resolved per run by resolved_sim_mode()). Fast modes
  /// change sim-stage results, so the *resolved* mode and its sampling
  /// parameters join config_hash / the sim stage key whenever it is not
  /// detailed — the detailed hash and `sim.v1` key stay frozen, keeping
  /// warm caches valid and default output byte-identical.
  sim::SimMode sim_mode = sim::SimMode::kDetailed;
  /// Sampling parameters for sampled mode (ignored by other modes).
  sim::SampledParams sampled{};

  /// The single place the environment overrides are read:
  ///   RAMP_TRACE_LEN     instructions per synthetic trace (default `trace_len`)
  ///   RAMP_SEED          base RNG seed (default 42)
  ///   RAMP_CACHE=off     disable the sweep cache (default on)
  ///   RAMP_METRICS       strict on/off switch for the obs subsystem
  ///   RAMP_METRICS_PATH  where `--metrics` dumps land by default
  ///   RAMP_TIMELINE      off (default) / on / a directory to export into
  ///   RAMP_TIMELINE_POINTS  per-cell point budget (default 512, >= 2)
  ///   RAMP_TRACE_OUT     default Chrome-trace output file
  ///   RAMP_WATCHDOG_TEMP_K  over-temperature trip point (Kelvin)
  ///   RAMP_STAGE_CACHE   off (default) / on (in-memory) / a persist directory
  ///   RAMP_SIM_MODE      detailed (default) / sampled / interval / auto
  ///   RAMP_SIM_PERIOD    sampled: instructions per sampling period
  ///   RAMP_SIM_WARMUP    sampled: detailed warm-up instructions per unit
  ///   RAMP_SIM_MEASURE   sampled: instructions per measurement window
  ///   RAMP_SIM_WINDOWS   sampled: measurement windows per unit
  /// All other fields keep their defaults. Malformed values (non-numeric,
  /// signed, overflowing, a zero trace length, an unknown RAMP_SIM_MODE, or
  /// a RAMP_METRICS value that is not a recognised on/off spelling) throw
  /// InvalidArgument instead of being silently replaced by the default.
  static EvaluationConfig from_env(std::uint64_t trace_len = 300'000);
};

/// The concrete mode `auto` resolves to for this config: detailed below
/// 1M trace instructions (where sampling neither pays off nor meets its
/// ±2% tolerance contract), sampled from 1M up. Non-auto modes resolve
/// to themselves; `auto` never resolves to interval. Resolution happens
/// *before* hashing/keying, so an auto config with a long trace caches
/// under the sampled key.
sim::SimMode resolved_sim_mode(const EvaluationConfig& cfg);

/// One recorded transient sample (record_intervals = true).
struct IntervalSample {
  double time_s = 0.0;
  double hottest_temp_k = 0.0;
  double total_power_w = 0.0;
  /// Instantaneous per-mechanism FIT with unit proportionality constants;
  /// apply qualification constants before aggregating across mechanisms
  /// (raw magnitudes are not comparable between mechanisms).
  std::array<double, core::kNumMechanisms> raw_mechanism_fit{};
  double ipc = 0.0;

  /// Qualified instantaneous total under the given constants.
  double qualified_total(const core::MechanismConstants& k) const {
    double total = 0.0;
    for (int m = 0; m < core::kNumMechanisms; ++m) {
      total += raw_mechanism_fit[static_cast<std::size_t>(m)] *
               k.get(static_cast<core::Mechanism>(m));
    }
    return total;
  }
};

/// Everything measured for one (application, technology) pair.
struct AppTechResult {
  std::string app;
  scaling::TechPoint tech = scaling::TechPoint::k180nm;

  // Performance.
  double ipc = 0.0;

  // Power (time-averaged over the transient run, Watts).
  double avg_dynamic_power_w = 0.0;
  double avg_leakage_power_w = 0.0;
  double avg_total_power_w = 0.0;

  // Temperatures (Kelvin).
  double max_structure_temp_k = 0.0;  ///< hottest structure, any interval
  double sink_temp_k = 0.0;           ///< steady-state heat-sink temperature
  double avg_die_temp_k = 0.0;        ///< area-weighted, time-averaged

  // Worst-case inputs.
  double max_activity = 0.0;

  /// Raw FIT summary (proportionality constants = 1). Scale with the
  /// qualification constants for absolute FIT.
  core::FitSummary raw_fits;

  sim::RunStats run;

  /// Transient time-series (empty unless EvaluationConfig::record_intervals).
  std::vector<IntervalSample> interval_trace;

  /// Flight-recorder sketch (empty unless EvaluationConfig::timeline_enabled).
  /// The final point's fit_avg equals raw_fits.by_mechanism() exactly.
  obs::CellTimeline timeline;
  /// Watchdog incidents tripped during this evaluation (timeline mode only).
  std::vector<obs::Incident> incidents;
};

/// Scales a raw summary by qualification constants (FIT is linear in them).
core::FitSummary scale_summary(const core::FitSummary& raw,
                               const core::MechanismConstants& k);

class StageStore;

class Evaluator {
 public:
  /// When `store` is null and `cfg.stage_cache_enabled` is set, the
  /// evaluator creates a private StageStore from the config's stage-cache
  /// fields; pass a shared store to reuse stage outputs across evaluators
  /// (SweepRunner and serve::EvalService do).
  explicit Evaluator(EvaluationConfig cfg,
                     std::shared_ptr<StageStore> store = nullptr);

  /// Evaluates `w` at `tech`. When `sink_target_k > 0`, the sink-to-ambient
  /// resistance is calibrated so the steady-state sink temperature equals
  /// the target (the paper's constant-sink-temperature scaling rule);
  /// otherwise the base 0.8 K/W resistance is used as-is.
  AppTechResult evaluate(const workloads::Workload& w, scaling::TechPoint tech,
                         double sink_target_k = 0.0) const;

  /// Evaluates `w` at every node: 180 nm first (pinning the app's sink
  /// temperature), then each scaled node holding that sink temperature.
  std::vector<AppTechResult> evaluate_app(const workloads::Workload& w) const;

  /// Evaluates an arbitrary instruction stream (file replay, phased trace,
  /// external tooling) instead of a named workload's synthetic trace.
  /// `label` names the result; `power_bias` calibrates per-app dynamic
  /// energy (1.0 when unknown).
  AppTechResult evaluate_stream(trace::TraceReader& stream,
                                const std::string& label, double power_bias,
                                scaling::TechPoint tech,
                                double sink_target_k = 0.0) const;

  const EvaluationConfig& config() const { return cfg_; }

  /// The stage store evaluations schedule against (null = memoization off).
  const std::shared_ptr<StageStore>& stage_store() const { return store_; }

 private:
  AppTechResult evaluate_staged(const workloads::Workload& w,
                                scaling::TechPoint tech,
                                double sink_target_k) const;

  EvaluationConfig cfg_;
  std::shared_ptr<StageStore> store_;
};

}  // namespace ramp::pipeline
