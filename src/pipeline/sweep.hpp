// Full-suite sweep: every workload × every technology node, qualified.
//
// Runs the Evaluator over the 16-benchmark suite at all five nodes,
// performs 180 nm reliability qualification (§4.4), and derives the
// aggregates the paper's figures report: qualified per-app FIT values,
// suite averages with per-mechanism breakdown, and the worst-case ("max")
// operating-condition curves of §5.2/§5.3.
//
// Because a sweep is the expensive step shared by every bench binary, the
// result can be persisted to / restored from a small CSV cache keyed by a
// hash of the configuration (set RAMP_CACHE=off to disable).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pipeline/evaluator.hpp"

namespace ramp::pipeline {

struct SweepResult {
  EvaluationConfig config;
  std::vector<AppTechResult> results;       ///< app-major, tech-minor order
  core::MechanismConstants constants;       ///< 180 nm qualification output

  /// Lookup one (app, tech) cell; throws InvalidArgument when absent.
  const AppTechResult& at(const std::string& app, scaling::TechPoint tech) const;

  /// Qualified (absolute) FIT summary for one cell.
  core::FitSummary qualified_fits(const AppTechResult& r) const;

  /// Worst-case FIT summary at `tech`: the highest structure temperature
  /// and activity factor observed across all apps at that node, assumed for
  /// the entire run (paper §5.2).
  core::FitSummary worst_case(scaling::TechPoint tech) const;

  /// Apps of `suite` at `tech`, Table 3 order.
  std::vector<const AppTechResult*> cells(workloads::Suite suite,
                                          scaling::TechPoint tech) const;

  /// Suite-average qualified total FIT at `tech`.
  double average_total_fit(workloads::Suite suite, scaling::TechPoint tech) const;

  /// Suite-average qualified FIT of one mechanism at `tech`.
  double average_mechanism_fit(workloads::Suite suite, scaling::TechPoint tech,
                               core::Mechanism m) const;

  /// Average over *all* apps of the qualified total FIT at `tech`.
  double average_total_fit_all(scaling::TechPoint tech) const;
};

/// Runs the full sweep (or loads it from `cache_path` when the cached
/// config hash matches). Progress lines go to stderr when `verbose`.
SweepResult run_sweep(const EvaluationConfig& cfg,
                      const std::string& cache_path = "ramp_sweep_cache.csv",
                      bool verbose = true);

/// Serialization used by the cache (exposed for tests).
std::string sweep_to_csv(const SweepResult& sweep);
std::optional<SweepResult> sweep_from_csv(const std::string& csv,
                                          const EvaluationConfig& expect_cfg);

/// Hash of every config field that affects results.
std::uint64_t config_hash(const EvaluationConfig& cfg);

}  // namespace ramp::pipeline
