// Full-suite sweep: every workload × every technology node, qualified.
//
// Runs the Evaluator over the 16-benchmark suite at all five nodes,
// performs 180 nm reliability qualification (§4.4), and derives the
// aggregates the paper's figures report: qualified per-app FIT values,
// suite averages with per-mechanism breakdown, and the worst-case ("max")
// operating-condition curves of §5.2/§5.3.
//
// Because a sweep is the expensive step shared by every bench binary, the
// result can be persisted to / restored from a small CSV cache keyed by a
// hash of the configuration (set RAMP_CACHE=off to disable).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pipeline/evaluator.hpp"
#include "pipeline/progress.hpp"

namespace ramp {
class ThreadPool;
}

namespace ramp::pipeline {

class StageStore;

/// Default sweep-cache location: "ramp_sweep_cache.csv" under the artifact
/// output directory ($RAMP_OUT_DIR, "out" when unset) — resolved at call
/// time like every other artifact, never relative to the CWD.
std::string default_sweep_cache_path();

struct SweepResult {
  EvaluationConfig config;
  std::vector<AppTechResult> results;       ///< app-major, tech-minor order
  core::MechanismConstants constants;       ///< 180 nm qualification output

  /// Lookup one (app, tech) cell; throws InvalidArgument when absent.
  const AppTechResult& at(const std::string& app, scaling::TechPoint tech) const;

  /// Qualified (absolute) FIT summary for one cell.
  core::FitSummary qualified_fits(const AppTechResult& r) const;

  /// Worst-case FIT summary at `tech`: the highest structure temperature
  /// and activity factor observed across all apps at that node, assumed for
  /// the entire run (paper §5.2).
  core::FitSummary worst_case(scaling::TechPoint tech) const;

  /// Apps of `suite` at `tech`, Table 3 order.
  std::vector<const AppTechResult*> cells(workloads::Suite suite,
                                          scaling::TechPoint tech) const;

  /// Suite-average qualified total FIT at `tech`.
  double average_total_fit(workloads::Suite suite, scaling::TechPoint tech) const;

  /// Suite-average qualified FIT of one mechanism at `tech`.
  double average_mechanism_fit(workloads::Suite suite, scaling::TechPoint tech,
                               core::Mechanism m) const;

  /// Average over *all* apps of the qualified total FIT at `tech`.
  double average_total_fit_all(scaling::TechPoint tech) const;
};

/// Executes the full study — every workload × every technology node plus
/// 180 nm qualification — on a dependency-aware parallel engine.
///
/// Per application, the 180 nm cell runs first (it pins that app's heat-sink
/// temperature); the four scaled-node cells then fan out as dependent tasks.
/// Independent applications proceed concurrently, so with `jobs` workers up
/// to `jobs` cells are in flight. Results are merged in canonical app-major,
/// tech-minor order and qualification runs once every 180 nm cell is done,
/// which makes the result — including `sweep_to_csv` serialization —
/// **bitwise identical** to a serial sweep at any job count.
///
/// The on-disk cache (see EvaluationConfig::cache_enabled) is read and
/// written atomically: concurrent processes sharing one `cache_path` never
/// observe a torn file.
class SweepRunner {
 public:
  struct Options {
    std::size_t jobs = 1;                 ///< pool size when owning
    /// Sweep result cache; "" disables caching. Defaults under RAMP_OUT_DIR
    /// (see default_sweep_cache_path).
    std::string cache_path = default_sweep_cache_path();
    ProgressObserver* observer = nullptr; ///< nullptr → silent
    /// Reuse an externally owned pool (e.g. across several sweeps in one
    /// process) instead of creating one per run; overrides `jobs`.
    ThreadPool* pool = nullptr;
    /// Shared per-stage memoization store every cell schedules against
    /// (see stage_graph.hpp). Null: the runner creates one itself when
    /// cfg.stage_cache_enabled, so same-frequency cells share sim outputs
    /// within the sweep; otherwise stage caching is off.
    std::shared_ptr<StageStore> stage_store;
  };

  explicit SweepRunner(EvaluationConfig cfg)
      : SweepRunner(std::move(cfg), Options{}) {}
  SweepRunner(EvaluationConfig cfg, Options opts);

  /// Runs the sweep (or answers it from the cache). Exceptions thrown by any
  /// cell are re-thrown here, after all in-flight cells have drained.
  SweepResult run() const;

  const EvaluationConfig& config() const { return cfg_; }
  const Options& options() const { return opts_; }

 private:
  SweepResult execute(ThreadPool& pool) const;

  EvaluationConfig cfg_;
  Options opts_;
};

/// Serialization used by the cache (exposed for tests).
std::string sweep_to_csv(const SweepResult& sweep);
std::optional<SweepResult> sweep_from_csv(const std::string& csv,
                                          const EvaluationConfig& expect_cfg);

/// One AppTechResult as a single CSV row (no trailing newline) — the row
/// format of sweep_to_csv, reused by the serve layer's persistent result
/// cache. Callers set the stream to round-trip precision (17 digits).
void write_result_row(std::ostream& out, const AppTechResult& r);

/// Parses one write_result_row line; nullopt when malformed or truncated.
std::optional<AppTechResult> parse_result_row(const std::string& line);

/// Hash of every config field that affects results.
std::uint64_t config_hash(const EvaluationConfig& cfg);

/// Canonical one-line, human-readable rendering of every result-affecting
/// config field (the fields config_hash covers, in the same order) — stored
/// in persistent cache headers so stale entries are explainable.
std::string canonical_config(const EvaluationConfig& cfg);

}  // namespace ramp::pipeline
