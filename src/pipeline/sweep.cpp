#include "pipeline/sweep.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/qualification.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace ramp::pipeline {

namespace {

int tech_index(scaling::TechPoint p) {
  for (std::size_t i = 0; i < scaling::kAllTechPoints.size(); ++i) {
    if (scaling::kAllTechPoints[i] == p) return static_cast<int>(i);
  }
  throw InvalidArgument("unknown technology point");
}

void hash_mix(std::uint64_t& h, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  h ^= bits + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

}  // namespace

const AppTechResult& SweepResult::at(const std::string& app,
                                     scaling::TechPoint tech) const {
  for (const auto& r : results) {
    if (r.app == app && r.tech == tech) return r;
  }
  throw InvalidArgument("no sweep cell for " + app);
}

core::FitSummary SweepResult::qualified_fits(const AppTechResult& r) const {
  return scale_summary(r.raw_fits, constants);
}

core::FitSummary SweepResult::worst_case(scaling::TechPoint tech) const {
  double max_temp = 0.0;
  double max_act = 0.0;
  bool any = false;
  for (const auto& r : results) {
    if (r.tech != tech) continue;
    max_temp = std::max(max_temp, r.max_structure_temp_k);
    max_act = std::max(max_act, r.max_activity);
    any = true;
  }
  RAMP_REQUIRE(any, "no results at the requested node");
  const core::RampModel model(scaling::node(tech), constants);
  return core::steady_state_summary(model, max_temp, max_act,
                                    scaling::node(tech).vdd);
}

std::vector<const AppTechResult*> SweepResult::cells(
    workloads::Suite suite, scaling::TechPoint tech) const {
  std::vector<const AppTechResult*> out;
  for (const auto& w : workloads::suite_workloads(suite)) {
    out.push_back(&at(w.name, tech));
  }
  return out;
}

double SweepResult::average_total_fit(workloads::Suite suite,
                                      scaling::TechPoint tech) const {
  const auto suite_cells = cells(suite, tech);
  double sum = 0.0;
  for (const auto* r : suite_cells) sum += qualified_fits(*r).total();
  return sum / static_cast<double>(suite_cells.size());
}

double SweepResult::average_mechanism_fit(workloads::Suite suite,
                                          scaling::TechPoint tech,
                                          core::Mechanism m) const {
  const auto suite_cells = cells(suite, tech);
  double sum = 0.0;
  for (const auto* r : suite_cells) {
    sum += qualified_fits(*r).by_mechanism()[static_cast<std::size_t>(m)];
  }
  return sum / static_cast<double>(suite_cells.size());
}

double SweepResult::average_total_fit_all(scaling::TechPoint tech) const {
  double sum = 0.0;
  int n = 0;
  for (const auto& r : results) {
    if (r.tech != tech) continue;
    sum += qualified_fits(r).total();
    ++n;
  }
  RAMP_REQUIRE(n > 0, "no results at the requested node");
  return sum / n;
}

std::uint64_t config_hash(const EvaluationConfig& cfg) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  hash_mix(h, static_cast<double>(cfg.trace_instructions));
  hash_mix(h, static_cast<double>(cfg.seed));
  hash_mix(h, cfg.interval_seconds);
  for (double w : cfg.power.unconstrained_w_180nm) hash_mix(h, w);
  hash_mix(h, cfg.power.clock_gating_floor);
  hash_mix(h, cfg.power.leakage_beta);
  hash_mix(h, cfg.power.leakage_ref_temp);
  hash_mix(h, cfg.power.base_core_area_mm2);
  hash_mix(h, cfg.thermal.ambient_k);
  hash_mix(h, cfg.thermal.r_convec_k_per_w);
  hash_mix(h, cfg.thermal.r_vertical_specific);
  hash_mix(h, cfg.thermal.r_spreader_sink);
  hash_mix(h, cfg.thermal.k_silicon);
  hash_mix(h, cfg.thermal.die_thickness);
  hash_mix(h, cfg.thermal.c_silicon);
  hash_mix(h, cfg.thermal.spreader_capacitance);
  hash_mix(h, cfg.thermal.sink_capacitance);
  return h;
}

std::string sweep_to_csv(const SweepResult& sweep) {
  std::ostringstream out;
  out.precision(17);
  out << "# ramp_sweep_cache v1 hash=" << config_hash(sweep.config) << "\n";
  out << "# constants em=" << sweep.constants.em << " sm=" << sweep.constants.sm
      << " tddb=" << sweep.constants.tddb << " tc=" << sweep.constants.tc << "\n";
  for (const auto& r : sweep.results) {
    out << r.app << ',' << tech_index(r.tech) << ',' << r.ipc << ','
        << r.avg_dynamic_power_w << ',' << r.avg_leakage_power_w << ','
        << r.avg_total_power_w << ',' << r.max_structure_temp_k << ','
        << r.sink_temp_k << ',' << r.avg_die_temp_k << ',' << r.max_activity
        << ',' << r.raw_fits.tc_fit;
    for (const auto& row : r.raw_fits.by_structure) {
      for (double v : row) out << ',' << v;
    }
    out << ',' << r.run.cycles << ',' << r.run.instructions << ','
        << r.run.branches << ',' << r.run.branch_mispredicts << ','
        << r.run.l1d_accesses << ',' << r.run.l1d_misses << ','
        << r.run.l2_accesses << ',' << r.run.l2_misses << ','
        << r.run.l1i_misses;
    for (double a : r.run.avg_activity) out << ',' << a;
    out << '\n';
  }
  return out.str();
}

std::optional<SweepResult> sweep_from_csv(const std::string& csv,
                                          const EvaluationConfig& expect_cfg) {
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  {
    std::uint64_t hash = 0;
    if (std::sscanf(line.c_str(), "# ramp_sweep_cache v1 hash=%llu",
                    reinterpret_cast<unsigned long long*>(&hash)) != 1) {
      return std::nullopt;
    }
    if (hash != config_hash(expect_cfg)) return std::nullopt;
  }
  SweepResult sweep;
  sweep.config = expect_cfg;
  if (!std::getline(in, line)) return std::nullopt;
  if (std::sscanf(line.c_str(), "# constants em=%lf sm=%lf tddb=%lf tc=%lf",
                  &sweep.constants.em, &sweep.constants.sm,
                  &sweep.constants.tddb, &sweep.constants.tc) != 4) {
    return std::nullopt;
  }

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    auto next = [&]() -> std::string {
      if (!std::getline(row, cell, ',')) {
        throw InvalidArgument("truncated sweep cache row");
      }
      return cell;
    };
    try {
      AppTechResult r;
      r.app = next();
      r.tech = scaling::kAllTechPoints.at(static_cast<std::size_t>(std::stoi(next())));
      r.ipc = std::stod(next());
      r.avg_dynamic_power_w = std::stod(next());
      r.avg_leakage_power_w = std::stod(next());
      r.avg_total_power_w = std::stod(next());
      r.max_structure_temp_k = std::stod(next());
      r.sink_temp_k = std::stod(next());
      r.avg_die_temp_k = std::stod(next());
      r.max_activity = std::stod(next());
      r.raw_fits.tc_fit = std::stod(next());
      for (auto& srow : r.raw_fits.by_structure) {
        for (double& v : srow) v = std::stod(next());
      }
      r.run.cycles = std::stoull(next());
      r.run.instructions = std::stoull(next());
      r.run.branches = std::stoull(next());
      r.run.branch_mispredicts = std::stoull(next());
      r.run.l1d_accesses = std::stoull(next());
      r.run.l1d_misses = std::stoull(next());
      r.run.l2_accesses = std::stoull(next());
      r.run.l2_misses = std::stoull(next());
      r.run.l1i_misses = std::stoull(next());
      for (double& a : r.run.avg_activity) a = std::stod(next());
      sweep.results.push_back(std::move(r));
    } catch (const std::exception&) {
      return std::nullopt;  // malformed cache — recompute
    }
  }
  const std::size_t expected =
      workloads::spec2k_suite().size() * scaling::kAllTechPoints.size();
  if (sweep.results.size() != expected) return std::nullopt;
  return sweep;
}

SweepResult run_sweep(const EvaluationConfig& cfg, const std::string& cache_path,
                      bool verbose) {
  const bool use_cache = env_enabled("RAMP_CACHE") && !cache_path.empty();
  if (use_cache) {
    std::ifstream f(cache_path);
    if (f) {
      std::ostringstream buf;
      buf << f.rdbuf();
      if (auto cached = sweep_from_csv(buf.str(), cfg)) {
        if (verbose) {
          std::fprintf(stderr, "[sweep] loaded cache %s\n", cache_path.c_str());
        }
        return *cached;
      }
    }
  }

  SweepResult sweep;
  sweep.config = cfg;
  const Evaluator evaluator(cfg);
  std::vector<core::FitSummary> raw_180;
  for (const auto& w : workloads::spec2k_suite()) {
    if (verbose) std::fprintf(stderr, "[sweep] %-9s ", w.name.c_str());
    auto app_results = evaluator.evaluate_app(w);
    for (const auto& r : app_results) {
      if (r.tech == scaling::TechPoint::k180nm) raw_180.push_back(r.raw_fits);
    }
    if (verbose) {
      const auto& base = app_results.front();
      std::fprintf(stderr, "ipc=%.2f power=%.1fW Tmax=%.1fK\n", base.ipc,
                   base.avg_total_power_w, base.max_structure_temp_k);
    }
    for (auto& r : app_results) sweep.results.push_back(std::move(r));
  }

  sweep.constants = core::qualify(raw_180);

  if (use_cache) {
    std::ofstream f(cache_path);
    if (f) f << sweep_to_csv(sweep);
  }
  return sweep;
}

}  // namespace ramp::pipeline
