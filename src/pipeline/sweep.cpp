#include "pipeline/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <future>
#include <mutex>
#include <sstream>

#include <unistd.h>

#include "core/qualification.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "pipeline/stage_graph.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/hashing.hpp"
#include "util/thread_pool.hpp"

namespace ramp::pipeline {

namespace {

int tech_index(scaling::TechPoint p) {
  for (std::size_t i = 0; i < scaling::kAllTechPoints.size(); ++i) {
    if (scaling::kAllTechPoints[i] == p) return static_cast<int>(i);
  }
  throw InvalidArgument("unknown technology point");
}

}  // namespace

std::string default_sweep_cache_path() {
  return (std::filesystem::path(output_dir()) / "ramp_sweep_cache.csv")
      .string();
}

const AppTechResult& SweepResult::at(const std::string& app,
                                     scaling::TechPoint tech) const {
  for (const auto& r : results) {
    if (r.app == app && r.tech == tech) return r;
  }
  throw InvalidArgument("no sweep cell for " + app);
}

core::FitSummary SweepResult::qualified_fits(const AppTechResult& r) const {
  return scale_summary(r.raw_fits, constants);
}

core::FitSummary SweepResult::worst_case(scaling::TechPoint tech) const {
  double max_temp = 0.0;
  double max_act = 0.0;
  bool any = false;
  for (const auto& r : results) {
    if (r.tech != tech) continue;
    max_temp = std::max(max_temp, r.max_structure_temp_k);
    max_act = std::max(max_act, r.max_activity);
    any = true;
  }
  RAMP_REQUIRE(any, "no results at the requested node");
  const core::RampModel model(scaling::node(tech), constants);
  return core::steady_state_summary(model, max_temp, max_act,
                                    scaling::node(tech).vdd);
}

std::vector<const AppTechResult*> SweepResult::cells(
    workloads::Suite suite, scaling::TechPoint tech) const {
  std::vector<const AppTechResult*> out;
  for (const auto& w : workloads::suite_workloads(suite)) {
    out.push_back(&at(w.name, tech));
  }
  return out;
}

double SweepResult::average_total_fit(workloads::Suite suite,
                                      scaling::TechPoint tech) const {
  const auto suite_cells = cells(suite, tech);
  double sum = 0.0;
  for (const auto* r : suite_cells) sum += qualified_fits(*r).total();
  return sum / static_cast<double>(suite_cells.size());
}

double SweepResult::average_mechanism_fit(workloads::Suite suite,
                                          scaling::TechPoint tech,
                                          core::Mechanism m) const {
  const auto suite_cells = cells(suite, tech);
  double sum = 0.0;
  for (const auto* r : suite_cells) {
    sum += qualified_fits(*r).by_mechanism()[static_cast<std::size_t>(m)];
  }
  return sum / static_cast<double>(suite_cells.size());
}

double SweepResult::average_total_fit_all(scaling::TechPoint tech) const {
  double sum = 0.0;
  int n = 0;
  for (const auto& r : results) {
    if (r.tech != tech) continue;
    sum += qualified_fits(r).total();
    ++n;
  }
  RAMP_REQUIRE(n > 0, "no results at the requested node");
  return sum / n;
}

std::uint64_t config_hash(const EvaluationConfig& cfg) {
  // The mixing order is frozen: changing it invalidates every on-disk cache.
  // trace_instructions/seed go through double for compatibility with the
  // original hash (both are far below 2^53 in practice).
  Fnv64 h;
  h.mix(static_cast<double>(cfg.trace_instructions));
  h.mix(static_cast<double>(cfg.seed));
  h.mix(cfg.interval_seconds);
  for (double w : cfg.power.unconstrained_w_180nm) h.mix(w);
  h.mix(cfg.power.clock_gating_floor);
  h.mix(cfg.power.leakage_beta);
  h.mix(cfg.power.leakage_ref_temp);
  h.mix(cfg.power.base_core_area_mm2);
  h.mix(cfg.thermal.ambient_k);
  h.mix(cfg.thermal.r_convec_k_per_w);
  h.mix(cfg.thermal.r_vertical_specific);
  h.mix(cfg.thermal.r_spreader_sink);
  h.mix(cfg.thermal.k_silicon);
  h.mix(cfg.thermal.die_thickness);
  h.mix(cfg.thermal.c_silicon);
  h.mix(cfg.thermal.spreader_capacitance);
  h.mix(cfg.thermal.sink_capacitance);
  // Fast sim modes change sim-stage results, so the *resolved* mode joins
  // the hash — but only then: a detailed config (including auto resolving
  // to detailed) hashes exactly as before, keeping existing sweep caches
  // valid.
  const sim::SimMode mode = resolved_sim_mode(cfg);
  if (mode != sim::SimMode::kDetailed) {
    h.mix(std::uint64_t{0x73696d5f6d6f6465});  // "sim_mode" domain separator
    h.mix(static_cast<std::uint64_t>(mode));
    if (mode == sim::SimMode::kSampled) {
      h.mix(cfg.sampled.period);
      h.mix(cfg.sampled.warmup);
      h.mix(cfg.sampled.measure);
      h.mix(cfg.sampled.windows);
    }
  }
  return h.value();
}

std::string canonical_config(const EvaluationConfig& cfg) {
  std::ostringstream out;
  out.precision(17);
  out << "trace=" << cfg.trace_instructions << ";seed=" << cfg.seed
      << ";interval=" << cfg.interval_seconds << ";power=";
  for (double w : cfg.power.unconstrained_w_180nm) out << w << ',';
  out << cfg.power.clock_gating_floor << ',' << cfg.power.leakage_beta << ','
      << cfg.power.leakage_ref_temp << ',' << cfg.power.base_core_area_mm2
      << ";thermal=" << cfg.thermal.ambient_k << ','
      << cfg.thermal.r_convec_k_per_w << ',' << cfg.thermal.r_vertical_specific
      << ',' << cfg.thermal.r_spreader_sink << ',' << cfg.thermal.k_silicon
      << ',' << cfg.thermal.die_thickness << ',' << cfg.thermal.c_silicon
      << ',' << cfg.thermal.spreader_capacitance << ','
      << cfg.thermal.sink_capacitance;
  // Appended only for fast modes so detailed strings stay byte-identical.
  const sim::SimMode mode = resolved_sim_mode(cfg);
  if (mode != sim::SimMode::kDetailed) {
    out << ";sim_mode=" << sim::sim_mode_name(mode);
    if (mode == sim::SimMode::kSampled) {
      out << ";period=" << cfg.sampled.period << ";warmup=" << cfg.sampled.warmup
          << ";measure=" << cfg.sampled.measure
          << ";windows=" << cfg.sampled.windows;
    }
  }
  return out.str();
}

void write_result_row(std::ostream& out, const AppTechResult& r) {
  out << r.app << ',' << tech_index(r.tech) << ',' << r.ipc << ','
      << r.avg_dynamic_power_w << ',' << r.avg_leakage_power_w << ','
      << r.avg_total_power_w << ',' << r.max_structure_temp_k << ','
      << r.sink_temp_k << ',' << r.avg_die_temp_k << ',' << r.max_activity
      << ',' << r.raw_fits.tc_fit;
  for (const auto& row : r.raw_fits.by_structure) {
    for (double v : row) out << ',' << v;
  }
  out << ',' << r.run.cycles << ',' << r.run.instructions << ','
      << r.run.branches << ',' << r.run.branch_mispredicts << ','
      << r.run.l1d_accesses << ',' << r.run.l1d_misses << ','
      << r.run.l2_accesses << ',' << r.run.l2_misses << ','
      << r.run.l1i_misses;
  for (double a : r.run.avg_activity) out << ',' << a;
}

std::optional<AppTechResult> parse_result_row(const std::string& line) {
  std::istringstream row(line);
  std::string cell;
  auto next = [&]() -> std::string {
    if (!std::getline(row, cell, ',')) {
      throw InvalidArgument("truncated result row");
    }
    return cell;
  };
  try {
    AppTechResult r;
    r.app = next();
    r.tech = scaling::kAllTechPoints.at(static_cast<std::size_t>(std::stoi(next())));
    r.ipc = std::stod(next());
    r.avg_dynamic_power_w = std::stod(next());
    r.avg_leakage_power_w = std::stod(next());
    r.avg_total_power_w = std::stod(next());
    r.max_structure_temp_k = std::stod(next());
    r.sink_temp_k = std::stod(next());
    r.avg_die_temp_k = std::stod(next());
    r.max_activity = std::stod(next());
    r.raw_fits.tc_fit = std::stod(next());
    for (auto& srow : r.raw_fits.by_structure) {
      for (double& v : srow) v = std::stod(next());
    }
    r.run.cycles = std::stoull(next());
    r.run.instructions = std::stoull(next());
    r.run.branches = std::stoull(next());
    r.run.branch_mispredicts = std::stoull(next());
    r.run.l1d_accesses = std::stoull(next());
    r.run.l1d_misses = std::stoull(next());
    r.run.l2_accesses = std::stoull(next());
    r.run.l2_misses = std::stoull(next());
    r.run.l1i_misses = std::stoull(next());
    for (double& a : r.run.avg_activity) a = std::stod(next());
    return r;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::string sweep_to_csv(const SweepResult& sweep) {
  std::ostringstream out;
  out.precision(17);
  out << "# ramp_sweep_cache v1 hash=" << config_hash(sweep.config) << "\n";
  out << "# constants em=" << sweep.constants.em << " sm=" << sweep.constants.sm
      << " tddb=" << sweep.constants.tddb << " tc=" << sweep.constants.tc << "\n";
  for (const auto& r : sweep.results) {
    write_result_row(out, r);
    out << '\n';
  }
  return out.str();
}

std::optional<SweepResult> sweep_from_csv(const std::string& csv,
                                          const EvaluationConfig& expect_cfg) {
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  {
    std::uint64_t hash = 0;
    if (std::sscanf(line.c_str(), "# ramp_sweep_cache v1 hash=%llu",
                    reinterpret_cast<unsigned long long*>(&hash)) != 1) {
      return std::nullopt;
    }
    if (hash != config_hash(expect_cfg)) return std::nullopt;
  }
  SweepResult sweep;
  sweep.config = expect_cfg;
  if (!std::getline(in, line)) return std::nullopt;
  if (std::sscanf(line.c_str(), "# constants em=%lf sm=%lf tddb=%lf tc=%lf",
                  &sweep.constants.em, &sweep.constants.sm,
                  &sweep.constants.tddb, &sweep.constants.tc) != 4) {
    return std::nullopt;
  }

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto r = parse_result_row(line);
    if (!r) return std::nullopt;  // malformed cache — recompute
    sweep.results.push_back(std::move(*r));
  }
  const std::size_t expected =
      workloads::spec2k_suite().size() * scaling::kAllTechPoints.size();
  if (sweep.results.size() != expected) return std::nullopt;
  return sweep;
}

namespace {

// Serializes access to the sweep cache file within this process; writes are
// additionally atomic on disk (temp file + rename) so concurrently launched
// processes sharing one cache path never read or produce a torn file.
std::mutex& cache_mutex() {
  static std::mutex m;
  return m;
}

std::optional<SweepResult> load_cache(const std::string& path,
                                      const EvaluationConfig& cfg) {
  const std::lock_guard<std::mutex> lock(cache_mutex());
  std::ifstream f(path);
  if (!f) return std::nullopt;
  std::ostringstream buf;
  buf << f.rdbuf();
  return sweep_from_csv(buf.str(), cfg);
}

void store_cache(const std::string& path, const SweepResult& sweep) {
  const std::lock_guard<std::mutex> lock(cache_mutex());
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path target = fs::absolute(fs::path(path), ec);
  if (ec) return;
  if (target.has_parent_path()) fs::create_directories(target.parent_path(), ec);
  ec.clear();
  // The temp file lives in the target directory so the rename cannot cross
  // filesystems; the PID suffix keeps concurrent writers off each other.
  fs::path tmp = target;
  tmp += ".tmp." + std::to_string(::getpid());
  {
    std::ofstream f(tmp);
    if (!f) return;
    f << sweep_to_csv(sweep);
    if (!f) {
      f.close();
      fs::remove(tmp, ec);
      return;
    }
  }
  fs::rename(tmp, target, ec);  // atomic publish; best effort like before
  if (ec) fs::remove(tmp, ec);
}

/// The canonical per-app node order of the serial sweep: 180 nm first (it
/// pins the sink temperature), then the scaled nodes in paper order.
std::vector<scaling::TechPoint> canonical_node_order() {
  std::vector<scaling::TechPoint> order = {scaling::TechPoint::k180nm};
  for (const auto tp : scaling::kAllTechPoints) {
    if (tp != scaling::TechPoint::k180nm) order.push_back(tp);
  }
  return order;
}

}  // namespace

SweepRunner::SweepRunner(EvaluationConfig cfg, Options opts)
    : cfg_(std::move(cfg)), opts_(std::move(opts)) {
  RAMP_REQUIRE(opts_.pool != nullptr || opts_.jobs > 0,
               "SweepRunner needs at least one job");
  if (opts_.stage_store == nullptr && cfg_.stage_cache_enabled) {
    StageStore::Options store_opts;
    store_opts.dir = cfg_.stage_cache_dir;
    opts_.stage_store = std::make_shared<StageStore>(std::move(store_opts));
  }
}

SweepResult SweepRunner::run() const {
  auto& reg = obs::MetricsRegistry::global();
  const bool use_cache = cfg_.cache_enabled && !opts_.cache_path.empty();
  // The cache stores result rows only — a cache hit would return cells with
  // no timelines. Flight-recorder runs therefore skip the read (the sweep is
  // re-evaluated so timelines exist) but still refresh the cache on the way
  // out; the recorded results are bit-identical to a plain run.
  const bool read_cache = use_cache && !cfg_.timeline_enabled;
  if (read_cache) {
    obs::Span cache_span(obs::Stage::kCache);
    if (auto cached = load_cache(opts_.cache_path, cfg_)) {
      reg.counter("ramp_sweep_cache_hits_total").inc();
      cache_span.stop();
      if (opts_.observer) opts_.observer->on_cache_hit(opts_.cache_path);
      return *cached;
    }
    reg.counter("ramp_sweep_cache_misses_total").inc();
  }

  SweepResult sweep;
  if (opts_.pool != nullptr) {
    sweep = execute(*opts_.pool);
  } else {
    ThreadPool pool(opts_.jobs);
    sweep = execute(pool);
  }

  if (use_cache) {
    obs::Span cache_span(obs::Stage::kCache);
    store_cache(opts_.cache_path, sweep);
    reg.counter("ramp_sweep_cache_writes_total").inc();
  }
  return sweep;
}

SweepResult SweepRunner::execute(ThreadPool& pool) const {
  using Clock = std::chrono::steady_clock;
  const auto& suite = workloads::spec2k_suite();
  const auto nodes = canonical_node_order();
  const std::size_t napps = suite.size();
  const std::size_t nnodes = nodes.size();
  const Evaluator evaluator(cfg_, opts_.stage_store);
  const auto sweep_start = Clock::now();

  // Scheduling metrics. All handles are null no-ops when RAMP_METRICS=off,
  // and nothing below feeds back into results.
  auto& reg = obs::MetricsRegistry::global();
  obs::Profiler& prof = obs::Profiler::global();
  const bool profile = prof.enabled();
  const obs::Counter cells_counter = reg.counter("ramp_sweep_cells_total");
  const obs::Histogram cell_hist = reg.histogram(
      "ramp_sweep_cell_seconds",
      {0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0});
  const obs::Gauge queue_gauge = reg.gauge("ramp_pool_queue_depth");
  const obs::Gauge active_gauge = reg.gauge("ramp_pool_active");

  if (opts_.observer) {
    opts_.observer->on_sweep_begin(napps * nnodes, pool.worker_count());
  }

  // Cell results land in their canonical app-major slot as they finish, so
  // the merged vector is independent of execution order.
  std::vector<AppTechResult> cells(napps * nnodes);
  std::mutex observer_mutex;   // serializes ProgressObserver calls
  std::mutex fan_out_mutex;    // guards the dependent-task future list
  std::vector<std::future<void>> scaled_futures;
  scaled_futures.reserve(napps * (nnodes - 1));

  // Runs one (app, node) cell and reports it. `sink_target_k` is 0 for the
  // 180 nm base run and the app's pinned sink temperature otherwise.
  const auto run_cell = [&](std::size_t app_i, std::size_t node_i,
                            double sink_target_k) {
    SweepCell cell;
    cell.app = suite[app_i].name;
    cell.tech = nodes[node_i];
    cell.task_id = static_cast<std::uint64_t>(app_i * nnodes + node_i);
    cell.worker_id = ThreadPool::current_worker_id();
    queue_gauge.set(static_cast<double>(pool.queued()));
    active_gauge.set(static_cast<double>(pool.active()));
    if (opts_.observer) {
      const std::lock_guard<std::mutex> lock(observer_mutex);
      opts_.observer->on_cell_start(cell);
    }
    const auto start = Clock::now();
    AppTechResult& slot = cells[cell.task_id];
    slot = evaluator.evaluate(suite[app_i], cell.tech, sink_target_k);
    const std::chrono::duration<double> wall = Clock::now() - start;
    cells_counter.inc();
    cell_hist.observe(wall.count());
    if (opts_.observer) {
      const std::lock_guard<std::mutex> lock(observer_mutex);
      opts_.observer->on_cell_finish(cell, slot, wall.count());
    }
  };

  // Phase 1: one base task per app. Each base task, once its 180 nm run has
  // pinned the sink temperature, fans out that app's scaled nodes as
  // dependent tasks on the same pool.
  // Queue wait (submit → dequeue) is recorded as kSchedule, which the
  // profile keeps out of kTotal: it is pool pressure, not pipeline work.
  const auto record_wait = [&prof, profile](Clock::time_point submitted) {
    if (!profile) return;
    const auto now = Clock::now();
    prof.record(obs::Stage::kSchedule,
                std::chrono::duration<double>(now - submitted).count());
    // In trace mode the wait shows up as a "queue-wait" slice on the worker
    // that eventually dequeued the task — the causal gap Perfetto renders
    // between submission and execution.
    prof.record_event(obs::Stage::kSchedule, "queue-wait", submitted, now);
  };

  std::vector<std::future<void>> base_futures;
  base_futures.reserve(napps);
  for (std::size_t app_i = 0; app_i < napps; ++app_i) {
    const auto submitted = profile ? Clock::now() : Clock::time_point{};
    base_futures.push_back(pool.submit([&, app_i, submitted] {
      record_wait(submitted);
      run_cell(app_i, 0, 0.0);
      const double sink_target = cells[app_i * nnodes].sink_temp_k;
      const std::lock_guard<std::mutex> lock(fan_out_mutex);
      for (std::size_t node_i = 1; node_i < nnodes; ++node_i) {
        const auto scaled_submitted = profile ? Clock::now() : Clock::time_point{};
        scaled_futures.push_back(
            pool.submit([&, app_i, node_i, sink_target, scaled_submitted] {
              record_wait(scaled_submitted);
              run_cell(app_i, node_i, sink_target);
            }));
      }
    }));
  }

  // Wait for everything before touching the results (or unwinding — tasks
  // capture locals by reference); remember the first failure.
  std::exception_ptr failure;
  const auto drain = [&](std::vector<std::future<void>>& futures) {
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!failure) failure = std::current_exception();
      }
    }
  };
  drain(base_futures);
  // All base tasks have returned, so the dependent-task list is complete.
  drain(scaled_futures);
  if (failure) std::rethrow_exception(failure);

  SweepResult sweep;
  sweep.config = cfg_;
  sweep.results = std::move(cells);

  // Qualification uses the 180 nm cells in suite order — the same summation
  // order as the serial sweep, keeping the constants bit-identical.
  std::vector<core::FitSummary> raw_180;
  raw_180.reserve(napps);
  for (std::size_t app_i = 0; app_i < napps; ++app_i) {
    raw_180.push_back(sweep.results[app_i * nnodes].raw_fits);
  }
  sweep.constants = core::qualify(raw_180);

  if (opts_.observer) {
    const std::chrono::duration<double> wall = Clock::now() - sweep_start;
    opts_.observer->on_sweep_end(wall.count());
  }
  return sweep;
}


}  // namespace ramp::pipeline
