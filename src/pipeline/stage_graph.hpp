// The explicit stage DAG behind the evaluator: trace → sim → power →
// thermal → fit, each a first-class stage with
//  - a serializable input description,
//  - a content-addressed stage key derived from the upstream stage key plus
//    only the config fields that stage actually reads, and
//  - a typed, versioned serialized output.
//
// Stage keys are full canonical strings (readable `stage.v1|up=(...)|...`
// chains), so equal keys imply bit-identical inputs with no digest-collision
// loophole — the StageStore persists the whole key in every file header and
// treats mismatches as misses. Field blocks inside a key are digested with
// util::Fnv64 using the same frozen mixing discipline as the sweep cache's
// config_hash: the mixing order below is part of the on-disk format, and
// changing what a stage reads must bump that stage's version tag.
//
// Key derivation (see docs/API_GUIDE.md "Stage graph & caching"):
//   trace   app name, generator profile, trace_instructions, seed
//   sim     trace key + frequency_hz + interval_seconds; fast sim modes get
//           their own version tags (sim.sampled.v1 embeds the sampling
//           parameters, sim.interval.v1 the calibration length) while
//           detailed keeps the frozen sim.v1 tag
//   power   sim key + power_bias + unconstrained_w_180nm + clock_gating_floor
//           + relative_capacitance + vdd + frequency_hz
//   thermal power key + the nine ThermalConfig fields + leakage_beta
//           + leakage_ref_temp + base_core_area_mm2
//           + leakage_w_per_mm2_at_383k + relative_area + sink_target_k
//   fit     thermal key + vdd + tox_nm + jmax_ma_per_um2 + linear_scale
//           + relative_area
// Everything downstream of a change is invalidated automatically because
// each key embeds its upstream key; fields a stage only reads transitively
// (e.g. interval_seconds in the thermal transient) are covered by the chain.
//
// The split is bit-exact: running the four compute stages back to back
// performs the same floating-point operations on the same values in the
// same per-variable order as the old interleaved loop, so staged results —
// cached or not, at any job count — are byte-identical to the monolithic
// evaluator (the golden sweep CSVs pin this down).
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "pipeline/evaluator.hpp"
#include "power/power_model.hpp"
#include "scaling/technology.hpp"
#include "sim/interval_stats.hpp"
#include "trace/synthetic_generator.hpp"
#include "util/blob_store.hpp"
#include "util/error.hpp"

namespace ramp::pipeline {

// ---- stage identity --------------------------------------------------------

enum class StageId : int { kTrace = 0, kSim, kPower, kThermal, kFit };
inline constexpr int kNumStageIds = 5;

/// Stable lowercase identifier ("trace", "sim", "power", "thermal", "fit");
/// used in metric names and key prefixes.
std::string_view stage_id_name(StageId s);

/// A stage's content-addressed identity: the full canonical key string.
struct StageKey {
  std::string canonical;
};

/// Deterministic per-app seed offset (base ^ FNV-1a(app)) — the effective
/// seed of the app's synthetic trace stream.
std::uint64_t app_trace_seed(std::uint64_t base, const std::string& app);

// ---- stage inputs ----------------------------------------------------------

/// Everything the trace stage reads: the synthetic-trace specification.
struct TraceStageIn {
  std::string app;
  trace::GeneratorProfile profile;
  std::uint64_t instructions = 0;
  std::uint64_t seed = 0;  ///< base seed; effective = app_trace_seed(seed, app)
};

StageKey trace_stage_key(const TraceStageIn& in);
/// Sim stage key. `mode` must be resolved (never kAuto). Detailed keeps the
/// frozen `sim.v1` tag; fast modes get their own tags with the parameters
/// that shape the estimate embedded (`sim.sampled.v1|…|p=…|w=…|m=…|k=…`,
/// `sim.interval.v1|…`), so a cached fast-path payload can never answer a
/// detailed request or a differently-parameterized fast one.
StageKey sim_stage_key(const StageKey& trace_key, double frequency_hz,
                       double interval_seconds,
                       sim::SimMode mode = sim::SimMode::kDetailed,
                       const sim::SampledParams& sampled = {});
StageKey power_stage_key(const StageKey& sim_key,
                         const power::PowerModelConfig& power,
                         double power_bias,
                         const scaling::TechnologyNode& tech);
StageKey thermal_stage_key(const StageKey& power_key,
                           const EvaluationConfig& cfg,
                           const scaling::TechnologyNode& tech,
                           double sink_target_k);
StageKey fit_stage_key(const StageKey& thermal_key,
                       const scaling::TechnologyNode& tech);

// ---- stage outputs ---------------------------------------------------------

/// Trace stage output: the canonical specification itself. Synthesis is
/// pull-driven inside the simulator (the stream is generated per
/// instruction), so the stage's "output" is its reproducible spec; it is a
/// first-class stage so reuse is visible in the hit/miss counters.
struct TraceStageOut {
  std::string spec;
};

/// Sim stage output: per-interval activity factors plus run totals.
struct SimStageOut {
  sim::SimResult result;
};

/// Power stage output: biased per-structure dynamic power, per interval and
/// run-average (the "first run" input of the two-run thermal methodology).
struct PowerStageOut {
  power::StructurePower avg_dynamic{};           ///< from totals.avg_activity
  std::vector<power::StructurePower> dynamic;    ///< per interval
  std::vector<double> dynamic_total;             ///< per interval, Σ structures
};

/// Thermal stage output: the calibrated steady-state sink temperature plus
/// the post-step per-structure temperatures and total block power (dynamic +
/// leakage) of every transient interval.
struct ThermalStageOut {
  double sink_temp_k = 0.0;
  std::vector<std::array<double, sim::kNumStructures>> struct_temps;
  std::vector<double> block_total;  ///< per interval
};

// The fit stage's output is AppTechResult itself (the codec serializes the
// cacheable core: scalars, raw_fits, run stats — never interval traces or
// timelines, which is why flight-recorder runs bypass the fit-stage cache).

// ---- stage bodies ----------------------------------------------------------
//
// Each body reads exactly the fields its key covers (plus upstream outputs)
// and is deterministic. `cell` is the "app@node" profiler label.

SimStageOut run_sim_stage(const EvaluationConfig& cfg,
                          const scaling::TechnologyNode& tech,
                          trace::TraceReader& stream, const std::string& cell);

PowerStageOut run_power_stage(const EvaluationConfig& cfg,
                              const scaling::TechnologyNode& tech,
                              double power_bias, const sim::SimResult& sim,
                              const std::string& cell);

ThermalStageOut run_thermal_stage(const EvaluationConfig& cfg,
                                  const scaling::TechnologyNode& tech,
                                  double sink_target_k,
                                  const PowerStageOut& power,
                                  const std::string& cell);

/// Assembles the final result (FIT accumulation, power averages, optional
/// interval trace and flight-recorder timeline). Sets every AppTechResult
/// field except app/tech, which the caller owns.
AppTechResult run_fit_stage(const EvaluationConfig& cfg,
                            const scaling::TechnologyNode& tech,
                            const sim::SimResult& sim,
                            const PowerStageOut& power,
                            const ThermalStageOut& thermal,
                            const std::string& cell);

// ---- payload codecs --------------------------------------------------------
//
// Versioned binary payloads: an 8-byte magic+version tag followed by raw
// little-endian (host-order) u64 counts and memcpy'd IEEE-754 doubles, so
// round trips are bit-exact. decode_payload returns false on any size,
// magic, or internal-count inconsistency — the store treats that as a
// corrupt entry, i.e. a miss. Files are host-format; they are caches, not
// interchange.

std::string encode_payload(const TraceStageOut& v);
std::string encode_payload(const SimStageOut& v);
std::string encode_payload(const PowerStageOut& v);
std::string encode_payload(const ThermalStageOut& v);
/// Requires interval_trace and timeline to be empty (not representable).
std::string encode_payload(const AppTechResult& v);

bool decode_payload(const std::string& payload, TraceStageOut& out);
bool decode_payload(const std::string& payload, SimStageOut& out);
bool decode_payload(const std::string& payload, PowerStageOut& out);
bool decode_payload(const std::string& payload, ThermalStageOut& out);
bool decode_payload(const std::string& payload, AppTechResult& out);

// ---- the store -------------------------------------------------------------

/// Shared, thread-safe stage-output store: a util::BlobStore (bounded LRU +
/// optional persistent directory + single-flight) plus per-stage accounting
/// in an obs::MetricsRegistry:
///   ramp_stage_<stage>_hits_total     answered without computing (memory,
///                                     disk, or coalesced onto a peer)
///   ramp_stage_<stage>_misses_total   compute callback ran
///   ramp_stage_<stage>_writes_total   payload persisted to disk
///   ramp_stage_<stage>_seconds        compute duration on a miss
///   ramp_stage_store_entries/_bytes   memory-tier occupancy gauges
/// Counters land in the global registry by default (RAMP_METRICS gates
/// them); pass a private registry for exact bookkeeping in tests.
class StageStore {
 public:
  struct Options {
    std::size_t memory_entries = 512;
    std::string dir;  ///< "" = in-memory only
    obs::MetricsRegistry* registry = nullptr;  ///< nullptr → global()
  };

  StageStore();  ///< defaults: in-memory only, global metrics registry
  explicit StageStore(Options opts);

  StageStore(const StageStore&) = delete;
  StageStore& operator=(const StageStore&) = delete;

  /// Returns the stage output for `key`, running `compute` on a miss.
  /// Single-flight per key; see BlobStore. T must have encode_payload /
  /// decode_payload overloads above.
  template <typename T>
  T get_or_compute(StageId stage, const StageKey& key,
                   const std::function<T()>& compute) {
    obs::Profiler& prof = obs::Profiler::global();
    const bool timed = prof.enabled();
    const auto start = timed ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};
    T out{};
    bool have = false;
    const BlobStore::Result res = blobs_.get_or_compute(
        key.canonical,
        [&]() -> std::string {
          T computed = compute();
          std::string payload = encode_payload(computed);
          out = std::move(computed);
          have = true;
          return payload;
        },
        [&](const std::string& payload) {
          T fresh{};
          if (!decode_payload(payload, fresh)) return false;
          out = std::move(fresh);
          have = true;
          return true;
        });
    if (!have) {
      // Memory hit or coalesced: the payload was produced by encode_payload
      // in this process, so failure to decode is a bug, not corruption.
      RAMP_REQUIRE(decode_payload(*res.blob, out),
                   "stage store returned an undecodable " +
                       std::string(stage_id_name(stage)) + " payload");
    }
    if (timed) {
      // The store's own overhead (lookup, disk I/O, codec) as a kCache span;
      // the stage's compute time is attributed by the stage body itself.
      const double total = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      prof.record(obs::Stage::kCache,
                  std::max(0.0, total - res.compute_seconds));
    }
    book(stage, res);
    return out;
  }

  const BlobStore& blobs() const { return blobs_; }
  const Options& options() const { return opts_; }

 private:
  void book(StageId stage, const BlobStore::Result& res);

  Options opts_;
  obs::MetricsRegistry* registry_ = nullptr;
  BlobStore blobs_;

  struct StageMeters {
    obs::Counter hits;
    obs::Counter misses;
    obs::Counter writes;
    obs::Histogram seconds;
  };
  std::array<StageMeters, kNumStageIds> meters_{};
  obs::Gauge entries_gauge_;
  obs::Gauge bytes_gauge_;
};

}  // namespace ramp::pipeline
