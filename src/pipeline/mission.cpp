#include "pipeline/mission.hpp"

#include "util/constants.hpp"
#include "util/error.hpp"

namespace ramp::pipeline {

double MissionProfile::active_hours() const {
  double h = 0;
  for (const auto& s : segments) {
    RAMP_REQUIRE(s.hours_per_day >= 0, "segment hours must be non-negative");
    h += s.hours_per_day;
  }
  return h;
}

double MissionFit::mttf_years() const {
  RAMP_REQUIRE(total() > 0.0, "MTTF undefined for a zero failure rate");
  return mttf_years_from_fit(total());
}

MissionFit evaluate_mission(const SweepResult& sweep, scaling::TechPoint tech,
                            const MissionProfile& profile) {
  RAMP_REQUIRE(!profile.segments.empty(), "mission needs at least one segment");
  const double active = profile.active_hours();
  RAMP_REQUIRE(active > 0.0, "mission has no active time");
  RAMP_REQUIRE(active <= 24.0 + 1e-9, "mission exceeds 24 hours per day");
  RAMP_REQUIRE(profile.power_cycles_per_day >= 0.0,
               "power cycles must be non-negative");

  MissionFit fit;
  double tc_weighted = 0.0;
  for (const auto& seg : profile.segments) {
    const auto& cell = sweep.at(seg.workload, tech);
    const auto by_mech = sweep.qualified_fits(cell).by_mechanism();
    // Duty weighting: this segment wears the chip for hours/24 of calendar
    // time; FIT is per calendar hour, so the contribution scales by the
    // calendar fraction spent in the segment.
    const double duty = seg.hours_per_day / 24.0;
    fit.em += by_mech[static_cast<std::size_t>(core::Mechanism::kEm)] * duty;
    fit.sm += by_mech[static_cast<std::size_t>(core::Mechanism::kSm)] * duty;
    fit.tddb += by_mech[static_cast<std::size_t>(core::Mechanism::kTddb)] * duty;
    // TC severity follows the workload's cycle amplitude; weight by the
    // segment's share of *active* time (each power cycle starts from the
    // mix's typical operating temperature).
    tc_weighted += by_mech[static_cast<std::size_t>(core::Mechanism::kTc)] *
                   (seg.hours_per_day / active);
  }
  // Scale TC by the actual large-cycle rate vs the 1/day reference.
  fit.tc = tc_weighted * profile.power_cycles_per_day;
  return fit;
}

std::vector<MissionProfile> example_missions() {
  return {
      {"server (24/7, monthly reboot)",
       {{"gcc", 10.0}, {"gap", 10.0}, {"ammp", 4.0}},
       1.0 / 30.0},
      {"desktop (10 h office day)",
       {{"perlbmk", 4.0}, {"gzip", 3.0}, {"mesa", 3.0}},
       1.0},
      {"laptop (4 h, aggressive sleep)",
       {{"crafty", 2.0}, {"vpr", 2.0}},
       6.0},
  };
}

}  // namespace ramp::pipeline
