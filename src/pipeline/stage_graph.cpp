#include "pipeline/stage_graph.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "core/fit_tracker.hpp"
#include "core/ramp_model.hpp"
#include "obs/timeline.hpp"
#include "sim/core_config.hpp"
#include "sim/interval_model.hpp"
#include "sim/ooo_core.hpp"
#include "sim/sampled_core.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/rc_model.hpp"
#include "util/hashing.hpp"
#include "util/stats.hpp"

namespace ramp::pipeline {

namespace {

std::string fmt17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::uint64_t as_u64(std::int64_t v) {
  return static_cast<std::uint64_t>(v);
}

// Block index (floorplan order) for each structure (StructureId order).
std::array<std::size_t, sim::kNumStructures> block_of_structure(
    const thermal::Floorplan& fp) {
  std::array<std::size_t, sim::kNumStructures> map{};
  for (int s = 0; s < sim::kNumStructures; ++s) {
    map[static_cast<std::size_t>(s)] = fp.index_of(
        std::string(sim::structure_name(static_cast<sim::StructureId>(s))));
  }
  return map;
}

}  // namespace

std::string_view stage_id_name(StageId s) {
  switch (s) {
    case StageId::kTrace: return "trace";
    case StageId::kSim: return "sim";
    case StageId::kPower: return "power";
    case StageId::kThermal: return "thermal";
    case StageId::kFit: return "fit";
  }
  throw InvalidArgument("unknown stage id");
}

std::uint64_t app_trace_seed(std::uint64_t base, const std::string& app) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (char c : app) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return base ^ h;
}

// ---- stage keys ------------------------------------------------------------

StageKey trace_stage_key(const TraceStageIn& in) {
  // Every GeneratorProfile field, declared order. Frozen: append-only, and
  // any semantic change bumps the "trace.v1" tag.
  Fnv64 h;
  h.mix(static_cast<std::uint64_t>(in.profile.op_mix.size()));
  for (double v : in.profile.op_mix) h.mix(v);
  h.mix(in.profile.dep_distance_p);
  h.mix(in.profile.second_source_prob);
  h.mix(in.profile.stream_fraction);
  h.mix(as_u64(in.profile.num_streams));
  h.mix(static_cast<std::uint64_t>(in.profile.stream_stride));
  h.mix(in.profile.cold_fraction);
  h.mix(in.profile.hot_footprint_bytes);
  h.mix(in.profile.cold_footprint_bytes);
  h.mix(in.profile.branch_noise);
  h.mix(in.profile.taken_bias);
  h.mix(as_u64(in.profile.code_blocks));
  h.mix(as_u64(in.profile.block_len));
  return {"trace.v1|app=" + in.app + "|n=" + std::to_string(in.instructions) +
          "|seed=" + std::to_string(in.seed) + "|profile=" + h.hex()};
}

StageKey sim_stage_key(const StageKey& trace_key, double frequency_hz,
                       double interval_seconds, sim::SimMode mode,
                       const sim::SampledParams& sampled) {
  RAMP_REQUIRE(mode != sim::SimMode::kAuto,
               "sim_stage_key needs a resolved mode (see resolved_sim_mode)");
  const std::string base = "|up=(" + trace_key.canonical +
                           ")|f=" + fmt17(frequency_hz) +
                           "|dt=" + fmt17(interval_seconds);
  switch (mode) {
    case sim::SimMode::kSampled:
      // The sampling parameters shape the estimate, so they are part of the
      // payload's identity.
      return {"sim.sampled.v1" + base + "|p=" + std::to_string(sampled.period) +
              "|w=" + std::to_string(sampled.warmup) +
              "|m=" + std::to_string(sampled.measure) +
              "|k=" + std::to_string(sampled.windows)};
    case sim::SimMode::kInterval:
      return {"sim.interval.v1" + base +
              "|k=" + std::to_string(sim::kIntervalModelCalibration)};
    default:
      // Detailed keeps the frozen PR 6 tag: warm caches stay valid.
      return {"sim.v1" + base};
  }
}

StageKey power_stage_key(const StageKey& sim_key,
                         const power::PowerModelConfig& power,
                         double power_bias,
                         const scaling::TechnologyNode& tech) {
  // Dynamic power reads: unconstrained per-structure power, the clock-gating
  // floor, and the C·V²·f scale factors of the node.
  Fnv64 h;
  for (double w : power.unconstrained_w_180nm) h.mix(w);
  h.mix(power.clock_gating_floor);
  h.mix(tech.relative_capacitance);
  h.mix(tech.vdd);
  h.mix(tech.frequency_hz);
  return {"power.v1|up=(" + sim_key.canonical + ")|bias=" + fmt17(power_bias) +
          "|dyn=" + h.hex()};
}

StageKey thermal_stage_key(const StageKey& power_key,
                           const EvaluationConfig& cfg,
                           const scaling::TechnologyNode& tech,
                           double sink_target_k) {
  // The RC network reads every ThermalConfig field (same order as
  // config_hash); leakage inside the thermal loop reads the leakage model
  // parameters plus the node's leakage density and area. interval_seconds
  // (the transient step) is covered transitively by the sim key upstream.
  Fnv64 h;
  h.mix(cfg.thermal.ambient_k);
  h.mix(cfg.thermal.r_convec_k_per_w);
  h.mix(cfg.thermal.r_vertical_specific);
  h.mix(cfg.thermal.r_spreader_sink);
  h.mix(cfg.thermal.k_silicon);
  h.mix(cfg.thermal.die_thickness);
  h.mix(cfg.thermal.c_silicon);
  h.mix(cfg.thermal.spreader_capacitance);
  h.mix(cfg.thermal.sink_capacitance);
  h.mix(cfg.power.leakage_beta);
  h.mix(cfg.power.leakage_ref_temp);
  h.mix(cfg.power.base_core_area_mm2);
  h.mix(tech.leakage_w_per_mm2_at_383k);
  h.mix(tech.relative_area);
  return {"thermal.v1|up=(" + power_key.canonical +
          ")|sink=" + fmt17(sink_target_k) + "|cfg=" + h.hex()};
}

StageKey fit_stage_key(const StageKey& thermal_key,
                       const scaling::TechnologyNode& tech) {
  // RAMP reads: voltage (EM/TDDB operating point), oxide thickness (TDDB),
  // current-density limit (EM), linear scale (EM interconnect w·h), and
  // relative area (per-structure area weights).
  Fnv64 h;
  h.mix(tech.vdd);
  h.mix(tech.tox_nm);
  h.mix(tech.jmax_ma_per_um2);
  h.mix(tech.linear_scale);
  h.mix(tech.relative_area);
  return {"fit.v1|up=(" + thermal_key.canonical + ")|cfg=" + h.hex()};
}

// ---- stage bodies ----------------------------------------------------------
//
// These four passes are the old interleaved evaluator loop cut at the stage
// boundaries. Byte-for-byte identity with that loop is a hard contract (the
// golden sweep CSVs pin it): each pass performs the same floating-point
// operations on the same values in the same per-variable order, so do not
// reorder arithmetic when editing.

namespace {

/// Fast-path observability: per-mode compute counters plus the latest
/// estimator quality gauges. Recorded only when a sim stage actually
/// computes (cache hits replay stored payloads and touch no estimator).
void record_sim_mode_metrics(sim::SimMode mode,
                             const sim::FastSimStats& fast) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("ramp_sim_mode_" + std::string(sim::sim_mode_name(mode)) +
              "_total")
      .inc();
  if (mode == sim::SimMode::kDetailed) return;
  reg.gauge("ramp_sim_coverage_fraction").set(fast.coverage);
  reg.gauge("ramp_sim_ipc_half_width").set(fast.ipc_half_width);
  reg.gauge("ramp_sim_activity_half_width").set(fast.activity_half_width);
  if (mode == sim::SimMode::kSampled) {
    reg.counter("ramp_sim_sampled_units_total").inc(fast.units);
  }
}

}  // namespace

SimStageOut run_sim_stage(const EvaluationConfig& cfg,
                          const scaling::TechnologyNode& tech,
                          trace::TraceReader& stream, const std::string& cell) {
  using Clock = std::chrono::steady_clock;
  obs::Profiler& prof = obs::Profiler::global();
  const bool profile = prof.enabled();

  const sim::CoreConfig core_cfg = sim::core_config_for(tech);
  const auto interval_cycles = static_cast<std::uint64_t>(
      std::llround(core_cfg.frequency_hz * cfg.interval_seconds));
  RAMP_ASSERT(interval_cycles > 0);

  const sim::SimMode mode = resolved_sim_mode(cfg);
  const auto sim_start = profile ? Clock::now() : Clock::time_point{};
  SimStageOut out;
  sim::FastSimStats fast;
  switch (mode) {
    case sim::SimMode::kSampled: {
      sim::SampledCore core(core_cfg, cfg.sampled);
      out.result = core.run(stream, interval_cycles);
      fast = core.fast_stats();
      break;
    }
    case sim::SimMode::kInterval: {
      sim::IntervalModel model(core_cfg);
      out.result = model.run(stream, interval_cycles);
      fast = model.fast_stats();
      break;
    }
    default: {
      sim::OooCore core(core_cfg);
      out.result = core.run(stream, interval_cycles);
      break;
    }
  }
  if (profile) {
    prof.record_cell_timed(obs::Stage::kSim, cell, sim_start, Clock::now());
  }
  record_sim_mode_metrics(mode, fast);
  RAMP_ASSERT(!out.result.intervals.empty());
  return out;
}

PowerStageOut run_power_stage(const EvaluationConfig& cfg,
                              const scaling::TechnologyNode& tech,
                              double power_bias, const sim::SimResult& sim,
                              const std::string& cell) {
  using Clock = std::chrono::steady_clock;
  obs::Profiler& prof = obs::Profiler::global();
  const bool profile = prof.enabled();
  RAMP_REQUIRE(power_bias > 0.0, "power bias must be positive");

  const power::PowerModel pm(cfg.power, tech);
  // The workload's power_bias calibrates per-app energy-per-op to Table 3
  // (see workloads/spec2k.hpp).
  auto biased_dynamic = [&](const std::array<double, sim::kNumStructures>& act) {
    power::StructurePower p = pm.dynamic_power(act);
    for (double& v : p) v *= power_bias;
    return p;
  };

  const auto start = profile ? Clock::now() : Clock::time_point{};
  PowerStageOut out;
  // Average dynamic power over the whole run — the "first run" of the
  // paper's two-run methodology.
  out.avg_dynamic = biased_dynamic(sim.totals.avg_activity);
  const std::size_t n = sim.intervals.size();
  out.dynamic.reserve(n);
  out.dynamic_total.reserve(n);
  for (const auto& iv : sim.intervals) {
    const power::StructurePower dyn = biased_dynamic(iv.activity);
    double dyn_total = 0.0;
    for (double v : dyn) dyn_total += v;
    out.dynamic.push_back(dyn);
    out.dynamic_total.push_back(dyn_total);
  }
  if (profile) {
    prof.record_cell(obs::Stage::kPower, cell,
                     std::chrono::duration<double>(Clock::now() - start).count(),
                     static_cast<std::uint64_t>(n));
  }
  return out;
}

ThermalStageOut run_thermal_stage(const EvaluationConfig& cfg,
                                  const scaling::TechnologyNode& tech,
                                  double sink_target_k,
                                  const PowerStageOut& power,
                                  const std::string& cell) {
  using Clock = std::chrono::steady_clock;
  obs::Profiler& prof = obs::Profiler::global();
  const bool profile = prof.enabled();

  const power::PowerModel pm(cfg.power, tech);
  const thermal::Floorplan fp =
      thermal::power4_floorplan().scaled(std::sqrt(tech.relative_area));
  thermal::RcNetwork net(fp, cfg.thermal);
  const auto blk = block_of_structure(fp);
  const std::size_t nblocks = fp.size();

  // Block powers from structure dynamic power + leakage at block temps,
  // written into a caller-owned buffer so the per-interval loop never
  // allocates.
  auto block_power_into = [&](const power::StructurePower& dyn,
                              const std::vector<double>& block_temps,
                              std::vector<double>& p) {
    p.assign(nblocks, 0.0);
    for (int s = 0; s < sim::kNumStructures; ++s) {
      const auto si = static_cast<std::size_t>(s);
      const double leak = pm.leakage_power(static_cast<sim::StructureId>(s),
                                           block_temps[blk[si]]);
      p[blk[si]] += dyn[si] + leak;
    }
  };
  auto block_power_at = [&](const power::StructurePower& dyn,
                            const std::vector<double>& block_temps) {
    std::vector<double> p;
    block_power_into(dyn, block_temps, p);
    return p;
  };
  const std::function<std::vector<double>(const std::vector<double>&)>
      avg_power_fn = [&](const std::vector<double>& block_temps) {
        return block_power_at(power.avg_dynamic, block_temps);
      };

  // Steady state + sink calibration: the steady-state solve from average
  // power pins the heat-sink temperature (with the leakage fixed point).
  const auto steady_start = profile ? Clock::now() : Clock::time_point{};
  std::vector<double> steady = net.steady_state(avg_power_fn);
  const std::size_t sink_node = nblocks + 1;
  if (sink_target_k > 0.0) {
    // Choose R_convec so the sink settles at the target temperature:
    // R = (T_target − T_amb) / P_total, iterated with the leakage loop.
    RAMP_REQUIRE(sink_target_k > cfg.thermal.ambient_k,
                 "sink target must exceed ambient");
    for (int it = 0; it < 20; ++it) {
      std::vector<double> block_temps(
          steady.begin(),
          steady.begin() + static_cast<std::ptrdiff_t>(nblocks));
      const std::vector<double> p = avg_power_fn(block_temps);
      double total = 0.0;
      for (double v : p) total += v;
      RAMP_ASSERT(total > 0.0);
      net.set_r_convec((sink_target_k - cfg.thermal.ambient_k) / total);
      steady = net.steady_state(avg_power_fn);
      if (std::abs(steady[sink_node] - sink_target_k) < 1e-3) break;
    }
  }
  if (profile) {
    prof.record_cell_timed(obs::Stage::kThermal, cell, steady_start,
                           Clock::now());
  }

  // Transient rerun at the RAMP granularity.
  thermal::Transient transient(net, steady, cfg.interval_seconds);
  const std::size_t n = power.dynamic.size();
  ThermalStageOut out;
  out.struct_temps.reserve(n);
  out.block_total.reserve(n);

  // Hoisted per-interval workspace: steady-state operation performs zero
  // heap allocations per interval (vector::assign reuses capacity; the
  // transient solver is allocation-free by construction).
  std::vector<double> block_temps_ws;
  std::vector<double> bp_ws;
  block_temps_ws.reserve(nblocks);
  bp_ws.reserve(nblocks);

  const auto loop_start = profile ? Clock::now() : Clock::time_point{};
  std::array<double, sim::kNumStructures> struct_temps{};
  for (std::size_t i = 0; i < n; ++i) {
    {
      const std::vector<double>& temps_now = transient.temperatures();
      block_temps_ws.assign(
          temps_now.begin(),
          temps_now.begin() + static_cast<std::ptrdiff_t>(nblocks));
    }
    block_power_into(power.dynamic[i], block_temps_ws, bp_ws);
    transient.step(bp_ws);
    double block_total = 0.0;
    for (double v : bp_ws) block_total += v;
    {
      // Single post-step temperature read feeding everything downstream.
      const std::vector<double>& temps_after = transient.temperatures();
      for (int s = 0; s < sim::kNumStructures; ++s) {
        const auto si = static_cast<std::size_t>(s);
        struct_temps[si] = temps_after[blk[si]];
      }
    }
    out.struct_temps.push_back(struct_temps);
    out.block_total.push_back(block_total);
  }
  if (profile) {
    prof.record_cell(
        obs::Stage::kThermal, cell,
        std::chrono::duration<double>(Clock::now() - loop_start).count(),
        static_cast<std::uint64_t>(n));
  }
  out.sink_temp_k = steady[sink_node];
  return out;
}

AppTechResult run_fit_stage(const EvaluationConfig& cfg,
                            const scaling::TechnologyNode& tech,
                            const sim::SimResult& sim,
                            const PowerStageOut& power,
                            const ThermalStageOut& thermal,
                            const std::string& cell) {
  using Clock = std::chrono::steady_clock;
  obs::Profiler& prof = obs::Profiler::global();
  const bool profile = prof.enabled();
  const std::size_t n = sim.intervals.size();
  RAMP_ASSERT(power.dynamic_total.size() == n);
  RAMP_ASSERT(thermal.struct_temps.size() == n);
  RAMP_ASSERT(thermal.block_total.size() == n);

  const sim::CoreConfig core_cfg = sim::core_config_for(tech);
  const core::RampModel model(tech);  // unit constants => raw FITs
  core::FitTracker tracker(model);

  RunningMean dyn_power_avg;
  RunningMean leak_power_avg;
  std::vector<IntervalSample> samples;
  if (cfg.record_intervals) samples.reserve(n);
  double elapsed_s = 0.0;

  // Flight recorder: bounded per-interval physics sketch plus the anomaly
  // watchdog. Purely observational — results are identical with it off, and
  // its work is deterministic (no clocks, no RNG), so jobs=1 and jobs=4
  // sweeps export byte-identical timelines.
  std::unique_ptr<obs::TimelineBuffer> timeline;
  std::unique_ptr<obs::Watchdog> watchdog;
  if (cfg.timeline_enabled) {
    timeline = std::make_unique<obs::TimelineBuffer>(
        static_cast<std::size_t>(cfg.timeline_points));
    watchdog = std::make_unique<obs::Watchdog>(cell, cfg.watchdog, prof);
  }
  std::uint64_t interval_index = 0;

  // Whether each interval's *instantaneous* FIT is needed; computed once and
  // shared by the interval trace and the timeline.
  const bool want_instant = cfg.record_intervals || timeline != nullptr;

  const auto loop_start = profile ? Clock::now() : Clock::time_point{};
  for (std::size_t i = 0; i < n; ++i) {
    const auto& iv = sim.intervals[i];
    const double duration =
        static_cast<double>(iv.cycles) / core_cfg.frequency_hz;
    const double dyn_total = power.dynamic_total[i];
    const double block_total = thermal.block_total[i];
    dyn_power_avg.add(dyn_total);
    leak_power_avg.add(block_total - dyn_total);

    const std::array<double, sim::kNumStructures>& struct_temps =
        thermal.struct_temps[i];
    tracker.add_interval(struct_temps, iv.activity, tech.vdd, duration);
    elapsed_s += duration;

    // Instantaneous per-mechanism raw FIT at this interval's conditions,
    // computed once for both consumers below.
    std::array<double, core::kNumMechanisms> inst_mech{};
    if (want_instant) {
      core::FitTracker instant(model);
      instant.add_interval(struct_temps, iv.activity, tech.vdd, duration);
      inst_mech = instant.summary().by_mechanism();
    }

    if (cfg.record_intervals) {
      IntervalSample sample;
      sample.time_s = elapsed_s;
      for (double t : struct_temps) {
        sample.hottest_temp_k = std::max(sample.hottest_temp_k, t);
      }
      sample.total_power_w = block_total;
      sample.ipc = iv.ipc();
      sample.raw_mechanism_fit = inst_mech;
      samples.push_back(sample);
    }

    if (timeline) {
      obs::TimelinePoint point;
      point.interval = interval_index;
      point.time_s = elapsed_s;
      point.ipc = iv.ipc();
      point.dyn_power_w = dyn_total;
      point.leak_power_w = block_total - dyn_total;
      point.temp_k.assign(struct_temps.begin(), struct_temps.end());
      point.fit_inst.assign(inst_mech.begin(), inst_mech.end());
      // Running cumulative average: the final point lands exactly on the
      // reported raw_fits (the export's cross-check anchor).
      const auto avg = tracker.summary().by_mechanism();
      point.fit_avg.assign(avg.begin(), avg.end());
      watchdog->check(point, *timeline);
      timeline->push(std::move(point));
    }
    ++interval_index;
  }
  if (profile) {
    prof.record_cell(
        obs::Stage::kFit, cell,
        std::chrono::duration<double>(Clock::now() - loop_start).count(),
        static_cast<std::uint64_t>(n));
  }

  AppTechResult r;  // app/tech are the caller's
  r.ipc = sim.totals.ipc();
  r.avg_dynamic_power_w = dyn_power_avg.mean();
  r.avg_leakage_power_w = leak_power_avg.mean();
  r.avg_total_power_w = r.avg_dynamic_power_w + r.avg_leakage_power_w;
  r.max_structure_temp_k = tracker.max_temperature();
  r.sink_temp_k = thermal.sink_temp_k;
  r.avg_die_temp_k = tracker.avg_die_temperature();
  r.max_activity = tracker.max_activity();
  r.raw_fits = tracker.summary();
  r.run = sim.totals;
  r.interval_trace = std::move(samples);
  if (timeline) {
    r.timeline.cell = cell;
    for (const auto s : sim::kAllStructures) {
      r.timeline.temp_names.emplace_back(sim::structure_name(s));
    }
    for (int m = 0; m < core::kNumMechanisms; ++m) {
      r.timeline.fit_names.emplace_back(
          core::mechanism_name(static_cast<core::Mechanism>(m)));
    }
    r.timeline.intervals = timeline->pushed();
    r.timeline.stride = timeline->stride();
    r.timeline.capacity = timeline->capacity();
    r.timeline.points = timeline->points();
    r.incidents = watchdog->incidents();
  }
  return r;
}

// ---- payload codecs --------------------------------------------------------

namespace {

constexpr std::size_t kMagicLen = 8;
constexpr char kTraceMagic[] = "RPTR0001";
constexpr char kSimMagic[] = "RPSM0001";
constexpr char kPowerMagic[] = "RPPW0001";
constexpr char kThermalMagic[] = "RPTH0001";
constexpr char kFitMagic[] = "RPFT0001";

void put_u64(std::string& out, std::uint64_t v) {
  char b[sizeof v];
  std::memcpy(b, &v, sizeof v);
  out.append(b, sizeof v);
}

void put_f64(std::string& out, double v) {
  char b[sizeof v];
  std::memcpy(b, &v, sizeof v);
  out.append(b, sizeof v);
}

struct PayloadReader {
  const std::string& s;
  std::size_t pos = 0;

  bool magic(const char* expect) {
    if (s.size() < kMagicLen || std::memcmp(s.data(), expect, kMagicLen) != 0) {
      return false;
    }
    pos = kMagicLen;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (s.size() - pos < sizeof v) return false;
    std::memcpy(&v, s.data() + pos, sizeof v);
    pos += sizeof v;
    return true;
  }
  bool f64(double& v) {
    if (s.size() - pos < sizeof v) return false;
    std::memcpy(&v, s.data() + pos, sizeof v);
    pos += sizeof v;
    return true;
  }
  bool bytes(std::string& out, std::uint64_t n) {
    if (s.size() - pos < n) return false;
    out.assign(s, pos, static_cast<std::size_t>(n));
    pos += static_cast<std::size_t>(n);
    return true;
  }
  /// Exactly `n` bytes left? Guards reserve()-before-read against bogus
  /// counts in corrupt payloads.
  bool remaining_is(std::uint64_t n) const { return s.size() - pos == n; }
  bool done() const { return pos == s.size(); }
};

constexpr std::uint64_t kNS = sim::kNumStructures;
constexpr std::uint64_t kNM = core::kNumMechanisms;

void put_run_stats(std::string& out, const sim::RunStats& r) {
  put_u64(out, r.cycles);
  put_u64(out, r.instructions);
  put_u64(out, r.l1d_accesses);
  put_u64(out, r.l1d_misses);
  put_u64(out, r.l2_accesses);
  put_u64(out, r.l2_misses);
  put_u64(out, r.l1i_misses);
  put_u64(out, r.branches);
  put_u64(out, r.branch_mispredicts);
  for (double a : r.avg_activity) put_f64(out, a);
}

bool read_run_stats(PayloadReader& in, sim::RunStats& r) {
  return in.u64(r.cycles) && in.u64(r.instructions) &&
         in.u64(r.l1d_accesses) && in.u64(r.l1d_misses) &&
         in.u64(r.l2_accesses) && in.u64(r.l2_misses) &&
         in.u64(r.l1i_misses) && in.u64(r.branches) &&
         in.u64(r.branch_mispredicts) &&
         [&] {
           for (double& a : r.avg_activity) {
             if (!in.f64(a)) return false;
           }
           return true;
         }();
}

constexpr std::uint64_t kRunStatsBytes = 9 * 8 + kNS * 8;

}  // namespace

std::string encode_payload(const TraceStageOut& v) {
  std::string out(kTraceMagic, kMagicLen);
  put_u64(out, v.spec.size());
  out += v.spec;
  return out;
}

bool decode_payload(const std::string& payload, TraceStageOut& out) {
  PayloadReader in{payload};
  std::uint64_t n = 0;
  return in.magic(kTraceMagic) && in.u64(n) && in.remaining_is(n) &&
         in.bytes(out.spec, n) && in.done();
}

std::string encode_payload(const SimStageOut& v) {
  std::string out(kSimMagic, kMagicLen);
  put_u64(out, v.result.intervals.size());
  for (const auto& iv : v.result.intervals) {
    put_u64(out, iv.cycles);
    put_u64(out, iv.instructions);
    for (double a : iv.activity) put_f64(out, a);
  }
  put_run_stats(out, v.result.totals);
  return out;
}

bool decode_payload(const std::string& payload, SimStageOut& out) {
  PayloadReader in{payload};
  std::uint64_t n = 0;
  if (!in.magic(kSimMagic) || !in.u64(n)) return false;
  const std::uint64_t per_interval = 2 * 8 + kNS * 8;
  if (!in.remaining_is(n * per_interval + kRunStatsBytes)) return false;
  out.result.intervals.resize(static_cast<std::size_t>(n));
  for (auto& iv : out.result.intervals) {
    if (!in.u64(iv.cycles) || !in.u64(iv.instructions)) return false;
    for (double& a : iv.activity) {
      if (!in.f64(a)) return false;
    }
  }
  return read_run_stats(in, out.result.totals) && in.done();
}

std::string encode_payload(const PowerStageOut& v) {
  std::string out(kPowerMagic, kMagicLen);
  put_u64(out, v.dynamic.size());
  for (double w : v.avg_dynamic) put_f64(out, w);
  for (const auto& dyn : v.dynamic) {
    for (double w : dyn) put_f64(out, w);
  }
  for (double t : v.dynamic_total) put_f64(out, t);
  return out;
}

bool decode_payload(const std::string& payload, PowerStageOut& out) {
  PayloadReader in{payload};
  std::uint64_t n = 0;
  if (!in.magic(kPowerMagic) || !in.u64(n)) return false;
  if (!in.remaining_is(kNS * 8 + n * (kNS * 8 + 8))) return false;
  for (double& w : out.avg_dynamic) {
    if (!in.f64(w)) return false;
  }
  out.dynamic.resize(static_cast<std::size_t>(n));
  for (auto& dyn : out.dynamic) {
    for (double& w : dyn) {
      if (!in.f64(w)) return false;
    }
  }
  out.dynamic_total.resize(static_cast<std::size_t>(n));
  for (double& t : out.dynamic_total) {
    if (!in.f64(t)) return false;
  }
  return in.done();
}

std::string encode_payload(const ThermalStageOut& v) {
  std::string out(kThermalMagic, kMagicLen);
  put_u64(out, v.struct_temps.size());
  put_f64(out, v.sink_temp_k);
  for (const auto& temps : v.struct_temps) {
    for (double t : temps) put_f64(out, t);
  }
  for (double p : v.block_total) put_f64(out, p);
  return out;
}

bool decode_payload(const std::string& payload, ThermalStageOut& out) {
  PayloadReader in{payload};
  std::uint64_t n = 0;
  if (!in.magic(kThermalMagic) || !in.u64(n)) return false;
  if (!in.remaining_is(8 + n * (kNS * 8 + 8))) return false;
  if (!in.f64(out.sink_temp_k)) return false;
  out.struct_temps.resize(static_cast<std::size_t>(n));
  for (auto& temps : out.struct_temps) {
    for (double& t : temps) {
      if (!in.f64(t)) return false;
    }
  }
  out.block_total.resize(static_cast<std::size_t>(n));
  for (double& p : out.block_total) {
    if (!in.f64(p)) return false;
  }
  return in.done();
}

std::string encode_payload(const AppTechResult& v) {
  RAMP_REQUIRE(v.interval_trace.empty() && v.timeline.empty() &&
                   v.incidents.empty(),
               "fit-stage payloads cannot carry interval traces or timelines");
  int tech_index = -1;
  for (std::size_t i = 0; i < scaling::kAllTechPoints.size(); ++i) {
    if (scaling::kAllTechPoints[i] == v.tech) {
      tech_index = static_cast<int>(i);
    }
  }
  RAMP_REQUIRE(tech_index >= 0, "unknown technology point");

  std::string out(kFitMagic, kMagicLen);
  put_u64(out, v.app.size());
  out += v.app;
  put_u64(out, static_cast<std::uint64_t>(tech_index));
  put_f64(out, v.ipc);
  put_f64(out, v.avg_dynamic_power_w);
  put_f64(out, v.avg_leakage_power_w);
  put_f64(out, v.avg_total_power_w);
  put_f64(out, v.max_structure_temp_k);
  put_f64(out, v.sink_temp_k);
  put_f64(out, v.avg_die_temp_k);
  put_f64(out, v.max_activity);
  for (const auto& row : v.raw_fits.by_structure) {
    for (double f : row) put_f64(out, f);
  }
  put_f64(out, v.raw_fits.tc_fit);
  put_run_stats(out, v.run);
  return out;
}

bool decode_payload(const std::string& payload, AppTechResult& out) {
  PayloadReader in{payload};
  std::uint64_t app_len = 0;
  if (!in.magic(kFitMagic) || !in.u64(app_len)) return false;
  if (!in.remaining_is(app_len + 8 + 8 * 8 + (kNS * kNM + 1) * 8 +
                       kRunStatsBytes)) {
    return false;
  }
  if (!in.bytes(out.app, app_len)) return false;
  std::uint64_t tech_index = 0;
  if (!in.u64(tech_index) || tech_index >= scaling::kAllTechPoints.size()) {
    return false;
  }
  out.tech = scaling::kAllTechPoints[static_cast<std::size_t>(tech_index)];
  if (!in.f64(out.ipc) || !in.f64(out.avg_dynamic_power_w) ||
      !in.f64(out.avg_leakage_power_w) || !in.f64(out.avg_total_power_w) ||
      !in.f64(out.max_structure_temp_k) || !in.f64(out.sink_temp_k) ||
      !in.f64(out.avg_die_temp_k) || !in.f64(out.max_activity)) {
    return false;
  }
  for (auto& row : out.raw_fits.by_structure) {
    for (double& f : row) {
      if (!in.f64(f)) return false;
    }
  }
  if (!in.f64(out.raw_fits.tc_fit)) return false;
  return read_run_stats(in, out.run) && in.done();
}

// ---- StageStore ------------------------------------------------------------

StageStore::StageStore() : StageStore(Options{}) {}

StageStore::StageStore(Options opts)
    : opts_(std::move(opts)),
      registry_(opts_.registry != nullptr ? opts_.registry
                                          : &obs::MetricsRegistry::global()),
      blobs_(BlobStore::Options{opts_.memory_entries, opts_.dir}) {
  const std::vector<double> bounds = {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3,
                                      5e-3, 0.01,   0.025, 0.05, 0.1,
                                      0.25, 0.5,    1.0};
  for (int i = 0; i < kNumStageIds; ++i) {
    const std::string base =
        "ramp_stage_" + std::string(stage_id_name(static_cast<StageId>(i)));
    auto& m = meters_[static_cast<std::size_t>(i)];
    m.hits = registry_->counter(base + "_hits_total");
    m.misses = registry_->counter(base + "_misses_total");
    m.writes = registry_->counter(base + "_writes_total");
    m.seconds = registry_->histogram(base + "_seconds", bounds);
  }
  entries_gauge_ = registry_->gauge("ramp_stage_store_entries");
  bytes_gauge_ = registry_->gauge("ramp_stage_store_bytes");
}

void StageStore::book(StageId stage, const BlobStore::Result& res) {
  StageMeters& m = meters_[static_cast<std::size_t>(stage)];
  switch (res.outcome) {
    case BlobStore::Outcome::kMemoryHit:
    case BlobStore::Outcome::kDiskHit:
    case BlobStore::Outcome::kCoalesced:
      m.hits.inc();
      break;
    case BlobStore::Outcome::kComputed:
      m.misses.inc();
      m.seconds.observe(res.compute_seconds);
      if (!opts_.dir.empty()) m.writes.inc();  // persisted (best effort)
      break;
  }
  entries_gauge_.set(static_cast<double>(blobs_.memory_entries()));
  bytes_gauge_.set(static_cast<double>(blobs_.memory_bytes()));
}

}  // namespace ramp::pipeline
