// Mission profiles: from per-workload FIT to deployed-lifetime estimates.
//
// The paper evaluates steady execution of one benchmark at a time; a
// deployed processor runs a *mission*: a daily mix of workloads, idle/off
// periods, and power cycles. This module combines sweep results with a
// mission description:
//
//  - Wear-out mechanisms (EM, SM, TDDB) only age the silicon while it is
//    powered and hot: their FIT contributions are duty-weighted over the
//    active segments (time-weighted mix of per-workload FITs), and the
//    powered-off remainder of the day contributes no wear.
//  - Thermal cycling is driven by the number of large power cycles: eq. 4
//    gives the per-cycle severity; the paper's qualification implicitly
//    assumes a reference cycling rate, so TC FIT scales linearly with
//    cycles-per-day relative to that reference (documented assumption:
//    reference = 1 power cycle per day).
//
// The result is the workload-aware "reliability budget" view the paper's
// dynamic-reliability-management proposal needs.
#pragma once

#include <string>
#include <vector>

#include "pipeline/sweep.hpp"

namespace ramp::pipeline {

/// One active segment of the daily mission.
struct MissionSegment {
  std::string workload;     ///< one of the 16 SPEC2K names
  double hours_per_day = 0; ///< time spent in this segment per day
};

struct MissionProfile {
  std::string name;
  std::vector<MissionSegment> segments;
  /// Large power-on/off thermal cycles per day (reference = 1.0).
  double power_cycles_per_day = 1.0;

  /// Total active (powered) hours per day; the rest is powered off.
  double active_hours() const;
};

/// Mission-weighted reliability outcome at one technology node.
struct MissionFit {
  double em = 0.0;
  double sm = 0.0;
  double tddb = 0.0;
  double tc = 0.0;
  double total() const { return em + sm + tddb + tc; }
  double mttf_years() const;
};

/// Evaluates `profile` against the qualified FITs of `sweep` at `tech`.
/// Throws InvalidArgument for unknown workloads, zero-length missions, or
/// schedules exceeding 24 h/day.
MissionFit evaluate_mission(const SweepResult& sweep, scaling::TechPoint tech,
                            const MissionProfile& profile);

/// Three illustrative presets: a loaded server (24 h, rare reboots), an
/// office desktop (10 h mixed, daily power cycle), and a laptop (4 h,
/// several sleep cycles a day).
std::vector<MissionProfile> example_missions();

}  // namespace ramp::pipeline
