// Chrome trace-event JSON exporter: turns Profiler trace snapshots into the
// `traceEvents` format that chrome://tracing and ui.perfetto.dev load.
//
// Output contract (golden-tested):
//  - one JSON object {"displayTimeUnit":"ms","traceEvents":[...]}
//  - metadata first: a "process_name" event, then one "thread_name" event
//    per thread in tid order, so the viewer labels pool workers stably;
//  - then one complete event ("ph":"X") per captured slice with fields in
//    the fixed order ph,pid,tid,ts,dur,cat,name — cat is the pipeline stage
//    ("sim","thermal",...), name the cell or label;
//  - events are sorted by (tid, ts, -dur, name), making the document a pure
//    function of the snapshot (no map iteration or clock order leaks in).
// Timestamps are microseconds with nanosecond resolution (%.3f), relative
// to the profiler's trace epoch.
#pragma once

#include <string>
#include <vector>

#include "obs/span.hpp"

namespace ramp::obs {

/// Renders `threads` (from Profiler::trace_snapshot()) as a Chrome
/// trace-event JSON document.
std::string to_chrome_trace(const std::vector<ThreadTrace>& threads,
                            const std::string& process_name = "ramp");

/// to_chrome_trace + write_text_file_atomic: creates missing parent
/// directories and publishes atomically. Throws Error on I/O failure.
void write_trace_file(const std::string& path,
                      const std::vector<ThreadTrace>& threads,
                      const std::string& process_name = "ramp");

}  // namespace ramp::obs
