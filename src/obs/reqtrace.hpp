// Per-request serve-path tracing: the phase breakdown of one wire request
// (read → parse → admission → queue → cache probe → compute → serialize →
// flush) and the bounded ring of recent request traces a live server keeps.
//
// This is the serving-stack counterpart of span.hpp's pipeline profiler:
// span.hpp attributes wall time to *physics stages* process-wide, while a
// RequestTrace attributes one request's latency to *wire-path phases*, with
// the compute phase further split by pipeline stage (the worker's per-stage
// nano deltas around the evaluation). Front-ends fill a RequestTrace with at
// most one steady_clock pair per phase and only when their per-request trace
// switch is on — with it off no phase clock is ever read, so the hot path is
// untouched (the "zero overhead when off" contract the serve-saturation CI
// gate holds).
//
// TraceRing is single-writer by design: exactly one thread (the epoll loop,
// or a stdio Session's driver) pushes and snapshots, so it needs no locks.
// The ring epoch is captured at construction; all RequestTrace timestamps
// are nanoseconds since that epoch, which keeps every record in one causal
// timebase for the Perfetto export.
//
// request_lanes() renders a ring snapshot as obs::ThreadTrace lanes for the
// existing Chrome-trace exporter (trace_export.hpp): overlapping requests
// get distinct lanes (greedy first-fit on start time), each request becomes
// a parent slice with its phases laid out as sequential child slices. The
// layout is an attribution diagram, not a literal schedule — phases are
// drawn back-to-back from the request start even though queue wait and
// compute overlap the head-of-line wait — but the per-phase widths are the
// measured nanos, which is what the viewer is for.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/span.hpp"

namespace ramp::obs {

/// Wire-path phases of one request, in causal order. kCompute is further
/// split by pipeline stage in RequestTrace::stage_ns.
enum class Phase : int {
  kRead = 0,    ///< first byte of the line → newline (0 when it arrived whole)
  kParse,       ///< JSON parse + request validation
  kAdmission,   ///< admission control + cache probe + submit/shed decision
  kQueue,       ///< scheduled: submit → worker pickup; else head-of-line wait
  kCache,       ///< persistent-cache probe on the worker
  kCompute,     ///< pipeline evaluation wall time on the worker
  kSerialize,   ///< response JSON build + dump
  kFlush,       ///< response enqueued → last byte written to the socket
};
inline constexpr int kNumPhases = 8;

/// Stable lowercase identifier ("read", "parse", ..., "flush") used by the
/// slow log, the trace object on responses, and the phase metrics.
std::string_view phase_name(Phase p);

/// One request's complete trace record.
struct RequestTrace {
  std::string trace_id;  ///< client-supplied or server-generated
  std::string op;        ///< wire op ("eval", ...)
  std::string label;     ///< eval: "app@node"; "" otherwise
  std::uint64_t start_ns = 0;  ///< accept time, relative to the ring epoch
  std::uint64_t total_ns = 0;  ///< accept → last byte flushed
  std::array<std::uint64_t, kNumPhases> phase_ns{};
  /// kCompute split by pipeline stage (worker-thread Profiler deltas around
  /// the evaluation); all zero when RAMP_METRICS is off.
  std::array<std::uint64_t, kNumStages> stage_ns{};
  bool cached = false;
  bool coalesced = false;
  bool ok = true;
};

/// Bounded ring of recent request traces. Single-writer, single-reader, one
/// thread: the owning front-end both pushes and snapshots (the `trace_dump`
/// op runs on the same loop), so there is no synchronization to pay for.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 512);

  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

  /// Nanoseconds from the ring epoch to `t` (0 when `t` precedes it).
  std::uint64_t to_epoch_ns(std::chrono::steady_clock::time_point t) const;

  void push(RequestTrace rec);

  /// Records still resident, oldest first.
  std::vector<RequestTrace> snapshot() const;

  std::size_t capacity() const { return capacity_; }
  std::uint64_t total_pushed() const { return pushed_; }
  void clear();

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_;
  std::vector<RequestTrace> ring_;  ///< grows to capacity_, then wraps
  std::size_t next_ = 0;
  std::uint64_t pushed_ = 0;
};

/// Lays a ring snapshot out as Chrome-trace lanes for to_chrome_trace():
/// requests are sorted by start time and greedily packed onto the first lane
/// whose previous request already ended (lane k renders as tid 1+k,
/// "requests-lane-k"). Each request contributes one parent slice (cat
/// "total") plus sequential child slices per non-zero phase; the compute
/// phase emits per-stage children (cat "sim", "thermal", ...) when stage
/// deltas were captured, else one "compute" slice.
std::vector<ThreadTrace> request_lanes(const std::vector<RequestTrace>& recs);

/// One NDJSON slow-log line (no trailing newline): the full breakdown of one
/// request. `wall_unix_ms` stamps the record in wall-clock time for log
/// correlation (the caller reads system_clock once, on this slow path only).
std::string request_trace_json(const RequestTrace& rec, double wall_unix_ms);

}  // namespace ramp::obs
