#include "obs/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/export.hpp"
#include "util/error.hpp"

namespace ramp::obs {

namespace {

// Same float policy as the metrics exporters: %.17g round-trips doubles,
// integral values print without an exponent.
std::string num(double v) {
  if (std::isfinite(v) && v == std::floor(v) &&
      std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// JSON has no literal for non-finite doubles; the NDJSON/incident exporters
// emit null instead so payloads carrying NaN measurements (the non_finite
// watchdog rule exists precisely for those) stay parseable.
std::string jnum(double v) {
  if (!std::isfinite(v)) return "null";
  return num(v);
}

void append_array(std::ostringstream& out, const std::vector<double>& v) {
  out << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out << ',';
    out << jnum(v[i]);
  }
  out << ']';
}

void append_point_json(std::ostringstream& out, const TimelinePoint& p) {
  out << "{\"interval\":" << p.interval << ",\"time_s\":" << jnum(p.time_s)
      << ",\"ipc\":" << jnum(p.ipc) << ",\"dyn_w\":" << jnum(p.dyn_power_w)
      << ",\"leak_w\":" << jnum(p.leak_power_w) << ",\"temp_k\":";
  append_array(out, p.temp_k);
  out << ",\"fit_inst\":";
  append_array(out, p.fit_inst);
  out << ",\"fit_avg\":";
  append_array(out, p.fit_avg);
  out << '}';
}

}  // namespace

double TimelinePoint::hottest_temp_k() const {
  double t = 0.0;
  for (double v : temp_k) t = std::max(t, v);
  return t;
}

double TimelinePoint::inst_total_fit() const {
  double total = 0.0;
  for (double v : fit_inst) total += v;
  return total;
}

TimelineBuffer::TimelineBuffer(std::size_t capacity) : capacity_(capacity) {
  RAMP_REQUIRE(capacity_ >= 2, "timeline capacity must be at least 2");
  sampled_.reserve(capacity_);
}

void TimelineBuffer::push(TimelinePoint p) {
  // Raw ring for incident dumps, independent of the sampling stride.
  if (recent_.size() < kRecentCapacity) {
    recent_.push_back(p);
  } else {
    recent_[recent_next_] = p;
    recent_next_ = (recent_next_ + 1) % kRecentCapacity;
  }
  last_ = p;
  ++pushed_;

  if (p.interval % stride_ != 0) return;
  if (sampled_.size() == capacity_) {
    // Full: halve the retained density, then re-test admission under the
    // doubled stride. Keeping multiples of the new stride makes compaction
    // a pure function of the interval indices — order-independent and
    // deterministic.
    std::vector<TimelinePoint> kept;
    kept.reserve(capacity_ / 2 + 1);
    for (auto& q : sampled_) {
      if (q.interval % (stride_ * 2) == 0) kept.push_back(std::move(q));
    }
    sampled_ = std::move(kept);
    stride_ *= 2;
    if (p.interval % stride_ != 0) return;
  }
  sampled_.push_back(std::move(p));
}

std::vector<TimelinePoint> TimelineBuffer::points() const {
  std::vector<TimelinePoint> out = sampled_;
  if (pushed_ > 0 && (out.empty() || out.back().interval != last_.interval)) {
    out.push_back(last_);
  }
  return out;
}

std::vector<TimelinePoint> TimelineBuffer::recent(std::size_t k) const {
  const std::size_t n = std::min(k, recent_.size());
  std::vector<TimelinePoint> out;
  out.reserve(n);
  // recent_next_ is the oldest slot once the ring has wrapped; before that
  // the vector is already chronological from index 0.
  const std::size_t size = recent_.size();
  const std::size_t start = recent_.size() < kRecentCapacity ? 0 : recent_next_;
  for (std::size_t i = size - n; i < size; ++i) {
    out.push_back(recent_[(start + i) % size]);
  }
  return out;
}

Watchdog::Watchdog(std::string cell, WatchdogRules rules, Profiler& profiler)
    : cell_(std::move(cell)), rules_(rules), profiler_(profiler) {}

bool Watchdog::already_tripped(const std::string& rule) {
  for (const auto& i : incidents_) {
    if (i.rule == rule) {
      ++suppressed_;
      return true;
    }
  }
  return false;
}

void Watchdog::trip(const std::string& rule, const TimelinePoint& p,
                    const TimelineBuffer& history, double value,
                    double threshold, std::string detail) {
  Incident inc;
  inc.cell = cell_;
  inc.rule = rule;
  inc.interval = p.interval;
  inc.time_s = p.time_s;
  inc.value = value;
  inc.threshold = threshold;
  inc.detail = std::move(detail);
  if (rules_.incident_points > 0) {
    inc.points = history.recent(rules_.incident_points - 1);
    inc.points.push_back(p);  // the trigger itself is always captured
  }
  if (rules_.incident_spans > 0 && profiler_.enabled()) {
    std::vector<SpanRecord> recent = profiler_.snapshot().recent;
    const std::size_t n = std::min(rules_.incident_spans, recent.size());
    inc.spans.assign(recent.end() - static_cast<std::ptrdiff_t>(n),
                     recent.end());
  }
  incidents_.push_back(std::move(inc));
}

void Watchdog::check(const TimelinePoint& p, const TimelineBuffer& history) {
  // Flight-recorder contract: monitoring must never break the evaluation.
  // Every rule is wrapped so an unexpected failure (allocation, arithmetic)
  // degrades to "no incident", not an aborted sweep cell.
  try {
    if (rules_.check_finite && !already_tripped("non_finite")) {
      const auto bad = [](const std::vector<double>& v) {
        for (double x : v) {
          if (!std::isfinite(x)) return true;
        }
        return false;
      };
      if (!std::isfinite(p.dyn_power_w) || !std::isfinite(p.leak_power_w) ||
          bad(p.temp_k) || bad(p.fit_inst) || bad(p.fit_avg)) {
        trip("non_finite", p, history, std::nan(""), 0.0,
             "non-finite temperature, power, or FIT at interval " +
                 std::to_string(p.interval));
      }
    }

    if (rules_.max_temp_k > 0.0) {
      const double hottest = p.hottest_temp_k();
      if (hottest > rules_.max_temp_k && !already_tripped("over_temperature")) {
        char detail[128];
        std::snprintf(detail, sizeof detail,
                      "structure temperature %.2f K exceeds the %.2f K limit",
                      hottest, rules_.max_temp_k);
        trip("over_temperature", p, history, hottest, rules_.max_temp_k,
             detail);
      }
    }

    if (rules_.fit_spike_factor > 0.0 &&
        history.sampled().size() >= rules_.spike_min_samples) {
      std::vector<double> totals;
      totals.reserve(history.sampled().size());
      for (const auto& q : history.sampled()) totals.push_back(q.inst_total_fit());
      const auto mid = totals.begin() + static_cast<std::ptrdiff_t>(totals.size() / 2);
      std::nth_element(totals.begin(), mid, totals.end());
      const double median = *mid;
      const double limit = rules_.fit_spike_factor * median;
      if (median > 0.0 && p.inst_total_fit() > limit &&
          !already_tripped("fit_spike")) {
        char detail[160];
        std::snprintf(detail, sizeof detail,
                      "instantaneous FIT %.6g exceeds %.3gx the running "
                      "median %.6g",
                      p.inst_total_fit(), rules_.fit_spike_factor, median);
        trip("fit_spike", p, history, p.inst_total_fit(), limit, detail);
      }
    }
  } catch (...) {
    // Swallowed by design; see the contract above.
  }
}

std::string timeline_to_csv(const CellTimeline& t) {
  std::ostringstream out;
  out << "# ramp_timeline v1 cell=" << t.cell << " intervals=" << t.intervals
      << " stride=" << t.stride << " capacity=" << t.capacity << "\n";
  out << "interval,time_s,ipc,dyn_w,leak_w";
  for (const auto& n : t.temp_names) out << ",temp_k_" << n;
  for (const auto& n : t.fit_names) out << ",fit_inst_" << n;
  for (const auto& n : t.fit_names) out << ",fit_avg_" << n;
  out << '\n';
  for (const auto& p : t.points) {
    out << p.interval << ',' << num(p.time_s) << ',' << num(p.ipc) << ','
        << num(p.dyn_power_w) << ',' << num(p.leak_power_w);
    for (double v : p.temp_k) out << ',' << num(v);
    for (double v : p.fit_inst) out << ',' << num(v);
    for (double v : p.fit_avg) out << ',' << num(v);
    out << '\n';
  }
  return out.str();
}

std::string timeline_to_ndjson(const CellTimeline& t) {
  std::ostringstream out;
  out << "{\"cell\":" << json_quote(t.cell) << ",\"intervals\":" << t.intervals
      << ",\"stride\":" << t.stride << ",\"capacity\":" << t.capacity
      << ",\"temp_names\":[";
  for (std::size_t i = 0; i < t.temp_names.size(); ++i) {
    if (i > 0) out << ',';
    out << json_quote(t.temp_names[i]);
  }
  out << "],\"fit_names\":[";
  for (std::size_t i = 0; i < t.fit_names.size(); ++i) {
    if (i > 0) out << ',';
    out << json_quote(t.fit_names[i]);
  }
  out << "]}\n";
  for (const auto& p : t.points) {
    append_point_json(out, p);
    out << '\n';
  }
  return out.str();
}

std::string incident_to_json(const Incident& i) {
  std::ostringstream out;
  out << "{\"cell\":" << json_quote(i.cell) << ",\"rule\":" << json_quote(i.rule)
      << ",\"interval\":" << i.interval << ",\"time_s\":" << jnum(i.time_s)
      << ",\"value\":" << jnum(i.value) << ",\"threshold\":" << jnum(i.threshold)
      << ",\"detail\":" << json_quote(i.detail) << ",\"points\":[";
  for (std::size_t k = 0; k < i.points.size(); ++k) {
    if (k > 0) out << ',';
    append_point_json(out, i.points[k]);
  }
  out << "],\"spans\":[";
  for (std::size_t k = 0; k < i.spans.size(); ++k) {
    if (k > 0) out << ',';
    out << "{\"stage\":" << json_quote(std::string(stage_name(i.spans[k].stage)))
        << ",\"seconds\":" << jnum(i.spans[k].seconds) << '}';
  }
  out << "]}";
  return out.str();
}

std::string timeline_file_stem(const std::string& cell) {
  std::string stem = cell;
  for (char& c : stem) {
    if (c == '@' || c == '/' || c == '\\' || c == ':') c = '_';
  }
  return stem;
}

}  // namespace ramp::obs
