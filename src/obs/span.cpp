#include "obs/span.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ramp::obs {

std::string_view stage_name(Stage s) {
  switch (s) {
    case Stage::kTraceGen: return "trace_gen";
    case Stage::kSim: return "sim";
    case Stage::kPower: return "power";
    case Stage::kThermal: return "thermal";
    case Stage::kFit: return "fit";
    case Stage::kCache: return "cache";
    case Stage::kSchedule: return "schedule";
    case Stage::kTotal: return "total";
  }
  throw InvalidArgument("unknown stage");
}

// Each thread owns one log per profiler it has touched. The log's stage
// accumulators are relaxed atomics (writer: owner thread; readers: snapshot);
// the cell map is guarded by a mutex that only snapshot() ever contends.
// Logs are owned by the profiler state via shared_ptr and are never removed,
// so a thread that exits simply leaves its final totals behind; the
// thread-local cache also holds a shared_ptr, so a log outlives even its
// profiler if a detached thread records after the profiler is destroyed.
struct Profiler::ThreadLog {
  std::array<std::atomic<std::uint64_t>, kNumStages> nanos{};
  std::array<std::atomic<std::uint64_t>, kNumStages> spans{};

  std::mutex cell_mutex;
  std::map<std::string, std::array<StageAccum, kNumStages>> cells;

  // Ring of recent spans, packed stage-in-high-bits | nanos-in-low-bits so
  // one relaxed store publishes a record without tearing.
  static constexpr std::size_t kRingSize = 64;
  static constexpr std::uint64_t kNanosMask = (1ULL << 56) - 1;
  std::array<std::atomic<std::uint64_t>, kRingSize> ring{};
  std::atomic<std::uint64_t> ring_next{0};

  // Stable trace identity, assigned when the log is registered (see
  // ThreadTrace for the tid scheme).
  std::uint64_t tid = 0;
  int worker_id = -1;
  std::string thread_name;

  // Captured trace events. Writer: the owning thread; reader: snapshots and
  // reset. The mutex is uncontended on the hot path (the owner only ever
  // races a snapshot) and events are only captured when tracing is on.
  std::mutex trace_mutex;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
};

struct Profiler::State {
  mutable std::mutex mutex;
  std::vector<std::shared_ptr<ThreadLog>> logs;
  std::uint64_t non_workers = 0;  ///< non-pool threads registered so far

  std::atomic<bool> trace_on{false};
  std::size_t trace_capacity = 0;                   ///< set by enable_trace
  std::chrono::steady_clock::time_point trace_epoch{};  ///< set by enable_trace
};

namespace {

std::uint64_t next_profiler_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

struct CachedLog {
  std::uint64_t profiler_id;
  std::shared_ptr<Profiler::ThreadLog> log;
};

}  // namespace

Profiler::Profiler(bool enabled)
    : enabled_(enabled),
      id_(enabled ? next_profiler_id() : 0),
      state_(enabled ? std::make_shared<State>() : nullptr) {}

Profiler& Profiler::global() {
  static Profiler profiler(metrics_enabled_from_env());
  return profiler;
}

Profiler::ThreadLog& Profiler::local_log() {
  thread_local std::vector<CachedLog> t_logs;
  for (const auto& entry : t_logs) {
    if (entry.profiler_id == id_) return *entry.log;
  }
  auto log = std::make_shared<ThreadLog>();
  log->worker_id = ThreadPool::current_worker_id();
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    if (log->worker_id >= 0) {
      log->tid = 2 + static_cast<std::uint64_t>(log->worker_id);
      log->thread_name = "pool-worker-" + std::to_string(log->worker_id);
    } else if (state_->non_workers == 0) {
      log->tid = 1;
      log->thread_name = "main";
      ++state_->non_workers;
    } else {
      log->tid = 1000 + state_->non_workers;
      log->thread_name = "thread-" + std::to_string(state_->non_workers);
      ++state_->non_workers;
    }
    state_->logs.push_back(log);
  }
  t_logs.push_back({id_, log});
  return *t_logs.back().log;
}

void Profiler::enable_trace(std::size_t capacity_per_thread) {
  if (!enabled_) return;
  const std::lock_guard<std::mutex> lock(state_->mutex);
  if (state_->trace_on.load(std::memory_order_relaxed)) return;
  state_->trace_capacity = capacity_per_thread;
  state_->trace_epoch = std::chrono::steady_clock::now();
  state_->trace_on.store(true, std::memory_order_release);
}

bool Profiler::trace_enabled() const {
  return enabled_ && state_->trace_on.load(std::memory_order_acquire);
}

void Profiler::record_event(Stage s, std::string name,
                            std::chrono::steady_clock::time_point start,
                            std::chrono::steady_clock::time_point end) {
  if (!trace_enabled()) return;
  ThreadLog& log = local_log();
  // The epoch is written once before trace_on is published (acquire above),
  // so this unlocked read is safe.
  const auto epoch = state_->trace_epoch;
  TraceEvent ev;
  ev.stage = s;
  ev.name = std::move(name);
  ev.ts_ns = start <= epoch
                 ? 0
                 : static_cast<std::uint64_t>(
                       std::chrono::nanoseconds(start - epoch).count());
  ev.dur_ns = end <= start
                  ? 0
                  : static_cast<std::uint64_t>(
                        std::chrono::nanoseconds(end - start).count());
  const std::lock_guard<std::mutex> lock(log.trace_mutex);
  if (log.events.size() >= state_->trace_capacity) {
    ++log.dropped;
    return;
  }
  log.events.push_back(std::move(ev));
}

void Profiler::record_cell_timed(Stage s, const std::string& cell,
                                 std::chrono::steady_clock::time_point start,
                                 std::chrono::steady_clock::time_point end,
                                 std::uint64_t spans) {
  if (!enabled_) return;
  record_cell(s, cell,
              std::chrono::duration<double>(end - start).count(), spans);
  record_event(s, cell, start, end);
}

std::vector<ThreadTrace> Profiler::trace_snapshot() const {
  std::vector<ThreadTrace> out;
  if (!enabled_) return out;
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    logs = state_->logs;
  }
  for (const auto& log : logs) {
    ThreadTrace t;
    t.tid = log->tid;
    t.worker_id = log->worker_id;
    t.name = log->thread_name;
    {
      const std::lock_guard<std::mutex> lock(log->trace_mutex);
      t.dropped = log->dropped;
      t.events = log->events;
    }
    if (t.events.empty() && t.dropped == 0) continue;
    out.push_back(std::move(t));
  }
  std::sort(out.begin(), out.end(),
            [](const ThreadTrace& a, const ThreadTrace& b) {
              return a.tid < b.tid;
            });
  return out;
}

void Profiler::record(Stage s, double seconds, std::uint64_t spans) {
  if (!enabled_) return;
  ThreadLog& log = local_log();
  const auto i = static_cast<std::size_t>(s);
  const auto ns =
      static_cast<std::uint64_t>(std::llround(std::max(0.0, seconds) * 1e9));
  log.nanos[i].fetch_add(ns, std::memory_order_relaxed);
  log.spans[i].fetch_add(spans, std::memory_order_relaxed);
  const std::uint64_t slot =
      log.ring_next.fetch_add(1, std::memory_order_relaxed) %
      ThreadLog::kRingSize;
  log.ring[slot].store((static_cast<std::uint64_t>(i) << 56) |
                           (ns & ThreadLog::kNanosMask),
                       std::memory_order_relaxed);
}

std::array<std::uint64_t, kNumStages> Profiler::thread_stage_nanos() {
  std::array<std::uint64_t, kNumStages> out{};
  if (!enabled_) return out;
  ThreadLog& log = local_log();
  for (int i = 0; i < kNumStages; ++i) {
    const auto si = static_cast<std::size_t>(i);
    out[si] = log.nanos[si].load(std::memory_order_relaxed);
  }
  return out;
}

void Profiler::record_cell(Stage s, const std::string& cell, double seconds,
                           std::uint64_t spans) {
  if (!enabled_) return;
  record(s, seconds, spans);
  ThreadLog& log = local_log();
  const std::lock_guard<std::mutex> lock(log.cell_mutex);
  StageAccum& acc = log.cells[cell][static_cast<std::size_t>(s)];
  acc.seconds += seconds;
  acc.spans += spans;
}

StageProfile Profiler::snapshot() const {
  StageProfile profile;
  if (!enabled_) return profile;
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    logs = state_->logs;
  }
  for (const auto& log : logs) {
    for (int i = 0; i < kNumStages; ++i) {
      const auto si = static_cast<std::size_t>(i);
      profile.totals[si].seconds +=
          static_cast<double>(log->nanos[si].load(std::memory_order_relaxed)) * 1e-9;
      profile.totals[si].spans += log->spans[si].load(std::memory_order_relaxed);
    }
    {
      const std::lock_guard<std::mutex> lock(log->cell_mutex);
      for (const auto& [cell, accums] : log->cells) {
        auto& dst = profile.cells[cell];
        for (int i = 0; i < kNumStages; ++i) {
          const auto si = static_cast<std::size_t>(i);
          dst[si].seconds += accums[si].seconds;
          dst[si].spans += accums[si].spans;
        }
      }
    }
    const std::uint64_t written = log->ring_next.load(std::memory_order_relaxed);
    const std::uint64_t n = std::min<std::uint64_t>(written, ThreadLog::kRingSize);
    for (std::uint64_t k = 0; k < n; ++k) {
      const std::uint64_t packed = log->ring[k].load(std::memory_order_relaxed);
      SpanRecord r;
      r.stage = static_cast<Stage>(packed >> 56);
      r.seconds =
          static_cast<double>(packed & ThreadLog::kNanosMask) * 1e-9;
      profile.recent.push_back(r);
    }
  }
  return profile;
}

void Profiler::reset() {
  if (!enabled_) return;
  const std::lock_guard<std::mutex> lock(state_->mutex);
  for (const auto& log : state_->logs) {
    for (int i = 0; i < kNumStages; ++i) {
      const auto si = static_cast<std::size_t>(i);
      log->nanos[si].store(0, std::memory_order_relaxed);
      log->spans[si].store(0, std::memory_order_relaxed);
    }
    {
      const std::lock_guard<std::mutex> cell_lock(log->cell_mutex);
      log->cells.clear();
    }
    log->ring_next.store(0, std::memory_order_relaxed);
    for (auto& slot : log->ring) slot.store(0, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> trace_lock(log->trace_mutex);
    log->events.clear();
    log->dropped = 0;
  }
}

Span::Span(Stage s, Profiler& p) : profiler_(p), stage_(s) {
  if (profiler_.enabled()) {
    start_ = std::chrono::steady_clock::now();
    running_ = true;
  }
}

Span::Span(Stage s, std::string cell, Profiler& p)
    : profiler_(p), stage_(s), cell_(std::move(cell)) {
  if (profiler_.enabled()) {
    start_ = std::chrono::steady_clock::now();
    running_ = true;
  }
}

double Span::stop() {
  if (!running_) return 0.0;
  running_ = false;
  const auto end = std::chrono::steady_clock::now();
  const std::chrono::duration<double> wall = end - start_;
  if (cell_.empty()) {
    profiler_.record(stage_, wall.count());
  } else {
    profiler_.record_cell(stage_, cell_, wall.count());
  }
  if (profiler_.trace_enabled()) {
    profiler_.record_event(
        stage_, cell_.empty() ? std::string(stage_name(stage_)) : cell_,
        start_, end);
  }
  return wall.count();
}

}  // namespace ramp::obs
