// Wall-time tracing: RAII spans feeding per-thread buffers that aggregate
// into a per-stage profile of the evaluation pipeline.
//
// A Span times one section of one pipeline stage (trace-gen / sim / power /
// thermal / FIT / cache / schedule) and records the elapsed wall time when
// it is stopped or destroyed. Records land in the calling thread's own log —
// two relaxed atomic adds plus a slot in a small ring buffer of recent
// spans — so the hot path takes no lock and scales across pool workers.
// Profiler::snapshot() merges every thread's log into one StageProfile:
// process totals per stage, per-cell ("app@node") breakdowns, and the most
// recent raw spans.
//
// Hot loops that would otherwise start a span per iteration (the evaluator's
// per-interval transient loop) accumulate into plain local doubles and
// publish once per run via record_cell(); a Span is for section-sized work.
//
// Like the metrics registry, the process-wide Profiler::global() is gated
// by RAMP_METRICS: when disabled, record() and Span reduce to one branch
// and no clock is read.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ramp::obs {

/// Pipeline stages the profile is keyed by. kTotal is the whole evaluator
/// run (so exporters and tests can check the stage sum against it);
/// kSchedule is time spent queued behind a thread pool, which is deliberately
/// *not* part of kTotal.
enum class Stage : int {
  kTraceGen = 0,
  kSim,
  kPower,
  kThermal,
  kFit,
  kCache,
  kSchedule,
  kTotal,
};
inline constexpr int kNumStages = 8;

/// Stable lowercase identifier ("trace_gen", "sim", ..., "total"); used as
/// the `stage` label by the exporters.
std::string_view stage_name(Stage s);

struct StageAccum {
  double seconds = 0.0;
  std::uint64_t spans = 0;
};

/// One recent span as drained from a thread's ring buffer (newest data only;
/// the rings are fixed-size and overwrite).
struct SpanRecord {
  Stage stage = Stage::kTotal;
  double seconds = 0.0;
};

struct StageProfile {
  std::array<StageAccum, kNumStages> totals{};
  /// Per-cell breakdown, keyed "app@node" (e.g. "gcc@90").
  std::map<std::string, std::array<StageAccum, kNumStages>> cells;
  /// Recent spans across all threads, unordered between threads.
  std::vector<SpanRecord> recent;

  double seconds(Stage s) const {
    return totals[static_cast<std::size_t>(s)].seconds;
  }
};

/// One complete slice captured for the Chrome-trace exporter. Timestamps are
/// nanoseconds since the profiler's trace epoch (set by enable_trace), so
/// events from different threads share one causal timebase.
struct TraceEvent {
  Stage stage = Stage::kTotal;
  std::string name;  ///< display name: the cell, or the stage name
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// All events one thread captured, with a *stable* synthetic thread id:
/// pool worker k maps to tid 2+k on every run, the first non-worker thread
/// (the main/serve loop) to tid 1, and later non-workers to 1001, 1002, ...
/// — so traces from repeated runs line up in the viewer.
struct ThreadTrace {
  std::uint64_t tid = 0;
  int worker_id = -1;  ///< ThreadPool::current_worker_id(), -1 off-pool
  std::string name;    ///< "main", "pool-worker-3", "thread-2"
  std::uint64_t dropped = 0;  ///< events discarded once the buffer filled
  std::vector<TraceEvent> events;  ///< in capture order
};

class Profiler {
 public:
  explicit Profiler(bool enabled);

  /// The process-wide profiler, enabled per RAMP_METRICS (same strict gate
  /// as MetricsRegistry::global()).
  static Profiler& global();

  bool enabled() const { return enabled_; }

  /// Adds `seconds` of wall time (covering `spans` spans) to stage `s` in
  /// the calling thread's log. Lock-free; no-op when disabled.
  void record(Stage s, double seconds, std::uint64_t spans = 1);

  /// record() plus a per-cell attribution under the "app@node" key `cell`.
  /// Takes the calling thread's (uncontended) cell-map lock; intended for
  /// once-per-run publication, not per-interval calls.
  void record_cell(Stage s, const std::string& cell, double seconds,
                   std::uint64_t spans = 1);

  /// Merged view of every thread's log (including threads that have since
  /// exited). Safe to call concurrently with record().
  StageProfile snapshot() const;

  /// The *calling thread's* cumulative per-stage nanoseconds. Two reads
  /// bracketing a section attribute exactly that section's stage work to it
  /// (a pool worker runs one evaluation at a time), which is how the serve
  /// path splits a request's compute phase by pipeline stage without adding
  /// clock reads. All zeros when the profiler is disabled.
  std::array<std::uint64_t, kNumStages> thread_stage_nanos();

  /// Switches on Chrome-trace event capture (requires an enabled profiler;
  /// no-op otherwise). Sets the trace epoch on first call; idempotent after.
  /// Each thread buffers at most `capacity_per_thread` events and counts
  /// further ones as dropped, so capture is bounded.
  void enable_trace(std::size_t capacity_per_thread = 1 << 16);
  bool trace_enabled() const;

  /// Appends one complete [start, end) slice to the calling thread's event
  /// buffer. No-op unless tracing is enabled. Does *not* feed the stage
  /// accumulators — pair with record()/record_cell() for that.
  void record_event(Stage s, std::string name,
                    std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end);

  /// record_cell() plus, when tracing, a trace event named `cell` covering
  /// [start, end). The lap-timing call sites in the evaluator already hold
  /// both endpoints, so this adds no clock reads.
  void record_cell_timed(Stage s, const std::string& cell,
                         std::chrono::steady_clock::time_point start,
                         std::chrono::steady_clock::time_point end,
                         std::uint64_t spans = 1);

  /// Per-thread captured events, sorted by tid. Safe to call concurrently
  /// with record_event().
  std::vector<ThreadTrace> trace_snapshot() const;

  /// Zeroes all logs (including captured trace events). Call only when no
  /// spans are in flight (tests, the serve metrics_reset barrier).
  void reset();

  // Implementation detail, public only so the translation unit's helpers can
  // name it; not part of the API.
  struct ThreadLog;

 private:
  struct State;
  ThreadLog& local_log();

  const bool enabled_;
  std::uint64_t id_ = 0;  ///< distinguishes profiler instances in thread caches
  std::shared_ptr<State> state_;
};

/// RAII span: starts timing at construction, records into the profiler at
/// stop()/destruction. Costs two steady_clock reads when enabled, one branch
/// when not.
class Span {
 public:
  explicit Span(Stage s, Profiler& p = Profiler::global());
  /// Attributes the span to `cell` ("app@node") as well as the stage total.
  Span(Stage s, std::string cell, Profiler& p = Profiler::global());
  ~Span() { stop(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Records now (idempotent) and returns the elapsed seconds (0 when the
  /// profiler is disabled).
  double stop();

 private:
  Profiler& profiler_;
  Stage stage_;
  std::string cell_;
  std::chrono::steady_clock::time_point start_{};
  bool running_ = false;
};

}  // namespace ramp::obs
