#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "util/error.hpp"

namespace ramp::obs {

namespace {

// %.17g round-trips doubles; integers below 2^53 print without an exponent
// or decimal point, which keeps counter samples grep-able.
std::string num(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// Minimal JSON string escape: metric names are validated identifiers and
// cell keys are app@node tokens, but quote the full set anyway.
std::string jstr(const std::string& s) { return json_quote(s); }

void prometheus_histogram(std::ostringstream& out, const HistogramSnapshot& h) {
  out << "# TYPE " << h.name << " histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    cumulative += h.counts[i];
    out << h.name << "_bucket{le=\""
        << (i < h.bounds.size() ? num(h.bounds[i]) : "+Inf") << "\"} "
        << cumulative << '\n';
  }
  out << h.name << "_sum " << num(h.sum) << '\n';
  out << h.name << "_count " << h.count << '\n';
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snap,
                          const StageProfile* profile) {
  std::ostringstream out;
  for (const auto& [name, value] : snap.counters) {
    out << "# TYPE " << name << " counter\n" << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    out << "# TYPE " << name << " gauge\n" << name << ' ' << num(value) << '\n';
  }
  for (const auto& h : snap.histograms) prometheus_histogram(out, h);

  if (profile != nullptr) {
    out << "# TYPE ramp_stage_seconds_total counter\n";
    for (int i = 0; i < kNumStages; ++i) {
      const auto& acc = profile->totals[static_cast<std::size_t>(i)];
      out << "ramp_stage_seconds_total{stage=\""
          << stage_name(static_cast<Stage>(i)) << "\"} " << num(acc.seconds)
          << '\n';
    }
    out << "# TYPE ramp_stage_spans_total counter\n";
    for (int i = 0; i < kNumStages; ++i) {
      const auto& acc = profile->totals[static_cast<std::size_t>(i)];
      out << "ramp_stage_spans_total{stage=\""
          << stage_name(static_cast<Stage>(i)) << "\"} " << acc.spans << '\n';
    }
    if (!profile->cells.empty()) {
      out << "# TYPE ramp_stage_cell_seconds_total counter\n";
      for (const auto& [cell, accums] : profile->cells) {
        for (int i = 0; i < kNumStages; ++i) {
          const auto& acc = accums[static_cast<std::size_t>(i)];
          if (acc.spans == 0) continue;
          out << "ramp_stage_cell_seconds_total{cell=\"" << cell
              << "\",stage=\"" << stage_name(static_cast<Stage>(i)) << "\"} "
              << num(acc.seconds) << '\n';
        }
      }
    }
  }
  return out.str();
}

std::string to_ndjson(const MetricsSnapshot& snap, const StageProfile* profile) {
  std::ostringstream out;
  out << '{';

  out << "\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0) out << ',';
    out << jstr(snap.counters[i].first) << ':' << snap.counters[i].second;
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) out << ',';
    out << jstr(snap.gauges[i].first) << ':' << num(snap.gauges[i].second);
  }
  out << "},\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    if (i > 0) out << ',';
    out << jstr(h.name) << ":{\"bounds\":[";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out << ',';
      out << num(h.bounds[b]);
    }
    out << "],\"counts\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out << ',';
      out << h.counts[b];
    }
    out << "],\"sum\":" << num(h.sum) << ",\"count\":" << h.count << '}';
  }
  out << '}';

  if (profile != nullptr) {
    out << ",\"stages\":{";
    for (int i = 0; i < kNumStages; ++i) {
      const auto& acc = profile->totals[static_cast<std::size_t>(i)];
      if (i > 0) out << ',';
      out << jstr(std::string(stage_name(static_cast<Stage>(i))))
          << ":{\"seconds\":" << num(acc.seconds) << ",\"spans\":" << acc.spans
          << '}';
    }
    out << "},\"cells\":{";
    bool first_cell = true;
    for (const auto& [cell, accums] : profile->cells) {
      if (!first_cell) out << ',';
      first_cell = false;
      out << jstr(cell) << ":{";
      bool first_stage = true;
      for (int i = 0; i < kNumStages; ++i) {
        const auto& acc = accums[static_cast<std::size_t>(i)];
        if (acc.spans == 0) continue;
        if (!first_stage) out << ',';
        first_stage = false;
        out << jstr(std::string(stage_name(static_cast<Stage>(i))))
            << ":{\"seconds\":" << num(acc.seconds)
            << ",\"spans\":" << acc.spans << '}';
      }
      out << '}';
    }
    out << '}';
  }
  out << '}';
  return out.str();
}

std::map<std::string, double> parse_prometheus_text(const std::string& text) {
  std::map<std::string, double> samples;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // A sample is `name[{labels}] value`; the value starts after the last
    // space (label values never contain spaces in our output).
    const std::size_t space = line.find_last_of(' ');
    RAMP_REQUIRE(space != std::string::npos && space > 0 &&
                     space + 1 < line.size(),
                 "malformed Prometheus sample line: " + line);
    const std::string key = line.substr(0, space);
    const std::string value_text = line.substr(space + 1);
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    RAMP_REQUIRE(end != nullptr && *end == '\0',
                 "malformed Prometheus sample value: " + line);
    samples[key] = value;
  }
  return samples;
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

void write_text_file_atomic(const std::string& path, const std::string& body) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path target = fs::absolute(fs::path(path), ec);
  RAMP_REQUIRE(!ec, "cannot resolve output path " + path);
  if (target.has_parent_path()) fs::create_directories(target.parent_path(), ec);
  fs::path tmp = target;
  tmp += ".tmp." + std::to_string(::getpid());
  {
    std::ofstream f(tmp);
    RAMP_REQUIRE(f.good(), "cannot write file " + tmp.string());
    f << body;
    RAMP_REQUIRE(f.good(), "short write to file " + tmp.string());
  }
  ec.clear();
  fs::rename(tmp, target, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw InvalidArgument("cannot publish file " + target.string());
  }
}

void write_metrics_file(const std::string& path, const MetricsSnapshot& snap,
                        const StageProfile* profile) {
  const bool json = path.size() >= 5 && path.rfind(".json") == path.size() - 5;
  write_text_file_atomic(
      path, json ? to_ndjson(snap, profile) + "\n" : to_prometheus(snap, profile));
}

}  // namespace ramp::obs
