#include "obs/reqtrace.hpp"

#include <algorithm>
#include <sstream>

#include "obs/export.hpp"
#include "util/error.hpp"

namespace ramp::obs {

std::string_view phase_name(Phase p) {
  switch (p) {
    case Phase::kRead: return "read";
    case Phase::kParse: return "parse";
    case Phase::kAdmission: return "admission";
    case Phase::kQueue: return "queue";
    case Phase::kCache: return "cache";
    case Phase::kCompute: return "compute";
    case Phase::kSerialize: return "serialize";
    case Phase::kFlush: return "flush";
  }
  throw InvalidArgument("unknown phase");
}

TraceRing::TraceRing(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

std::uint64_t TraceRing::to_epoch_ns(
    std::chrono::steady_clock::time_point t) const {
  if (t <= epoch_) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::nanoseconds(t - epoch_).count());
}

void TraceRing::push(RequestTrace rec) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
  } else {
    ring_[next_] = std::move(rec);
  }
  next_ = (next_ + 1) % capacity_;
  ++pushed_;
}

std::vector<RequestTrace> TraceRing::snapshot() const {
  std::vector<RequestTrace> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Full ring: next_ points at the oldest record.
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  }
  return out;
}

void TraceRing::clear() {
  ring_.clear();
  next_ = 0;
}

namespace {

/// The compute sub-stages worth drawing as their own slices (the pipeline
/// proper; kCache/kSchedule/kTotal are already covered by the phases).
constexpr Stage kComputeStages[] = {Stage::kTraceGen, Stage::kSim,
                                    Stage::kPower, Stage::kThermal,
                                    Stage::kFit};

void push_child(std::vector<TraceEvent>& events, Stage cat, std::string name,
                std::uint64_t ts_ns, std::uint64_t dur_ns) {
  TraceEvent ev;
  ev.stage = cat;
  ev.name = std::move(name);
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  events.push_back(std::move(ev));
}

}  // namespace

std::vector<ThreadTrace> request_lanes(const std::vector<RequestTrace>& recs) {
  std::vector<const RequestTrace*> sorted;
  sorted.reserve(recs.size());
  for (const RequestTrace& r : recs) sorted.push_back(&r);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const RequestTrace* a, const RequestTrace* b) {
                     return a->start_ns < b->start_ns;
                   });

  std::vector<ThreadTrace> lanes;
  std::vector<std::uint64_t> lane_end;
  for (const RequestTrace* r : sorted) {
    // First-fit: the first lane whose previous request ended by our start.
    std::size_t lane = lane_end.size();
    for (std::size_t k = 0; k < lane_end.size(); ++k) {
      if (lane_end[k] <= r->start_ns) {
        lane = k;
        break;
      }
    }
    if (lane == lane_end.size()) {
      lane_end.push_back(0);
      ThreadTrace t;
      t.tid = 1 + lane;
      t.worker_id = -1;
      t.name = "requests-lane-" + std::to_string(lane);
      lanes.push_back(std::move(t));
    }
    const std::uint64_t end = r->start_ns + std::max<std::uint64_t>(
                                               r->total_ns, 1);
    lane_end[lane] = end;

    std::string title = r->op;
    if (!r->label.empty()) title += " " + r->label;
    if (!r->trace_id.empty()) title += " [" + r->trace_id + "]";
    push_child(lanes[lane].events, Stage::kTotal, std::move(title),
               r->start_ns, std::max<std::uint64_t>(r->total_ns, 1));

    // Phases back-to-back from the request start (attribution layout, not a
    // literal schedule — see the header comment).
    std::uint64_t cursor = r->start_ns;
    for (int p = 0; p < kNumPhases; ++p) {
      const auto ns = r->phase_ns[static_cast<std::size_t>(p)];
      if (ns == 0) continue;
      const Phase phase = static_cast<Phase>(p);
      if (phase == Phase::kCompute) {
        std::uint64_t staged = 0;
        for (Stage s : kComputeStages) {
          staged += r->stage_ns[static_cast<std::size_t>(s)];
        }
        if (staged > 0) {
          std::uint64_t sub_cursor = cursor;
          for (Stage s : kComputeStages) {
            const auto sns = r->stage_ns[static_cast<std::size_t>(s)];
            if (sns == 0) continue;
            push_child(lanes[lane].events, s, std::string(stage_name(s)),
                       sub_cursor, sns);
            sub_cursor += sns;
          }
          cursor += ns;
          continue;
        }
      }
      Stage cat = Stage::kTotal;
      if (phase == Phase::kQueue) cat = Stage::kSchedule;
      if (phase == Phase::kCache) cat = Stage::kCache;
      push_child(lanes[lane].events, cat, std::string(phase_name(phase)),
                 cursor, ns);
      cursor += ns;
    }
  }
  return lanes;
}

std::string request_trace_json(const RequestTrace& rec, double wall_unix_ms) {
  std::ostringstream out;
  out << "{\"ts_ms\":" << static_cast<std::uint64_t>(wall_unix_ms)
      << ",\"trace_id\":" << json_quote(rec.trace_id)
      << ",\"op\":" << json_quote(rec.op);
  if (!rec.label.empty()) out << ",\"label\":" << json_quote(rec.label);
  out << ",\"ok\":" << (rec.ok ? "true" : "false")
      << ",\"cached\":" << (rec.cached ? "true" : "false")
      << ",\"coalesced\":" << (rec.coalesced ? "true" : "false")
      << ",\"start_ns\":" << rec.start_ns
      << ",\"total_ns\":" << rec.total_ns << ",\"phases\":{";
  for (int p = 0; p < kNumPhases; ++p) {
    if (p > 0) out << ',';
    out << json_quote(std::string(phase_name(static_cast<Phase>(p)))) << ':'
        << rec.phase_ns[static_cast<std::size_t>(p)];
  }
  out << '}';
  bool any_stage = false;
  for (const auto ns : rec.stage_ns) any_stage = any_stage || ns != 0;
  if (any_stage) {
    out << ",\"stages\":{";
    bool first = true;
    for (int s = 0; s < kNumStages; ++s) {
      const auto ns = rec.stage_ns[static_cast<std::size_t>(s)];
      if (ns == 0) continue;
      if (!first) out << ',';
      first = false;
      out << json_quote(std::string(stage_name(static_cast<Stage>(s))))
          << ':' << ns;
    }
    out << '}';
  }
  out << '}';
  return out.str();
}

}  // namespace ramp::obs
