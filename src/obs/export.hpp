// Exporters for the observability subsystem: Prometheus text exposition
// format and a one-line NDJSON snapshot, plus a small Prometheus-text
// parser used for round-trip tests and by scripted consumers.
//
// Output is deterministic: metrics are emitted sorted by name, stage
// samples in Stage enum order, cells in lexicographic order — so golden
// tests can compare whole documents.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace ramp::obs {

/// Prometheus text format (version 0.0.4): `# TYPE` headers, one sample per
/// line. The stage profile (when non-null) adds
///   ramp_stage_seconds_total{stage="sim"} / ramp_stage_spans_total{...}
/// and per-cell
///   ramp_stage_cell_seconds_total{cell="gcc@90",stage="sim"}.
std::string to_prometheus(const MetricsSnapshot& snap,
                          const StageProfile* profile = nullptr);

/// One-line JSON snapshot (NDJSON-friendly):
///   {"counters":{...},"gauges":{...},"histograms":{name:{"bounds":[...],
///    "counts":[...],"sum":s,"count":n}},"stages":{...},"cells":{...}}
std::string to_ndjson(const MetricsSnapshot& snap,
                      const StageProfile* profile = nullptr);

/// Parses Prometheus text into {sample name with labels -> value}; `# ...`
/// comment lines are skipped. Throws InvalidArgument on a malformed sample
/// line. The inverse of to_prometheus up to float formatting.
std::map<std::string, double> parse_prometheus_text(const std::string& text);

/// Writes a snapshot to `path` (atomically: same-directory temp + rename):
/// NDJSON when the path ends in ".json", Prometheus text otherwise.
/// Throws Error when the file cannot be written.
void write_metrics_file(const std::string& path, const MetricsSnapshot& snap,
                        const StageProfile* profile = nullptr);

/// The atomic text-file writer behind write_metrics_file, shared with the
/// timeline/trace exporters: creates missing parent directories, writes a
/// same-directory temp file, then renames it over `path`. Throws Error when
/// the file cannot be written or published.
void write_text_file_atomic(const std::string& path, const std::string& body);

/// JSON string literal (quotes included) with the minimal escapes the obs
/// exporters need; shared by the NDJSON/timeline/trace emitters.
std::string json_quote(const std::string& s);

}  // namespace ramp::obs
