#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/env.hpp"
#include "util/error.hpp"

namespace ramp::obs {

namespace detail {

HistogramCell::HistogramCell(std::vector<double> upper_bounds)
    : bounds(std::move(upper_bounds)), buckets(bounds.size() + 1) {}

void HistogramCell::observe(double x) {
  // Branchless-enough linear scan: bucket counts are small (tens) and the
  // common observation lands early; a binary search would not pay for itself.
  std::size_t i = 0;
  while (i < bounds.size() && x > bounds[i]) ++i;
  buckets[i].fetch_add(1, std::memory_order_relaxed);
  count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum, x);
}

}  // namespace detail

void MetricsSnapshot::merge_from(const MetricsSnapshot& other) {
  counters.insert(counters.end(), other.counters.begin(), other.counters.end());
  gauges.insert(gauges.end(), other.gauges.begin(), other.gauges.end());
  histograms.insert(histograms.end(), other.histograms.begin(),
                    other.histograms.end());
}

double histogram_quantile(const HistogramSnapshot& h, double q) {
  RAMP_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (h.count == 0) return 0.0;
  const double target = q * static_cast<double>(h.count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    const std::uint64_t in_bucket = h.counts[i];
    if (static_cast<double>(cumulative + in_bucket) < target || in_bucket == 0) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= h.bounds.size()) return h.bounds.empty() ? 0.0 : h.bounds.back();
    const double hi = h.bounds[i];
    double lo;
    if (i == 0) {
      const double width = h.bounds.size() > 1 ? h.bounds[1] - h.bounds[0] : hi;
      lo = std::max(0.0, hi - width);
    } else {
      lo = h.bounds[i - 1];
    }
    const double frac =
        (target - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return h.bounds.empty() ? 0.0 : h.bounds.back();
}

bool metrics_enabled_from_env() {
  static const bool enabled = env_on_off("RAMP_METRICS", true);
  return enabled;
}

MetricsRegistry::MetricsRegistry(bool enabled) : enabled_(enabled) {}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry(metrics_enabled_from_env());
  return registry;
}

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!head(name.front())) return false;
  for (char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

}  // namespace

void MetricsRegistry::check_name(std::string_view name, Kind kind) const {
  RAMP_REQUIRE(valid_metric_name(name),
               "invalid metric name '" + std::string(name) +
                   "' (want [a-zA-Z_:][a-zA-Z0-9_:]*)");
  if (const auto it = kinds_.find(name); it != kinds_.end()) {
    RAMP_REQUIRE(it->second == kind, "metric '" + std::string(name) +
                                         "' already registered with a "
                                         "different kind");
  }
}

Counter MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  check_name(name, Kind::kCounter);
  if (!enabled_) return Counter{};
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name),
                           std::make_unique<detail::CounterCell>()).first;
    kinds_.emplace(std::string(name), Kind::kCounter);
  }
  return Counter(it->second.get());
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  check_name(name, Kind::kGauge);
  if (!enabled_) return Gauge{};
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name),
                         std::make_unique<detail::GaugeCell>()).first;
    kinds_.emplace(std::string(name), Kind::kGauge);
  }
  return Gauge(it->second.get());
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<double> upper_bounds) {
  RAMP_REQUIRE(!upper_bounds.empty(), "histogram needs at least one bound");
  for (std::size_t i = 0; i < upper_bounds.size(); ++i) {
    RAMP_REQUIRE(std::isfinite(upper_bounds[i]),
                 "histogram bounds must be finite (+Inf is implicit)");
    RAMP_REQUIRE(i == 0 || upper_bounds[i - 1] < upper_bounds[i],
                 "histogram bounds must be strictly ascending");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  check_name(name, Kind::kHistogram);
  if (!enabled_) return Histogram{};
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<detail::HistogramCell>(std::move(upper_bounds)))
             .first;
    kinds_.emplace(std::string(name), Kind::kHistogram);
  } else {
    RAMP_REQUIRE(it->second->bounds == upper_bounds,
                 "histogram '" + std::string(name) +
                     "' already registered with different bounds");
  }
  return Histogram(it->second.get());
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  const std::lock_guard<std::mutex> lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) {
    snap.counters.emplace_back(name, cell->value.load(std::memory_order_relaxed));
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, cell] : gauges_) {
    snap.gauges.emplace_back(name, cell->value.load(std::memory_order_relaxed));
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, cell] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.bounds = cell->bounds;
    h.counts.reserve(cell->buckets.size());
    for (const auto& b : cell->buckets) {
      h.counts.push_back(b.load(std::memory_order_relaxed));
    }
    h.sum = cell->sum.load(std::memory_order_relaxed);
    h.count = cell->count.load(std::memory_order_relaxed);
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, cell] : counters_) cell->value.store(0);
  for (auto& [name, cell] : gauges_) cell->value.store(0.0);
  for (auto& [name, cell] : histograms_) {
    for (auto& b : cell->buckets) b.store(0);
    cell->sum.store(0.0);
    cell->count.store(0);
  }
}

}  // namespace ramp::obs
