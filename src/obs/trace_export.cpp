#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/export.hpp"

namespace ramp::obs {

namespace {

// Microseconds with nanosecond resolution; the trace-event format takes
// fractional "ts"/"dur" and both viewers render them exactly.
std::string micros(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  return buf;
}

struct FlatEvent {
  std::uint64_t tid = 0;
  const TraceEvent* ev = nullptr;
};

}  // namespace

std::string to_chrome_trace(const std::vector<ThreadTrace>& threads,
                            const std::string& process_name) {
  // One synthetic process; the tids carry the thread structure.
  constexpr int kPid = 1;

  std::vector<const ThreadTrace*> ordered;
  ordered.reserve(threads.size());
  for (const auto& t : threads) ordered.push_back(&t);
  std::sort(ordered.begin(), ordered.end(),
            [](const ThreadTrace* a, const ThreadTrace* b) {
              return a->tid < b->tid;
            });

  std::vector<FlatEvent> events;
  for (const auto* t : ordered) {
    for (const auto& ev : t->events) events.push_back({t->tid, &ev});
  }
  std::sort(events.begin(), events.end(),
            [](const FlatEvent& a, const FlatEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.ev->ts_ns != b.ev->ts_ns) return a.ev->ts_ns < b.ev->ts_ns;
              // Longer slices first so enclosing spans precede their
              // children at equal start times.
              if (a.ev->dur_ns != b.ev->dur_ns) return a.ev->dur_ns > b.ev->dur_ns;
              return a.ev->name < b.ev->name;
            });

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out << "{\"ph\":\"M\",\"pid\":" << kPid
      << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":"
      << json_quote(process_name) << "}}";
  for (const auto* t : ordered) {
    out << ",{\"ph\":\"M\",\"pid\":" << kPid << ",\"tid\":" << t->tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":"
        << json_quote(t->name) << "}}";
  }
  for (const auto& e : events) {
    out << ",{\"ph\":\"X\",\"pid\":" << kPid << ",\"tid\":" << e.tid
        << ",\"ts\":" << micros(e.ev->ts_ns)
        << ",\"dur\":" << micros(e.ev->dur_ns)
        << ",\"cat\":" << json_quote(std::string(stage_name(e.ev->stage)))
        << ",\"name\":" << json_quote(e.ev->name) << '}';
  }
  out << "]}";
  return out.str();
}

void write_trace_file(const std::string& path,
                      const std::vector<ThreadTrace>& threads,
                      const std::string& process_name) {
  write_text_file_atomic(path, to_chrome_trace(threads, process_name) + "\n");
}

}  // namespace ramp::obs
