// Flight recorder: bounded per-interval physics timelines plus an anomaly
// watchdog over them.
//
// The evaluator's transient loop produces one physics sample per RAMP
// interval — per-structure temperature, dynamic and leakage power, and the
// per-mechanism instantaneous FIT. A full trace is O(intervals) and a sweep
// runs 80 cells, so TimelineBuffer keeps a *bounded* deterministic sketch:
// points are admitted at a sampling stride that doubles whenever the buffer
// fills (classic stride-doubling reservoir), which keeps memory at
// O(capacity) while the retained points stay exactly reproducible for a
// given input sequence — no RNG, no clocks, so jobs=1 and jobs=4 sweeps
// export byte-identical CSVs. The most recent raw (undownsampled) points
// are additionally kept in a small ring for incident dumps.
//
// The obs layer stays generic: a TimelinePoint carries plain vectors of
// temperatures/FITs and CellTimeline carries the column names as metadata
// supplied by the pipeline, so ramp_obs keeps depending only on ramp_util.
//
// Watchdog checks each point against declarative rules (over-temperature,
// non-finite values, instantaneous-FIT spike vs the cell's running median)
// and on first trip per rule captures an Incident: the rule, the offending
// value, the last K raw timeline points, and the profiler's recent spans.
// check() never throws, so a tripped cell never aborts sibling sweep cells.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace ramp::obs {

/// One per-interval physics sample. The vectors are positional; the
/// owning CellTimeline names the columns.
struct TimelinePoint {
  std::uint64_t interval = 0;  ///< 0-based interval index
  double time_s = 0.0;         ///< elapsed simulated time at interval end
  double ipc = 0.0;
  double dyn_power_w = 0.0;
  double leak_power_w = 0.0;
  std::vector<double> temp_k;    ///< per structure (CellTimeline::temp_names)
  std::vector<double> fit_inst;  ///< instantaneous raw FIT per mechanism
  std::vector<double> fit_avg;   ///< running time-averaged raw FIT per mechanism

  double total_power_w() const { return dyn_power_w + leak_power_w; }
  /// Hottest structure in this sample (0 when temp_k is empty).
  double hottest_temp_k() const;
  /// Sum of the instantaneous raw FITs (the watchdog's spike statistic).
  double inst_total_fit() const;
};

/// Bounded deterministic downsampler. Callers push every interval in order
/// (interval indices 0,1,2,...); the buffer admits points whose index is a
/// multiple of the current stride and doubles the stride (dropping every
/// other retained point) when full. The latest point is always tracked so
/// exports end exactly at the final interval.
class TimelineBuffer {
 public:
  /// `capacity` is the maximum number of retained sampled points (>= 2).
  explicit TimelineBuffer(std::size_t capacity);

  void push(TimelinePoint p);

  /// Retained points in chronological order, with the final pushed point
  /// appended when the stride skipped it.
  std::vector<TimelinePoint> points() const;

  /// Sampled points only (no final-point patch); chronological.
  const std::vector<TimelinePoint>& sampled() const { return sampled_; }

  /// Last `k` raw pushed points (no downsampling), oldest first; bounded by
  /// kRecentCapacity.
  std::vector<TimelinePoint> recent(std::size_t k) const;

  std::uint64_t stride() const { return stride_; }
  std::uint64_t pushed() const { return pushed_; }
  std::size_t capacity() const { return capacity_; }

  static constexpr std::size_t kRecentCapacity = 32;

 private:
  std::size_t capacity_;
  std::uint64_t stride_ = 1;
  std::uint64_t pushed_ = 0;
  std::vector<TimelinePoint> sampled_;
  TimelinePoint last_;
  std::vector<TimelinePoint> recent_;  ///< ring, recent_next_ is oldest slot
  std::size_t recent_next_ = 0;
};

/// One cell's exported timeline: bounded points plus naming metadata.
struct CellTimeline {
  std::string cell;                     ///< "app@node"
  std::vector<std::string> temp_names;  ///< names TimelinePoint::temp_k
  std::vector<std::string> fit_names;   ///< names fit_inst / fit_avg
  std::uint64_t intervals = 0;          ///< raw intervals recorded
  std::uint64_t stride = 1;             ///< final sampling stride
  std::size_t capacity = 0;             ///< configured point budget
  std::vector<TimelinePoint> points;

  bool empty() const { return points.empty(); }
};

/// Declarative watchdog rules; a non-positive threshold/factor disables the
/// corresponding rule.
struct WatchdogRules {
  /// Trip when any structure exceeds this temperature. The default sits
  /// above the model's normal operating range (~355-370 K across the paper's
  /// sweep) at a typical 110 C qualification junction temperature.
  double max_temp_k = 383.15;
  /// Trip when the instantaneous total FIT exceeds this multiple of the
  /// running median over the sampled history.
  double fit_spike_factor = 8.0;
  /// Minimum sampled history before the spike rule arms (medians over a
  /// handful of warm-up intervals are noise).
  std::size_t spike_min_samples = 16;
  bool check_finite = true;  ///< trip on non-finite temperature/power/FIT
  std::size_t incident_points = 8;  ///< raw points captured per incident
  std::size_t incident_spans = 8;   ///< recent profiler spans captured
};

/// A tripped rule's flight-recorder dump.
struct Incident {
  std::string cell;
  std::string rule;  ///< "over_temperature", "non_finite", "fit_spike"
  std::uint64_t interval = 0;
  double time_s = 0.0;
  double value = 0.0;      ///< offending measurement
  double threshold = 0.0;  ///< limit it crossed
  std::string detail;      ///< human-readable one-liner
  std::vector<TimelinePoint> points;  ///< last raw points incl. the trigger
  std::vector<SpanRecord> spans;      ///< recent spans at trip time
};

/// Per-cell anomaly monitor. Single-threaded (one per evaluation); each rule
/// trips at most once per cell, and check() never throws, so an incident in
/// one sweep cell cannot abort siblings.
class Watchdog {
 public:
  Watchdog(std::string cell, WatchdogRules rules,
           Profiler& profiler = Profiler::global());

  /// Checks `p` against the rules, using `history` (the buffer *before*
  /// this point is pushed) for the median statistic and the incident dump.
  void check(const TimelinePoint& p, const TimelineBuffer& history);

  const std::vector<Incident>& incidents() const { return incidents_; }
  /// Rule trips suppressed by the once-per-rule dedup.
  std::uint64_t suppressed() const { return suppressed_; }

 private:
  bool already_tripped(const std::string& rule);
  void trip(const std::string& rule, const TimelinePoint& p,
            const TimelineBuffer& history, double value, double threshold,
            std::string detail);

  std::string cell_;
  WatchdogRules rules_;
  Profiler& profiler_;
  std::vector<Incident> incidents_;
  std::uint64_t suppressed_ = 0;
};

/// Deterministic CSV: one `# cell=...` header comment, one column-name
/// header row, one row per point, 17-digit round-trip floats.
std::string timeline_to_csv(const CellTimeline& t);

/// NDJSON: one metadata line then one JSON object per point.
std::string timeline_to_ndjson(const CellTimeline& t);

/// One-line JSON object for an incident (NDJSON-friendly).
std::string incident_to_json(const Incident& i);

/// The file stem used for per-cell exports: "@" and path separators in the
/// cell name are mapped to safe characters ("gcc@65-1.0" -> "gcc_65-1.0").
std::string timeline_file_stem(const std::string& cell);

}  // namespace ramp::obs
