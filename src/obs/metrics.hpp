// Low-overhead process metrics: a registry of named counters, gauges, and
// fixed-bucket histograms.
//
// Design contract:
//  - Registration (resolving a name to a handle) takes a mutex and may
//    allocate; do it once, at setup time.
//  - The hot path — Counter::inc, Gauge::set/add, Histogram::observe — is a
//    handful of relaxed atomic operations on a pre-resolved cell (~1 ns), is
//    lock-free, and never allocates. Handles are trivially copyable values.
//  - A disabled registry (RAMP_METRICS=off for the process-wide one) hands
//    out null handles whose operations reduce to a single predictable
//    branch, so instrumentation can stay in place unconditionally.
//  - Metrics never affect results: nothing in this header feeds back into
//    the pipeline, and the sweep/serve caches exclude all of it.
//
// The process-wide registry is MetricsRegistry::global(), gated by the
// RAMP_METRICS environment variable (strict on/off parse — a misspelled
// value throws instead of silently defaulting). Subsystems that must keep
// exact books regardless of the global switch (serve::EvalService, whose
// `stats` wire format is contractual) construct their own always-enabled
// registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ramp::obs {

namespace detail {

inline void atomic_add(std::atomic<double>& a, double x) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

struct CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct GaugeCell {
  std::atomic<double> value{0.0};
};

struct HistogramCell {
  explicit HistogramCell(std::vector<double> upper_bounds);
  void observe(double x);

  const std::vector<double> bounds;                 ///< ascending; +Inf implied
  std::vector<std::atomic<std::uint64_t>> buckets;  ///< bounds.size() + 1
  std::atomic<double> sum{0.0};
  std::atomic<std::uint64_t> count{0};
};

}  // namespace detail

/// Monotonic counter handle. Null handles (default-constructed or from a
/// disabled registry) ignore inc() and read as 0.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const {
    if (cell_ != nullptr) cell_->value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return cell_ != nullptr ? cell_->value.load(std::memory_order_relaxed) : 0;
  }
  explicit operator bool() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterCell* cell) : cell_(cell) {}
  detail::CounterCell* cell_ = nullptr;
};

/// Point-in-time value handle (queue depths, cache sizes, pool occupancy).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const {
    if (cell_ != nullptr) cell_->value.store(v, std::memory_order_relaxed);
  }
  void add(double v) const {
    if (cell_ != nullptr) detail::atomic_add(cell_->value, v);
  }
  double value() const {
    return cell_ != nullptr ? cell_->value.load(std::memory_order_relaxed) : 0.0;
  }
  explicit operator bool() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeCell* cell) : cell_(cell) {}
  detail::GaugeCell* cell_ = nullptr;
};

/// Fixed-bucket histogram handle. Bucket i counts samples x <= bounds[i]
/// (exclusive of lower bounds, Prometheus `le` semantics); one implicit
/// +Inf bucket catches the rest.
class Histogram {
 public:
  Histogram() = default;
  void observe(double x) const {
    if (cell_ != nullptr) cell_->observe(x);
  }
  explicit operator bool() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramCell* cell) : cell_(cell) {}
  detail::HistogramCell* cell_ = nullptr;
};

/// One histogram's state at snapshot time. `counts` are per-bucket (not
/// cumulative); counts.size() == bounds.size() + 1 (the +Inf bucket last).
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  double sum = 0.0;
  std::uint64_t count = 0;
};

/// Everything a registry holds, as plain values, sorted by name. This is
/// the exporter input (see obs/export.hpp).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Appends another registry's metrics (names are expected disjoint; on a
  /// clash both samples are kept and the exporter emits both).
  void merge_from(const MetricsSnapshot& other);
};

/// Estimates the q-quantile (q in [0,1]) of a histogram by linear
/// interpolation within the bucket that crosses the target rank — the
/// standard Prometheus histogram_quantile estimate. The first bucket
/// interpolates from max(0, a value one bucket-width below its bound); the
/// +Inf bucket clamps to the highest finite bound. Returns 0 when empty.
double histogram_quantile(const HistogramSnapshot& h, double q);

/// Strict RAMP_METRICS gate: true (default) unless the variable is set to
/// off/0/false/no; on/1/true/yes enable explicitly; anything else throws
/// InvalidArgument. Read once, at first use of the global registry.
bool metrics_enabled_from_env();

class MetricsRegistry {
 public:
  /// `enabled` = false builds a registry whose handles are all null no-ops.
  explicit MetricsRegistry(bool enabled = true);

  /// The process-wide registry, enabled per RAMP_METRICS.
  static MetricsRegistry& global();

  bool enabled() const { return enabled_; }

  /// Resolve (registering on first use) a metric by name. Names must match
  /// [a-zA-Z_:][a-zA-Z0-9_:]* (Prometheus rules); re-resolving a name
  /// returns the same cell, and resolving it as a different kind — or a
  /// histogram with different bounds — throws InvalidArgument.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  /// `upper_bounds` must be non-empty, finite, and strictly ascending.
  Histogram histogram(std::string_view name, std::vector<double> upper_bounds);

  MetricsSnapshot snapshot() const;

  /// Zeroes every registered metric (tests, or a dump-and-reset exporter).
  void reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  void check_name(std::string_view name, Kind kind) const;

  const bool enabled_;
  mutable std::mutex mutex_;
  std::map<std::string, Kind, std::less<>> kinds_;
  std::map<std::string, std::unique_ptr<detail::CounterCell>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<detail::GaugeCell>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<detail::HistogramCell>, std::less<>> histograms_;
};

}  // namespace ramp::obs
