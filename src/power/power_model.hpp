// PowerTimer-like power model (paper §4.2).
//
// Dynamic power per structure follows the standard clock-gated form
//     P_dyn(s) = P_unconstrained(s) · (cgf + (1 − cgf) · activity(s))
// where cgf is the fraction of power that clock gating cannot remove
// (clocks, always-on control). Unconstrained powers are calibrated at 180 nm
// so the suite-average total power matches Table 3 (≈ 29.1 W with leakage).
// For scaled nodes, dynamic power scales as C_rel · V² · f (Table 4).
//
// Leakage power is area-based: P_leak = ρ(383 K) · A_struct · e^{β(T − 383)}
// with β = 0.017 (the technique of Heo et al. cited in §4.2), evaluated per
// structure at that structure's temperature — this is the
// leakage-temperature feedback loop the thermal solver iterates on.
#pragma once

#include <array>

#include "scaling/technology.hpp"
#include "sim/interval_stats.hpp"
#include "sim/structures.hpp"

namespace ramp::power {

/// Per-structure power in Watts.
using StructurePower = std::array<double, sim::kNumStructures>;

struct PowerModelConfig {
  /// Unconstrained (100%-activity) dynamic power per structure at the
  /// 180 nm base point, Watts. Defaults are calibrated against Table 3.
  StructurePower unconstrained_w_180nm;

  /// Fraction of unconstrained power drawn at zero activity (imperfect
  /// clock gating). PowerTimer's "realistic clock gating" assumption.
  double clock_gating_floor = 0.25;

  /// Leakage temperature-sensitivity exponent (1/K), from Heo et al.
  double leakage_beta = 0.017;

  /// Reference temperature for leakage densities (K).
  double leakage_ref_temp = 383.0;

  /// Core area at 180 nm (mm²), Table 2.
  double base_core_area_mm2 = 81.0;

  PowerModelConfig();
};

class PowerModel {
 public:
  /// Binds the model to one technology node.
  PowerModel(const PowerModelConfig& cfg, const scaling::TechnologyNode& tech);

  /// Dynamic power of each structure for the given activity factors.
  StructurePower dynamic_power(
      const std::array<double, sim::kNumStructures>& activity) const;

  /// Leakage power of structure `s` at temperature `t_kelvin`.
  double leakage_power(sim::StructureId s, double t_kelvin) const;

  /// Leakage of every structure at per-structure temperatures.
  StructurePower leakage_power(
      const std::array<double, sim::kNumStructures>& t_kelvin) const;

  /// Total (dynamic + leakage) per structure.
  StructurePower total_power(
      const std::array<double, sim::kNumStructures>& activity,
      const std::array<double, sim::kNumStructures>& t_kelvin) const;

  /// Structure area in mm² at this node.
  double structure_area_mm2(sim::StructureId s) const;

  /// Core area in mm² at this node.
  double core_area_mm2() const { return core_area_mm2_; }

  const scaling::TechnologyNode& tech() const { return tech_; }
  const PowerModelConfig& config() const { return cfg_; }

  /// Dynamic scale factor vs the 180 nm base (C_rel · V² · f ratio).
  double dynamic_scale() const { return dynamic_scale_; }

 private:
  PowerModelConfig cfg_;
  scaling::TechnologyNode tech_;
  double dynamic_scale_ = 1.0;
  double core_area_mm2_ = 81.0;
};

}  // namespace ramp::power
