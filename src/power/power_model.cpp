#include "power/power_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ramp::power {

using sim::idx;
using sim::StructureId;

PowerModelConfig::PowerModelConfig() {
  // Unconstrained (full-activity) dynamic power per structure at 180 nm,
  // calibrated so that the suite-average simulated total power is ≈ 29.1 W
  // (Table 4) with the per-application spread of Table 3. The FPU and LSU
  // (with its L1D) are the power-dense units on POWER4-class cores.
  unconstrained_w_180nm[idx(StructureId::kIfu)] = 8.0;
  unconstrained_w_180nm[idx(StructureId::kIdu)] = 6.0;
  unconstrained_w_180nm[idx(StructureId::kIsu)] = 8.0;
  unconstrained_w_180nm[idx(StructureId::kFxu)] = 7.5;
  unconstrained_w_180nm[idx(StructureId::kFpu)] = 10.0;
  unconstrained_w_180nm[idx(StructureId::kLsu)] = 9.0;
  unconstrained_w_180nm[idx(StructureId::kBxu)] = 2.5;
  clock_gating_floor = 0.38;
}

PowerModel::PowerModel(const PowerModelConfig& cfg,
                       const scaling::TechnologyNode& tech)
    : cfg_(cfg), tech_(tech) {
  RAMP_REQUIRE(cfg.clock_gating_floor >= 0.0 && cfg.clock_gating_floor <= 1.0,
               "clock gating floor must lie in [0, 1]");
  RAMP_REQUIRE(cfg.base_core_area_mm2 > 0.0, "core area must be positive");
  for (double w : cfg.unconstrained_w_180nm) {
    RAMP_REQUIRE(w >= 0.0, "unconstrained powers must be non-negative");
  }
  dynamic_scale_ = tech_.dynamic_power_scale(scaling::base_node());
  core_area_mm2_ = tech_.core_area_mm2(cfg.base_core_area_mm2);
}

StructurePower PowerModel::dynamic_power(
    const std::array<double, sim::kNumStructures>& activity) const {
  StructurePower p{};
  for (int s = 0; s < sim::kNumStructures; ++s) {
    const auto i = static_cast<std::size_t>(s);
    const double a = activity[i];
    RAMP_REQUIRE(a >= 0.0 && a <= 1.0, "activity factors must lie in [0, 1]");
    const double gated =
        cfg_.clock_gating_floor + (1.0 - cfg_.clock_gating_floor) * a;
    p[i] = cfg_.unconstrained_w_180nm[i] * gated * dynamic_scale_;
  }
  return p;
}

double PowerModel::leakage_power(StructureId s, double t_kelvin) const {
  RAMP_REQUIRE(t_kelvin > 0.0, "temperature must be positive Kelvin");
  const double area = structure_area_mm2(s);
  const double density = tech_.leakage_w_per_mm2_at_383k *
                         std::exp(cfg_.leakage_beta * (t_kelvin - cfg_.leakage_ref_temp));
  return density * area;
}

StructurePower PowerModel::leakage_power(
    const std::array<double, sim::kNumStructures>& t_kelvin) const {
  StructurePower p{};
  for (int s = 0; s < sim::kNumStructures; ++s) {
    p[static_cast<std::size_t>(s)] =
        leakage_power(static_cast<StructureId>(s), t_kelvin[static_cast<std::size_t>(s)]);
  }
  return p;
}

StructurePower PowerModel::total_power(
    const std::array<double, sim::kNumStructures>& activity,
    const std::array<double, sim::kNumStructures>& t_kelvin) const {
  StructurePower dyn = dynamic_power(activity);
  const StructurePower leak = leakage_power(t_kelvin);
  for (int s = 0; s < sim::kNumStructures; ++s) {
    dyn[static_cast<std::size_t>(s)] += leak[static_cast<std::size_t>(s)];
  }
  return dyn;
}

double PowerModel::structure_area_mm2(StructureId s) const {
  return core_area_mm2_ * sim::structure_area_fraction(s);
}

}  // namespace ramp::power
