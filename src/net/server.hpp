// The `ramp serve --listen` TCP front-end: one epoll thread, many clients,
// same NDJSON protocol as stdio (serve/session.hpp holds the semantics).
//
// Architecture. A single event-loop thread owns every socket. Each
// connection keeps a bounded input buffer, a bounded output buffer, and an
// in-order queue of response *slots* — one per accepted request, resolved
// out of order but always delivered in request order (pipelining). Eval
// requests go through EvalService::try_submit, so identical in-flight
// requests coalesce *across clients* (per-key single-flight is fleet-wide);
// workers finishing an evaluation wake the loop via eventfd to pump ready
// heads. Expensive synchronous ops (`timeline`, `fleet`) run on one aux
// thread so they never stall the loop; cheap control ops (`stats`,
// `metrics`, `metrics_reset`) are computed when their slot reaches the head
// of its connection's line.
//
// Fairness. Level-triggered epoll with one bounded read per readiness
// event round-robins ingest across hot clients, and response pumping
// rotates its starting connection — no client can starve another by
// shouting louder.
//
// Admission control & load shedding. Beyond max_connections, new clients
// get one `overloaded` line and a close. Beyond max_queued_requests (global
// accepted-but-unanswered work), or when the EvalService's own pending
// bound is full, work requests are answered `{"ok":false,"error":
// "overloaded","overloaded":true}` instead of queueing without bound.
// Per-connection, a deep pipeline pauses reads (TCP backpressure) before
// shedding is ever needed.
//
// Graceful drain. SIGTERM (via drain_flag) or any client's `shutdown` op:
// stop accepting, stop reading, answer every accepted request, flush,
// close, return 0. counters().responses_sent + dropped_responses (clients
// that died) always equals accepted_requests — nothing accepted is lost.
#pragma once

#include <csignal>
#include <cstdint>
#include <string>

#include "net/socket.hpp"

namespace ramp::serve {
class EvalService;
}

namespace ramp::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0: bind an ephemeral port (read via port())
  /// Adopt a pre-bound, pre-listening fd instead of binding host:port —
  /// how shard workers inherit their listener across fork(). The server
  /// takes ownership.
  int listen_fd = -1;
  std::size_t max_connections = 256;
  /// Global cap on accepted-but-unanswered *work* requests (eval, timeline,
  /// fleet) across all connections; beyond it new work is shed.
  std::size_t max_queued_requests = 1024;
  /// Per-connection pipeline depth that pauses reading (backpressure).
  std::size_t max_pipeline_per_conn = 128;
  /// Per-connection buffered output that pauses reading.
  std::size_t max_outbuf_bytes = 4u << 20;
  /// Graceful-drain request flag (see serve::install_drain_handlers).
  volatile std::sig_atomic_t* drain_flag = nullptr;
  /// Per-request tracing for every eval (`--request-trace`): phase clock
  /// pairs on, every request lands in the trace ring. Off (default), only
  /// requests with `"trace":true` pay for their own breakdown — the serve
  /// hot path reads no phase clock.
  bool request_trace = false;
  /// NDJSON slow-request log (`--slow-log`): every traced request whose
  /// total latency reaches slow_ms is appended as one line (0 logs every
  /// traced request). "" disables; a non-empty path implies tracing.
  std::string slow_log_path;
  double slow_ms = 10.0;
  /// Capacity of the recent-trace ring behind the `trace_dump` op.
  std::size_t trace_ring = 512;
  /// Shard count the `health` op reports (a sharded worker inherits the
  /// front's count; a standalone server is its own single shard).
  std::uint64_t shards = 1;
};

/// Monotonic transport counters; also exported as ramp_net_* metrics on the
/// service registry, so the `metrics` op reports transport and service
/// health together.
struct ServerCounters {
  std::uint64_t accepted_connections = 0;
  std::uint64_t rejected_connections = 0;  ///< over max_connections
  std::uint64_t accepted_requests = 0;     ///< got a response slot
  std::uint64_t shed_requests = 0;         ///< of accepted: answered overloaded
  std::uint64_t parse_errors = 0;          ///< of accepted: malformed lines
  std::uint64_t responses_sent = 0;        ///< slots delivered to the socket
  std::uint64_t dropped_responses = 0;     ///< slots lost to dead clients
};

class Server {
 public:
  /// Binds (or adopts) the listener eagerly, so port() is valid — and bind
  /// errors throw — before run(). One Server per EvalService at a time:
  /// run() installs itself as the service's completion hook.
  Server(serve::EvalService& service, ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const;

  /// Serves until a `shutdown` op or the drain flag, then drains
  /// gracefully. Returns the process exit code (0 on clean drain).
  int run();

  /// Valid after run() returns (the loop thread owns them while running).
  const ServerCounters& counters() const { return counters_; }

 private:
  struct Impl;
  Impl* impl_;  ///< owned; raw to keep the header free of internals
  ServerCounters counters_;
};

}  // namespace ramp::net
