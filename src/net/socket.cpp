#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/error.hpp"

namespace ramp::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  RAMP_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
               "not an IPv4 address: '" + host + "'");
  return addr;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

void OwnedFd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

OwnedFd listen_tcp(const std::string& host, std::uint16_t port, int backlog) {
  const sockaddr_in addr = make_addr(host, port);
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen");
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw_errno("getsockname");
  return ntohs(addr.sin_port);
}

OwnedFd connect_tcp(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = make_addr(host, port);
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  while (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr) != 0) {
    if (errno == EINTR) continue;
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  set_nodelay(fd.get());
  return fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno("fcntl(O_NONBLOCK)");
}

OwnedFd accept_client(int listen_fd) {
  const int fd =
      ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd < 0) return OwnedFd();  // EAGAIN / ECONNABORTED: nothing to accept
  set_nodelay(fd);
  return OwnedFd(fd);
}

}  // namespace ramp::net
