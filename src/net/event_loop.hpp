// Minimal epoll event loop with a thread-safe wakeup.
//
// One thread owns and runs the loop (add/modify/remove and run_once are NOT
// thread-safe); any thread may call wake() — it writes an eventfd the loop
// watches, so pool workers completing an evaluation can nudge the server to
// pump its pending responses without the loop ever blocking on a future.
//
// Callbacks may add or remove fds (including their own) freely: dispatch
// re-checks registration before every delivery, so a callback that closes a
// sibling connection cannot cause a stale delivery.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/socket.hpp"

namespace ramp::net {

class EventLoop {
 public:
  /// `events` is the epoll event mask that fired (EPOLLIN, EPOLLOUT, ...).
  using Callback = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events`; `cb` fires from run_once. The caller
  /// keeps ownership of the fd and must remove() it before closing.
  void add(int fd, std::uint32_t events, Callback cb);
  void modify(int fd, std::uint32_t events);
  void remove(int fd);
  bool watched(int fd) const { return callbacks_.count(fd) != 0; }

  /// Waits up to timeout_ms for events (or a wake()) and dispatches them.
  /// Returns the number of callbacks delivered (0 on timeout).
  int run_once(int timeout_ms);

  /// Thread-safe, async-signal-safe nudge: the next (or current) run_once
  /// returns promptly. Coalesces.
  void wake();

  /// Nanoseconds the last run_once spent blocked in epoll_wait. The owner
  /// thread subtracts it from the iteration's wall time to get dispatch
  /// (busy) time — the event-loop health signal — without instrumenting
  /// every callback.
  std::uint64_t last_wait_ns() const { return last_wait_ns_; }

 private:
  OwnedFd epoll_;
  OwnedFd wake_;
  std::unordered_map<int, Callback> callbacks_;
  std::uint64_t last_wait_ns_ = 0;
};

}  // namespace ramp::net
