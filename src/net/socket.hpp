// Thin POSIX socket helpers for the net subsystem: RAII fd ownership plus
// the handful of TCP operations the server, the shard front, and the load
// generator share. Throws ramp::InvalidArgument (bad address) or
// std::runtime_error (syscall failure) — no errno leaks past this layer.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace ramp::net {

/// Move-only owner of one file descriptor; closes on destruction.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { reset(); }

  OwnedFd(OwnedFd&& other) noexcept : fd_(other.release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();  ///< closes if valid

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (SO_REUSEADDR, non-blocking, CLOEXEC).
/// port 0 binds an ephemeral port — read it back with local_port().
OwnedFd listen_tcp(const std::string& host, std::uint16_t port,
                   int backlog = 128);

/// The port a bound socket actually listens on.
std::uint16_t local_port(int fd);

/// Blocking TCP connect; the returned fd is blocking (callers that want
/// non-blocking I/O call set_nonblocking). TCP_NODELAY is set: every user
/// of this protocol writes whole lines.
OwnedFd connect_tcp(const std::string& host, std::uint16_t port);

void set_nonblocking(int fd);

/// accept4 wrapper: non-blocking CLOEXEC client fd with TCP_NODELAY, or an
/// invalid OwnedFd when the accept queue is empty (EAGAIN) or the client
/// vanished between readiness and accept.
OwnedFd accept_client(int listen_fd);

}  // namespace ramp::net
