#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace ramp::net {

namespace {
[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}
}  // namespace

EventLoop::EventLoop()
    : epoll_(::epoll_create1(EPOLL_CLOEXEC)),
      wake_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {
  if (!epoll_.valid()) throw_errno("epoll_create1");
  if (!wake_.valid()) throw_errno("eventfd");
  add(wake_.get(), EPOLLIN, [this](std::uint32_t) {
    std::uint64_t n = 0;
    // Drain the counter; the wake is level-triggered otherwise.
    while (::read(wake_.get(), &n, sizeof n) > 0) {}
  });
}

EventLoop::~EventLoop() = default;

void EventLoop::add(int fd, std::uint32_t events, Callback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) != 0)
    throw_errno("epoll_ctl(ADD)");
  callbacks_[fd] = std::move(cb);
}

void EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) != 0)
    throw_errno("epoll_ctl(MOD)");
}

void EventLoop::remove(int fd) {
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

int EventLoop::run_once(int timeout_ms) {
  std::array<epoll_event, 64> events;
  const auto wait_start = std::chrono::steady_clock::now();
  int n;
  do {
    n = ::epoll_wait(epoll_.get(), events.data(),
                     static_cast<int>(events.size()), timeout_ms);
  } while (n < 0 && errno == EINTR);
  const auto wait_end = std::chrono::steady_clock::now();
  last_wait_ns_ = wait_end <= wait_start
                      ? 0
                      : static_cast<std::uint64_t>(
                            std::chrono::nanoseconds(wait_end - wait_start)
                                .count());
  if (n < 0) throw_errno("epoll_wait");

  int delivered = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[static_cast<std::size_t>(i)].data.fd;
    // A prior callback this round may have removed (and closed) this fd;
    // look it up fresh so we never deliver to a dead registration.
    const auto it = callbacks_.find(fd);
    if (it == callbacks_.end()) continue;
    // Invoke a copy: the callback may remove() its own fd, which would
    // otherwise destroy the std::function mid-call.
    const Callback cb = it->second;
    cb(events[static_cast<std::size_t>(i)].events);
    ++delivered;
  }
  return delivered;
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  // write(2) is async-signal-safe; a full counter (EAGAIN) already means
  // "wake pending", so the result is deliberately ignored.
  [[maybe_unused]] ssize_t r = ::write(wake_.get(), &one, sizeof one);
}

}  // namespace ramp::net
