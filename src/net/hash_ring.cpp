#include "net/hash_ring.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"
#include "util/hashing.hpp"

namespace ramp::net {

namespace {
std::uint64_t hash_of(std::string_view s) {
  Fnv64 h;
  h.mix(s);
  // FNV alone clusters on short sequential strings (the vnode point names
  // differ in a couple of trailing digits), which skews shard shares badly.
  // A splitmix64 finalizer scatters the low-entropy tail across the ring.
  std::uint64_t z = h.value() + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

HashRing::HashRing(std::size_t shards, std::size_t vnodes) : shards_(shards) {
  RAMP_REQUIRE(shards >= 1, "hash ring needs at least one shard");
  RAMP_REQUIRE(vnodes >= 1, "hash ring needs at least one vnode per shard");
  ring_.reserve(shards * vnodes);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      const std::string point =
          "shard-" + std::to_string(s) + "-vnode-" + std::to_string(v);
      ring_.push_back({hash_of(point), static_cast<std::uint32_t>(s)});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    // Hash ties (astronomically unlikely) break by shard id so the ring is
    // still a deterministic function of (shards, vnodes).
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });
}

std::size_t HashRing::shard_for(std::string_view key) const {
  const std::uint64_t h = hash_of(key);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, std::uint64_t v) { return p.hash < v; });
  return it == ring_.end() ? ring_.front().shard : it->shard;
}

}  // namespace ramp::net
