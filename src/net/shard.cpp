#include "net/shard.hpp"

#include <signal.h>
#include <sys/epoll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <stdexcept>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "net/event_loop.hpp"
#include "net/hash_ring.hpp"
#include "serve/json.hpp"
#include "serve/metrics_merge.hpp"
#include "serve/request.hpp"
#include "serve/session.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"

namespace ramp::net {

namespace {

/// One accepted client request at the front: filled in (from a shard, or by
/// the front itself) and delivered strictly in the client's request order.
struct Entry {
  bool ready = false;
  std::string response;  ///< serialized line, no newline
};
using EntryPtr = std::shared_ptr<Entry>;

struct Client {
  OwnedFd fd;
  std::string inbuf;
  std::string outbuf;
  std::deque<EntryPtr> entries;
  std::uint32_t mask = 0;
  bool discarding = false;
  bool peer_eof = false;
  bool saw_shutdown = false;
  bool dead = false;
};

struct Upstream {
  OwnedFd fd;
  std::string inbuf;
  std::string outbuf;
  /// Forward k's response is upstream line k (per-connection ordering is a
  /// net::Server guarantee); expired entries belonged to dead clients.
  std::deque<std::weak_ptr<Entry>> fifo;
  std::uint32_t mask = 0;
  bool connected = false;
};

/// One client request answered by *all* shards: the front forwards a copy
/// to every worker, holds the client's slot until each part lands, then
/// merges. Used for `metrics` (histogram/counter merge across shards) and
/// `metrics_reset` (one coherent ack once every shard has reset).
struct Fanout {
  EntryPtr client;              ///< the client's reserved in-order slot
  std::vector<EntryPtr> parts;  ///< one per shard, in shard order
  serve::Op op = serve::Op::kMetrics;
  std::string id;      ///< client's request id, echoed on the merged line
  std::string format;  ///< "prometheus" (default) or "json"
};

struct Front {
  const ShardFrontOptions& opts;
  const std::vector<std::uint16_t>& shard_ports;
  HashRing ring;
  EventLoop loop;
  OwnedFd listener;
  std::map<int, std::unique_ptr<Client>> clients;
  std::vector<Upstream> upstreams;
  std::vector<Fanout> fanouts;
  std::chrono::steady_clock::time_point started =
      std::chrono::steady_clock::now();
  std::uint64_t accepted_total = 0;
  bool draining = false;

  Front(const ShardFrontOptions& o, const std::vector<std::uint16_t>& ports)
      : opts(o),
        shard_ports(ports),
        ring(o.shards, o.vnodes),
        upstreams(o.shards) {}

  // ---- upstream side -------------------------------------------------------

  Upstream& upstream(std::size_t shard) {
    Upstream& u = upstreams[shard];
    if (u.connected) return u;
    u.fd = connect_tcp("127.0.0.1", shard_ports[shard]);
    set_nonblocking(u.fd.get());
    u.connected = true;
    u.mask = EPOLLIN;
    loop.add(u.fd.get(), EPOLLIN, [this, shard](std::uint32_t events) {
      on_upstream_event(shard, events);
    });
    return u;
  }

  void update_upstream_mask(Upstream& u) {
    if (!u.connected) return;
    const std::uint32_t want =
        EPOLLIN | (u.outbuf.empty() ? 0u : static_cast<std::uint32_t>(EPOLLOUT));
    if (want == u.mask) return;
    loop.modify(u.fd.get(), want);
    u.mask = want;
  }

  void flush_upstream(Upstream& u) {
    while (!u.outbuf.empty()) {
      const ssize_t n =
          ::write(u.fd.get(), u.outbuf.data(), u.outbuf.size());
      if (n > 0) {
        u.outbuf.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      fail_upstream(u);
      return;
    }
    update_upstream_mask(u);
  }

  /// A worker died mid-conversation: every outstanding forward gets an
  /// explicit error instead of a hang.
  void fail_upstream(Upstream& u) {
    for (auto& weak : u.fifo) {
      if (EntryPtr e = weak.lock()) {
        e->response =
            serve::error_response("shard connection lost").dump();
        e->ready = true;
      }
    }
    u.fifo.clear();
    if (u.connected) loop.remove(u.fd.get());
    u.fd.reset();
    u.connected = false;
    u.mask = 0;
    u.inbuf.clear();
    u.outbuf.clear();
  }

  void on_upstream_event(std::size_t shard, std::uint32_t events) {
    Upstream& u = upstreams[shard];
    if (events & EPOLLERR) {
      fail_upstream(u);
      return;
    }
    if (events & (EPOLLIN | EPOLLHUP)) {
      while (true) {
        char buf[65536];
        const ssize_t n = ::read(u.fd.get(), buf, sizeof buf);
        if (n > 0) {
          u.inbuf.append(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        // EOF/reset with forwards outstanding is a worker failure.
        std::size_t start = 0;
        attribute_lines(u, start);
        u.inbuf.erase(0, start);
        fail_upstream(u);
        return;
      }
      std::size_t start = 0;
      attribute_lines(u, start);
      u.inbuf.erase(0, start);
    }
    if (events & EPOLLOUT) flush_upstream(u);
  }

  void attribute_lines(Upstream& u, std::size_t& start) {
    while (true) {
      const std::size_t nl = u.inbuf.find('\n', start);
      if (nl == std::string::npos) return;
      if (!u.fifo.empty()) {  // front-of-FIFO owns this response
        if (EntryPtr e = u.fifo.front().lock()) {
          e->response = u.inbuf.substr(start, nl - start);
          e->ready = true;
        }
        u.fifo.pop_front();
      }
      start = nl + 1;
    }
  }

  // ---- client side ---------------------------------------------------------

  void update_client_mask(Client& c) {
    const std::uint32_t want =
        ((c.peer_eof || c.saw_shutdown || draining)
             ? 0u
             : static_cast<std::uint32_t>(EPOLLIN)) |
        (c.outbuf.empty() ? 0u : static_cast<std::uint32_t>(EPOLLOUT));
    if (want == c.mask) return;
    loop.modify(c.fd.get(), want);
    c.mask = want;
  }

  void answer(Client& c, std::string line) {
    auto e = std::make_shared<Entry>();
    e->response = std::move(line);
    e->ready = true;
    c.entries.push_back(std::move(e));
  }

  void handle_line(Client& c, const std::string& line) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) return;
    if (line.size() > serve::kMaxRequestLine) {
      answer(c, serve::error_response(serve::oversize_line_message()).dump());
      return;
    }

    serve::EvalRequest req;
    try {
      req = serve::parse_request(line);
    } catch (const std::exception& e) {
      answer(c, serve::error_response(e.what()).dump());
      return;
    }

    if (req.op == serve::Op::kShutdown) {
      answer(c, serve::shutdown_response(req).dump());
      c.saw_shutdown = true;
      draining = true;  // whole-front drain; workers shut down afterwards
      return;
    }
    if (req.op == serve::Op::kHealth) {
      // Per-transport state lives here, not in any one worker.
      serve::HealthInfo info;
      info.mode = "front";
      info.uptime_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - started)
                          .count();
      info.accepted_connections = accepted_total;
      info.active_connections = clients.size();
      info.draining = draining;
      info.shards = opts.shards;
      answer(c, serve::health_response(req, info).dump());
      return;
    }
    if (req.op == serve::Op::kMetrics || req.op == serve::Op::kMetricsReset) {
      // One shard's registry is a keyspace slice, not the fleet: both ops
      // go to *every* worker, and the client's slot settles on the merge.
      start_fanout(c, req);
      return;
    }

    // The canonical cache key for evals; a stable line hash for ops that
    // have no key. One key → one shard, always.
    std::size_t shard;
    if (req.op == serve::Op::kEval) {
      shard = ring.shard_for(serve::request_key(req, opts.base_config));
    } else {
      shard = ring.shard_for(line);
    }

    auto e = std::make_shared<Entry>();
    c.entries.push_back(e);
    Upstream& u = upstream(shard);
    u.fifo.push_back(e);
    u.outbuf += line;
    u.outbuf += '\n';
    flush_upstream(u);
  }

  // ---- whole-fleet fan-out (metrics / metrics_reset) -----------------------

  void start_fanout(Client& c, const serve::EvalRequest& req) {
    Fanout f;
    f.op = req.op;
    f.id = req.id;
    f.format = req.metrics_format;
    f.client = std::make_shared<Entry>();
    c.entries.push_back(f.client);
    // Workers always report the mergeable JSON snapshot; the client's
    // requested format is applied to the *merged* result at the front.
    const std::string fwd = req.op == serve::Op::kMetrics
                                ? "{\"op\":\"metrics\",\"format\":\"json\"}"
                                : "{\"op\":\"metrics_reset\"}";
    for (std::size_t s = 0; s < opts.shards; ++s) {
      auto part = std::make_shared<Entry>();
      Upstream& u = upstream(s);
      u.fifo.push_back(part);
      u.outbuf += fwd;
      u.outbuf += '\n';
      f.parts.push_back(std::move(part));
      flush_upstream(u);
    }
    fanouts.push_back(std::move(f));
  }

  /// Resolves every fan-out whose parts have all landed. Called each loop
  /// iteration; the client's slot stays un-ready (holding its response
  /// order) until the merge happens here.
  void settle_fanouts() {
    for (auto it = fanouts.begin(); it != fanouts.end();) {
      const bool done =
          std::all_of(it->parts.begin(), it->parts.end(),
                      [](const EntryPtr& p) { return p->ready; });
      if (!done) {
        ++it;
        continue;
      }
      it->client->response = merge_fanout(*it);
      it->client->ready = true;
      it = fanouts.erase(it);
    }
  }

  std::string merge_fanout(const Fanout& f) {
    std::vector<serve::Json> snaps;
    snaps.reserve(f.parts.size());
    for (std::size_t s = 0; s < f.parts.size(); ++s) {
      serve::Json part;
      try {
        part = serve::Json::parse(f.parts[s]->response);
      } catch (const std::exception&) {
        return serve::error_response("shard metrics fan-out: unparseable "
                                     "response from a worker",
                                     f.id)
            .dump();
      }
      const serve::Json* ok = part.find("ok");
      if (ok == nullptr || !ok->as_bool()) {
        // Typically "shard connection lost" stamped by fail_upstream.
        const serve::Json* err = part.find("error");
        return serve::error_response(
                   "shard metrics fan-out: " +
                       (err != nullptr ? err->as_string()
                                       : std::string("worker error")),
                   f.id)
            .dump();
      }
      if (f.op == serve::Op::kMetrics) {
        const serve::Json* snap = part.find("snapshot");
        if (snap == nullptr) {
          return serve::error_response(
                     "shard metrics fan-out: worker response lacks snapshot",
                     f.id)
              .dump();
        }
        snaps.push_back(*snap);
      }
    }

    serve::Json r = serve::Json::object();
    if (f.op == serve::Op::kMetricsReset) {
      r.set("ok", true).set("op", "metrics_reset");
      // f.id is the raw JSON of the request's "id" (string or number);
      // re-parse so it round-trips with its original type.
      if (!f.id.empty()) r.set("id", serve::Json::parse(f.id));
      return r.dump();
    }
    const serve::MergedMetrics merged = serve::merge_metrics_snapshots(snaps);
    r.set("ok", true).set("op", "metrics");
    if (!f.id.empty()) r.set("id", serve::Json::parse(f.id));
    if (f.format == "json") {
      r.set("snapshot", serve::Json::parse(serve::merged_ndjson(merged)));
    } else {
      r.set("prometheus", serve::merged_prometheus(merged));
    }
    return r.dump();
  }

  void process_inbuf(Client& c) {
    std::size_t start = 0;
    while (!c.saw_shutdown) {
      const std::size_t nl = c.inbuf.find('\n', start);
      if (nl == std::string::npos) break;
      if (c.discarding) {
        c.discarding = false;
      } else {
        handle_line(c, c.inbuf.substr(start, nl - start));
      }
      start = nl + 1;
    }
    c.inbuf.erase(0, start);
    if (c.saw_shutdown) {
      c.inbuf.clear();
      return;
    }
    if (!c.discarding && c.inbuf.size() > serve::kMaxRequestLine) {
      answer(c, serve::error_response(serve::oversize_line_message()).dump());
      c.inbuf.clear();
      c.discarding = true;
    } else if (c.discarding) {
      c.inbuf.clear();
    }
  }

  void pump_client(Client& c) {
    if (c.dead) return;
    while (!c.entries.empty() && c.entries.front()->ready) {
      c.outbuf += c.entries.front()->response;
      c.outbuf += '\n';
      c.entries.pop_front();
    }
    while (!c.outbuf.empty()) {
      const ssize_t n =
          ::write(c.fd.get(), c.outbuf.data(), c.outbuf.size());
      if (n > 0) {
        c.outbuf.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      c.dead = true;  // client gone; its entries expire in upstream FIFOs
      return;
    }
    if (c.entries.empty() && c.outbuf.empty() &&
        (c.peer_eof || c.saw_shutdown || draining)) {
      c.dead = true;
      return;
    }
    update_client_mask(c);
  }

  void on_client_event(Client& c, std::uint32_t events) {
    if (events & EPOLLERR) {
      c.dead = true;
      return;
    }
    if (events & (EPOLLIN | EPOLLHUP)) {
      while (true) {
        char buf[65536];
        const ssize_t n = ::read(c.fd.get(), buf, sizeof buf);
        if (n == 0) {
          c.peer_eof = true;
          break;
        }
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno != EAGAIN && errno != EWOULDBLOCK) c.dead = true;
          break;
        }
        c.inbuf.append(buf, static_cast<std::size_t>(n));
        process_inbuf(c);
        if ((events & EPOLLHUP) == 0) break;  // fairness: one read per event
      }
    }
    pump_client(c);
  }

  void on_accept() {
    while (true) {
      OwnedFd fd = accept_client(listener.get());
      if (!fd.valid()) return;
      if (draining) continue;
      if (clients.size() >= opts.max_connections) {
        const std::string line = serve::overloaded_response().dump() + "\n";
        [[maybe_unused]] ssize_t r =
            ::write(fd.get(), line.data(), line.size());
        continue;
      }
      auto client = std::make_unique<Client>();
      ++accepted_total;
      client->fd = std::move(fd);
      const int cfd = client->fd.get();
      Client* raw = client.get();
      client->mask = EPOLLIN;
      loop.add(cfd, EPOLLIN, [this, raw](std::uint32_t events) {
        on_client_event(*raw, events);
      });
      clients.emplace(cfd, std::move(client));
    }
  }

  int run() {
    listener = listen_tcp(opts.host, opts.port);
    if (opts.on_listening) opts.on_listening(local_port(listener.get()));
    loop.add(listener.get(), EPOLLIN, [this](std::uint32_t) { on_accept(); });

    bool accepting = true;
    while (true) {
      if (serve::drain_requested(opts.drain_flag)) draining = true;
      if (draining && accepting) {
        loop.remove(listener.get());
        listener.reset();
        accepting = false;
      }
      settle_fanouts();
      for (auto& [fd, c] : clients) pump_client(*c);
      for (auto it = clients.begin(); it != clients.end();) {
        if (it->second->dead) {
          loop.remove(it->second->fd.get());
          it = clients.erase(it);
        } else {
          ++it;
        }
      }
      if (draining && clients.empty()) break;
      loop.run_once(/*timeout_ms=*/100);
    }
    return 0;
  }
};

}  // namespace

int run_sharded_front(const ShardFrontOptions& opts,
                      const ShardMain& child_main) {
  RAMP_REQUIRE(opts.shards >= 1, "need at least one shard");

  // Bind every shard listener *before* forking, so the parent knows each
  // worker's port and a worker can serve the moment it starts.
  std::vector<OwnedFd> listeners;
  std::vector<std::uint16_t> ports;
  for (std::size_t s = 0; s < opts.shards; ++s) {
    listeners.push_back(listen_tcp("127.0.0.1", 0));
    ports.push_back(local_port(listeners.back().get()));
  }

  std::vector<pid_t> children;
  for (std::size_t s = 0; s < opts.shards; ++s) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (pid_t p : children) ::kill(p, SIGKILL);
      throw std::runtime_error("fork failed for shard worker");
    }
    if (pid == 0) {
      // Worker: keep only our own listener, then serve until `shutdown`.
      for (std::size_t o = 0; o < opts.shards; ++o) {
        if (o != s) listeners[o].reset();
      }
      int rc = 1;
      try {
        rc = child_main(s, std::move(listeners[s]));
      } catch (...) {
        rc = 1;
      }
      ::_exit(rc);
    }
    children.push_back(pid);
  }
  for (auto& l : listeners) l.reset();  // parent talks TCP, not fds

  int rc = 0;
  try {
    Front front(opts, ports);
    rc = front.run();
  } catch (...) {
    for (pid_t p : children) ::kill(p, SIGTERM);
    for (pid_t p : children) ::waitpid(p, nullptr, 0);
    throw;
  }

  // Drained: tell every worker to drain too, then collect them. A fresh
  // connection per worker keeps this independent of proxy state.
  for (std::size_t s = 0; s < opts.shards; ++s) {
    try {
      OwnedFd fd = connect_tcp("127.0.0.1", ports[s]);
      const std::string line = "{\"op\":\"shutdown\"}\n";
      std::size_t off = 0;
      while (off < line.size()) {
        const ssize_t n =
            ::write(fd.get(), line.data() + off, line.size() - off);
        if (n > 0) {
          off += static_cast<std::size_t>(n);
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        break;
      }
      char buf[256];  // wait for the shutdown ack (or EOF)
      while (::read(fd.get(), buf, sizeof buf) > 0) {}
    } catch (const std::exception&) {
      ::kill(children[s], SIGTERM);  // worker already gone or wedged
    }
  }
  for (pid_t p : children) {
    int status = 0;
    ::waitpid(p, &status, 0);
    if (rc == 0 && (!WIFEXITED(status) || WEXITSTATUS(status) != 0)) {
      rc = WIFEXITED(status) ? WEXITSTATUS(status) : 1;
    }
  }
  return rc;
}

}  // namespace ramp::net
