// Multi-process sharding: N forked workers, one proxying front.
//
// `ramp serve --listen A:P --shards N` turns into
//
//   parent: bind N ephemeral shard listeners → fork N workers (each inherits
//           exactly its own listener fd and runs a full net::Server over its
//           own EvalService) → bind A:P → proxy client lines to shards.
//
// Routing is consistent-hash on the canonical request key
// (serve::request_key, the same key the caches use — see hash_ring.hpp), so
// each shard's LRU, persistent cache, and stage store own a disjoint slice
// of the keyspace, and per-key single-flight coalescing holds across every
// client of the whole front. Ops without a cache key (stats, fleet,
// timeline, trace_dump) route by a stable hash of the raw line; `health`
// is answered by the front itself (it owns the transport state); `metrics`
// and `metrics_reset` fan out to *every* worker and the front merges the
// parts (per-bucket histogram sums) into one coherent payload — a single
// shard's registry only ever saw its slice of the keyspace. Malformed
// lines are answered by the front directly.
//
// Ordering. The front keeps one upstream connection per shard, shared by
// all clients. Each forwarded line is remembered in that upstream's FIFO;
// since a net::Server answers strictly in request order per connection,
// response k on the upstream is response to forward k, which the FIFO maps
// back to the issuing client's own in-order queue. A client's responses
// therefore arrive in its request order even when they ran on different
// shards.
//
// Drain. SIGTERM (drain_flag) or any client's `shutdown` op: the front
// stops accepting/reading, delivers everything outstanding, sends
// `shutdown` to every shard, waits for the workers to drain and exit, and
// returns 0 (or the first non-zero worker exit code).
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <string>

#include "net/socket.hpp"
#include "pipeline/evaluator.hpp"

namespace ramp::net {

struct ShardFrontOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0: ephemeral (reported via on_listening)
  std::size_t shards = 2;
  std::size_t vnodes = 64;  ///< hash-ring smoothing (see hash_ring.hpp)
  std::size_t max_connections = 256;
  /// Base evaluation config — must match the workers' — so the front
  /// computes the same canonical keys the shard caches use.
  pipeline::EvaluationConfig base_config{};
  volatile std::sig_atomic_t* drain_flag = nullptr;
  /// Called once the front socket is bound and listening (port reporting).
  std::function<void(std::uint16_t port)> on_listening;
};

/// Runs in the forked worker: build a per-shard EvalService (disjoint cache
/// directories!) and run a net::Server on the inherited listener. The
/// return value becomes the worker's exit code.
using ShardMain = std::function<int(std::size_t shard, OwnedFd listener)>;

/// Forks the workers, then proxies until drained. Returns the front's exit
/// code: 0 when the front and every worker drained cleanly.
int run_sharded_front(const ShardFrontOptions& opts,
                      const ShardMain& child_main);

}  // namespace ramp::net
