// Consistent-hash ring over shard indices.
//
// The sharded front routes every eval request by its canonical cache key
// (serve::request_key), so one key always lands on one shard — that shard's
// LRU, persistent cache, and stage store own the key exclusively, and the
// per-key single-flight guarantee holds fleet-wide. Consistent hashing (vs
// `hash % N`) keeps the mapping stable under future shard-count changes:
// resizing from N to N+1 moves ~1/(N+1) of the keyspace instead of nearly
// all of it.
//
// Deterministic: the ring is a pure function of (shards, vnodes) built from
// util::Fnv64, so every front process — and every test — agrees on the
// placement of every key.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace ramp::net {

class HashRing {
 public:
  /// `vnodes` virtual points per shard smooth the keyspace split: at 64,
  /// shard shares stay within a few percent of uniform.
  explicit HashRing(std::size_t shards, std::size_t vnodes = 64);

  std::size_t shards() const { return shards_; }

  /// The shard owning `key`: the first ring point clockwise of hash(key).
  std::size_t shard_for(std::string_view key) const;

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t shard;
  };
  std::size_t shards_;
  std::vector<Point> ring_;  ///< sorted by hash
};

}  // namespace ramp::net
