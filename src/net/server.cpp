#include "net/server.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "net/event_loop.hpp"
#include "obs/metrics.hpp"
#include "serve/eval_service.hpp"
#include "serve/session.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"

namespace ramp::net {

namespace {

/// Result cell an aux-thread job fills in; the slot holds the same pointer,
/// so a connection dying mid-computation just orphans the cell harmlessly.
struct AuxResult {
  std::atomic<bool> done{false};
  std::string line;
};

}  // namespace

struct Server::Impl {
  // ---- wiring --------------------------------------------------------------

  struct Slot {
    enum class Kind { kReady, kEval, kControl, kAux };
    Kind kind = Kind::kReady;
    std::string line;  ///< kReady: the serialized response
    serve::EvalService::Ticket ticket;  ///< kEval
    std::string id;                     ///< kEval
    serve::EvalRequest req;   ///< kControl: computed at head of line
    std::shared_ptr<AuxResult> aux;     ///< kAux
    bool counts_as_work = false;        ///< held a max_queued_requests unit
  };

  struct Conn {
    OwnedFd fd;
    std::string inbuf;
    std::string outbuf;
    std::deque<Slot> slots;
    std::uint32_t mask = 0;      ///< epoll mask currently armed
    bool discarding = false;     ///< over-long line: drop to next newline
    bool peer_eof = false;
    bool saw_shutdown = false;   ///< ignore lines after a shutdown op
    bool dead = false;           ///< error path: reap without delivering
  };

  struct AuxJob {
    serve::EvalRequest req;
    std::shared_ptr<AuxResult> result;
  };

  serve::EvalService& service;
  ServerOptions opts;
  EventLoop loop;
  OwnedFd listener;
  std::map<int, std::unique_ptr<Conn>> conns;
  int rr_next_fd = -1;  ///< response-pump round-robin cursor
  bool draining = false;
  std::size_t queued_work = 0;  ///< eval+aux slots outstanding (global cap)
  ServerCounters counters;

  std::thread aux_thread;
  std::mutex aux_mu;
  std::condition_variable aux_cv;
  std::deque<AuxJob> aux_jobs;
  bool aux_stop = false;

  obs::Counter m_conns_accepted, m_conns_rejected, m_requests, m_shed,
      m_parse_errors, m_responses, m_dropped;
  obs::Gauge m_open_conns;

  Impl(serve::EvalService& svc, ServerOptions o)
      : service(svc), opts(std::move(o)) {
    if (opts.listen_fd >= 0) {
      listener = OwnedFd(opts.listen_fd);
    } else {
      listener = listen_tcp(opts.host, opts.port);
    }
    auto& reg = service.registry();
    m_conns_accepted = reg.counter("ramp_net_connections_accepted");
    m_conns_rejected = reg.counter("ramp_net_connections_rejected");
    m_requests = reg.counter("ramp_net_requests");
    m_shed = reg.counter("ramp_net_requests_shed");
    m_parse_errors = reg.counter("ramp_net_parse_errors");
    m_responses = reg.counter("ramp_net_responses");
    m_dropped = reg.counter("ramp_net_responses_dropped");
    m_open_conns = reg.gauge("ramp_net_open_connections");
  }

  ~Impl() {
    if (aux_thread.joinable()) {
      {
        std::lock_guard<std::mutex> l(aux_mu);
        aux_stop = true;
      }
      aux_cv.notify_all();
      aux_thread.join();
    }
  }

  // ---- epoll mask management ----------------------------------------------

  std::uint32_t desired_mask(const Conn& c) const {
    std::uint32_t m = 0;
    const bool paused = c.slots.size() >= opts.max_pipeline_per_conn ||
                        c.outbuf.size() >= opts.max_outbuf_bytes;
    if (!c.peer_eof && !c.saw_shutdown && !draining && !paused) m |= EPOLLIN;
    if (!c.outbuf.empty()) m |= EPOLLOUT;
    return m;
  }

  void update_mask(Conn& c) {
    const std::uint32_t want = desired_mask(c);
    if (want == c.mask) return;
    loop.modify(c.fd.get(), want);
    c.mask = want;
  }

  // ---- request intake ------------------------------------------------------

  void push_ready(Conn& c, std::string line) {
    Slot s;
    s.kind = Slot::Kind::kReady;
    s.line = std::move(line);
    c.slots.push_back(std::move(s));
    counters.accepted_requests++;
    m_requests.inc();
  }

  void push_shed(Conn& c, const std::string& id) {
    push_ready(c, serve::overloaded_response(id).dump());
    counters.shed_requests++;
    m_shed.inc();
  }

  void handle_line(Conn& c, const std::string& line) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) return;
    if (line.size() > serve::kMaxRequestLine) {
      push_ready(c, serve::error_response(serve::oversize_line_message())
                        .dump());
      counters.parse_errors++;
      m_parse_errors.inc();
      return;
    }

    serve::EvalRequest req;
    try {
      req = serve::parse_request(line);
    } catch (const std::exception& e) {
      push_ready(c, serve::error_response(e.what()).dump());
      counters.parse_errors++;
      m_parse_errors.inc();
      return;
    }

    switch (req.op) {
      case serve::Op::kShutdown:
        push_ready(c, serve::shutdown_response(req).dump());
        c.saw_shutdown = true;
        begin_drain();
        return;
      case serve::Op::kStats:
      case serve::Op::kMetrics:
      case serve::Op::kMetricsReset: {
        // Cheap control ops: computed when the slot reaches the head of
        // this connection's line, so they sit *after* the evals pipelined
        // before them — same per-client ordering as the stdio barrier.
        Slot s;
        s.kind = Slot::Kind::kControl;
        s.req = std::move(req);
        c.slots.push_back(std::move(s));
        counters.accepted_requests++;
        m_requests.inc();
        return;
      }
      case serve::Op::kEval: {
        if (queued_work >= opts.max_queued_requests) {
          push_shed(c, req.id);
          return;
        }
        serve::EvalService::Ticket t;
        bool scheduled = false;
        try {
          scheduled = service.try_submit(req, &t);
        } catch (const std::exception& e) {
          push_ready(c, serve::error_response(e.what(), req.id).dump());
          return;
        }
        if (!scheduled) {  // service backpressure: shed, never block the loop
          push_shed(c, req.id);
          return;
        }
        Slot s;
        s.kind = Slot::Kind::kEval;
        s.ticket = std::move(t);
        s.id = req.id;
        s.counts_as_work = true;
        c.slots.push_back(std::move(s));
        queued_work++;
        counters.accepted_requests++;
        m_requests.inc();
        return;
      }
      case serve::Op::kTimeline:
      case serve::Op::kFleet: {
        if (queued_work >= opts.max_queued_requests) {
          push_shed(c, req.id);
          return;
        }
        Slot s;
        s.kind = Slot::Kind::kAux;
        s.aux = std::make_shared<AuxResult>();
        s.counts_as_work = true;
        {
          std::lock_guard<std::mutex> l(aux_mu);
          aux_jobs.push_back({std::move(req), s.aux});
        }
        aux_cv.notify_one();
        c.slots.push_back(std::move(s));
        queued_work++;
        counters.accepted_requests++;
        m_requests.inc();
        return;
      }
    }
  }

  void process_inbuf(Conn& c) {
    std::size_t start = 0;
    while (!c.saw_shutdown) {
      const std::size_t nl = c.inbuf.find('\n', start);
      if (nl == std::string::npos) break;
      if (c.discarding) {
        c.discarding = false;  // the over-long line ended; already answered
      } else {
        handle_line(c, c.inbuf.substr(start, nl - start));
      }
      start = nl + 1;
    }
    c.inbuf.erase(0, start);
    if (c.saw_shutdown) {
      c.inbuf.clear();
      return;
    }
    if (!c.discarding && c.inbuf.size() > serve::kMaxRequestLine) {
      // Stop buffering: no client may grow our memory by withholding '\n'.
      push_ready(c, serve::error_response(serve::oversize_line_message())
                        .dump());
      counters.parse_errors++;
      m_parse_errors.inc();
      c.inbuf.clear();
      c.discarding = true;
    } else if (c.discarding) {
      c.inbuf.clear();
    }
  }

  /// `to_eof`: the peer hung up (EPOLLHUP) — drain everything it sent
  /// before its close, so a fire-and-disconnect client still gets every
  /// complete request accepted. Otherwise one bounded read per readiness
  /// event: level-triggered epoll re-arms if more is buffered, so hot
  /// clients round-robin with everyone else.
  void on_readable(Conn& c, bool to_eof) {
    while (true) {
      char buf[65536];
      const ssize_t n = ::read(c.fd.get(), buf, sizeof buf);
      if (n == 0) {
        c.peer_eof = true;  // half-close: still answer what was accepted
        break;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK) kill_conn(c);
        break;
      }
      c.inbuf.append(buf, static_cast<std::size_t>(n));
      process_inbuf(c);
      if (!to_eof) break;
    }
  }

  // ---- response delivery ---------------------------------------------------

  /// Moves every deliverable head-of-line response into the out buffer.
  void resolve_slots(Conn& c) {
    while (!c.slots.empty()) {
      Slot& s = c.slots.front();
      std::string line;
      switch (s.kind) {
        case Slot::Kind::kReady:
          line = std::move(s.line);
          break;
        case Slot::Kind::kEval:
          if (s.ticket.future.wait_for(std::chrono::seconds(0)) !=
              std::future_status::ready) {
            return;
          }
          line = serve::eval_response(s.ticket, s.id).dump();
          break;
        case Slot::Kind::kControl:
          // Multi-client server: snapshot live counters, don't quiesce —
          // other clients keep the service busy by design.
          line = serve::control_response(service, s.req, /*quiesce=*/false)
                     .dump();
          break;
        case Slot::Kind::kAux:
          if (!s.aux->done.load(std::memory_order_acquire)) return;
          line = std::move(s.aux->line);
          break;
      }
      if (s.counts_as_work) queued_work--;
      c.outbuf += line;
      c.outbuf += '\n';
      c.slots.pop_front();
      counters.responses_sent++;
      m_responses.inc();
    }
  }

  void flush(Conn& c) {
    while (!c.outbuf.empty()) {
      const ssize_t n = ::write(c.fd.get(), c.outbuf.data(), c.outbuf.size());
      if (n > 0) {
        c.outbuf.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      kill_conn(c);  // EPIPE & friends: the client is gone
      return;
    }
  }

  void pump(Conn& c) {
    if (c.dead) return;
    resolve_slots(c);
    flush(c);
    if (c.dead) return;
    if (c.slots.empty() && c.outbuf.empty() &&
        (c.peer_eof || c.saw_shutdown || draining)) {
      c.dead = true;  // conversation over
      return;
    }
    update_mask(c);
  }

  /// Pumps every connection, rotating the start so delivery is fair.
  void pump_all() {
    if (conns.empty()) return;
    auto it = conns.lower_bound(rr_next_fd);
    if (it == conns.end()) it = conns.begin();
    const int first = it->first;
    do {
      pump(*it->second);
      ++it;
      if (it == conns.end()) it = conns.begin();
    } while (it->first != first);
    rr_next_fd = first + 1;
  }

  void reap_dead() {
    for (auto it = conns.begin(); it != conns.end();) {
      Conn& c = *it->second;
      if (!c.dead) {
        ++it;
        continue;
      }
      for (const Slot& s : c.slots) {
        if (s.counts_as_work) queued_work--;
        counters.dropped_responses++;
        m_dropped.inc();
      }
      loop.remove(c.fd.get());
      it = conns.erase(it);
    }
    m_open_conns.set(static_cast<double>(conns.size()));
  }

  void kill_conn(Conn& c) { c.dead = true; }

  // ---- accept & drain ------------------------------------------------------

  void on_accept() {
    while (true) {
      OwnedFd fd = accept_client(listener.get());
      if (!fd.valid()) return;
      if (draining) continue;  // closing fd refuses the late arrival
      if (conns.size() >= opts.max_connections) {
        // One explicit overloaded line, then close: the client learns why.
        const std::string line = serve::overloaded_response().dump() + "\n";
        [[maybe_unused]] ssize_t r =
            ::write(fd.get(), line.data(), line.size());
        counters.rejected_connections++;
        m_conns_rejected.inc();
        continue;
      }
      auto conn = std::make_unique<Conn>();
      conn->fd = std::move(fd);
      const int cfd = conn->fd.get();
      Conn* raw = conn.get();
      conn->mask = EPOLLIN;
      loop.add(cfd, EPOLLIN, [this, raw](std::uint32_t events) {
        if (events & EPOLLERR) {
          kill_conn(*raw);
        } else if (events & (EPOLLIN | EPOLLHUP)) {
          on_readable(*raw, /*to_eof=*/(events & EPOLLHUP) != 0);
        }
        pump(*raw);
      });
      conns.emplace(cfd, std::move(conn));
      counters.accepted_connections++;
      m_conns_accepted.inc();
      m_open_conns.set(static_cast<double>(conns.size()));
    }
  }

  void begin_drain() {
    if (draining) return;
    draining = true;
    if (loop.watched(listener.get())) loop.remove(listener.get());
    listener.reset();  // new connects are refused at the kernel
    // Connections stop reading (mask update on next pump); complete lines
    // already read were handled at read time — only a partial line can be
    // in an inbuf, and an unterminated request was never accepted.
  }

  void aux_main() {
    while (true) {
      AuxJob job;
      {
        std::unique_lock<std::mutex> l(aux_mu);
        aux_cv.wait(l, [&] { return aux_stop || !aux_jobs.empty(); });
        if (aux_jobs.empty()) return;  // stop requested and queue drained
        job = std::move(aux_jobs.front());
        aux_jobs.pop_front();
      }
      std::string line;
      try {
        line = serve::control_response(service, job.req, /*quiesce=*/false)
                   .dump();
      } catch (const std::exception& e) {  // control_response shouldn't
        line = serve::error_response(e.what(), job.req.id).dump();  // throw,
      }                                                             // but belt
      job.result->line = std::move(line);
      job.result->done.store(true, std::memory_order_release);
      loop.wake();
    }
  }

  int run() {
    service.set_completion_hook([this] { loop.wake(); });
    aux_thread = std::thread([this] { aux_main(); });
    loop.add(listener.get(), EPOLLIN, [this](std::uint32_t) { on_accept(); });

    while (true) {
      if (serve::drain_requested(opts.drain_flag)) begin_drain();
      pump_all();
      reap_dead();
      if (draining && conns.empty()) break;
      loop.run_once(/*timeout_ms=*/100);
    }

    service.set_completion_hook(nullptr);
    {
      std::lock_guard<std::mutex> l(aux_mu);
      aux_stop = true;
    }
    aux_cv.notify_all();
    aux_thread.join();
    return 0;
  }
};

Server::Server(serve::EvalService& service, ServerOptions opts)
    : impl_(new Impl(service, std::move(opts))) {}

Server::~Server() { delete impl_; }

std::uint16_t Server::port() const { return local_port(impl_->listener.get()); }

int Server::run() {
  const int rc = impl_->run();
  counters_ = impl_->counters;
  return rc;
}

}  // namespace ramp::net
