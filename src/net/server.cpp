#include "net/server.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "net/event_loop.hpp"
#include "obs/metrics.hpp"
#include "obs/reqtrace.hpp"
#include "scaling/technology.hpp"
#include "serve/eval_service.hpp"
#include "serve/session.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"

namespace ramp::net {

namespace {

/// Result cell an aux-thread job fills in; the slot holds the same pointer,
/// so a connection dying mid-computation just orphans the cell harmlessly.
struct AuxResult {
  std::atomic<bool> done{false};
  std::string line;
};

using SteadyTp = std::chrono::steady_clock::time_point;

std::uint64_t delta_ns(SteadyTp a, SteadyTp b) {
  return b <= a ? std::uint64_t{0}
                : static_cast<std::uint64_t>(
                      std::chrono::nanoseconds(b - a).count());
}

/// RED metrics bucket requests by cost class, not individual op — the
/// registry has no labels, and eval vs cheap-control vs expensive-aux is
/// the distinction capacity planning needs.
enum OpClass : int { kOpEval = 0, kOpControl = 1, kOpAux = 2 };
constexpr int kNumOpClasses = 3;
constexpr const char* kOpClassName[kNumOpClasses] = {"eval", "control", "aux"};

}  // namespace

struct Server::Impl {
  // ---- wiring --------------------------------------------------------------

  struct Slot {
    enum class Kind { kReady, kEval, kControl, kAux };
    Kind kind = Kind::kReady;
    std::string line;  ///< kReady: the serialized response
    serve::EvalService::Ticket ticket;  ///< kEval
    std::string id;                     ///< kEval
    serve::EvalRequest req;   ///< kControl: computed at head of line
    std::shared_ptr<AuxResult> aux;     ///< kAux
    bool counts_as_work = false;        ///< held a max_queued_requests unit
    int op_class = kOpControl;          ///< RED metrics bucket
    SteadyTp accepted{};                ///< handle_line entry (RED duration)
    /// Non-null when this request is traced: phases filled so far. Heap,
    /// not inline — the common untraced slot stays small.
    std::unique_ptr<obs::RequestTrace> trace;
    bool want_response_trace = false;  ///< request carried "trace":true
  };

  /// A traced response waiting for its bytes to reach the socket: complete
  /// once the connection's flushed-byte counter passes `target`.
  struct PendingFlush {
    std::uint64_t target = 0;
    SteadyTp resolved{};  ///< when the response entered the out buffer
    obs::RequestTrace rec;
  };

  struct Conn {
    OwnedFd fd;
    std::string inbuf;
    std::string outbuf;
    std::deque<Slot> slots;
    std::uint32_t mask = 0;      ///< epoll mask currently armed
    bool discarding = false;     ///< over-long line: drop to next newline
    bool peer_eof = false;
    bool saw_shutdown = false;   ///< ignore lines after a shutdown op
    bool dead = false;           ///< error path: reap without delivering
    // Tracing state (touched only when the server-wide switch is on).
    bool has_partial = false;    ///< inbuf holds the head of an unread line
    SteadyTp partial_since{};    ///< when that head arrived (read phase)
    std::uint64_t out_enqueued = 0;  ///< bytes ever appended to outbuf
    std::uint64_t out_flushed = 0;   ///< bytes ever written to the socket
    std::deque<PendingFlush> pending_flush;
  };

  struct AuxJob {
    serve::EvalRequest req;
    std::shared_ptr<AuxResult> result;
  };

  serve::EvalService& service;
  ServerOptions opts;
  /// Master tracing switch: the request-trace flag or a slow log turns the
  /// per-request phase clocks on. Off, no per-phase clock is ever read —
  /// the zero-overhead-when-off contract the saturation gate holds.
  const bool tracing;
  EventLoop loop;
  OwnedFd listener;
  std::map<int, std::unique_ptr<Conn>> conns;
  int rr_next_fd = -1;  ///< response-pump round-robin cursor
  bool draining = false;
  std::size_t queued_work = 0;  ///< eval+aux slots outstanding (global cap)
  ServerCounters counters;
  SteadyTp started = std::chrono::steady_clock::now();

  obs::TraceRing ring;
  std::ofstream slow_log;
  std::uint64_t slow_ns = 0;  ///< slow-log threshold (0: log every trace)
  std::uint64_t trace_seq = 0;

  std::thread aux_thread;
  std::mutex aux_mu;
  std::condition_variable aux_cv;
  std::deque<AuxJob> aux_jobs;
  bool aux_stop = false;

  obs::Counter m_conns_accepted, m_conns_rejected, m_requests, m_shed,
      m_parse_errors, m_responses, m_dropped;
  obs::Gauge m_open_conns;
  // RED per op class: rate, errors, duration (accept → response resolved).
  obs::Counter m_op_requests[kNumOpClasses];
  obs::Counter m_op_errors[kNumOpClasses];
  obs::Histogram m_op_duration[kNumOpClasses];
  // Per-phase nanosecond totals, booked as traced requests complete — what
  // bench_serve.py reads back to attribute the knee.
  obs::Counter m_phase_ns[obs::kNumPhases];
  // Event-loop health: dispatch (non-epoll-wait) time per iteration, stall
  // count, buffered output and deepest per-client pipeline.
  obs::Histogram m_loop_dispatch;
  obs::Counter m_loop_stalls;
  obs::Gauge m_outbuf_bytes;
  obs::Gauge m_pipeline_depth_max;

  Impl(serve::EvalService& svc, ServerOptions o)
      : service(svc),
        opts(std::move(o)),
        tracing(opts.request_trace || !opts.slow_log_path.empty()),
        ring(opts.trace_ring) {
    if (opts.listen_fd >= 0) {
      listener = OwnedFd(opts.listen_fd);
    } else {
      listener = listen_tcp(opts.host, opts.port);
    }
    if (!opts.slow_log_path.empty()) {
      slow_log.open(opts.slow_log_path, std::ios::app);
      slow_ns = static_cast<std::uint64_t>(opts.slow_ms * 1e6);
    }
    auto& reg = service.registry();
    m_conns_accepted = reg.counter("ramp_net_connections_accepted");
    m_conns_rejected = reg.counter("ramp_net_connections_rejected");
    m_requests = reg.counter("ramp_net_requests");
    m_shed = reg.counter("ramp_net_requests_shed");
    m_parse_errors = reg.counter("ramp_net_parse_errors");
    m_responses = reg.counter("ramp_net_responses");
    m_dropped = reg.counter("ramp_net_responses_dropped");
    m_open_conns = reg.gauge("ramp_net_open_connections");
    const std::vector<double> latency_bounds = {
        0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
        0.025,  0.05,    0.1,    0.25,  0.5,    1.0,   2.5};
    for (int k = 0; k < kNumOpClasses; ++k) {
      const std::string suffix = kOpClassName[static_cast<std::size_t>(k)];
      m_op_requests[k] =
          reg.counter("ramp_net_op_requests_total_" + suffix);
      m_op_errors[k] = reg.counter("ramp_net_op_errors_total_" + suffix);
      m_op_duration[k] = reg.histogram(
          "ramp_net_op_duration_seconds_" + suffix, latency_bounds);
    }
    for (int p = 0; p < obs::kNumPhases; ++p) {
      m_phase_ns[p] = reg.counter(
          "ramp_net_phase_ns_total_" +
          std::string(obs::phase_name(static_cast<obs::Phase>(p))));
    }
    m_loop_dispatch = reg.histogram(
        "ramp_net_loop_dispatch_seconds",
        {1e-6, 1e-5, 1e-4, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5});
    m_loop_stalls = reg.counter("ramp_net_loop_stalls_total");
    m_outbuf_bytes = reg.gauge("ramp_net_outbuf_bytes");
    m_pipeline_depth_max = reg.gauge("ramp_net_pipeline_depth_max");
  }

  ~Impl() {
    if (aux_thread.joinable()) {
      {
        std::lock_guard<std::mutex> l(aux_mu);
        aux_stop = true;
      }
      aux_cv.notify_all();
      aux_thread.join();
    }
  }

  // ---- epoll mask management ----------------------------------------------

  std::uint32_t desired_mask(const Conn& c) const {
    std::uint32_t m = 0;
    const bool paused = c.slots.size() >= opts.max_pipeline_per_conn ||
                        c.outbuf.size() >= opts.max_outbuf_bytes;
    if (!c.peer_eof && !c.saw_shutdown && !draining && !paused) m |= EPOLLIN;
    if (!c.outbuf.empty()) m |= EPOLLOUT;
    return m;
  }

  void update_mask(Conn& c) {
    const std::uint32_t want = desired_mask(c);
    if (want == c.mask) return;
    loop.modify(c.fd.get(), want);
    c.mask = want;
  }

  // ---- request intake ------------------------------------------------------

  void push_ready(Conn& c, std::string line) {
    Slot s;
    s.kind = Slot::Kind::kReady;
    s.line = std::move(line);
    c.slots.push_back(std::move(s));
    counters.accepted_requests++;
    m_requests.inc();
  }

  void push_shed(Conn& c, const std::string& id) {
    push_ready(c, serve::overloaded_response(id).dump());
    counters.shed_requests++;
    m_shed.inc();
  }

  void handle_line(Conn& c, const std::string& line) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) return;
    // One clock read per request, always: the RED duration base. With the
    // trace switch off this is the only timestamp the request ever takes.
    const SteadyTp t0 = std::chrono::steady_clock::now();
    std::uint64_t read_ns = 0;
    if (tracing && c.has_partial) {
      // This line's head arrived in an earlier read event; the gap is the
      // request's wire-read phase. Only the buffered head line qualifies.
      read_ns = delta_ns(c.partial_since, t0);
      c.has_partial = false;
    }
    if (line.size() > serve::kMaxRequestLine) {
      push_ready(c, serve::error_response(serve::oversize_line_message())
                        .dump());
      counters.parse_errors++;
      m_parse_errors.inc();
      return;
    }

    serve::EvalRequest req;
    try {
      req = serve::parse_request(line);
    } catch (const std::exception& e) {
      push_ready(c, serve::error_response(e.what()).dump());
      counters.parse_errors++;
      m_parse_errors.inc();
      return;
    }
    const SteadyTp t1 = (tracing || req.trace)
                            ? std::chrono::steady_clock::now()
                            : SteadyTp{};

    switch (req.op) {
      case serve::Op::kShutdown:
        push_ready(c, serve::shutdown_response(req).dump());
        c.slots.back().accepted = t0;
        c.saw_shutdown = true;
        begin_drain();
        return;
      case serve::Op::kHealth: {
        serve::HealthInfo info;
        info.mode = "tcp";
        info.uptime_s = std::chrono::duration<double>(t0 - started).count();
        info.accepted_connections = counters.accepted_connections;
        info.active_connections = conns.size();
        info.draining = draining;
        info.shards = opts.shards;
        push_ready(c, serve::health_response(req, info).dump());
        c.slots.back().accepted = t0;
        return;
      }
      case serve::Op::kTraceDump:
        // The ring is loop-owned, so the dump is a plain read: answered
        // immediately with whatever completed before this request.
        push_ready(c, serve::trace_dump_response(req, ring).dump());
        c.slots.back().accepted = t0;
        return;
      case serve::Op::kStats:
      case serve::Op::kMetrics:
      case serve::Op::kMetricsReset: {
        // Cheap control ops: computed when the slot reaches the head of
        // this connection's line, so they sit *after* the evals pipelined
        // before them — same per-client ordering as the stdio barrier.
        Slot s;
        s.kind = Slot::Kind::kControl;
        s.req = std::move(req);
        s.accepted = t0;
        c.slots.push_back(std::move(s));
        counters.accepted_requests++;
        m_requests.inc();
        return;
      }
      case serve::Op::kEval: {
        if (queued_work >= opts.max_queued_requests) {
          push_shed(c, req.id);
          c.slots.back().accepted = t0;
          c.slots.back().op_class = kOpEval;
          return;
        }
        serve::EvalService::Ticket t;
        bool scheduled = false;
        try {
          scheduled = service.try_submit(req, &t);
        } catch (const std::exception& e) {
          push_ready(c, serve::error_response(e.what(), req.id).dump());
          c.slots.back().accepted = t0;
          return;
        }
        if (!scheduled) {  // service backpressure: shed, never block the loop
          push_shed(c, req.id);
          c.slots.back().accepted = t0;
          c.slots.back().op_class = kOpEval;
          return;
        }
        Slot s;
        s.kind = Slot::Kind::kEval;
        s.ticket = std::move(t);
        s.id = req.id;
        s.counts_as_work = true;
        s.op_class = kOpEval;
        s.accepted = t0;
        if (tracing || req.trace) {
          const SteadyTp t2 = std::chrono::steady_clock::now();
          auto rec = std::make_unique<obs::RequestTrace>();
          if (req.trace_id.empty()) {
            char buf[24];
            std::snprintf(buf, sizeof buf, "s%llx",
                          static_cast<unsigned long long>(++trace_seq));
            rec->trace_id = buf;
          } else {
            rec->trace_id = req.trace_id;
          }
          rec->op = "eval";
          rec->label =
              req.app + "@" + std::string(scaling::tech_token(req.node));
          rec->start_ns = ring.to_epoch_ns(t0) >= read_ns
                              ? ring.to_epoch_ns(t0) - read_ns
                              : 0;
          auto& ph = rec->phase_ns;
          ph[static_cast<std::size_t>(obs::Phase::kRead)] = read_ns;
          // A "trace":true request under a cold server switch starts its
          // clock after parsing — its parse phase reads 0 by construction.
          ph[static_cast<std::size_t>(obs::Phase::kParse)] =
              tracing ? delta_ns(t0, t1) : 0;
          ph[static_cast<std::size_t>(obs::Phase::kAdmission)] =
              delta_ns(t1, t2);
          rec->cached = s.ticket.source == serve::EvalService::Source::kCache;
          rec->coalesced =
              s.ticket.source == serve::EvalService::Source::kCoalesced;
          s.trace = std::move(rec);
          s.want_response_trace = req.trace;
        }
        c.slots.push_back(std::move(s));
        queued_work++;
        counters.accepted_requests++;
        m_requests.inc();
        return;
      }
      case serve::Op::kTimeline:
      case serve::Op::kFleet: {
        if (queued_work >= opts.max_queued_requests) {
          push_shed(c, req.id);
          c.slots.back().accepted = t0;
          c.slots.back().op_class = kOpAux;
          return;
        }
        Slot s;
        s.kind = Slot::Kind::kAux;
        s.aux = std::make_shared<AuxResult>();
        s.counts_as_work = true;
        s.op_class = kOpAux;
        s.accepted = t0;
        {
          std::lock_guard<std::mutex> l(aux_mu);
          aux_jobs.push_back({std::move(req), s.aux});
        }
        aux_cv.notify_one();
        c.slots.push_back(std::move(s));
        queued_work++;
        counters.accepted_requests++;
        m_requests.inc();
        return;
      }
    }
  }

  void process_inbuf(Conn& c) {
    std::size_t start = 0;
    while (!c.saw_shutdown) {
      const std::size_t nl = c.inbuf.find('\n', start);
      if (nl == std::string::npos) break;
      if (c.discarding) {
        c.discarding = false;  // the over-long line ended; already answered
      } else {
        handle_line(c, c.inbuf.substr(start, nl - start));
      }
      start = nl + 1;
    }
    c.inbuf.erase(0, start);
    if (c.saw_shutdown) {
      c.inbuf.clear();
      return;
    }
    if (!c.discarding && c.inbuf.size() > serve::kMaxRequestLine) {
      // Stop buffering: no client may grow our memory by withholding '\n'.
      push_ready(c, serve::error_response(serve::oversize_line_message())
                        .dump());
      counters.parse_errors++;
      m_parse_errors.inc();
      c.inbuf.clear();
      c.discarding = true;
      c.has_partial = false;
    } else if (c.discarding) {
      c.inbuf.clear();
      c.has_partial = false;
    } else if (tracing) {
      // A leftover line head starts (or continues) the next request's read
      // phase; one clock read per partial arrival, not per byte.
      if (c.inbuf.empty()) {
        c.has_partial = false;
      } else if (!c.has_partial) {
        c.has_partial = true;
        c.partial_since = std::chrono::steady_clock::now();
      }
    }
  }

  /// `to_eof`: the peer hung up (EPOLLHUP) — drain everything it sent
  /// before its close, so a fire-and-disconnect client still gets every
  /// complete request accepted. Otherwise one bounded read per readiness
  /// event: level-triggered epoll re-arms if more is buffered, so hot
  /// clients round-robin with everyone else.
  void on_readable(Conn& c, bool to_eof) {
    while (true) {
      char buf[65536];
      const ssize_t n = ::read(c.fd.get(), buf, sizeof buf);
      if (n == 0) {
        c.peer_eof = true;  // half-close: still answer what was accepted
        break;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK) kill_conn(c);
        break;
      }
      c.inbuf.append(buf, static_cast<std::size_t>(n));
      process_inbuf(c);
      if (!to_eof) break;
    }
  }

  // ---- response delivery ---------------------------------------------------

  /// Moves every deliverable head-of-line response into the out buffer.
  void resolve_slots(Conn& c) {
    // One clock read amortized over every slot resolved this call — the
    // RED duration endpoint (excludes socket flush; identical with tracing
    // on or off, so the two configurations report comparable latencies).
    SteadyTp t3{};
    while (!c.slots.empty()) {
      Slot& s = c.slots.front();
      std::string line;
      switch (s.kind) {
        case Slot::Kind::kReady:
          line = std::move(s.line);
          break;
        case Slot::Kind::kEval:
          if (s.ticket.future.wait_for(std::chrono::seconds(0)) !=
              std::future_status::ready) {
            return;
          }
          if (s.trace != nullptr) {
            line = resolve_traced_eval(c, s);
          } else {
            line = serve::eval_response(s.ticket, s.id).dump();
          }
          break;
        case Slot::Kind::kControl:
          // Multi-client server: snapshot live counters, don't quiesce —
          // other clients keep the service busy by design.
          line = serve::control_response(service, s.req, /*quiesce=*/false)
                     .dump();
          break;
        case Slot::Kind::kAux:
          if (!s.aux->done.load(std::memory_order_acquire)) return;
          line = std::move(s.aux->line);
          break;
      }
      if (t3 == SteadyTp{}) t3 = std::chrono::steady_clock::now();
      const int k = s.op_class;
      m_op_requests[k].inc();
      // Responses put "ok" first, so errors are a prefix check, not a parse.
      if (line.rfind("{\"ok\":false", 0) == 0) m_op_errors[k].inc();
      if (s.accepted != SteadyTp{}) {
        m_op_duration[k].observe(
            static_cast<double>(delta_ns(s.accepted, t3)) * 1e-9);
      }
      if (s.counts_as_work) queued_work--;
      c.outbuf += line;
      c.outbuf += '\n';
      c.out_enqueued += line.size() + 1;
      if (s.trace != nullptr) {
        // The record completes when its last byte reaches the socket; park
        // it against the flushed-byte watermark.
        PendingFlush pf;
        pf.target = c.out_enqueued;
        pf.resolved = t3;
        pf.rec = std::move(*s.trace);
        c.pending_flush.push_back(std::move(pf));
      }
      c.slots.pop_front();
      counters.responses_sent++;
      m_responses.inc();
    }
  }

  /// Renders a traced eval's response, filling the record's worker phases
  /// and serialize time; the flush phase completes in flush().
  std::string resolve_traced_eval(Conn& c, Slot& s) {
    const SteadyTp r0 = std::chrono::steady_clock::now();
    serve::Json r = serve::eval_response(s.ticket, s.id);
    const SteadyTp r1 = std::chrono::steady_clock::now();

    obs::RequestTrace& rec = *s.trace;
    const serve::Json* ok = r.find("ok");
    rec.ok = ok != nullptr && ok->as_bool("ok");
    auto& ph = rec.phase_ns;
    if (s.ticket.source == serve::EvalService::Source::kScheduled &&
        s.ticket.phases != nullptr) {
      ph[static_cast<std::size_t>(obs::Phase::kQueue)] =
          s.ticket.phases->queue_ns;
      ph[static_cast<std::size_t>(obs::Phase::kCache)] =
          s.ticket.phases->cache_ns;
      ph[static_cast<std::size_t>(obs::Phase::kCompute)] =
          s.ticket.phases->compute_ns;
      rec.stage_ns = s.ticket.phases->stage_ns;
    } else {
      // Cache hit / coalesced join: no work of its own — the latency is
      // head-of-line wait on this connection (minus the phases already
      // attributed at accept time).
      const std::uint64_t wait = delta_ns(s.accepted, r0);
      const std::uint64_t booked =
          ph[static_cast<std::size_t>(obs::Phase::kParse)] +
          ph[static_cast<std::size_t>(obs::Phase::kAdmission)];
      ph[static_cast<std::size_t>(obs::Phase::kQueue)] =
          wait >= booked ? wait - booked : 0;
    }
    ph[static_cast<std::size_t>(obs::Phase::kSerialize)] = delta_ns(r0, r1);
    if (s.want_response_trace) {
      // The in-response flush phase necessarily reads 0 — a response cannot
      // carry its own write time. The ring and slow-log records get it.
      rec.total_ns = delta_ns(s.accepted, r1) +
                     ph[static_cast<std::size_t>(obs::Phase::kRead)];
      r.set("trace", serve::trace_object(rec));
    }
    return r.dump();
  }

  void flush(Conn& c) {
    while (!c.outbuf.empty()) {
      const ssize_t n = ::write(c.fd.get(), c.outbuf.data(), c.outbuf.size());
      if (n > 0) {
        c.outbuf.erase(0, static_cast<std::size_t>(n));
        c.out_flushed += static_cast<std::uint64_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      kill_conn(c);  // EPIPE & friends: the client is gone
      return;
    }
    complete_flushed(c);
  }

  /// Finalizes traced records whose bytes have fully left the out buffer:
  /// one clock read per write batch, shared by every record it completed.
  void complete_flushed(Conn& c) {
    if (c.pending_flush.empty() ||
        c.pending_flush.front().target > c.out_flushed) {
      return;
    }
    const SteadyTp t5 = std::chrono::steady_clock::now();
    while (!c.pending_flush.empty() &&
           c.pending_flush.front().target <= c.out_flushed) {
      PendingFlush& pf = c.pending_flush.front();
      obs::RequestTrace rec = std::move(pf.rec);
      rec.phase_ns[static_cast<std::size_t>(obs::Phase::kFlush)] =
          delta_ns(pf.resolved, t5);
      rec.total_ns = ring.to_epoch_ns(t5) >= rec.start_ns
                         ? ring.to_epoch_ns(t5) - rec.start_ns
                         : 0;
      c.pending_flush.pop_front();
      finalize_trace(std::move(rec));
    }
  }

  void finalize_trace(obs::RequestTrace rec) {
    for (int p = 0; p < obs::kNumPhases; ++p) {
      m_phase_ns[p].inc(rec.phase_ns[static_cast<std::size_t>(p)]);
    }
    if (slow_log.is_open() && rec.total_ns >= slow_ns) {
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::system_clock::now().time_since_epoch())
              .count();
      slow_log << obs::request_trace_json(rec, wall_ms) << '\n';
      slow_log.flush();
    }
    ring.push(std::move(rec));
  }

  void pump(Conn& c) {
    if (c.dead) return;
    resolve_slots(c);
    flush(c);
    if (c.dead) return;
    if (c.slots.empty() && c.outbuf.empty() &&
        (c.peer_eof || c.saw_shutdown || draining)) {
      c.dead = true;  // conversation over
      return;
    }
    update_mask(c);
  }

  /// Pumps every connection, rotating the start so delivery is fair.
  void pump_all() {
    if (conns.empty()) return;
    auto it = conns.lower_bound(rr_next_fd);
    if (it == conns.end()) it = conns.begin();
    const int first = it->first;
    do {
      pump(*it->second);
      ++it;
      if (it == conns.end()) it = conns.begin();
    } while (it->first != first);
    rr_next_fd = first + 1;
  }

  void reap_dead() {
    for (auto it = conns.begin(); it != conns.end();) {
      Conn& c = *it->second;
      if (!c.dead) {
        ++it;
        continue;
      }
      for (const Slot& s : c.slots) {
        if (s.counts_as_work) queued_work--;
        counters.dropped_responses++;
        m_dropped.inc();
      }
      loop.remove(c.fd.get());
      it = conns.erase(it);
    }
    m_open_conns.set(static_cast<double>(conns.size()));
  }

  void kill_conn(Conn& c) { c.dead = true; }

  /// Write-buffer and pipeline-depth health gauges, refreshed once per loop
  /// iteration (O(connections), bounded by max_connections).
  void update_loop_gauges() {
    std::uint64_t outbuf_total = 0;
    std::size_t depth_max = 0;
    for (const auto& [fd, c] : conns) {
      outbuf_total += c->outbuf.size();
      depth_max = std::max(depth_max, c->slots.size());
    }
    m_outbuf_bytes.set(static_cast<double>(outbuf_total));
    m_pipeline_depth_max.set(static_cast<double>(depth_max));
  }

  // ---- accept & drain ------------------------------------------------------

  void on_accept() {
    while (true) {
      OwnedFd fd = accept_client(listener.get());
      if (!fd.valid()) return;
      if (draining) continue;  // closing fd refuses the late arrival
      if (conns.size() >= opts.max_connections) {
        // One explicit overloaded line, then close: the client learns why.
        const std::string line = serve::overloaded_response().dump() + "\n";
        [[maybe_unused]] ssize_t r =
            ::write(fd.get(), line.data(), line.size());
        counters.rejected_connections++;
        m_conns_rejected.inc();
        continue;
      }
      auto conn = std::make_unique<Conn>();
      conn->fd = std::move(fd);
      const int cfd = conn->fd.get();
      Conn* raw = conn.get();
      conn->mask = EPOLLIN;
      loop.add(cfd, EPOLLIN, [this, raw](std::uint32_t events) {
        if (events & EPOLLERR) {
          kill_conn(*raw);
        } else if (events & (EPOLLIN | EPOLLHUP)) {
          on_readable(*raw, /*to_eof=*/(events & EPOLLHUP) != 0);
        }
        pump(*raw);
      });
      conns.emplace(cfd, std::move(conn));
      counters.accepted_connections++;
      m_conns_accepted.inc();
      m_open_conns.set(static_cast<double>(conns.size()));
    }
  }

  void begin_drain() {
    if (draining) return;
    draining = true;
    if (loop.watched(listener.get())) loop.remove(listener.get());
    listener.reset();  // new connects are refused at the kernel
    // Connections stop reading (mask update on next pump); complete lines
    // already read were handled at read time — only a partial line can be
    // in an inbuf, and an unterminated request was never accepted.
  }

  void aux_main() {
    while (true) {
      AuxJob job;
      {
        std::unique_lock<std::mutex> l(aux_mu);
        aux_cv.wait(l, [&] { return aux_stop || !aux_jobs.empty(); });
        if (aux_jobs.empty()) return;  // stop requested and queue drained
        job = std::move(aux_jobs.front());
        aux_jobs.pop_front();
      }
      std::string line;
      try {
        line = serve::control_response(service, job.req, /*quiesce=*/false)
                   .dump();
      } catch (const std::exception& e) {  // control_response shouldn't
        line = serve::error_response(e.what(), job.req.id).dump();  // throw,
      }                                                             // but belt
      job.result->line = std::move(line);
      job.result->done.store(true, std::memory_order_release);
      loop.wake();
    }
  }

  /// Stall threshold: one dispatch pass keeping the loop away from
  /// epoll_wait for this long means every idle client waited that long.
  static constexpr double kStallSeconds = 0.1;

  int run() {
    service.set_completion_hook([this] { loop.wake(); });
    aux_thread = std::thread([this] { aux_main(); });
    loop.add(listener.get(), EPOLLIN, [this](std::uint32_t) { on_accept(); });

    // Loop health costs two clock reads per *iteration* (not per request):
    // iteration wall time minus the time blocked in epoll_wait is dispatch
    // (busy) time — reads, parses, resolves, flushes of that pass.
    SteadyTp iter_start = std::chrono::steady_clock::now();
    while (true) {
      if (serve::drain_requested(opts.drain_flag)) begin_drain();
      pump_all();
      reap_dead();
      update_loop_gauges();
      if (draining && conns.empty()) break;
      loop.run_once(/*timeout_ms=*/100);
      const SteadyTp iter_end = std::chrono::steady_clock::now();
      const std::uint64_t wall = delta_ns(iter_start, iter_end);
      const std::uint64_t waited = loop.last_wait_ns();
      const double busy_s =
          static_cast<double>(wall > waited ? wall - waited : 0) * 1e-9;
      m_loop_dispatch.observe(busy_s);
      if (busy_s > kStallSeconds) m_loop_stalls.inc();
      iter_start = iter_end;
    }

    service.set_completion_hook(nullptr);
    {
      std::lock_guard<std::mutex> l(aux_mu);
      aux_stop = true;
    }
    aux_cv.notify_all();
    aux_thread.join();
    return 0;
  }
};

Server::Server(serve::EvalService& service, ServerOptions opts)
    : impl_(new Impl(service, std::move(opts))) {}

Server::~Server() { delete impl_; }

std::uint16_t Server::port() const { return local_port(impl_->listener.get()); }

int Server::run() {
  const int rc = impl_->run();
  counters_ = impl_->counters;
  return rc;
}

}  // namespace ramp::net
