#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace ramp {

void Xoshiro256::reseed(std::uint64_t seed) {
  // Seed expansion via SplitMix64, bit-identical to the historical inline
  // implementation (same Weyl increment, same finalizer).
  SplitMix64 s(seed);
  for (auto& word : state_) word = s();
  // All-zero state is the one invalid state for xoshiro; splitmix64 cannot
  // produce four zero words from any seed, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Xoshiro256::below(std::uint64_t n) {
  RAMP_REQUIRE(n > 0, "below(n) needs n >= 1");
  // Lemire's multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Xoshiro256::geometric(double p) {
  RAMP_REQUIRE(p > 0.0 && p <= 1.0, "geometric(p) needs p in (0, 1]");
  if (p >= 1.0) return 0;
  // Inverse-CDF: floor(ln(U) / ln(1-p)) with U in (0, 1].
  const double u = 1.0 - uniform();  // (0, 1]
  const double draws = std::floor(std::log(u) / std::log1p(-p));
  return draws < 0.0 ? 0 : static_cast<std::uint64_t>(draws);
}

double Xoshiro256::normal() {
  // Box-Muller; u1 in (0,1] to keep log finite.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

void AliasTable::rebuild(std::span<const double> weights) {
  RAMP_REQUIRE(!weights.empty(), "alias table needs at least one weight");
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    RAMP_REQUIRE(w >= 0.0, "alias table weights must be non-negative");
    total += w;
  }
  RAMP_REQUIRE(total > 0.0, "alias table needs a positive total weight");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities; categories above/below 1 feed Walker's pairing.
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t l : large) prob_[l] = 1.0;
  for (std::uint32_t s : small) prob_[s] = 1.0;  // numerical leftovers
}

std::size_t AliasTable::sample(Xoshiro256& rng) const {
  RAMP_REQUIRE(!prob_.empty(), "sampling from an empty alias table");
  const std::size_t i = static_cast<std::size_t>(rng.below(prob_.size()));
  return rng.uniform() < prob_[i] ? i : alias_[i];
}

}  // namespace ramp
