// Stable, streaming 64-bit hashing for content-addressed keys and caches.
//
// The mixing scheme is the one the sweep cache has always used (FNV-1a offset
// basis, golden-ratio combine per value), factored out so the sweep's
// config_hash and the serve layer's request keys hash identically across
// platforms, runs, and processes. Not cryptographic — collisions are guarded
// at use sites by storing the full canonical key next to the digest.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace ramp {

class Fnv64 {
 public:
  /// Golden-ratio combine of a raw 64-bit value.
  Fnv64& mix(std::uint64_t v) {
    h_ ^= v + 0x9e3779b97f4a7c15ULL + (h_ << 6) + (h_ >> 2);
    return *this;
  }

  /// Combines the IEEE-754 bit pattern, so -0.0 != 0.0 etc. stay distinct
  /// exactly as the sweep cache's legacy hash treated them.
  Fnv64& mix(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    return mix(bits);
  }

  /// Byte-wise FNV-1a over the string, then its length (so "ab","c" and
  /// "a","bc" differ).
  Fnv64& mix(std::string_view s) {
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    mix(h);
    return mix(static_cast<std::uint64_t>(s.size()));
  }

  std::uint64_t value() const { return h_; }

  /// 16-digit lowercase hex rendering of value().
  std::string hex() const {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    std::uint64_t v = h_;
    for (int i = 15; i >= 0; --i) {
      out[static_cast<std::size_t>(i)] = digits[v & 0xF];
      v >>= 4;
    }
    return out;
  }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;  ///< FNV-1a 64-bit offset basis
};

}  // namespace ramp
