#include "util/env.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>

#include "util/error.hpp"

namespace ramp {

std::optional<std::string> env_string(const std::string& name) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  return std::string(raw);
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  std::uint64_t v = 0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, v, 10);
  if (ec == std::errc::result_out_of_range) {
    throw InvalidArgument(what + "='" + text +
                          "' overflows a 64-bit unsigned integer");
  }
  if (ec != std::errc{} || ptr != last || text.empty()) {
    throw InvalidArgument("cannot parse " + what + "='" + text +
                          "' as an unsigned integer (digits only; no sign, "
                          "whitespace, or suffix)");
  }
  return v;
}

std::uint64_t env_u64(const std::string& name, std::uint64_t fallback) {
  const auto raw = env_string(name);
  if (!raw) return fallback;
  return parse_u64(*raw, "environment variable " + name);
}

std::size_t env_jobs(const std::string& name, std::size_t fallback) {
  const auto v = env_u64(name, fallback);
  RAMP_REQUIRE(v > 0, "environment variable " + name + " must be at least 1");
  return static_cast<std::size_t>(v);
}

namespace {

std::string to_lower(const std::string& s) {
  std::string lower = s;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
  return lower;
}

}  // namespace

bool env_enabled(const std::string& name) {
  auto raw = env_string(name);
  if (!raw) return true;
  const std::string lower = to_lower(*raw);
  return lower != "off" && lower != "0" && lower != "false" && lower != "no";
}

bool env_on_off(const std::string& name, bool fallback) {
  const auto raw = env_string(name);
  if (!raw) return fallback;
  const std::string lower = to_lower(*raw);
  if (lower == "on" || lower == "1" || lower == "true" || lower == "yes") {
    return true;
  }
  if (lower == "off" || lower == "0" || lower == "false" || lower == "no") {
    return false;
  }
  throw InvalidArgument("environment variable " + name + "='" + *raw +
                        "' is not a switch (use on/1/true/yes or "
                        "off/0/false/no)");
}

std::optional<std::string> env_on_off_or_value(const std::string& name) {
  const auto raw = env_string(name);
  if (!raw) return std::nullopt;
  const std::string lower = to_lower(*raw);
  if (lower == "off" || lower == "0" || lower == "false" || lower == "no") {
    return std::nullopt;
  }
  if (lower == "on" || lower == "1" || lower == "true" || lower == "yes") {
    return std::string();
  }
  return *raw;
}

std::optional<double> env_double(const std::string& name) {
  const auto raw = env_string(name);
  if (!raw) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(raw->c_str(), &end);
  if (end == nullptr || *end != '\0' || raw->empty() || !std::isfinite(v)) {
    throw InvalidArgument("environment variable " + name + "='" + *raw +
                          "' is not a finite number");
  }
  return v;
}

std::string output_dir() {
  return env_string("RAMP_OUT_DIR").value_or("out");
}

}  // namespace ramp
