#include "util/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "util/error.hpp"

namespace ramp {

std::optional<std::string> env_string(const std::string& name) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  return std::string(raw);
}

std::uint64_t env_u64(const std::string& name, std::uint64_t fallback) {
  const auto raw = env_string(name);
  if (!raw) return fallback;
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(*raw, &pos);
    RAMP_REQUIRE(pos == raw->size(), "trailing characters in " + name);
    return v;
  } catch (const std::logic_error&) {
    throw InvalidArgument("cannot parse environment variable " + name + "='" +
                          *raw + "' as an unsigned integer");
  }
}

bool env_enabled(const std::string& name) {
  auto raw = env_string(name);
  if (!raw) return true;
  std::string lower = *raw;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
  return lower != "off" && lower != "0" && lower != "false" && lower != "no";
}

}  // namespace ramp
