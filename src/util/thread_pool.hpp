// Fixed-size thread pool with futures, exception propagation, and
// deterministic task IDs.
//
// The pool is deliberately work-stealing-free: one FIFO queue feeds a fixed
// set of workers, so task *start* order equals submission order. Task IDs are
// assigned under the queue lock at submission time, which makes them
// reproducible for any deterministic submission sequence regardless of how
// execution interleaves. Exceptions thrown by a task are captured in its
// future and rethrown at `get()`, never on the worker thread.
//
// Tasks may submit further tasks (that is how the sweep fans out dependent
// work), but must never block on a future of a task that has not yet been
// dequeued — with a FIFO queue that can only happen when a task waits on work
// submitted *after* itself.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace ramp {

class ThreadPool {
 public:
  /// Spawns `workers` threads; throws InvalidArgument when `workers` is zero.
  explicit ThreadPool(std::size_t workers);

  /// Drains the queue (all submitted tasks still run) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// Tasks submitted but not yet picked up by a worker. Point-in-time (the
  /// queue moves concurrently); intended for gauges and progress reporting,
  /// not for synchronization.
  std::size_t queued() const;

  /// Tasks currently executing on a worker. Same point-in-time caveat: a
  /// task's future may already be ready while active() still counts it for
  /// an instant after run() returns.
  std::size_t active() const { return active_.load(std::memory_order_relaxed); }

  /// Sequential ID the next submitted task will receive.
  std::uint64_t next_task_id() const;

  /// Enqueues `fn` and returns a future for its result. The task's
  /// exception, if any, is captured and rethrown from `future::get()`.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      RAMP_REQUIRE(!stopping_, "submit on a stopping ThreadPool");
      queue_.push_back(Task{next_id_++, [task] { (*task)(); }});
    }
    cv_.notify_one();
    return result;
  }

  /// Index of the worker running the calling thread, or -1 when the caller
  /// is not a pool worker (useful for progress reporting).
  static int current_worker_id();

 private:
  struct Task {
    std::uint64_t id;
    std::function<void()> run;
  };

  void worker_loop(int worker_id);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  std::atomic<std::size_t> active_{0};
  std::uint64_t next_id_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ramp
