// Small dense linear algebra: enough to solve the thermal RC network.
//
// The HotSpot-style thermal model (src/thermal) produces conductance systems
// of ~10 nodes (7 floorplan blocks + spreader + sink); a dense LU with
// partial pivoting is simple, exact, and fast at that size. Kept generic so
// tests can exercise it on arbitrary well-conditioned systems.
#pragma once

#include <cstddef>
#include <vector>

namespace ramp {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Matrix-vector product; `x.size()` must equal `cols()`.
  std::vector<double> mul(const std::vector<double>& x) const;

  static Matrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting of a square matrix; reusable for
/// repeated solves against the same matrix (the transient thermal integrator
/// factors its implicit-step matrix once per technology node).
class LuSolver {
 public:
  /// Factors `a` (must be square and non-singular). Throws ConvergenceError
  /// on a numerically singular pivot.
  explicit LuSolver(Matrix a);

  /// Solves A x = b; `b.size()` must equal the matrix dimension.
  std::vector<double> solve(const std::vector<double>& b) const;

  std::size_t dim() const { return lu_.rows(); }

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
};

/// Convenience one-shot solve of A x = b.
std::vector<double> solve_linear(Matrix a, const std::vector<double>& b);

}  // namespace ramp
