// Small dense linear algebra: enough to solve the thermal RC network.
//
// The HotSpot-style thermal model (src/thermal) produces conductance systems
// of ~10 nodes (7 floorplan blocks + spreader + sink); a dense LU with
// partial pivoting is simple, exact, and fast at that size. Kept generic so
// tests can exercise it on arbitrary well-conditioned systems.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ramp {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Re-initializes to `rows` × `cols` filled with `fill`, reusing the
  /// existing heap block whenever its capacity allows. The in-place
  /// counterpart of constructing a fresh Matrix — lets long-lived scratch
  /// matrices (e.g. an RHS workspace rebuilt each calibration step) avoid
  /// per-rebuild allocations.
  void assign(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Matrix-vector product; `x.size()` must equal `cols()`.
  std::vector<double> mul(const std::vector<double>& x) const;

  /// Matrix-vector product into `y` (resized to rows(); no allocation once
  /// `y` has the capacity). `x` and `y` must not alias. Bitwise-identical
  /// to mul().
  void mul_into(const std::vector<double>& x, std::vector<double>& y) const;

  static Matrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting of a square matrix; reusable for
/// repeated solves against the same matrix (the transient thermal integrator
/// factors its implicit-step matrix once per technology node).
class LuSolver {
 public:
  /// Factors `a` (must be square and non-singular). Throws ConvergenceError
  /// on a numerically singular pivot.
  explicit LuSolver(Matrix a);

  /// Solves A x = b; `b.size()` must equal the matrix dimension.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solves A x = b into `out` (resized to dim(); zero heap traffic once
  /// `out` has the capacity — forward substitution lands in `out`, which is
  /// then back-substituted in place). `b` and `out` must be distinct
  /// vectors. Bitwise-identical to solve().
  void solve_into(const std::vector<double>& b, std::vector<double>& out) const;

  std::size_t dim() const { return lu_.rows(); }

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  /// Compressed nonzero pattern of the factors, built once at factor time:
  /// per row, the ascending column indices of the strict-lower (L) and
  /// strict-upper (U) entries that are not exactly +0.0. Substitution walks
  /// these lists instead of the dense row — for the thermal Laplacians
  /// (sparse block coupling) that skips most of the inner-loop terms.
  /// Skipping a +0.0 term keeps every finite result bit-identical
  /// (x − (+0·v) == x), with one degenerate exception: a −0.0 accumulator
  /// combined with a negative solution entry in the skipped column flips to
  /// +0.0 — unreachable for the positive-definite thermal systems.
  std::vector<std::uint32_t> fwd_cols_, bwd_cols_;
  std::vector<std::uint32_t> fwd_off_, bwd_off_;  ///< n+1 row offsets each
};

/// Convenience one-shot solve of A x = b.
std::vector<double> solve_linear(Matrix a, const std::vector<double>& b);

}  // namespace ramp
