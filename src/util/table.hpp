// Text table and CSV formatting for benchmark reports.
//
// Every bench binary regenerates one of the paper's tables/figures as an
// aligned text table (human-readable, mirrors the paper layout) plus an
// optional CSV next to it for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ramp {

/// Column-aligned text table with an optional title, printed in a style that
/// mirrors the paper's tables. Cells are strings; numeric helpers format with
/// fixed precision.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row; must be called before add_row.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders the table with column alignment and separators.
  std::string str() const;

  /// Renders as CSV (header + rows, comma-separated, minimal quoting).
  std::string csv() const;

  /// Writes the CSV rendering to `path`; throws on I/O failure.
  void write_csv(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with `digits` decimal places.
std::string fmt(double v, int digits = 2);

/// Formats `v` in engineering style for wide-dynamic-range FIT values:
/// fixed with 1 decimal below 1e6, scientific above.
std::string fmt_fit(double v);

/// Formats a ratio as a signed percentage change, e.g. 4.16 -> "+316%".
std::string fmt_pct_change(double ratio);

}  // namespace ramp
