#include "util/blob_store.hpp"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "util/error.hpp"
#include "util/hashing.hpp"

namespace ramp {

namespace fs = std::filesystem;

BlobStore::BlobStore() : BlobStore(Options{}) {}

BlobStore::BlobStore(Options opts)
    : opts_(std::move(opts)), lru_(opts_.memory_entries) {}

std::size_t BlobStore::memory_entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::uint64_t BlobStore::memory_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return memory_bytes_;
}

std::string BlobStore::path_for(const std::string& key) const {
  Fnv64 h;
  h.mix(std::string_view(key));
  return (fs::path(opts_.dir) / (h.hex() + ".rampblob")).string();
}

// File format (binary-safe):
//   # ramp_blob v1\n
//   # key=<canonical key>\n
//   # bytes=<payload size>\n
//   <payload bytes>
// The embedded key disambiguates digest collisions: a mismatch is a miss.
BlobStore::Blob BlobStore::load_disk(
    const std::string& key,
    const std::function<bool(const std::string&)>& validate) const {
  std::ifstream f(path_for(key), std::ios::binary);
  if (!f) return nullptr;
  std::string line;
  if (!std::getline(f, line) || line != "# ramp_blob v1") return nullptr;
  if (!std::getline(f, line) || line != "# key=" + key) return nullptr;
  if (!std::getline(f, line) || line.rfind("# bytes=", 0) != 0) return nullptr;
  std::uint64_t n = 0;
  try {
    std::size_t pos = 0;
    const std::string digits = line.substr(8);
    n = std::stoull(digits, &pos);
    if (pos != digits.size()) return nullptr;
  } catch (const std::exception&) {
    return nullptr;
  }
  auto payload = std::make_shared<std::string>();
  payload->resize(n);
  if (n > 0 && !f.read(payload->data(), static_cast<std::streamsize>(n))) {
    return nullptr;  // truncated
  }
  if (f.peek() != std::ifstream::traits_type::eof()) return nullptr;  // extra
  if (validate && !validate(*payload)) return nullptr;
  return payload;
}

void BlobStore::store_disk(const std::string& key,
                           const std::string& payload) const {
  std::error_code ec;
  fs::create_directories(opts_.dir, ec);
  const fs::path target = path_for(key);
  // Same-directory temp file so the rename cannot cross filesystems. The
  // PID separates processes sharing one cache directory and the monotonic
  // counter separates every writer thread inside a process (pool workers
  // and plain threads alike), so no two writers — even two stores on the
  // same directory racing on one key — can interleave bytes in one temp
  // file. The rename then publishes a complete file or nothing.
  static std::atomic<std::uint64_t> temp_seq{0};
  fs::path tmp = target;
  tmp += ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(temp_seq.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream f(tmp, std::ios::binary);
    if (!f) return;  // best effort: an unwritable dir degrades to memory-only
    std::ostringstream header;
    header << "# ramp_blob v1\n# key=" << key << "\n# bytes=" << payload.size()
           << "\n";
    f << header.str();
    f.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!f) {
      f.close();
      fs::remove(tmp, ec);
      return;
    }
  }
  fs::rename(tmp, target, ec);  // atomic publish
  if (ec) fs::remove(tmp, ec);
}

void BlobStore::publish(const std::string& key, const Blob& blob) {
  Blob displaced;
  lru_.put(key, blob, &displaced);
  memory_bytes_ += blob->size();
  if (displaced) memory_bytes_ -= displaced->size();
}

BlobStore::Result BlobStore::get_or_compute(
    const std::string& key, const std::function<std::string()>& compute,
    const std::function<bool(const std::string&)>& validate) {
  RAMP_REQUIRE(compute != nullptr, "BlobStore needs a compute callback");
  std::unique_lock<std::mutex> lock(mutex_);
  if (Blob* cached = lru_.get(key)) return {*cached, Outcome::kMemoryHit, 0.0};
  if (auto it = inflight_.find(key); it != inflight_.end()) {
    std::shared_future<Blob> future = it->second;
    lock.unlock();
    return {future.get(), Outcome::kCoalesced, 0.0};
  }
  auto promise = std::make_shared<std::promise<Blob>>();
  inflight_.emplace(key, promise->get_future().share());
  lock.unlock();

  Blob blob;
  Outcome outcome = Outcome::kComputed;
  double compute_seconds = 0.0;
  try {
    if (!opts_.dir.empty()) blob = load_disk(key, validate);
    if (blob) {
      outcome = Outcome::kDiskHit;
    } else {
      const auto start = std::chrono::steady_clock::now();
      blob = std::make_shared<const std::string>(compute());
      compute_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      if (!opts_.dir.empty()) store_disk(key, *blob);
    }
  } catch (...) {
    lock.lock();
    inflight_.erase(key);
    promise->set_exception(std::current_exception());
    throw;
  }

  lock.lock();
  publish(key, blob);
  inflight_.erase(key);
  promise->set_value(blob);
  return {blob, outcome, compute_seconds};
}

}  // namespace ramp
