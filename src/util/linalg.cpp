#include "util/linalg.hpp"

#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace ramp {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  RAMP_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

void Matrix::assign(std::size_t rows, std::size_t cols, double fill) {
  RAMP_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

std::vector<double> Matrix::mul(const std::vector<double>& x) const {
  std::vector<double> y;
  mul_into(x, y);
  return y;
}

void Matrix::mul_into(const std::vector<double>& x,
                      std::vector<double>& y) const {
  RAMP_REQUIRE(x.size() == cols_, "dimension mismatch in Matrix::mul");
  RAMP_REQUIRE(&x != &y, "Matrix::mul_into arguments must not alias");
  y.resize(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

LuSolver::LuSolver(Matrix a) : lu_(std::move(a)) {
  RAMP_REQUIRE(lu_.rows() == lu_.cols(), "LU needs a square matrix");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      throw ConvergenceError("LU factorization hit a singular pivot");
    }
    if (pivot != k) {
      std::swap(perm_[pivot], perm_[k]);
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(pivot, c), lu_(k, c));
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) / lu_(k, k);
      lu_(r, k) = factor;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
    }
  }

  // Record the factors' nonzero pattern for the compressed substitution in
  // solve_into. Only exact +0.0 entries are skipped; −0.0 (e.g. a structural
  // zero divided by a negative pivot) stays on the list so its sign still
  // participates (see the header note on the degenerate −0.0 case).
  auto is_pos_zero = [](double v) { return v == 0.0 && !std::signbit(v); };
  fwd_off_.reserve(n + 1);
  bwd_off_.reserve(n + 1);
  fwd_off_.push_back(0);
  bwd_off_.push_back(0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < r; ++c) {
      if (!is_pos_zero(lu_(r, c))) {
        fwd_cols_.push_back(static_cast<std::uint32_t>(c));
      }
    }
    fwd_off_.push_back(static_cast<std::uint32_t>(fwd_cols_.size()));
    for (std::size_t c = r + 1; c < n; ++c) {
      if (!is_pos_zero(lu_(r, c))) {
        bwd_cols_.push_back(static_cast<std::uint32_t>(c));
      }
    }
    bwd_off_.push_back(static_cast<std::uint32_t>(bwd_cols_.size()));
  }
}

std::vector<double> LuSolver::solve(const std::vector<double>& b) const {
  std::vector<double> x;
  solve_into(b, x);
  return x;
}

void LuSolver::solve_into(const std::vector<double>& b,
                          std::vector<double>& out) const {
  const std::size_t n = lu_.rows();
  RAMP_REQUIRE(b.size() == n, "dimension mismatch in LuSolver::solve");
  RAMP_REQUIRE(&b != &out, "LuSolver::solve_into arguments must not alias");
  out.resize(n);

  // Forward substitution on the permuted RHS (L has implicit unit diagonal);
  // `out` carries the intermediate y. Both passes walk the compressed
  // nonzero pattern in the same ascending column order as the dense loops
  // they replace, so the summation order — and thus every bit — matches.
  const std::uint32_t* fc = fwd_cols_.data();
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[perm_[r]];
    for (std::uint32_t i = fwd_off_[r]; i < fwd_off_[r + 1]; ++i) {
      const std::uint32_t c = fc[i];
      acc -= lu_(r, c) * out[c];
    }
    out[r] = acc;
  }
  // Back substitution in place: row ri only reads rows > ri, which already
  // hold final solution values.
  const std::uint32_t* bc = bwd_cols_.data();
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = out[ri];
    for (std::uint32_t i = bwd_off_[ri]; i < bwd_off_[ri + 1]; ++i) {
      const std::uint32_t c = bc[i];
      acc -= lu_(ri, c) * out[c];
    }
    out[ri] = acc / lu_(ri, ri);
  }
}

std::vector<double> solve_linear(Matrix a, const std::vector<double>& b) {
  return LuSolver(std::move(a)).solve(b);
}

}  // namespace ramp
