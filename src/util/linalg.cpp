#include "util/linalg.hpp"

#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace ramp {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  RAMP_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

std::vector<double> Matrix::mul(const std::vector<double>& x) const {
  RAMP_REQUIRE(x.size() == cols_, "dimension mismatch in Matrix::mul");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

LuSolver::LuSolver(Matrix a) : lu_(std::move(a)) {
  RAMP_REQUIRE(lu_.rows() == lu_.cols(), "LU needs a square matrix");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      throw ConvergenceError("LU factorization hit a singular pivot");
    }
    if (pivot != k) {
      std::swap(perm_[pivot], perm_[k]);
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(pivot, c), lu_(k, c));
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) / lu_(k, k);
      lu_(r, k) = factor;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

std::vector<double> LuSolver::solve(const std::vector<double>& b) const {
  const std::size_t n = lu_.rows();
  RAMP_REQUIRE(b.size() == n, "dimension mismatch in LuSolver::solve");

  // Forward substitution on the permuted RHS (L has implicit unit diagonal).
  std::vector<double> y(n);
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * y[c];
    y[r] = acc;
  }
  // Back substitution.
  std::vector<double> x(n);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = y[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
    x[ri] = acc / lu_(ri, ri);
  }
  return x;
}

std::vector<double> solve_linear(Matrix a, const std::vector<double>& b) {
  return LuSolver(std::move(a)).solve(b);
}

}  // namespace ramp
