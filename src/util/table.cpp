#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace ramp {

void TextTable::set_header(std::vector<std::string> header) {
  RAMP_REQUIRE(rows_.empty(), "set_header must precede add_row");
  RAMP_REQUIRE(!header.empty(), "header must have at least one column");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  RAMP_REQUIRE(!header_.empty(), "set_header must be called first");
  RAMP_REQUIRE(row.size() == header_.size(),
               "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string TextTable::str() const {
  RAMP_REQUIRE(!header_.empty(), "table has no header");
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  if (!title_.empty()) out << title_ << "\n";

  auto emit_row = [&](const std::vector<std::string>& row, char pad) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c] << std::string(width[c] - row[c].size(), pad) << " |";
    }
    out << "\n";
  };
  auto emit_rule = [&] {
    out << "+";
    for (std::size_t c = 0; c < width.size(); ++c)
      out << std::string(width[c] + 2, '-') << "+";
    out << "\n";
  };

  emit_rule();
  emit_row(header_, ' ');
  emit_rule();
  for (const auto& row : rows_) emit_row(row, ' ');
  emit_rule();
  return out.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}
}  // namespace

std::string TextTable::csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TextTable::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw InvalidArgument("cannot open for writing: " + path);
  f << csv();
  if (!f) throw InvalidArgument("write failed: " + path);
}

std::string fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_fit(double v) {
  char buf[64];
  if (std::abs(v) < 1e6) {
    std::snprintf(buf, sizeof buf, "%.1f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.3e", v);
  }
  return buf;
}

std::string fmt_pct_change(double ratio) {
  const double pct = (ratio - 1.0) * 100.0;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.0f%%", pct);
  return buf;
}

}  // namespace ramp
