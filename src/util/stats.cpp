#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ramp {

void RunningStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void TimeWeightedMean::add(double value, double duration) {
  RAMP_REQUIRE(duration >= 0.0, "durations must be non-negative");
  weighted_sum_ += value * duration;
  total_time_ += duration;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  RAMP_REQUIRE(hi > lo, "histogram range must be non-empty");
  RAMP_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor(t));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

double Histogram::bin_center(std::size_t i) const {
  RAMP_REQUIRE(i < counts_.size(), "bin index out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width;
}

}  // namespace ramp
