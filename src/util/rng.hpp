// Deterministic pseudo-random number generation.
//
// Every stochastic component in this library (trace synthesis, failure
// injection tests) draws from Xoshiro256StarStar seeded explicitly, so any
// run is reproducible from its seed. We do not use std::mt19937 because its
// distributions are not guaranteed to be identical across standard library
// implementations; our distribution helpers below are self-contained.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace ramp {

/// SplitMix64 (Steele, Lea & Flood / Vigna; public domain algorithm): a
/// 64-bit counter-based generator whose output is a bijective mix of an
/// additive Weyl sequence. Two roles here:
///  - seed expansion for Xoshiro256 (its historical use in this library),
///  - *stream splitting*: `stream_seed(base, k)` derives statistically
///    independent child seeds from one master seed, so a whole fleet of
///    per-chip generators is governed by a single `--seed` and a chip index,
///    independent of iteration or sharding order.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed = 0) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// The golden-ratio Weyl increment of the reference implementation.
  static constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

  /// The stateless finalizer (Stafford's mix13 variant used by the
  /// reference SplitMix64): a bijection on 64-bit words.
  static constexpr std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  result_type operator()() {
    state_ += kGamma;
    return mix(state_);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  std::uint64_t state() const { return state_; }

 private:
  std::uint64_t state_;
};

/// Deterministic substream seed: child `stream` of master seed `base`.
/// Distinct (base, stream) pairs give uncorrelated seeds (the counter jump
/// lands each stream kGamma·(stream+1) apart on the Weyl orbit before the
/// mix), so per-chip/per-sample generators seeded this way behave as
/// independent streams while one master seed reproduces the entire set.
constexpr std::uint64_t stream_seed(std::uint64_t base, std::uint64_t stream) {
  return SplitMix64::mix(base + SplitMix64::kGamma * (stream + 1));
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm).
/// Fast, high-quality 64-bit generator with 2^256-1 period.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via SplitMix64 so that even
  /// trivially-different seeds (0, 1, 2, ...) produce uncorrelated streams.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Rejection-free Lemire reduction.
  std::uint64_t below(std::uint64_t n);

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Geometric draw: number of failures before first success, success prob p.
  std::uint64_t geometric(double p);

  /// Standard normal via Box-Muller (no cached second value; simple and
  /// deterministic call-for-call).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Samples indices from a fixed discrete distribution in O(1) per draw using
/// Walker's alias method. Weights need not be normalized.
class AliasTable {
 public:
  AliasTable() = default;
  explicit AliasTable(std::span<const double> weights) { rebuild(weights); }

  void rebuild(std::span<const double> weights);

  /// Number of categories (0 when default-constructed).
  std::size_t size() const { return prob_.size(); }

  /// Draws a category index in [0, size()).
  std::size_t sample(Xoshiro256& rng) const;

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace ramp
