// Environment-variable helpers used by benches to override sweep parameters
// (RAMP_TRACE_LEN, RAMP_CACHE) without recompiling.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace ramp {

/// Returns the raw value of `name` if set and non-empty.
std::optional<std::string> env_string(const std::string& name);

/// Parses `name` as an unsigned integer; returns `fallback` when unset.
/// Throws InvalidArgument when set but unparsable.
std::uint64_t env_u64(const std::string& name, std::uint64_t fallback);

/// True when `name` is unset or set to anything other than the strings
/// "off", "0", "false", "no" (case-insensitive) — i.e. features default on.
bool env_enabled(const std::string& name);

}  // namespace ramp
