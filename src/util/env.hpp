// Environment-variable helpers used by benches and the CLI to override
// sweep/serve parameters (RAMP_TRACE_LEN, RAMP_SEED, RAMP_JOBS, RAMP_CACHE,
// RAMP_OUT_DIR) without recompiling.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace ramp {

/// Returns the raw value of `name` if set and non-empty.
std::optional<std::string> env_string(const std::string& name);

/// Strict base-10 unsigned parse of `text`: the whole string must be digits
/// (no sign, whitespace, or trailing characters) and fit in 64 bits. Throws
/// InvalidArgument naming `what` otherwise.
std::uint64_t parse_u64(const std::string& text, const std::string& what);

/// Parses `name` as an unsigned integer; returns `fallback` when unset.
/// Throws InvalidArgument when set but malformed (non-numeric, signed,
/// or overflowing) — a misspelled override must never be silently ignored.
std::uint64_t env_u64(const std::string& name, std::uint64_t fallback);

/// Worker-count override: like env_u64 but additionally rejects 0.
std::size_t env_jobs(const std::string& name, std::size_t fallback);

/// True when `name` is unset or set to anything other than the strings
/// "off", "0", "false", "no" (case-insensitive) — i.e. features default on.
bool env_enabled(const std::string& name);

/// Strict boolean switch: returns `fallback` when `name` is unset; accepts
/// (case-insensitive) "on"/"1"/"true"/"yes" and "off"/"0"/"false"/"no";
/// any other value throws InvalidArgument — a misspelled RAMP_METRICS must
/// fail loudly, not silently leave metrics in the default state.
bool env_on_off(const std::string& name, bool fallback);

/// Three-state switch-or-value (RAMP_TIMELINE): nullopt when unset or an
/// off-spelling ("off"/"0"/"false"/"no"), "" when an on-spelling
/// ("on"/"1"/"true"/"yes" — enabled with the default value), and the raw
/// string otherwise (enabled, the value is a path/argument).
std::optional<std::string> env_on_off_or_value(const std::string& name);

/// Parses `name` as a finite double (strict: the whole string must parse).
/// Returns nullopt when unset; throws InvalidArgument when malformed.
std::optional<double> env_double(const std::string& name);

/// Directory generated artifacts (bench CSVs, sweep/serve caches) land in:
/// $RAMP_OUT_DIR when set, "out" otherwise. Callers create it on first write.
std::string output_dir();

}  // namespace ramp
