// Streaming statistics helpers.
//
// The RAMP methodology (paper §2) maintains a running average of
// instantaneous FIT values over an application run; RunningMean implements
// that numerically stably. RunningStats adds variance/min/max for reports and
// tests; TimeWeightedMean averages a signal sampled over unequal intervals.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace ramp {

/// Numerically stable (Welford) running mean over equally weighted samples.
class RunningMean {
 public:
  void add(double x) {
    ++count_;
    mean_ += (x - mean_) / static_cast<double>(count_);
  }
  std::uint64_t count() const { return count_; }
  /// Mean of all samples so far; 0.0 when empty.
  double mean() const { return mean_; }
  void reset() { *this = RunningMean{}; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
};

/// Welford mean/variance plus min/max tracking.
class RunningStats {
 public:
  void add(double x);
  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0.0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  void reset() { *this = RunningStats{}; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Mean of a piecewise-constant signal weighted by interval durations.
/// Used for averaging temperature/FIT signals over variable-length windows.
class TimeWeightedMean {
 public:
  /// Adds `value` held for `duration` (seconds); zero durations are ignored.
  void add(double value, double duration);
  double total_time() const { return total_time_; }
  /// Time-weighted mean; 0.0 when no time has been accumulated.
  double mean() const { return total_time_ > 0.0 ? weighted_sum_ / total_time_ : 0.0; }
  void reset() { *this = TimeWeightedMean{}; }

 private:
  double weighted_sum_ = 0.0;
  double total_time_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the edge
/// bins. Used by tests to characterize generated trace distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::uint64_t total() const { return total_; }
  /// Fraction of samples in bin i; 0.0 when empty.
  double fraction(std::size_t i) const;
  /// Midpoint value of bin i.
  double bin_center(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ramp
