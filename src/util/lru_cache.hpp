// Bounded least-recently-used map: O(1) get/put, strict capacity, eviction
// count reporting. The building block of the serve layer's in-memory result
// cache; kept generic (any hashable key) so other layers can reuse it.
//
// Not thread-safe — callers hold their own lock (EvalService serializes all
// cache access under its state mutex).
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>

#include "util/error.hpp"

namespace ramp {

template <typename K, typename V>
class LruCache {
 public:
  /// Throws InvalidArgument when `capacity` is zero.
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {
    RAMP_REQUIRE(capacity_ > 0, "LruCache capacity must be positive");
  }

  /// Returns the value for `key` (touching it most-recently-used), or
  /// nullptr when absent. The pointer is valid until the next put().
  V* get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts or overwrites `key` as most-recently-used. Returns the number
  /// of entries evicted to stay within capacity (0 or 1). When `displaced`
  /// is non-null it receives the value removed to make room — the old value
  /// on an overwrite or the evicted LRU victim — so callers keeping
  /// secondary accounting (e.g. total resident bytes) can subtract it; at
  /// most one of the two can happen per put.
  std::size_t put(const K& key, V value, V* displaced = nullptr) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      if (displaced != nullptr) *displaced = std::move(it->second->second);
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return 0;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
    if (index_.size() <= capacity_) return 0;
    if (displaced != nullptr) *displaced = std::move(order_.back().second);
    index_.erase(order_.back().first);
    order_.pop_back();
    return 1;
  }

  bool contains(const K& key) const { return index_.count(key) != 0; }
  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Least-recently-used key first; for tests and diagnostics.
  std::list<std::pair<K, V>> snapshot() const {
    return {order_.rbegin(), order_.rend()};
  }

 private:
  std::size_t capacity_;
  std::list<std::pair<K, V>> order_;  ///< front = most recently used
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator> index_;
};

}  // namespace ramp
