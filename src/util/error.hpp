// Error handling primitives for the RAMP reproduction.
//
// We follow the C++ Core Guidelines (E.2): throw an exception to signal that a
// function can't perform its assigned task. Precondition violations inside the
// library are reported via RAMP_REQUIRE, which throws ramp::InvalidArgument so
// that tests can assert on misuse without aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace ramp {

/// Thrown when a caller violates a documented precondition.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails (a bug in this library).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a numerical routine fails to converge.
class ConvergenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void throw_invalid(const char* expr, const char* file, int line,
                                       const std::string& what) {
  throw InvalidArgument(std::string(file) + ":" + std::to_string(line) +
                        ": requirement failed: " + expr +
                        (what.empty() ? "" : (" — " + what)));
}
[[noreturn]] inline void throw_internal(const char* expr, const char* file, int line) {
  throw InternalError(std::string(file) + ":" + std::to_string(line) +
                      ": invariant failed: " + expr);
}
}  // namespace detail

}  // namespace ramp

/// Precondition check: throws ramp::InvalidArgument when `expr` is false.
#define RAMP_REQUIRE(expr, what)                                        \
  do {                                                                  \
    if (!(expr)) ::ramp::detail::throw_invalid(#expr, __FILE__, __LINE__, (what)); \
  } while (false)

/// Internal invariant check: throws ramp::InternalError when `expr` is false.
#define RAMP_ASSERT(expr)                                               \
  do {                                                                  \
    if (!(expr)) ::ramp::detail::throw_internal(#expr, __FILE__, __LINE__); \
  } while (false)
