// Content-addressed blob store: bounded in-memory LRU in front of an
// optional persistent one-file-per-key directory, with single-flight
// computation per key.
//
// This factors out the caching idioms the serve layer's result cache
// established (and the pipeline's stage store now shares):
//  - keys are full canonical strings, stored verbatim in every file header
//    so 64-bit digest collisions read as misses instead of wrong answers;
//  - disk writes are atomic (same-directory temp file + rename) and best
//    effort — an unwritable directory degrades to in-memory operation;
//  - corrupt, truncated, mis-keyed, or otherwise unreadable files are
//    indistinguishable from misses and get recomputed (and rewritten);
//  - concurrent get_or_compute() calls for one key coalesce onto a single
//    computation; the compute callback runs unlocked on the caller's own
//    thread, so a FIFO-pool worker computing a key never blocks on work
//    queued behind itself (waiters only ever block on *running* threads).
//
// Layering: this is util — it must not depend on obs. Callers that want
// hit/miss metrics or spans (pipeline::StageStore) book them around the
// Result this returns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/lru_cache.hpp"

namespace ramp {

class BlobStore {
 public:
  /// Payloads are immutable once published; hits share the pointer.
  using Blob = std::shared_ptr<const std::string>;

  /// How one get_or_compute() call was answered, in order of preference.
  enum class Outcome {
    kMemoryHit,  ///< resident in the LRU — no work
    kDiskHit,    ///< read (and validated) from the persist directory
    kComputed,   ///< the compute callback ran on this thread
    kCoalesced,  ///< waited on an identical in-flight computation
  };

  struct Options {
    std::size_t memory_entries = 512;  ///< LRU capacity (entries, not bytes)
    std::string dir;                   ///< "" = in-memory only
  };

  struct Result {
    Blob blob;
    Outcome outcome = Outcome::kComputed;
    double compute_seconds = 0.0;  ///< wall time inside compute (kComputed only)
  };

  BlobStore();  ///< defaults: in-memory only
  explicit BlobStore(Options opts);

  BlobStore(const BlobStore&) = delete;
  BlobStore& operator=(const BlobStore&) = delete;

  /// Returns the payload for `key`, computing (and persisting) it on a miss.
  /// `validate` vets payloads read from disk — return false to treat the
  /// file as corrupt (miss + recompute); in-memory and freshly computed
  /// payloads are trusted and never re-validated. Exceptions from `compute`
  /// propagate to this caller and to every coalesced waiter, and leave the
  /// store without an entry for `key`.
  Result get_or_compute(
      const std::string& key, const std::function<std::string()>& compute,
      const std::function<bool(const std::string&)>& validate = nullptr);

  /// Resident entries / payload bytes in the memory tier (gauges).
  std::size_t memory_entries() const;
  std::uint64_t memory_bytes() const;

  const Options& options() const { return opts_; }

  /// The file a key persists to: <dir>/<fnv64(key)>.rampblob. Exposed for
  /// tests that corrupt entries on purpose.
  std::string path_for(const std::string& key) const;

 private:
  Blob load_disk(const std::string& key,
                 const std::function<bool(const std::string&)>& validate) const;
  void store_disk(const std::string& key, const std::string& payload) const;
  void publish(const std::string& key, const Blob& blob);

  Options opts_;
  mutable std::mutex mutex_;
  LruCache<std::string, Blob> lru_;
  std::unordered_map<std::string, std::shared_future<Blob>> inflight_;
  std::uint64_t memory_bytes_ = 0;
};

}  // namespace ramp
