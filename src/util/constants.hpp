// Physical constants and unit conventions used throughout the library.
//
// Conventions:
//   temperature   — Kelvin (double)
//   power         — Watts
//   time          — seconds unless a function says otherwise
//   FIT           — failures per 1e9 device-hours
//   area          — mm^2 for floorplans, relative (dimensionless) for scaling
#pragma once

namespace ramp {

/// Boltzmann constant in eV/K — the failure models express activation
/// energies in electron-volts, so this is the natural unit system.
inline constexpr double kBoltzmannEv = 8.617333262e-5;

/// Hours per 1e9 device-hours; FIT = failures per kFitHours hours.
inline constexpr double kFitHours = 1e9;

/// Seconds in one hour.
inline constexpr double kSecondsPerHour = 3600.0;

/// Hours in one (Julian) year; used for MTTF-in-years conversions.
inline constexpr double kHoursPerYear = 24.0 * 365.25;

/// Convert an MTTF expressed in years into a FIT rate.
constexpr double fit_from_mttf_years(double mttf_years) {
  return kFitHours / (mttf_years * kHoursPerYear);
}

/// Convert a FIT rate into MTTF expressed in years.
constexpr double mttf_years_from_fit(double fit) {
  return kFitHours / fit / kHoursPerYear;
}

/// Absolute-zero guard: all model temperatures must exceed this (K).
inline constexpr double kMinModelTemperature = 200.0;

/// Upper sanity bound for silicon junction temperature (K).
inline constexpr double kMaxModelTemperature = 500.0;

}  // namespace ramp
