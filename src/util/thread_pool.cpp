#include "util/thread_pool.hpp"

namespace ramp {

namespace {
thread_local int t_worker_id = -1;
}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  RAMP_REQUIRE(workers > 0, "a ThreadPool needs at least one worker");
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(static_cast<int>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::uint64_t ThreadPool::next_task_id() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return next_id_;
}

std::size_t ThreadPool::queued() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return queue_.size();
}

int ThreadPool::current_worker_id() { return t_worker_id; }

void ThreadPool::worker_loop(int worker_id) {
  t_worker_id = worker_id;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    task.run();  // packaged_task captures any exception into the future
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace ramp
