// Chip floorplans for the thermal model.
//
// A floorplan is a set of rectangular blocks tiling the die. The thermal RC
// network derives vertical conductances from block areas and lateral
// conductances from shared edges. The POWER4-like floorplan mirrors §4.3: a
// 9 mm × 9 mm core partitioned into the 7 combined structures.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ramp::thermal {

/// Axis-aligned rectangular block, dimensions in meters.
struct Block {
  std::string name;
  double x = 0, y = 0;  ///< lower-left corner
  double w = 0, h = 0;  ///< width / height

  double area() const { return w * h; }
  double cx() const { return x + w / 2; }
  double cy() const { return y + h / 2; }
};

/// Shared-edge adjacency between two blocks.
struct Adjacency {
  std::size_t a = 0, b = 0;
  double shared_len = 0;    ///< length of the shared edge (m)
  double center_dist = 0;   ///< distance between block centers (m)
};

class Floorplan {
 public:
  /// Validates that blocks are non-degenerate and mutually non-overlapping.
  explicit Floorplan(std::vector<Block> blocks);

  const std::vector<Block>& blocks() const { return blocks_; }
  std::size_t size() const { return blocks_.size(); }
  const Block& block(std::size_t i) const { return blocks_.at(i); }

  /// Index of the named block; throws InvalidArgument when absent.
  std::size_t index_of(const std::string& name) const;

  /// Total die area (m²).
  double total_area() const;

  /// Blocks sharing an edge longer than `min_overlap` meters.
  std::vector<Adjacency> adjacencies(double min_overlap = 1e-6) const;

  /// Uniformly scaled copy (all coordinates and dimensions × `s`); models
  /// the same layout shrunk to a smaller technology node.
  Floorplan scaled(double s) const;

 private:
  std::vector<Block> blocks_;
};

/// The 9 mm × 9 mm POWER4-like core floorplan of §4.3: seven blocks whose
/// areas follow sim::structure_area_fraction, laid out in two rows. Block
/// names match sim::structure_name (IFU, IDU, ISU, FXU, FPU, LSU, BXU).
Floorplan power4_floorplan();

}  // namespace ramp::thermal
