#include "thermal/grid_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ramp::thermal {

namespace {
double overlap(double a0, double a1, double b0, double b1) {
  return std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
}
}  // namespace

GridModel::GridModel(Floorplan fp, ThermalConfig cfg, int cols, int rows)
    : fp_(std::move(fp)), cfg_(cfg), cols_(cols), rows_(rows) {
  RAMP_REQUIRE(cols >= 2 && rows >= 2, "grid needs at least 2x2 cells");
  RAMP_REQUIRE(cols * rows <= 64 * 64, "grid too fine for the dense solver");
  build();
}

void GridModel::build() {
  // Bounding box of the floorplan.
  double max_x = 0, max_y = 0;
  for (const auto& b : fp_.blocks()) {
    max_x = std::max(max_x, b.x + b.w);
    max_y = std::max(max_y, b.y + b.h);
  }
  cell_w_ = max_x / cols_;
  cell_h_ = max_y / rows_;

  const std::size_t n = num_cells();
  const std::size_t spreader = n;
  const std::size_t sink = n + 1;
  g_ = Matrix(n + 2, n + 2, 0.0);

  auto couple = [&](std::size_t a, std::size_t b, double conductance) {
    g_(a, a) += conductance;
    g_(b, b) += conductance;
    g_(a, b) -= conductance;
    g_(b, a) -= conductance;
  };

  const double cell_area = cell_w_ * cell_h_;
  // Vertical legs: same specific resistance as the block model.
  for (std::size_t c = 0; c < n; ++c) {
    couple(c, spreader, cell_area / cfg_.r_vertical_specific);
  }
  // Lateral 4-neighbor legs through silicon: G = k * t * width / pitch.
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      if (c + 1 < cols_) {
        couple(cell_index(c, r), cell_index(c + 1, r),
               cfg_.k_silicon * cfg_.die_thickness * cell_h_ / cell_w_);
      }
      if (r + 1 < rows_) {
        couple(cell_index(c, r), cell_index(c, r + 1),
               cfg_.k_silicon * cfg_.die_thickness * cell_w_ / cell_h_);
      }
    }
  }
  couple(spreader, sink, 1.0 / cfg_.r_spreader_sink);
  g_(sink, sink) += 1.0 / cfg_.r_convec_k_per_w;

  // Cell-block coverage fractions.
  coverage_.assign(n, std::vector<double>(fp_.size(), 0.0));
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const double x0 = c * cell_w_, x1 = x0 + cell_w_;
      const double y0 = r * cell_h_, y1 = y0 + cell_h_;
      for (std::size_t b = 0; b < fp_.size(); ++b) {
        const Block& blk = fp_.block(b);
        const double ov = overlap(x0, x1, blk.x, blk.x + blk.w) *
                          overlap(y0, y1, blk.y, blk.y + blk.h);
        coverage_[cell_index(c, r)][b] = ov / cell_area;
      }
    }
  }

  solver_ = std::make_unique<LuSolver>(g_);
}

std::vector<double> GridModel::steady_state(
    const std::vector<double>& block_power_w) const {
  RAMP_REQUIRE(block_power_w.size() == fp_.size(),
               "need one power value per floorplan block");
  const std::size_t n = num_cells();
  std::vector<double> rhs(n + 2, 0.0);

  // Distribute each block's power uniformly over its covered cell area.
  for (std::size_t b = 0; b < fp_.size(); ++b) {
    RAMP_REQUIRE(block_power_w[b] >= 0, "block power must be non-negative");
    const double density = block_power_w[b] / fp_.block(b).area();
    for (std::size_t c = 0; c < n; ++c) {
      rhs[c] += density * coverage_[c][b] * cell_w_ * cell_h_;
    }
  }
  rhs[n + 1] = cfg_.ambient_k / cfg_.r_convec_k_per_w;
  return solver_->solve(rhs);
}

double GridModel::block_average(const std::vector<double>& cell_temps,
                                std::size_t block) const {
  RAMP_REQUIRE(block < fp_.size(), "block index out of range");
  double weighted = 0, area = 0;
  for (std::size_t c = 0; c < num_cells(); ++c) {
    const double a = coverage_[c][block];
    weighted += cell_temps[c] * a;
    area += a;
  }
  RAMP_ASSERT(area > 0);
  return weighted / area;
}

double GridModel::block_peak(const std::vector<double>& cell_temps,
                             std::size_t block) const {
  RAMP_REQUIRE(block < fp_.size(), "block index out of range");
  double peak = 0;
  bool any = false;
  for (std::size_t c = 0; c < num_cells(); ++c) {
    if (coverage_[c][block] > 0.25) {  // cells mostly inside the block
      peak = std::max(peak, cell_temps[c]);
      any = true;
    }
  }
  if (!any) {
    // Very coarse grids: fall back to any overlap.
    for (std::size_t c = 0; c < num_cells(); ++c) {
      if (coverage_[c][block] > 0.0) peak = std::max(peak, cell_temps[c]);
    }
  }
  return peak;
}

double GridModel::coverage(int col, int row, std::size_t block) const {
  RAMP_REQUIRE(col >= 0 && col < cols_ && row >= 0 && row < rows_,
               "cell index out of range");
  RAMP_REQUIRE(block < fp_.size(), "block index out of range");
  return coverage_[cell_index(col, row)][block];
}

}  // namespace ramp::thermal
