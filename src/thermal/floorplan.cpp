#include "thermal/floorplan.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ramp::thermal {

namespace {
// Overlap length of intervals [a0, a1) and [b0, b1).
double overlap(double a0, double a1, double b0, double b1) {
  return std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
}
}  // namespace

Floorplan::Floorplan(std::vector<Block> blocks) : blocks_(std::move(blocks)) {
  RAMP_REQUIRE(!blocks_.empty(), "floorplan needs at least one block");
  for (const auto& b : blocks_) {
    RAMP_REQUIRE(b.w > 0 && b.h > 0, "block '" + b.name + "' is degenerate");
  }
  // Reject interior overlaps (touching edges are fine).
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    for (std::size_t j = i + 1; j < blocks_.size(); ++j) {
      const Block& a = blocks_[i];
      const Block& b = blocks_[j];
      const double ox = overlap(a.x, a.x + a.w, b.x, b.x + b.w);
      const double oy = overlap(a.y, a.y + a.h, b.y, b.y + b.h);
      RAMP_REQUIRE(ox * oy < 1e-12 * std::max(a.area(), b.area()),
                   "blocks '" + a.name + "' and '" + b.name + "' overlap");
    }
  }
}

std::size_t Floorplan::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].name == name) return i;
  }
  throw InvalidArgument("no block named '" + name + "'");
}

double Floorplan::total_area() const {
  double a = 0;
  for (const auto& b : blocks_) a += b.area();
  return a;
}

std::vector<Adjacency> Floorplan::adjacencies(double min_overlap) const {
  std::vector<Adjacency> adj;
  const double eps = 1e-9;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    for (std::size_t j = i + 1; j < blocks_.size(); ++j) {
      const Block& a = blocks_[i];
      const Block& b = blocks_[j];
      double shared = 0;
      // Vertical shared edge: a's right touching b's left or vice versa.
      if (std::abs((a.x + a.w) - b.x) < eps || std::abs((b.x + b.w) - a.x) < eps) {
        shared = overlap(a.y, a.y + a.h, b.y, b.y + b.h);
      }
      // Horizontal shared edge.
      if (std::abs((a.y + a.h) - b.y) < eps || std::abs((b.y + b.h) - a.y) < eps) {
        shared = std::max(shared, overlap(a.x, a.x + a.w, b.x, b.x + b.w));
      }
      if (shared > min_overlap) {
        const double dx = a.cx() - b.cx();
        const double dy = a.cy() - b.cy();
        adj.push_back({i, j, shared, std::sqrt(dx * dx + dy * dy)});
      }
    }
  }
  return adj;
}

Floorplan Floorplan::scaled(double s) const {
  RAMP_REQUIRE(s > 0, "scale factor must be positive");
  std::vector<Block> scaled_blocks = blocks_;
  for (auto& b : scaled_blocks) {
    b.x *= s;
    b.y *= s;
    b.w *= s;
    b.h *= s;
  }
  return Floorplan(std::move(scaled_blocks));
}

Floorplan power4_floorplan() {
  // 9 mm × 9 mm core, two rows; areas follow the structure fractions
  // (IFU .14, IDU .09, ISU .13, FXU .13, FPU .16, LSU .28, BXU .07 of
  // 81 mm²). Bottom row (h = 4.32 mm): LSU, FXU, BXU; top row (h = 4.68 mm):
  // FPU, IFU, ISU, IDU. Dimensions in meters.
  constexpr double mm = 1e-3;
  const double die = 9.0 * mm;
  const double h_bot = 4.32 * mm;
  const double h_top = die - h_bot;

  auto wfrac = [&](double area_mm2, double row_h) { return area_mm2 * mm * mm / row_h; };
  const double w_lsu = wfrac(0.28 * 81.0, h_bot);
  const double w_fxu = wfrac(0.13 * 81.0, h_bot);
  const double w_bxu = wfrac(0.07 * 81.0, h_bot);
  const double w_fpu = wfrac(0.16 * 81.0, h_top);
  const double w_ifu = wfrac(0.14 * 81.0, h_top);
  const double w_isu = wfrac(0.13 * 81.0, h_top);
  const double w_idu = wfrac(0.09 * 81.0, h_top);

  std::vector<Block> blocks;
  blocks.push_back({"LSU", 0.0, 0.0, w_lsu, h_bot});
  blocks.push_back({"FXU", w_lsu, 0.0, w_fxu, h_bot});
  blocks.push_back({"BXU", w_lsu + w_fxu, 0.0, w_bxu, h_bot});
  blocks.push_back({"FPU", 0.0, h_bot, w_fpu, h_top});
  blocks.push_back({"IFU", w_fpu, h_bot, w_ifu, h_top});
  blocks.push_back({"ISU", w_fpu + w_ifu, h_bot, w_isu, h_top});
  blocks.push_back({"IDU", w_fpu + w_ifu + w_isu, h_bot, w_idu, h_top});
  return Floorplan(std::move(blocks));
}

}  // namespace ramp::thermal
