#include "thermal/rc_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ramp::thermal {

RcNetwork::RcNetwork(Floorplan fp, ThermalConfig cfg)
    : fp_(std::move(fp)), cfg_(cfg) {
  RAMP_REQUIRE(cfg_.r_convec_k_per_w > 0 && cfg_.r_vertical_specific > 0 &&
                   cfg_.r_spreader_sink > 0,
               "thermal resistances must be positive");
  RAMP_REQUIRE(cfg_.ambient_k > 0, "ambient temperature must be positive");
  build();
}

void RcNetwork::build() {
  const std::size_t n = fp_.size();
  const std::size_t spreader = n;
  const std::size_t sink = n + 1;
  g_ = Matrix(n + 2, n + 2, 0.0);
  cap_.assign(n + 2, 0.0);

  auto couple = [&](std::size_t a, std::size_t b, double conductance) {
    g_(a, a) += conductance;
    g_(b, b) += conductance;
    g_(a, b) -= conductance;
    g_(b, a) -= conductance;
  };

  // Vertical block → spreader legs: G = A / r_specific.
  for (std::size_t i = 0; i < n; ++i) {
    const double area = fp_.block(i).area();
    couple(i, spreader, area / cfg_.r_vertical_specific);
    cap_[i] = cfg_.c_silicon * cfg_.die_thickness * area;
  }

  // Lateral block ↔ block legs through silicon:
  // G = k_si · t_die · shared_edge / center_distance.
  for (const auto& adj : fp_.adjacencies()) {
    const double g = cfg_.k_silicon * cfg_.die_thickness * adj.shared_len /
                     adj.center_dist;
    couple(adj.a, adj.b, g);
  }

  // Spreader → sink, and sink → ambient (ambient handled as a diagonal leg
  // with the boundary term added to the RHS at solve time). The sink
  // diagonal without its ambient leg is kept so set_r_convec can rebuild
  // it exactly instead of accumulating floating-point deltas.
  couple(spreader, sink, 1.0 / cfg_.r_spreader_sink);
  sink_diag_base_ = g_(sink, sink);
  g_(sink, sink) = sink_diag_base_ + 1.0 / cfg_.r_convec_k_per_w;

  cap_[spreader] = cfg_.spreader_capacitance;
  cap_[sink] = cfg_.sink_capacitance;
  steady_lu_.emplace(g_);
}

void RcNetwork::set_r_convec(double r_k_per_w) {
  RAMP_REQUIRE(r_k_per_w > 0, "convection resistance must be positive");
  // Swap the sink's ambient leg in the prebuilt Laplacian, rebuilding the
  // diagonal from the stored base so repeated calibration calls land on the
  // exact same matrix a fresh build() would produce (no += drift).
  const std::size_t sink = fp_.size() + 1;
  g_(sink, sink) = sink_diag_base_ + 1.0 / r_k_per_w;
  cfg_.r_convec_k_per_w = r_k_per_w;
  steady_lu_.emplace(g_);
}

std::vector<double> RcNetwork::steady_state(
    const std::vector<double>& block_power_w) const {
  SteadyWorkspace ws;
  std::vector<double> out;
  steady_state_into(block_power_w, ws, out);
  return out;
}

void RcNetwork::steady_state_into(const std::vector<double>& block_power_w,
                                  SteadyWorkspace& ws,
                                  std::vector<double>& out) const {
  const std::size_t n = fp_.size();
  RAMP_REQUIRE(block_power_w.size() == n,
               "need one power value per floorplan block");
  ws.rhs.assign(n + 2, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    RAMP_REQUIRE(std::isfinite(block_power_w[i]) && block_power_w[i] >= 0,
                 "block power must be finite and non-negative");
    ws.rhs[i] = block_power_w[i];
  }
  // Ambient boundary enters through the sink's convection leg.
  ws.rhs[n + 1] = cfg_.ambient_k / cfg_.r_convec_k_per_w;
  steady_lu_->solve_into(ws.rhs, out);
}

std::vector<double> RcNetwork::steady_state(
    const std::function<std::vector<double>(const std::vector<double>&)>& power_of,
    double tol, int max_iter) const {
  const std::size_t n = fp_.size();
  std::vector<double> temps(num_nodes(), cfg_.ambient_k);
  SteadyWorkspace ws;
  for (int it = 0; it < max_iter; ++it) {
    ws.block_temps.assign(temps.begin(),
                          temps.begin() + static_cast<std::ptrdiff_t>(n));
    const std::vector<double> p = power_of(ws.block_temps);
    for (double v : p) {
      if (!std::isfinite(v)) {
        throw ConvergenceError(
            "leakage-temperature fixed point diverged (thermal runaway)");
      }
    }
    steady_state_into(p, ws, ws.next);
    double delta = 0;
    for (std::size_t i = 0; i < ws.next.size(); ++i) {
      if (!std::isfinite(ws.next[i])) {
        throw ConvergenceError(
            "leakage-temperature fixed point diverged (thermal runaway)");
      }
      delta = std::max(delta, std::abs(ws.next[i] - temps[i]));
    }
    temps.swap(ws.next);
    if (delta < tol) return temps;
  }
  throw ConvergenceError(
      "leakage-temperature fixed point failed to converge; the node is "
      "likely past thermal runaway for this power density");
}

Transient::Transient(const RcNetwork& net, std::vector<double> initial,
                     double dt_seconds)
    : net_(net), temps_(std::move(initial)), dt_(dt_seconds) {
  RAMP_REQUIRE(temps_.size() == net.num_nodes(),
               "initial state must cover every node");
  RAMP_REQUIRE(dt_ > 0, "time step must be positive");
  // Implicit Euler: (C/dt + G) T' = (C/dt) T + P; factor the LHS once and
  // hoist the run-invariant C_i/dt coefficients out of the step loop.
  const Matrix& g = net.conductance();
  Matrix lhs = g;
  cap_over_dt_.resize(net.num_nodes());
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    cap_over_dt_[i] = net.capacitance()[i] / dt_;
    lhs(i, i) += cap_over_dt_[i];
  }
  solver_.emplace(std::move(lhs));
  rhs_.resize(net.num_nodes());
}

void Transient::step(const std::vector<double>& block_power_w) {
  const std::size_t n = net_.num_blocks();
  RAMP_REQUIRE(block_power_w.size() == n,
               "need one power value per floorplan block");
  // One fused pass: per element this is the same power-then-capacitance sum
  // the separate fill loops computed, so the bits are unchanged.
  for (std::size_t i = 0; i < n; ++i) {
    rhs_[i] = block_power_w[i] + cap_over_dt_[i] * temps_[i];
  }
  rhs_[n] = 0.0 + cap_over_dt_[n] * temps_[n];  // spreader: no direct power
  rhs_[n + 1] =
      net_.ambient() / net_.r_convec() + cap_over_dt_[n + 1] * temps_[n + 1];
  // The solve overwrites temps_ in place; rhs_ is the only scratch.
  solver_->solve_into(rhs_, temps_);
  elapsed_ += dt_;
}

}  // namespace ramp::thermal
