// Grid-mode thermal model (HotSpot's finer-granularity alternative to the
// block model).
//
// The block RC model (rc_model.hpp) lumps each floorplan block into one
// node; HotSpot also offers a grid mode that discretizes the die into an
// N×M mesh, capturing intra-block gradients and more faithful lateral
// spreading. This module implements that refinement on top of the same
// physical parameters (ThermalConfig): every grid cell gets a vertical leg
// to the spreader node (area-proportional), 4-neighbor lateral conduction
// through silicon, and the same spreader→sink→ambient chain. Block powers
// are distributed uniformly over the cells each block covers; per-block
// temperatures are area-weighted averages of their cells.
//
// Use it to validate the block model (the two agree on block averages for
// smooth power maps — tested) and to study intra-block hot spots the block
// model cannot see.
#pragma once

#include <memory>
#include <vector>

#include "thermal/floorplan.hpp"
#include "thermal/rc_model.hpp"
#include "util/linalg.hpp"

namespace ramp::thermal {

class GridModel {
 public:
  /// Discretizes `fp`'s bounding box into `cols` × `rows` cells. Every
  /// cell must overlap at least one block (the POWER4 floorplans tile the
  /// die, so any resolution works). Throws InvalidArgument on degenerate
  /// grids.
  GridModel(Floorplan fp, ThermalConfig cfg, int cols, int rows);

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  std::size_t num_cells() const { return static_cast<std::size_t>(cols_ * rows_); }
  const Floorplan& floorplan() const { return fp_; }

  /// Steady-state cell temperatures for per-block powers (uniformly
  /// distributed over each block's cells). Returns num_cells() + 2 values
  /// (cells, spreader, sink).
  std::vector<double> steady_state(const std::vector<double>& block_power_w) const;

  /// Area-weighted average temperature of block `b` from a steady_state
  /// result.
  double block_average(const std::vector<double>& cell_temps,
                       std::size_t block) const;

  /// Hottest cell temperature within block `b`.
  double block_peak(const std::vector<double>& cell_temps,
                    std::size_t block) const;

  /// Fraction of cell (c, r)'s area inside block `b` (for tests).
  double coverage(int col, int row, std::size_t block) const;

 private:
  std::size_t cell_index(int col, int row) const {
    return static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(col);
  }
  void build();

  Floorplan fp_;
  ThermalConfig cfg_;
  int cols_;
  int rows_;
  double cell_w_ = 0, cell_h_ = 0;
  Matrix g_;  ///< (cells + 2)^2 conductance Laplacian
  /// coverage_[cell][block] = fraction of the cell's area inside the block.
  std::vector<std::vector<double>> coverage_;
  std::unique_ptr<LuSolver> solver_;
};

}  // namespace ramp::thermal
