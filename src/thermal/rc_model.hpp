// HotSpot-style lumped RC thermal model (paper §4.3).
//
// Node layout: one node per floorplan block (silicon), one heat-spreader
// node, one heat-sink node; the ambient is a fixed-temperature boundary.
// Blocks conduct vertically into the spreader (die + TIM path, proportional
// to block area), laterally into edge-adjacent blocks (through-silicon),
// the spreader conducts into the sink, and the sink convects into ambient
// through R_convec (0.8 K/W at 180 nm, Table/§4.3).
//
// As in HotSpot, the sink's RC time constant is orders of magnitude larger
// than the silicon blocks', so transient runs must be initialized with the
// right sink temperature. The paper's two-run methodology (steady-state from
// average power, then a transient rerun) is implemented by the pipeline
// layer on top of steady_state()/Transient.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "thermal/floorplan.hpp"
#include "util/linalg.hpp"

namespace ramp::thermal {

struct ThermalConfig {
  double ambient_k = 318.15;        ///< HotSpot default ambient (45 °C)
  double r_convec_k_per_w = 0.8;    ///< sink-to-ambient resistance at 180 nm

  /// Effective specific vertical resistance from junction to spreader
  /// (K·m²/W): die + TIM with the spreader's lateral smearing folded in.
  /// Calibrated so the hot-structure temperature rise from 180 nm to
  /// 65 nm (1.0 V) matches the paper's ≈ +15 K (Figure 2 / §5.1).
  double r_vertical_specific = 1.32e-5;

  /// Spreader-to-sink conductance path (K/W).
  double r_spreader_sink = 0.05;

  /// Silicon thermal conductivity (W/(m·K)) for lateral block coupling.
  double k_silicon = 100.0;
  /// Die thickness (m) — lateral conduction cross-section.
  double die_thickness = 0.5e-3;

  /// Volumetric heat capacities (J/(m³·K)) and lumped masses.
  double c_silicon = 1.75e6;
  double spreader_capacitance = 300.0;  ///< J/K, copper spreader lump
  double sink_capacitance = 1200.0;     ///< J/K, large sink lump (slow pole)
};

/// Caller-owned scratch buffers for allocation-free steady-state solves
/// (see RcNetwork::steady_state_into). Reuse one instance across calls.
struct SteadyWorkspace {
  std::vector<double> rhs;
  std::vector<double> block_temps;  ///< used by the fixed-point overload
  std::vector<double> next;         ///< used by the fixed-point overload
};

/// RC network for one floorplan. Node order: blocks [0, n), spreader = n,
/// sink = n+1.
class RcNetwork {
 public:
  RcNetwork(Floorplan fp, ThermalConfig cfg);

  std::size_t num_blocks() const { return fp_.size(); }
  std::size_t num_nodes() const { return fp_.size() + 2; }
  const Floorplan& floorplan() const { return fp_; }
  const ThermalConfig& config() const { return cfg_; }

  /// Replaces the sink-to-ambient resistance (used to hold the sink
  /// temperature constant across technologies, §4.3).
  void set_r_convec(double r_k_per_w);
  double r_convec() const { return cfg_.r_convec_k_per_w; }

  /// Steady-state temperatures for fixed per-block powers (W). Returns
  /// num_nodes() temperatures (blocks, spreader, sink). The conductance
  /// Laplacian is factored once per build/set_r_convec, not per solve.
  std::vector<double> steady_state(const std::vector<double>& block_power_w) const;

  /// Workspace form of the fixed-power steady state: solves into `out`
  /// using `ws.rhs` as scratch, with zero heap traffic once the buffers
  /// have capacity. Bitwise-identical to steady_state().
  void steady_state_into(const std::vector<double>& block_power_w,
                         SteadyWorkspace& ws, std::vector<double>& out) const;

  /// Steady state with temperature-dependent power (leakage feedback):
  /// `power_of` maps block temperatures to block powers. Fixed-point
  /// iterates to `tol` Kelvin; throws ConvergenceError if it fails.
  std::vector<double> steady_state(
      const std::function<std::vector<double>(const std::vector<double>&)>& power_of,
      double tol = 1e-4, int max_iter = 200) const;

  /// Conductance matrix row access for tests (Laplacian + ambient leg).
  const Matrix& conductance() const { return g_; }

  /// Per-node heat capacities (J/K).
  const std::vector<double>& capacitance() const { return cap_; }

  double ambient() const { return cfg_.ambient_k; }

 private:
  void build();

  Floorplan fp_;
  ThermalConfig cfg_;
  Matrix g_;                  ///< (n+2)×(n+2) conductance Laplacian
  std::vector<double> cap_;   ///< per-node heat capacity
  /// Sink diagonal entry *without* the ambient convection leg; set_r_convec
  /// rebuilds the diagonal from this base instead of accumulating deltas,
  /// so repeated sink calibrations cannot drift the Laplacian.
  double sink_diag_base_ = 0.0;
  /// LU factorization of g_, refreshed by build()/set_r_convec() so every
  /// steady-state solve reuses it instead of refactoring per call.
  std::optional<LuSolver> steady_lu_;
};

/// Implicit-Euler transient integrator over an RcNetwork. Unconditionally
/// stable, so the 1 µs step of §4.3 is comfortable for every node including
/// the stiff sink pole. The implicit matrix is factored once per (network,
/// dt) pair.
class Transient {
 public:
  /// `initial` must have num_nodes() entries (e.g. a steady_state result).
  Transient(const RcNetwork& net, std::vector<double> initial, double dt_seconds);

  /// Advances one step under the given per-block powers (W). Allocation-free:
  /// the RHS lands in a member scratch buffer and the factored solve writes
  /// the new temperatures in place.
  void step(const std::vector<double>& block_power_w);

  /// Current node temperatures (blocks, spreader, sink).
  const std::vector<double>& temperatures() const { return temps_; }

  /// Current temperature of one block.
  double block_temp(std::size_t i) const { return temps_.at(i); }

  double dt() const { return dt_; }
  double elapsed() const { return elapsed_; }

 private:
  const RcNetwork& net_;
  std::vector<double> temps_;
  double dt_;
  double elapsed_ = 0;
  std::optional<LuSolver> solver_;    ///< factored (C/dt + G)
  std::vector<double> cap_over_dt_;   ///< hoisted C_i / dt per node
  std::vector<double> rhs_;           ///< per-step RHS scratch
};

}  // namespace ramp::thermal
