#include "fleet/fleet_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <future>
#include <limits>
#include <vector>

#include "core/lifetime_distributions.hpp"
#include "core/qualification.hpp"
#include "core/ramp_model.hpp"
#include "drm/drm_controller.hpp"
#include "drm/thermal_sensor.hpp"
#include "obs/span.hpp"
#include "pipeline/evaluator.hpp"
#include "pipeline/stage_graph.hpp"
#include "util/constants.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workloads/spec2k.hpp"

namespace ramp::fleet {

namespace {

/// Expected failures per (FIT x year): FIT is failures per 1e9 device-hours.
constexpr double kFailuresPerFitYear = kHoursPerYear / kFitHours;

/// Per-chip substream indices under stream_seed(scenario.seed, chip). Fixed
/// assignments so every stochastic aspect is independent of the others and
/// of the policy under test (common random numbers for A/B comparisons).
enum Substream : std::uint64_t {
  kStreamVariation = 0,
  kStreamSchedule = 1,
  kStreamThresholds = 2,
  kStreamSensor = 3,
  kStreamAttack = 4,
  kStreamInfant = 5,
};

/// Draws a unit-mean failure threshold (in expected-failure units) from the
/// scenario's lifetime family. With exponential thresholds the damage model
/// reduces exactly to SOFR / core::LifetimeMonteCarlo for constant stress;
/// Weibull beta > 1 reproduces wear-out clustering around the MTTF.
double unit_mean_threshold(core::LifetimeFamily family, double shape,
                           Xoshiro256& rng) {
  const double u = 1.0 - rng.uniform();  // (0, 1]: keeps log() finite
  switch (family) {
    case core::LifetimeFamily::kExponential:
      return -std::log(u);
    case core::LifetimeFamily::kWeibull: {
      const double eta = 1.0 / std::tgamma(1.0 + 1.0 / shape);
      return eta * std::pow(-std::log(u), 1.0 / shape);
    }
    case core::LifetimeFamily::kLognormal: {
      const double z = rng.normal();
      return std::exp(-0.5 * shape * shape + shape * z);
    }
  }
  throw InvalidArgument("unknown lifetime family");
}

/// d ln FIT / dT (1/K) of one mechanism around temperature `t_k`, by forward
/// difference of the steady-state kernel. Zero when the mechanism's FIT is
/// zero at these conditions (nothing to modulate).
double temp_sensitivity(const core::RampModel& model, double t_k,
                        double activity, double vdd, core::Mechanism m) {
  const auto at = [&](double t) {
    return core::steady_state_summary(model, t, activity, vdd)
        .by_mechanism()[static_cast<std::size_t>(m)];
  };
  const double f0 = at(t_k);
  if (f0 <= 0.0) return 0.0;
  const double f1 = at(t_k + 1.0);
  if (f1 <= 0.0) return 0.0;
  return std::log(f1 / f0);
}

std::string g17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string_view cause_name(FailureCause c) {
  switch (c) {
    case FailureCause::kInfant: return "infant";
    case FailureCause::kEm: return "em";
    case FailureCause::kSm: return "sm";
    case FailureCause::kTddb: return "tddb";
    case FailureCause::kTc: return "tc";
  }
  throw InvalidArgument("unknown FailureCause");
}

FleetSimulator::FleetSimulator(FleetScenario scenario)
    : FleetSimulator(std::move(scenario), Options{}) {}

FleetSimulator::FleetSimulator(FleetScenario scenario, Options opts)
    : scenario_(std::move(scenario)), opts_(std::move(opts)) {
  scenario_.validate();
  RAMP_REQUIRE(opts_.block_size >= 1, "block size must be at least 1");
}

void FleetSimulator::prepare() const {
  if (prepared_) return;
  obs::Span span(obs::Stage::kSchedule,
                 "fleet-prepare:" + scenario_.name + "@" +
                     std::string(scaling::tech_token(scenario_.tech)));

  // Resolve the workload pool.
  apps_.clear();
  if (scenario_.apps.empty()) {
    for (const auto& w : workloads::spec2k_suite()) apps_.push_back(&w);
  } else {
    for (const auto& name : scenario_.apps) {
      apps_.push_back(&workloads::workload(name));
    }
  }
  RAMP_REQUIRE(!apps_.empty(), "fleet needs at least one workload");

  // Physics cells. Every chip shares these: the 180 nm runs qualify the
  // constants (suite-average 1000 FIT per mechanism over the scenario's
  // pool, the paper's rule applied to the fleet's actual workload mix), and
  // the scaled-node runs pin each app's 180 nm heat-sink temperature. With
  // a warm stage store this whole loop is cache hits.
  pipeline::Evaluator ev(scenario_.cell, opts_.stage_store);
  std::vector<pipeline::AppTechResult> cells180;
  std::vector<pipeline::AppTechResult> cells;
  std::vector<core::FitSummary> raw180;
  cells180.reserve(apps_.size());
  for (const auto* w : apps_) {
    cells180.push_back(ev.evaluate(*w, scaling::TechPoint::k180nm));
    raw180.push_back(cells180.back().raw_fits);
  }
  if (scenario_.tech == scaling::TechPoint::k180nm) {
    cells = std::move(cells180);
  } else {
    cells.reserve(apps_.size());
    for (std::size_t a = 0; a < apps_.size(); ++a) {
      cells.push_back(
          ev.evaluate(*apps_[a], scenario_.tech, cells180[a].sink_temp_k));
    }
  }
  const core::MechanismConstants constants = core::qualify(raw180);

  // Operating-point ladder. Rung 0 is nominal; deeper rungs exist only when
  // something can step down onto them.
  const scaling::TechnologyNode node = scaling::node(scenario_.tech);
  const bool throttles = scenario_.policy == DrmPolicy::kDvfs ||
                         scenario_.kind == ScenarioKind::kMonitor;
  const int rungs = throttles ? scenario_.ladder_points : 1;
  const auto ladder = drm::dvfs_ladder(node, rungs);

  const double ambient_k = scenario_.cell.thermal.ambient_k;
  cells_.assign(apps_.size(), std::vector<CellPoint>());
  double rth_sum = 0.0;
  double leak_sum = 0.0;
  for (std::size_t a = 0; a < apps_.size(); ++a) {
    const auto& cell = cells[a];
    const double activity = std::clamp(cell.max_activity, 0.05, 1.0);
    const core::RampModel model0(node);
    const auto ss0 =
        core::steady_state_summary(model0, cell.max_structure_temp_k, activity,
                                   node.vdd)
            .by_mechanism();
    const auto ss0_die =
        core::steady_state_summary(model0, cell.avg_die_temp_k, activity,
                                   node.vdd)
            .by_mechanism();

    auto& app_cells = cells_[a];
    app_cells.resize(static_cast<std::size_t>(rungs));
    for (int r = 0; r < rungs; ++r) {
      CellPoint& cp = app_cells[static_cast<std::size_t>(r)];
      cp.relative_performance =
          ladder[static_cast<std::size_t>(r)].relative_performance;
      if (r == 0) {
        cp.fits = pipeline::scale_summary(cell.raw_fits, constants);
        cp.junction_k = cell.max_structure_temp_k;
        cp.die_temp_k = cell.avg_die_temp_k;
      } else {
        // A throttled rung is derived analytically from the rung-0 cell:
        // voltage/frequency scale the power, the app's effective thermal
        // resistance converts the power delta into a temperature delta, and
        // the RAMP physics converts (V, T) into mechanism-wise FIT ratios.
        // No extra sim-stage runs — the stage-store amortization argument
        // survives DVFS scenarios.
        const auto& pt = ladder[static_cast<std::size_t>(r)];
        const double v_ratio = pt.vdd / node.vdd;
        const double f_ratio = pt.frequency_hz / node.frequency_hz;
        const double p_r = cell.avg_dynamic_power_w * v_ratio * v_ratio *
                               f_ratio +
                           cell.avg_leakage_power_w * v_ratio;
        const double p_0 = cell.avg_total_power_w;
        const double rth =
            p_0 > 0.0 ? (cell.avg_die_temp_k - ambient_k) / p_0 : 0.0;
        const double delta_t = (p_0 - p_r) * rth;
        cp.junction_k = cell.max_structure_temp_k - delta_t;
        cp.die_temp_k = cell.avg_die_temp_k - delta_t;

        scaling::TechnologyNode node_r = node;
        node_r.vdd = pt.vdd;
        node_r.frequency_hz = pt.frequency_hz;
        const core::RampModel model_r(node_r);
        const auto ssr = core::steady_state_summary(model_r, cp.junction_k,
                                                    activity, pt.vdd)
                             .by_mechanism();
        const auto ssr_die = core::steady_state_summary(model_r, cp.die_temp_k,
                                                        activity, pt.vdd)
                                 .by_mechanism();
        const auto& base = app_cells[0];
        std::array<double, core::kNumMechanisms> ratio{};
        for (int m = 0; m < core::kNumMechanisms; ++m) {
          const auto mi = static_cast<std::size_t>(m);
          const bool tc = m == static_cast<int>(core::Mechanism::kTc);
          const double den = tc ? ss0_die[mi] : ss0[mi];
          const double num = tc ? ssr_die[mi] : ssr[mi];
          ratio[mi] = den > 0.0 ? num / den : 1.0;
        }
        for (int s = 0; s < sim::kNumStructures; ++s) {
          for (int m = 0; m < core::kNumMechanisms; ++m) {
            cp.fits.by_structure[static_cast<std::size_t>(s)]
                                [static_cast<std::size_t>(m)] =
                base.fits.by_structure[static_cast<std::size_t>(s)]
                                      [static_cast<std::size_t>(m)] *
                ratio[static_cast<std::size_t>(m)];
          }
        }
        cp.fits.tc_fit =
            base.fits.tc_fit *
            ratio[static_cast<std::size_t>(core::Mechanism::kTc)];
      }
      cp.total_fit = cp.fits.total();

      const core::RampModel model_here(
          [&] {
            scaling::TechnologyNode n = node;
            n.vdd = ladder[static_cast<std::size_t>(r)].vdd;
            n.frequency_hz = ladder[static_cast<std::size_t>(r)].frequency_hz;
            return n;
          }());
      const double vdd_here = ladder[static_cast<std::size_t>(r)].vdd;
      for (int m = 0; m < core::kNumMechanisms; ++m) {
        const bool tc = m == static_cast<int>(core::Mechanism::kTc);
        cp.temp_sens[static_cast<std::size_t>(m)] = temp_sensitivity(
            model_here, tc ? cp.die_temp_k : cp.junction_k, activity, vdd_here,
            static_cast<core::Mechanism>(m));
      }
    }

    const double p0 = cell.avg_total_power_w;
    if (p0 > 0.0) rth_sum += (cell.avg_die_temp_k - ambient_k) / p0;
    leak_sum += cell.avg_leakage_power_w;
  }
  chip_delta_t_per_leak_w_ = rth_sum / static_cast<double>(apps_.size());
  nominal_leak_w_ = leak_sum / static_cast<double>(apps_.size());

  // Attack target: the named app, else the most wear-intensive cell.
  attack_app_ = 0;
  if (!scenario_.attack.app.empty()) {
    bool found = false;
    for (std::size_t a = 0; a < apps_.size(); ++a) {
      if (apps_[a]->name == scenario_.attack.app) {
        attack_app_ = a;
        found = true;
        break;
      }
    }
    RAMP_REQUIRE(found, "attack app '" + scenario_.attack.app +
                            "' is not in the scenario's workload pool");
  } else {
    for (std::size_t a = 1; a < apps_.size(); ++a) {
      if (cells_[a][0].total_fit > cells_[attack_app_][0].total_fit) {
        attack_app_ = a;
      }
    }
  }

  prepared_ = true;
}

struct FleetSimulator::BlockAccum {
  std::vector<std::array<std::uint64_t, kNumFailureCauses>> bin_causes;
  std::array<std::uint64_t, sim::kNumStructures> by_structure{};
  std::uint64_t failed = 0;
  double failure_age_sum = 0.0;
  double perf_time_sum = 0.0;
  double alive_time_sum = 0.0;
  std::uint64_t throttle = 0;
  std::uint64_t migrations = 0;
  std::uint64_t spares = 0;
  std::uint64_t reconfigs = 0;
};

void FleetSimulator::simulate_block(std::uint64_t first, std::uint64_t count,
                                    BlockAccum* acc) const {
  const auto& sc = scenario_;
  const std::size_t napps = apps_.size();
  const int rungs = static_cast<int>(cells_[0].size());
  const std::size_t nbins = acc->bin_causes.size();
  const double bin_years = sc.curve_bin_years;
  const double horizon = sc.horizon_years;
  const double budget_damage =
      sc.drm.fit_budget * horizon * kFailuresPerFitYear;

  // One ladder per block for the per-chip DVFS controllers.
  std::vector<drm::OperatingPoint> ladder;
  if (sc.policy == DrmPolicy::kDvfs) {
    ladder = drm::dvfs_ladder(scaling::node(sc.tech), rungs);
  }

  for (std::uint64_t chip = first; chip < first + count; ++chip) {
    const std::uint64_t chip_seed = stream_seed(sc.seed, chip);
    Xoshiro256 var_rng(stream_seed(chip_seed, kStreamVariation));
    Xoshiro256 sched_rng(stream_seed(chip_seed, kStreamSchedule));
    Xoshiro256 thresh_rng(stream_seed(chip_seed, kStreamThresholds));
    Xoshiro256 attack_rng(stream_seed(chip_seed, kStreamAttack));
    Xoshiro256 infant_rng(stream_seed(chip_seed, kStreamInfant));
    drm::ThermalSensor sensor(sc.sensor, stream_seed(chip_seed, kStreamSensor));

    // Process variation: per-mechanism model-constant jitter plus a leakage
    // multiplier that shifts the whole die's temperature.
    std::array<double, core::kNumMechanisms> jitter{};
    for (int m = 0; m < core::kNumMechanisms; ++m) {
      jitter[static_cast<std::size_t>(m)] =
          std::exp(sc.variation.mechanism_sigma * var_rng.normal());
    }
    const double leak_mult =
        std::exp(sc.variation.leakage_sigma * var_rng.normal());
    const double chip_dt = std::clamp(
        (leak_mult - 1.0) * nominal_leak_w_ * chip_delta_t_per_leak_w_, -25.0,
        25.0);

    // Latent-defect (infant) population.
    const bool weak = infant_rng.bernoulli(sc.infant.fraction);
    const double infant_t =
        weak ? sc.infant.eta_years *
                   std::pow(-std::log(1.0 - infant_rng.uniform()),
                            1.0 / sc.infant.beta)
             : std::numeric_limits<double>::infinity();

    // Targeted-attack membership is a per-chip property.
    const bool targeted = sc.kind == ScenarioKind::kAttack &&
                          attack_rng.bernoulli(sc.attack.targeted_fraction);

    // Damage state. Thresholds are drawn for every instance up front (fixed
    // draw count regardless of which cells have zero FIT).
    std::array<std::array<double, core::kNumMechanisms>, sim::kNumStructures>
        damage{};
    std::array<std::array<double, core::kNumMechanisms>, sim::kNumStructures>
        threshold{};
    auto draw_structure_thresholds = [&](std::size_t s) {
      for (int m = 0; m < core::kNumMechanisms; ++m) {
        threshold[s][static_cast<std::size_t>(m)] = unit_mean_threshold(
            sc.lifetime.family, sc.lifetime.shape[static_cast<std::size_t>(m)],
            thresh_rng);
      }
    };
    for (int s = 0; s < sim::kNumStructures; ++s) {
      draw_structure_thresholds(static_cast<std::size_t>(s));
    }
    double tc_damage = 0.0;
    const double tc_threshold = unit_mean_threshold(
        sc.lifetime.family,
        sc.lifetime.shape[static_cast<std::size_t>(core::Mechanism::kTc)],
        thresh_rng);
    std::array<int, sim::kNumStructures> spares_left{};
    for (int s = 0; s < sim::kNumStructures; ++s) {
      spares_left[static_cast<std::size_t>(s)] =
          sc.spares.spares[static_cast<std::size_t>(s)];
    }

    std::unique_ptr<drm::DrmController> ctrl;
    if (sc.policy == DrmPolicy::kDvfs) {
      ctrl = std::make_unique<drm::DrmController>(sc.drm, ladder);
    }

    int rung = 0;
    bool cooling = false;
    bool reconfigured = false;
    double consumed = 0.0;  // monitor's estimated damage (expected failures)
    double t = 0.0;
    bool alive = true;
    double death_t = 0.0;
    FailureCause cause = FailureCause::kInfant;
    int dead_structure = -1;

    while (alive && t < horizon) {
      const double dt = std::min(sc.phase_years, horizon - t);

      // Workload selection for this phase.
      std::size_t app;
      if (targeted && attack_rng.bernoulli(sc.attack.occupancy)) {
        app = attack_app_;
      } else if (cooling && sc.policy == DrmPolicy::kMigration) {
        // The scheduler offers 4 candidate slots and migrates the job to
        // the coolest (lowest-FIT) one.
        app = sched_rng.below(napps);
        for (int c = 1; c < 4; ++c) {
          const std::size_t cand = sched_rng.below(napps);
          if (cells_[cand][static_cast<std::size_t>(rung)].total_fit <
              cells_[app][static_cast<std::size_t>(rung)].total_fit) {
            app = cand;
          }
        }
        ++acc->migrations;
      } else {
        app = sched_rng.below(napps);
      }
      const CellPoint& cp = cells_[app][static_cast<std::size_t>(rung)];

      // Sensing: the controller sees the sensor, not the true junction.
      const double dt_seconds = dt * kHoursPerYear * kSecondsPerHour;
      const double reading =
          sensor.read(cp.junction_k + chip_dt, dt_seconds);
      const double est_dt = reading - cp.junction_k;

      // True and estimated per-mechanism stress multipliers on this chip.
      std::array<double, core::kNumMechanisms> factor{};
      double est_fit = 0.0;
      const auto mech_fit = cp.fits.by_mechanism();
      for (int m = 0; m < core::kNumMechanisms; ++m) {
        const auto mi = static_cast<std::size_t>(m);
        factor[mi] = jitter[mi] * std::exp(cp.temp_sens[mi] * chip_dt);
        est_fit += mech_fit[mi] * std::exp(cp.temp_sens[mi] * est_dt);
      }

      // Wear-out event loop inside the phase: damage accrues linearly at
      // this phase's rates, so the next threshold crossing is analytic.
      double local_t = 0.0;
      while (alive && local_t < dt) {
        double t_next = dt - local_t;
        int ev_s = -1;
        int ev_m = -1;
        bool ev_tc = false;
        for (int s = 0; s < sim::kNumStructures; ++s) {
          const auto si = static_cast<std::size_t>(s);
          for (int m = 0; m < core::kNumMechanisms; ++m) {
            const auto mi = static_cast<std::size_t>(m);
            const double rate =
                cp.fits.by_structure[si][mi] * factor[mi] * kFailuresPerFitYear;
            if (rate <= 0.0) continue;
            const double tt = (threshold[si][mi] - damage[si][mi]) / rate;
            if (tt < t_next) {
              t_next = tt;
              ev_s = s;
              ev_m = m;
              ev_tc = false;
            }
          }
        }
        const double tc_rate =
            cp.fits.tc_fit *
            factor[static_cast<std::size_t>(core::Mechanism::kTc)] *
            kFailuresPerFitYear;
        if (tc_rate > 0.0) {
          const double tt = (tc_threshold - tc_damage) / tc_rate;
          if (tt < t_next) {
            t_next = tt;
            ev_s = -1;
            ev_tc = true;
          }
        }

        for (int s = 0; s < sim::kNumStructures; ++s) {
          const auto si = static_cast<std::size_t>(s);
          for (int m = 0; m < core::kNumMechanisms; ++m) {
            const auto mi = static_cast<std::size_t>(m);
            damage[si][mi] +=
                cp.fits.by_structure[si][mi] * factor[mi] * kFailuresPerFitYear *
                t_next;
          }
        }
        tc_damage += tc_rate * t_next;
        local_t += t_next;

        if (ev_tc) {
          alive = false;
          death_t = t + local_t;
          cause = FailureCause::kTc;
        } else if (ev_s >= 0) {
          const auto si = static_cast<std::size_t>(ev_s);
          if (spares_left[si] > 0) {
            // Cold spare: fresh structure, zero damage, new thresholds.
            --spares_left[si];
            ++acc->spares;
            damage[si].fill(0.0);
            draw_structure_thresholds(si);
          } else {
            alive = false;
            death_t = t + local_t;
            cause = static_cast<FailureCause>(ev_m + 1);
            dead_structure = ev_s;
          }
        }
      }

      // Infant mortality preempts any wear-out event after it.
      if (infant_t <= (alive ? t + dt : death_t)) {
        alive = false;
        death_t = infant_t;
        cause = FailureCause::kInfant;
        dead_structure = -1;
      }

      const double alive_dt = (alive ? dt : std::max(0.0, death_t - t));
      acc->perf_time_sum += cp.relative_performance * alive_dt;
      acc->alive_time_sum += alive_dt;

      if (alive) {
        // End-of-phase policy response, driven by the *estimated* FIT.
        if (sc.policy == DrmPolicy::kDvfs) {
          rung = ctrl->update(est_fit, dt_seconds).point_index;
        } else if (sc.policy == DrmPolicy::kMigration) {
          cooling = est_fit > sc.drm.fit_budget * (1.0 + sc.drm.headroom);
        }
        if (sc.kind == ScenarioKind::kMonitor) {
          consumed += est_fit * dt * kFailuresPerFitYear;
          if (!reconfigured &&
              consumed >= sc.monitor.threshold * budget_damage) {
            // One-time reconfiguration: deepest throttle plus a switch to
            // every available cold spare (fresh structures).
            reconfigured = true;
            ++acc->reconfigs;
            rung = rungs - 1;
            for (int s = 0; s < sim::kNumStructures; ++s) {
              const auto si = static_cast<std::size_t>(s);
              if (spares_left[si] > 0) {
                --spares_left[si];
                ++acc->spares;
                damage[si].fill(0.0);
                draw_structure_thresholds(si);
              }
            }
          }
        }
      }
      t += dt;
    }

    if (ctrl) acc->throttle += ctrl->switches();
    if (!alive) {
      ++acc->failed;
      acc->failure_age_sum += death_t;
      const auto bin = static_cast<std::size_t>(
          std::min(static_cast<double>(nbins - 1), death_t / bin_years));
      ++acc->bin_causes[bin][static_cast<std::size_t>(cause)];
      if (dead_structure >= 0) {
        ++acc->by_structure[static_cast<std::size_t>(dead_structure)];
      }
    }
  }
}

FleetResult FleetSimulator::run() const {
  obs::Span span(obs::Stage::kTotal,
                 "fleet:" + scenario_.name + "@" +
                     std::string(scaling::tech_token(scenario_.tech)));
  prepare();

  const auto nbins = static_cast<std::size_t>(std::ceil(
      scenario_.horizon_years / scenario_.curve_bin_years - 1e-12));
  RAMP_REQUIRE(nbins >= 1, "curve needs at least one bin");

  const std::uint64_t chips = scenario_.chips;
  const std::uint64_t block = opts_.block_size;
  const std::uint64_t nblocks = (chips + block - 1) / block;
  std::vector<BlockAccum> accums(nblocks);
  for (auto& acc : accums) {
    acc.bin_causes.assign(nbins,
                          std::array<std::uint64_t, kNumFailureCauses>{});
  }

  const auto run_block = [&](std::uint64_t b) {
    const std::uint64_t first = b * block;
    simulate_block(first, std::min(block, chips - first), &accums[b]);
  };

  // Chips are sharded into fixed blocks; block results are merged in block
  // order below, so the curve is byte-identical at any job count.
  ThreadPool* pool = opts_.pool;
  std::unique_ptr<ThreadPool> own_pool;
  if (pool == nullptr && opts_.jobs > 1) {
    own_pool = std::make_unique<ThreadPool>(opts_.jobs);
    pool = own_pool.get();
  }
  if (pool != nullptr) {
    std::vector<std::future<void>> futures;
    futures.reserve(nblocks);
    for (std::uint64_t b = 0; b < nblocks; ++b) {
      futures.push_back(pool->submit([&run_block, b] { run_block(b); }));
    }
    for (auto& f : futures) f.get();
  } else {
    for (std::uint64_t b = 0; b < nblocks; ++b) run_block(b);
  }

  FleetResult result;
  result.scenario = scenario_;
  result.summary.chips = chips;

  std::vector<std::array<std::uint64_t, kNumFailureCauses>> bins(
      nbins, std::array<std::uint64_t, kNumFailureCauses>{});
  double perf_time = 0.0;
  double alive_time = 0.0;
  for (const auto& acc : accums) {
    for (std::size_t i = 0; i < nbins; ++i) {
      for (int c = 0; c < kNumFailureCauses; ++c) {
        bins[i][static_cast<std::size_t>(c)] +=
            acc.bin_causes[i][static_cast<std::size_t>(c)];
      }
    }
    for (int s = 0; s < sim::kNumStructures; ++s) {
      result.summary.failures_by_structure[static_cast<std::size_t>(s)] +=
          acc.by_structure[static_cast<std::size_t>(s)];
    }
    result.summary.failed += acc.failed;
    result.summary.throttle_switches += acc.throttle;
    result.summary.migrations += acc.migrations;
    result.summary.spare_activations += acc.spares;
    result.summary.monitor_reconfigs += acc.reconfigs;
    result.summary.mean_failure_age_years += acc.failure_age_sum;
    perf_time += acc.perf_time_sum;
    alive_time += acc.alive_time_sum;
  }
  if (result.summary.failed > 0) {
    result.summary.mean_failure_age_years /=
        static_cast<double>(result.summary.failed);
  }
  result.summary.avg_relative_performance =
      alive_time > 0.0 ? perf_time / alive_time : 1.0;

  result.curve.reserve(nbins);
  std::uint64_t survivors = chips;
  for (std::size_t i = 0; i < nbins; ++i) {
    FleetCurvePoint pt;
    const double bin_start =
        static_cast<double>(i) * scenario_.curve_bin_years;
    const double width =
        std::min(scenario_.curve_bin_years, scenario_.horizon_years - bin_start);
    pt.t_end_years = bin_start + width;
    pt.by_cause = bins[i];
    for (int c = 0; c < kNumFailureCauses; ++c) {
      pt.failures += bins[i][static_cast<std::size_t>(c)];
      result.summary.failures_by_cause[static_cast<std::size_t>(c)] +=
          bins[i][static_cast<std::size_t>(c)];
    }
    pt.hazard_per_year =
        survivors > 0
            ? static_cast<double>(pt.failures) /
                  (static_cast<double>(survivors) * width)
            : 0.0;
    survivors -= pt.failures;
    pt.survivors = survivors;
    pt.survival = static_cast<double>(survivors) / static_cast<double>(chips);
    result.curve.push_back(pt);
  }
  result.summary.survival_at_horizon = result.curve.back().survival;

  auto& reg = opts_.registry != nullptr ? *opts_.registry
                                        : obs::MetricsRegistry::global();
  reg.counter("ramp_fleet_chips_total").inc(chips);
  reg.counter("ramp_fleet_failures_total").inc(result.summary.failed);
  reg.counter("ramp_fleet_spare_activations_total")
      .inc(result.summary.spare_activations);
  reg.counter("ramp_fleet_migrations_total").inc(result.summary.migrations);
  reg.counter("ramp_fleet_throttle_switches_total")
      .inc(result.summary.throttle_switches);
  reg.counter("ramp_fleet_monitor_reconfigs_total")
      .inc(result.summary.monitor_reconfigs);

  return result;
}

// ---- deterministic exports -------------------------------------------------

namespace {

std::string scenario_echo(const FleetScenario& sc) {
  std::string out = "# scenario=" + sc.name;
  out += " kind=" + std::string(kind_name(sc.kind));
  out += " chips=" + std::to_string(sc.chips);
  out += " node=" + std::string(scaling::tech_token(sc.tech));
  out += " policy=" + std::string(policy_name(sc.policy));
  out += " seed=" + std::to_string(sc.seed);
  out += " years=" + g17(sc.horizon_years);
  out += " phase=" + g17(sc.phase_years);
  out += " bin=" + g17(sc.curve_bin_years);
  out += " ladder=" + std::to_string(sc.ladder_points);
  out += " spares=" + std::to_string(sc.spares.total());
  out += "\n";
  return out;
}

}  // namespace

std::string fleet_curve_csv(const FleetResult& r) {
  std::string out = "# ramp_fleet v1\n";
  out += scenario_echo(r.scenario);
  out +=
      "t_end_years,failures,survivors,survival,hazard_per_year,infant,em,sm,"
      "tddb,tc\n";
  for (const auto& pt : r.curve) {
    out += g17(pt.t_end_years);
    out += ',';
    out += std::to_string(pt.failures);
    out += ',';
    out += std::to_string(pt.survivors);
    out += ',';
    out += g17(pt.survival);
    out += ',';
    out += g17(pt.hazard_per_year);
    for (int c = 0; c < kNumFailureCauses; ++c) {
      out += ',';
      out += std::to_string(pt.by_cause[static_cast<std::size_t>(c)]);
    }
    out += '\n';
  }
  return out;
}

std::string fleet_ndjson(const FleetResult& r) {
  const auto& s = r.summary;
  std::string out = "{\"type\":\"summary\"";
  out += ",\"scenario\":\"" + r.scenario.name + "\"";
  out += ",\"kind\":\"" + std::string(kind_name(r.scenario.kind)) + "\"";
  out += ",\"policy\":\"" + std::string(policy_name(r.scenario.policy)) + "\"";
  out += ",\"node\":\"" +
         std::string(scaling::tech_token(r.scenario.tech)) + "\"";
  out += ",\"seed\":" + std::to_string(r.scenario.seed);
  out += ",\"chips\":" + std::to_string(s.chips);
  out += ",\"failed\":" + std::to_string(s.failed);
  out += ",\"survival_at_horizon\":" + g17(s.survival_at_horizon);
  out += ",\"mean_failure_age_years\":" + g17(s.mean_failure_age_years);
  out += ",\"avg_relative_performance\":" + g17(s.avg_relative_performance);
  out += ",\"throttle_switches\":" + std::to_string(s.throttle_switches);
  out += ",\"migrations\":" + std::to_string(s.migrations);
  out += ",\"spare_activations\":" + std::to_string(s.spare_activations);
  out += ",\"monitor_reconfigs\":" + std::to_string(s.monitor_reconfigs);
  out += ",\"failures_by_cause\":{";
  for (int c = 0; c < kNumFailureCauses; ++c) {
    if (c > 0) out += ",";
    out += "\"" + std::string(cause_name(static_cast<FailureCause>(c))) +
           "\":" +
           std::to_string(s.failures_by_cause[static_cast<std::size_t>(c)]);
  }
  out += "},\"failures_by_structure\":{";
  for (int st = 0; st < sim::kNumStructures; ++st) {
    if (st > 0) out += ",";
    out += "\"" +
           std::string(
               sim::structure_name(static_cast<sim::StructureId>(st))) +
           "\":" +
           std::to_string(
               s.failures_by_structure[static_cast<std::size_t>(st)]);
  }
  out += "}}\n";

  for (const auto& pt : r.curve) {
    out += "{\"type\":\"bin\",\"t_end_years\":" + g17(pt.t_end_years);
    out += ",\"failures\":" + std::to_string(pt.failures);
    out += ",\"survivors\":" + std::to_string(pt.survivors);
    out += ",\"survival\":" + g17(pt.survival);
    out += ",\"hazard_per_year\":" + g17(pt.hazard_per_year);
    out += ",\"by_cause\":{";
    for (int c = 0; c < kNumFailureCauses; ++c) {
      if (c > 0) out += ",";
      out += "\"" + std::string(cause_name(static_cast<FailureCause>(c))) +
             "\":" + std::to_string(pt.by_cause[static_cast<std::size_t>(c)]);
    }
    out += "}}\n";
  }
  return out;
}

std::string fleet_ab_csv(const FleetResult& a, const FleetResult& b) {
  RAMP_REQUIRE(a.curve.size() == b.curve.size(),
               "A/B runs must share the curve binning");
  std::string out = "# ramp_fleet_ab v1\n";
  out += "# a: policy=" + std::string(policy_name(a.scenario.policy)) +
         " b: policy=" + std::string(policy_name(b.scenario.policy)) +
         " scenario=" + a.scenario.name +
         " seed=" + std::to_string(a.scenario.seed) + "\n";
  out +=
      "t_end_years,survival_a,survival_b,delta_survival,hazard_a,hazard_b,"
      "delta_hazard\n";
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    const auto& pa = a.curve[i];
    const auto& pb = b.curve[i];
    RAMP_REQUIRE(pa.t_end_years == pb.t_end_years,
                 "A/B runs must share the curve binning");
    out += g17(pa.t_end_years);
    out += "," + g17(pa.survival);
    out += "," + g17(pb.survival);
    out += "," + g17(pb.survival - pa.survival);
    out += "," + g17(pa.hazard_per_year);
    out += "," + g17(pb.hazard_per_year);
    out += "," + g17(pb.hazard_per_year - pa.hazard_per_year);
    out += "\n";
  }
  return out;
}

}  // namespace ramp::fleet
