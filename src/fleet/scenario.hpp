// Declarative fleet scenarios: what population to simulate, and how.
//
// A FleetScenario is the complete, serializable description of one
// population study: how many chips, over how many years, at which technology
// point, under which dynamic-reliability-management policy, with what
// process variation, structural redundancy, sensing, and threat model. The
// simulator (fleet_simulator.hpp) turns one scenario into survival and
// failure-rate curves; the `ramp fleet` CLI builds scenarios from presets,
// RAMP_FLEET_* environment overrides, and flags.
//
// Three presets cover the ROADMAP's required studies:
//   baseline — the shipped fleet as qualified: uniform workload draws,
//              process variation on, no DRM response.
//   attack   — targeted wearout (Mashburn et al. 2025): an adversary pins
//              the most wear-intensive workload onto a slice of the fleet
//              for most of its duty cycle.
//   monitor  — aging-monitor-driven reconfiguration (Juracy et al. survey):
//              chips carry spares and an on-die consumed-life monitor;
//              crossing the monitor threshold triggers a one-time
//              reconfiguration (switch to cold spares, deep DVFS throttle).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/lifetime_mc.hpp"
#include "core/redundancy.hpp"
#include "drm/drm_controller.hpp"
#include "drm/thermal_sensor.hpp"
#include "pipeline/evaluator.hpp"
#include "scaling/technology.hpp"

namespace ramp::fleet {

/// Per-chip dynamic reliability management policy.
enum class DrmPolicy {
  kNone,       ///< qualify-and-ship: no runtime response
  kDvfs,       ///< drm::DrmController steps a DVFS ladder on sensed wear
  kMigration,  ///< scheduler migrates the job off chips sensing over-budget
};
std::string_view policy_name(DrmPolicy p);
/// Inverse of policy_name; throws InvalidArgument for anything else.
DrmPolicy parse_policy(const std::string& name);

/// The scenario archetype (threat/response model); presets set one each.
enum class ScenarioKind { kBaseline, kAttack, kMonitor };
std::string_view kind_name(ScenarioKind k);

/// Per-chip process variation, sampled once per chip from its own
/// counter-based RNG stream (see fleet_simulator.hpp "Determinism").
struct VariationConfig {
  /// Lognormal sigma of the per-chip, per-mechanism model-constant jitter
  /// (wafer-to-wafer spread of the proportionality constants).
  double mechanism_sigma = 0.08;
  /// Lognormal sigma of the per-chip leakage-power multiplier (Vth and
  /// channel-length spread; leaky chips run measurably hotter).
  double leakage_sigma = 0.25;
};

/// Latent-defect ("infant mortality") population: a small fraction of chips
/// carries a manufacturing defect whose lifetime is Weibull with shape < 1
/// (decreasing hazard), producing the bathtub curve's early-life edge.
struct InfantConfig {
  double fraction = 0.002;   ///< weak-population share of the fleet
  double beta = 0.45;        ///< Weibull shape (< 1: burn-in regime)
  double eta_years = 0.8;    ///< characteristic life of the weak population
};

/// Targeted-wearout attack (ScenarioKind::kAttack).
struct AttackConfig {
  double targeted_fraction = 0.1;  ///< share of the fleet the attacker owns
  double occupancy = 0.9;          ///< fraction of phases running the attack app
  /// Workload the attacker pins; "" auto-selects the highest-FIT cell.
  std::string app;
};

/// Aging-monitor reconfiguration (ScenarioKind::kMonitor).
struct MonitorConfig {
  /// Consumed-life fraction (estimated damage / budgeted lifetime damage)
  /// that triggers the one-time reconfiguration.
  double threshold = 0.5;
};

struct FleetScenario {
  std::string name = "baseline";
  ScenarioKind kind = ScenarioKind::kBaseline;

  std::uint64_t chips = 10'000;
  double horizon_years = 30.0;
  /// Workload phase length: each chip redraws its job every phase.
  double phase_years = 0.5;
  /// Resolution of the survival / failure-rate curves.
  double curve_bin_years = 1.0;
  /// Master seed; every chip derives its streams from (seed, chip index).
  std::uint64_t seed = 42;

  scaling::TechPoint tech = scaling::TechPoint::k180nm;
  DrmPolicy policy = DrmPolicy::kNone;
  /// DVFS ladder depth for kDvfs / monitor reconfiguration (>= 1).
  int ladder_points = 3;

  /// Workload pool the schedule draws from (uniformly); empty = all 16.
  std::vector<std::string> apps;

  drm::DrmConfig drm{};             ///< budget/hysteresis for DVFS & migration
  drm::SensorConfig sensor{};       ///< per-chip thermal-sensor non-idealities
  core::LifetimeModelConfig lifetime{};  ///< per-mechanism wear-out shapes
  core::SparePlan spares{};         ///< structural redundancy (default none)
  VariationConfig variation{};
  InfantConfig infant{};
  AttackConfig attack{};
  MonitorConfig monitor{};

  /// Physics-cell settings (trace length, seed, power, thermal, stage
  /// cache). The per-(app, node) cells are the only expensive computes and
  /// are shared by every chip through the stage store.
  pipeline::EvaluationConfig cell{};

  /// Throws InvalidArgument on any out-of-range field.
  void validate() const;

  /// Named preset ("baseline", "attack", "monitor"); throws on anything else.
  static FleetScenario preset(const std::string& name);

  /// Builds a scenario from the environment: starts from
  /// preset($RAMP_FLEET_SCENARIO, default "baseline" — `scenario_override`
  /// wins when non-empty), then applies the strict overrides
  ///   RAMP_FLEET_CHIPS        chip count (>= 1)
  ///   RAMP_FLEET_YEARS        horizon in years (finite, > 0)
  ///   RAMP_FLEET_SEED         master seed
  ///   RAMP_FLEET_POLICY       none | dvfs | migration
  ///   RAMP_FLEET_PHASE_YEARS  workload phase length (> 0)
  ///   RAMP_FLEET_BIN_YEARS    curve bin width (> 0)
  ///   RAMP_FLEET_LADDER       DVFS ladder depth (>= 1)
  ///   RAMP_FLEET_NODE         technology point (scaling::parse_tech names)
  /// Malformed values (non-numeric, signed, overflowing, zero where a
  /// positive value is required, or an unknown policy/scenario/node name)
  /// throw InvalidArgument — a misspelled override must never be silently
  /// replaced by a default. The physics cell is EvaluationConfig::from_env.
  static FleetScenario from_env(const std::string& scenario_override = "",
                                std::uint64_t trace_len = 200'000);
};

}  // namespace ramp::fleet
