#include "fleet/scenario.hpp"

#include <cmath>

#include "util/env.hpp"
#include "util/error.hpp"

namespace ramp::fleet {

std::string_view policy_name(DrmPolicy p) {
  switch (p) {
    case DrmPolicy::kNone: return "none";
    case DrmPolicy::kDvfs: return "dvfs";
    case DrmPolicy::kMigration: return "migration";
  }
  throw InvalidArgument("unknown DrmPolicy");
}

DrmPolicy parse_policy(const std::string& name) {
  if (name == "none") return DrmPolicy::kNone;
  if (name == "dvfs") return DrmPolicy::kDvfs;
  if (name == "migration") return DrmPolicy::kMigration;
  throw InvalidArgument("unknown DRM policy '" + name +
                        "' (expected none, dvfs, or migration)");
}

std::string_view kind_name(ScenarioKind k) {
  switch (k) {
    case ScenarioKind::kBaseline: return "baseline";
    case ScenarioKind::kAttack: return "attack";
    case ScenarioKind::kMonitor: return "monitor";
  }
  throw InvalidArgument("unknown ScenarioKind");
}

void FleetScenario::validate() const {
  RAMP_REQUIRE(chips >= 1, "fleet needs at least one chip");
  RAMP_REQUIRE(std::isfinite(horizon_years) && horizon_years > 0.0,
               "horizon must be positive and finite");
  RAMP_REQUIRE(std::isfinite(phase_years) && phase_years > 0.0,
               "phase length must be positive and finite");
  RAMP_REQUIRE(std::isfinite(curve_bin_years) && curve_bin_years > 0.0,
               "curve bin must be positive and finite");
  RAMP_REQUIRE(ladder_points >= 1, "ladder needs at least one point");
  RAMP_REQUIRE(variation.mechanism_sigma >= 0.0 &&
                   variation.leakage_sigma >= 0.0,
               "variation sigmas must be non-negative");
  RAMP_REQUIRE(infant.fraction >= 0.0 && infant.fraction <= 1.0,
               "infant fraction must lie in [0, 1]");
  RAMP_REQUIRE(infant.beta > 0.0 && infant.eta_years > 0.0,
               "infant Weibull parameters must be positive");
  RAMP_REQUIRE(attack.targeted_fraction >= 0.0 &&
                   attack.targeted_fraction <= 1.0,
               "attack fraction must lie in [0, 1]");
  RAMP_REQUIRE(attack.occupancy >= 0.0 && attack.occupancy <= 1.0,
               "attack occupancy must lie in [0, 1]");
  RAMP_REQUIRE(monitor.threshold > 0.0, "monitor threshold must be positive");
  (void)spares.total();  // validates non-negative counts
}

FleetScenario FleetScenario::preset(const std::string& name) {
  FleetScenario sc;
  sc.name = name;
  if (name == "baseline") {
    sc.kind = ScenarioKind::kBaseline;
    return sc;
  }
  if (name == "attack") {
    sc.kind = ScenarioKind::kAttack;
    return sc;
  }
  if (name == "monitor") {
    sc.kind = ScenarioKind::kMonitor;
    // Monitor-driven reconfiguration needs something to reconfigure onto:
    // one cold spare per structure and a ladder to throttle down.
    sc.spares = core::SparePlan::uniform(1);
    return sc;
  }
  throw InvalidArgument("unknown fleet scenario '" + name +
                        "' (expected baseline, attack, or monitor)");
}

namespace {

// RAMP_FLEET_* double override with a positivity requirement.
void apply_positive(const char* var, double* field) {
  if (const auto v = env_double(var)) {
    RAMP_REQUIRE(*v > 0.0, std::string(var) + " must be positive");
    *field = *v;
  }
}

}  // namespace

FleetScenario FleetScenario::from_env(const std::string& scenario_override,
                                      std::uint64_t trace_len) {
  std::string preset_name = scenario_override;
  if (preset_name.empty()) {
    preset_name = env_string("RAMP_FLEET_SCENARIO").value_or("baseline");
  }
  FleetScenario sc = preset(preset_name);

  sc.chips = env_u64("RAMP_FLEET_CHIPS", sc.chips);
  RAMP_REQUIRE(sc.chips >= 1, "RAMP_FLEET_CHIPS must be at least 1");
  sc.seed = env_u64("RAMP_FLEET_SEED", sc.seed);
  apply_positive("RAMP_FLEET_YEARS", &sc.horizon_years);
  apply_positive("RAMP_FLEET_PHASE_YEARS", &sc.phase_years);
  apply_positive("RAMP_FLEET_BIN_YEARS", &sc.curve_bin_years);
  const std::uint64_t ladder = env_u64(
      "RAMP_FLEET_LADDER", static_cast<std::uint64_t>(sc.ladder_points));
  RAMP_REQUIRE(ladder >= 1 && ladder <= 16,
               "RAMP_FLEET_LADDER must lie in [1, 16]");
  sc.ladder_points = static_cast<int>(ladder);
  if (const auto policy = env_string("RAMP_FLEET_POLICY")) {
    sc.policy = parse_policy(*policy);
  }
  if (const auto node = env_string("RAMP_FLEET_NODE")) {
    sc.tech = scaling::parse_tech(*node);
  }

  sc.cell = pipeline::EvaluationConfig::from_env(trace_len);
  sc.validate();
  return sc;
}

}  // namespace ramp::fleet
