// Fleet-scale population simulator: millions of chips from ~16 physics runs.
//
// The paper qualifies ONE core per technology node; the questions a vendor
// actually faces are population questions — what fraction of shipped parts
// survives N years under real workloads, variation, and dynamic reliability
// management. FleetSimulator answers them by composing the existing layers:
//
//   pipeline::Evaluator (+ shared StageStore)  →  per-(app, node) physics
//   core::qualify                              →  absolute FIT calibration
//   drm::dvfs_ladder + core::RampModel         →  throttled operating points
//   drm::DrmController / ThermalSensor         →  per-chip DRM feedback loop
//   core::SparePlan                            →  structural redundancy
//   core::LifetimeModelConfig                  →  wear-out threshold shapes
//
// Cost model. The only expensive computes are the per-(app, rung) cells:
// 16 apps × 1 rung for the baseline scenario, evaluated once through the
// content-addressed stage store and shared by EVERY chip — a 10k- or
// 1M-chip fleet costs the same ~16 sim-stage misses (asserted in tests).
// Throttled rungs are derived analytically from the rung-0 cell with
// core::RampModel physics (mechanism-wise FIT ratios at the throttled
// voltage/temperature), so DVFS scenarios add no sim runs either.
// Everything per-chip is O(phases × structures × mechanisms) arithmetic.
//
// Per-chip lifetime model. Each (structure, mechanism) instance accumulates
// damage C(t) = ∫ FIT(τ) dτ (units: expected failures) under its chip's
// piecewise-constant stress trajectory, and fails when C crosses a
// unit-mean threshold drawn from the scenario's lifetime family (Weibull
// shape β reproduces wear-out; exponential reproduces SOFR exactly — for
// constant stress this is precisely the core::LifetimeMonteCarlo /
// RedundantLifetimeMonteCarlo model, which the tests cross-validate).
// Cold spares restart damage at zero with fresh thresholds; the package TC
// instance is not sparable; an optional latent-defect population (Weibull
// β < 1) supplies the bathtub curve's early-life edge.
//
// Determinism. Every stochastic choice of chip k draws from substreams of
// stream_seed(scenario.seed, k) (util::SplitMix64 counter splitting):
// nothing depends on scheduling, sharding, or job count. Chips are
// processed in fixed-size blocks on the ThreadPool and block results are
// merged in block order, so `--jobs 1` and `--jobs N` produce byte-identical
// output, and an A/B policy comparison at one seed sees identical chips
// (common random numbers — the policy delta is pure signal).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fit_tracker.hpp"
#include "fleet/scenario.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace ramp::pipeline {
class StageStore;
}

namespace ramp::fleet {

/// Why a chip died. Wear-out causes mirror core::Mechanism; kInfant is the
/// latent-defect population.
enum class FailureCause : int { kInfant = 0, kEm, kSm, kTddb, kTc };
inline constexpr int kNumFailureCauses = 5;
std::string_view cause_name(FailureCause c);

/// One derived operating point of one workload: the qualified FIT summary a
/// chip consumes while running `app` at ladder rung r, plus the quantities
/// the per-chip loop needs (exposed for tests and benches).
struct CellPoint {
  core::FitSummary fits;      ///< qualified absolute FITs at this rung
  double total_fit = 0.0;     ///< fits.total()
  double junction_k = 0.0;    ///< hottest-structure temperature (sensor input)
  double die_temp_k = 0.0;    ///< area-weighted average die temperature
  /// d ln FIT / dT per mechanism at this rung's conditions (1/K): converts a
  /// per-chip temperature offset into per-mechanism FIT multipliers.
  std::array<double, core::kNumMechanisms> temp_sens{};
  double relative_performance = 1.0;
};

/// One bin of the fleet failure curves. Bins are [t_end - bin, t_end).
struct FleetCurvePoint {
  double t_end_years = 0.0;
  std::uint64_t failures = 0;       ///< chips failing inside the bin
  std::uint64_t survivors = 0;      ///< alive at t_end
  double survival = 1.0;            ///< survivors / chips
  /// Empirical hazard: failures / (survivors at bin start × bin years).
  double hazard_per_year = 0.0;
  std::array<std::uint64_t, kNumFailureCauses> by_cause{};
};

struct FleetSummary {
  std::uint64_t chips = 0;
  std::uint64_t failed = 0;
  double survival_at_horizon = 1.0;
  double mean_failure_age_years = 0.0;  ///< over failed chips (0 when none)
  std::array<std::uint64_t, kNumFailureCauses> failures_by_cause{};
  /// Wear-out failures attributed to the exhausted structure (package TC
  /// and infant failures are not structure-attributable).
  std::array<std::uint64_t, sim::kNumStructures> failures_by_structure{};
  /// Fleet-average relative performance delivered while alive (1.0 = never
  /// throttled) — the cost side of a DRM policy.
  double avg_relative_performance = 1.0;
  std::uint64_t throttle_switches = 0;
  std::uint64_t migrations = 0;
  std::uint64_t spare_activations = 0;
  std::uint64_t monitor_reconfigs = 0;
};

struct FleetResult {
  FleetScenario scenario;
  std::vector<FleetCurvePoint> curve;
  FleetSummary summary;
};

class FleetSimulator {
 public:
  struct Options {
    std::size_t jobs = 1;        ///< pool size when not passing `pool`
    ThreadPool* pool = nullptr;  ///< externally owned pool (overrides jobs)
    /// Shared per-stage memoization store for the physics cells; null = the
    /// simulator follows scenario.cell.stage_cache_enabled (private store).
    std::shared_ptr<pipeline::StageStore> stage_store;
    /// Metrics destination; nullptr → obs::MetricsRegistry::global().
    obs::MetricsRegistry* registry = nullptr;
    /// Chips per pool task; fixed independent of `jobs` so per-block
    /// metrics are stable. Output never depends on it.
    std::uint64_t block_size = 4096;
  };

  explicit FleetSimulator(FleetScenario scenario);
  FleetSimulator(FleetScenario scenario, Options opts);

  /// Runs the scenario. Deterministic: byte-identical curves for one
  /// (scenario, seed) at any job count.
  FleetResult run() const;

  const FleetScenario& scenario() const { return scenario_; }

  /// The per-app ladder of derived operating points, app-major
  /// ([app][rung], apps in scenario order). Computed on first run();
  /// exposed for tests/benches via prepare().
  const std::vector<std::vector<CellPoint>>& cells() const { return cells_; }

  /// Evaluates the physics cells and derived rungs without simulating
  /// chips (idempotent; run() calls it).
  void prepare() const;

 private:
  struct BlockAccum;
  void simulate_block(std::uint64_t first, std::uint64_t count,
                      BlockAccum* acc) const;

  FleetScenario scenario_;
  Options opts_;
  mutable std::vector<std::vector<CellPoint>> cells_;
  mutable std::vector<const workloads::Workload*> apps_;
  mutable std::size_t attack_app_ = 0;   ///< index into apps_
  mutable double chip_delta_t_per_leak_w_ = 0.0;
  mutable double nominal_leak_w_ = 0.0;
  mutable bool prepared_ = false;
};

// ---- deterministic exports -------------------------------------------------

/// Curve CSV ("# ramp_fleet v1" header + scenario echo comment; one row per
/// bin). 17-digit floats: byte-stable across jobs and reruns.
std::string fleet_curve_csv(const FleetResult& r);

/// Summary as one NDJSON object per line: a "summary" line, then one
/// "bin" line per curve point.
std::string fleet_ndjson(const FleetResult& r);

/// Policy A/B comparison of two runs of the SAME scenario/seed with
/// different policies: per-bin survival/hazard for both plus deltas.
std::string fleet_ab_csv(const FleetResult& a, const FleetResult& b);

}  // namespace ramp::fleet
