// Shard-metrics merging for the sharded serve front (`--shards N`).
//
// Each shard worker owns a private registry and stage profile; a `metrics`
// op against the front must answer for the whole fleet, not one worker. The
// front fans `{"op":"metrics","format":"json"}` out to every shard, collects
// the machine-readable snapshots (obs::to_ndjson documents), and merges them
// here: counters and gauges sum across shards, histograms sum per-bucket
// (which is only well-defined when bounds agree — all shards run the same
// binary, so a mismatch is a protocol error, not a degradation), and stage
// profiles accumulate seconds/spans per stage and per cell. The merged
// result renders as one coherent Prometheus payload via obs::to_prometheus.
//
// Pure functions over parsed JSON — no sockets, no fork — so the merge
// logic is unit-testable without standing up a sharded front.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "serve/json.hpp"

namespace ramp::serve {

struct MergedMetrics {
  obs::MetricsSnapshot snap;
  obs::StageProfile profile;
  bool has_profile = false;  ///< any input carried a "stages" section
};

/// Merges the `"snapshot"` objects of `format:"json"` metrics responses.
/// Throws InvalidArgument on a malformed snapshot or on histograms that
/// share a name but disagree on bucket bounds.
MergedMetrics merge_metrics_snapshots(const std::vector<Json>& snapshots);

/// The merged fleet view as Prometheus text (what the front's `metrics` op
/// returns by default).
std::string merged_prometheus(const MergedMetrics& merged);

/// The merged fleet view re-encoded as one to_ndjson document (what the
/// front returns for `format:"json"`).
std::string merged_ndjson(const MergedMetrics& merged);

}  // namespace ramp::serve
