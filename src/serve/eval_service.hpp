// In-process RAMP evaluation service: bounded LRU result cache, optional
// persistent file cache, single-flight request coalescing, and batched
// execution on a ramp::ThreadPool with backpressure.
//
// The serving model: every request canonicalizes to a content-addressed key
// (see request.hpp). A key is answered, in order of preference, from
//   1. the in-memory LRU        (hit          — no work),
//   2. an identical in-flight
//      computation              (coalesced    — shares that future),
//   3. the persistent file
//      cache                    (persist hit  — one disk read, on a worker),
//   4. the full Turandot→PowerTimer→HotSpot→RAMP pipeline (evaluation).
// Results are bitwise-identical to calling pipeline::Evaluator directly —
// caching never changes an answer, only when it is computed.
//
// Threading: submit() may be called from any thread *except* pool workers
// (a worker blocking on backpressure or on another task's future could
// starve the FIFO pool). All shared state sits behind one mutex; evaluation
// itself runs unlocked on the pool.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "pipeline/evaluator.hpp"
#include "serve/request.hpp"
#include "util/lru_cache.hpp"

namespace ramp {
class ThreadPool;
}

namespace ramp::serve {

/// One cached evaluation outcome. Shared (immutable) between the LRU, all
/// coalesced waiters, and the wire encoder, so hits copy a pointer only.
struct EvalOutcome {
  std::string key;
  pipeline::AppTechResult result;
};
using OutcomePtr = std::shared_ptr<const EvalOutcome>;

/// Monotonic counters plus a point-in-time snapshot of service state.
struct ServiceStats {
  std::uint64_t requests = 0;     ///< submit() calls accepted
  std::uint64_t hits = 0;         ///< answered from the in-memory LRU
  std::uint64_t coalesced = 0;    ///< attached to an identical in-flight key
  std::uint64_t misses = 0;       ///< scheduled work (persist hit or eval)
  std::uint64_t persist_hits = 0; ///< misses answered from the file cache
  std::uint64_t evaluations = 0;  ///< pipeline cell evaluations run (a pinned
                                  ///< request may count 2: base + node)
  std::uint64_t failures = 0;     ///< scheduled requests that threw
  std::uint64_t evictions = 0;    ///< LRU entries displaced
  std::size_t queue_depth = 0;    ///< keys scheduled but not yet finished
  std::size_t cache_size = 0;     ///< LRU entries resident
  double p50_latency_ms = 0.0;    ///< over recent scheduled requests
  double p99_latency_ms = 0.0;
};

class EvalService {
 public:
  struct Options {
    std::size_t jobs = 1;            ///< pool size when owning
    ThreadPool* pool = nullptr;      ///< reuse an external pool; overrides jobs
    std::size_t cache_capacity = 256;///< LRU entries
    std::string persist_dir;         ///< "" disables the file cache
    std::size_t max_pending = 64;    ///< backpressure: submit() blocks beyond
    /// Registry the service books its counters in. Defaults to an internal
    /// always-enabled registry: the `stats` wire format is contractual, so
    /// service accounting must not depend on RAMP_METRICS.
    obs::MetricsRegistry* registry = nullptr;
    /// Shared per-stage memoization store evaluations schedule against (see
    /// pipeline/stage_graph.hpp). Null: the service creates one itself when
    /// the base config has stage_cache_enabled, else stage caching is off.
    /// Requests opt out individually with `"stage_cache": false`.
    std::shared_ptr<pipeline::StageStore> stage_store;
  };

  /// How submit() answered a request — reported so front-ends can tell
  /// callers whether their answer was cached.
  enum class Source { kCache, kCoalesced, kScheduled };

  /// Where a scheduled request's time went, filled by the worker that ran
  /// it. Plain (non-atomic) fields: the worker's writes complete before the
  /// packaged_task fulfills the ticket's future, and front-ends only read
  /// after the future is ready, so fulfillment is the happens-before edge.
  /// Coalesced tickets share the scheduling request's cell.
  struct EvalPhases {
    std::chrono::steady_clock::time_point submitted{};  ///< set at submit
    std::uint64_t queue_ns = 0;    ///< submit → worker pickup
    std::uint64_t cache_ns = 0;    ///< persistent-cache probe
    std::uint64_t compute_ns = 0;  ///< pipeline evaluation wall time
    std::uint64_t total_ns = 0;    ///< worker pickup → outcome recorded
    /// compute_ns split by pipeline stage: the worker thread's Profiler
    /// deltas around the evaluation (all zero when RAMP_METRICS is off).
    std::array<std::uint64_t, obs::kNumStages> stage_ns{};
  };

  struct Ticket {
    std::shared_future<OutcomePtr> future;
    Source source = Source::kScheduled;
    /// Non-null iff source != kCache: the breakdown of the scheduled run
    /// answering this ticket. Read only once `future` is ready.
    std::shared_ptr<EvalPhases> phases;
  };

  EvalService(pipeline::EvaluationConfig base, Options opts);
  ~EvalService();  ///< drains every scheduled request before returning

  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  /// Validates and enqueues `req` (op must be kEval). Returns immediately
  /// with a shared future unless the pending-evaluation bound is reached,
  /// in which case it blocks until a slot frees (backpressure). Invalid
  /// requests throw synchronously and consume no slot; failures inside the
  /// pipeline surface from future::get().
  Ticket submit(const EvalRequest& req);

  /// Non-blocking submit for event-loop callers that must never stall
  /// (net::Server). Cache hits and coalesced joins always succeed; a request
  /// that would have to *schedule* work while the pending bound is full
  /// returns false instead of blocking (the caller sheds or retries), and
  /// consumes no slot and books no counters. Same validation as submit().
  bool try_submit(const EvalRequest& req, Ticket* out);

  /// Installs a hook invoked (on a worker thread, outside the service lock)
  /// every time a scheduled key finishes — successfully or not. Event-loop
  /// front-ends use it to wake and re-poll their pending tickets; cache-hit
  /// and coalesced tickets never fire it (their futures are ready at, or
  /// before, submit return). Pass nullptr to clear. Not thread-safe against
  /// in-flight work: install before serving.
  void set_completion_hook(std::function<void()> hook);

  /// submit() + get(): the blocking convenience entry point.
  OutcomePtr evaluate(const EvalRequest& req);

  /// Flight-recorder entry point (`{"op":"timeline"}`): evaluates `req` (op
  /// kEval or kTimeline) with the timeline recorder and watchdog enabled,
  /// bypassing the LRU/persistent caches for the target cell — cached rows
  /// carry no timelines. Runs synchronously on the calling thread (it is a
  /// debug op, not a serving-path citizen); a pinned request still reuses or
  /// populates the cached 180 nm base run. `req.points` overrides the point
  /// budget.
  pipeline::AppTechResult evaluate_timeline(const EvalRequest& req);

  /// Zeroes the service counters and the latency window (the
  /// `metrics_reset` op). Gauges are recomputed on the next event; call
  /// only quiesced (after drain()) so no in-flight task is mid-increment.
  void reset_stats();

  /// Blocks until no scheduled request is in flight.
  void drain();

  ServiceStats stats() const;

  /// The registry holding the service's `ramp_serve_*` metrics (the one
  /// passed in Options, else the internal always-enabled default). Exposed
  /// for exporters — the server's `metrics` op snapshots it.
  const obs::MetricsRegistry& metrics() const { return *registry_; }

  /// Mutable registry access for co-located front-ends (net::Server books
  /// its `ramp_net_*` connection/shed/drain counters here so one `metrics`
  /// op exports service and transport together).
  obs::MetricsRegistry& registry() { return *registry_; }

  /// The shared per-stage store requests schedule against (null when stage
  /// caching is off). The `fleet` op runs its physics cells through it so a
  /// fleet scenario and the eval path never duplicate stage work.
  std::shared_ptr<pipeline::StageStore> stage_store() const {
    return opts_.stage_store;
  }

  const pipeline::EvaluationConfig& config() const { return base_; }
  const Options& options() const { return opts_; }

 private:
  Ticket submit_locked(const EvalRequest& req, const std::string& key,
                       std::unique_lock<std::mutex>& lock);
  OutcomePtr run_scheduled(const std::string& key, const EvalRequest& req,
                           const std::shared_ptr<EvalPhases>& phases);
  pipeline::AppTechResult evaluate_request(
      const EvalRequest& req, const pipeline::EvaluationConfig& cfg);
  OutcomePtr load_persisted(const std::string& key);
  void store_persisted(const EvalOutcome& outcome,
                       const pipeline::EvaluationConfig& cfg);
  std::string persist_path(const std::string& key) const;
  void record_outcome(const std::string& key, const OutcomePtr& outcome,
                      bool from_disk, double latency_ms);

  pipeline::EvaluationConfig base_;
  Options opts_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable slot_free_;
  LruCache<std::string, OutcomePtr> lru_;
  /// In-flight scheduled keys. Coalescing joiners copy both members, so all
  /// waiters on one key share one future and one phase cell.
  struct Inflight {
    std::shared_future<OutcomePtr> future;
    std::shared_ptr<EvalPhases> phases;
  };
  std::unordered_map<std::string, Inflight> inflight_;
  std::vector<std::shared_future<void>> task_handles_;  ///< for drain/dtor
  std::size_t pending_ = 0;
  std::function<void()> completion_hook_;  ///< see set_completion_hook

  // Service accounting lives on the registry as `ramp_serve_*` metrics; all
  // increments happen under mutex_, so ServiceStats snapshots stay exactly
  // as consistent as the plain-integer originals.
  obs::Counter requests_;
  obs::Counter hits_;
  obs::Counter coalesced_;
  obs::Counter misses_;
  obs::Counter persist_hits_;
  obs::Counter evaluations_;
  obs::Counter failures_;
  obs::Counter evictions_;
  obs::Gauge queue_depth_gauge_;
  obs::Gauge cache_entries_gauge_;
  obs::Histogram latency_hist_;
  /// Exact recent latencies for the contractual p50/p99 stats fields (the
  /// histogram above only buckets them for Prometheus consumers).
  std::vector<double> latencies_ms_;  ///< bounded ring, newest overwrite
  std::size_t latency_next_ = 0;
  bool latency_full_ = false;
};

}  // namespace ramp::serve
