// Evaluation request codec: the JSON wire format of `ramp serve` and the
// canonical content-addressed key the EvalService caches under.
//
// Request schema (one JSON object per line):
//   {"op":"eval","app":"gcc","node":"65-1.0",          // required for eval
//    "trace_len":200000,"seed":7,                      // optional overrides
//    "pin_sink":true,                                  // default true
//    "sink_k":356.0,                                   // explicit sink target
//    "stage_cache":true,                               // default true
//    "id":...}                                         // echoed verbatim
//   {"op":"stats"}    {"op":"metrics","format":"prometheus"|"json"}
//   {"op":"metrics_reset"}    {"op":"shutdown"}
//   {"op":"health"}      // readiness probe (uptime, conns, drain state)
//   {"op":"trace_dump"}  // recent request traces as Perfetto JSON
//   {"op":"timeline", ...eval fields..., "points":64}   // flight recorder
//   {"op":"fleet","scenario":"baseline",               // bounded population
//    "chips":2000,"years":10,"bin":1,"policy":"dvfs",  // scenario overrides
//    "node":"90","seed":7,"id":...}                    // (see session.hpp)
//
// `pin_sink` reproduces the paper's constant-sink-temperature scaling rule:
// the workload's 180 nm run pins the heat-sink temperature the scaled node
// holds. An explicit positive `sink_k` overrides pinning; `pin_sink:false`
// with no `sink_k` evaluates with the base 0.8 K/W convection resistance.
//
// Canonicalization: semantically identical requests (defaults spelled out
// or omitted, node aliases, pin flags that cannot matter at 180 nm) map to
// one key, so they coalesce and share cache entries.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "pipeline/evaluator.hpp"
#include "scaling/technology.hpp"
#include "serve/json.hpp"

namespace ramp::serve {

enum class Op {
  kEval,
  kStats,
  kMetrics,
  kMetricsReset,
  kShutdown,
  kTimeline,
  kFleet,
  kHealth,
  kTraceDump,
};

struct EvalRequest {
  Op op = Op::kEval;
  std::string app;
  scaling::TechPoint node = scaling::TechPoint::k180nm;
  bool has_node = false;   ///< whether the request spelled `node` out (the
                           ///< fleet op only overrides its preset's tech
                           ///< when it did)
  std::optional<std::uint64_t> trace_len;  ///< overrides base config
  std::optional<std::uint64_t> seed;       ///< overrides base config
  bool pin_sink = true;
  double sink_k = 0.0;     ///< >0: explicit sink target (overrides pinning)
  /// Whether this request may schedule against the service's shared
  /// pipeline::StageStore. Memoization never changes an answer (staged
  /// output is byte-identical to the monolithic path), so this is excluded
  /// from request_key — it only trades compute for reuse.
  bool stage_cache = true;
  std::optional<std::uint64_t> points;  ///< timeline op: point budget override
  // Fleet-op fields (op == kFleet only). The preset supplies everything not
  // spelled out; `node` and `seed` above are shared with the eval schema.
  std::string fleet_scenario;            ///< preset name; "" = "baseline"
  std::optional<std::uint64_t> chips;    ///< population size override
  std::optional<double> years;           ///< horizon override
  std::optional<double> bin;             ///< curve bin width override
  std::string fleet_policy;              ///< none|dvfs|migration; "" = preset
  std::string id;          ///< raw JSON of the "id" field, "" when absent
  /// Per-request tracing: `"trace":true` asks the server to attach the phase
  /// breakdown to this response; `"trace_id"` names the trace (1..128
  /// printable bytes; server-generated when absent). Neither affects the
  /// result, so both are excluded from request_key.
  bool trace = false;
  std::string trace_id;
  /// Metrics op only: response payload format, "prometheus" (default) or
  /// "json" (the to_ndjson snapshot — what the sharded front fans out to
  /// merge shard registries).
  std::string metrics_format;

  /// The effective evaluation config: `base` with this request's overrides.
  pipeline::EvaluationConfig effective_config(
      const pipeline::EvaluationConfig& base) const;
};

/// Parses one request line; throws InvalidArgument on malformed JSON,
/// unknown ops/fields of the wrong type, or unknown app/node names.
EvalRequest parse_request(const std::string& line);

/// The content-addressed cache key: canonical request fields plus a hash of
/// every result-affecting field of the effective config. Two requests with
/// equal keys are guaranteed byte-identical results.
std::string request_key(const EvalRequest& req,
                        const pipeline::EvaluationConfig& base);

/// Serializes one evaluation result as the wire "result" object.
Json result_json(const pipeline::AppTechResult& r);

}  // namespace ramp::serve
