#include "serve/server.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <istream>
#include <ostream>
#include <string>

#include "serve/eval_service.hpp"
#include "serve/session.hpp"

namespace ramp::serve {

int serve_loop(std::istream& in, std::ostream& out, EvalService& service) {
  Session session(service, [&](const std::string& line) {
    out << line << '\n';
    out.flush();
    return out.good();
  });

  std::string line;
  while (std::getline(in, line)) {
    if (!session.handle_line(line)) return 0;
  }
  session.finish();
  return 0;
}

// ---- signal plumbing -------------------------------------------------------

namespace {
volatile std::sig_atomic_t g_drain_flag = 0;
void drain_handler(int) { request_drain(&g_drain_flag); }
}  // namespace

void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

volatile std::sig_atomic_t* install_drain_handlers() {
  struct sigaction sa{};
  sa.sa_handler = drain_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked syscalls wake with EINTR
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  return &g_drain_flag;
}

// ---- fd-based stdio loop ---------------------------------------------------

int serve_stdio(EvalService& service, const StdioOptions& opts) {
  Session session(service, [&](const std::string& line) {
    std::string buf = line;
    buf += '\n';
    std::size_t off = 0;
    while (off < buf.size()) {
      const ssize_t n =
          ::write(opts.out_fd, buf.data() + off, buf.size() - off);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;  // EPIPE & friends: the client is gone — clean shutdown
    }
    return true;
  });
  if (opts.request_trace) session.enable_request_trace();

  std::string buffer;
  bool discarding = false;  // inside an over-long line: drop to next newline
  bool open = true;
  while (open) {
    if (drain_requested(opts.drain_flag)) break;

    struct pollfd pfd{};
    pfd.fd = opts.in_fd;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (pr < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks the drain flag
      break;
    }
    if (pr == 0) {
      // Timeout: deliver any evals that completed while input was idle —
      // an interactive client is waiting on them — then re-check the flag.
      if (!session.pump()) break;
      continue;
    }

    char chunk[65536];
    const ssize_t n = ::read(opts.in_fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;  // unreadable stdin: treat as EOF
    }
    if (n == 0) break;  // EOF

    std::size_t start = 0;
    for (ssize_t i = 0; i < n && open; ++i) {
      if (chunk[i] != '\n') continue;
      if (discarding) {
        discarding = false;  // the over-long line finally ended; already
      } else {               // answered when the cap tripped
        buffer.append(chunk + start, static_cast<std::size_t>(i) - start);
        if (!session.handle_line(buffer)) open = false;
        buffer.clear();
      }
      start = static_cast<std::size_t>(i) + 1;
    }
    if (open && !discarding && start < static_cast<std::size_t>(n)) {
      buffer.append(chunk + start, static_cast<std::size_t>(n) - start);
      if (buffer.size() > kMaxRequestLine) {
        // Answer now and stop buffering: no client may grow our memory
        // without bound by withholding a newline.
        if (!session.reject_line(oversize_line_message())) open = false;
        buffer.clear();
        discarding = true;
      }
    }
  }

  if (session.shutdown_requested() || session.sink_dead()) return 0;
  // EOF or drain signal: a final unterminated line still counts (a dying
  // client may not have flushed its newline), then answer everything
  // accepted, in order. Nothing accepted is lost.
  if (!buffer.empty() && !discarding) session.handle_line(buffer);
  session.finish();
  return 0;
}

}  // namespace ramp::serve
