#include "serve/server.hpp"

#include <chrono>
#include <deque>
#include <istream>
#include <ostream>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "serve/eval_service.hpp"
#include "serve/json.hpp"

namespace ramp::serve {

namespace {

void set_id(Json& response, const std::string& id) {
  // The id is re-parsed from its captured raw JSON so it round-trips with
  // whatever type the client sent (number, string, object, ...).
  if (!id.empty()) response.set("id", Json::parse(id));
}

Json error_response(const std::string& message, const std::string& id = {}) {
  Json r = Json::object();
  r.set("ok", false);
  set_id(r, id);
  r.set("error", message);
  return r;
}

Json stats_json(const ServiceStats& s) {
  Json j = Json::object();
  j.set("requests", s.requests)
      .set("hits", s.hits)
      .set("coalesced", s.coalesced)
      .set("misses", s.misses)
      .set("persist_hits", s.persist_hits)
      .set("evaluations", s.evaluations)
      .set("failures", s.failures)
      .set("evictions", s.evictions)
      .set("queue_depth", static_cast<std::uint64_t>(s.queue_depth))
      .set("cache_size", static_cast<std::uint64_t>(s.cache_size))
      .set("p50_latency_ms", s.p50_latency_ms)
      .set("p99_latency_ms", s.p99_latency_ms);
  return j;
}

struct PendingEval {
  EvalService::Ticket ticket;
  std::string id;
};

Json eval_response(PendingEval& pending) {
  try {
    const OutcomePtr outcome = pending.ticket.future.get();
    Json r = Json::object();
    r.set("ok", true);
    r.set("op", "eval");
    set_id(r, pending.id);
    r.set("key", outcome->key);
    r.set("cached", pending.ticket.source == EvalService::Source::kCache);
    r.set("coalesced",
          pending.ticket.source == EvalService::Source::kCoalesced);
    r.set("result", result_json(outcome->result));
    return r;
  } catch (const std::exception& e) {
    return error_response(e.what(), pending.id);
  }
}

}  // namespace

int serve_loop(std::istream& in, std::ostream& out, EvalService& service) {
  std::deque<PendingEval> pending;

  const auto respond = [&](const Json& response) {
    out << response.dump() << '\n';
    out.flush();
  };
  // Emits responses for every completed eval at the head of the line;
  // `all` waits the line out (the stats/shutdown barrier and EOF path).
  const auto drain_pending = [&](bool all) {
    while (!pending.empty()) {
      if (!all && pending.front().ticket.future.wait_for(
                      std::chrono::seconds(0)) != std::future_status::ready) {
        break;
      }
      respond(eval_response(pending.front()));
      pending.pop_front();
    }
  };

  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    EvalRequest req;
    try {
      req = parse_request(line);
    } catch (const std::exception& e) {
      drain_pending(/*all=*/true);  // keep responses in request order
      respond(error_response(e.what()));
      continue;
    }

    if (req.op == Op::kShutdown) {
      drain_pending(/*all=*/true);
      Json r = Json::object();
      r.set("ok", true).set("op", "shutdown");
      set_id(r, req.id);
      respond(r);
      return 0;
    }
    if (req.op == Op::kStats) {
      drain_pending(/*all=*/true);
      service.drain();  // quiesce so queue_depth reflects delivered responses
      Json r = Json::object();
      r.set("ok", true).set("op", "stats");
      set_id(r, req.id);
      r.set("stats", stats_json(service.stats()));
      respond(r);
      continue;
    }
    if (req.op == Op::kMetrics) {
      drain_pending(/*all=*/true);
      service.drain();  // same barrier as stats: counters are settled
      // Service metrics (always booked) plus whatever the process-wide
      // registry collected, with the stage profile attached.
      obs::MetricsSnapshot snap = service.metrics().snapshot();
      snap.merge_from(obs::MetricsRegistry::global().snapshot());
      const obs::StageProfile profile = obs::Profiler::global().snapshot();
      Json r = Json::object();
      r.set("ok", true).set("op", "metrics");
      set_id(r, req.id);
      r.set("prometheus", obs::to_prometheus(snap, &profile));
      respond(r);
      continue;
    }
    if (req.op == Op::kMetricsReset) {
      // Same quiesce barrier as stats/metrics, then zero the service
      // counters, the process-wide registry, and the stage profile — so a
      // long-lived server can separate load phases.
      drain_pending(/*all=*/true);
      service.drain();
      service.reset_stats();
      obs::MetricsRegistry::global().reset();
      obs::Profiler::global().reset();
      Json r = Json::object();
      r.set("ok", true).set("op", "metrics_reset");
      set_id(r, req.id);
      respond(r);
      continue;
    }
    if (req.op == Op::kTimeline) {
      // Flight-recorder debug op: runs synchronously on the loop thread
      // (cache-bypassing; see EvalService::evaluate_timeline), so it is a
      // barrier like stats — pending evals are answered first.
      drain_pending(/*all=*/true);
      try {
        const pipeline::AppTechResult res = service.evaluate_timeline(req);
        Json r = Json::object();
        r.set("ok", true).set("op", "timeline");
        set_id(r, req.id);
        r.set("result", result_json(res));
        r.set("cell", res.timeline.cell);
        r.set("intervals", res.timeline.intervals);
        r.set("stride", res.timeline.stride);
        Json points = Json::array();
        for (const auto& p : res.timeline.points) {
          Json pt = Json::object();
          pt.set("interval", p.interval)
              .set("time_s", p.time_s)
              .set("ipc", p.ipc)
              .set("dyn_w", p.dyn_power_w)
              .set("leak_w", p.leak_power_w);
          Json temps = Json::array();
          for (double t : p.temp_k) temps.push(t);
          pt.set("temp_k", std::move(temps));
          Json inst = Json::array();
          for (double f : p.fit_inst) inst.push(f);
          pt.set("fit_inst", std::move(inst));
          Json avg = Json::array();
          for (double f : p.fit_avg) avg.push(f);
          pt.set("fit_avg", std::move(avg));
          points.push(std::move(pt));
        }
        r.set("points", std::move(points));
        Json incidents = Json::array();
        for (const auto& inc : res.incidents) {
          incidents.push(Json::parse(obs::incident_to_json(inc)));
        }
        r.set("incidents", std::move(incidents));
        respond(r);
      } catch (const std::exception& e) {
        respond(error_response(e.what(), req.id));
      }
      continue;
    }

    try {
      pending.push_back({service.submit(req), req.id});
    } catch (const std::exception& e) {
      drain_pending(/*all=*/true);
      respond(error_response(e.what(), req.id));
      continue;
    }
    drain_pending(/*all=*/false);
  }
  drain_pending(/*all=*/true);
  return 0;
}

}  // namespace ramp::serve
