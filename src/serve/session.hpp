// Shared dispatch core of every `ramp serve` front-end.
//
// The stdio loop (server.hpp) and the TCP event loop (net/server.hpp) speak
// the same NDJSON protocol, and this header is the single place its
// semantics live. The pure response builders turn one parsed request into
// one wire response — no I/O, no framing, no threading assumptions — so the
// two front-ends cannot drift apart. `Session` layers the per-client state
// both need on top: the pipelined, strictly in-order response queue.
//
// Response schema (one JSON object per line, in request order):
//   {"ok":true,"op":"eval","id":...,"key":"...","cached":bool,
//    "coalesced":bool,"result":{...}}
//   {"ok":true,"op":"stats","id":...,"stats":{...}}
//   {"ok":true,"op":"metrics","id":...,"prometheus":"..."}
//   {"ok":true,"op":"metrics_reset","id":...}
//   {"ok":true,"op":"timeline","id":...,"result":{...},"points":[...],...}
//   {"ok":true,"op":"fleet","id":...,"scenario":{...},"summary":{...},
//    "curve":[...]}
//   {"ok":true,"op":"shutdown","id":...}
//   {"ok":false,"id":...,"error":"..."}          (malformed line, failed op)
//   {"ok":false,"id":...,"error":"overloaded","overloaded":true}
//                                  (TCP admission control shed the request)
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <string>

#include "serve/eval_service.hpp"
#include "serve/json.hpp"
#include "serve/request.hpp"

namespace ramp::serve {

/// Longest request line any front-end accepts, excluding the newline. A
/// line over the cap is answered with {"ok":false} and the overflow bytes
/// are discarded up to the next newline — the connection survives, and no
/// client can make the server buffer unbounded input.
inline constexpr std::size_t kMaxRequestLine = 1u << 20;

/// The error message every transport uses for a line over kMaxRequestLine.
std::string oversize_line_message();

/// Re-attaches the client's `id` (captured as raw JSON) to a response, so
/// it round-trips with whatever type the client sent.
void set_id(Json& response, const std::string& id);

/// {"ok":false,"id":...,"error":message}
Json error_response(const std::string& message, const std::string& id = {});

/// The admission-control shed response: {"ok":false,...,"overloaded":true}.
/// Clients distinguish it from hard errors by the `overloaded` flag and may
/// retry after backoff.
Json overloaded_response(const std::string& id = {});

/// {"ok":true,"op":"shutdown","id":...}
Json shutdown_response(const EvalRequest& req);

/// The `stats` barrier. `quiesce` runs EvalService::drain() first so
/// queue_depth reflects delivered responses — right for the single-client
/// stdio loop, wrong for a multi-client server (other clients keep the
/// service busy; the TCP path snapshots live counters instead).
Json stats_response(EvalService& service, const EvalRequest& req,
                    bool quiesce);

/// The `metrics` op: service registry merged with the process-wide registry,
/// stage profile attached, rendered as Prometheus text.
Json metrics_response(EvalService& service, const EvalRequest& req,
                      bool quiesce);

/// The `metrics_reset` op: zeroes service counters, the global registry and
/// the stage profile. `quiesce` as in stats_response.
Json metrics_reset_response(EvalService& service, const EvalRequest& req,
                            bool quiesce);

/// The flight-recorder op — synchronous, cache-bypassing, expensive.
/// Front-ends must treat it as a barrier (stdio) or run it off the event
/// loop (TCP aux thread).
Json timeline_response(EvalService& service, const EvalRequest& req);

/// The `fleet` op: runs a bounded fleet::FleetScenario preset with the
/// request's overrides through the service's shared stage store, so the
/// scenario's physics cells and the eval path never duplicate work.
/// Bounded: chips <= 200k, horizon <= 100 years — a serve request must not
/// be able to wedge the process for hours. Synchronous and expensive like
/// timeline (same front-end rules).
Json fleet_response(EvalService& service, const EvalRequest& req);

/// Routes any non-eval, non-shutdown op to its builder above. Never throws:
/// op failures become {"ok":false} responses.
Json control_response(EvalService& service, const EvalRequest& req,
                      bool quiesce);

/// Renders a completed eval ticket (success or failure) as its response.
/// Blocks on the future if it is not ready yet.
Json eval_response(const EvalService::Ticket& ticket, const std::string& id);

/// One client's protocol state: parse, classify, pipeline, respond in
/// order. This is the *blocking* driver used by the stdio front-end and by
/// unit tests — eval submission may block on service backpressure, and
/// barrier ops run synchronously on the calling thread. The TCP event loop
/// uses the builders directly with EvalService::try_submit instead (it must
/// never block), but emits byte-identical responses.
class Session {
 public:
  /// Emits one complete response line (no trailing newline). Return false
  /// when the client is gone (EPIPE, closed socket): the session drops
  /// undelivered responses and reports itself finished.
  using Sink = std::function<bool(const std::string&)>;

  Session(EvalService& service, Sink sink);

  /// Feeds one request line (no newline). Emits zero or more responses —
  /// evals pipeline, barriers flush. Returns false once the session is over
  /// (shutdown op, or the sink reported the client gone); further lines are
  /// ignored.
  bool handle_line(const std::string& line);

  /// Answers a line the transport refused to buffer (over-long) with an
  /// in-order error response, exactly as handle_line would. Returns false
  /// once the session is over.
  bool reject_line(const std::string& message);

  /// Answers pending evals whose results are ready, in order, without
  /// blocking — the stdio loop calls this on poll timeouts so interactive
  /// clients get answers as they complete, not at the next input byte.
  /// Returns false if the sink died.
  bool pump();

  /// EOF/drain: answers every pending eval in order. Idempotent.
  /// Returns false if the sink died.
  bool finish();

  bool shutdown_requested() const { return shutdown_; }
  bool sink_dead() const { return sink_dead_; }
  std::size_t pending() const { return pending_.size(); }

 private:
  struct Pending {
    EvalService::Ticket ticket;
    std::string id;
  };

  bool respond(const Json& response);
  bool drain_pending(bool all);

  EvalService& service_;
  Sink sink_;
  std::deque<Pending> pending_;
  bool shutdown_ = false;
  bool sink_dead_ = false;
};

}  // namespace ramp::serve
