// Shared dispatch core of every `ramp serve` front-end.
//
// The stdio loop (server.hpp) and the TCP event loop (net/server.hpp) speak
// the same NDJSON protocol, and this header is the single place its
// semantics live. The pure response builders turn one parsed request into
// one wire response — no I/O, no framing, no threading assumptions — so the
// two front-ends cannot drift apart. `Session` layers the per-client state
// both need on top: the pipelined, strictly in-order response queue.
//
// Response schema (one JSON object per line, in request order):
//   {"ok":true,"op":"eval","id":...,"key":"...","cached":bool,
//    "coalesced":bool,"result":{...}}
//   {"ok":true,"op":"stats","id":...,"stats":{...}}
//   {"ok":true,"op":"metrics","id":...,"prometheus":"..."}
//   {"ok":true,"op":"metrics_reset","id":...}
//   {"ok":true,"op":"timeline","id":...,"result":{...},"points":[...],...}
//   {"ok":true,"op":"fleet","id":...,"scenario":{...},"summary":{...},
//    "curve":[...]}
//   {"ok":true,"op":"health","id":...,"mode":"...","uptime_s":...,...}
//   {"ok":true,"op":"trace_dump","id":...,"count":N,"perfetto":"..."}
//   {"ok":true,"op":"shutdown","id":...}
//   {"ok":false,"id":...,"error":"..."}          (malformed line, failed op)
//   {"ok":false,"id":...,"error":"overloaded","overloaded":true}
//                                  (TCP admission control shed the request)
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <string>

#include "obs/reqtrace.hpp"
#include "serve/eval_service.hpp"
#include "serve/json.hpp"
#include "serve/request.hpp"

namespace ramp::serve {

/// Longest request line any front-end accepts, excluding the newline. A
/// line over the cap is answered with {"ok":false} and the overflow bytes
/// are discarded up to the next newline — the connection survives, and no
/// client can make the server buffer unbounded input.
inline constexpr std::size_t kMaxRequestLine = 1u << 20;

/// The error message every transport uses for a line over kMaxRequestLine.
std::string oversize_line_message();

/// Re-attaches the client's `id` (captured as raw JSON) to a response, so
/// it round-trips with whatever type the client sent.
void set_id(Json& response, const std::string& id);

/// {"ok":false,"id":...,"error":message}
Json error_response(const std::string& message, const std::string& id = {});

/// The admission-control shed response: {"ok":false,...,"overloaded":true}.
/// Clients distinguish it from hard errors by the `overloaded` flag and may
/// retry after backoff.
Json overloaded_response(const std::string& id = {});

/// {"ok":true,"op":"shutdown","id":...}
Json shutdown_response(const EvalRequest& req);

/// The `stats` barrier. `quiesce` runs EvalService::drain() first so
/// queue_depth reflects delivered responses — right for the single-client
/// stdio loop, wrong for a multi-client server (other clients keep the
/// service busy; the TCP path snapshots live counters instead).
Json stats_response(EvalService& service, const EvalRequest& req,
                    bool quiesce);

/// The `metrics` op: service registry merged with the process-wide registry,
/// stage profile attached, rendered as Prometheus text.
Json metrics_response(EvalService& service, const EvalRequest& req,
                      bool quiesce);

/// The `metrics_reset` op: zeroes service counters, the global registry and
/// the stage profile. `quiesce` as in stats_response.
Json metrics_reset_response(EvalService& service, const EvalRequest& req,
                            bool quiesce);

/// What the `health` op reports — the front-end owning the transport fills
/// this in (the stdio loop and the TCP server know different things).
struct HealthInfo {
  std::string mode;  ///< "stdio", "tcp", "front" (sharded)
  double uptime_s = 0.0;
  std::uint64_t accepted_connections = 0;
  std::uint64_t active_connections = 0;
  bool draining = false;
  std::uint64_t shards = 1;
};

/// {"ok":true,"op":"health","id":...,"mode":...,"uptime_s":...,
///  "accepted_connections":...,"active_connections":...,"draining":bool,
///  "shards":...} — the load-balancer readiness probe.
Json health_response(const EvalRequest& req, const HealthInfo& info);

/// One request trace as the `"trace"` object attached to a traced response:
/// {"trace_id","op","label"?,"start_ns","total_ns","cached","coalesced",
///  "phases":{all eight},"stages":{non-zero only}?}. The in-response flush
/// phase reads 0 — a response cannot contain its own write time; the full
/// record (with flush) goes to the ring and the slow log.
Json trace_object(const obs::RequestTrace& rec);

/// The `trace_dump` op: the ring's resident records rendered as Perfetto-
/// loadable Chrome-trace JSON (request lanes; see obs/reqtrace.hpp):
/// {"ok":true,"op":"trace_dump","id":...,"count":N,"capacity":C,
///  "total_traced":T,"perfetto":"<json document>"}.
Json trace_dump_response(const EvalRequest& req, const obs::TraceRing& ring);

/// The flight-recorder op — synchronous, cache-bypassing, expensive.
/// Front-ends must treat it as a barrier (stdio) or run it off the event
/// loop (TCP aux thread).
Json timeline_response(EvalService& service, const EvalRequest& req);

/// The `fleet` op: runs a bounded fleet::FleetScenario preset with the
/// request's overrides through the service's shared stage store, so the
/// scenario's physics cells and the eval path never duplicate work.
/// Bounded: chips <= 200k, horizon <= 100 years — a serve request must not
/// be able to wedge the process for hours. Synchronous and expensive like
/// timeline (same front-end rules).
Json fleet_response(EvalService& service, const EvalRequest& req);

/// Routes any non-eval, non-shutdown op to its builder above. Never throws:
/// op failures become {"ok":false} responses.
Json control_response(EvalService& service, const EvalRequest& req,
                      bool quiesce);

/// Renders a completed eval ticket (success or failure) as its response.
/// Blocks on the future if it is not ready yet.
Json eval_response(const EvalService::Ticket& ticket, const std::string& id);

/// One client's protocol state: parse, classify, pipeline, respond in
/// order. This is the *blocking* driver used by the stdio front-end and by
/// unit tests — eval submission may block on service backpressure, and
/// barrier ops run synchronously on the calling thread. The TCP event loop
/// uses the builders directly with EvalService::try_submit instead (it must
/// never block), but emits byte-identical responses.
class Session {
 public:
  /// Emits one complete response line (no trailing newline). Return false
  /// when the client is gone (EPIPE, closed socket): the session drops
  /// undelivered responses and reports itself finished.
  using Sink = std::function<bool(const std::string&)>;

  Session(EvalService& service, Sink sink);

  /// Feeds one request line (no newline). Emits zero or more responses —
  /// evals pipeline, barriers flush. Returns false once the session is over
  /// (shutdown op, or the sink reported the client gone); further lines are
  /// ignored.
  bool handle_line(const std::string& line);

  /// Answers a line the transport refused to buffer (over-long) with an
  /// in-order error response, exactly as handle_line would. Returns false
  /// once the session is over.
  bool reject_line(const std::string& message);

  /// Answers pending evals whose results are ready, in order, without
  /// blocking — the stdio loop calls this on poll timeouts so interactive
  /// clients get answers as they complete, not at the next input byte.
  /// Returns false if the sink died.
  bool pump();

  /// EOF/drain: answers every pending eval in order. Idempotent.
  /// Returns false if the sink died.
  bool finish();

  /// Switches on per-request tracing for every eval this session handles
  /// (the `--request-trace` flag): each request pays its phase clock pairs
  /// and lands in the trace ring whether or not it asked for `"trace"`.
  /// Off (the default), only requests with `"trace":true` are timed — and
  /// their read/parse phases report 0, because the decision to read the
  /// clock can only happen after parsing.
  void enable_request_trace() { trace_all_ = true; }

  /// Installs the `health` op's data source. Without one the session
  /// answers with stdio defaults (mode "stdio", one connection, no drain).
  void set_health_provider(std::function<HealthInfo()> provider) {
    health_provider_ = std::move(provider);
  }

  /// The recent-request ring behind the `trace_dump` op.
  const obs::TraceRing& trace_ring() const { return ring_; }

  bool shutdown_requested() const { return shutdown_; }
  bool sink_dead() const { return sink_dead_; }
  std::size_t pending() const { return pending_.size(); }

 private:
  struct Pending {
    EvalService::Ticket ticket;
    std::string id;
    bool traced = false;         ///< fill a RequestTrace when answering
    bool want_response = false;  ///< attach the trace object to the response
    std::string trace_id;
    std::string label;  ///< "app@node"
    std::chrono::steady_clock::time_point accepted{};
    std::uint64_t read_parse_ns = 0;
    std::uint64_t admission_ns = 0;
  };

  bool respond(const Json& response);
  bool drain_pending(bool all);
  Json answer_pending(const Pending& p);

  EvalService& service_;
  Sink sink_;
  std::deque<Pending> pending_;
  bool shutdown_ = false;
  bool sink_dead_ = false;

  bool trace_all_ = false;
  obs::TraceRing ring_{256};
  std::uint64_t trace_seq_ = 0;
  std::function<HealthInfo()> health_provider_;
  std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
};

}  // namespace ramp::serve
