#include "serve/metrics_merge.hpp"

#include <cstdint>
#include <map>
#include <utility>

#include "obs/export.hpp"
#include "util/error.hpp"

namespace ramp::serve {

namespace {

int stage_index(const std::string& name) {
  for (int i = 0; i < obs::kNumStages; ++i) {
    if (name == obs::stage_name(static_cast<obs::Stage>(i))) return i;
  }
  throw InvalidArgument("unknown stage '" + name + "' in metrics snapshot");
}

std::uint64_t as_count(const Json& v, const char* what) {
  const double d = v.as_number(what);
  RAMP_REQUIRE(d >= 0.0, std::string(what) + " must be non-negative");
  return static_cast<std::uint64_t>(d);
}

void merge_histogram(std::map<std::string, obs::HistogramSnapshot>& into,
                     const std::string& name, const Json& h) {
  const Json* bounds = h.find("bounds");
  const Json* counts = h.find("counts");
  const Json* sum = h.find("sum");
  const Json* count = h.find("count");
  RAMP_REQUIRE(bounds != nullptr && counts != nullptr && sum != nullptr &&
                   count != nullptr,
               "histogram '" + name + "' needs bounds/counts/sum/count");

  auto [it, inserted] = into.try_emplace(name);
  obs::HistogramSnapshot& dst = it->second;
  if (inserted) {
    dst.name = name;
    for (const Json& b : bounds->elements()) {
      dst.bounds.push_back(b.as_number("bound"));
    }
    dst.counts.assign(counts->elements().size(), 0);
  } else {
    // Per-bucket sums are only meaningful over one bucket layout. Shards
    // run the same binary, so a mismatch means the inputs are not shards
    // of one front — refuse rather than fabricate a histogram.
    RAMP_REQUIRE(bounds->elements().size() == dst.bounds.size(),
                 "histogram '" + name + "' bounds differ across shards");
    for (std::size_t b = 0; b < dst.bounds.size(); ++b) {
      RAMP_REQUIRE(bounds->elements()[b].as_number("bound") == dst.bounds[b],
                   "histogram '" + name + "' bounds differ across shards");
    }
  }
  RAMP_REQUIRE(counts->elements().size() == dst.counts.size(),
               "histogram '" + name + "' bucket count mismatch");
  for (std::size_t b = 0; b < dst.counts.size(); ++b) {
    dst.counts[b] += as_count(counts->elements()[b], "bucket count");
  }
  dst.sum += sum->as_number("sum");
  dst.count += as_count(*count, "count");
}

}  // namespace

MergedMetrics merge_metrics_snapshots(const std::vector<Json>& snapshots) {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, obs::HistogramSnapshot> histograms;
  MergedMetrics out;

  for (const Json& s : snapshots) {
    RAMP_REQUIRE(s.is_object(), "metrics snapshot must be a JSON object");
    if (const Json* c = s.find("counters")) {
      for (const auto& [name, v] : c->items()) {
        counters[name] += as_count(v, "counter");
      }
    }
    if (const Json* g = s.find("gauges")) {
      for (const auto& [name, v] : g->items()) {
        // Gauges sum: every ramp gauge is a per-shard quantity (queue
        // depth, cache entries, buffered bytes) whose fleet meaning is the
        // total across workers.
        gauges[name] += v.as_number("gauge");
      }
    }
    if (const Json* h = s.find("histograms")) {
      for (const auto& [name, v] : h->items()) {
        merge_histogram(histograms, name, v);
      }
    }
    if (const Json* stages = s.find("stages")) {
      out.has_profile = true;
      for (const auto& [name, v] : stages->items()) {
        auto& acc =
            out.profile.totals[static_cast<std::size_t>(stage_index(name))];
        if (const Json* sec = v.find("seconds"))
          acc.seconds += sec->as_number("seconds");
        if (const Json* spans = v.find("spans"))
          acc.spans += as_count(*spans, "spans");
      }
    }
    if (const Json* cells = s.find("cells")) {
      for (const auto& [cell, per_stage] : cells->items()) {
        auto& dst = out.profile.cells[cell];
        for (const auto& [name, v] : per_stage.items()) {
          auto& acc = dst[static_cast<std::size_t>(stage_index(name))];
          if (const Json* sec = v.find("seconds"))
            acc.seconds += sec->as_number("seconds");
          if (const Json* spans = v.find("spans"))
            acc.spans += as_count(*spans, "spans");
        }
      }
    }
  }

  for (auto& [name, v] : counters) out.snap.counters.emplace_back(name, v);
  for (auto& [name, v] : gauges) out.snap.gauges.emplace_back(name, v);
  for (auto& [name, h] : histograms) {
    out.snap.histograms.push_back(std::move(h));
  }
  return out;
}

std::string merged_prometheus(const MergedMetrics& merged) {
  return obs::to_prometheus(merged.snap,
                            merged.has_profile ? &merged.profile : nullptr);
}

std::string merged_ndjson(const MergedMetrics& merged) {
  return obs::to_ndjson(merged.snap,
                        merged.has_profile ? &merged.profile : nullptr);
}

}  // namespace ramp::serve
