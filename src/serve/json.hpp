// Minimal JSON value, parser, and serializer for the serve layer's
// newline-delimited request/response protocol.
//
// Deliberately small: objects preserve insertion order (stable, diffable
// responses), numbers are doubles serialized with round-trip precision
// (integers below 2^53 print without a decimal point), and parse errors
// throw ramp::InvalidArgument with a byte offset. No external dependency —
// the container image pins the toolchain, so we vendor ~250 lines instead.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace ramp::serve {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Json() = default;                      ///< null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(std::uint64_t v) : Json(static_cast<double>(v)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}

  static Json object() { Json j; j.type_ = Type::kObject; return j; }
  static Json array() { Json j; j.type_ = Type::kArray; return j; }

  /// Parses exactly one JSON document (trailing whitespace allowed);
  /// throws InvalidArgument on any syntax error.
  static Json parse(const std::string& text);

  /// Compact single-line serialization.
  std::string dump() const;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw InvalidArgument on a type mismatch, naming
  /// `what` (usually the field being read) in the message.
  bool as_bool(const std::string& what = "value") const;
  double as_number(const std::string& what = "value") const;
  const std::string& as_string(const std::string& what = "value") const;

  /// Object lookup: pointer to the value, or nullptr when absent (or when
  /// this value is not an object).
  const Json* find(const std::string& key) const;

  /// Appends a key (objects keep insertion order; duplicate keys are not
  /// checked — last one wins on lookup-by-find of the first occurrence).
  Json& set(std::string key, Json value);
  /// Appends an array element.
  Json& push(Json value);

  const std::vector<std::pair<std::string, Json>>& items() const { return obj_; }
  const std::vector<Json>& elements() const { return arr_; }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<std::pair<std::string, Json>> obj_;
  std::vector<Json> arr_;
};

}  // namespace ramp::serve
