// The `ramp serve` front-end: newline-delimited JSON over a stream pair.
//
// One request per input line, one response per line, in request order.
// Eval requests are *pipelined*: each is submitted to the EvalService
// immediately (so identical in-flight requests coalesce and distinct ones
// batch onto the pool), and responses are flushed as the head of the line
// completes. `stats` and `shutdown` act as barriers — they drain every
// outstanding eval response first, keeping the one-line-in/one-line-out
// pairing exact for scripted drivers.
//
// Responses:
//   {"ok":true,"op":"eval","id":...,"key":"...","cached":bool,
//    "coalesced":bool,"result":{...}}
//   {"ok":true,"op":"stats","id":...,"stats":{...}}
//   {"ok":true,"op":"shutdown","id":...}
//   {"ok":false,"id":...,"error":"..."}        (malformed line or failed eval)
#pragma once

#include <iosfwd>

namespace ramp::serve {

class EvalService;

/// Runs the service loop until `shutdown` or EOF on `in`. Returns the
/// process exit code (0 on clean shutdown/EOF). Never throws for per-request
/// problems — those become {"ok":false} responses.
int serve_loop(std::istream& in, std::ostream& out, EvalService& service);

}  // namespace ramp::serve
