// The `ramp serve` stdio front-end: newline-delimited JSON over a stream
// pair, built on the shared serve::Session dispatch core (session.hpp holds
// the protocol; the TCP front-end lives in net/server.hpp).
//
// One request per input line, one response per line, in request order.
// Eval requests are *pipelined*: each is submitted to the EvalService
// immediately (so identical in-flight requests coalesce and distinct ones
// batch onto the pool), and responses are flushed as the head of the line
// completes. `stats`, `metrics`, `timeline`, `fleet` and `shutdown` act as
// barriers — they drain every outstanding eval response first, keeping the
// one-line-in/one-line-out pairing exact for scripted drivers.
//
// Client-death hardening (serve_stdio): the CLI path must survive its
// client dying mid-stream — `ramp serve | head -1` is a clean shutdown, not
// a crash. SIGPIPE is ignored process-wide (install via ignore_sigpipe());
// a write failing with EPIPE drops the session and exits 0. SIGINT/SIGTERM
// request a *graceful drain*: stop reading, answer every accepted request,
// flush, exit 0 — nothing accepted is ever lost.
#pragma once

#include <csignal>
#include <iosfwd>

namespace ramp::serve {

class EvalService;

/// Runs the service loop until `shutdown` or EOF on `in`. Returns the
/// process exit code (0 on clean shutdown/EOF). Never throws for per-request
/// problems — those become {"ok":false} responses. This is the
/// stream-oriented driver unit tests use; the CLI uses serve_stdio below so
/// signals and client death behave.
int serve_loop(std::istream& in, std::ostream& out, EvalService& service);

/// Ignores SIGPIPE process-wide so a dead client surfaces as an EPIPE write
/// error (handled) instead of killing the process. Idempotent.
void ignore_sigpipe();

/// Installs SIGINT + SIGTERM handlers that set the returned flag (async-
/// signal-safely) and returns it. The stdio and TCP serve loops poll it to
/// start a graceful drain. Call once, before serving.
volatile std::sig_atomic_t* install_drain_handlers();

/// Atomic accessors for a drain flag. A plain sig_atomic_t store pairs fine
/// with a signal handler interrupting its own thread, but tests (and any
/// supervisor thread) set the flag from ANOTHER thread — these keep that
/// well-defined (and ThreadSanitizer-visible) without giving up
/// async-signal-safety: a relaxed atomic store on int is both.
inline void request_drain(volatile std::sig_atomic_t* flag) {
  if (flag != nullptr) __atomic_store_n(flag, 1, __ATOMIC_RELAXED);
}
inline bool drain_requested(const volatile std::sig_atomic_t* flag) {
  return flag != nullptr && __atomic_load_n(flag, __ATOMIC_RELAXED) != 0;
}

struct StdioOptions {
  int in_fd = 0;
  int out_fd = 1;
  /// When non-null and set (by a signal handler), the loop stops reading,
  /// answers everything accepted, and returns 0.
  volatile std::sig_atomic_t* drain_flag = nullptr;
  /// Per-request tracing for every eval (`--request-trace`): phase clocks
  /// on, records land in the session's trace ring. Off: only requests with
  /// `"trace":true` are timed.
  bool request_trace = false;
};

/// The hardened fd-based stdio loop the CLI runs: poll()-driven reads (so a
/// drain signal is noticed within ~100 ms even with no input), bounded line
/// buffering (serve::kMaxRequestLine), EPIPE-as-clean-shutdown, graceful
/// drain on signal. Returns the process exit code.
int serve_stdio(EvalService& service, const StdioOptions& opts);

}  // namespace ramp::serve
