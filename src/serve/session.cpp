#include "serve/session.hpp"

#include <chrono>
#include <cstdio>
#include <exception>
#include <utility>

#include "fleet/fleet_simulator.hpp"
#include "fleet/scenario.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_export.hpp"
#include "scaling/technology.hpp"
#include "util/error.hpp"

namespace ramp::serve {

namespace {

std::uint64_t delta_ns(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return b <= a ? std::uint64_t{0}
                : static_cast<std::uint64_t>(
                      std::chrono::nanoseconds(b - a).count());
}

Json stats_json(const ServiceStats& s) {
  Json j = Json::object();
  j.set("requests", s.requests)
      .set("hits", s.hits)
      .set("coalesced", s.coalesced)
      .set("misses", s.misses)
      .set("persist_hits", s.persist_hits)
      .set("evaluations", s.evaluations)
      .set("failures", s.failures)
      .set("evictions", s.evictions)
      .set("queue_depth", static_cast<std::uint64_t>(s.queue_depth))
      .set("cache_size", static_cast<std::uint64_t>(s.cache_size))
      .set("p50_latency_ms", s.p50_latency_ms)
      .set("p99_latency_ms", s.p99_latency_ms);
  return j;
}

Json cause_counts_json(
    const std::array<std::uint64_t, fleet::kNumFailureCauses>& counts) {
  Json j = Json::object();
  for (int c = 0; c < fleet::kNumFailureCauses; ++c) {
    j.set(std::string(fleet::cause_name(static_cast<fleet::FailureCause>(c))),
          counts[static_cast<std::size_t>(c)]);
  }
  return j;
}

}  // namespace

std::string oversize_line_message() {
  return "request line exceeds " + std::to_string(kMaxRequestLine) +
         " bytes";
}

void set_id(Json& response, const std::string& id) {
  // The id is re-parsed from its captured raw JSON so it round-trips with
  // whatever type the client sent (number, string, object, ...).
  if (!id.empty()) response.set("id", Json::parse(id));
}

Json error_response(const std::string& message, const std::string& id) {
  Json r = Json::object();
  r.set("ok", false);
  set_id(r, id);
  r.set("error", message);
  return r;
}

Json overloaded_response(const std::string& id) {
  Json r = error_response("overloaded", id);
  r.set("overloaded", true);
  return r;
}

Json shutdown_response(const EvalRequest& req) {
  Json r = Json::object();
  r.set("ok", true).set("op", "shutdown");
  set_id(r, req.id);
  return r;
}

Json stats_response(EvalService& service, const EvalRequest& req,
                    bool quiesce) {
  if (quiesce) service.drain();  // queue_depth reflects delivered responses
  Json r = Json::object();
  r.set("ok", true).set("op", "stats");
  set_id(r, req.id);
  r.set("stats", stats_json(service.stats()));
  return r;
}

Json metrics_response(EvalService& service, const EvalRequest& req,
                      bool quiesce) {
  if (quiesce) service.drain();  // counters are settled
  // Service metrics (always booked) plus whatever the process-wide registry
  // collected, with the stage profile attached.
  obs::MetricsSnapshot snap = service.metrics().snapshot();
  snap.merge_from(obs::MetricsRegistry::global().snapshot());
  const obs::StageProfile profile = obs::Profiler::global().snapshot();
  Json r = Json::object();
  r.set("ok", true).set("op", "metrics");
  set_id(r, req.id);
  if (req.metrics_format == "json") {
    // The machine-mergeable form: raw bucket counts and counters, which is
    // what the sharded front fans out to sum shard registries (Prometheus
    // text would lose the per-bucket structure behind formatting).
    r.set("snapshot", Json::parse(obs::to_ndjson(snap, &profile)));
  } else {
    r.set("prometheus", obs::to_prometheus(snap, &profile));
  }
  return r;
}

Json health_response(const EvalRequest& req, const HealthInfo& info) {
  Json r = Json::object();
  r.set("ok", true).set("op", "health");
  set_id(r, req.id);
  r.set("mode", info.mode)
      .set("uptime_s", info.uptime_s)
      .set("accepted_connections", info.accepted_connections)
      .set("active_connections", info.active_connections)
      .set("draining", info.draining)
      .set("shards", info.shards);
  return r;
}

Json trace_object(const obs::RequestTrace& rec) {
  Json t = Json::object();
  t.set("trace_id", rec.trace_id).set("op", rec.op);
  if (!rec.label.empty()) t.set("label", rec.label);
  t.set("start_ns", rec.start_ns)
      .set("total_ns", rec.total_ns)
      .set("cached", rec.cached)
      .set("coalesced", rec.coalesced);
  Json phases = Json::object();
  for (int p = 0; p < obs::kNumPhases; ++p) {
    phases.set(std::string(obs::phase_name(static_cast<obs::Phase>(p))),
               rec.phase_ns[static_cast<std::size_t>(p)]);
  }
  t.set("phases", std::move(phases));
  bool any_stage = false;
  for (const auto ns : rec.stage_ns) any_stage = any_stage || ns != 0;
  if (any_stage) {
    Json stages = Json::object();
    for (int s = 0; s < obs::kNumStages; ++s) {
      const auto ns = rec.stage_ns[static_cast<std::size_t>(s)];
      if (ns == 0) continue;
      stages.set(std::string(obs::stage_name(static_cast<obs::Stage>(s))), ns);
    }
    t.set("stages", std::move(stages));
  }
  return t;
}

Json trace_dump_response(const EvalRequest& req, const obs::TraceRing& ring) {
  const std::vector<obs::RequestTrace> recs = ring.snapshot();
  Json r = Json::object();
  r.set("ok", true).set("op", "trace_dump");
  set_id(r, req.id);
  r.set("count", static_cast<std::uint64_t>(recs.size()))
      .set("capacity", static_cast<std::uint64_t>(ring.capacity()))
      .set("total_traced", ring.total_pushed())
      .set("perfetto", obs::to_chrome_trace(obs::request_lanes(recs),
                                            "ramp-serve requests"));
  return r;
}

Json metrics_reset_response(EvalService& service, const EvalRequest& req,
                            bool quiesce) {
  // Zero the service counters, the process-wide registry, and the stage
  // profile — so a long-lived server can separate load phases.
  if (quiesce) service.drain();
  service.reset_stats();
  obs::MetricsRegistry::global().reset();
  obs::Profiler::global().reset();
  Json r = Json::object();
  r.set("ok", true).set("op", "metrics_reset");
  set_id(r, req.id);
  return r;
}

Json timeline_response(EvalService& service, const EvalRequest& req) {
  try {
    const pipeline::AppTechResult res = service.evaluate_timeline(req);
    Json r = Json::object();
    r.set("ok", true).set("op", "timeline");
    set_id(r, req.id);
    r.set("result", result_json(res));
    r.set("cell", res.timeline.cell);
    r.set("intervals", res.timeline.intervals);
    r.set("stride", res.timeline.stride);
    Json points = Json::array();
    for (const auto& p : res.timeline.points) {
      Json pt = Json::object();
      pt.set("interval", p.interval)
          .set("time_s", p.time_s)
          .set("ipc", p.ipc)
          .set("dyn_w", p.dyn_power_w)
          .set("leak_w", p.leak_power_w);
      Json temps = Json::array();
      for (double t : p.temp_k) temps.push(t);
      pt.set("temp_k", std::move(temps));
      Json inst = Json::array();
      for (double f : p.fit_inst) inst.push(f);
      pt.set("fit_inst", std::move(inst));
      Json avg = Json::array();
      for (double f : p.fit_avg) avg.push(f);
      pt.set("fit_avg", std::move(avg));
      points.push(std::move(pt));
    }
    r.set("points", std::move(points));
    Json incidents = Json::array();
    for (const auto& inc : res.incidents) {
      incidents.push(Json::parse(obs::incident_to_json(inc)));
    }
    r.set("incidents", std::move(incidents));
    return r;
  } catch (const std::exception& e) {
    return error_response(e.what(), req.id);
  }
}

Json fleet_response(EvalService& service, const EvalRequest& req) {
  try {
    fleet::FleetScenario sc = fleet::FleetScenario::preset(
        req.fleet_scenario.empty() ? "baseline" : req.fleet_scenario);
    if (req.chips) sc.chips = *req.chips;
    if (req.years) sc.horizon_years = *req.years;
    if (req.bin) sc.curve_bin_years = *req.bin;
    if (!req.fleet_policy.empty())
      sc.policy = fleet::parse_policy(req.fleet_policy);
    if (req.has_node) sc.tech = req.node;
    if (req.seed) sc.seed = *req.seed;
    // The scenario's physics cells run with the service's base config and
    // through the service's stage store, so a fleet op and the eval path
    // share per-stage work instead of duplicating it.
    sc.cell = service.config();
    // A serve request must not be able to wedge the process for hours: the
    // CLI handles unbounded studies, the wire op handles bounded ones.
    RAMP_REQUIRE(sc.chips <= 200'000,
                 "fleet op caps chips at 200000 (use `ramp fleet` for "
                 "larger populations)");
    RAMP_REQUIRE(sc.horizon_years <= 100.0, "fleet op caps years at 100");
    sc.validate();

    fleet::FleetSimulator::Options opts;
    opts.jobs = service.options().jobs;
    opts.stage_store = service.stage_store();
    opts.registry = &service.registry();
    const fleet::FleetResult res = fleet::FleetSimulator(sc, opts).run();

    Json scenario = Json::object();
    scenario.set("name", sc.name)
        .set("chips", sc.chips)
        .set("years", sc.horizon_years)
        .set("bin", sc.curve_bin_years)
        .set("policy", std::string(fleet::policy_name(sc.policy)))
        .set("node", std::string(scaling::tech_token(sc.tech)))
        .set("seed", sc.seed);

    const fleet::FleetSummary& s = res.summary;
    Json summary = Json::object();
    summary.set("chips", s.chips)
        .set("failed", s.failed)
        .set("survival_at_horizon", s.survival_at_horizon)
        .set("mean_failure_age_years", s.mean_failure_age_years)
        .set("by_cause", cause_counts_json(s.failures_by_cause))
        .set("avg_relative_performance", s.avg_relative_performance)
        .set("throttle_switches", s.throttle_switches)
        .set("migrations", s.migrations)
        .set("spare_activations", s.spare_activations)
        .set("monitor_reconfigs", s.monitor_reconfigs);

    Json curve = Json::array();
    for (const auto& p : res.curve) {
      Json bin = Json::object();
      bin.set("t_end_years", p.t_end_years)
          .set("failures", p.failures)
          .set("survivors", p.survivors)
          .set("survival", p.survival)
          .set("hazard_per_year", p.hazard_per_year)
          .set("by_cause", cause_counts_json(p.by_cause));
      curve.push(std::move(bin));
    }

    Json r = Json::object();
    r.set("ok", true).set("op", "fleet");
    set_id(r, req.id);
    r.set("scenario", std::move(scenario));
    r.set("summary", std::move(summary));
    r.set("curve", std::move(curve));
    return r;
  } catch (const std::exception& e) {
    return error_response(e.what(), req.id);
  }
}

Json control_response(EvalService& service, const EvalRequest& req,
                      bool quiesce) {
  switch (req.op) {
    case Op::kStats: return stats_response(service, req, quiesce);
    case Op::kMetrics: return metrics_response(service, req, quiesce);
    case Op::kMetricsReset:
      return metrics_reset_response(service, req, quiesce);
    case Op::kTimeline: return timeline_response(service, req);
    case Op::kFleet: return fleet_response(service, req);
    case Op::kHealth:
    case Op::kTraceDump:
      // Per-transport state (connections, trace ring) lives in the
      // front-end, which answers these itself before dispatching here.
      return error_response("internal: op is handled by the front-end",
                            req.id);
    case Op::kEval:
    case Op::kShutdown:
      break;
  }
  return error_response("internal: not a control op", req.id);
}

Json eval_response(const EvalService::Ticket& ticket, const std::string& id) {
  try {
    const OutcomePtr outcome = ticket.future.get();
    Json r = Json::object();
    r.set("ok", true);
    r.set("op", "eval");
    set_id(r, id);
    r.set("key", outcome->key);
    r.set("cached", ticket.source == EvalService::Source::kCache);
    r.set("coalesced", ticket.source == EvalService::Source::kCoalesced);
    r.set("result", result_json(outcome->result));
    return r;
  } catch (const std::exception& e) {
    return error_response(e.what(), id);
  }
}

// ---- Session ---------------------------------------------------------------

Session::Session(EvalService& service, Sink sink)
    : service_(service), sink_(std::move(sink)) {}

bool Session::respond(const Json& response) {
  if (sink_dead_) return false;
  if (!sink_(response.dump())) {
    sink_dead_ = true;
    pending_.clear();  // nobody left to deliver to; futures self-complete
    return false;
  }
  return true;
}

bool Session::drain_pending(bool all) {
  while (!pending_.empty()) {
    if (!all && pending_.front().ticket.future.wait_for(
                    std::chrono::seconds(0)) != std::future_status::ready) {
      break;
    }
    if (!respond(answer_pending(pending_.front()))) return false;
    pending_.pop_front();
  }
  return true;
}

Json Session::answer_pending(const Pending& p) {
  if (!p.traced) return eval_response(p.ticket, p.id);

  // Barrier drains reach here with the ticket possibly still in flight;
  // finish that wait before the clock pair, or the blocking get() inside
  // eval_response would be billed to the serialize phase (the wait is
  // already attributed as queue/compute by the worker's cell).
  p.ticket.future.wait();
  // The ready/after pair times serialization; everything before it comes
  // from the pending record and the worker's phase cell.
  const auto ready = std::chrono::steady_clock::now();
  Json r = eval_response(p.ticket, p.id);
  const auto after = std::chrono::steady_clock::now();

  obs::RequestTrace rec;
  rec.trace_id = p.trace_id;
  rec.op = "eval";
  rec.label = p.label;
  rec.cached = p.ticket.source == EvalService::Source::kCache;
  rec.coalesced = p.ticket.source == EvalService::Source::kCoalesced;
  const Json* ok = r.find("ok");
  rec.ok = ok != nullptr && ok->as_bool("ok");

  const std::uint64_t accepted_ns = ring_.to_epoch_ns(p.accepted);
  rec.start_ns =
      accepted_ns >= p.read_parse_ns ? accepted_ns - p.read_parse_ns : 0;
  auto& ph = rec.phase_ns;
  ph[static_cast<std::size_t>(obs::Phase::kParse)] = p.read_parse_ns;
  ph[static_cast<std::size_t>(obs::Phase::kAdmission)] = p.admission_ns;
  if (p.ticket.source == EvalService::Source::kScheduled &&
      p.ticket.phases != nullptr) {
    ph[static_cast<std::size_t>(obs::Phase::kQueue)] = p.ticket.phases->queue_ns;
    ph[static_cast<std::size_t>(obs::Phase::kCache)] = p.ticket.phases->cache_ns;
    ph[static_cast<std::size_t>(obs::Phase::kCompute)] =
        p.ticket.phases->compute_ns;
    rec.stage_ns = p.ticket.phases->stage_ns;
  } else {
    // Cache hits and coalesced joins did no work of their own: their latency
    // is head-of-line wait behind earlier pipelined responses.
    ph[static_cast<std::size_t>(obs::Phase::kQueue)] =
        delta_ns(p.accepted, ready);
  }
  ph[static_cast<std::size_t>(obs::Phase::kSerialize)] = delta_ns(ready, after);
  // kFlush stays 0: the stdio sink writes synchronously right after this.
  rec.total_ns = delta_ns(p.accepted, after) + p.read_parse_ns;

  ring_.push(rec);
  if (p.want_response) r.set("trace", trace_object(rec));
  return r;
}

bool Session::handle_line(const std::string& line) {
  if (shutdown_ || sink_dead_) return false;

  if (line.size() > kMaxRequestLine) return reject_line(oversize_line_message());
  if (line.find_first_not_of(" \t\r") == std::string::npos) return true;

  // With trace_all_ off this is the only tracing branch the hot path sees:
  // no clock is read unless the request itself asks for a trace.
  const auto t0 = trace_all_ ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};
  EvalRequest req;
  try {
    req = parse_request(line);
  } catch (const std::exception& e) {
    // Errors keep request order too: answer everything in front first.
    if (!drain_pending(/*all=*/true)) return false;
    return respond(error_response(e.what()));
  }

  if (req.op == Op::kShutdown) {
    if (!drain_pending(/*all=*/true)) return false;
    shutdown_ = true;
    respond(shutdown_response(req));
    return false;
  }
  if (req.op == Op::kHealth) {
    if (!drain_pending(/*all=*/true)) return false;
    HealthInfo info;
    if (health_provider_) {
      info = health_provider_();
    } else {
      info.mode = "stdio";
      info.uptime_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started_)
              .count();
      info.accepted_connections = 1;
      info.active_connections = 1;
    }
    return respond(health_response(req, info));
  }
  if (req.op == Op::kTraceDump) {
    if (!drain_pending(/*all=*/true)) return false;
    return respond(trace_dump_response(req, ring_));
  }
  if (req.op != Op::kEval) {
    // Control ops are barriers on the blocking path: pending evals answer
    // first, then the op runs synchronously (quiesced — single client).
    if (!drain_pending(/*all=*/true)) return false;
    return respond(control_response(service_, req, /*quiesce=*/true));
  }

  Pending p;
  p.id = req.id;
  if (trace_all_ || req.trace) {
    const auto t1 = std::chrono::steady_clock::now();
    p.traced = true;
    p.want_response = req.trace;
    if (req.trace_id.empty()) {
      char buf[24];
      std::snprintf(buf, sizeof buf, "s%llx",
                    static_cast<unsigned long long>(++trace_seq_));
      p.trace_id = buf;
    } else {
      p.trace_id = req.trace_id;
    }
    p.label = req.app + "@" + std::string(scaling::tech_token(req.node));
    p.accepted = t1;
    // A request that asked for a trace under trace_all_ off reports
    // read/parse as 0 — the clock only started once parsing revealed the
    // flag (see enable_request_trace()).
    if (trace_all_) p.read_parse_ns = delta_ns(t0, t1);
    try {
      p.ticket = service_.submit(req);
    } catch (const std::exception& e) {
      if (!drain_pending(/*all=*/true)) return false;
      return respond(error_response(e.what(), req.id));
    }
    p.admission_ns = delta_ns(t1, std::chrono::steady_clock::now());
  } else {
    try {
      p.ticket = service_.submit(req);
    } catch (const std::exception& e) {
      if (!drain_pending(/*all=*/true)) return false;
      return respond(error_response(e.what(), req.id));
    }
  }
  pending_.push_back(std::move(p));
  return drain_pending(/*all=*/false);
}

bool Session::reject_line(const std::string& message) {
  if (shutdown_ || sink_dead_) return false;
  if (!drain_pending(/*all=*/true)) return false;
  return respond(error_response(message));
}

bool Session::pump() {
  if (sink_dead_) return false;
  return drain_pending(/*all=*/false);
}

bool Session::finish() {
  if (sink_dead_) return false;
  return drain_pending(/*all=*/true);
}

}  // namespace ramp::serve
