#include "serve/session.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "fleet/fleet_simulator.hpp"
#include "fleet/scenario.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "scaling/technology.hpp"
#include "util/error.hpp"

namespace ramp::serve {

namespace {

Json stats_json(const ServiceStats& s) {
  Json j = Json::object();
  j.set("requests", s.requests)
      .set("hits", s.hits)
      .set("coalesced", s.coalesced)
      .set("misses", s.misses)
      .set("persist_hits", s.persist_hits)
      .set("evaluations", s.evaluations)
      .set("failures", s.failures)
      .set("evictions", s.evictions)
      .set("queue_depth", static_cast<std::uint64_t>(s.queue_depth))
      .set("cache_size", static_cast<std::uint64_t>(s.cache_size))
      .set("p50_latency_ms", s.p50_latency_ms)
      .set("p99_latency_ms", s.p99_latency_ms);
  return j;
}

Json cause_counts_json(
    const std::array<std::uint64_t, fleet::kNumFailureCauses>& counts) {
  Json j = Json::object();
  for (int c = 0; c < fleet::kNumFailureCauses; ++c) {
    j.set(std::string(fleet::cause_name(static_cast<fleet::FailureCause>(c))),
          counts[static_cast<std::size_t>(c)]);
  }
  return j;
}

}  // namespace

std::string oversize_line_message() {
  return "request line exceeds " + std::to_string(kMaxRequestLine) +
         " bytes";
}

void set_id(Json& response, const std::string& id) {
  // The id is re-parsed from its captured raw JSON so it round-trips with
  // whatever type the client sent (number, string, object, ...).
  if (!id.empty()) response.set("id", Json::parse(id));
}

Json error_response(const std::string& message, const std::string& id) {
  Json r = Json::object();
  r.set("ok", false);
  set_id(r, id);
  r.set("error", message);
  return r;
}

Json overloaded_response(const std::string& id) {
  Json r = error_response("overloaded", id);
  r.set("overloaded", true);
  return r;
}

Json shutdown_response(const EvalRequest& req) {
  Json r = Json::object();
  r.set("ok", true).set("op", "shutdown");
  set_id(r, req.id);
  return r;
}

Json stats_response(EvalService& service, const EvalRequest& req,
                    bool quiesce) {
  if (quiesce) service.drain();  // queue_depth reflects delivered responses
  Json r = Json::object();
  r.set("ok", true).set("op", "stats");
  set_id(r, req.id);
  r.set("stats", stats_json(service.stats()));
  return r;
}

Json metrics_response(EvalService& service, const EvalRequest& req,
                      bool quiesce) {
  if (quiesce) service.drain();  // counters are settled
  // Service metrics (always booked) plus whatever the process-wide registry
  // collected, with the stage profile attached.
  obs::MetricsSnapshot snap = service.metrics().snapshot();
  snap.merge_from(obs::MetricsRegistry::global().snapshot());
  const obs::StageProfile profile = obs::Profiler::global().snapshot();
  Json r = Json::object();
  r.set("ok", true).set("op", "metrics");
  set_id(r, req.id);
  r.set("prometheus", obs::to_prometheus(snap, &profile));
  return r;
}

Json metrics_reset_response(EvalService& service, const EvalRequest& req,
                            bool quiesce) {
  // Zero the service counters, the process-wide registry, and the stage
  // profile — so a long-lived server can separate load phases.
  if (quiesce) service.drain();
  service.reset_stats();
  obs::MetricsRegistry::global().reset();
  obs::Profiler::global().reset();
  Json r = Json::object();
  r.set("ok", true).set("op", "metrics_reset");
  set_id(r, req.id);
  return r;
}

Json timeline_response(EvalService& service, const EvalRequest& req) {
  try {
    const pipeline::AppTechResult res = service.evaluate_timeline(req);
    Json r = Json::object();
    r.set("ok", true).set("op", "timeline");
    set_id(r, req.id);
    r.set("result", result_json(res));
    r.set("cell", res.timeline.cell);
    r.set("intervals", res.timeline.intervals);
    r.set("stride", res.timeline.stride);
    Json points = Json::array();
    for (const auto& p : res.timeline.points) {
      Json pt = Json::object();
      pt.set("interval", p.interval)
          .set("time_s", p.time_s)
          .set("ipc", p.ipc)
          .set("dyn_w", p.dyn_power_w)
          .set("leak_w", p.leak_power_w);
      Json temps = Json::array();
      for (double t : p.temp_k) temps.push(t);
      pt.set("temp_k", std::move(temps));
      Json inst = Json::array();
      for (double f : p.fit_inst) inst.push(f);
      pt.set("fit_inst", std::move(inst));
      Json avg = Json::array();
      for (double f : p.fit_avg) avg.push(f);
      pt.set("fit_avg", std::move(avg));
      points.push(std::move(pt));
    }
    r.set("points", std::move(points));
    Json incidents = Json::array();
    for (const auto& inc : res.incidents) {
      incidents.push(Json::parse(obs::incident_to_json(inc)));
    }
    r.set("incidents", std::move(incidents));
    return r;
  } catch (const std::exception& e) {
    return error_response(e.what(), req.id);
  }
}

Json fleet_response(EvalService& service, const EvalRequest& req) {
  try {
    fleet::FleetScenario sc = fleet::FleetScenario::preset(
        req.fleet_scenario.empty() ? "baseline" : req.fleet_scenario);
    if (req.chips) sc.chips = *req.chips;
    if (req.years) sc.horizon_years = *req.years;
    if (req.bin) sc.curve_bin_years = *req.bin;
    if (!req.fleet_policy.empty())
      sc.policy = fleet::parse_policy(req.fleet_policy);
    if (req.has_node) sc.tech = req.node;
    if (req.seed) sc.seed = *req.seed;
    // The scenario's physics cells run with the service's base config and
    // through the service's stage store, so a fleet op and the eval path
    // share per-stage work instead of duplicating it.
    sc.cell = service.config();
    // A serve request must not be able to wedge the process for hours: the
    // CLI handles unbounded studies, the wire op handles bounded ones.
    RAMP_REQUIRE(sc.chips <= 200'000,
                 "fleet op caps chips at 200000 (use `ramp fleet` for "
                 "larger populations)");
    RAMP_REQUIRE(sc.horizon_years <= 100.0, "fleet op caps years at 100");
    sc.validate();

    fleet::FleetSimulator::Options opts;
    opts.jobs = service.options().jobs;
    opts.stage_store = service.stage_store();
    opts.registry = &service.registry();
    const fleet::FleetResult res = fleet::FleetSimulator(sc, opts).run();

    Json scenario = Json::object();
    scenario.set("name", sc.name)
        .set("chips", sc.chips)
        .set("years", sc.horizon_years)
        .set("bin", sc.curve_bin_years)
        .set("policy", std::string(fleet::policy_name(sc.policy)))
        .set("node", std::string(scaling::tech_token(sc.tech)))
        .set("seed", sc.seed);

    const fleet::FleetSummary& s = res.summary;
    Json summary = Json::object();
    summary.set("chips", s.chips)
        .set("failed", s.failed)
        .set("survival_at_horizon", s.survival_at_horizon)
        .set("mean_failure_age_years", s.mean_failure_age_years)
        .set("by_cause", cause_counts_json(s.failures_by_cause))
        .set("avg_relative_performance", s.avg_relative_performance)
        .set("throttle_switches", s.throttle_switches)
        .set("migrations", s.migrations)
        .set("spare_activations", s.spare_activations)
        .set("monitor_reconfigs", s.monitor_reconfigs);

    Json curve = Json::array();
    for (const auto& p : res.curve) {
      Json bin = Json::object();
      bin.set("t_end_years", p.t_end_years)
          .set("failures", p.failures)
          .set("survivors", p.survivors)
          .set("survival", p.survival)
          .set("hazard_per_year", p.hazard_per_year)
          .set("by_cause", cause_counts_json(p.by_cause));
      curve.push(std::move(bin));
    }

    Json r = Json::object();
    r.set("ok", true).set("op", "fleet");
    set_id(r, req.id);
    r.set("scenario", std::move(scenario));
    r.set("summary", std::move(summary));
    r.set("curve", std::move(curve));
    return r;
  } catch (const std::exception& e) {
    return error_response(e.what(), req.id);
  }
}

Json control_response(EvalService& service, const EvalRequest& req,
                      bool quiesce) {
  switch (req.op) {
    case Op::kStats: return stats_response(service, req, quiesce);
    case Op::kMetrics: return metrics_response(service, req, quiesce);
    case Op::kMetricsReset:
      return metrics_reset_response(service, req, quiesce);
    case Op::kTimeline: return timeline_response(service, req);
    case Op::kFleet: return fleet_response(service, req);
    case Op::kEval:
    case Op::kShutdown:
      break;
  }
  return error_response("internal: not a control op", req.id);
}

Json eval_response(const EvalService::Ticket& ticket, const std::string& id) {
  try {
    const OutcomePtr outcome = ticket.future.get();
    Json r = Json::object();
    r.set("ok", true);
    r.set("op", "eval");
    set_id(r, id);
    r.set("key", outcome->key);
    r.set("cached", ticket.source == EvalService::Source::kCache);
    r.set("coalesced", ticket.source == EvalService::Source::kCoalesced);
    r.set("result", result_json(outcome->result));
    return r;
  } catch (const std::exception& e) {
    return error_response(e.what(), id);
  }
}

// ---- Session ---------------------------------------------------------------

Session::Session(EvalService& service, Sink sink)
    : service_(service), sink_(std::move(sink)) {}

bool Session::respond(const Json& response) {
  if (sink_dead_) return false;
  if (!sink_(response.dump())) {
    sink_dead_ = true;
    pending_.clear();  // nobody left to deliver to; futures self-complete
    return false;
  }
  return true;
}

bool Session::drain_pending(bool all) {
  while (!pending_.empty()) {
    if (!all && pending_.front().ticket.future.wait_for(
                    std::chrono::seconds(0)) != std::future_status::ready) {
      break;
    }
    if (!respond(eval_response(pending_.front().ticket, pending_.front().id)))
      return false;
    pending_.pop_front();
  }
  return true;
}

bool Session::handle_line(const std::string& line) {
  if (shutdown_ || sink_dead_) return false;

  if (line.size() > kMaxRequestLine) return reject_line(oversize_line_message());
  if (line.find_first_not_of(" \t\r") == std::string::npos) return true;

  EvalRequest req;
  try {
    req = parse_request(line);
  } catch (const std::exception& e) {
    // Errors keep request order too: answer everything in front first.
    if (!drain_pending(/*all=*/true)) return false;
    return respond(error_response(e.what()));
  }

  if (req.op == Op::kShutdown) {
    if (!drain_pending(/*all=*/true)) return false;
    shutdown_ = true;
    respond(shutdown_response(req));
    return false;
  }
  if (req.op != Op::kEval) {
    // Control ops are barriers on the blocking path: pending evals answer
    // first, then the op runs synchronously (quiesced — single client).
    if (!drain_pending(/*all=*/true)) return false;
    return respond(control_response(service_, req, /*quiesce=*/true));
  }

  try {
    pending_.push_back({service_.submit(req), req.id});
  } catch (const std::exception& e) {
    if (!drain_pending(/*all=*/true)) return false;
    return respond(error_response(e.what(), req.id));
  }
  return drain_pending(/*all=*/false);
}

bool Session::reject_line(const std::string& message) {
  if (shutdown_ || sink_dead_) return false;
  if (!drain_pending(/*all=*/true)) return false;
  return respond(error_response(message));
}

bool Session::pump() {
  if (sink_dead_) return false;
  return drain_pending(/*all=*/false);
}

bool Session::finish() {
  if (sink_dead_) return false;
  return drain_pending(/*all=*/true);
}

}  // namespace ramp::serve
