#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace ramp::serve {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    require(pos_ == text_.size(), "trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw InvalidArgument("JSON parse error at byte " + std::to_string(pos_) +
                          ": " + why);
  }
  void require(bool ok, const char* why) const {
    if (!ok) fail(why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  // Containers nest recursively, so untrusted input could otherwise drive
  // the parser (and the destructor of the value it builds) arbitrarily deep
  // into the stack. 64 levels is far beyond any legitimate request.
  static constexpr int kMaxDepth = 64;

  Json value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return Json(string());
    if (c == 't') { require(literal("true"), "invalid literal"); return Json(true); }
    if (c == 'f') { require(literal("false"), "invalid literal"); return Json(false); }
    if (c == 'n') { require(literal("null"), "invalid literal"); return Json(); }
    return number();
  }

  Json object() {
    consume('{');
    require(++depth_ <= kMaxDepth, "nesting deeper than 64 levels");
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) { --depth_; return obj; }
    while (true) {
      skip_ws();
      require(peek() == '"', "expected string key");
      std::string key = string();
      skip_ws();
      require(consume(':'), "expected ':' after key");
      obj.set(std::move(key), value());
      skip_ws();
      if (consume(',')) continue;
      require(consume('}'), "expected ',' or '}' in object");
      --depth_;
      return obj;
    }
  }

  Json array() {
    consume('[');
    require(++depth_ <= kMaxDepth, "nesting deeper than 64 levels");
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) { --depth_; return arr; }
    while (true) {
      arr.push(value());
      skip_ws();
      if (consume(',')) continue;
      require(consume(']'), "expected ',' or ']' in array");
      --depth_;
      return arr;
    }
  }

  std::string string() {
    consume('"');
    std::string out;
    while (true) {
      require(pos_ < text_.size(), "unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        require(static_cast<unsigned char>(c) >= 0x20, "raw control character in string");
        out += c;
        continue;
      }
      require(pos_ < text_.size(), "unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += unicode_escape(); break;
        default: fail("unknown escape sequence");
      }
    }
  }

  // \uXXXX — BMP code points only (no surrogate pairs); encoded as UTF-8.
  std::string unicode_escape() {
    require(pos_ + 4 <= text_.size(), "truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    require(cp < 0xD800 || cp > 0xDFFF, "surrogate pairs are not supported");
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  Json number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    require(pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])),
            "invalid number");
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (consume('.')) {
      require(pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])),
              "digit expected after decimal point");
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!consume('+')) consume('-');
      require(pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])),
              "digit expected in exponent");
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    return Json(std::strtod(text_.c_str() + start, nullptr));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double v, std::string& out) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/Inf; null is the conventional fallback
    return;
  }
  // Integers (the common case: counters, seeds, lengths) print exactly.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void dump_value(const Json& j, std::string& out) {
  switch (j.type()) {
    case Json::Type::kNull: out += "null"; break;
    case Json::Type::kBool: out += j.as_bool() ? "true" : "false"; break;
    case Json::Type::kNumber: dump_number(j.as_number(), out); break;
    case Json::Type::kString: dump_string(j.as_string(), out); break;
    case Json::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : j.items()) {
        if (!first) out += ',';
        first = false;
        dump_string(k, out);
        out += ':';
        dump_value(v, out);
      }
      out += '}';
      break;
    }
    case Json::Type::kArray: {
      out += '[';
      bool first = true;
      for (const auto& v : j.elements()) {
        if (!first) out += ',';
        first = false;
        dump_value(v, out);
      }
      out += ']';
      break;
    }
  }
}

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).run(); }

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

bool Json::as_bool(const std::string& what) const {
  RAMP_REQUIRE(type_ == Type::kBool, what + " must be a boolean");
  return bool_;
}

double Json::as_number(const std::string& what) const {
  RAMP_REQUIRE(type_ == Type::kNumber, what + " must be a number");
  return num_;
}

const std::string& Json::as_string(const std::string& what) const {
  RAMP_REQUIRE(type_ == Type::kString, what + " must be a string");
  return str_;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::set(std::string key, Json value) {
  RAMP_REQUIRE(type_ == Type::kObject, "set() on a non-object JSON value");
  obj_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  RAMP_REQUIRE(type_ == Type::kArray, "push() on a non-array JSON value");
  arr_.push_back(std::move(value));
  return *this;
}

}  // namespace ramp::serve
