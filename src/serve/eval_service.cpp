#include "serve/eval_service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "obs/span.hpp"
#include "pipeline/stage_graph.hpp"
#include "pipeline/sweep.hpp"
#include "util/error.hpp"
#include "util/hashing.hpp"
#include "util/thread_pool.hpp"
#include "workloads/spec2k.hpp"

namespace ramp::serve {

namespace {
constexpr std::size_t kLatencyWindow = 512;
}  // namespace

EvalService::EvalService(pipeline::EvaluationConfig base, Options opts)
    : base_(std::move(base)),
      opts_(std::move(opts)),
      lru_(opts_.cache_capacity) {
  RAMP_REQUIRE(opts_.max_pending > 0, "max_pending must be at least 1");
  if (opts_.pool != nullptr) {
    pool_ = opts_.pool;
  } else {
    RAMP_REQUIRE(opts_.jobs > 0, "EvalService needs at least one job");
    owned_pool_ = std::make_unique<ThreadPool>(opts_.jobs);
    pool_ = owned_pool_.get();
  }
  if (opts_.registry != nullptr) {
    registry_ = opts_.registry;
  } else {
    // Always enabled: the stats wire format promises exact counters whether
    // or not the process-wide RAMP_METRICS switch is on.
    owned_registry_ = std::make_unique<obs::MetricsRegistry>(true);
    registry_ = owned_registry_.get();
  }
  if (opts_.stage_store == nullptr && base_.stage_cache_enabled) {
    pipeline::StageStore::Options store_opts;
    store_opts.dir = base_.stage_cache_dir;
    opts_.stage_store =
        std::make_shared<pipeline::StageStore>(std::move(store_opts));
  }
  requests_ = registry_->counter("ramp_serve_requests_total");
  hits_ = registry_->counter("ramp_serve_hits_total");
  coalesced_ = registry_->counter("ramp_serve_coalesced_total");
  misses_ = registry_->counter("ramp_serve_misses_total");
  persist_hits_ = registry_->counter("ramp_serve_persist_hits_total");
  evaluations_ = registry_->counter("ramp_serve_evaluations_total");
  failures_ = registry_->counter("ramp_serve_failures_total");
  evictions_ = registry_->counter("ramp_serve_evictions_total");
  queue_depth_gauge_ = registry_->gauge("ramp_serve_queue_depth");
  cache_entries_gauge_ = registry_->gauge("ramp_serve_cache_entries");
  latency_hist_ = registry_->histogram(
      "ramp_serve_latency_seconds",
      {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5});
  latencies_ms_.resize(kLatencyWindow, 0.0);
}

EvalService::~EvalService() { drain(); }

void EvalService::drain() {
  // Task handles complete only after the pool task fully returned, so once
  // every handle is ready no task can still touch this object.
  std::vector<std::shared_future<void>> handles;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    handles = task_handles_;
  }
  for (auto& h : handles) h.wait();
  const std::lock_guard<std::mutex> lock(mutex_);
  task_handles_.clear();
}

EvalService::Ticket EvalService::submit(const EvalRequest& req) {
  RAMP_REQUIRE(req.op == Op::kEval, "submit() takes eval requests only");
  workloads::workload(req.app);  // invalid names fail here, not on the pool
  const std::string key = request_key(req, base_);

  std::unique_lock<std::mutex> lock(mutex_);
  requests_.inc();

  if (OutcomePtr* cached = lru_.get(key)) {
    hits_.inc();
    std::promise<OutcomePtr> ready;
    ready.set_value(*cached);
    return {ready.get_future().share(), Source::kCache};
  }
  if (auto it = inflight_.find(key); it != inflight_.end()) {
    coalesced_.inc();
    return {it->second.future, Source::kCoalesced, it->second.phases};
  }

  misses_.inc();
  // Backpressure: bound the number of scheduled-but-unfinished keys. The
  // wait releases the lock, so hits/stats stay serviceable meanwhile.
  slot_free_.wait(lock, [this] { return pending_ < opts_.max_pending; });
  return submit_locked(req, key, lock);
}

bool EvalService::try_submit(const EvalRequest& req, Ticket* out) {
  RAMP_REQUIRE(out != nullptr, "try_submit needs an output ticket");
  RAMP_REQUIRE(req.op == Op::kEval, "try_submit() takes eval requests only");
  workloads::workload(req.app);
  const std::string key = request_key(req, base_);

  std::unique_lock<std::mutex> lock(mutex_);
  if (OutcomePtr* cached = lru_.get(key)) {
    requests_.inc();
    hits_.inc();
    std::promise<OutcomePtr> ready;
    ready.set_value(*cached);
    *out = {ready.get_future().share(), Source::kCache};
    return true;
  }
  if (auto it = inflight_.find(key); it != inflight_.end()) {
    requests_.inc();
    coalesced_.inc();
    *out = {it->second.future, Source::kCoalesced, it->second.phases};
    return true;
  }
  // Would have to schedule: refuse instead of blocking when the pending
  // bound is full. No counters move — the request was not accepted.
  if (pending_ >= opts_.max_pending) return false;
  requests_.inc();
  misses_.inc();
  *out = submit_locked(req, key, lock);
  return true;
}

void EvalService::set_completion_hook(std::function<void()> hook) {
  const std::lock_guard<std::mutex> lock(mutex_);
  completion_hook_ = std::move(hook);
}

EvalService::Ticket EvalService::submit_locked(
    const EvalRequest& req, const std::string& key,
    std::unique_lock<std::mutex>& lock) {
  ++pending_;
  queue_depth_gauge_.set(static_cast<double>(pending_));

  // The phase cell costs one allocation and one clock read per *scheduled*
  // request — noise against the ms-scale evaluation it times (cache hits,
  // the knee-determining path, never get here).
  auto phases = std::make_shared<EvalPhases>();
  phases->submitted = std::chrono::steady_clock::now();
  auto task = std::make_shared<std::packaged_task<OutcomePtr()>>(
      [this, key, req, phases] { return run_scheduled(key, req, phases); });
  std::shared_future<OutcomePtr> future = task->get_future().share();
  inflight_.emplace(key, Inflight{future, phases});

  // Opportunistically drop completed handles so the vector stays bounded.
  task_handles_.erase(
      std::remove_if(task_handles_.begin(), task_handles_.end(),
                     [](const std::shared_future<void>& h) {
                       return h.wait_for(std::chrono::seconds(0)) ==
                              std::future_status::ready;
                     }),
      task_handles_.end());
  lock.unlock();

  std::shared_future<void> handle =
      pool_->submit([this, task, key] {
             (*task)();  // exceptions land in `future`
             std::function<void()> hook;
             {
               const std::lock_guard<std::mutex> inner(mutex_);
               inflight_.erase(key);
               --pending_;
               queue_depth_gauge_.set(static_cast<double>(pending_));
               slot_free_.notify_all();
               hook = completion_hook_;
             }
             // Outside the lock: the hook typically writes an eventfd to
             // wake an event loop, which may itself call back in.
             if (hook) hook();
           })
          .share();
  {
    const std::lock_guard<std::mutex> inner(mutex_);
    task_handles_.push_back(std::move(handle));
  }
  return {future, Source::kScheduled, phases};
}

OutcomePtr EvalService::evaluate(const EvalRequest& req) {
  return submit(req).future.get();
}

OutcomePtr EvalService::run_scheduled(const std::string& key,
                                      const EvalRequest& req,
                                      const std::shared_ptr<EvalPhases>& phases) {
  const auto start = std::chrono::steady_clock::now();
  const auto delta_ns = [](std::chrono::steady_clock::time_point a,
                           std::chrono::steady_clock::time_point b) {
    return b <= a ? std::uint64_t{0}
                  : static_cast<std::uint64_t>(
                        std::chrono::nanoseconds(b - a).count());
  };
  phases->queue_ns = delta_ns(phases->submitted, start);
  try {
    OutcomePtr outcome;
    bool from_disk = false;
    if (!opts_.persist_dir.empty()) {
      outcome = load_persisted(key);
      from_disk = outcome != nullptr;
    }
    const auto after_probe = std::chrono::steady_clock::now();
    phases->cache_ns = delta_ns(start, after_probe);
    if (!outcome) {
      auto fresh = std::make_shared<EvalOutcome>();
      fresh->key = key;
      // Stage attribution by bracketing the worker's cumulative per-stage
      // counters: this thread runs exactly one evaluation at a time, so the
      // deltas are this request's stage work (zeros when RAMP_METRICS off).
      const auto stages_before = obs::Profiler::global().thread_stage_nanos();
      fresh->result = evaluate_request(req, req.effective_config(base_));
      const auto after_eval = std::chrono::steady_clock::now();
      const auto stages_after = obs::Profiler::global().thread_stage_nanos();
      phases->compute_ns = delta_ns(after_probe, after_eval);
      for (int i = 0; i < obs::kNumStages; ++i) {
        const auto si = static_cast<std::size_t>(i);
        phases->stage_ns[si] = stages_after[si] >= stages_before[si]
                                   ? stages_after[si] - stages_before[si]
                                   : 0;
      }
      outcome = fresh;
      if (!opts_.persist_dir.empty()) {
        store_persisted(*outcome, req.effective_config(base_));
      }
    }
    const auto end = std::chrono::steady_clock::now();
    phases->total_ns = delta_ns(start, end);
    // One trace slice per scheduled request on the worker that served it —
    // the serve-request spans of the Perfetto timeline.
    obs::Profiler::global().record_event(
        obs::Stage::kTotal,
        "serve " + req.app + "@" + std::string(scaling::tech_token(req.node)),
        start, end);
    const std::chrono::duration<double, std::milli> wall = end - start;
    record_outcome(key, outcome, from_disk, wall.count());
    return outcome;
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mutex_);
    failures_.inc();
    throw;
  }
}

pipeline::AppTechResult EvalService::evaluate_timeline(const EvalRequest& req) {
  RAMP_REQUIRE(req.op == Op::kEval || req.op == Op::kTimeline,
               "evaluate_timeline() takes eval/timeline requests only");
  workloads::workload(req.app);
  pipeline::EvaluationConfig cfg = req.effective_config(base_);
  cfg.timeline_enabled = true;
  if (req.points) cfg.timeline_points = *req.points;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    requests_.inc();
  }
  return evaluate_request(req, cfg);
}

void EvalService::reset_stats() {
  const std::lock_guard<std::mutex> lock(mutex_);
  registry_->reset();
  // Point-in-time gauges stay meaningful across a counter reset.
  queue_depth_gauge_.set(static_cast<double>(pending_));
  cache_entries_gauge_.set(static_cast<double>(lru_.size()));
  std::fill(latencies_ms_.begin(), latencies_ms_.end(), 0.0);
  latency_next_ = 0;
  latency_full_ = false;
}

pipeline::AppTechResult EvalService::evaluate_request(
    const EvalRequest& req, const pipeline::EvaluationConfig& cfg) {
  // Per-stage memoization: requests share the service-wide store unless
  // they opted out. The store never changes an answer (staged output is
  // byte-identical), so stage_cache is excluded from the request key.
  const std::shared_ptr<pipeline::StageStore> store =
      req.stage_cache ? opts_.stage_store : nullptr;
  const pipeline::Evaluator evaluator(cfg, store);
  const auto& w = workloads::workload(req.app);

  double sink_k = req.sink_k;
  const bool pin = req.pin_sink && sink_k <= 0.0 &&
                   req.node != scaling::TechPoint::k180nm;
  if (pin) {
    // The paper's scaling rule: the scaled node holds the application's
    // 180 nm heat-sink temperature. The base cell is itself a service
    // citizen — cached under its own key — so one warm process pays for an
    // app's 180 nm run once across all nodes. It is evaluated inline (not
    // re-submitted to the pool) because a FIFO-pool worker must never block
    // on a task queued behind itself.
    EvalRequest base_req = req;
    base_req.op = Op::kEval;  // timeline ops share the plain eval's base key
    base_req.node = scaling::TechPoint::k180nm;
    base_req.sink_k = 0.0;
    base_req.points.reset();
    const std::string base_key = request_key(base_req, base_);

    OutcomePtr base;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (OutcomePtr* cached = lru_.get(base_key)) base = *cached;
    }
    if (!base && !opts_.persist_dir.empty()) base = load_persisted(base_key);
    if (!base) {
      // The base cell is evaluated without the flight recorder even for
      // timeline requests: the cached outcome must be bitwise the one a
      // plain eval would produce (and carry no timeline payload).
      pipeline::EvaluationConfig base_cfg = cfg;
      base_cfg.timeline_enabled = false;
      auto fresh = std::make_shared<EvalOutcome>();
      fresh->key = base_key;
      fresh->result = pipeline::Evaluator(base_cfg, store)
                          .evaluate(w, scaling::TechPoint::k180nm);
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        evaluations_.inc();
        evictions_.inc(lru_.put(base_key, fresh));
        cache_entries_gauge_.set(static_cast<double>(lru_.size()));
      }
      if (!opts_.persist_dir.empty()) store_persisted(*fresh, cfg);
      base = fresh;
    }
    sink_k = base->result.sink_temp_k;
  }

  pipeline::AppTechResult r = evaluator.evaluate(w, req.node, sink_k);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    evaluations_.inc();
  }
  return r;
}

void EvalService::record_outcome(const std::string& key,
                                 const OutcomePtr& outcome, bool from_disk,
                                 double latency_ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (from_disk) persist_hits_.inc();
  evictions_.inc(lru_.put(key, outcome));
  cache_entries_gauge_.set(static_cast<double>(lru_.size()));
  latency_hist_.observe(latency_ms / 1e3);
  latencies_ms_[latency_next_] = latency_ms;
  latency_next_ = (latency_next_ + 1) % latencies_ms_.size();
  if (latency_next_ == 0) latency_full_ = true;
}

ServiceStats EvalService::stats() const {
  std::vector<double> window;
  ServiceStats s;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    s.requests = requests_.value();
    s.hits = hits_.value();
    s.coalesced = coalesced_.value();
    s.misses = misses_.value();
    s.persist_hits = persist_hits_.value();
    s.evaluations = evaluations_.value();
    s.failures = failures_.value();
    s.evictions = evictions_.value();
    s.queue_depth = pending_;
    s.cache_size = lru_.size();
    const std::size_t n = latency_full_ ? latencies_ms_.size() : latency_next_;
    window.assign(latencies_ms_.begin(),
                  latencies_ms_.begin() + static_cast<std::ptrdiff_t>(n));
  }
  if (!window.empty()) {
    std::sort(window.begin(), window.end());
    const auto at = [&](double q) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(window.size() - 1) + 0.5);
      return window[std::min(idx, window.size() - 1)];
    };
    s.p50_latency_ms = at(0.50);
    s.p99_latency_ms = at(0.99);
  }
  return s;
}

// ---- persistent file cache ------------------------------------------------
//
// One file per key: <persist_dir>/<fnv64(key)>.rampres containing
//   # ramp_serve_cache v1
//   # key=<canonical key>
//   # cfg=<canonical config>          (explanatory only)
//   <result row, sweep cache format, 17-digit precision>
// The digest names the file; the embedded key disambiguates collisions
// (mismatch reads as a miss and the entry is rewritten). Writes follow the
// sweep cache's atomic discipline: same-directory temp file + rename.

std::string EvalService::persist_path(const std::string& key) const {
  Fnv64 h;
  h.mix(std::string_view(key));
  return (std::filesystem::path(opts_.persist_dir) / (h.hex() + ".rampres"))
      .string();
}

OutcomePtr EvalService::load_persisted(const std::string& key) {
  const obs::Span cache_span(obs::Stage::kCache);
  std::ifstream f(persist_path(key));
  if (!f) return nullptr;
  std::string line;
  if (!std::getline(f, line) || line != "# ramp_serve_cache v1") return nullptr;
  if (!std::getline(f, line) || line != "# key=" + key) return nullptr;
  if (!std::getline(f, line) || line.rfind("# cfg=", 0) != 0) return nullptr;
  if (!std::getline(f, line)) return nullptr;
  auto r = pipeline::parse_result_row(line);
  if (!r) return nullptr;
  auto outcome = std::make_shared<EvalOutcome>();
  outcome->key = key;
  outcome->result = std::move(*r);
  return outcome;
}

void EvalService::store_persisted(const EvalOutcome& outcome,
                                  const pipeline::EvaluationConfig& cfg) {
  const obs::Span cache_span(obs::Stage::kCache);
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(opts_.persist_dir, ec);
  const fs::path target = persist_path(outcome.key);
  // Same unique-temp discipline as util::BlobStore: PID + process-wide
  // counter, so concurrent writers (threads or whole processes sharing one
  // persist directory) never interleave bytes in one temp file.
  static std::atomic<std::uint64_t> temp_seq{0};
  fs::path tmp = target;
  tmp += ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(temp_seq.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream f(tmp);
    if (!f) return;  // best effort, like the sweep cache
    std::ostringstream body;
    body.precision(17);
    body << "# ramp_serve_cache v1\n";
    body << "# key=" << outcome.key << "\n";
    body << "# cfg=" << pipeline::canonical_config(cfg) << "\n";
    pipeline::write_result_row(body, outcome.result);
    body << '\n';
    f << body.str();
    if (!f) {
      f.close();
      fs::remove(tmp, ec);
      return;
    }
  }
  fs::rename(tmp, target, ec);
  if (ec) fs::remove(tmp, ec);
}

}  // namespace ramp::serve
