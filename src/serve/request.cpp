#include "serve/request.hpp"

#include <cmath>
#include <cstdio>

#include "pipeline/sweep.hpp"
#include "util/error.hpp"
#include "util/hashing.hpp"
#include "workloads/spec2k.hpp"

namespace ramp::serve {

namespace {

std::uint64_t as_u64_field(const Json& v, const char* what) {
  const double d = v.as_number(what);
  RAMP_REQUIRE(d >= 0.0 && d == std::floor(d) && d < 9.007199254740992e15,
               std::string(what) + " must be a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

}  // namespace

pipeline::EvaluationConfig EvalRequest::effective_config(
    const pipeline::EvaluationConfig& base) const {
  pipeline::EvaluationConfig cfg = base;
  if (trace_len) cfg.trace_instructions = *trace_len;
  if (seed) cfg.seed = *seed;
  return cfg;
}

EvalRequest parse_request(const std::string& line) {
  const Json j = Json::parse(line);
  RAMP_REQUIRE(j.is_object(), "request must be a JSON object");

  EvalRequest req;
  if (const Json* op = j.find("op")) {
    const std::string& name = op->as_string("op");
    if (name == "eval") req.op = Op::kEval;
    else if (name == "stats") req.op = Op::kStats;
    else if (name == "metrics") req.op = Op::kMetrics;
    else if (name == "metrics_reset") req.op = Op::kMetricsReset;
    else if (name == "shutdown") req.op = Op::kShutdown;
    else if (name == "timeline") req.op = Op::kTimeline;
    else if (name == "fleet") req.op = Op::kFleet;
    else if (name == "health") req.op = Op::kHealth;
    else if (name == "trace_dump") req.op = Op::kTraceDump;
    else throw InvalidArgument("unknown op '" + name +
                               "' (use eval, timeline, fleet, stats, "
                               "metrics, metrics_reset, health, "
                               "trace_dump, shutdown)");
  }

  for (const auto& [key, value] : j.items()) {
    if (key == "op") continue;
    if (key == "id") {
      req.id = value.dump();
      continue;
    }
    if (req.op == Op::kFleet) {
      // The fleet schema: scenario preset plus a few bounded overrides
      // (node and seed are shared with the eval schema below).
      if (key == "scenario") {
        req.fleet_scenario = value.as_string("scenario");
      } else if (key == "chips") {
        req.chips = as_u64_field(value, "chips");
        RAMP_REQUIRE(*req.chips > 0, "chips must be positive");
      } else if (key == "years") {
        req.years = value.as_number("years");
        RAMP_REQUIRE(*req.years > 0.0, "years must be positive");
      } else if (key == "bin") {
        req.bin = value.as_number("bin");
        RAMP_REQUIRE(*req.bin > 0.0, "bin must be positive");
      } else if (key == "policy") {
        req.fleet_policy = value.as_string("policy");
      } else if (key == "node") {
        req.node = scaling::parse_tech(value.as_string("node"));
        req.has_node = true;
      } else if (key == "seed") {
        req.seed = as_u64_field(value, "seed");
      } else {
        throw InvalidArgument("unknown fleet request field '" + key + "'");
      }
      continue;
    }
    if (key == "format") {
      RAMP_REQUIRE(req.op == Op::kMetrics,
                   "field 'format' is only valid on metrics requests");
      req.metrics_format = value.as_string("format");
      RAMP_REQUIRE(req.metrics_format == "prometheus" ||
                       req.metrics_format == "json",
                   "format must be \"prometheus\" or \"json\"");
      continue;
    }
    RAMP_REQUIRE(req.op == Op::kEval || req.op == Op::kTimeline,
                 "field '" + key +
                     "' is only valid on eval/timeline requests");
    if (key == "trace") {
      req.trace = value.as_bool("trace");
      continue;
    }
    if (key == "trace_id") {
      req.trace_id = value.as_string("trace_id");
      RAMP_REQUIRE(!req.trace_id.empty() && req.trace_id.size() <= 128,
                   "trace_id must be 1..128 bytes");
      for (const char c : req.trace_id) {
        RAMP_REQUIRE(static_cast<unsigned char>(c) >= 0x20 && c != 0x7f,
                     "trace_id must be printable");
      }
      continue;
    }
    if (key == "points") {
      RAMP_REQUIRE(req.op == Op::kTimeline,
                   "field 'points' is only valid on timeline requests");
      req.points = as_u64_field(value, "points");
      RAMP_REQUIRE(*req.points >= 2, "points must be at least 2");
      continue;
    }
    if (key == "app") {
      req.app = value.as_string("app");
    } else if (key == "node") {
      req.node = scaling::parse_tech(value.as_string("node"));
      req.has_node = true;
    } else if (key == "trace_len") {
      req.trace_len = as_u64_field(value, "trace_len");
      RAMP_REQUIRE(*req.trace_len > 0, "trace_len must be positive");
    } else if (key == "seed") {
      req.seed = as_u64_field(value, "seed");
    } else if (key == "pin_sink") {
      req.pin_sink = value.as_bool("pin_sink");
    } else if (key == "sink_k") {
      req.sink_k = value.as_number("sink_k");
      RAMP_REQUIRE(req.sink_k >= 0.0, "sink_k must be non-negative");
    } else if (key == "stage_cache") {
      req.stage_cache = value.as_bool("stage_cache");
    } else {
      throw InvalidArgument("unknown request field '" + key + "'");
    }
  }

  if (req.op == Op::kEval || req.op == Op::kTimeline) {
    RAMP_REQUIRE(!req.app.empty(), "eval request needs an \"app\" field");
    workloads::workload(req.app);  // validates the name, throws when unknown
  }
  return req;
}

std::string request_key(const EvalRequest& req,
                        const pipeline::EvaluationConfig& base) {
  RAMP_REQUIRE(req.op == Op::kEval, "only eval requests have cache keys");
  // Canonical form: an explicit sink target supersedes pinning, and pinning
  // at 180 nm is the identity (the 180 nm run *is* the pin source).
  bool pin = req.pin_sink;
  if (req.sink_k > 0.0 || req.node == scaling::TechPoint::k180nm) pin = false;

  char sink[40];
  std::snprintf(sink, sizeof sink, "%.17g", req.sink_k);

  const pipeline::EvaluationConfig cfg = req.effective_config(base);
  Fnv64 h;
  h.mix(pipeline::config_hash(cfg));
  return "eval.v1|app=" + req.app +
         "|node=" + std::string(scaling::tech_token(req.node)) +
         "|pin=" + (pin ? "1" : "0") + "|sink=" + sink + "|cfg=" + h.hex();
}

Json result_json(const pipeline::AppTechResult& r) {
  const auto mech = r.raw_fits.by_mechanism();
  Json fit = Json::object();
  fit.set("em", mech[0])
      .set("sm", mech[1])
      .set("tddb", mech[2])
      .set("tc", mech[3])
      .set("total", r.raw_fits.total());

  Json out = Json::object();
  out.set("app", r.app)
      .set("node", std::string(scaling::tech_token(r.tech)))
      .set("ipc", r.ipc)
      .set("dynamic_w", r.avg_dynamic_power_w)
      .set("leakage_w", r.avg_leakage_power_w)
      .set("total_w", r.avg_total_power_w)
      .set("max_temp_k", r.max_structure_temp_k)
      .set("sink_temp_k", r.sink_temp_k)
      .set("avg_die_temp_k", r.avg_die_temp_k)
      .set("max_activity", r.max_activity)
      .set("raw_fit", std::move(fit));
  return out;
}

}  // namespace ramp::serve
