// Exporter tests: golden Prometheus/NDJSON documents (output is fully
// deterministic — sorted names, enum-ordered stages, lexicographic cells),
// the text-parser round trip, and the atomic metrics-file writer.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"

namespace ramp::obs {
namespace {

MetricsSnapshot sample_snapshot() {
  MetricsRegistry reg;
  reg.counter("ramp_requests_total").inc(3);
  reg.gauge("ramp_queue_depth").set(2.5);
  Histogram h = reg.histogram("ramp_latency_seconds", {0.1, 0.5});
  h.observe(0.05);
  h.observe(0.05);
  h.observe(0.3);
  h.observe(2.0);
  return reg.snapshot();
}

TEST(PrometheusExportTest, GoldenDocument) {
  // Section order is fixed (counters, gauges, histograms), each sorted by
  // name; bucket lines are cumulative with an explicit +Inf.
  const std::string expected =
      "# TYPE ramp_requests_total counter\n"
      "ramp_requests_total 3\n"
      "# TYPE ramp_queue_depth gauge\n"
      "ramp_queue_depth 2.5\n"
      "# TYPE ramp_latency_seconds histogram\n"
      "ramp_latency_seconds_bucket{le=\"0.10000000000000001\"} 2\n"
      "ramp_latency_seconds_bucket{le=\"0.5\"} 3\n"
      "ramp_latency_seconds_bucket{le=\"+Inf\"} 4\n"
      "ramp_latency_seconds_sum 2.3999999999999999\n"
      "ramp_latency_seconds_count 4\n";
  EXPECT_EQ(to_prometheus(sample_snapshot()), expected);
}

TEST(PrometheusExportTest, StageProfileSamples) {
  StageProfile profile;
  profile.totals[static_cast<std::size_t>(Stage::kSim)] = {1.5, 2};
  profile.totals[static_cast<std::size_t>(Stage::kTotal)] = {2.0, 2};
  std::array<StageAccum, kNumStages> cell{};
  cell[static_cast<std::size_t>(Stage::kSim)] = {0.75, 1};
  profile.cells.emplace("gcc@90", cell);

  const std::string text = to_prometheus(MetricsSnapshot{}, &profile);
  const auto samples = parse_prometheus_text(text);
  EXPECT_DOUBLE_EQ(samples.at("ramp_stage_seconds_total{stage=\"sim\"}"), 1.5);
  EXPECT_DOUBLE_EQ(samples.at("ramp_stage_seconds_total{stage=\"total\"}"), 2.0);
  EXPECT_DOUBLE_EQ(samples.at("ramp_stage_spans_total{stage=\"sim\"}"), 2.0);
  EXPECT_DOUBLE_EQ(
      samples.at("ramp_stage_cell_seconds_total{cell=\"gcc@90\",stage=\"sim\"}"),
      0.75);
  // Zero-span cell stages are omitted to keep documents small.
  EXPECT_EQ(samples.count(
                "ramp_stage_cell_seconds_total{cell=\"gcc@90\",stage=\"fit\"}"),
            0u);
}

TEST(PrometheusExportTest, ParserRoundTripsEverySample) {
  const MetricsSnapshot snap = sample_snapshot();
  const auto samples = parse_prometheus_text(to_prometheus(snap));
  EXPECT_DOUBLE_EQ(samples.at("ramp_requests_total"), 3.0);
  EXPECT_DOUBLE_EQ(samples.at("ramp_queue_depth"), 2.5);
  EXPECT_DOUBLE_EQ(samples.at("ramp_latency_seconds_bucket{le=\"+Inf\"}"), 4.0);
  EXPECT_DOUBLE_EQ(samples.at("ramp_latency_seconds_count"), 4.0);
  EXPECT_NEAR(samples.at("ramp_latency_seconds_sum"), 2.4, 1e-12);
}

// Golden round trip of the cumulative `le`-bucket encoding: parsing the
// exposition text back must let a scraper reconstruct the exact per-bucket
// counts of the snapshot — cumulative sums at every finite bound, total at
// +Inf, and first-differences recovering the raw buckets.
TEST(PrometheusExportTest, CumulativeBucketsRoundTripToSnapshotCounts) {
  const MetricsSnapshot snap = sample_snapshot();
  const auto samples = parse_prometheus_text(to_prometheus(snap));
  for (const HistogramSnapshot& h : snap.histograms) {
    std::uint64_t cumulative = 0;
    std::vector<double> parsed_cumulative;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      char bound[40];
      std::snprintf(bound, sizeof bound, "%.17g", h.bounds[i]);
      const std::string key =
          h.name + "_bucket{le=\"" + bound + "\"}";
      ASSERT_EQ(samples.count(key), 1u) << key;
      EXPECT_DOUBLE_EQ(samples.at(key), static_cast<double>(cumulative));
      parsed_cumulative.push_back(samples.at(key));
    }
    EXPECT_DOUBLE_EQ(samples.at(h.name + "_bucket{le=\"+Inf\"}"),
                     static_cast<double>(h.count));
    EXPECT_DOUBLE_EQ(samples.at(h.name + "_count"),
                     static_cast<double>(h.count));
    // First differences of the cumulative series give back the raw buckets.
    double prev = 0.0;
    for (std::size_t i = 0; i < parsed_cumulative.size(); ++i) {
      EXPECT_DOUBLE_EQ(parsed_cumulative[i] - prev,
                       static_cast<double>(h.counts[i]));
      prev = parsed_cumulative[i];
    }
    EXPECT_DOUBLE_EQ(
        samples.at(h.name + "_bucket{le=\"+Inf\"}") - prev,
        static_cast<double>(h.counts.back()));
  }
}

TEST(PrometheusExportTest, ParserRejectsMalformedLines) {
  EXPECT_THROW(parse_prometheus_text("just_a_name\n"), InvalidArgument);
  EXPECT_THROW(parse_prometheus_text("name twelve\n"), InvalidArgument);
  EXPECT_NO_THROW(parse_prometheus_text("# any comment\n\nname 1\n"));
}

TEST(NdjsonExportTest, GoldenDocument) {
  const std::string got = to_ndjson(sample_snapshot());
  const std::string expected =
      "{\"counters\":{\"ramp_requests_total\":3},"
      "\"gauges\":{\"ramp_queue_depth\":2.5},"
      "\"histograms\":{\"ramp_latency_seconds\":"
      "{\"bounds\":[0.10000000000000001,0.5],\"counts\":[2,1,1],"
      "\"sum\":2.3999999999999999,\"count\":4}}}";
  EXPECT_EQ(got, expected);
}

TEST(NdjsonExportTest, IncludesStagesAndCells) {
  StageProfile profile;
  profile.totals[static_cast<std::size_t>(Stage::kSim)] = {1.5, 2};
  std::array<StageAccum, kNumStages> cell{};
  cell[static_cast<std::size_t>(Stage::kSim)] = {0.75, 1};
  profile.cells.emplace("gcc@90", cell);
  const std::string got = to_ndjson(MetricsSnapshot{}, &profile);
  EXPECT_NE(got.find("\"stages\":{"), std::string::npos);
  EXPECT_NE(got.find("\"sim\":{\"seconds\":1.5,\"spans\":2}"), std::string::npos);
  EXPECT_NE(got.find("\"cells\":{\"gcc@90\":{\"sim\":{\"seconds\":0.75,\"spans\":1}}}"),
            std::string::npos);
}

TEST(WriteMetricsFileTest, PicksFormatByExtensionAndWritesAtomically) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("ramp_obs_export_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  const MetricsSnapshot snap = sample_snapshot();

  const std::string prom = (dir / "metrics.prom").string();
  write_metrics_file(prom, snap);
  std::stringstream prom_body;
  prom_body << std::ifstream(prom).rdbuf();
  EXPECT_EQ(prom_body.str(), to_prometheus(snap));

  const std::string json = (dir / "metrics.json").string();
  write_metrics_file(json, snap);
  std::stringstream json_body;
  json_body << std::ifstream(json).rdbuf();
  EXPECT_EQ(json_body.str(), to_ndjson(snap) + "\n");

  // No temp droppings left behind.
  std::size_t entries = 0;
  for ([[maybe_unused]] const auto& e : std::filesystem::directory_iterator(dir)) {
    ++entries;
  }
  EXPECT_EQ(entries, 2u);
  std::filesystem::remove_all(dir);
}

// Satellite regression: `--metrics=FILE` (and every writer built on
// write_text_file_atomic) must create missing parent directories, however
// deep, instead of failing the rename.
TEST(WriteMetricsFileTest, CreatesDeeplyNestedParentDirectories) {
  const auto root = std::filesystem::temp_directory_path() /
                    ("ramp_obs_nested_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(root);
  const std::string path = (root / "a" / "b" / "c" / "metrics.prom").string();
  const MetricsSnapshot snap = sample_snapshot();
  write_metrics_file(path, snap);
  std::stringstream body;
  body << std::ifstream(path).rdbuf();
  EXPECT_EQ(body.str(), to_prometheus(snap));
  std::filesystem::remove_all(root);
}

TEST(WriteTextFileAtomicTest, PublishesBodyAndCreatesParents) {
  const auto root = std::filesystem::temp_directory_path() /
                    ("ramp_obs_atomic_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(root);
  const std::string path = (root / "sub" / "file.txt").string();
  write_text_file_atomic(path, "hello\n");
  std::stringstream body;
  body << std::ifstream(path).rdbuf();
  EXPECT_EQ(body.str(), "hello\n");
  // Overwrite is atomic: the second publish replaces the first cleanly.
  write_text_file_atomic(path, "world\n");
  std::stringstream body2;
  body2 << std::ifstream(path).rdbuf();
  EXPECT_EQ(body2.str(), "world\n");
  std::filesystem::remove_all(root);
}

TEST(JsonQuoteTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(json_quote("tab\there"), "\"tab\\there\"");
}

}  // namespace
}  // namespace ramp::obs
