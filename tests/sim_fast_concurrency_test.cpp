// Determinism of the sampled fast path under the parallel sweep engine: a
// sampled-mode sweep must serialize byte-for-byte identically across reruns
// and job counts, exactly like the detailed path (sweep_parallel_test). The
// sampling schedule is systematic and each cell single-threaded, so the only
// way this can break is shared mutable state leaking between cells.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "pipeline/sweep.hpp"
#include "sim/sim_mode.hpp"

namespace ramp::pipeline {
namespace {

EvaluationConfig sampled_config() {
  EvaluationConfig cfg;
  // Short enough to keep the 80-cell sweep fast under TSan, long enough
  // that every cell gets past the detailed prefix into real sampling
  // (prefix + one full period + a fast-forward tail).
  cfg.trace_instructions = 120'000;
  cfg.sim_mode = sim::SimMode::kSampled;
  return cfg;
}

std::string runner_csv(std::size_t jobs) {
  SweepRunner::Options opts;
  opts.jobs = jobs;
  opts.cache_path = "";
  return sweep_to_csv(SweepRunner(sampled_config(), opts).run());
}

// The serial baseline every test compares against, computed once.
const std::string& serial_csv() {
  static const std::string csv = runner_csv(1);
  return csv;
}

TEST(SimFastConcurrencyTest, SampledSerialRerunIsByteForByteDeterministic) {
  EXPECT_EQ(runner_csv(1), serial_csv());
}

TEST(SimFastConcurrencyTest, SampledFourJobsMatchSerialByteForByte) {
  EXPECT_EQ(runner_csv(4), serial_csv());
}

}  // namespace
}  // namespace ramp::pipeline
