// The tentpole acceptance test (ctest label: concurrency; run from a
// -DRAMP_SANITIZE=thread build): >= 32 concurrent TCP clients throwing
// mixed eval/stats/metrics traffic at one net::Server — some disconnecting
// mid-request — while
//   * every eval answer is byte-identical to the stdio-mode answer for the
//     same request (modulo the cached/coalesced provenance flags),
//   * a hot key evaluates exactly once fleet-wide (single-flight holds
//     ACROSS clients, not just within one),
//   * a tiny queue cap sheds with explicit `overloaded` responses instead
//     of queueing without bound, and
//   * graceful drain accounts for every accepted request:
//     responses_sent + dropped_responses == accepted_requests, with the
//     sent side equal to what clients actually received.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/server.hpp"
#include "net_tcp_client.hpp"
#include "pipeline/evaluator.hpp"
#include "serve/eval_service.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"

namespace ramp::net {
namespace {

using testing::LineClient;

constexpr int kClients = 32;

pipeline::EvaluationConfig tiny_config() {
  pipeline::EvaluationConfig cfg;
  cfg.trace_instructions = 3'000;
  return cfg;
}

std::string normalized(const std::string& line) {
  const serve::Json parsed = serve::Json::parse(line);
  serve::Json out = serve::Json::object();
  for (const auto& [key, value] : parsed.items()) {
    if (key == "cached" || key == "coalesced") {
      out.set(key, serve::Json(false));
    } else {
      out.set(key, value);
    }
  }
  return out.dump();
}

std::string stdio_answer(const std::string& line) {
  serve::EvalService service(tiny_config(), {});
  std::istringstream in(line + "\n");
  std::ostringstream out;
  EXPECT_EQ(serve::serve_loop(in, out, service), 0);
  std::string text = out.str();
  if (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

TEST(NetConcurrencyTest, MixedOpsFrom32ClientsMatchStdioAnswers) {
  // 180 nm keys only: every key is exactly one evaluation, so the
  // single-flight assertion at the bottom is exact, not a bound.
  const std::vector<std::string> apps = {"gcc", "gzip", "twolf", "crafty"};
  std::map<std::string, std::string> reference;  // request -> stdio answer
  std::vector<std::string> eval_reqs;
  for (const std::string& app : apps) {
    const std::string req =
        R"({"op":"eval","app":")" + app + R"(","node":"180"})";
    eval_reqs.push_back(req);
    reference[req] = normalized(stdio_answer(req));
  }

  serve::EvalService::Options sopts;
  sopts.jobs = 4;
  serve::EvalService service(tiny_config(), sopts);
  Server server(service, {});
  const std::uint16_t port = server.port();
  int rc = -1;
  std::thread server_thread([&] { rc = server.run(); });

  std::atomic<int> failures{0};
  std::atomic<int> disconnectors{0};
  std::barrier start(kClients);
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      try {
        LineClient client(static_cast<std::uint16_t>(port));
        start.arrive_and_wait();  // maximize real concurrency
        if (t % 8 == 7) {
          // Mid-request disconnectors: fire a valid eval plus a HALF line
          // (no newline) and vanish. The complete line must be accepted
          // and answered into the void; the partial must be dropped.
          client.send(eval_reqs[static_cast<std::size_t>(t) % 4]);
          client.send_raw_no_newline(R"({"op":"eval","app":"gc)");
          client.close();
          disconnectors.fetch_add(1);
          return;
        }
        constexpr int kRounds = 6;
        for (int i = 0; i < kRounds; ++i) {
          const std::string& req =
              eval_reqs[static_cast<std::size_t>(t + i) % 4];
          if (!client.send(req)) { failures.fetch_add(1); return; }
          const auto reply = client.recv_line();
          if (!reply || normalized(*reply) != reference.at(req)) {
            failures.fetch_add(1);
            return;
          }
          // Interleave control ops; their answers must keep order and be
          // well-formed (values are load-dependent, bytes are not checked).
          const std::string control =
              (i % 2 == 0) ? R"({"op":"stats"})" : R"({"op":"metrics"})";
          if (!client.send(control)) { failures.fetch_add(1); return; }
          const auto creply = client.recv_line();
          if (!creply ||
              serve::Json::parse(*creply).find("op")->as_string() !=
                  ((i % 2 == 0) ? "stats" : "metrics")) {
            failures.fetch_add(1);
            return;
          }
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);

  {
    LineClient quit(port);
    quit.send(R"({"op":"shutdown"})");
    quit.recv_line();
  }
  server_thread.join();
  EXPECT_EQ(rc, 0);

  const ServerCounters& c = server.counters();
  // The disconnectors' answers were either written into their dead sockets
  // or dropped when the connection died — never silently lost.
  EXPECT_EQ(c.responses_sent + c.dropped_responses, c.accepted_requests);
  EXPECT_EQ(disconnectors.load(), kClients / 8);
  // 4 distinct 180 nm keys served to 32 clients: exactly 4 evaluations —
  // per-key single-flight and the cache held across every client.
  EXPECT_EQ(service.stats().evaluations, 4u);
}

TEST(NetConcurrencyTest, HotKeyEvaluatesOnceAcrossAllClients) {
  serve::EvalService::Options sopts;
  sopts.jobs = 2;
  serve::EvalService service(tiny_config(), sopts);
  Server server(service, {});
  const std::uint16_t port = server.port();
  std::thread server_thread([&] { server.run(); });

  const std::string req = R"({"op":"eval","app":"gcc","node":"180"})";
  std::atomic<int> ok{0};
  std::vector<std::string> answers(kClients);
  std::barrier start(kClients);
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      try {
        LineClient client(port);
        start.arrive_and_wait();  // all 32 hit the cold key together
        if (!client.send(req)) return;
        const auto reply = client.recv_line();
        if (reply) {
          answers[static_cast<std::size_t>(t)] = normalized(*reply);
          ok.fetch_add(1);
        }
      } catch (const std::exception&) {
      }
    });
  }
  for (auto& c : clients) c.join();
  {
    LineClient quit(port);
    quit.send(R"({"op":"shutdown"})");
    quit.recv_line();
  }
  server_thread.join();

  EXPECT_EQ(ok.load(), kClients);
  for (int t = 1; t < kClients; ++t) EXPECT_EQ(answers[0], answers[t]);
  EXPECT_EQ(service.stats().evaluations, 1u)
      << "hot key must single-flight across clients";
}

TEST(NetConcurrencyTest, FloodShedsWithOverloadedInsteadOfQueueing) {
  serve::EvalService::Options sopts;
  sopts.jobs = 1;
  serve::EvalService service(tiny_config(), sopts);
  ServerOptions opts;
  opts.max_queued_requests = 4;
  Server server(service, opts);
  const std::uint16_t port = server.port();
  std::thread server_thread([&] { server.run(); });

  constexpr int kPerClient = 8;
  std::atomic<int> answered{0}, overloaded{0}, out_of_order{0};
  std::barrier start(kClients);
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      try {
        LineClient client(port);
        start.arrive_and_wait();
        for (int i = 0; i < kPerClient; ++i) {
          // Distinct key per request: nothing caches, nothing coalesces —
          // the 4-deep queue cannot absorb 32 * 8 of these.
          client.send(R"({"op":"eval","app":"gcc","node":"90","trace_len":)" +
                      std::to_string(2'000 + t * kPerClient + i) +
                      R"(,"id":)" + std::to_string(i) + "}");
        }
        for (int i = 0; i < kPerClient; ++i) {
          const auto reply = client.recv_line();
          if (!reply) return;  // lost answers show up in the totals below
          answered.fetch_add(1);
          const serve::Json j = serve::Json::parse(*reply);
          if (static_cast<int>(j.find("id")->as_number()) != i)
            out_of_order.fetch_add(1);
          if (!j.find("ok")->as_bool() && j.find("overloaded") != nullptr)
            overloaded.fetch_add(1);
        }
      } catch (const std::exception&) {
      }
    });
  }
  for (auto& c : clients) c.join();
  {
    LineClient quit(port);
    quit.send(R"({"op":"shutdown"})");
    quit.recv_line();
  }
  server_thread.join();

  EXPECT_EQ(answered.load(), kClients * kPerClient)
      << "every request gets an answer, shed or not";
  EXPECT_EQ(out_of_order.load(), 0);
  EXPECT_GE(overloaded.load(), 1) << "the flood must shed somewhere";
  EXPECT_EQ(server.counters().shed_requests,
            static_cast<std::uint64_t>(overloaded.load()));
}

TEST(NetConcurrencyTest, DrainUnderLoadDeliversEverythingAccepted) {
  static volatile std::sig_atomic_t drain;
  drain = 0;
  serve::EvalService::Options sopts;
  sopts.jobs = 2;
  serve::EvalService service(tiny_config(), sopts);
  ServerOptions opts;
  opts.drain_flag = &drain;
  Server server(service, opts);
  const std::uint16_t port = server.port();
  int rc = -1;
  std::thread server_thread([&] { rc = server.run(); });

  // Closed-loop clients stream until the server drains mid-flight; count
  // every response that actually reached a client.
  std::atomic<std::uint64_t> received{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      try {
        LineClient client(port);
        for (int i = 0; i < 1'000; ++i) {
          if (!client.send(R"({"op":"eval","app":"gcc","node":"180","id":)" +
                           std::to_string(t * 10'000 + i) + "}")) {
            break;  // server went away mid-send: drain reached us
          }
          const auto reply = client.recv_line();
          if (!reply) break;  // EOF: drained
          received.fetch_add(1);
        }
      } catch (const std::exception&) {
        // connect raced the drain: nothing sent, nothing owed
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  serve::request_drain(&drain);  // SIGTERM equivalent, mid-load
  for (auto& c : clients) c.join();
  server_thread.join();

  EXPECT_EQ(rc, 0);
  const ServerCounters& c = server.counters();
  EXPECT_GT(c.accepted_requests, 0u);
  EXPECT_EQ(c.responses_sent + c.dropped_responses, c.accepted_requests)
      << "drain must account for every accepted request";
  EXPECT_EQ(c.responses_sent, received.load())
      << "every response the server counts as sent was actually received";
}

TEST(NetConcurrencyTest, TracingOnKeepsResponsesByteIdenticalFor32Clients) {
  // References come from an untraced stdio service — the bytes a client
  // must see whether or not the server is tracing, modulo the response's
  // own `trace` object (which only `"trace":true` requests receive).
  const std::vector<std::string> apps = {"gcc", "gzip", "twolf", "crafty"};
  std::map<std::string, std::string> reference;  // plain request -> answer
  std::vector<std::string> plain_reqs, traced_reqs;
  for (const std::string& app : apps) {
    const std::string plain =
        R"({"op":"eval","app":")" + app + R"(","node":"130"})";
    plain_reqs.push_back(plain);
    traced_reqs.push_back(R"({"op":"eval","app":")" + app +
                          R"(","node":"130","trace":true})");
    reference[plain] = normalized(stdio_answer(plain));
  }
  const auto strip_trace = [](const std::string& line) {
    const serve::Json parsed = serve::Json::parse(line);
    serve::Json out = serve::Json::object();
    for (const auto& [key, value] : parsed.items()) {
      if (key == "trace") continue;
      if (key == "cached" || key == "coalesced") {
        out.set(key, serve::Json(false));
      } else {
        out.set(key, value);
      }
    }
    return out.dump();
  };

  serve::EvalService::Options sopts;
  sopts.jobs = 4;
  serve::EvalService service(tiny_config(), sopts);
  ServerOptions opts;
  opts.request_trace = true;  // every request pays the phase clocks
  Server server(service, opts);
  const std::uint16_t port = server.port();
  int rc = -1;
  std::thread server_thread([&] { rc = server.run(); });

  std::atomic<int> failures{0};
  std::barrier start(kClients);
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      try {
        LineClient client(port);
        start.arrive_and_wait();
        constexpr int kRounds = 6;
        for (int i = 0; i < kRounds; ++i) {
          const auto k = static_cast<std::size_t>(t + i) % 4;
          const bool want_trace = (t + i) % 2 == 0;
          const std::string& req =
              want_trace ? traced_reqs[k] : plain_reqs[k];
          if (!client.send(req)) { failures.fetch_add(1); return; }
          const auto reply = client.recv_line();
          if (!reply || strip_trace(*reply) != reference.at(plain_reqs[k])) {
            failures.fetch_add(1);
            return;
          }
          // Traced responses carry their breakdown; plain ones never do.
          const serve::Json j = serve::Json::parse(*reply);
          const serve::Json* trace = j.find("trace");
          if (want_trace != (trace != nullptr)) {
            failures.fetch_add(1);
            return;
          }
          if (trace != nullptr &&
              (trace->find("phases") == nullptr ||
               trace->find("total_ns")->as_number() <= 0.0)) {
            failures.fetch_add(1);
            return;
          }
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);

  {
    LineClient quit(port);
    quit.send(R"({"op":"shutdown"})");
    quit.recv_line();
  }
  server_thread.join();
  EXPECT_EQ(rc, 0);
  const ServerCounters& c = server.counters();
  EXPECT_EQ(c.responses_sent + c.dropped_responses, c.accepted_requests);
  // 4 distinct node-130 keys, each needing its app's 180 nm base run:
  // exactly 8 cell evaluations for 192 requests — tracing must not
  // perturb caching or single-flight.
  EXPECT_EQ(service.stats().evaluations, 8u);
}

}  // namespace
}  // namespace ramp::net
