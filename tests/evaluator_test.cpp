// Integration tests for the single-cell evaluation pipeline
// (trace -> sim -> power -> thermal -> RAMP).
#include "pipeline/evaluator.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ramp::pipeline {
namespace {

EvaluationConfig quick_config() {
  EvaluationConfig cfg;
  cfg.trace_instructions = 30'000;
  return cfg;
}

TEST(EvaluatorTest, BaselineProducesSaneNumbers) {
  const Evaluator ev(quick_config());
  const auto r = ev.evaluate(workloads::workload("crafty"),
                             scaling::TechPoint::k180nm);
  EXPECT_GT(r.ipc, 1.2);  // warmup-dominated at this short length
  EXPECT_LT(r.ipc, 3.0);
  EXPECT_GT(r.avg_total_power_w, 20.0);
  EXPECT_LT(r.avg_total_power_w, 40.0);
  EXPECT_GT(r.max_structure_temp_k, r.sink_temp_k);
  EXPECT_GT(r.sink_temp_k, 318.15);  // above ambient
  EXPECT_GT(r.raw_fits.total(), 0.0);
  EXPECT_GT(r.max_activity, 0.0);
  EXPECT_LE(r.max_activity, 1.0);
}

TEST(EvaluatorTest, LeakageIsPartOfTotalPower) {
  const Evaluator ev(quick_config());
  const auto r = ev.evaluate(workloads::workload("gzip"),
                             scaling::TechPoint::k180nm);
  EXPECT_GT(r.avg_leakage_power_w, 0.5);
  EXPECT_NEAR(r.avg_total_power_w,
              r.avg_dynamic_power_w + r.avg_leakage_power_w, 1e-9);
}

TEST(EvaluatorTest, SinkTargetIsHonored) {
  const Evaluator ev(quick_config());
  const auto base = ev.evaluate(workloads::workload("mesa"),
                                scaling::TechPoint::k180nm);
  const auto scaled = ev.evaluate(workloads::workload("mesa"),
                                  scaling::TechPoint::k90nm, base.sink_temp_k);
  EXPECT_NEAR(scaled.sink_temp_k, base.sink_temp_k, 0.05);
}

TEST(EvaluatorTest, EvaluateAppKeepsSinkConstantAcrossNodes) {
  const Evaluator ev(quick_config());
  const auto results = ev.evaluate_app(workloads::workload("gap"));
  ASSERT_EQ(results.size(), scaling::kAllTechPoints.size());
  const double sink0 = results.front().sink_temp_k;
  for (const auto& r : results) {
    EXPECT_NEAR(r.sink_temp_k, sink0, 0.05) << scaling::tech_name(r.tech);
  }
}

TEST(EvaluatorTest, HottestStructureRisesWithScaling) {
  // §5.1: hot-structure temperature increases with scaling while the sink
  // stays constant.
  const Evaluator ev(quick_config());
  const auto results = ev.evaluate_app(workloads::workload("crafty"));
  const auto& t180 = results.front();
  const AppTechResult* t65 = nullptr;
  for (const auto& r : results) {
    if (r.tech == scaling::TechPoint::k65nm_1V0) t65 = &r;
  }
  ASSERT_NE(t65, nullptr);
  EXPECT_GT(t65->max_structure_temp_k, t180.max_structure_temp_k + 5.0);
  EXPECT_LT(t65->max_structure_temp_k, t180.max_structure_temp_k + 30.0);
}

TEST(EvaluatorTest, RawFitRisesWithScaling) {
  const Evaluator ev(quick_config());
  const auto results = ev.evaluate_app(workloads::workload("apsi"));
  const double base = results.front().raw_fits.total();
  for (const auto& r : results) {
    if (r.tech == scaling::TechPoint::k65nm_1V0) {
      EXPECT_GT(r.raw_fits.total(), base);
    }
  }
}

TEST(EvaluatorTest, DeterministicAcrossCalls) {
  const Evaluator ev(quick_config());
  const auto a = ev.evaluate(workloads::workload("vpr"),
                             scaling::TechPoint::k130nm);
  const auto b = ev.evaluate(workloads::workload("vpr"),
                             scaling::TechPoint::k130nm);
  EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
  EXPECT_DOUBLE_EQ(a.avg_total_power_w, b.avg_total_power_w);
  EXPECT_DOUBLE_EQ(a.raw_fits.total(), b.raw_fits.total());
}

TEST(EvaluatorTest, ScaleSummaryAppliesConstants) {
  core::FitSummary raw;
  raw.by_structure[1][static_cast<std::size_t>(core::Mechanism::kEm)] = 2.0;
  raw.tc_fit = 3.0;
  core::MechanismConstants k;
  k.em = 10.0;
  k.tc = 100.0;
  const auto scaled = scale_summary(raw, k);
  EXPECT_DOUBLE_EQ(
      scaled.by_structure[1][static_cast<std::size_t>(core::Mechanism::kEm)],
      20.0);
  EXPECT_DOUBLE_EQ(scaled.tc_fit, 300.0);
}

TEST(EvaluatorTest, RejectsBadConfig) {
  EvaluationConfig cfg = quick_config();
  cfg.trace_instructions = 0;
  EXPECT_THROW(Evaluator{cfg}, InvalidArgument);
  cfg = quick_config();
  cfg.interval_seconds = 0.0;
  EXPECT_THROW(Evaluator{cfg}, InvalidArgument);
}

TEST(EvaluatorTest, SinkTargetBelowAmbientThrows) {
  const Evaluator ev(quick_config());
  EXPECT_THROW(ev.evaluate(workloads::workload("gcc"),
                           scaling::TechPoint::k90nm, 300.0),
               InvalidArgument);
}

}  // namespace
}  // namespace ramp::pipeline
