// End-to-end integration tests: the paper's headline claims must hold for a
// reduced-size sweep (shape, not absolute numbers — see EXPERIMENTS.md).
#include <gtest/gtest.h>

#include <algorithm>

#include "pipeline/sweep.hpp"

namespace ramp::pipeline {
namespace {

const SweepResult& sweep() {
  static const SweepResult s = [] {
    EvaluationConfig cfg;
    // Long enough to amortize cache/predictor warmup — the IPC/power
    // calibration checks below compare against steady-state Table 3 values.
    cfg.trace_instructions = 120'000;
    SweepRunner::Options opts;
    opts.cache_path.clear();
    return SweepRunner(std::move(cfg), std::move(opts)).run();
  }();
  return s;
}

double avg_fit(scaling::TechPoint tp) {
  return sweep().average_total_fit_all(tp);
}

TEST(PaperClaimsTest, TotalFitRisesSubstantiallyBy65nm) {
  // §5.2: +316% on average from 180 nm to 65 nm (1.0 V). Accept a band of
  // +150%..+600% for the reduced-size reproduction.
  const double ratio =
      avg_fit(scaling::TechPoint::k65nm_1V0) / avg_fit(scaling::TechPoint::k180nm);
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 7.0);
}

TEST(PaperClaimsTest, RateOfIncreaseAccelerates) {
  // §1.3: the rate of increase of failure rate increases with scaling.
  const double f180 = avg_fit(scaling::TechPoint::k180nm);
  const double f130 = avg_fit(scaling::TechPoint::k130nm);
  const double f90 = avg_fit(scaling::TechPoint::k90nm);
  const double f65 = avg_fit(scaling::TechPoint::k65nm_1V0);
  EXPECT_GT(f130 / f180, 1.0);
  EXPECT_GT(f90 / f130, f130 / f180 * 0.9);  // allow mild slack
  EXPECT_GT(f65 / f90, f90 / f130);
}

TEST(PaperClaimsTest, TddbAndEmAreTheLargestIncreases) {
  // §5.3 / conclusions: TDDB provides the largest challenge, then EM;
  // SM and TC are much less drastic.
  auto mech_ratio = [&](core::Mechanism m) {
    auto avg = [&](scaling::TechPoint tp) {
      return (sweep().average_mechanism_fit(workloads::Suite::kSpecFp, tp, m) +
              sweep().average_mechanism_fit(workloads::Suite::kSpecInt, tp, m)) /
             2.0;
    };
    return avg(scaling::TechPoint::k65nm_1V0) / avg(scaling::TechPoint::k180nm);
  };
  const double em = mech_ratio(core::Mechanism::kEm);
  const double sm = mech_ratio(core::Mechanism::kSm);
  const double tddb = mech_ratio(core::Mechanism::kTddb);
  const double tc = mech_ratio(core::Mechanism::kTc);
  EXPECT_GT(tddb, em);
  EXPECT_GT(em, sm);
  EXPECT_GT(sm, tc);
  EXPECT_LT(tc, 2.2);  // "much less drastic"
  EXPECT_GT(tddb, 5.0);
}

TEST(PaperClaimsTest, SpecIntIncreaseExceedsSpecFp) {
  // §5.2: SpecInt's FIT increase (357%) exceeds SpecFP's (274%).
  auto ratio = [&](workloads::Suite s) {
    return sweep().average_total_fit(s, scaling::TechPoint::k65nm_1V0) /
           sweep().average_total_fit(s, scaling::TechPoint::k180nm);
  };
  EXPECT_GT(ratio(workloads::Suite::kSpecInt),
            ratio(workloads::Suite::kSpecFp) * 0.98);
}

TEST(PaperClaimsTest, HoldingVoltageAt1V0IsMuchWorseThanScalingTo0V9) {
  const double r09 = avg_fit(scaling::TechPoint::k65nm_0V9) /
                     avg_fit(scaling::TechPoint::k180nm);
  const double r10 = avg_fit(scaling::TechPoint::k65nm_1V0) /
                     avg_fit(scaling::TechPoint::k180nm);
  EXPECT_GT(r10, 1.5 * r09);
  EXPECT_GT(r09, 1.3);  // 0.9 V still significantly worse than 180 nm
}

TEST(PaperClaimsTest, MaxTemperatureRisesAbout15K) {
  // §5.1: hottest structure rises ~15 K on average from 180 nm to 65 nm
  // (1.0 V) while the heat sink stays constant. Accept 8..25 K.
  double rise = 0.0, sink_drift = 0.0;
  for (const auto& w : workloads::spec2k_suite()) {
    const auto& a = sweep().at(w.name, scaling::TechPoint::k180nm);
    const auto& b = sweep().at(w.name, scaling::TechPoint::k65nm_1V0);
    rise += b.max_structure_temp_k - a.max_structure_temp_k;
    sink_drift += std::abs(b.sink_temp_k - a.sink_temp_k);
  }
  rise /= 16.0;
  sink_drift /= 16.0;
  EXPECT_GT(rise, 8.0);
  EXPECT_LT(rise, 25.0);
  EXPECT_LT(sink_drift, 0.2);
}

TEST(PaperClaimsTest, WorstCaseGapWidensWithScaling) {
  // §5.2: worst-case FIT vs the highest application FIT — 25% at 180 nm
  // growing to 90% at 65 nm. Check that the gap widens substantially.
  auto gap = [&](scaling::TechPoint tp) {
    double highest = 0.0;
    for (const auto& r : sweep().results) {
      if (r.tech == tp) {
        highest = std::max(highest, sweep().qualified_fits(r).total());
      }
    }
    const double wc = sweep().worst_case(tp).total();
    return (wc - highest) / highest;
  };
  const double g180 = gap(scaling::TechPoint::k180nm);
  const double g65 = gap(scaling::TechPoint::k65nm_1V0);
  EXPECT_GT(g180, 0.0);
  EXPECT_GT(g65, g180);
}

TEST(PaperClaimsTest, FitRangeAcrossAppsWidensWithScaling) {
  // §5.2: the FIT range across applications increases with scaling.
  auto range = [&](scaling::TechPoint tp) {
    double lo = 1e30, hi = 0.0;
    for (const auto& r : sweep().results) {
      if (r.tech != tp) continue;
      const double f = sweep().qualified_fits(r).total();
      lo = std::min(lo, f);
      hi = std::max(hi, f);
    }
    return hi - lo;
  };
  EXPECT_GT(range(scaling::TechPoint::k65nm_1V0),
            2.0 * range(scaling::TechPoint::k180nm));
}

TEST(PaperClaimsTest, FitOrderingFollowsTemperatureOrdering) {
  // §5.2: "FIT values for applications correlate well with application
  // temperature ... the order of the curves remains the same." Check a
  // strong positive rank correlation between the per-app time-averaged die
  // temperature and the qualified total FIT.
  for (const auto tp :
       {scaling::TechPoint::k180nm, scaling::TechPoint::k65nm_1V0}) {
    std::vector<std::pair<double, double>> points;  // (temp, fit)
    for (const auto& r : sweep().results) {
      if (r.tech != tp) continue;
      points.emplace_back(r.avg_die_temp_k, sweep().qualified_fits(r).total());
    }
    ASSERT_EQ(points.size(), 16u);
    // Spearman rank correlation.
    auto ranks = [&](auto key) {
      std::vector<int> order(points.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[static_cast<std::size_t>(i)] = static_cast<int>(i);
      std::sort(order.begin(), order.end(),
                [&](int a, int b) { return key(points[static_cast<std::size_t>(a)]) < key(points[static_cast<std::size_t>(b)]); });
      std::vector<int> rank(points.size());
      for (std::size_t i = 0; i < order.size(); ++i) rank[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
      return rank;
    };
    const auto rt = ranks([](const auto& p) { return p.first; });
    const auto rf = ranks([](const auto& p) { return p.second; });
    double d2 = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const double d = rt[i] - rf[i];
      d2 += d * d;
    }
    const double n = static_cast<double>(points.size());
    const double spearman = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
    EXPECT_GT(spearman, 0.7) << scaling::tech_name(tp);
  }
}

TEST(PaperClaimsTest, IpcApproximatesTable3) {
  // Substitution fidelity: simulated 180 nm IPC within 20% of Table 3.
  for (const auto& w : workloads::spec2k_suite()) {
    const auto& r = sweep().at(w.name, scaling::TechPoint::k180nm);
    EXPECT_NEAR(r.ipc, w.table3_ipc, w.table3_ipc * 0.20) << w.name;
  }
}

TEST(PaperClaimsTest, PowerApproximatesTable3) {
  // Substitution fidelity: 180 nm per-app power within 6% of Table 3.
  for (const auto& w : workloads::spec2k_suite()) {
    const auto& r = sweep().at(w.name, scaling::TechPoint::k180nm);
    EXPECT_NEAR(r.avg_total_power_w, w.table3_power_w,
                w.table3_power_w * 0.06)
        << w.name;
  }
}

TEST(PaperClaimsTest, ScaledPowerApproximatesTable4) {
  // Table 4's average total power column: 29.1/19.0/14.7/14.4/16.9 W.
  const struct { scaling::TechPoint tp; double want; } rows[] = {
      {scaling::TechPoint::k180nm, 29.1},
      {scaling::TechPoint::k130nm, 19.0},
      {scaling::TechPoint::k90nm, 14.7},
      {scaling::TechPoint::k65nm_0V9, 14.4},
      {scaling::TechPoint::k65nm_1V0, 16.9},
  };
  for (const auto& row : rows) {
    double sum = 0.0;
    for (const auto& r : sweep().results) {
      if (r.tech == row.tp) sum += r.avg_total_power_w;
    }
    EXPECT_NEAR(sum / 16.0, row.want, row.want * 0.10)
        << scaling::tech_name(row.tp);
  }
}

}  // namespace
}  // namespace ramp::pipeline
