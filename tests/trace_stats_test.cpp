// Tests for trace characterization — the generator's knobs must be
// recoverable from its output.
#include "trace/trace_stats.hpp"

#include <gtest/gtest.h>

#include "trace/synthetic_generator.hpp"
#include "workloads/spec2k.hpp"

namespace ramp::trace {
namespace {

TEST(TraceStatsTest, EmptyReaderYieldsZeros) {
  struct Empty final : TraceReader {
    bool next(Instruction&) override { return false; }
  } empty;
  const auto s = characterize(empty);
  EXPECT_EQ(s.instructions, 0u);
  EXPECT_DOUBLE_EQ(s.mean_dep_distance, 0.0);
}

TEST(TraceStatsTest, MixMatchesGeneratorWeights) {
  GeneratorProfile p;
  p.op_mix = {40, 2, 0.2, 10, 0.5, 25, 10, 5, 4};
  p.block_len = 1000;  // keep forced branches negligible
  SyntheticTrace t(p, 100'000, 3);
  const auto s = characterize(t);
  const double total = 96.7;
  EXPECT_NEAR(s.mix[static_cast<std::size_t>(OpClass::kLoad)], 25 / total, 0.02);
  EXPECT_NEAR(s.mix[static_cast<std::size_t>(OpClass::kIntAlu)], 40 / total, 0.02);
  double sum = 0;
  for (double m : s.mix) sum += m;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(TraceStatsTest, DependencyDistanceTracksKnob) {
  auto measured = [](double mean_dist) {
    GeneratorProfile p;
    p.op_mix = {60, 1, 0, 0, 0, 20, 8, 5, 4};
    p.dep_distance_p = 1.0 / (1.0 + mean_dist);
    SyntheticTrace t(p, 60'000, 4);
    return characterize(t).mean_dep_distance;
  };
  EXPECT_LT(measured(1.5), measured(6.0));
}

TEST(TraceStatsTest, BranchStatsMatchProfile) {
  GeneratorProfile p;
  p.op_mix = {60, 1, 0, 0, 0, 20, 8, 5, 4};
  p.block_len = 10;
  p.taken_bias = 0.6;
  p.code_blocks = 128;
  SyntheticTrace t(p, 100'000, 5);
  const auto s = characterize(t);
  EXPECT_NEAR(s.branch_fraction, 0.1, 0.01);  // one per 10-instruction block
  EXPECT_NEAR(s.taken_fraction, 0.6, 0.08);
  EXPECT_LE(s.static_branch_sites, 128u);
  EXPECT_GT(s.static_branch_sites, 30u);
}

TEST(TraceStatsTest, FootprintTracksProfile) {
  auto touched = [](std::uint64_t hot_kb) {
    GeneratorProfile p;
    p.op_mix = {40, 1, 0, 0, 0, 35, 10, 4, 3};
    p.cold_fraction = 0.0;
    p.stream_fraction = 0.3;
    p.hot_footprint_bytes = hot_kb * 1024;
    SyntheticTrace t(p, 80'000, 6);
    return characterize(t).touched_bytes;
  };
  EXPECT_LT(touched(8), touched(64));
}

TEST(TraceStatsTest, StreamFractionRaisesSequentiality) {
  auto seq = [](double stream) {
    GeneratorProfile p;
    p.op_mix = {40, 1, 0, 0, 0, 35, 10, 4, 3};
    p.stream_fraction = stream;
    SyntheticTrace t(p, 60'000, 7);
    return characterize(t).sequential_fraction;
  };
  EXPECT_GT(seq(0.9), seq(0.1) + 0.2);
}

TEST(TraceStatsTest, CodeFootprintBoundedByProfile) {
  GeneratorProfile p;
  p.op_mix = {60, 1, 0, 0, 0, 20, 8, 5, 4};
  p.code_blocks = 64;
  p.block_len = 8;
  SyntheticTrace t(p, 60'000, 8);
  const auto s = characterize(t);
  EXPECT_LE(s.code_bytes, 64u * 8u * 4u);
  EXPECT_GT(s.code_bytes, 64u * 8u * 2u);  // most of the loop gets visited
}

TEST(TraceStatsTest, MaxInstructionsCap) {
  const auto& w = workloads::workload("gcc");
  SyntheticTrace t(w.profile, 50'000, 9);
  const auto s = characterize(t, 10'000);
  EXPECT_EQ(s.instructions, 10'000u);
}

TEST(TraceStatsTest, AllSuiteProfilesCharacterize) {
  // Smoke: every calibrated profile yields sane, self-consistent stats.
  for (const auto& w : workloads::spec2k_suite()) {
    SyntheticTrace t(w.profile, 20'000, 10);
    const auto s = characterize(t);
    EXPECT_EQ(s.instructions, 20'000u) << w.name;
    EXPECT_GT(s.memory_fraction, 0.2) << w.name;
    EXPECT_LT(s.memory_fraction, 0.5) << w.name;
    EXPECT_GT(s.branch_fraction, 0.02) << w.name;
    EXPECT_GT(s.mean_dep_distance, 1.0) << w.name;
  }
}

}  // namespace
}  // namespace ramp::trace
