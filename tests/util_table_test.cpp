// Tests for table/CSV formatting and env helpers.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/env.hpp"
#include "util/error.hpp"

namespace ramp {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t("Title");
  t.set_header({"app", "fit"});
  t.add_row({"gcc", "1234.5"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| app |"), std::string::npos);
  EXPECT_NE(s.find("gcc"), std::string::npos);
}

TEST(TextTableTest, RowWidthMismatchThrows) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(TextTableTest, AddRowBeforeHeaderThrows) {
  TextTable t;
  EXPECT_THROW(t.add_row({"x"}), InvalidArgument);
}

TEST(TextTableTest, CsvEscapesSpecialCharacters) {
  TextTable t;
  t.set_header({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTableTest, CsvRoundtripSimple) {
  TextTable t;
  t.set_header({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "x,y\n1,2\n");
}

TEST(FormatTest, FixedDigits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
}

TEST(FormatTest, FitSwitchesToScientific) {
  EXPECT_EQ(fmt_fit(1234.56), "1234.6");
  EXPECT_NE(fmt_fit(2.5e7).find("e"), std::string::npos);
}

TEST(FormatTest, PercentChange) {
  EXPECT_EQ(fmt_pct_change(4.16), "+316%");
  EXPECT_EQ(fmt_pct_change(0.5), "-50%");
}

TEST(EnvTest, U64ParsesAndFallsBack) {
  ::setenv("RAMP_TEST_U64", "123", 1);
  EXPECT_EQ(env_u64("RAMP_TEST_U64", 7), 123u);
  ::unsetenv("RAMP_TEST_U64");
  EXPECT_EQ(env_u64("RAMP_TEST_U64", 7), 7u);
}

TEST(EnvTest, U64RejectsGarbage) {
  ::setenv("RAMP_TEST_U64", "12abc", 1);
  EXPECT_THROW(env_u64("RAMP_TEST_U64", 0), InvalidArgument);
  ::unsetenv("RAMP_TEST_U64");
}

TEST(EnvTest, EnabledSemantics) {
  ::unsetenv("RAMP_TEST_FLAG");
  EXPECT_TRUE(env_enabled("RAMP_TEST_FLAG"));
  ::setenv("RAMP_TEST_FLAG", "off", 1);
  EXPECT_FALSE(env_enabled("RAMP_TEST_FLAG"));
  ::setenv("RAMP_TEST_FLAG", "0", 1);
  EXPECT_FALSE(env_enabled("RAMP_TEST_FLAG"));
  ::setenv("RAMP_TEST_FLAG", "on", 1);
  EXPECT_TRUE(env_enabled("RAMP_TEST_FLAG"));
  ::unsetenv("RAMP_TEST_FLAG");
}

}  // namespace
}  // namespace ramp
