// Flight-recorder tests: deterministic stride-doubling downsampling in
// TimelineBuffer, the anomaly watchdog's rules and never-throws contract,
// golden CSV / parseable NDJSON exports, and the evaluator integration —
// including the acceptance bar that a recorded timeline's final point
// reproduces the sweep-reported per-mechanism FIT and that recording never
// changes a result.
#include "obs/timeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/mechanisms.hpp"
#include "obs/span.hpp"
#include "pipeline/evaluator.hpp"
#include "pipeline/sweep.hpp"
#include "scaling/technology.hpp"
#include "serve/json.hpp"
#include "sim/structures.hpp"
#include "util/error.hpp"
#include "workloads/spec2k.hpp"

namespace ramp::obs {
namespace {

/// Sets an environment variable for one test and restores it on exit.
class ScopedEnv {
 public:
  ScopedEnv(std::string name, const char* value) : name_(std::move(name)) {
    if (const char* old = std::getenv(name_.c_str())) old_ = old;
    if (value != nullptr) {
      ::setenv(name_.c_str(), value, /*overwrite=*/1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ~ScopedEnv() {
    if (old_) {
      ::setenv(name_.c_str(), old_->c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::optional<std::string> old_;
};

TimelinePoint pt(std::uint64_t interval, double temp = 350.0,
                 double fit = 100.0) {
  TimelinePoint p;
  p.interval = interval;
  p.time_s = 1e-6 * static_cast<double>(interval + 1);
  p.ipc = 1.25;
  p.dyn_power_w = 10.0;
  p.leak_power_w = 2.0;
  p.temp_k = {temp, temp - 1.0};
  p.fit_inst = {fit, fit / 2.0};
  p.fit_avg = {fit, fit / 2.0};
  return p;
}

TEST(TimelineBufferTest, KeepsEveryPointBelowCapacity) {
  TimelineBuffer buf(8);
  for (std::uint64_t i = 0; i < 5; ++i) buf.push(pt(i));
  EXPECT_EQ(buf.stride(), 1u);
  EXPECT_EQ(buf.pushed(), 5u);
  const auto pts = buf.points();
  ASSERT_EQ(pts.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(pts[i].interval, i);
}

TEST(TimelineBufferTest, StrideDoublingBoundsMemory) {
  TimelineBuffer buf(8);
  for (std::uint64_t i = 0; i < 1000; ++i) buf.push(pt(i));
  EXPECT_LE(buf.sampled().size(), 8u);
  // Stride is a power of two and every sampled interval is a multiple of it.
  const std::uint64_t stride = buf.stride();
  EXPECT_EQ(stride & (stride - 1), 0u);
  EXPECT_GT(stride, 1u);
  for (const auto& p : buf.sampled()) EXPECT_EQ(p.interval % stride, 0u);
  // Chronological and starting at interval 0.
  ASSERT_FALSE(buf.sampled().empty());
  EXPECT_EQ(buf.sampled().front().interval, 0u);
  for (std::size_t i = 1; i < buf.sampled().size(); ++i) {
    EXPECT_LT(buf.sampled()[i - 1].interval, buf.sampled()[i].interval);
  }
}

TEST(TimelineBufferTest, PointsAlwaysEndAtFinalInterval) {
  TimelineBuffer buf(4);
  for (std::uint64_t i = 0; i < 999; ++i) buf.push(pt(i));
  const auto pts = buf.points();
  ASSERT_FALSE(pts.empty());
  // 998 is not a multiple of the final stride, so points() patches it in.
  EXPECT_EQ(pts.back().interval, 998u);
  EXPECT_LE(pts.size(), 5u);  // capacity + the final-point patch
}

TEST(TimelineBufferTest, DeterministicForAGivenSequence) {
  TimelineBuffer a(16);
  TimelineBuffer b(16);
  for (std::uint64_t i = 0; i < 500; ++i) {
    a.push(pt(i, 350.0 + 0.01 * static_cast<double>(i)));
    b.push(pt(i, 350.0 + 0.01 * static_cast<double>(i)));
  }
  const auto pa = a.points();
  const auto pb = b.points();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].interval, pb[i].interval);
    EXPECT_EQ(pa[i].temp_k, pb[i].temp_k);
  }
}

TEST(TimelineBufferTest, RecentReturnsRawUndownsampledTail) {
  TimelineBuffer buf(4);
  for (std::uint64_t i = 0; i < 100; ++i) buf.push(pt(i));
  const auto tail = buf.recent(5);
  ASSERT_EQ(tail.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(tail[i].interval, 95u + i);
  // Bounded by the ring capacity even for huge k.
  EXPECT_EQ(buf.recent(1000).size(), TimelineBuffer::kRecentCapacity);
}

TEST(TimelineBufferTest, RejectsCapacityBelowTwo) {
  EXPECT_THROW(TimelineBuffer(1), InvalidArgument);
}

TEST(WatchdogTest, OverTemperatureTripsExactlyOnce) {
  Profiler prof(/*enabled=*/true);
  prof.record(Stage::kSim, 0.5);
  WatchdogRules rules;
  rules.max_temp_k = 360.0;
  Watchdog dog("gcc@90", rules, prof);
  TimelineBuffer history(8);

  dog.check(pt(0, 350.0), history);
  history.push(pt(0, 350.0));
  EXPECT_TRUE(dog.incidents().empty());

  dog.check(pt(1, 365.0), history);
  history.push(pt(1, 365.0));
  dog.check(pt(2, 370.0), history);  // suppressed: rule already tripped

  ASSERT_EQ(dog.incidents().size(), 1u);
  EXPECT_EQ(dog.suppressed(), 1u);
  const Incident& inc = dog.incidents().front();
  EXPECT_EQ(inc.cell, "gcc@90");
  EXPECT_EQ(inc.rule, "over_temperature");
  EXPECT_EQ(inc.interval, 1u);
  EXPECT_DOUBLE_EQ(inc.value, 365.0);
  EXPECT_DOUBLE_EQ(inc.threshold, 360.0);
  // The dump carries the pre-trip history plus the trigger, and the
  // profiler's recent spans.
  ASSERT_GE(inc.points.size(), 2u);
  EXPECT_EQ(inc.points.back().interval, 1u);
  ASSERT_GE(inc.spans.size(), 1u);
  EXPECT_EQ(inc.spans.back().stage, Stage::kSim);
}

TEST(WatchdogTest, NonFiniteValuesTrip) {
  Profiler prof(/*enabled=*/false);
  Watchdog dog("cell", WatchdogRules{}, prof);
  TimelineBuffer history(8);
  TimelinePoint p = pt(0);
  p.temp_k[1] = std::nan("");
  dog.check(p, history);
  ASSERT_EQ(dog.incidents().size(), 1u);
  EXPECT_EQ(dog.incidents().front().rule, "non_finite");
}

TEST(WatchdogTest, FitSpikeArmsAfterMinimumHistory) {
  Profiler prof(/*enabled=*/false);
  WatchdogRules rules;
  rules.max_temp_k = 0.0;  // isolate the spike rule
  rules.fit_spike_factor = 8.0;
  rules.spike_min_samples = 16;
  Watchdog dog("cell", rules, prof);
  TimelineBuffer history(64);

  // A huge early value must NOT trip: the median is not armed yet.
  dog.check(pt(0, 350.0, 1e9), history);
  history.push(pt(0, 350.0, 1e9));
  EXPECT_TRUE(dog.incidents().empty());

  for (std::uint64_t i = 1; i < 20; ++i) {
    dog.check(pt(i), history);
    history.push(pt(i));
  }
  EXPECT_TRUE(dog.incidents().empty());

  // 100 + 50 per point -> total 150; 8x median needs > 1200.
  dog.check(pt(20, 350.0, 10'000.0), history);
  ASSERT_EQ(dog.incidents().size(), 1u);
  EXPECT_EQ(dog.incidents().front().rule, "fit_spike");
  EXPECT_GT(dog.incidents().front().value,
            dog.incidents().front().threshold);
}

CellTimeline tiny_timeline() {
  CellTimeline t;
  t.cell = "gcc@65-1.0";
  t.temp_names = {"IFU", "LSU"};
  t.fit_names = {"EM"};
  t.intervals = 2;
  t.stride = 1;
  t.capacity = 8;
  TimelinePoint p0 = pt(0);
  p0.temp_k = {350.0, 349.5};
  p0.fit_inst = {100.0};
  p0.fit_avg = {100.0};
  TimelinePoint p1 = pt(1);
  p1.temp_k = {350.25, 349.75};
  p1.fit_inst = {110.0};
  p1.fit_avg = {105.0};
  t.points = {p0, p1};
  return t;
}

TEST(TimelineCsvTest, GoldenOutput) {
  const std::string expected =
      "# ramp_timeline v1 cell=gcc@65-1.0 intervals=2 stride=1 capacity=8\n"
      "interval,time_s,ipc,dyn_w,leak_w,temp_k_IFU,temp_k_LSU,fit_inst_EM,"
      "fit_avg_EM\n"
      "0,9.9999999999999995e-07,1.25,10,2,350,349.5,100,100\n"
      "1,1.9999999999999999e-06,1.25,10,2,350.25,349.75,110,105\n";
  EXPECT_EQ(timeline_to_csv(tiny_timeline()), expected);
}

TEST(TimelineNdjsonTest, EveryLineParsesWithTheServeCodec) {
  const std::string body = timeline_to_ndjson(tiny_timeline());
  std::istringstream in(body);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));  // metadata
  const serve::Json meta = serve::Json::parse(line);
  EXPECT_EQ(meta.find("cell")->as_string("cell"), "gcc@65-1.0");
  EXPECT_EQ(meta.find("intervals")->as_number("intervals"), 2.0);
  ASSERT_NE(meta.find("temp_names"), nullptr);

  std::size_t points = 0;
  while (std::getline(in, line)) {
    const serve::Json p = serve::Json::parse(line);
    EXPECT_EQ(p.find("interval")->as_number("interval"),
              static_cast<double>(points));
    ASSERT_NE(p.find("temp_k"), nullptr);
    ++points;
  }
  EXPECT_EQ(points, 2u);
}

TEST(IncidentJsonTest, ParsesAndMapsNanToNull) {
  Incident inc;
  inc.cell = "art@130";
  inc.rule = "non_finite";
  inc.interval = 7;
  inc.time_s = 7e-6;
  inc.value = std::nan("");
  inc.threshold = 0.0;
  inc.detail = "non-finite temperature";
  TimelinePoint p = pt(7);
  p.temp_k[0] = std::nan("");
  inc.points = {p};
  inc.spans = {{Stage::kThermal, 0.125}};

  const serve::Json j = serve::Json::parse(incident_to_json(inc));
  EXPECT_EQ(j.find("rule")->as_string("rule"), "non_finite");
  EXPECT_TRUE(j.find("value")->is_null());
  ASSERT_NE(j.find("points"), nullptr);
  EXPECT_EQ(j.find("spans")->elements().size(), 1u);
}

TEST(TimelineFileStemTest, MapsSeparatorsToUnderscore) {
  EXPECT_EQ(timeline_file_stem("gcc@65-1.0"), "gcc_65-1.0");
  EXPECT_EQ(timeline_file_stem("a/b\\c:d"), "a_b_c_d");
}

// ---- evaluator integration -------------------------------------------------

pipeline::EvaluationConfig quick_config() {
  pipeline::EvaluationConfig cfg;
  cfg.trace_instructions = 5'000;
  return cfg;
}

TEST(EvaluatorTimelineTest, FinalPointReproducesReportedFit) {
  pipeline::EvaluationConfig cfg = quick_config();
  cfg.timeline_enabled = true;
  const pipeline::Evaluator ev(cfg);
  const auto r =
      ev.evaluate(workloads::workload("gcc"), scaling::TechPoint::k180nm);

  ASSERT_FALSE(r.timeline.empty());
  EXPECT_EQ(r.timeline.cell, "gcc@180");
  ASSERT_EQ(r.timeline.temp_names.size(),
            static_cast<std::size_t>(sim::kNumStructures));
  ASSERT_EQ(r.timeline.fit_names.size(),
            static_cast<std::size_t>(core::kNumMechanisms));
  EXPECT_EQ(r.timeline.fit_names.front(), "EM");

  // The acceptance bar: the recorded final interval carries exactly the
  // per-mechanism FIT the sweep reports for the cell.
  const auto& last = r.timeline.points.back();
  const auto mech = r.raw_fits.by_mechanism();
  ASSERT_EQ(last.fit_avg.size(), mech.size());
  for (std::size_t m = 0; m < mech.size(); ++m) {
    EXPECT_DOUBLE_EQ(last.fit_avg[m], mech[m]);
  }
  EXPECT_EQ(last.interval + 1, r.timeline.intervals);
}

TEST(EvaluatorTimelineTest, RecordingNeverChangesTheResult) {
  const auto& w = workloads::workload("ammp");
  pipeline::EvaluationConfig on = quick_config();
  on.timeline_enabled = true;
  const auto with = pipeline::Evaluator(on).evaluate(
      w, scaling::TechPoint::k90nm, 345.0);
  const auto without = pipeline::Evaluator(quick_config())
                           .evaluate(w, scaling::TechPoint::k90nm, 345.0);
  std::ostringstream a;
  std::ostringstream b;
  a.precision(17);
  b.precision(17);
  pipeline::write_result_row(a, with);
  pipeline::write_result_row(b, without);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_TRUE(without.timeline.empty());
}

TEST(EvaluatorTimelineTest, PointBudgetBoundsTheExport) {
  pipeline::EvaluationConfig cfg = quick_config();
  cfg.timeline_enabled = true;
  cfg.timeline_points = 4;
  const pipeline::Evaluator ev(cfg);
  const auto r =
      ev.evaluate(workloads::workload("mesa"), scaling::TechPoint::k180nm);
  ASSERT_FALSE(r.timeline.empty());
  EXPECT_LE(r.timeline.points.size(), 5u);  // budget + final-point patch
  EXPECT_EQ(r.timeline.capacity, 4u);
}

TEST(EvaluatorWatchdogTest, ForcedOverTemperatureTripsOneIncident) {
  pipeline::EvaluationConfig cfg = quick_config();
  cfg.timeline_enabled = true;
  cfg.watchdog.max_temp_k = 250.0;  // far below any simulated temperature
  const pipeline::Evaluator ev(cfg);
  const auto r =
      ev.evaluate(workloads::workload("gzip"), scaling::TechPoint::k180nm);

  std::size_t over_temp = 0;
  for (const auto& inc : r.incidents) {
    if (inc.rule == "over_temperature") ++over_temp;
  }
  EXPECT_EQ(over_temp, 1u);
  const auto& inc = r.incidents.front();
  EXPECT_EQ(inc.cell, "gzip@180");
  EXPECT_GE(inc.points.size(), 1u);
  // The evaluation itself is unharmed: a finished result with sane physics.
  EXPECT_GT(r.raw_fits.total(), 0.0);
  EXPECT_GT(r.max_structure_temp_k, 250.0);
}

TEST(FromEnvTest, TimelineKnobsParse) {
  ScopedEnv timeline("RAMP_TIMELINE", "out/tl");
  ScopedEnv points("RAMP_TIMELINE_POINTS", "64");
  ScopedEnv trace("RAMP_TRACE_OUT", "out/trace.json");
  ScopedEnv temp("RAMP_WATCHDOG_TEMP_K", "390.5");
  const auto cfg = pipeline::EvaluationConfig::from_env(1000);
  EXPECT_TRUE(cfg.timeline_enabled);
  EXPECT_EQ(cfg.timeline_dir, "out/tl");
  EXPECT_EQ(cfg.timeline_points, 64u);
  EXPECT_EQ(cfg.trace_out, "out/trace.json");
  EXPECT_DOUBLE_EQ(cfg.watchdog.max_temp_k, 390.5);
}

TEST(FromEnvTest, TimelineOffSpellingsDisable) {
  ScopedEnv timeline("RAMP_TIMELINE", "off");
  const auto cfg = pipeline::EvaluationConfig::from_env(1000);
  EXPECT_FALSE(cfg.timeline_enabled);
}

TEST(FromEnvTest, TimelineKnobsStayOutOfTheConfigHash) {
  const auto base = pipeline::EvaluationConfig::from_env(1000);
  pipeline::EvaluationConfig obs = base;
  obs.timeline_enabled = true;
  obs.timeline_points = 16;
  obs.trace_out = "x.json";
  obs.watchdog.max_temp_k = 1.0;
  EXPECT_EQ(pipeline::config_hash(base), pipeline::config_hash(obs));
}

TEST(FromEnvTest, RejectsBadTimelineValues) {
  {
    ScopedEnv points("RAMP_TIMELINE_POINTS", "1");
    EXPECT_THROW(pipeline::EvaluationConfig::from_env(1000), InvalidArgument);
  }
  {
    ScopedEnv temp("RAMP_WATCHDOG_TEMP_K", "hot");
    EXPECT_THROW(pipeline::EvaluationConfig::from_env(1000), InvalidArgument);
  }
}

}  // namespace
}  // namespace ramp::obs
