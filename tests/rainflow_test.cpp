// Tests for rainflow cycle counting and small-cycle damage accumulation.
#include "core/rainflow.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ramp::core {
namespace {

double total_count(const std::vector<RainflowCycle>& cycles) {
  double n = 0;
  for (const auto& c : cycles) n += c.count;
  return n;
}

TEST(RainflowTest, EmptyAndConstantSignals) {
  EXPECT_TRUE(rainflow_count({}).empty());
  EXPECT_TRUE(rainflow_count({5.0}).empty());
  EXPECT_TRUE(rainflow_count({5.0, 5.0, 5.0}).empty());
}

TEST(RainflowTest, SingleRampIsOneHalfCycle) {
  const auto cycles = rainflow_count({0.0, 1.0, 2.0, 3.0});
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_DOUBLE_EQ(cycles[0].range, 3.0);
  EXPECT_DOUBLE_EQ(cycles[0].count, 0.5);
  EXPECT_DOUBLE_EQ(cycles[0].mean, 1.5);
}

TEST(RainflowTest, PureOscillationConservesTransitions) {
  // 0,10,0,10,... : under ASTM E1049 a constant-amplitude alternating
  // history counts as successive half cycles (every closure contains the
  // moving start point). Every range must be the full 10 K swing and the
  // total equivalent count must conserve the 19 transitions.
  std::vector<double> signal;
  for (int i = 0; i < 20; ++i) signal.push_back(i % 2 ? 10.0 : 0.0);
  const auto cycles = rainflow_count(signal);
  for (const auto& c : cycles) {
    EXPECT_DOUBLE_EQ(c.range, 10.0);
  }
  // Each transition is covered exactly once: 2 * (sum of counts) = 19.
  EXPECT_NEAR(2.0 * total_count(cycles), 19.0, 1e-9);
}

TEST(RainflowTest, SmallCycleInsideLargeCycleIsExtracted) {
  // Classic rainflow example: a small dip nested in a big swing must count
  // as its own small cycle, leaving the large range intact.
  const auto cycles = rainflow_count({0.0, 10.0, 7.0, 9.0, 0.0});
  // Expect one full 2 K cycle (7->9) and residual halves spanning 0->10->0.
  bool found_small = false;
  for (const auto& c : cycles) {
    if (c.count == 1.0) {
      EXPECT_DOUBLE_EQ(c.range, 2.0);
      EXPECT_DOUBLE_EQ(c.mean, 8.0);
      found_small = true;
    } else {
      EXPECT_DOUBLE_EQ(c.range, 10.0);
    }
  }
  EXPECT_TRUE(found_small);
}

TEST(RainflowTest, MonotoneNoiseCollapsesToTurningPoints) {
  // Strictly increasing samples contain no cycles beyond one half-cycle.
  std::vector<double> signal;
  for (int i = 0; i < 100; ++i) signal.push_back(i * 0.1);
  const auto cycles = rainflow_count(signal);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_NEAR(cycles[0].range, 9.9, 1e-9);
}

TEST(RainflowTest, CycleCountScalesWithOscillations) {
  auto oscillations = [](int n) {
    std::vector<double> s;
    for (int i = 0; i < n; ++i) s.push_back(i % 2 ? 1.0 : 0.0);
    return total_count(rainflow_count(s));
  };
  EXPECT_LT(oscillations(10), oscillations(100));
}

TEST(SmallCycleDamageTest, DamageFollowsCoffinManson) {
  // One full cycle at the reference range = damage 1; at half the range,
  // damage (1/2)^q.
  SmallCycleDamage ref(2.35, 40.0, 0.0);
  ref.add_signal({300.0, 340.0, 300.0, 340.0, 300.0});  // 4 transitions
  // 2*full + half = 4 transitions of 40 K; each full cycle damage 1.
  EXPECT_NEAR(ref.total_damage(), 2.0, 1e-9);

  SmallCycleDamage half(2.35, 40.0, 0.0);
  half.add_signal({300.0, 320.0, 300.0, 320.0, 300.0});
  EXPECT_NEAR(half.total_damage(), 2.0 * std::pow(0.5, 2.35), 1e-9);
}

TEST(SmallCycleDamageTest, ThresholdSuppressesNoise) {
  SmallCycleDamage d(2.35, 40.0, /*threshold=*/0.5);
  std::vector<double> noisy;
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) noisy.push_back(350.0 + 0.1 * rng.uniform());
  d.add_signal(noisy);
  EXPECT_DOUBLE_EQ(d.total_damage(), 0.0);
  EXPECT_DOUBLE_EQ(d.cycles_counted(), 0.0);
}

TEST(SmallCycleDamageTest, AccumulatesAcrossSignals) {
  SmallCycleDamage d(2.35, 40.0, 0.0);
  const double first = d.add_signal({300.0, 340.0, 300.0});
  const double second = d.add_signal({300.0, 340.0, 300.0});
  EXPECT_NEAR(d.total_damage(), first + second, 1e-12);
  EXPECT_GT(d.cycles_counted(), 0.0);
}

TEST(SmallCycleDamageTest, SmallCyclesAreNegligibleAtExponentQ) {
  // The engineering observation behind the paper's large-cycle-only model:
  // micro-cycles of ~0.1 K against a 40 K reference contribute ~(1/400)^2.35
  // damage each — even millions of them matter less than one large cycle.
  SmallCycleDamage d(2.35, 40.0, 0.0);
  std::vector<double> s;
  for (int i = 0; i < 20000; ++i) s.push_back(i % 2 ? 350.1 : 350.0);
  d.add_signal(s);
  EXPECT_LT(d.total_damage(), 1e-2);
  EXPECT_GT(d.cycles_counted(), 9000.0);
}

TEST(SmallCycleDamageTest, RejectsBadParameters) {
  EXPECT_THROW(SmallCycleDamage(0.0, 40.0), InvalidArgument);
  EXPECT_THROW(SmallCycleDamage(2.35, 0.0), InvalidArgument);
  EXPECT_THROW(SmallCycleDamage(2.35, 40.0, -1.0), InvalidArgument);
}

}  // namespace
}  // namespace ramp::core
