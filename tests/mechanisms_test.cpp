// Tests for the four failure-mechanism models (paper eqs. 1–4 + §3).
#include "core/mechanisms.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/constants.hpp"
#include "util/error.hpp"

namespace ramp::core {
namespace {

TEST(ElectromigrationTest, TemperatureAcceleration) {
  const ElectromigrationModel em;
  // Arrhenius: FIT ratio between T1 and T2 is e^{Ea/k (1/T1 - 1/T2)}.
  const double f1 = em.raw_fit(5.0, 345.0, 1.0);
  const double f2 = em.raw_fit(5.0, 360.0, 1.0);
  const double expected = std::exp(0.9 / kBoltzmannEv * (1.0 / 345.0 - 1.0 / 360.0));
  EXPECT_NEAR(f2 / f1, expected, 1e-9);
  EXPECT_GT(f2, f1);
}

TEST(ElectromigrationTest, CurrentDensityPowerLaw) {
  const ElectromigrationModel em;
  const double f1 = em.raw_fit(2.0, 350.0, 1.0);
  const double f2 = em.raw_fit(4.0, 350.0, 1.0);
  EXPECT_NEAR(f2 / f1, std::pow(2.0, 1.1), 1e-9);
}

TEST(ElectromigrationTest, ShrinkingInterconnectRaisesFit) {
  const ElectromigrationModel em;
  // §3: MTTF scales with w·h, so FIT scales with 1/(w·h)_rel.
  const double base = em.raw_fit(5.0, 350.0, 1.0);
  const double scaled = em.raw_fit(5.0, 350.0, 0.49);
  EXPECT_NEAR(scaled / base, 1.0 / 0.49, 1e-9);
}

TEST(ElectromigrationTest, ZeroCurrentMeansNoFailure) {
  const ElectromigrationModel em;
  EXPECT_DOUBLE_EQ(em.raw_fit(0.0, 350.0, 1.0), 0.0);
}

TEST(ElectromigrationTest, RejectsInvalidInputs) {
  const ElectromigrationModel em;
  EXPECT_THROW(em.raw_fit(-1.0, 350.0, 1.0), InvalidArgument);
  EXPECT_THROW(em.raw_fit(1.0, 350.0, 0.0), InvalidArgument);
  EXPECT_THROW(em.raw_fit(1.0, 100.0, 1.0), InvalidArgument);  // out of range
}

TEST(StressMigrationTest, ExponentialTermDominatesNearOperatingRange) {
  // Paper §3: the e^{-Ea/kT} term overshadows |T0-T|^m, so FIT rises with T
  // throughout the operating range (well below T0 = 500 K).
  const StressMigrationModel sm;
  double prev = 0;
  for (double t : {330.0, 345.0, 360.0, 375.0, 390.0}) {
    const double f = sm.raw_fit(t);
    EXPECT_GT(f, prev) << "at " << t << " K";
    prev = f;
  }
}

TEST(StressMigrationTest, StressFreeAtDepositionTemperature) {
  const StressMigrationModel sm;
  EXPECT_DOUBLE_EQ(sm.raw_fit(500.0), 0.0);
}

TEST(StressMigrationTest, MatchesClosedForm) {
  const StressMigrationModel sm;
  const double t = 352.0;
  const double expected = std::pow(500.0 - t, 2.5) *
                          std::exp(-0.9 / (kBoltzmannEv * t));
  EXPECT_NEAR(sm.raw_fit(t), expected, expected * 1e-12);
}

TEST(TddbTest, HigherVoltageIsWorse) {
  const TddbModel tddb;
  const double f09 = tddb.raw_fit(0.9, 360.0, 0.9, 1.0);
  const double f10 = tddb.raw_fit(1.0, 360.0, 0.9, 1.0);
  EXPECT_GT(f10, f09);
  // Power-law: ratio = (1.0/0.9)^{a-bT}.
  EXPECT_NEAR(f10 / f09, std::pow(1.0 / 0.9, tddb.voltage_exponent(360.0)),
              1e-9);
}

TEST(TddbTest, ThinnerOxideIsWorse) {
  const TddbModel tddb;
  const double thick = tddb.raw_fit(1.0, 360.0, 2.5, 1.0);
  const double thin = tddb.raw_fit(1.0, 360.0, 0.9, 1.0);
  EXPECT_NEAR(thin / thick, std::pow(10.0, 1.6 / tddb.tox_scale_nm), 1e-6);
}

TEST(TddbTest, HotterIsWorse) {
  const TddbModel tddb;
  EXPECT_GT(tddb.raw_fit(1.0, 370.0, 0.9, 1.0),
            tddb.raw_fit(1.0, 350.0, 0.9, 1.0));
}

TEST(TddbTest, FitProportionalToGateOxideArea) {
  const TddbModel tddb;
  const double f1 = tddb.raw_fit(1.0, 360.0, 0.9, 1.0);
  const double f2 = tddb.raw_fit(1.0, 360.0, 0.9, 0.16);
  EXPECT_NEAR(f2 / f1, 0.16, 1e-12);
}

TEST(TddbTest, Wu2002PresetHasLiteratureExponent) {
  const TddbModel wu = TddbModel::wu2002();
  // n = 78 - 0.081 * 363 ≈ 48.6, the Wu et al. power-law exponent.
  EXPECT_NEAR(wu.voltage_exponent(363.0), 48.6, 0.1);
  EXPECT_DOUBLE_EQ(wu.tox_scale_nm, 0.22);
}

TEST(TddbTest, ShapePresetMatchesPaperAt65nm) {
  // The dsn04_shape preset must reproduce the paper's headline TDDB
  // behaviour: a large increase at 65 nm (1.0 V) and a modest increase at
  // 65 nm (0.9 V), both relative to 180 nm at representative temperatures.
  const TddbModel tddb = TddbModel::dsn04_shape();
  const double base = tddb.raw_fit(1.3, 350.0, 2.5, 1.0);
  const double v10 = tddb.raw_fit(1.0, 366.0, 0.9, 0.16);
  const double v09 = tddb.raw_fit(0.9, 360.0, 0.9, 0.16);
  EXPECT_GT(v10 / base, 4.0);
  EXPECT_LT(v10 / base, 16.0);
  EXPECT_GT(v09 / base, 1.0);   // still a net increase, as published
  EXPECT_LT(v09 / base, 4.0);
  EXPECT_GT(v10, 3.0 * v09);    // the 0.9 V → 1.0 V jump is large
}

TEST(TddbTest, RejectsInvalidInputs) {
  const TddbModel tddb;
  EXPECT_THROW(tddb.raw_fit(0.0, 360.0, 0.9, 1.0), InvalidArgument);
  EXPECT_THROW(tddb.raw_fit(1.0, 360.0, -1.0, 1.0), InvalidArgument);
  EXPECT_THROW(tddb.raw_fit(1.0, 360.0, 0.9, 0.0), InvalidArgument);
}

TEST(ThermalCyclingTest, CoffinMansonPowerLaw) {
  const ThermalCyclingModel tc;
  const double f1 = tc.raw_fit(340.0);  // ΔT = 40
  const double f2 = tc.raw_fit(380.0);  // ΔT = 80
  EXPECT_NEAR(f2 / f1, std::pow(2.0, 2.35), 1e-9);
}

TEST(ThermalCyclingTest, NoCycleNoFailure) {
  const ThermalCyclingModel tc;
  EXPECT_DOUBLE_EQ(tc.raw_fit(300.0), 0.0);
}

TEST(ThermalCyclingTest, BelowAmbientRejected) {
  const ThermalCyclingModel tc;
  EXPECT_THROW(tc.raw_fit(290.0), InvalidArgument);
}

TEST(MechanismTest, NamesAreStable) {
  EXPECT_EQ(mechanism_name(Mechanism::kEm), "EM");
  EXPECT_EQ(mechanism_name(Mechanism::kSm), "SM");
  EXPECT_EQ(mechanism_name(Mechanism::kTddb), "TDDB");
  EXPECT_EQ(mechanism_name(Mechanism::kTc), "TC");
}

// Property sweep: every structure-level mechanism is monotonically
// increasing in temperature over the operating range (Table 1's message).
class TemperatureMonotonicityTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(TemperatureMonotonicityTest, FitIncreasesWithTemperature) {
  const auto [t1, t2] = GetParam();
  const ElectromigrationModel em;
  const StressMigrationModel sm;
  const TddbModel tddb;
  EXPECT_LT(em.raw_fit(5.0, t1, 1.0), em.raw_fit(5.0, t2, 1.0));
  EXPECT_LT(sm.raw_fit(t1), sm.raw_fit(t2));
  EXPECT_LT(tddb.raw_fit(1.0, t1, 0.9, 1.0), tddb.raw_fit(1.0, t2, 0.9, 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, TemperatureMonotonicityTest,
    ::testing::Values(std::pair{330.0, 335.0}, std::pair{345.0, 350.0},
                      std::pair{360.0, 365.0}, std::pair{375.0, 380.0},
                      std::pair{390.0, 395.0}));

}  // namespace
}  // namespace ramp::core
