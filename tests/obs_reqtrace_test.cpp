// Per-request trace plumbing: ring wrap/order semantics, the epoch
// timebase, the greedy lane packing behind the Perfetto export, and the
// slow-log NDJSON line. These are the pieces every serve front-end shares;
// the front-ends themselves are covered by serve_test / net_server_test.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/reqtrace.hpp"
#include "obs/trace_export.hpp"
#include "serve/json.hpp"

namespace ramp::obs {
namespace {

RequestTrace rec_at(std::uint64_t start_ns, std::uint64_t total_ns,
                    const std::string& id) {
  RequestTrace r;
  r.trace_id = id;
  r.op = "eval";
  r.start_ns = start_ns;
  r.total_ns = total_ns;
  return r;
}

TEST(ReqTraceTest, PhaseNamesAreStableIdentifiers) {
  EXPECT_EQ(phase_name(Phase::kRead), "read");
  EXPECT_EQ(phase_name(Phase::kParse), "parse");
  EXPECT_EQ(phase_name(Phase::kAdmission), "admission");
  EXPECT_EQ(phase_name(Phase::kQueue), "queue");
  EXPECT_EQ(phase_name(Phase::kCache), "cache");
  EXPECT_EQ(phase_name(Phase::kCompute), "compute");
  EXPECT_EQ(phase_name(Phase::kSerialize), "serialize");
  EXPECT_EQ(phase_name(Phase::kFlush), "flush");
}

TEST(ReqTraceTest, RingKeepsNewestRecordsOldestFirst) {
  TraceRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    ring.push(rec_at(static_cast<std::uint64_t>(i), 1, std::to_string(i)));
  }
  EXPECT_EQ(ring.total_pushed(), 10u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(snap[static_cast<std::size_t>(i)].trace_id,
              std::to_string(6 + i));
  }
  ring.clear();
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(ReqTraceTest, RingBelowCapacityReturnsEverythingInOrder) {
  TraceRing ring(8);
  for (int i = 0; i < 3; ++i) {
    ring.push(rec_at(static_cast<std::uint64_t>(i), 1, std::to_string(i)));
  }
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.front().trace_id, "0");
  EXPECT_EQ(snap.back().trace_id, "2");
}

TEST(ReqTraceTest, EpochConversionClampsAndAdvances) {
  TraceRing ring(4);
  EXPECT_EQ(ring.to_epoch_ns(ring.epoch()), 0u);
  // A time before the epoch clamps to zero instead of wrapping.
  EXPECT_EQ(
      ring.to_epoch_ns(ring.epoch() - std::chrono::milliseconds(5)), 0u);
  const auto later = ring.epoch() + std::chrono::microseconds(250);
  EXPECT_EQ(ring.to_epoch_ns(later), 250'000u);
}

TEST(ReqTraceTest, LanesPackOverlappingRequestsFirstFit) {
  // A [0,100) and B [50,150) overlap → distinct lanes; C starts at 200,
  // after A ended, so it reuses lane 0.
  std::vector<RequestTrace> recs = {rec_at(0, 100, "A"), rec_at(50, 100, "B"),
                                    rec_at(200, 50, "C")};
  const auto lanes = request_lanes(recs);
  ASSERT_EQ(lanes.size(), 2u);
  EXPECT_EQ(lanes[0].tid, 1u);
  EXPECT_EQ(lanes[0].name, "requests-lane-0");
  EXPECT_EQ(lanes[1].tid, 2u);
  // Lane 0 holds A and C (one parent slice each, no phases set), lane 1
  // holds B.
  ASSERT_EQ(lanes[0].events.size(), 2u);
  ASSERT_EQ(lanes[1].events.size(), 1u);
  EXPECT_EQ(lanes[0].events[0].name, "eval [A]");
  EXPECT_EQ(lanes[0].events[1].name, "eval [C]");
  EXPECT_EQ(lanes[1].events[0].name, "eval [B]");
  EXPECT_EQ(lanes[0].events[1].ts_ns, 200u);
  EXPECT_EQ(lanes[0].events[1].dur_ns, 50u);
}

TEST(ReqTraceTest, LanesLayPhasesBackToBackWithStageSplit) {
  RequestTrace r = rec_at(1000, 600, "t1");
  r.label = "gcc@90";
  r.phase_ns[static_cast<int>(Phase::kParse)] = 100;
  r.phase_ns[static_cast<int>(Phase::kQueue)] = 200;
  r.phase_ns[static_cast<int>(Phase::kCompute)] = 300;
  r.stage_ns[static_cast<int>(Stage::kSim)] = 250;
  r.stage_ns[static_cast<int>(Stage::kFit)] = 50;
  const auto lanes = request_lanes({r});
  ASSERT_EQ(lanes.size(), 1u);
  const auto& ev = lanes[0].events;
  // Parent + parse + queue + (sim, fit): the compute slice is replaced by
  // its stage children when stage deltas were captured.
  ASSERT_EQ(ev.size(), 5u);
  EXPECT_EQ(ev[0].name, "eval gcc@90 [t1]");
  EXPECT_EQ(ev[0].ts_ns, 1000u);
  EXPECT_EQ(ev[0].dur_ns, 600u);
  EXPECT_EQ(ev[1].name, "parse");
  EXPECT_EQ(ev[1].ts_ns, 1000u);
  EXPECT_EQ(ev[2].name, "queue");
  EXPECT_EQ(ev[2].stage, Stage::kSchedule);
  EXPECT_EQ(ev[2].ts_ns, 1100u);
  EXPECT_EQ(ev[3].name, "sim");
  EXPECT_EQ(ev[3].stage, Stage::kSim);
  EXPECT_EQ(ev[3].ts_ns, 1300u);
  EXPECT_EQ(ev[3].dur_ns, 250u);
  EXPECT_EQ(ev[4].name, "fit");
  EXPECT_EQ(ev[4].ts_ns, 1550u);
  EXPECT_EQ(ev[4].dur_ns, 50u);
}

TEST(ReqTraceTest, LanesFeedTheChromeTraceExporter) {
  std::vector<RequestTrace> recs = {rec_at(0, 100, "A"), rec_at(10, 50, "B")};
  const std::string json =
      to_chrome_trace(request_lanes(recs), "ramp-serve requests");
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("requests-lane-0"), std::string::npos);
  EXPECT_NE(json.find("requests-lane-1"), std::string::npos);
  EXPECT_NE(json.find("ramp-serve requests"), std::string::npos);
}

TEST(ReqTraceTest, SlowLogLineIsParseableAndComplete) {
  RequestTrace r = rec_at(123, 456, "abc");
  r.label = "gcc@90";
  r.ok = true;
  r.cached = true;
  r.phase_ns[static_cast<int>(Phase::kParse)] = 11;
  r.stage_ns[static_cast<int>(Stage::kThermal)] = 22;
  const std::string line = request_trace_json(r, 1700000000123.0);
  const serve::Json j = serve::Json::parse(line);
  EXPECT_EQ(j.find("ts_ms")->as_number(), 1700000000123.0);
  EXPECT_EQ(j.find("trace_id")->as_string(), "abc");
  EXPECT_EQ(j.find("op")->as_string(), "eval");
  EXPECT_EQ(j.find("label")->as_string(), "gcc@90");
  EXPECT_TRUE(j.find("ok")->as_bool());
  EXPECT_TRUE(j.find("cached")->as_bool());
  EXPECT_FALSE(j.find("coalesced")->as_bool());
  EXPECT_EQ(j.find("start_ns")->as_number(), 123.0);
  EXPECT_EQ(j.find("total_ns")->as_number(), 456.0);
  const serve::Json* phases = j.find("phases");
  ASSERT_NE(phases, nullptr);
  int n = 0;
  for (const auto& [name, ns] : phases->items()) {
    (void)name;
    (void)ns;
    ++n;
  }
  EXPECT_EQ(n, kNumPhases);
  EXPECT_EQ(phases->find("parse")->as_number(), 11.0);
  const serve::Json* stages = j.find("stages");
  ASSERT_NE(stages, nullptr);
  EXPECT_EQ(stages->find("thermal")->as_number(), 22.0);
}

TEST(ReqTraceTest, SlowLogLineOmitsEmptyStageAndLabel) {
  const std::string line = request_trace_json(rec_at(0, 1, "x"), 0.0);
  const serve::Json j = serve::Json::parse(line);
  EXPECT_EQ(j.find("label"), nullptr);
  EXPECT_EQ(j.find("stages"), nullptr);
}

}  // namespace
}  // namespace ramp::obs
